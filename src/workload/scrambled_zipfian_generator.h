#ifndef COT_WORKLOAD_SCRAMBLED_ZIPFIAN_GENERATOR_H_
#define COT_WORKLOAD_SCRAMBLED_ZIPFIAN_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "workload/generator.h"
#include "workload/zipfian_generator.h"

namespace cot::workload {

/// Faithful port of YCSB's `ScrambledZipfianGenerator`, including the bug
/// the paper reports (Section 1, contribution 5): the workload it produces
/// is *significantly less skewed* than the Zipfian distribution it claims.
///
/// YCSB's implementation draws a rank from a Zipfian distribution over a
/// hard-coded universe of 10,000,000,000 items — with the skew constant
/// pinned to 0.99 and `zeta(10^10, 0.99) = 26.469...` precomputed — and then
/// folds the rank into the requested key space with `FNVhash64(rank) %
/// item_count`. Two consequences:
///
///  1. Any skew the user configures is silently ignored (the precomputed
///     zeta only matches 0.99 over 10^10 items).
///  2. Even at 0.99, the hottest key's mass is `1/zeta(10^10, 0.99) ≈ 3.8%`
///     instead of `1/zeta(10^6, 0.99) ≈ 6.8%` for a 1M-key space, because
///     the tail of the 10-billion-item distribution folds ~uniformly over
///     the small key space. The result is a hot set riding on a uniform
///     plateau — much less skewed than a true Zipfian.
///
/// Use `PermutedGenerator(ZipfianGenerator, seed)` for a *correct* scrambled
/// Zipfian. This class exists to reproduce the paper's bug report
/// (bench `ablation_scrambled_zipfian_bug`) and for YCSB compatibility.
class ScrambledZipfianGenerator : public KeyGenerator {
 public:
  /// YCSB constants (core/src/main/java/site/ycsb/generator/
  /// ScrambledZipfianGenerator.java).
  static constexpr double kZetan = 26.46902820178302;
  static constexpr uint64_t kItemCountUniverse = 10000000000ULL;
  static constexpr double kUsedZipfianConstant = 0.99;

  /// Creates a generator folding into `item_count` keys. The `requested_skew`
  /// parameter records what the user *asked for*; exactly as in YCSB it has
  /// no effect on the output (that is the bug).
  explicit ScrambledZipfianGenerator(uint64_t item_count,
                                     double requested_skew = 0.99);

  Key Next(Rng& rng) override;
  uint64_t item_count() const override { return item_count_; }
  std::string name() const override;

  /// YCSB's FNVhash64 over the 8 little-endian octets of `value`, with
  /// Java's `Math.abs` applied to the signed result. Exposed for tests.
  static uint64_t FnvHash64(uint64_t value);

 private:
  uint64_t item_count_;
  double requested_skew_;
  ZipfianGenerator inner_;
};

}  // namespace cot::workload

#endif  // COT_WORKLOAD_SCRAMBLED_ZIPFIAN_GENERATOR_H_
