#include "workload/trace.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <fstream>
#include <sstream>

namespace cot::workload {

StatusOr<Trace> Trace::Parse(std::string_view text) {
  std::vector<Op> ops;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;

    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty() || line.front() == '#') continue;

    std::string_view key_part = line;
    std::string_view op_part;
    size_t comma = line.find(',');
    if (comma != std::string_view::npos) {
      key_part = line.substr(0, comma);
      op_part = line.substr(comma + 1);
    }
    Op op;
    auto [ptr, ec] = std::from_chars(
        key_part.data(), key_part.data() + key_part.size(), op.key);
    if (ec != std::errc() || ptr != key_part.data() + key_part.size()) {
      return Status::InvalidArgument("trace line " +
                                     std::to_string(line_number) +
                                     ": bad key '" + std::string(key_part) +
                                     "'");
    }
    if (op_part.empty() || op_part == "r") {
      op.type = OpType::kRead;
    } else if (op_part == "u") {
      op.type = OpType::kUpdate;
    } else {
      return Status::InvalidArgument(
          "trace line " + std::to_string(line_number) + ": bad op '" +
          std::string(op_part) + "' (expected r or u)");
    }
    ops.push_back(op);
  }
  return Trace(std::move(ops));
}

StatusOr<Trace> Trace::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open trace file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

std::string Trace::ToText() const {
  std::ostringstream out;
  for (const Op& op : ops_) {
    out << op.key;
    if (op.type == OpType::kUpdate) out << ",u";
    out << '\n';
  }
  return out.str();
}

uint64_t Trace::KeySpaceSize() const {
  uint64_t max_key = 0;
  bool any = false;
  for (const Op& op : ops_) {
    max_key = std::max(max_key, op.key);
    any = true;
  }
  return any ? max_key + 1 : 0;
}

TraceKeyGenerator::TraceKeyGenerator(const Trace* trace)
    : trace_(trace), key_space_(trace->KeySpaceSize()) {
  assert(trace != nullptr && !trace->empty());
}

Key TraceKeyGenerator::Next(Rng& /*rng*/) {
  Key k = trace_->ops()[next_].key;
  ++next_;
  if (next_ >= trace_->size()) {
    next_ = 0;
    ++laps_;
  }
  return k;
}

}  // namespace cot::workload
