#ifndef COT_WORKLOAD_TRACE_H_
#define COT_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "workload/generator.h"
#include "workload/types.h"

namespace cot::workload {

/// A recorded access trace: the bridge between this library's synthetic
/// generators and real production logs. Downstream users replay their own
/// key-access traces through any cache policy or through the full cluster
/// simulation instead of trusting a fitted Zipfian.
class Trace {
 public:
  Trace() = default;
  /// Takes ownership of pre-built operations.
  explicit Trace(std::vector<Op> ops) : ops_(std::move(ops)) {}

  /// Parses trace text, one operation per line:
  ///
  ///     <key>[,<op>]
  ///
  /// where `<key>` is a decimal id and `<op>` is `r` (read, default) or
  /// `u` (update). Blank lines and lines starting with '#' are skipped.
  /// Fails with the offending line number on malformed input.
  static StatusOr<Trace> Parse(std::string_view text);

  /// Reads and parses a trace file.
  static StatusOr<Trace> Load(const std::string& path);

  /// Serializes back to the text format (round-trips with Parse).
  std::string ToText() const;

  /// The operations.
  const std::vector<Op>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Appends one operation.
  void Append(Op op) { ops_.push_back(op); }

  /// Largest key id + 1 (the key-space size a replay needs); 0 when empty.
  uint64_t KeySpaceSize() const;

 private:
  std::vector<Op> ops_;
};

/// Replays a trace's *keys* through the `KeyGenerator` interface (op types
/// are ignored; use `Trace::ops()` directly when updates matter). Wraps
/// around at the end, so it can feed open-ended drivers.
class TraceKeyGenerator : public KeyGenerator {
 public:
  /// Borrows `trace`, which must be non-empty and outlive the generator.
  explicit TraceKeyGenerator(const Trace* trace);

  Key Next(Rng& rng) override;
  uint64_t item_count() const override { return key_space_; }
  std::string name() const override { return "trace"; }

  /// Number of full passes completed over the trace.
  uint64_t laps() const { return laps_; }

 private:
  const Trace* trace_;
  uint64_t key_space_;
  size_t next_ = 0;
  uint64_t laps_ = 0;
};

}  // namespace cot::workload

#endif  // COT_WORKLOAD_TRACE_H_
