#ifndef COT_WORKLOAD_TYPES_H_
#define COT_WORKLOAD_TYPES_H_

#include <cstdint>

namespace cot::workload {

/// Keys are dense 64-bit ids in [0, key_space_size). The textual
/// "usertable:<id>" form used by YCSB is available via `KeySpace` for
/// examples; all metrics operate on ids.
using Key = uint64_t;

/// Operation kind in the key/value API of the paper's system model
/// (Section 2): reads dominate (Tao's 99.8%/0.2% split); updates invalidate
/// front-end and back-end cache entries.
enum class OpType : uint8_t {
  kRead = 0,
  kUpdate = 1,
};

/// One workload operation.
struct Op {
  Key key = 0;
  OpType type = OpType::kRead;
};

}  // namespace cot::workload

#endif  // COT_WORKLOAD_TYPES_H_
