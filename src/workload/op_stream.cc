#include "workload/op_stream.h"

#include <cassert>

#include "workload/scrambled_zipfian_generator.h"
#include "workload/simple_generators.h"
#include "workload/zipfian_generator.h"

namespace cot::workload {

StatusOr<std::unique_ptr<KeyGenerator>> MakeGenerator(const PhaseSpec& spec,
                                                      uint64_t item_count) {
  if (item_count == 0) {
    return Status::InvalidArgument("item_count must be >= 1");
  }
  if (spec.read_fraction < 0.0 || spec.read_fraction > 1.0) {
    return Status::InvalidArgument("read_fraction must be in [0, 1]");
  }
  switch (spec.distribution) {
    case Distribution::kUniform:
      return std::unique_ptr<KeyGenerator>(
          std::make_unique<UniformGenerator>(item_count));
    case Distribution::kZipfian:
      if (spec.skew <= 0.0 || spec.skew == 1.0) {
        return Status::InvalidArgument(
            "zipfian skew must be positive and != 1");
      }
      return std::unique_ptr<KeyGenerator>(
          std::make_unique<ZipfianGenerator>(item_count, spec.skew));
    case Distribution::kScrambledZipfian:
      return std::unique_ptr<KeyGenerator>(
          std::make_unique<ScrambledZipfianGenerator>(item_count, spec.skew));
    case Distribution::kPermutedZipfian: {
      if (spec.skew <= 0.0 || spec.skew == 1.0) {
        return Status::InvalidArgument(
            "zipfian skew must be positive and != 1");
      }
      auto inner = std::make_unique<ZipfianGenerator>(item_count, spec.skew);
      return std::unique_ptr<KeyGenerator>(std::make_unique<PermutedGenerator>(
          std::move(inner), spec.permute_seed));
    }
    case Distribution::kHotspot:
      if (spec.hot_set_fraction <= 0.0 || spec.hot_set_fraction > 1.0 ||
          spec.hot_opn_fraction < 0.0 || spec.hot_opn_fraction > 1.0) {
        return Status::InvalidArgument("invalid hotspot fractions");
      }
      return std::unique_ptr<KeyGenerator>(std::make_unique<HotspotGenerator>(
          item_count, spec.hot_set_fraction, spec.hot_opn_fraction));
    case Distribution::kGaussian:
      if (spec.gaussian_stddev_fraction <= 0.0) {
        return Status::InvalidArgument("gaussian stddev must be positive");
      }
      return std::unique_ptr<KeyGenerator>(std::make_unique<GaussianGenerator>(
          item_count, spec.gaussian_mean_fraction,
          spec.gaussian_stddev_fraction));
    case Distribution::kSequential:
      return std::unique_ptr<KeyGenerator>(
          std::make_unique<SequentialGenerator>(item_count));
    case Distribution::kLatest:
      if (spec.skew <= 0.0 || spec.skew == 1.0) {
        return Status::InvalidArgument("latest skew must be positive and != 1");
      }
      return std::unique_ptr<KeyGenerator>(
          std::make_unique<LatestGenerator>(item_count, spec.skew));
  }
  return Status::InvalidArgument("unknown distribution");
}

StatusOr<OpStream> OpStream::Create(uint64_t item_count,
                                    std::vector<PhaseSpec> phase_specs,
                                    uint64_t seed) {
  if (phase_specs.empty()) {
    return Status::InvalidArgument("at least one phase is required");
  }
  std::vector<Phase> phases;
  phases.reserve(phase_specs.size());
  for (size_t i = 0; i < phase_specs.size(); ++i) {
    const PhaseSpec& spec = phase_specs[i];
    if (spec.num_ops == 0 && i + 1 != phase_specs.size()) {
      return Status::InvalidArgument(
          "only the final phase may be unbounded (num_ops == 0)");
    }
    auto gen = MakeGenerator(spec, item_count);
    if (!gen.ok()) return gen.status();
    phases.push_back(Phase{std::move(gen).value(), spec.read_fraction,
                           spec.num_ops});
  }
  return OpStream(item_count, std::move(phases), seed);
}

OpStream::OpStream(uint64_t item_count, std::vector<Phase> phases,
                   uint64_t seed)
    : item_count_(item_count), phases_(std::move(phases)), rng_(seed) {}

bool OpStream::Done() const {
  if (peeked_.has_value()) return false;
  if (phase_index_ >= phases_.size()) return true;
  const Phase& last = phases_.back();
  if (last.num_ops == 0) return false;  // unbounded tail phase
  return phase_index_ == phases_.size() - 1 && last.emitted >= last.num_ops;
}

Op OpStream::Next() {
  if (peeked_.has_value()) {
    Op op = *peeked_;
    peeked_.reset();
    return op;
  }
  return Draw();
}

const Op& OpStream::Peek() {
  if (!peeked_.has_value()) peeked_ = Draw();
  return *peeked_;
}

Op OpStream::Draw() {
  assert(!Done());
  Phase* phase = &phases_[phase_index_];
  while (phase->num_ops != 0 && phase->emitted >= phase->num_ops) {
    ++phase_index_;
    assert(phase_index_ < phases_.size());
    phase = &phases_[phase_index_];
  }
  Op op;
  op.key = phase->generator->Next(rng_);
  op.type = rng_.Bernoulli(phase->read_fraction) ? OpType::kRead
                                                 : OpType::kUpdate;
  ++phase->emitted;
  ++ops_emitted_;
  return op;
}

std::string OpStream::current_name() const {
  if (phase_index_ >= phases_.size()) return "done";
  return phases_[phase_index_].generator->name();
}

}  // namespace cot::workload
