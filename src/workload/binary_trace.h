#ifndef COT_WORKLOAD_BINARY_TRACE_H_
#define COT_WORKLOAD_BINARY_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/status.h"
#include "workload/types.h"

namespace cot::workload {

/// Fixed-width binary trace format for open-loop replay at scale.
///
/// The text `Trace` format parses at ~10^6 ops/s, which caps replays around
/// 10^7 operations. The binary format is mmap'd and decoded with one shift
/// per op, so a 10^8+ op trace costs no parse time and no resident memory
/// beyond the kernel page cache; many OS threads can share one mapping.
///
/// Layout (little-endian, host byte order — traces are host-local
/// artifacts, not interchange files):
///
///   offset  size  field
///   0       8     magic "COTBTRC1"
///   8       8     op count
///   16      8     key-space size (max key id + 1)
///   24      8     reserved, zero
///   32      8*n   ops: bit 63 = 1 for update, bits 0..62 = key id
struct BinaryTraceHeader {
  static constexpr char kMagic[8] = {'C', 'O', 'T', 'B', 'T', 'R', 'C', '1'};
  static constexpr size_t kSize = 32;
};

/// Encodes one op into the on-disk word.
inline uint64_t EncodeBinaryOp(Op op) {
  return (op.key & ~(uint64_t{1} << 63)) |
         (op.type == OpType::kUpdate ? (uint64_t{1} << 63) : 0);
}

/// Decodes one on-disk word.
inline Op DecodeBinaryOp(uint64_t word) {
  return Op{word & ~(uint64_t{1} << 63),
            (word >> 63) ? OpType::kUpdate : OpType::kRead};
}

/// Streaming writer: ops are appended one at a time (no in-memory vector of
/// the whole trace, so 10^8+ op generation runs in constant space), and
/// `Finish()` seeks back to stamp the header. The file is invalid until
/// `Finish()` succeeds.
class BinaryTraceWriter {
 public:
  BinaryTraceWriter() = default;
  ~BinaryTraceWriter();
  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  /// Creates/truncates `path` and writes a placeholder header.
  Status Open(const std::string& path);

  /// Appends one op. Buffered through stdio; cheap.
  Status Append(Op op);

  /// Rewrites the header with the final count and key space, flushes, and
  /// closes. After `Finish()` the writer cannot be reused.
  Status Finish();

  uint64_t count() const { return count_; }

 private:
  std::FILE* file_ = nullptr;
  uint64_t count_ = 0;
  uint64_t max_key_plus_one_ = 0;
};

/// Read-only mmap'd view of a finished binary trace. The mapping is shared
/// and page-cache backed: any number of threads (or processes) can replay
/// the same file concurrently with zero copies.
class BinaryTraceView {
 public:
  BinaryTraceView() = default;
  ~BinaryTraceView();
  BinaryTraceView(BinaryTraceView&& other) noexcept;
  BinaryTraceView& operator=(BinaryTraceView&& other) noexcept;
  BinaryTraceView(const BinaryTraceView&) = delete;
  BinaryTraceView& operator=(const BinaryTraceView&) = delete;

  /// Maps `path`, validating magic, size, and header consistency.
  static StatusOr<BinaryTraceView> Open(const std::string& path);

  uint64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  uint64_t key_space() const { return key_space_; }

  /// Decodes op `i` (unchecked; `i < size()`).
  Op operator[](uint64_t i) const { return DecodeBinaryOp(words_[i]); }

  /// Raw encoded word for op `i` (unchecked).
  uint64_t word(uint64_t i) const { return words_[i]; }

 private:
  void Reset();

  void* map_ = nullptr;
  size_t map_len_ = 0;
  const uint64_t* words_ = nullptr;
  uint64_t count_ = 0;
  uint64_t key_space_ = 0;
};

}  // namespace cot::workload

#endif  // COT_WORKLOAD_BINARY_TRACE_H_
