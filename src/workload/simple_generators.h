#ifndef COT_WORKLOAD_SIMPLE_GENERATORS_H_
#define COT_WORKLOAD_SIMPLE_GENERATORS_H_

#include <cstdint>
#include <string>

#include "workload/generator.h"

namespace cot::workload {

/// Uniform popularity: every key equally likely. The paper uses uniform
/// workloads both to measure front-end cache overhead (Figure 5) and to
/// drive the shrink phase of the resizing experiment (Figure 8) — a
/// front-end cache is of no value here and CoT should shrink toward zero.
class UniformGenerator : public KeyGenerator {
 public:
  explicit UniformGenerator(uint64_t item_count);

  Key Next(Rng& rng) override;
  uint64_t item_count() const override { return item_count_; }
  std::string name() const override;

 private:
  uint64_t item_count_;
};

/// Hot-spot popularity (YCSB `HotspotIntegerGenerator`): a fraction
/// `hot_opn_fraction` of operations target the first
/// `hot_set_fraction * item_count` keys uniformly; the rest target the cold
/// remainder uniformly. A sharp-edged skew useful for testing admission
/// filtering (the hot/cold boundary is unambiguous).
class HotspotGenerator : public KeyGenerator {
 public:
  HotspotGenerator(uint64_t item_count, double hot_set_fraction,
                   double hot_opn_fraction);

  Key Next(Rng& rng) override;
  uint64_t item_count() const override { return item_count_; }
  std::string name() const override;

  /// Number of keys in the hot set.
  uint64_t hot_set_size() const { return hot_set_size_; }

 private:
  uint64_t item_count_;
  uint64_t hot_set_size_;
  double hot_opn_fraction_;
};

/// Gaussian popularity: key ids are drawn from a normal distribution
/// centred on `mean_fraction * item_count` with standard deviation
/// `stddev_fraction * item_count`, clamped to the key space. The paper
/// names Gaussian as an alternative hotness distribution (Section 3).
class GaussianGenerator : public KeyGenerator {
 public:
  GaussianGenerator(uint64_t item_count, double mean_fraction = 0.5,
                    double stddev_fraction = 0.05);

  Key Next(Rng& rng) override;
  uint64_t item_count() const override { return item_count_; }
  std::string name() const override;

 private:
  uint64_t item_count_;
  double mean_;
  double stddev_;
};

/// Deterministic round-robin over the key space. Useful in tests (every key
/// exactly once per lap) and as an adversarial recency-only workload (LRU's
/// worst case from Section 3: a cyclic scan never hits a smaller LRU cache).
class SequentialGenerator : public KeyGenerator {
 public:
  explicit SequentialGenerator(uint64_t item_count);

  Key Next(Rng& rng) override;
  uint64_t item_count() const override { return item_count_; }
  std::string name() const override;

 private:
  uint64_t item_count_;
  uint64_t next_ = 0;
};

/// "Latest" popularity (YCSB `SkewedLatestGenerator` shape): a Zipfian over
/// recency — key `max_key - r` where `r` is a Zipfian-distributed rank — so
/// the most recently inserted keys are hottest. `Advance()` grows the key
/// space, modelling inserts; the hot set therefore drifts over time, which
/// exercises CoT's decay/retirement path.
class LatestGenerator : public KeyGenerator {
 public:
  /// Starts with `initial_count` keys; ranks drawn with skew `s`.
  LatestGenerator(uint64_t initial_count, double s = 0.99);

  Key Next(Rng& rng) override;
  uint64_t item_count() const override { return count_; }
  std::string name() const override;

  /// Appends one newly inserted key (shifts the hot set forward).
  void Advance();

 private:
  void RebuildIfNeeded();

  uint64_t count_;
  double s_;
  uint64_t built_for_ = 0;
  double zetan_ = 0.0;
  double eta_ = 0.0;
  double alpha_ = 0.0;
};

}  // namespace cot::workload

#endif  // COT_WORKLOAD_SIMPLE_GENERATORS_H_
