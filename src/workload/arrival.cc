#include "workload/arrival.h"

#include <cmath>

namespace cot::workload {

StatusOr<ArrivalProcess> ParseArrivalProcess(const std::string& name) {
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "uniform") return ArrivalProcess::kUniform;
  return Status::InvalidArgument("unknown arrival process: " + name +
                                 " (expected poisson|uniform)");
}

std::string ArrivalProcessName(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kUniform:
      return "uniform";
  }
  return "unknown";
}

ArrivalGenerator::ArrivalGenerator(ArrivalProcess process, double rate_per_sec,
                                   uint64_t seed)
    : process_(process),
      rate_per_sec_(rate_per_sec > 0 ? rate_per_sec : 1.0),
      mean_gap_us_(1e6 / (rate_per_sec > 0 ? rate_per_sec : 1.0)),
      rng_(seed) {}

uint64_t ArrivalGenerator::Next() {
  double gap = mean_gap_us_;
  if (process_ == ArrivalProcess::kPoisson) {
    // Inverse-CDF exponential draw. NextDouble() is in [0, 1); flip to
    // (0, 1] so log() never sees zero.
    const double u = 1.0 - rng_.NextDouble();
    gap = -mean_gap_us_ * std::log(u);
  }
  clock_us_ += gap;
  return static_cast<uint64_t>(clock_us_);
}

}  // namespace cot::workload
