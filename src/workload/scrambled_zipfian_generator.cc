#include "workload/scrambled_zipfian_generator.h"

#include <cstdio>

namespace cot::workload {

ScrambledZipfianGenerator::ScrambledZipfianGenerator(uint64_t item_count,
                                                     double requested_skew)
    : item_count_(item_count),
      requested_skew_(requested_skew),
      inner_(kItemCountUniverse, kUsedZipfianConstant, kZetan) {}

uint64_t ScrambledZipfianGenerator::FnvHash64(uint64_t value) {
  constexpr uint64_t kOffsetBasis = 0xCBF29CE484222325ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t hash = kOffsetBasis;
  for (int i = 0; i < 8; ++i) {
    uint64_t octet = value & 0xFF;
    value >>= 8;
    hash ^= octet;
    hash *= kPrime;
  }
  // Java's Math.abs on a signed long (note: leaves Long.MIN_VALUE negative;
  // YCSB inherits that quirk too, but it cannot be produced by this FNV).
  int64_t signed_hash = static_cast<int64_t>(hash);
  return signed_hash < 0 ? static_cast<uint64_t>(-signed_hash) : hash;
}

Key ScrambledZipfianGenerator::Next(Rng& rng) {
  uint64_t rank = inner_.Next(rng);
  return FnvHash64(rank) % item_count_;
}

std::string ScrambledZipfianGenerator::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "scrambled_zipfian(requested=%.2f)",
                requested_skew_);
  return buf;
}

}  // namespace cot::workload
