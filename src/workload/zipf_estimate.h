#ifndef COT_WORKLOAD_ZIPF_ESTIMATE_H_
#define COT_WORKLOAD_ZIPF_ESTIMATE_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace cot::workload {

/// Estimates the Zipfian skew parameter `s` from observed per-key access
/// counts (any order; zeros are ignored): least-squares fit of
/// `log(frequency)` against `log(rank)` over the top ranks, the standard
/// rank-frequency regression. At least two distinct non-zero counts are
/// required. A front-end can feed its tracker's counters in to learn what
/// distribution it is actually serving.
StatusOr<double> EstimateZipfSkew(const std::vector<uint64_t>& counts,
                                  size_t max_ranks = 256);

/// Analytic answer to the paper's headline question — *what front-end
/// cache size achieves back-end load-balance?* — for a Zipfian(s)
/// workload over `keys` keys and `num_servers` shards.
///
/// Model: caching the top C keys leaves residual mass
/// `R(C) = 1 - CDF(C)` spread nearly evenly over servers, plus the
/// hottest *uncached* key `p_{C+1}` landing wholly on one server. The
/// expected imbalance is then approximately
///
///     I(C) ~ (R(C)/n + p_{C+1}) / (R(C)/n) = 1 + n * p_{C+1} / R(C)
///
/// The function returns the smallest power-of-two C with
/// `I(C) <= target_imbalance`, or `keys` when even full caching cannot
/// meet the target (target below the ring/estimator floor).
///
/// The estimate is a *lower bound*: it models only the key-popularity
/// skew, not the consistent-hash ownership spread or per-epoch sampling
/// noise, each of which typically costs the empirical system one further
/// doubling. Use it to seed CoT's search (skipping the cold start), not
/// to replace it; `bench/ext_analytic_sizing` reports analytic vs
/// simulated side by side.
StatusOr<uint64_t> EstimateRequiredCacheLines(uint64_t keys, double skew,
                                              uint32_t num_servers,
                                              double target_imbalance);

}  // namespace cot::workload

#endif  // COT_WORKLOAD_ZIPF_ESTIMATE_H_
