#include "workload/key_space.h"

#include <cassert>
#include <charconv>

namespace cot::workload {

KeySpace::KeySpace(uint64_t size, std::string prefix)
    : size_(size), prefix_(std::move(prefix)) {
  assert(size >= 1);
}

std::string KeySpace::Format(Key id) const {
  assert(id < size_);
  return prefix_ + std::to_string(id);
}

StatusOr<Key> KeySpace::Parse(std::string_view text) const {
  if (text.size() <= prefix_.size() ||
      text.substr(0, prefix_.size()) != prefix_) {
    return Status::InvalidArgument("key does not start with prefix '" +
                                   prefix_ + "'");
  }
  std::string_view digits = text.substr(prefix_.size());
  Key id = 0;
  auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(),
                                   id);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    return Status::InvalidArgument("key suffix is not a decimal integer");
  }
  if (id >= size_) {
    return Status::OutOfRange("key id " + std::to_string(id) +
                              " >= key space size " + std::to_string(size_));
  }
  return id;
}

}  // namespace cot::workload
