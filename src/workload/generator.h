#ifndef COT_WORKLOAD_GENERATOR_H_
#define COT_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/random.h"
#include "workload/types.h"

namespace cot::workload {

/// Interface for key-popularity generators. Each call to `Next` draws one
/// key id in [0, item_count()). Generators own no randomness: the caller
/// passes its `Rng`, which keeps sampling deterministic and thread-confined.
class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;

  /// Draws the next key.
  virtual Key Next(Rng& rng) = 0;

  /// Size of the key space this generator draws from.
  virtual uint64_t item_count() const = 0;

  /// Short human-readable name, e.g. "zipfian(0.99)".
  virtual std::string name() const = 0;
};

}  // namespace cot::workload

#endif  // COT_WORKLOAD_GENERATOR_H_
