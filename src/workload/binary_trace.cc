#include "workload/binary_trace.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cot::workload {

namespace {

// Serializes a header into a 32-byte buffer.
void FillHeader(uint64_t count, uint64_t key_space, unsigned char* buf) {
  std::memcpy(buf, BinaryTraceHeader::kMagic, 8);
  std::memcpy(buf + 8, &count, 8);
  std::memcpy(buf + 16, &key_space, 8);
  std::memset(buf + 24, 0, 8);
}

}  // namespace

BinaryTraceWriter::~BinaryTraceWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryTraceWriter::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("writer already open");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot create " + path + ": " +
                            std::strerror(errno));
  }
  unsigned char header[BinaryTraceHeader::kSize];
  FillHeader(0, 0, header);
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
    return Status::Internal("short write on header of " + path);
  }
  count_ = 0;
  max_key_plus_one_ = 0;
  return Status::OK();
}

Status BinaryTraceWriter::Append(Op op) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer not open");
  const uint64_t word = EncodeBinaryOp(op);
  if (std::fwrite(&word, sizeof(word), 1, file_) != 1) {
    return Status::Internal("short write appending op");
  }
  ++count_;
  if (op.key + 1 > max_key_plus_one_) max_key_plus_one_ = op.key + 1;
  return Status::OK();
}

Status BinaryTraceWriter::Finish() {
  if (file_ == nullptr) return Status::FailedPrecondition("writer not open");
  unsigned char header[BinaryTraceHeader::kSize];
  FillHeader(count_, max_key_plus_one_, header);
  Status st = Status::OK();
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fflush(file_) != 0) {
    st = Status::Internal("failed to finalize trace header");
  }
  std::fclose(file_);
  file_ = nullptr;
  return st;
}

BinaryTraceView::~BinaryTraceView() { Reset(); }

BinaryTraceView::BinaryTraceView(BinaryTraceView&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_len_(std::exchange(other.map_len_, 0)),
      words_(std::exchange(other.words_, nullptr)),
      count_(std::exchange(other.count_, 0)),
      key_space_(std::exchange(other.key_space_, 0)) {}

BinaryTraceView& BinaryTraceView::operator=(BinaryTraceView&& other) noexcept {
  if (this != &other) {
    Reset();
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    words_ = std::exchange(other.words_, nullptr);
    count_ = std::exchange(other.count_, 0);
    key_space_ = std::exchange(other.key_space_, 0);
  }
  return *this;
}

void BinaryTraceView::Reset() {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
  }
  map_len_ = 0;
  words_ = nullptr;
  count_ = 0;
  key_space_ = 0;
}

StatusOr<BinaryTraceView> BinaryTraceView::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat failed on " + path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len < BinaryTraceHeader::kSize) {
    ::close(fd);
    return Status::InvalidArgument(path + ": too small for a trace header");
  }
  void* map = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (map == MAP_FAILED) {
    return Status::Internal("mmap failed on " + path + ": " +
                            std::strerror(errno));
  }
  const unsigned char* bytes = static_cast<const unsigned char*>(map);
  if (std::memcmp(bytes, BinaryTraceHeader::kMagic, 8) != 0) {
    ::munmap(map, len);
    return Status::InvalidArgument(path + ": bad magic (not a COTBTRC1 file)");
  }
  uint64_t count = 0;
  uint64_t key_space = 0;
  std::memcpy(&count, bytes + 8, 8);
  std::memcpy(&key_space, bytes + 16, 8);
  if (len < BinaryTraceHeader::kSize + count * sizeof(uint64_t)) {
    ::munmap(map, len);
    return Status::InvalidArgument(path + ": truncated (header claims " +
                                   std::to_string(count) + " ops)");
  }
  BinaryTraceView view;
  view.map_ = map;
  view.map_len_ = len;
  view.words_ = reinterpret_cast<const uint64_t*>(
      bytes + BinaryTraceHeader::kSize);
  view.count_ = count;
  view.key_space_ = key_space;
  return view;
}

}  // namespace cot::workload
