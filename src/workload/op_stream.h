#ifndef COT_WORKLOAD_OP_STREAM_H_
#define COT_WORKLOAD_OP_STREAM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"
#include "workload/generator.h"
#include "workload/types.h"

namespace cot::workload {

/// Which popularity distribution a phase draws keys from. `MakeGenerator`
/// instantiates the matching `KeyGenerator`.
enum class Distribution {
  kUniform,
  kZipfian,
  kScrambledZipfian,       // YCSB-faithful (buggy) scrambling
  kPermutedZipfian,        // correct scrambling (Feistel permutation)
  kHotspot,
  kGaussian,
  kSequential,
  kLatest,
};

/// Declarative description of one workload phase, mirroring how the paper
/// configures YCSB: a distribution over a key space, a read/update mix
/// (default Tao's 99.8% reads), and an operation budget.
struct PhaseSpec {
  Distribution distribution = Distribution::kZipfian;
  /// Skew parameter for Zipfian-family distributions.
  double skew = 0.99;
  /// Hot-set / hot-operation fractions for `kHotspot`.
  double hot_set_fraction = 0.01;
  double hot_opn_fraction = 0.9;
  /// Mean/stddev fractions for `kGaussian`.
  double gaussian_mean_fraction = 0.5;
  double gaussian_stddev_fraction = 0.05;
  /// Fraction of operations that are reads (rest are updates).
  double read_fraction = 0.998;
  /// Number of operations in this phase; 0 means unbounded (only valid for
  /// the final phase).
  uint64_t num_ops = 0;
  /// Permutation seed for `kPermutedZipfian`.
  uint64_t permute_seed = 0x5EEDULL;
};

/// Instantiates the generator described by `spec` over `item_count` keys.
/// Fails on invalid parameters (e.g. zero key space, skew of exactly 1).
StatusOr<std::unique_ptr<KeyGenerator>> MakeGenerator(const PhaseSpec& spec,
                                                      uint64_t item_count);

/// A deterministic stream of operations over one or more phases. Phases run
/// back to back; distribution changes between phases model the workload
/// shifts of the paper's adaptive-resizing experiments (Figures 7-8).
class OpStream {
 public:
  /// Builds a stream over `item_count` keys from phase specs. At most the
  /// final phase may have `num_ops == 0` (unbounded). Invalid specs fail.
  static StatusOr<OpStream> Create(uint64_t item_count,
                                   std::vector<PhaseSpec> phases,
                                   uint64_t seed);

  /// True when every bounded phase is exhausted.
  bool Done() const;

  /// Draws the next operation. Must not be called when `Done()`.
  Op Next();

  /// The operation `Next` will return, without consuming it (drawn once
  /// and buffered, so the stream stays deterministic). Must not be called
  /// when `Done()`. Lets batching drivers stop a read batch at the first
  /// update without losing it.
  const Op& Peek();

  /// Index of the phase the next operation will come from.
  size_t current_phase() const { return phase_index_; }
  /// Number of operations emitted so far.
  uint64_t ops_emitted() const { return ops_emitted_; }
  /// Key space size.
  uint64_t item_count() const { return item_count_; }
  /// Name of the current phase's distribution.
  std::string current_name() const;

  OpStream(OpStream&&) = default;
  OpStream& operator=(OpStream&&) = default;

 private:
  struct Phase {
    std::unique_ptr<KeyGenerator> generator;
    double read_fraction;
    uint64_t num_ops;  // 0 = unbounded
    uint64_t emitted = 0;
  };

  OpStream(uint64_t item_count, std::vector<Phase> phases, uint64_t seed);

  /// Draws one operation from the underlying phases (shared by Next/Peek).
  Op Draw();

  uint64_t item_count_;
  std::vector<Phase> phases_;
  size_t phase_index_ = 0;
  uint64_t ops_emitted_ = 0;
  std::optional<Op> peeked_;  // drawn by Peek, not yet consumed by Next
  Rng rng_;
};

}  // namespace cot::workload

#endif  // COT_WORKLOAD_OP_STREAM_H_
