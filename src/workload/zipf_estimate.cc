#include "workload/zipf_estimate.h"

#include <algorithm>
#include <cmath>

#include "workload/zipfian_generator.h"

namespace cot::workload {

StatusOr<double> EstimateZipfSkew(const std::vector<uint64_t>& counts,
                                  size_t max_ranks) {
  std::vector<uint64_t> sorted;
  sorted.reserve(counts.size());
  for (uint64_t c : counts) {
    if (c > 0) sorted.push_back(c);
  }
  if (sorted.size() < 2) {
    return Status::InvalidArgument(
        "need at least two non-zero counts to fit a skew");
  }
  std::sort(sorted.rbegin(), sorted.rend());
  size_t n = std::min(max_ranks, sorted.size());
  if (sorted[0] == sorted[n - 1]) {
    return 0.0;  // flat top ranks: effectively uniform
  }
  // Least squares of y = log(freq) on x = log(rank); slope = -s.
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0;
  for (size_t i = 0; i < n; ++i) {
    double x = std::log(static_cast<double>(i + 1));
    double y = std::log(static_cast<double>(sorted[i]));
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  double dn = static_cast<double>(n);
  double denom = dn * sum_xx - sum_x * sum_x;
  if (denom == 0.0) {
    return Status::Internal("degenerate regression");
  }
  double slope = (dn * sum_xy - sum_x * sum_y) / denom;
  return std::max(0.0, -slope);
}

StatusOr<uint64_t> EstimateRequiredCacheLines(uint64_t keys, double skew,
                                              uint32_t num_servers,
                                              double target_imbalance) {
  if (keys == 0 || num_servers == 0) {
    return Status::InvalidArgument("keys and num_servers must be >= 1");
  }
  if (target_imbalance < 1.0) {
    return Status::InvalidArgument("target imbalance must be >= 1");
  }
  if (skew <= 0.0) return uint64_t{0};  // uniform: no cache needed
  if (skew == 1.0) {
    return Status::InvalidArgument("skew of exactly 1 is not supported");
  }
  ZipfianGenerator dist(keys, skew);
  double n = static_cast<double>(num_servers);
  // C = 0 means "no front-end cache".
  auto imbalance_at = [&](uint64_t c) {
    double residual = 1.0 - dist.TopCMass(c);
    if (residual <= 0.0) return 1.0;
    double hottest_uncached = dist.ProbabilityOfRank(c);  // rank c = C+1-th
    return 1.0 + n * hottest_uncached / residual;
  };
  if (imbalance_at(0) <= target_imbalance) return uint64_t{0};
  for (uint64_t c = 1; c < keys; c *= 2) {
    if (imbalance_at(c) <= target_imbalance) return c;
  }
  return keys;  // even full caching cannot meet the target
}

}  // namespace cot::workload
