#ifndef COT_WORKLOAD_ARRIVAL_H_
#define COT_WORKLOAD_ARRIVAL_H_

#include <cstdint>
#include <string>

#include "util/random.h"
#include "util/status.h"

namespace cot::workload {

/// Shape of the open-loop arrival process.
enum class ArrivalProcess : uint8_t {
  /// Exponential inter-arrival gaps (memoryless): the standard model for
  /// independent front-end users; produces bursts that stress queues even
  /// below the mean-capacity knee.
  kPoisson = 0,
  /// Constant gaps at exactly 1/rate: the smoothest possible offered load;
  /// isolates the knee location from burstiness effects.
  kUniform = 1,
};

StatusOr<ArrivalProcess> ParseArrivalProcess(const std::string& name);
std::string ArrivalProcessName(ArrivalProcess p);

/// Generates a deterministic, monotone sequence of virtual-time arrival
/// timestamps (microseconds) at a target aggregate rate.
///
/// Open-loop contract: the next arrival time never depends on how long
/// service took — offered load is an *input*. One generator drives the
/// whole cluster's arrival sequence; the sim assigns each arrival to a
/// logical client round-robin, so "thousands of clients" cost one stream.
///
/// Determinism: the gap sequence is a pure function of (seed, rate,
/// process), independent of thread count or wall clock.
class ArrivalGenerator {
 public:
  /// `rate_per_sec` must be positive. `seed` fixes the Poisson gap draws
  /// (unused for kUniform).
  ArrivalGenerator(ArrivalProcess process, double rate_per_sec, uint64_t seed);

  /// Returns the next arrival timestamp in virtual microseconds. The first
  /// call returns the first gap after t=0. Gaps are clamped to >= 0 and the
  /// running clock accumulates in double precision before rounding, so the
  /// long-run rate matches `rate_per_sec` even when the mean gap is well
  /// under one microsecond.
  uint64_t Next();

  double rate_per_sec() const { return rate_per_sec_; }
  ArrivalProcess process() const { return process_; }

 private:
  ArrivalProcess process_;
  double rate_per_sec_;
  double mean_gap_us_;
  double clock_us_ = 0.0;
  Rng rng_;
};

}  // namespace cot::workload

#endif  // COT_WORKLOAD_ARRIVAL_H_
