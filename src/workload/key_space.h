#ifndef COT_WORKLOAD_KEY_SPACE_H_
#define COT_WORKLOAD_KEY_SPACE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"
#include "workload/types.h"

namespace cot::workload {

/// Maps between dense key ids and the textual key form used by YCSB and the
/// paper's experiments: a common prefix plus the id, e.g. "usertable:42".
class KeySpace {
 public:
  /// Creates a key space of `size` keys with the given prefix (the paper's
  /// default is "usertable:").
  explicit KeySpace(uint64_t size, std::string prefix = "usertable:");

  /// Number of keys.
  uint64_t size() const { return size_; }
  /// The shared key prefix.
  const std::string& prefix() const { return prefix_; }

  /// Renders key `id` as "<prefix><id>". `id` must be < size().
  std::string Format(Key id) const;

  /// Parses a formatted key back to its id. Fails if the prefix does not
  /// match, the suffix is not a decimal integer, or the id is out of range.
  StatusOr<Key> Parse(std::string_view text) const;

 private:
  uint64_t size_;
  std::string prefix_;
};

}  // namespace cot::workload

#endif  // COT_WORKLOAD_KEY_SPACE_H_
