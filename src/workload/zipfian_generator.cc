#include "workload/zipfian_generator.h"

#include <cassert>
#include <cmath>
#include <cstdio>

#include "util/hash.h"

namespace cot::workload {

ZipfianGenerator::ZipfianGenerator(uint64_t item_count, double s)
    : ZipfianGenerator(item_count, s, Zeta(item_count, s)) {}

ZipfianGenerator::ZipfianGenerator(uint64_t item_count, double s,
                                   double precomputed_zetan)
    : item_count_(item_count), theta_(s), zetan_(precomputed_zetan) {
  assert(item_count >= 1);
  assert(s >= 0.0 && s != 1.0);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  double n = static_cast<double>(item_count_);
  eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta_)) / (1.0 - zeta2_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

Key ZipfianGenerator::Next(Rng& rng) {
  // Gray et al. / YCSB nextValue().
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  double n = static_cast<double>(item_count_);
  uint64_t key = static_cast<uint64_t>(
      n * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (key >= item_count_) key = item_count_ - 1;  // numeric edge
  return key;
}

std::string ZipfianGenerator::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "zipfian(%.2f)", theta_);
  return buf;
}

double ZipfianGenerator::ProbabilityOfRank(uint64_t rank) const {
  if (rank >= item_count_) return 0.0;
  return 1.0 / (std::pow(static_cast<double>(rank + 1), theta_) * zetan_);
}

double ZipfianGenerator::TopCMass(uint64_t c) const {
  if (c >= item_count_) return 1.0;
  return Zeta(c, theta_) / zetan_;
}

namespace {

// Round function of the Feistel network: mixes one half with the round key.
inline uint64_t FeistelRound(uint64_t half, uint64_t round_key,
                             uint64_t mask) {
  return cot::Mix64(half ^ round_key) & mask;
}

}  // namespace

PermutedGenerator::PermutedGenerator(std::unique_ptr<KeyGenerator> inner,
                                     uint64_t seed)
    : inner_(std::move(inner)), seed_(seed) {
  uint64_t n = inner_->item_count();
  // Smallest power of four (even bit count) covering the domain so the two
  // Feistel halves have equal width.
  half_bits_ = 1;
  while ((1ULL << (2 * half_bits_)) < n) ++half_bits_;
  half_mask_ = (1ULL << half_bits_) - 1;
  domain_ = 1ULL << (2 * half_bits_);
}

Key PermutedGenerator::Permute(Key key) const {
  // Cycle-walking Feistel permutation: apply the cipher until the output
  // lands back inside [0, item_count). Terminates because the cipher is a
  // bijection of [0, domain_).
  uint64_t n = inner_->item_count();
  uint64_t x = key;
  do {
    uint64_t left = x >> half_bits_;
    uint64_t right = x & half_mask_;
    for (int round = 0; round < 4; ++round) {
      uint64_t rk = HashPair(seed_, static_cast<uint64_t>(round));
      uint64_t next_left = right;
      uint64_t next_right = left ^ FeistelRound(right, rk, half_mask_);
      left = next_left;
      right = next_right;
    }
    x = (left << half_bits_) | right;
  } while (x >= n);
  return x;
}

Key PermutedGenerator::Next(Rng& rng) { return Permute(inner_->Next(rng)); }

std::string PermutedGenerator::name() const {
  return "permuted(" + inner_->name() + ")";
}

}  // namespace cot::workload
