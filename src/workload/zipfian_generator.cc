#include "workload/zipfian_generator.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "util/hash.h"

namespace cot::workload {

namespace {

// ---------------------------------------------------------------------------
// Fast x^a for the Gray transform.
//
// std::pow dominates the per-draw cost of Next(): it is an out-of-line call
// whose ~60-cycle dependency chain cannot overlap with the caller's work, and
// the serving-path benchmarks showed it contributing more wall time than the
// cache access it feeds. The transform only ever needs pow(t, alpha) with
// t > 0 and a fixed per-generator alpha, so a small table-driven
// exp2(alpha * log2(t)) — fully inlined, branch-free on the hot path —
// replaces it.
//
// Accuracy: every step keeps absolute error in log2(t) near 1e-16, so after
// scaling by |alpha| <= ~100 the relative error of the result stays below
// ~1e-14. The emitted key is floor(n * t^alpha); a draw lands within 1e-14
// relative of a rank boundary with probability ~1e-9, so the sampled
// distribution is unchanged and runs remain deterministic for a given build
// (exact bit-parity with std::pow is not guaranteed, nor needed — YCSB's own
// output differs across libm versions).
//
// Structure (classic table-driven libm, tuned for this range):
//   log2(t) = e + L[j] + log2(m * R[j]) where t = 2^e * m, m in [1,2),
//             j = top 6 mantissa bits, R[j] ~= 1/(1 + j/64), and
//             s = fma(m, R[j], -1) in [0, ~1/63] feeds an 8-term ln(1+s)
//             series (truncation error s^9/9 < 1e-17).
//   2^y     = 2^q * T[i] * exp(w), where k = round(32y), q = k>>5,
//             i = k&31, w = (y - k/32) * ln2 in [-0.011, 0.011] feeds a
//             6-term exp series (truncation error w^7/5040 < 1e-17).

struct PowTables {
  double recip[64];   // R[j] ~= 1/(1 + j/64)
  double log2r[64];   // L[j]  = -log2(R[j]), consistent with the stored R[j]
  double exp2i[32];   // T[i]  = 2^(i/32)
  PowTables() {
    for (int j = 0; j < 64; ++j) {
      recip[j] = 1.0 / (1.0 + j / 64.0);
      log2r[j] = -std::log2(recip[j]);
    }
    for (int i = 0; i < 32; ++i) exp2i[i] = std::exp2(i / 32.0);
  }
};
const PowTables kPow;

constexpr double kLn2 = 0.6931471805599453094;
constexpr double kLog2E = 1.4426950408889634074;

inline double FastPowPositive(double x, double alpha) {
  const uint64_t bits = std::bit_cast<uint64_t>(x);
  const int e = static_cast<int>(bits >> 52) - 1023;
  const double m =
      std::bit_cast<double>((bits & 0x000FFFFFFFFFFFFFULL) |
                            0x3FF0000000000000ULL);  // mantissa in [1,2)
  const int j = static_cast<int>((bits >> 46) & 0x3F);
  const double s = std::fma(m, kPow.recip[j], -1.0);
  // ln(1+s), s in [0, ~1/63]: series through s^6 (Estrin split for
  // instruction-level parallelism — the whole helper is one dependency
  // chain feeding the caller, so latency, not throughput, is what counts).
  // Truncation error s^7/7 < 3e-15 absolute; after scaling by |alpha| the
  // result keeps ~1e-12 relative accuracy, far below what rank selection
  // can observe.
  const double s2 = s * s;
  const double lo = 1.0 + s * -0.5;
  const double mid = 1.0 / 3.0 + s * -0.25;
  const double hi = 0.2 + s * (-1.0 / 6.0);
  const double ln1ps = s * (lo + s2 * (mid + s2 * hi));
  const double log2x = (static_cast<double>(e) + kPow.log2r[j]) +
                       kLog2E * ln1ps;
  const double y = alpha * log2x;
  // Out-of-range powers (huge |y|) fall back to libm — never hit by sane
  // generator configurations, but keeps the helper total.
  if (y < -1000.0 || y > 1000.0) return std::pow(x, alpha);
  // Truncation (one instruction) is fine for the split: |y - k/32| < 1/32
  // keeps the exp series within its budget.
  const int k = static_cast<int>(y * 32.0);
  const int q = k >> 5;
  const int i = k & 31;
  const double w = std::fma(static_cast<double>(k), -1.0 / 32.0, y) * kLn2;
  // exp(w), |w| <= ~0.022: series through w^5 (error w^6/720 < 2e-13).
  const double w2 = w * w;
  const double ea = 1.0 + w;
  const double eb = 0.5 + w * (1.0 / 6.0);
  const double ec = 1.0 / 24.0 + w * (1.0 / 120.0);
  const double p = ea + w2 * (eb + w2 * ec);
  const double scale =
      std::bit_cast<double>(static_cast<uint64_t>(1023 + q) << 52);
  return scale * kPow.exp2i[i] * p;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t item_count, double s)
    : ZipfianGenerator(item_count, s, Zeta(item_count, s)) {}

ZipfianGenerator::ZipfianGenerator(uint64_t item_count, double s,
                                   double precomputed_zetan)
    : item_count_(item_count), theta_(s), zetan_(precomputed_zetan) {
  assert(item_count >= 1);
  assert(s >= 0.0 && s != 1.0);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  double n = static_cast<double>(item_count_);
  eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta_)) / (1.0 - zeta2_ / zetan_);
  rank1_threshold_ = 1.0 + std::pow(0.5, theta_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

Key ZipfianGenerator::Next(Rng& rng) {
  // Gray et al. / YCSB nextValue().
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < rank1_threshold_) return 1;
  double n = static_cast<double>(item_count_);
  uint64_t key = static_cast<uint64_t>(
      n * FastPowPositive(eta_ * u - eta_ + 1.0, alpha_));
  if (key >= item_count_) key = item_count_ - 1;  // numeric edge
  return key;
}

std::string ZipfianGenerator::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "zipfian(%.2f)", theta_);
  return buf;
}

double ZipfianGenerator::ProbabilityOfRank(uint64_t rank) const {
  if (rank >= item_count_) return 0.0;
  return 1.0 / (std::pow(static_cast<double>(rank + 1), theta_) * zetan_);
}

double ZipfianGenerator::TopCMass(uint64_t c) const {
  if (c >= item_count_) return 1.0;
  return Zeta(c, theta_) / zetan_;
}

namespace {

// Round function of the Feistel network: mixes one half with the round key.
inline uint64_t FeistelRound(uint64_t half, uint64_t round_key,
                             uint64_t mask) {
  return cot::Mix64(half ^ round_key) & mask;
}

}  // namespace

PermutedGenerator::PermutedGenerator(std::unique_ptr<KeyGenerator> inner,
                                     uint64_t seed)
    : inner_(std::move(inner)), seed_(seed) {
  uint64_t n = inner_->item_count();
  // Smallest power of four (even bit count) covering the domain so the two
  // Feistel halves have equal width.
  half_bits_ = 1;
  while ((1ULL << (2 * half_bits_)) < n) ++half_bits_;
  half_mask_ = (1ULL << half_bits_) - 1;
  domain_ = 1ULL << (2 * half_bits_);
}

Key PermutedGenerator::Permute(Key key) const {
  // Cycle-walking Feistel permutation: apply the cipher until the output
  // lands back inside [0, item_count). Terminates because the cipher is a
  // bijection of [0, domain_).
  uint64_t n = inner_->item_count();
  uint64_t x = key;
  do {
    uint64_t left = x >> half_bits_;
    uint64_t right = x & half_mask_;
    for (int round = 0; round < 4; ++round) {
      uint64_t rk = HashPair(seed_, static_cast<uint64_t>(round));
      uint64_t next_left = right;
      uint64_t next_right = left ^ FeistelRound(right, rk, half_mask_);
      left = next_left;
      right = next_right;
    }
    x = (left << half_bits_) | right;
  } while (x >= n);
  return x;
}

Key PermutedGenerator::Next(Rng& rng) { return Permute(inner_->Next(rng)); }

std::string PermutedGenerator::name() const {
  return "permuted(" + inner_->name() + ")";
}

}  // namespace cot::workload
