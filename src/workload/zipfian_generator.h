#ifndef COT_WORKLOAD_ZIPFIAN_GENERATOR_H_
#define COT_WORKLOAD_ZIPFIAN_GENERATOR_H_

#include <cstdint>
#include <string>

#include "util/random.h"
#include "workload/generator.h"

namespace cot::workload {

/// Zipfian key generator — a faithful C++ port of YCSB's
/// `ZipfianGenerator` (Gray et al., "Quickly Generating Billion-Record
/// Synthetic Databases", SIGMOD 1994).
///
/// Key 0 is the hottest key, key 1 the second hottest, and so on: the
/// probability of key `i` is proportional to `1 / (i+1)^s` where `s` is the
/// skew parameter (YCSB's `ZIPFIAN_CONSTANT`, 0.99 by default; the paper
/// evaluates s = 0.90, 0.99, 1.20, 1.50).
///
/// Sampling is O(1) per draw after an O(n) one-time computation of the
/// generalized harmonic number `zeta(n, s)`. The paper's experiments use
/// this generator directly (they abandoned YCSB's ScrambledZipfian after
/// finding it produces far less skew than configured — see
/// `ScrambledZipfianGenerator`). When rank order should not correlate with
/// key id, compose with `PermutedGenerator`.
class ZipfianGenerator : public KeyGenerator {
 public:
  /// YCSB's default skew.
  static constexpr double kDefaultSkew = 0.99;

  /// Creates a generator over `item_count` keys with skew `s`.
  /// `item_count` must be >= 1 and `s` must be >= 0 and != 1 (the Gray
  /// transform divides by 1-s, exactly as in YCSB).
  ZipfianGenerator(uint64_t item_count, double s = kDefaultSkew);

  /// Creates a generator with a precomputed `zeta(item_count, s)` value,
  /// avoiding the O(item_count) zeta computation. This mirrors the YCSB
  /// constructor used by `ScrambledZipfianGenerator` for its 10-billion-item
  /// inner distribution.
  ZipfianGenerator(uint64_t item_count, double s, double precomputed_zetan);

  Key Next(Rng& rng) override;
  uint64_t item_count() const override { return item_count_; }
  std::string name() const override;

  /// The skew parameter `s`.
  double skew() const { return theta_; }

  /// Probability mass of key `rank` (0 = hottest) under this distribution.
  double ProbabilityOfRank(uint64_t rank) const;

  /// CDF of the top `c` keys: the theoretical hit-rate of a perfect cache of
  /// `c` lines (the paper's "TPC" series in Figure 4). `c` is clamped to the
  /// item count.
  double TopCMass(uint64_t c) const;

  /// Computes zeta(n, theta) = sum_{i=1..n} 1/i^theta. Exposed for tests and
  /// for the scrambled variant. O(n).
  static double Zeta(uint64_t n, double theta);

 private:
  uint64_t item_count_;
  double theta_;
  double zetan_;   // zeta(n, theta)
  double zeta2_;   // zeta(2, theta)
  double alpha_;   // 1 / (1 - theta)
  double eta_;
  // 1 + pow(0.5, theta): YCSB recomputes this constant inside every draw;
  // hoisting it drops a full pow() from the per-draw cost without changing
  // the emitted sequence.
  double rank1_threshold_;
};

/// Wraps any generator and applies a deterministic bijective permutation of
/// the key space (a 4-round Feistel network with cycle-walking), so that the
/// i-th hottest key is an arbitrary-looking id instead of id i. Unlike
/// YCSB's hash-mod scrambling this is collision-free, hence it preserves the
/// exact popularity distribution of the inner generator.
class PermutedGenerator : public KeyGenerator {
 public:
  /// Wraps `inner`, permuting with `seed`.
  PermutedGenerator(std::unique_ptr<KeyGenerator> inner, uint64_t seed);

  Key Next(Rng& rng) override;
  uint64_t item_count() const override { return inner_->item_count(); }
  std::string name() const override;

  /// The permuted id of `key` (exposed for tests: the map is bijective).
  Key Permute(Key key) const;

 private:
  std::unique_ptr<KeyGenerator> inner_;
  uint64_t seed_;
  int half_bits_;      // bits per Feistel half
  uint64_t half_mask_;
  uint64_t domain_;    // smallest even-bit power of two >= item_count
};

}  // namespace cot::workload

#endif  // COT_WORKLOAD_ZIPFIAN_GENERATOR_H_
