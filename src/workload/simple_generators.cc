#include "workload/simple_generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "workload/zipfian_generator.h"

namespace cot::workload {

UniformGenerator::UniformGenerator(uint64_t item_count)
    : item_count_(item_count) {
  assert(item_count >= 1);
}

Key UniformGenerator::Next(Rng& rng) { return rng.NextBelow(item_count_); }

std::string UniformGenerator::name() const { return "uniform"; }

HotspotGenerator::HotspotGenerator(uint64_t item_count,
                                   double hot_set_fraction,
                                   double hot_opn_fraction)
    : item_count_(item_count), hot_opn_fraction_(hot_opn_fraction) {
  assert(item_count >= 1);
  assert(hot_set_fraction > 0.0 && hot_set_fraction <= 1.0);
  assert(hot_opn_fraction >= 0.0 && hot_opn_fraction <= 1.0);
  hot_set_size_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(hot_set_fraction *
                               static_cast<double>(item_count)));
  hot_set_size_ = std::min(hot_set_size_, item_count_);
}

Key HotspotGenerator::Next(Rng& rng) {
  if (rng.Bernoulli(hot_opn_fraction_)) {
    return rng.NextBelow(hot_set_size_);
  }
  uint64_t cold = item_count_ - hot_set_size_;
  if (cold == 0) return rng.NextBelow(item_count_);
  return hot_set_size_ + rng.NextBelow(cold);
}

std::string HotspotGenerator::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "hotspot(%llu keys, %.0f%% ops)",
                static_cast<unsigned long long>(hot_set_size_),
                hot_opn_fraction_ * 100.0);
  return buf;
}

GaussianGenerator::GaussianGenerator(uint64_t item_count,
                                     double mean_fraction,
                                     double stddev_fraction)
    : item_count_(item_count),
      mean_(mean_fraction * static_cast<double>(item_count)),
      stddev_(stddev_fraction * static_cast<double>(item_count)) {
  assert(item_count >= 1);
}

Key GaussianGenerator::Next(Rng& rng) {
  double x = mean_ + stddev_ * rng.NextGaussian();
  if (x < 0.0) x = 0.0;
  double limit = static_cast<double>(item_count_ - 1);
  if (x > limit) x = limit;
  return static_cast<Key>(x);
}

std::string GaussianGenerator::name() const { return "gaussian"; }

SequentialGenerator::SequentialGenerator(uint64_t item_count)
    : item_count_(item_count) {
  assert(item_count >= 1);
}

Key SequentialGenerator::Next(Rng& /*rng*/) {
  Key k = next_;
  next_ = (next_ + 1) % item_count_;
  return k;
}

std::string SequentialGenerator::name() const { return "sequential"; }

LatestGenerator::LatestGenerator(uint64_t initial_count, double s)
    : count_(initial_count), s_(s) {
  assert(initial_count >= 1);
  RebuildIfNeeded();
}

void LatestGenerator::RebuildIfNeeded() {
  // Recompute the Zipfian constants when the key space has grown by more
  // than 1% since the last build (zeta changes slowly; this caps rebuild
  // cost at O(n log n) amortized over the run).
  if (built_for_ != 0 &&
      count_ < built_for_ + std::max<uint64_t>(1, built_for_ / 100)) {
    return;
  }
  zetan_ = ZipfianGenerator::Zeta(count_, s_);
  alpha_ = 1.0 / (1.0 - s_);
  double n = static_cast<double>(count_);
  double zeta2 = ZipfianGenerator::Zeta(2, s_);
  eta_ = (1.0 - std::pow(2.0 / n, 1.0 - s_)) / (1.0 - zeta2 / zetan_);
  built_for_ = count_;
}

Key LatestGenerator::Next(Rng& rng) {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, s_)) {
    rank = 1;
  } else {
    rank = static_cast<uint64_t>(static_cast<double>(count_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }
  if (rank >= count_) rank = count_ - 1;
  return count_ - 1 - rank;  // rank 0 = newest key
}

std::string LatestGenerator::name() const { return "latest"; }

void LatestGenerator::Advance() {
  ++count_;
  RebuildIfNeeded();
}

}  // namespace cot::workload
