#include "cluster/fault_injector.h"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "util/hash.h"

namespace cot::cluster {

std::string_view ToString(FaultType type) {
  switch (type) {
    case FaultType::kCrash:
      return "crash";
    case FaultType::kTransient:
      return "transient";
    case FaultType::kSlow:
      return "slow";
    case FaultType::kGray:
      return "gray";
  }
  return "unknown";
}

Status FaultSchedule::Validate(uint32_t num_servers) const {
  for (const FaultEvent& e : events) {
    if (e.server >= num_servers) {
      return Status::InvalidArgument("fault event references unknown server " +
                                     std::to_string(e.server));
    }
    if (e.start_op >= e.end_op) {
      return Status::InvalidArgument("fault window must satisfy start < end");
    }
    if (e.type == FaultType::kTransient &&
        (e.probability <= 0.0 || e.probability > 1.0)) {
      return Status::InvalidArgument(
          "transient fault probability must be in (0, 1]");
    }
    if (e.type == FaultType::kSlow && e.slow_factor < 1.0) {
      return Status::InvalidArgument("slow factor must be >= 1");
    }
    if (e.type == FaultType::kGray) {
      if (e.slow_factor < 1.0) {
        return Status::InvalidArgument("gray slow factor must be >= 1");
      }
      if (e.jitter < 0.0 || e.jitter >= 1.0) {
        return Status::InvalidArgument("gray jitter must be in [0, 1)");
      }
      if (e.client_fraction <= 0.0 || e.client_fraction > 1.0) {
        return Status::InvalidArgument(
            "gray client fraction must be in (0, 1]");
      }
      if (e.stall_probability < 0.0 || e.stall_probability > 1.0) {
        return Status::InvalidArgument(
            "gray stall probability must be in [0, 1]");
      }
      if (e.stall_factor < 1.0) {
        return Status::InvalidArgument("gray stall factor must be >= 1");
      }
    }
  }
  return Status::OK();
}

FaultInjector::FaultInjector(FaultSchedule schedule)
    : schedule_(std::move(schedule)) {
  ServerId max_server = 0;
  for (const FaultEvent& e : schedule_.events) {
    max_server = std::max(max_server, e.server);
  }
  by_server_.resize(schedule_.events.empty() ? 0 : max_server + 1);
  for (const FaultEvent& e : schedule_.events) {
    by_server_[e.server].push_back(e);
  }
}

namespace {

/// Uniform draw in [0, 1) from a stateless hash of the decision tuple.
double UniformDraw(uint64_t seed, uint32_t client_id, uint64_t op_clock,
                   ServerId server, uint32_t attempt) {
  uint64_t h = HashCombine(seed, client_id);
  h = HashCombine(h, op_clock);
  h = HashCombine(h, server);
  h = HashCombine(h, attempt);
  return static_cast<double>(Mix64(h) >> 11) * 0x1.0p-53;
}

// Salts separating the independent gray draw streams from the transient
// stream (and from each other) — the same decision tuple must not yield
// correlated jitter, stall, and membership outcomes.
constexpr uint64_t kGrayJitterSalt = 0x6a17'7e72'9a4b'0001ULL;
constexpr uint64_t kGrayStallSalt = 0x57a1'1f0c'9a4b'0002ULL;
constexpr uint64_t kGrayMemberSalt = 0x4a5f'a3c7'9a4b'0003ULL;

}  // namespace

FaultInjector::Decision FaultInjector::Evaluate(uint32_t client_id,
                                                uint64_t op_clock,
                                                ServerId server,
                                                uint32_t attempt) const {
  Decision d;
  if (server >= by_server_.size()) return d;
  for (const FaultEvent& e : by_server_[server]) {
    if (op_clock < e.start_op || op_clock >= e.end_op) continue;
    switch (e.type) {
      case FaultType::kCrash:
        d.fail = true;
        d.crashed = true;
        break;
      case FaultType::kTransient:
        if (UniformDraw(schedule_.seed, client_id, op_clock, server,
                        attempt) < e.probability) {
          d.fail = true;
        }
        break;
      case FaultType::kSlow:
        d.slow_factor = std::max(d.slow_factor, e.slow_factor);
        break;
      case FaultType::kGray: {
        // Asymmetric visibility: membership is stable per (client,
        // window) — keyed on start_op so overlapping windows on the same
        // shard draw independently — never per attempt.
        if (e.client_fraction < 1.0 &&
            UniformDraw(schedule_.seed ^ kGrayMemberSalt, client_id,
                        e.start_op, server, 0) >= e.client_fraction) {
          break;
        }
        double factor = e.slow_factor;
        if (e.jitter > 0.0) {
          double u = UniformDraw(schedule_.seed ^ kGrayJitterSalt, client_id,
                                 op_clock, server, attempt);
          factor *= 1.0 + e.jitter * (2.0 * u - 1.0);
        }
        if (e.stall_probability > 0.0 &&
            UniformDraw(schedule_.seed ^ kGrayStallSalt, client_id, op_clock,
                        server, attempt) < e.stall_probability) {
          factor *= e.stall_factor;
        }
        factor = std::max(factor, 1.0);
        d.slow_factor = std::max(d.slow_factor, factor);
        d.gray = true;
        break;
      }
    }
  }
  return d;
}

bool FaultInjector::InCrashWindow(uint64_t op_clock, ServerId server) const {
  if (server >= by_server_.size()) return false;
  for (const FaultEvent& e : by_server_[server]) {
    if (e.type == FaultType::kCrash && op_clock >= e.start_op &&
        op_clock < e.end_op) {
      return true;
    }
  }
  return false;
}

uint64_t FaultInjector::CrashGeneration(uint64_t op_clock,
                                        ServerId server) const {
  if (server >= by_server_.size()) return 0;
  uint64_t generation = 0;
  for (const FaultEvent& e : by_server_[server]) {
    if (e.type == FaultType::kCrash && e.end_op <= op_clock) ++generation;
  }
  return generation;
}

namespace {

/// Splits `spec` on commas, then each entry on colons, expecting exactly
/// `fields` numeric fields; appends one event per entry via `build`.
Status ParseEntries(const std::string& spec, size_t fields,
                    const std::string& what,
                    const std::function<FaultEvent(const std::vector<double>&)>&
                        build,
                    std::vector<FaultEvent>* out) {
  if (spec.empty()) return Status::OK();
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string entry = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (entry.empty()) {
      return Status::InvalidArgument("empty " + what + " fault entry");
    }
    std::vector<double> values;
    size_t field_pos = 0;
    while (field_pos <= entry.size()) {
      size_t colon = entry.find(':', field_pos);
      std::string field = entry.substr(
          field_pos,
          colon == std::string::npos ? std::string::npos : colon - field_pos);
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (field.empty() || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad " + what + " fault field '" +
                                       field + "' in '" + entry + "'");
      }
      values.push_back(v);
      if (colon == std::string::npos) break;
      field_pos = colon + 1;
    }
    if (values.size() != fields) {
      return Status::InvalidArgument(
          what + " fault entry '" + entry + "' needs " +
          std::to_string(fields) + " colon-separated fields");
    }
    out->push_back(build(values));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return Status::OK();
}

}  // namespace

StatusOr<FaultSchedule> ParseFaultSchedule(const std::string& crash_spec,
                                           const std::string& transient_spec,
                                           const std::string& slow_spec,
                                           uint64_t seed) {
  return ParseFaultSchedule(crash_spec, transient_spec, slow_spec, "", "", "",
                            seed);
}

StatusOr<FaultSchedule> ParseFaultSchedule(const std::string& crash_spec,
                                           const std::string& transient_spec,
                                           const std::string& slow_spec,
                                           const std::string& gray_slow_spec,
                                           const std::string& gray_asym_spec,
                                           const std::string& gray_stall_spec,
                                           uint64_t seed) {
  FaultSchedule schedule;
  schedule.seed = seed;
  Status s = ParseEntries(
      crash_spec, 3, "crash",
      [](const std::vector<double>& v) {
        FaultEvent e;
        e.type = FaultType::kCrash;
        e.server = static_cast<ServerId>(v[0]);
        e.start_op = static_cast<uint64_t>(v[1]);
        e.end_op = static_cast<uint64_t>(v[2]);
        return e;
      },
      &schedule.events);
  if (!s.ok()) return s;
  s = ParseEntries(
      transient_spec, 4, "transient",
      [](const std::vector<double>& v) {
        FaultEvent e;
        e.type = FaultType::kTransient;
        e.server = static_cast<ServerId>(v[0]);
        e.start_op = static_cast<uint64_t>(v[1]);
        e.end_op = static_cast<uint64_t>(v[2]);
        e.probability = v[3];
        return e;
      },
      &schedule.events);
  if (!s.ok()) return s;
  s = ParseEntries(
      slow_spec, 4, "slow",
      [](const std::vector<double>& v) {
        FaultEvent e;
        e.type = FaultType::kSlow;
        e.server = static_cast<ServerId>(v[0]);
        e.start_op = static_cast<uint64_t>(v[1]);
        e.end_op = static_cast<uint64_t>(v[2]);
        e.slow_factor = v[3];
        return e;
      },
      &schedule.events);
  if (!s.ok()) return s;
  s = ParseEntries(
      gray_slow_spec, 5, "gray-slow",
      [](const std::vector<double>& v) {
        FaultEvent e;
        e.type = FaultType::kGray;
        e.server = static_cast<ServerId>(v[0]);
        e.start_op = static_cast<uint64_t>(v[1]);
        e.end_op = static_cast<uint64_t>(v[2]);
        e.slow_factor = v[3];
        e.jitter = v[4];
        return e;
      },
      &schedule.events);
  if (!s.ok()) return s;
  s = ParseEntries(
      gray_asym_spec, 5, "gray-asym",
      [](const std::vector<double>& v) {
        FaultEvent e;
        e.type = FaultType::kGray;
        e.server = static_cast<ServerId>(v[0]);
        e.start_op = static_cast<uint64_t>(v[1]);
        e.end_op = static_cast<uint64_t>(v[2]);
        e.slow_factor = v[3];
        e.client_fraction = v[4];
        return e;
      },
      &schedule.events);
  if (!s.ok()) return s;
  s = ParseEntries(
      gray_stall_spec, 5, "gray-stall",
      [](const std::vector<double>& v) {
        FaultEvent e;
        e.type = FaultType::kGray;
        e.server = static_cast<ServerId>(v[0]);
        e.start_op = static_cast<uint64_t>(v[1]);
        e.end_op = static_cast<uint64_t>(v[2]);
        e.stall_probability = v[3];
        e.stall_factor = v[4];
        return e;
      },
      &schedule.events);
  if (!s.ok()) return s;
  return schedule;
}

}  // namespace cot::cluster
