#include "cluster/serving_queue.h"

#include <algorithm>

namespace cot::cluster {

void ServingQueue::DrainLocked(uint64_t now_us) {
  while (!backlog_.empty() && backlog_.front() <= now_us) {
    backlog_.pop_front();
  }
}

ServingQueue::AdmitResult ServingQueue::Admit(uint64_t arrival_us,
                                              uint64_t service_us) {
  std::lock_guard<std::mutex> lock(mu_);
  DrainLocked(arrival_us);
  AdmitResult result;
  result.depth = static_cast<uint32_t>(backlog_.size());
  uint32_t seen = max_depth_seen_.load(std::memory_order_relaxed);
  while (result.depth > seen &&
         !max_depth_seen_.compare_exchange_weak(seen, result.depth,
                                                std::memory_order_relaxed)) {
  }
  if (policy_.max_queue_depth != 0 &&
      result.depth >= policy_.max_queue_depth) {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    result.status = AdmitStatus::kShedQueueFull;
    return result;
  }
  const uint64_t start =
      backlog_.empty() ? arrival_us : std::max(arrival_us, backlog_.back());
  result.wait_us = start - arrival_us;
  if (policy_.deadline_us != 0 && result.wait_us > policy_.deadline_us) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    result.status = AdmitStatus::kShedDeadline;
    return result;
  }
  result.completion_us = start + service_us;
  backlog_.push_back(result.completion_us);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void ServingQueue::ExtendLast(uint64_t extra_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!backlog_.empty()) backlog_.back() += extra_us;
}

uint32_t ServingQueue::DepthAt(uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  DrainLocked(now_us);
  return static_cast<uint32_t>(backlog_.size());
}

bool ServingQueue::UnderPressureAt(uint64_t now_us) {
  if (policy_.max_queue_depth == 0) return false;
  const double threshold =
      policy_.pressure_fraction * static_cast<double>(policy_.max_queue_depth);
  return static_cast<double>(DepthAt(now_us)) >= threshold;
}

}  // namespace cot::cluster
