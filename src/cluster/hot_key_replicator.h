#ifndef COT_CLUSTER_HOT_KEY_REPLICATOR_H_
#define COT_CLUSTER_HOT_KEY_REPLICATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/consistent_hash_ring.h"
#include "cluster/routing.h"
#include "core/space_saving_tracker.h"

namespace cot::cluster {

/// Server-side hot-key replication (Hong & Thottethodi, the paper's
/// server-side comparator, Section 7): every caching server tracks its own
/// hot keys; when a key's share of its server's load crosses a threshold,
/// the key is replicated to `gamma` servers and the decision is broadcast
/// to all front-ends, which from then on spread that key's lookups across
/// the replica set.
///
/// Mapped onto this substrate:
///   - per-server space-saving trackers stand in for the servers' hot-spot
///     detectors (`OnLookup` feeds them);
///   - `EndEpoch(view)` runs the detection/replication decision and returns
///     the keys newly replicated this epoch (the "broadcast", whose cost a
///     real deployment pays in fan-out messages);
///   - `Route` hashes each lookup of a replicated key across its replica
///     set; `AllReplicas` lets invalidations reach every copy.
///
/// Home-server resolution goes through the caller's `RouteView` (the
/// immutable snapshot ring), so routing decisions never race topology
/// mutations; un-replicated keys fall through to plain consistent hashing.
///
/// The contrast with CoT the paper draws: replication still serves every
/// lookup from the back-end (no load *reduction*), needs server + client
/// coordination, and multiplies update costs by gamma.
class HotKeyReplicator : public RoutingPolicy {
 public:
  /// Creates a replicator over a tier of `num_servers` servers. A key is
  /// replicated when it exceeds `hot_share` of its home server's epoch
  /// load; replicas are spread over `gamma` servers. Each server tracks
  /// `tracker_size` keys.
  explicit HotKeyReplicator(uint32_t num_servers, double hot_share = 0.05,
                            uint32_t gamma = 4, size_t tracker_size = 64);

  ServerId Route(uint64_t key, const RouteView& view) override;
  std::vector<ServerId> AllReplicas(uint64_t key,
                                    const RouteView& view) override;
  void OnLookup(uint64_t key, ServerId server) override;

  /// Runs each server's hot-key detection over the epoch's observations;
  /// newly hot keys are replicated (home = `view.ring->ServerFor`) and
  /// returned (the broadcast set). Epoch counters reset.
  std::vector<uint64_t> EndEpoch(const RouteView& view);

  /// True if `key` currently has a replica set.
  bool IsReplicated(uint64_t key) const {
    return replicas_.count(key) != 0;
  }
  /// Number of replicated keys.
  size_t replicated_count() const { return replicas_.size(); }
  /// Replication factor.
  uint32_t gamma() const { return gamma_; }

 private:
  uint32_t num_servers_;
  double hot_share_;
  uint32_t gamma_;
  size_t tracker_size_;
  std::vector<core::SpaceSavingTracker> trackers_;  // one per server
  std::vector<uint64_t> epoch_lookups_;             // per server
  std::unordered_map<uint64_t, std::vector<ServerId>> replicas_;
  uint64_t rotation_ = 0;  // spreads lookups across a replica set
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_HOT_KEY_REPLICATOR_H_
