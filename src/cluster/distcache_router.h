#ifndef COT_CLUSTER_DISTCACHE_ROUTER_H_
#define COT_CLUSTER_DISTCACHE_ROUTER_H_

#include <cstdint>
#include <vector>

#include "cluster/routing.h"
#include "core/space_saving_tracker.h"
#include "util/flat_hash_map.h"

namespace cot::cluster {

/// Knobs for `DistCacheRouter`.
struct DistCacheConfig {
  /// Hot-set size: at most this many keys are routed to the cache layer.
  /// The underlying space-saving tracker holds 2x this many keys so the
  /// top-`hot_keys` cut is taken from a wider candidate pool.
  size_t hot_keys = 64;
  /// Routed operations between control-plane epochs (hot-set rebuild +
  /// load-estimate halving). Bounds load-estimate staleness: an estimate
  /// is always < 2 * epoch_ops (geometric series of per-epoch halvings).
  uint64_t epoch_ops = 1024;
  /// Salts of the two independent partition hash functions. Distinct by
  /// default; tests may override to probe independence properties.
  uint64_t salt_a = 0x9E3779B97F4A7C15ULL;
  uint64_t salt_b = 0xC2B2AE3D27D4EB4FULL;
};

/// DistCache-style two-layer routing (Liu et al., NSDI 2019): a small
/// upper layer of cache nodes (`CacheCluster::AddCacheNode`) is split into
/// two *independent hash partitions*; every key has exactly one candidate
/// node in each partition, placed by two independently-salted hashes. Hot
/// keys are routed to the **less loaded** of their two candidates
/// (power-of-two-choices), which is what gives DistCache its provable
/// load-balance guarantee: with two independent placements per key, the
/// max cache-node load concentrates near the mean even under adversarial
/// skew. Cold keys take the normal consistent-hash path to the shard tier.
///
/// Mapped onto this substrate, per front-end client (the router carries
/// per-client state — a hot-set tracker and load estimates — so each
/// client owns a private instance; behaviour is then a pure function of
/// the client's own request stream, preserving per-client determinism):
///   - `Route` observes every access in a space-saving tracker; every
///     `epoch_ops` routed ops the hot set is rebuilt from the tracker's
///     top `hot_keys` keys and the per-node load estimates are halved;
///   - a hot key goes to the less-loaded candidate (ties to the lower
///     id); a cold key goes to `view.ring->ServerFor(key)`;
///   - `AllReplicas` *always* returns {candidate A, candidate B, ring
///     owner}: a write invalidates both possible cache copies and the
///     shard copy, so no reconfiguration of the hot set can strand a
///     stale replica — a key demoted from the hot set may leave copies on
///     its candidates, and those copies must keep seeing invalidations in
///     case the key is promoted again. The three targets are pairwise
///     distinct by construction (disjoint partitions; cache nodes never
///     join the ring).
///
/// The router is RNG-free: decisions depend only on the access stream,
/// the cache-node list, and the salts.
class DistCacheRouter : public RoutingPolicy {
 public:
  /// The two candidate cache nodes of a key, one per partition.
  struct Candidates {
    ServerId a = 0;
    ServerId b = 0;
  };

  /// Creates a router over `cache_nodes` (ids from
  /// `CacheCluster::AddCacheNode`, in any order; the first half becomes
  /// partition A, the second half partition B). Fewer than 2 nodes
  /// degenerates to plain consistent hashing (no cache layer).
  explicit DistCacheRouter(std::vector<ServerId> cache_nodes,
                           DistCacheConfig config = DistCacheConfig{});

  ServerId Route(uint64_t key, const RouteView& view) override;
  std::vector<ServerId> AllReplicas(uint64_t key,
                                    const RouteView& view) override;
  void OnLookup(uint64_t key, ServerId server) override;
  /// Health weight of a cache node in (0, 1]: the p2c comparison scales a
  /// node's load estimate by 1/weight, so a lameduck node (reduced
  /// weight) loses ties it used to win and sheds hot-key traffic to the
  /// other candidate — without ever being fenced out of the replica set
  /// (`AllReplicas` ignores weights: invalidations always reach it).
  /// Weights for ids outside the cache tier are ignored (shard-tier
  /// quarantine is the client's lameduck bypass, not the router's).
  void OnHealth(ServerId server, double weight) override;
  /// The other p2c candidate of a currently-hot `key` — where a hedged
  /// read can race a slow primary. kNoReplica for cold keys, primaries
  /// outside the candidate pair, or a degenerate tier.
  ServerId HedgeReplica(uint64_t key, ServerId primary,
                        const RouteView& view) override;

  /// The two candidates of `key` under the current partitioning.
  /// Meaningful only with >= 2 cache nodes.
  Candidates CandidatesFor(uint64_t key) const;

  /// True if `key` is currently in the hot set (routed to the cache
  /// layer).
  bool IsHot(uint64_t key) const { return hot_.count(key) != 0; }

  /// Current load estimate of cache node `node` (0 for unknown ids).
  uint64_t LoadEstimate(ServerId node) const;

  /// Current health weight of cache node `node` (1.0 for unknown ids and
  /// healthy nodes).
  double HealthWeight(ServerId node) const;

  /// Forces a control-plane epoch now: rebuild the hot set from the
  /// tracker's top `hot_keys` keys, halve load estimates, age the
  /// tracker. Normally driven automatically every `epoch_ops` routed ops.
  void EndEpoch();

  /// Reconfigures the cache tier (elastic cache-layer scaling): replaces
  /// the node list and re-partitions, clearing the hot set and the load
  /// estimates (the first epoch after a reconfiguration routes via the
  /// ring while the tracker re-derives the hot set). The caller MUST
  /// flush every cache node — old and new — cold
  /// (`CacheCluster::ForceColdRestart`): candidates change with the
  /// partitioning, and a copy stranded on an ex-candidate would stop
  /// receiving invalidations.
  void ResetCacheTier(std::vector<ServerId> cache_nodes);

  const std::vector<ServerId>& cache_nodes() const { return cache_nodes_; }
  /// Nodes in partition A / partition B (A takes the extra node when the
  /// tier size is odd).
  size_t partition_a_size() const { return split_; }
  size_t partition_b_size() const { return cache_nodes_.size() - split_; }
  /// True when the cache layer is in play (>= 2 nodes, one per partition).
  bool two_layer() const { return cache_nodes_.size() >= 2; }
  /// Control-plane epochs completed (automatic + forced).
  uint64_t epochs_completed() const { return epochs_completed_; }
  const DistCacheConfig& config() const { return config_; }

 private:
  DistCacheConfig config_;
  std::vector<ServerId> cache_nodes_;
  size_t split_ = 0;  // cache_nodes_[0, split) = A, [split, n) = B
  /// ServerId -> index into loads_ (parallel to cache_nodes_).
  FlatHashMap<uint64_t, uint32_t> node_slot_;
  std::vector<uint64_t> loads_;
  /// Per-node health weights (parallel to cache_nodes_; 1.0 = healthy).
  /// Reset to healthy on ResetCacheTier — clients re-signal on the next
  /// lameduck transition they observe.
  std::vector<double> weights_;
  /// Hot set as of the last epoch boundary (value unused).
  FlatHashMap<uint64_t, uint8_t> hot_;
  core::SpaceSavingTracker tracker_;
  uint64_t ops_in_epoch_ = 0;
  uint64_t epochs_completed_ = 0;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_DISTCACHE_ROUTER_H_
