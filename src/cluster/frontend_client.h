#ifndef COT_CLUSTER_FRONTEND_CLIENT_H_
#define COT_CLUSTER_FRONTEND_CLIENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.h"
#include "cluster/cache_cluster.h"
#include "cluster/routing.h"
#include "core/cot_cache.h"
#include "core/elastic_resizer.h"
#include "util/status.h"
#include "workload/types.h"

namespace cot::cluster {

/// Per-client traffic counters.
struct FrontendStats {
  uint64_t reads = 0;
  uint64_t updates = 0;
  uint64_t local_hits = 0;
  uint64_t backend_lookups = 0;
  uint64_t backend_hits = 0;
  uint64_t storage_reads = 0;

  /// Fraction of reads served by the local front-end cache.
  double LocalHitRate() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(local_hits) /
                            static_cast<double>(reads);
  }
};

/// The paper's modified cache-client library (Section 5.1): a front-end
/// server's view of the storage stack. It implements the client-driven
/// protocol of Section 2 —
///
///   Get: local cache → caching shard (via consistent hashing) → persistent
///        storage, filling both cache levels on the way back;
///   Set: invalidate locally, write storage, send a delete to the shard —
///
/// and, like the instrumented Spymemcached, counts the lookups it sends to
/// each shard per epoch. Those counters feed I_c, the client's locally
/// observed back-end load-imbalance, which drives CoT's elastic resizer
/// when one is attached.
///
/// `local_cache` may be null: a cacheless client (the paper's "no front-end
/// cache" baseline).
class FrontendClient {
 public:
  using Key = cache::Key;
  using Value = cache::Value;

  /// How updates propagate (paper Section 2: the model supports both the
  /// memcached invalidation protocol and write-through).
  enum class WritePolicy {
    /// Memcached client-driven protocol (the paper's default): invalidate
    /// the local copy, write storage, delete the shard copy.
    kInvalidate,
    /// Write-through: refresh the local copy and the shard copy in place
    /// (still writing storage). Fewer cold misses after updates, at the
    /// cost of pushing full values instead of small deletes.
    kWriteThrough,
  };

  /// Binds a client to `cluster` (borrowed; must outlive the client) with
  /// an owned local cache (or null for no cache).
  FrontendClient(CacheCluster* cluster,
                 std::unique_ptr<cache::Cache> local_cache);

  /// Replaces consistent-hash routing with `router` (borrowed; typically
  /// shared across clients) — how the server-side balancing comparators
  /// (SliceMap, HotKeyReplicator) plug in. Pass null to restore the ring.
  void SetRouter(RoutingPolicy* router) { router_ = router; }

  /// Selects the update-propagation protocol (default: kInvalidate).
  void SetWritePolicy(WritePolicy policy) { write_policy_ = policy; }
  WritePolicy write_policy() const { return write_policy_; }

  /// Enables CoT elastic resizing. The local cache must be a `CotCache`;
  /// fails with kFailedPrecondition otherwise. The resizer observes this
  /// client's per-epoch per-server lookup counts.
  Status EnableElasticResizing(const core::ResizerConfig& config);

  /// Where one operation was served from — the timing-relevant skeleton the
  /// end-to-end simulator (cot::sim) prices with its latency model.
  struct OpOutcome {
    /// Read served entirely from the local front-end cache.
    bool local_hit = false;
    /// A request (lookup or invalidation delete) travelled to a shard.
    bool backend_contacted = false;
    /// The persistent layer was read (back-end miss) or written (update).
    bool storage_accessed = false;
    /// The shard contacted, valid iff `backend_contacted`.
    ServerId server = 0;
  };

  /// Read path. Returns the value (never fails: storage is authoritative).
  Value Get(Key key);

  /// Update path (invalidate local + shard, write storage).
  void Set(Key key, Value value);

  /// Applies one workload operation (updates write a fresh version value).
  void Apply(const workload::Op& op);

  /// Like `Apply`, reporting where the operation was served from.
  OpOutcome ApplyDetailed(const workload::Op& op);

  /// The local cache; null for a cacheless client.
  cache::Cache* local_cache() { return local_cache_.get(); }
  const cache::Cache* local_cache() const { return local_cache_.get(); }

  /// The resizer, if `EnableElasticResizing` was called.
  core::ElasticResizer* resizer() { return resizer_.get(); }

  /// Lookups this client sent to each shard in the current epoch.
  const std::vector<uint64_t>& epoch_lookups() const {
    return epoch_lookups_;
  }
  /// Cumulative per-shard lookups from this client.
  const std::vector<uint64_t>& cumulative_lookups() const {
    return cumulative_lookups_;
  }
  /// This client's locally observed imbalance over the current epoch.
  double CurrentEpochImbalance() const;

  /// Traffic counters.
  const FrontendStats& stats() const { return stats_; }
  /// Zeroes traffic counters (epoch counters are unaffected).
  void ResetStats() { stats_ = FrontendStats(); }

 private:
  /// Post-operation bookkeeping shared by Get/Set: drives the resizer's
  /// epoch clock.
  void OnOperation();

  Value GetImpl(Key key, OpOutcome* outcome);
  void SetImpl(Key key, Value value, OpOutcome* outcome);
  /// Grows the per-server counter vectors when the cluster adds shards.
  void EnsureServerVectors();

  CacheCluster* cluster_;
  RoutingPolicy* router_ = nullptr;  // null = consistent hashing
  WritePolicy write_policy_ = WritePolicy::kInvalidate;
  std::unique_ptr<cache::Cache> local_cache_;
  core::CotCache* cot_cache_ = nullptr;  // set iff local cache is a CotCache
  std::unique_ptr<core::ElasticResizer> resizer_;
  std::vector<uint64_t> epoch_lookups_;
  std::vector<uint64_t> cumulative_lookups_;
  FrontendStats stats_;
  uint64_t update_version_ = 1;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_FRONTEND_CLIENT_H_
