#ifndef COT_CLUSTER_FRONTEND_CLIENT_H_
#define COT_CLUSTER_FRONTEND_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cache/cache.h"
#include "cluster/cache_cluster.h"
#include "cluster/fault_injector.h"
#include "cluster/health_monitor.h"
#include "cluster/retry_budget.h"
#include "cluster/routing.h"
#include "core/cot_cache.h"
#include "core/elastic_resizer.h"
#include "metrics/event_tracer.h"
#include "util/flat_hash_map.h"
#include "util/status.h"
#include "workload/types.h"

namespace cot::cluster {

/// Per-client traffic counters.
struct FrontendStats {
  uint64_t reads = 0;
  uint64_t updates = 0;
  uint64_t local_hits = 0;
  uint64_t backend_lookups = 0;
  uint64_t backend_hits = 0;
  uint64_t storage_reads = 0;

  // Availability / robustness counters (all zero in fault-free runs).
  /// Backend request attempts that failed (timeouts, crash windows).
  uint64_t failed_requests = 0;
  /// Re-attempts made after a transient failure.
  uint64_t retries = 0;
  /// Retries the client wanted but the cluster-wide retry budget denied
  /// (the op took its fallback path instead of re-asking the shard).
  uint64_t retries_suppressed = 0;
  /// Reads that contacted a shard, exhausted retries, and fell back to
  /// authoritative storage.
  uint64_t failovers = 0;
  /// Reads served directly from storage without contacting the shard
  /// because its circuit breaker was open (degraded mode).
  uint64_t degraded_ops = 0;
  /// Invalidation messages (deletes / write-through refreshes) delivered
  /// to a shard.
  uint64_t invalidations = 0;
  /// Invalidation messages that could not be delivered. Every loss is
  /// fenced: a crash-window loss is covered by the recovery generation
  /// bump, a transient loss escalates to `forced_restarts`.
  uint64_t lost_invalidations = 0;
  /// Fenced cold restarts this client forced after an undeliverable
  /// invalidation to a reachable shard.
  uint64_t forced_restarts = 0;
  /// Recovery cold restarts this client triggered (it was first to
  /// contact a shard after a crash window and bumped its generation).
  uint64_t cold_restarts = 0;
  /// Circuit-breaker transitions into the open state.
  uint64_t breaker_trips = 0;
  /// Requests served by a shard in a slow-degradation window.
  uint64_t slow_ops = 0;
  /// Sum over completed epochs of the number of shards that were
  /// unavailable (had at least one failed request) in that epoch.
  uint64_t unavailable_shard_epochs = 0;
  /// Fenced shard requests rejected because this client's routing epoch
  /// was stale (each is followed by a route-view refresh and a retry, or
  /// by the bounded-refresh escalation below).
  uint64_t epoch_mismatches = 0;
  /// Route-view refreshes performed after an epoch mismatch.
  uint64_t route_refreshes = 0;

  // Gray-failure defense counters (all zero unless
  // `FailurePolicy::health_enabled`). Accounting identity, hard-checked in
  // tests: hedges_sent == hedges_won + hedges_lost + hedges_suppressed,
  // and hedges_won + hedges_lost equals the RetryBudget withdrawals made
  // for hedging (a suppressed hedge withdrew nothing).
  /// Reads that triggered the hedge rule (ran past the adaptive hedge
  /// delay) — including those the budget then suppressed.
  uint64_t hedges_sent = 0;
  /// Hedges whose reissued request finished first.
  uint64_t hedges_won = 0;
  /// Hedges where the primary response arrived first anyway.
  uint64_t hedges_lost = 0;
  /// Hedge reissues denied by the retry budget (no request was sent).
  uint64_t hedges_suppressed = 0;
  /// Shards this client quarantined (health score sank below the enter
  /// threshold).
  uint64_t lameduck_entries = 0;
  /// Quarantined shards this client restored to healthy.
  uint64_t lameduck_exits = 0;
  /// Reads that bypassed a quarantined shard straight to storage.
  uint64_t lameduck_bypasses = 0;
  /// Probe reads deliberately sent to a quarantined shard.
  uint64_t lameduck_probes = 0;
  /// Successful attempts served inside a gray-degradation window.
  uint64_t gray_ops = 0;

  /// Fraction of reads served by the local front-end cache.
  double LocalHitRate() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(local_hits) /
                            static_cast<double>(reads);
  }

  /// Field-wise accumulation (experiment drivers aggregate clients).
  void Add(const FrontendStats& other);
};

/// Client-side failure handling knobs. Cooldowns are measured on the
/// client's logical operation clock (the same clock fault schedules use),
/// so behaviour is deterministic at any thread count.
struct FailurePolicy {
  /// Re-attempts after a failed backend request (total attempts =
  /// 1 + max_retries). Retries back off exponentially in simulated time
  /// (`LatencyModel::backoff_base_us`); logically they re-draw the
  /// transient-failure coin.
  uint32_t max_retries = 2;
  /// Consecutive failures on a shard before its circuit breaker opens.
  uint32_t breaker_failure_threshold = 3;
  /// Client ops an open breaker waits before letting one probe request
  /// through (half-open state).
  uint64_t breaker_cooldown_ops = 64;
  /// Recovery/generation rule: when true (default), the first contact
  /// with a shard after a crash window bumps its generation via
  /// `CacheCluster::AdvanceServerGeneration`, clearing it — the shard
  /// comes back cold, so deletes lost during the window can never surface
  /// as stale reads. False reproduces the stale-read hazard (tests only).
  bool recover_cold = true;
  /// Route-view refreshes allowed per operation after epoch-mismatch
  /// rejections. One refresh suffices per topology change (the refreshed
  /// view is current the instant it is taken), so this bound only guards
  /// against a pathological churn storm; on exhaustion a read falls back
  /// to authoritative storage (counted as a failover) and an invalidation
  /// escalates to a fenced cold restart of the key's owner.
  uint32_t max_route_refreshes = 4;
  /// Cluster-wide retry budget as a fraction of fresh backend traffic
  /// (0.1 = retries may consume up to ~10% of fresh requests). 0 — the
  /// default — disables the budget entirely: no shared bucket is created,
  /// preserving per-client determinism (see `RetryBudget`). The experiment
  /// drivers construct one shared `RetryBudget` per run when this is set
  /// — or one *per client* when the gray-failure defense is on, so
  /// budget-gated hedging stays byte-identical at any thread count.
  double retry_budget_ratio = 0.0;
  /// Bucket cap in whole tokens when the budget is enabled.
  double retry_budget_burst = 16.0;

  // --- Gray-failure defense (see DESIGN.md "Gray failures") ---
  /// Master switch: per-shard latency health scoring, adaptive deadlines
  /// and lameduck quarantine. Off by default — no HealthMonitor is
  /// allocated and every defense site is a null-pointer test, so
  /// fault-free runs are bit-identical to pre-defense builds.
  bool health_enabled = false;
  /// Hedged reads (requires `health_enabled`): a read observed to run
  /// past the adaptive hedge delay is reissued to the storage tier (or
  /// the other p2c replica under a router that offers one), first
  /// response wins. Strictly budget-gated when a RetryBudget is attached.
  bool hedging_enabled = false;
  /// Monitor tuning (quantile, EWMA alpha, deadline/hedge multipliers,
  /// lameduck thresholds, probe cadence).
  HealthConfig health;
  /// Nominal healthy backend read latency in us — the deterministic
  /// stand-in for a measured RTT: an attempt's observed latency is
  /// `nominal * slow_factor` from the fault injector's decision. Default
  /// mirrors the simulator's LatencyModel (rtt + base service).
  double health_nominal_latency_us = 394.0;
  /// Estimated storage-tier read latency in us (rtt + storage extra) —
  /// what a hedge to storage is expected to cost when racing the primary.
  double hedge_storage_latency_us = 644.0;
  /// p2c routing weight of a quarantined shard in (0, 1]: the router
  /// multiplies the shard's load estimate by 1/weight, shifting hot-key
  /// traffic to the other candidate without fencing the shard.
  double lameduck_weight = 0.25;
};

/// The paper's modified cache-client library (Section 5.1): a front-end
/// server's view of the storage stack. It implements the client-driven
/// protocol of Section 2 —
///
///   Get: local cache → caching shard (via consistent hashing) → persistent
///        storage, filling both cache levels on the way back;
///   Set: invalidate locally, write storage, send a delete to the shard —
///
/// and, like the instrumented Spymemcached, counts the lookups it sends to
/// each shard per epoch. Those counters feed I_c, the client's locally
/// observed back-end load-imbalance, which drives CoT's elastic resizer
/// when one is attached.
///
/// Failure awareness: with a `FaultInjector` attached, shard requests can
/// fail. Reads retry (bounded, exponential backoff in simulated time),
/// trip a per-shard circuit breaker after consecutive failures, and
/// degrade to the authoritative storage layer — so `Get` still always
/// returns a value. Invalidations bypass the breaker (they are
/// safety-critical); an undeliverable invalidation is fenced by a cold
/// restart so no stale read is ever served. See `FailurePolicy` and
/// DESIGN.md "Fault model and failure semantics".
///
/// Topology churn: the client routes against a cached `RingSnapshot` and
/// stamps every shard request with the snapshot's routing epoch. When the
/// tier grows or shrinks mid-run, the shard rejects the stale-epoch
/// request (`kEpochMismatch`); the client refreshes its route view,
/// re-routes, and retries — bounded by
/// `FailurePolicy::max_route_refreshes` and priced by the end-to-end
/// simulator. See DESIGN.md "Topology churn and routing epochs".
///
/// `local_cache` may be null: a cacheless client (the paper's "no front-end
/// cache" baseline).
class FrontendClient {
 public:
  using Key = cache::Key;
  using Value = cache::Value;

  /// How updates propagate (paper Section 2: the model supports both the
  /// memcached invalidation protocol and write-through).
  enum class WritePolicy {
    /// Memcached client-driven protocol (the paper's default): invalidate
    /// the local copy, write storage, delete the shard copy.
    kInvalidate,
    /// Write-through: refresh the local copy and the shard copy in place
    /// (still writing storage). Fewer cold misses after updates, at the
    /// cost of pushing full values instead of small deletes.
    kWriteThrough,
  };

  /// Binds a client to `cluster` (borrowed; must outlive the client) with
  /// an owned local cache (or null for no cache).
  FrontendClient(CacheCluster* cluster,
                 std::unique_ptr<cache::Cache> local_cache);

  /// Replaces consistent-hash routing with `router` (borrowed) — how the
  /// server-side balancing comparators (SliceMap, HotKeyReplicator) and
  /// the two-layer DistCache topology (DistCacheRouter) plug in. Routing
  /// decisions are made against this client's immutable route view (see
  /// `route_view()`), so the policy never races topology mutations. Pass
  /// null to restore the ring. Routers carrying per-client state (load
  /// estimates, hot sets) must be private to one client to preserve
  /// per-client determinism; stateless or serially-driven routers may be
  /// shared.
  void SetRouter(RoutingPolicy* router) { router_ = router; }
  /// The attached router (null = plain consistent hashing).
  RoutingPolicy* router() const { return router_; }

  /// The immutable routing view (epoch + ring) this client currently
  /// decides against — what it hands its router on every Route/AllReplicas
  /// call. Borrowed from the cached snapshot: valid until the next
  /// `RefreshRouteView`.
  RouteView route_view() const {
    return RouteView{snapshot_->epoch, &snapshot_->ring};
  }

  /// Selects the update-propagation protocol (default: kInvalidate).
  void SetWritePolicy(WritePolicy policy) { write_policy_ = policy; }
  WritePolicy write_policy() const { return write_policy_; }

  /// Attaches a fault oracle (borrowed; shared read-only across clients).
  /// `client_id` keys this client's transient-failure draws. Pass null to
  /// restore the never-fails cluster.
  void SetFaultInjector(const FaultInjector* injector, uint32_t client_id,
                        const FailurePolicy& policy = FailurePolicy());

  /// Attaches the cluster-wide retry-budget token bucket (borrowed; one
  /// instance shared by every client of the cluster; null — the default —
  /// means unlimited retries up to `FailurePolicy::max_retries`). When the
  /// bucket is dry a would-be retry is abandoned: the op takes the same
  /// fallback path as exhausted retries (reads fail over to storage,
  /// invalidations escalate to the loss fence), counted in
  /// `FrontendStats::retries_suppressed`. Note the shared bucket couples
  /// clients, so per-client determinism holds only without one attached.
  void SetRetryBudget(RetryBudget* budget) { retry_budget_ = budget; }

  /// Attaches a structured event sink (borrowed; null disables — the
  /// default, with zero cost beyond one predicted branch on cold paths).
  /// The client records breaker transitions, fault activations, retry
  /// episodes, and resizer epoch boundaries into it, all stamped with the
  /// client's logical op clock; the tracer is forwarded to the elastic
  /// resizer when one is (or becomes) attached. The tracer must be private
  /// to this client's driving thread (see metrics::EventTracer).
  void SetTracer(metrics::EventTracer* tracer);
  metrics::EventTracer* tracer() const { return tracer_; }

  const FailurePolicy& failure_policy() const { return failure_policy_; }

  /// Enables CoT elastic resizing. The local cache must be a `CotCache`;
  /// fails with kFailedPrecondition otherwise. The resizer observes this
  /// client's per-epoch per-server lookup counts.
  Status EnableElasticResizing(const core::ResizerConfig& config);

  /// Where one operation was served from — the timing-relevant skeleton the
  /// end-to-end simulator (cot::sim) prices with its latency model.
  struct OpOutcome {
    /// Read served entirely from the local front-end cache.
    bool local_hit = false;
    /// A request (lookup or invalidation delete) was *delivered* to a
    /// shard.
    bool backend_contacted = false;
    /// The persistent layer was read (back-end miss, failover, degraded
    /// read) or written (update).
    bool storage_accessed = false;
    /// The operation skipped its shard entirely (open circuit breaker)
    /// and was served from storage.
    bool degraded = false;
    /// Backend attempts that failed before the op completed (each costs a
    /// timeout plus backoff in the end-to-end simulator).
    uint32_t failed_attempts = 0;
    /// Epoch-mismatch rejections the op absorbed (each costs a wasted
    /// round trip plus a route-view refresh in the end-to-end simulator).
    uint32_t epoch_mismatches = 0;
    /// Service-time multiplier of the contacted shard (>= 1; slow-shard
    /// degradation windows).
    double slow_factor = 1.0;
    /// The shard contacted, valid iff `backend_contacted`.
    ServerId server = 0;
    /// Adaptive per-shard deadline in effect for this op's attempts (us);
    /// 0 means the legacy fixed timeout (health disabled). The simulator
    /// prices each failed attempt at this deadline instead of the fixed
    /// `LatencyModel::timeout_us`.
    double deadline_us = 0.0;
    /// A hedge was issued for this read: the simulator prices completion
    /// as min(primary path, hedge_delay_us + hedge path).
    bool hedged = false;
    /// The hedge response was (logically) first; the primary's reply was
    /// discarded.
    bool hedge_won = false;
    /// Adaptive delay after which the hedge was issued (us).
    double hedge_delay_us = 0.0;
    /// The hedge went to the other p2c replica instead of storage.
    bool hedge_to_replica = false;
    /// Read bypassed a lameduck-quarantined shard straight to storage
    /// (priced like a degraded read, but the shard is alive and unfenced).
    bool lameduck_bypass = false;
  };

  /// Read path. Always returns a value: storage is authoritative, and a
  /// shard failure degrades to a storage read rather than failing the op.
  Value Get(Key key);

  /// Batched read path — the multi-key `get` of the memcached protocol.
  /// Logically equivalent to `keys.size()` sequential `Get`s (same local
  /// probes and fills, same per-key shard/load accounting, op clock +1
  /// per key, every key always served), but the transport is amortized:
  /// local-cache misses are grouped by owning shard and each group is
  /// delivered as ONE fenced shard request — one mutex acquisition, one
  /// fault draw, one epoch check per sub-batch instead of per key.
  /// Local probes run for all keys at batch entry in key order;
  /// sub-batches are issued in ascending ServerId; local-cache fills
  /// happen after the fan-out, again in key order — so the client's
  /// logical behaviour stays a pure function of its own request stream.
  /// Fenced rejections refresh-and-regroup the affected keys (bounded by
  /// `FailurePolicy::max_route_refreshes`, then storage failover).
  /// Returns the values in key order.
  std::vector<Value> MultiGet(std::span<const Key> keys);

  /// Update path (invalidate local + shard, write storage).
  void Set(Key key, Value value);

  /// Applies one workload operation (updates write a fresh version value).
  void Apply(const workload::Op& op);

  /// Like `Apply`, reporting where the operation was served from.
  OpOutcome ApplyDetailed(const workload::Op& op);

  /// The local cache; null for a cacheless client.
  cache::Cache* local_cache() { return local_cache_.get(); }
  const cache::Cache* local_cache() const { return local_cache_.get(); }

  /// The resizer, if `EnableElasticResizing` was called.
  core::ElasticResizer* resizer() { return resizer_.get(); }

  /// Lookups this client sent to each shard in the current epoch.
  const std::vector<uint64_t>& epoch_lookups() const {
    return epoch_lookups_;
  }
  /// Cumulative per-shard lookups from this client.
  const std::vector<uint64_t>& cumulative_lookups() const {
    return cumulative_lookups_;
  }
  /// Cumulative failed/skipped requests per shard from this client.
  const std::vector<uint64_t>& failed_ops_per_server() const {
    return failed_ops_per_server_;
  }
  /// Shards this client saw fail at least once in the current epoch.
  /// Excluded from the epoch's imbalance measurement: a dead shard's zero
  /// lookups are absence of signal, not balance information.
  const std::vector<uint8_t>& epoch_shard_unavailable() const {
    return epoch_shard_unavailable_;
  }
  /// This client's locally observed imbalance over the current epoch,
  /// computed over shards that were available all epoch. Returns 1.0 when
  /// fewer than two shards produced usable signal (e.g. all traffic
  /// failed over) — never NaN or a division by zero.
  double CurrentEpochImbalance() const;

  /// This client's logical operation clock (operations applied so far) —
  /// the clock fault schedules are keyed on.
  uint64_t op_clock() const { return op_clock_; }

  /// Routing epoch of the client's cached route view. Requests carry this
  /// epoch; a topology change makes it stale until the first fenced
  /// rejection triggers `RefreshRouteView`.
  uint64_t route_view_epoch() const {
    return snapshot_ != nullptr ? snapshot_->epoch : 0;
  }

  /// Re-reads the cluster's routing snapshot (blocks while a topology
  /// mutation is in flight, i.e. until the new owners are warm) and grows
  /// the per-shard counter vectors if the tier grew. Called automatically
  /// on epoch mismatch; exposed for tests.
  void RefreshRouteView();

  /// Traffic counters.
  const FrontendStats& stats() const { return stats_; }
  /// Zeroes traffic counters (epoch counters are unaffected).
  void ResetStats() { stats_ = FrontendStats(); }

  /// The gray-failure health monitor; null unless
  /// `FailurePolicy::health_enabled` was set when the fault injector was
  /// attached.
  const HealthMonitor* health_monitor() const { return health_.get(); }

 private:
  /// Per-shard circuit breaker (client-local, logical-clock cooldowns).
  struct Breaker {
    uint32_t consecutive_failures = 0;
    bool open = false;
    uint64_t open_until = 0;  // op clock when a half-open probe is allowed
  };

  /// Post-operation bookkeeping shared by Get/Set: drives the resizer's
  /// epoch clock.
  void OnOperation();

  Value GetImpl(Key key, OpOutcome* outcome);
  void SetImpl(Key key, Value value, OpOutcome* outcome);
  /// Ring-path backend transport for one read at logical time `now`:
  /// fault draws, fenced lookup, bounded refresh-and-reroute, storage
  /// failover. Updates every transport counter but never touches the
  /// local cache or the resizer clock — callers fill and tick. Shared by
  /// the per-key read path and MultiGet's deferred duplicate re-fetch.
  Value RingFetch(Key key, uint64_t now, OpOutcome* outcome);
  /// Grows the per-server counter vectors to cover the cached route view
  /// (lock-free; constructor and RefreshRouteView only — the per-op paths
  /// never touch the cluster's topology lock).
  void EnsureServerVectors();
  /// Router-path guard: grows the counter vectors to cover `sid`, which a
  /// custom router may mint beyond the cached snapshot's server count.
  void EnsureServerCapacity(ServerId sid);

  /// True if the breaker currently blocks requests to `sid` (open and not
  /// yet due for a half-open probe).
  bool BreakerBlocks(ServerId sid, uint64_t now) const;
  /// Failure bookkeeping: trips/re-opens the breaker, marks the shard
  /// unavailable this epoch.
  void RecordFailure(ServerId sid, uint64_t now);
  void RecordSuccess(ServerId sid);
  /// Recovery/generation rule: before touching a shard, make sure it has
  /// restarted cold for every crash window this client knows has ended.
  void MaybeRecoverShard(ServerId sid, uint64_t now);
  /// Attempts delivery of one backend request at logical time `now`
  /// (bounded retries, no retry once a crash is diagnosed). Returns true
  /// if delivered; updates failure counters and `outcome` either way.
  /// Callers check the breaker first where skipping is allowed (reads);
  /// invalidations call this unconditionally.
  bool TryDeliver(ServerId sid, uint64_t now, OpOutcome* outcome);
  /// Delivers an invalidation (delete, or write-through refresh when
  /// `value` is set) to the explicit target `sid` with loss fencing, using
  /// the legacy unfenced shard ops. The router path (`SetRouter`): replica
  /// sets are the router's business, not the ring's, so epoch fencing does
  /// not apply.
  void DeliverInvalidation(ServerId sid, Key key,
                           const std::optional<Value>& value, uint64_t now,
                           OpOutcome* outcome);
  /// Ring-routed invalidation with epoch fencing: routes via the cached
  /// snapshot, refreshes-and-reroutes on mismatch (bounded), and escalates
  /// an exhausted refresh budget to a fenced cold restart of the key's
  /// current owner — an undelivered delete must never become a stale read.
  void DeliverInvalidationFenced(Key key, const std::optional<Value>& value,
                                 uint64_t now, OpOutcome* outcome);
  /// Records one epoch-mismatch rejection (stats + trace).
  void NoteEpochMismatch(ServerId sid, uint64_t client_epoch,
                         uint64_t shard_epoch, uint64_t now,
                         OpOutcome* outcome);
  /// Health bookkeeping for one successful delivery: feeds the monitor
  /// the attempt's deterministic observed latency, counts gray exposure,
  /// and handles lameduck enter/exit (stats, trace, router weight).
  void ObserveHealth(ServerId sid, const FaultInjector::Decision& decision,
                     uint64_t now);
  /// Gray-failure read bypass: true when `sid` is quarantined and this
  /// read is not due to probe it — the caller serves the read from
  /// storage instead. Counts bypasses/probes.
  bool LameduckBypass(ServerId sid, OpOutcome* outcome);
  /// Hedged-read decision for one successfully delivered read (or read
  /// sub-batch) whose attempt ran `slow_factor` times slow on `sid`. May
  /// consume one retry-budget token; updates hedge stats, trace, and the
  /// outcome's pricing fields.
  void MaybeHedge(Key key, ServerId sid, uint64_t now, double slow_factor,
                  OpOutcome* outcome);
  /// Closes the current epoch's availability accounting.
  void CloseEpochAvailability();

  CacheCluster* cluster_;
  metrics::EventTracer* tracer_ = nullptr;
  RoutingPolicy* router_ = nullptr;  // null = consistent hashing
  // The cached route view: immutable snapshot of (epoch, ring). Routing
  // reads it lock-free; it is replaced only by RefreshRouteView after a
  // fenced rejection, so a client's view — and thus its entire logical
  // behaviour — is a pure function of its own request stream.
  std::shared_ptr<const CacheCluster::RingSnapshot> snapshot_;
  WritePolicy write_policy_ = WritePolicy::kInvalidate;
  std::unique_ptr<cache::Cache> local_cache_;
  core::CotCache* cot_cache_ = nullptr;  // set iff local cache is a CotCache
  std::unique_ptr<core::ElasticResizer> resizer_;
  const FaultInjector* fault_injector_ = nullptr;
  RetryBudget* retry_budget_ = nullptr;
  uint32_t fault_client_id_ = 0;
  FailurePolicy failure_policy_;
  /// Gray-failure defense state; allocated only when
  /// `FailurePolicy::health_enabled` (null = zero-cost fault-free path).
  std::unique_ptr<HealthMonitor> health_;
  /// Slow factor of the most recent successful TryDeliver — the
  /// per-request signal MaybeHedge needs (OpOutcome::slow_factor is a max
  /// over the whole op, which may span several sub-batch requests).
  double last_delivery_slow_factor_ = 1.0;
  uint64_t op_clock_ = 0;
  std::vector<uint64_t> epoch_lookups_;
  std::vector<uint64_t> cumulative_lookups_;
  std::vector<uint64_t> failed_ops_per_server_;
  std::vector<uint8_t> epoch_shard_unavailable_;
  std::vector<Breaker> breakers_;
  FrontendStats stats_;
  uint64_t update_version_ = 1;

  /// One read still owed a backend visit after the local probe phase.
  struct BatchPending {
    Key key;
    uint32_t slot;  // index into the batch's keys/out arrays
    ServerId sid;
  };
  // MultiGet scratch, reused across calls so a batched driver pays zero
  // steady-state allocations per batch (the client is single-threaded, so
  // plain members are safe). Contents are meaningless between calls.
  std::vector<BatchPending> batch_pending_;
  std::vector<BatchPending> batch_rejected_;
  std::vector<uint32_t> batch_miss_slots_;
  std::vector<uint32_t> batch_deferred_slots_;
  cot::FlatHashMap<Key, uint32_t> batch_missed_;
  std::vector<Key> batch_group_keys_;
  std::vector<Value> batch_group_values_;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_FRONTEND_CLIENT_H_
