#include "cluster/experiment.h"

#include <algorithm>

#include "cluster/cache_cluster.h"
#include "metrics/imbalance.h"

namespace cot::cluster {

StatusOr<ExperimentResult> RunExperiment(
    const ExperimentConfig& config, const CacheFactory& factory,
    const core::ResizerConfig* resizer_config) {
  if (config.num_clients == 0) {
    return Status::InvalidArgument("num_clients must be >= 1");
  }
  if (config.phases.empty()) {
    return Status::InvalidArgument("at least one workload phase is required");
  }

  // Per-client op budget: split total_ops evenly; a single phase with
  // num_ops == 0 absorbs the whole per-client budget.
  uint64_t ops_per_client = config.total_ops / config.num_clients;
  std::vector<workload::PhaseSpec> phases = config.phases;
  if (phases.size() == 1 && phases[0].num_ops == 0) {
    phases[0].num_ops = ops_per_client;
  }

  CacheCluster cluster(config.num_servers, config.key_space,
                       config.virtual_nodes);
  if (config.preload_backend) {
    for (uint64_t key = 0; key < config.key_space; ++key) {
      cluster.server(cluster.ring().ServerFor(key))
          .Set(key, StorageLayer::InitialValue(key));
    }
    cluster.ResetServerCounters();
  }

  std::vector<std::unique_ptr<FrontendClient>> clients;
  std::vector<workload::OpStream> streams;
  clients.reserve(config.num_clients);
  streams.reserve(config.num_clients);
  for (uint32_t i = 0; i < config.num_clients; ++i) {
    clients.push_back(std::make_unique<FrontendClient>(
        &cluster, factory ? factory(i) : nullptr));
    if (resizer_config != nullptr && clients.back()->local_cache() != nullptr) {
      Status s = clients.back()->EnableElasticResizing(*resizer_config);
      if (!s.ok()) return s;
    }
    auto stream =
        workload::OpStream::Create(config.key_space, phases, config.seed + i);
    if (!stream.ok()) return stream.status();
    streams.push_back(std::move(stream).value());
  }

  // Round-robin interleave — the in-process analogue of the paper's
  // concurrent client threads issuing back-to-back requests.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (uint32_t i = 0; i < config.num_clients; ++i) {
      if (streams[i].Done()) continue;
      clients[i]->Apply(streams[i].Next());
      progressed = true;
    }
  }

  ExperimentResult result;
  result.per_server_lookups = cluster.PerServerLookups();
  result.imbalance = metrics::LoadImbalance(result.per_server_lookups);
  result.total_backend_lookups =
      metrics::TotalLoad(result.per_server_lookups);
  for (const auto& client : clients) {
    const FrontendStats& s = client->stats();
    result.aggregate.reads += s.reads;
    result.aggregate.updates += s.updates;
    result.aggregate.local_hits += s.local_hits;
    result.aggregate.backend_lookups += s.backend_lookups;
    result.aggregate.backend_hits += s.backend_hits;
    result.aggregate.storage_reads += s.storage_reads;
  }
  result.local_hit_rate = result.aggregate.LocalHitRate();
  return result;
}

}  // namespace cot::cluster
