#include "cluster/experiment.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/cache_cluster.h"
#include "cluster/distcache_router.h"
#include "metrics/imbalance.h"

namespace cot::cluster {

namespace {

/// YCSB-style load phase: install every key on its owning shard. With T > 1
/// the key range splits into T contiguous chunks — shard `Set` is
/// thread-safe, and the end state is identical regardless of interleaving
/// because each key is written exactly once.
void PreloadBackend(CacheCluster& cluster, uint64_t key_space,
                    uint32_t num_threads) {
  auto load_range = [&cluster](uint64_t begin, uint64_t end) {
    for (uint64_t key = begin; key < end; ++key) {
      cluster.server(cluster.ring().ServerFor(key))
          .Set(key, StorageLayer::InitialValue(key));
    }
  };
  if (num_threads <= 1 || key_space < 2 * num_threads) {
    load_range(0, key_space);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    uint64_t chunk = key_space / num_threads;
    for (uint32_t t = 0; t < num_threads; ++t) {
      uint64_t begin = t * chunk;
      uint64_t end = (t + 1 == num_threads) ? key_space : begin + chunk;
      workers.emplace_back(load_range, begin, end);
    }
    for (std::thread& w : workers) w.join();
  }
  cluster.ResetServerCounters();
}

/// Drives clients `owned` round-robin until each has either exhausted its
/// stream or completed exactly `limit` operations. `limit` is the churn
/// barrier: pausing every client at the same point of its own logical
/// clock is what makes mid-run topology mutations deterministic at any
/// thread count. With `batch_size` > 1, each client turn issues a run of
/// up to `batch_size` consecutive reads as one MultiGet (never crossing
/// `limit` — a batch counts one op per key on the clock); an update is
/// applied singly, flushing any shorter read run before it.
void DriveClientsUntil(const std::vector<uint32_t>& owned,
                       std::vector<std::unique_ptr<FrontendClient>>& clients,
                       std::vector<workload::OpStream>& streams,
                       uint64_t limit, uint32_t batch_size) {
  std::vector<cache::Key> batch;
  if (batch_size > 1) batch.reserve(batch_size);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (uint32_t i : owned) {
      if (streams[i].Done() || clients[i]->op_clock() >= limit) continue;
      if (batch_size > 1) {
        batch.clear();
        uint64_t room = limit - clients[i]->op_clock();
        while (batch.size() < batch_size && batch.size() < room &&
               !streams[i].Done() &&
               streams[i].Peek().type == workload::OpType::kRead) {
          batch.push_back(streams[i].Next().key);
        }
        if (!batch.empty()) {
          clients[i]->MultiGet(batch);
        } else {
          // The next op is an update (or the stream just ended at the
          // peek): apply it singly.
          clients[i]->Apply(streams[i].Next());
        }
      } else {
        clients[i]->Apply(streams[i].Next());
      }
      progressed = true;
    }
  }
}

/// Churn events sharing one `at_op` barrier.
struct ChurnEventGroup {
  uint64_t at_op = 0;
  std::vector<ChurnEvent> events;
};

std::vector<ChurnEventGroup> GroupChurnEvents(const ChurnSchedule& churn) {
  std::vector<ChurnEventGroup> groups;
  for (const ChurnEvent& e : churn.events) {
    if (groups.empty() || groups.back().at_op != e.at_op) {
      groups.push_back({e.at_op, {}});
    }
    groups.back().events.push_back(e);
  }
  return groups;
}

/// Applies one barrier group against the live cluster, recording a
/// topology-change trace event per mutation on the controller tracer (the
/// synthetic client with id == num_clients). The schedule was validated up
/// front, so individual mutations cannot fail.
void ApplyChurnGroup(const ChurnEventGroup& group, CacheCluster& cluster,
                     metrics::EventTracer* tracer) {
  for (const ChurnEvent& e : group.events) {
    uint64_t migrated_before = cluster.topology_stats().keys_migrated;
    ServerId target = e.server;
    switch (e.action) {
      case ChurnAction::kAddServer:
        target = cluster.AddServer();
        break;
      case ChurnAction::kRemoveServer: {
        Status s = cluster.RemoveServer(e.server);
        assert(s.ok() && "validated churn remove failed");
        (void)s;
        break;
      }
      case ChurnAction::kRejoinServer: {
        Status s = cluster.RejoinServer(e.server);
        assert(s.ok() && "validated churn rejoin failed");
        (void)s;
        break;
      }
    }
    if (tracer != nullptr) {
      CacheCluster::TopologyStats after = cluster.topology_stats();
      tracer->Record(group.at_op,
                     metrics::TopologyChangePayload{
                         after.routing_epoch, ToString(e.action), target,
                         after.keys_migrated - migrated_before,
                         cluster.active_server_count()});
    }
  }
}

/// Reusable rendezvous for the threaded churn engine: all `parties`
/// threads drive their clients to the barrier op, arrive, and the *last*
/// arriver applies the topology mutation while everyone else waits — so
/// the mutation never races client traffic and every client observes it
/// at the same point of its own stream.
class ChurnBarrier {
 public:
  explicit ChurnBarrier(uint32_t parties) : parties_(parties) {}

  template <typename Apply>
  void ArriveAndWait(Apply&& apply) {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t generation = generation_;
    if (++arrived_ == parties_) {
      apply();
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != generation; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const uint32_t parties_;
  uint32_t arrived_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace

StatusOr<Topology> ParseTopology(const std::string& name) {
  if (name == "ring") return Topology::kRing;
  if (name == "distcache") return Topology::kDistCache;
  return Status::InvalidArgument("unknown topology '" + name +
                                 "' (valid: ring, distcache)");
}

const char* ToString(Topology topology) {
  switch (topology) {
    case Topology::kRing:
      return "ring";
    case Topology::kDistCache:
      return "distcache";
  }
  return "?";
}

void ExportMetrics(ExperimentResult* result) {
  metrics::MetricsRegistry& reg = result->metrics;
  const FrontendStats& a = result->aggregate;
  reg.SetCounter("client/reads", a.reads);
  reg.SetCounter("client/updates", a.updates);
  reg.SetCounter("client/local_hits", a.local_hits);
  reg.SetCounter("client/backend_lookups", a.backend_lookups);
  reg.SetCounter("client/backend_hits", a.backend_hits);
  reg.SetCounter("client/storage_reads", a.storage_reads);
  reg.SetCounter("client/invalidations", a.invalidations);
  reg.SetCounter("client/epoch_mismatches", a.epoch_mismatches);
  reg.SetCounter("client/route_refreshes", a.route_refreshes);
  reg.SetCounter("faults/failed_requests", a.failed_requests);
  reg.SetCounter("faults/retries", a.retries);
  reg.SetCounter("faults/retries_suppressed", a.retries_suppressed);
  reg.SetCounter("faults/failovers", a.failovers);
  reg.SetCounter("faults/degraded_ops", a.degraded_ops);
  reg.SetCounter("faults/lost_invalidations", a.lost_invalidations);
  reg.SetCounter("faults/forced_restarts", a.forced_restarts);
  reg.SetCounter("faults/cold_restarts", a.cold_restarts);
  reg.SetCounter("faults/breaker_trips", a.breaker_trips);
  reg.SetCounter("faults/slow_ops", a.slow_ops);
  reg.SetCounter("faults/unavailable_shard_epochs",
                 a.unavailable_shard_epochs);
  reg.SetCounter("health/hedges_sent", a.hedges_sent);
  reg.SetCounter("health/hedges_won", a.hedges_won);
  reg.SetCounter("health/hedges_lost", a.hedges_lost);
  reg.SetCounter("health/hedges_suppressed", a.hedges_suppressed);
  reg.SetCounter("health/lameduck_entries", a.lameduck_entries);
  reg.SetCounter("health/lameduck_exits", a.lameduck_exits);
  reg.SetCounter("health/lameduck_bypasses", a.lameduck_bypasses);
  reg.SetCounter("health/lameduck_probes", a.lameduck_probes);
  reg.SetCounter("health/gray_ops", a.gray_ops);
  char name[64];
  for (size_t i = 0; i < result->per_server_lookups.size(); ++i) {
    std::snprintf(name, sizeof(name), "shard/%zu/lookups", i);
    reg.SetCounter(name, result->per_server_lookups[i]);
  }
  for (size_t i = 0; i < result->unavailable_ops_per_server.size(); ++i) {
    if (result->unavailable_ops_per_server[i] == 0) continue;
    std::snprintf(name, sizeof(name), "shard/%zu/unavailable_ops", i);
    reg.SetCounter(name, result->unavailable_ops_per_server[i]);
  }
  for (size_t i = 0; i < result->cache_node_lookups.size(); ++i) {
    std::snprintf(name, sizeof(name), "cache_node/%zu/lookups", i);
    reg.SetCounter(name, result->cache_node_lookups[i]);
  }
  reg.SetCounter("churn/topology_changes", result->topology_changes);
  reg.SetCounter("churn/keys_migrated", result->keys_migrated);
  reg.SetCounter("churn/epoch_rejects", result->epoch_rejects);
  reg.SetGauge("churn/routing_epoch",
               static_cast<double>(result->routing_epoch));
  reg.SetGauge("churn/final_active_servers",
               static_cast<double>(result->final_active_servers));
  reg.SetGauge("imbalance", result->imbalance);
  reg.SetGauge("local_hit_rate", result->local_hit_rate);
  reg.SetCounter("trace/dropped", result->trace_dropped);
  for (const metrics::TraceEvent& event : result->trace) {
    std::snprintf(name, sizeof(name), "trace/events/%.*s",
                  static_cast<int>(ToString(event.type).size()),
                  ToString(event.type).data());
    reg.IncrementCounter(name);
  }
}

StatusOr<ExperimentResult> RunExperiment(
    const ExperimentConfig& config, const CacheFactory& factory,
    const core::ResizerConfig* resizer_config) {
  if (config.num_clients == 0) {
    return Status::InvalidArgument("num_clients must be >= 1");
  }
  if (config.phases.empty()) {
    return Status::InvalidArgument("at least one workload phase is required");
  }
  if (config.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (config.topology == Topology::kDistCache && config.cache_nodes < 2) {
    return Status::InvalidArgument(
        "distcache topology needs cache_nodes >= 2 (one per independent "
        "partition)");
  }

  // Per-client op budget: split total_ops evenly; a single phase with
  // num_ops == 0 absorbs the whole per-client budget.
  uint64_t ops_per_client = config.total_ops / config.num_clients;
  std::vector<workload::PhaseSpec> phases = config.phases;
  if (phases.size() == 1 && phases[0].num_ops == 0) {
    phases[0].num_ops = ops_per_client;
  }

  ChurnSchedule churn = config.churn;
  if (!churn.empty()) {
    Status s = churn.Validate(config.num_servers);
    if (!s.ok()) return s;
  }

  FaultSchedule faults = config.faults;
  if (!faults.empty()) {
    // Validate against the *largest* tier the run reaches: a fault window
    // may legitimately target a shard that churn only creates mid-run.
    Status s = faults.Validate(churn.MaxServerCount(config.num_servers));
    if (!s.ok()) return s;
  }

  // Schedules are authored in plain shard-id space, where the j-th
  // churn-added shard gets id num_servers + j. kDistCache inserts
  // `cache_nodes` ids between the initial shards and any added shards, so
  // after validating in the authored space, re-base references to added
  // shards onto the actual id space.
  if (config.topology == Topology::kDistCache) {
    for (ChurnEvent& e : churn.events) {
      if (e.server >= config.num_servers) e.server += config.cache_nodes;
    }
    for (FaultEvent& e : faults.events) {
      if (e.server >= config.num_servers) e.server += config.cache_nodes;
    }
  }

  std::unique_ptr<FaultInjector> injector;
  if (!faults.empty()) {
    injector = std::make_unique<FaultInjector>(faults);
  }

  CacheCluster cluster(config.num_servers, config.key_space,
                       config.virtual_nodes);
  if (config.preload_backend) {
    PreloadBackend(cluster, config.key_space, config.num_threads);
  }

  // Upper cache tier (kDistCache): off-ring nodes, created after the
  // preload so their lookup counters only ever see routed traffic.
  std::vector<ServerId> cache_node_ids;
  if (config.topology == Topology::kDistCache) {
    cache_node_ids.reserve(config.cache_nodes);
    for (uint32_t i = 0; i < config.cache_nodes; ++i) {
      cache_node_ids.push_back(cluster.AddCacheNode(config.cache_node_items));
    }
  }

  // One shared retry-budget bucket per run (opt-in; see FailurePolicy).
  // With the gray-failure defense on, the bucket is per *client* instead:
  // budget-gated hedging feeds back into the op outcome, so a shared
  // bucket would make each client's results depend on sibling traffic and
  // break the byte-identical-at-any-thread-count contract.
  std::unique_ptr<RetryBudget> retry_budget;
  std::vector<std::unique_ptr<RetryBudget>> client_budgets;
  const bool per_client_budget =
      config.failure_policy.retry_budget_ratio > 0.0 &&
      (config.failure_policy.health_enabled ||
       config.failure_policy.hedging_enabled);
  if (config.failure_policy.retry_budget_ratio > 0.0 && !per_client_budget) {
    retry_budget = std::make_unique<RetryBudget>(
        config.failure_policy.retry_budget_ratio,
        config.failure_policy.retry_budget_burst);
  }
  if (per_client_budget) client_budgets.reserve(config.num_clients);

  std::vector<std::unique_ptr<FrontendClient>> clients;
  std::vector<workload::OpStream> streams;
  std::vector<std::unique_ptr<metrics::EventTracer>> tracers;
  // One private router per client (kDistCache): routers are stateful (hot
  // set, load estimates), so sharing one across threads would race and —
  // worse — make per-client stats depend on interleaving.
  std::vector<std::unique_ptr<DistCacheRouter>> routers;
  clients.reserve(config.num_clients);
  streams.reserve(config.num_clients);
  if (config.topology == Topology::kDistCache) {
    routers.reserve(config.num_clients);
  }
  for (uint32_t i = 0; i < config.num_clients; ++i) {
    clients.push_back(std::make_unique<FrontendClient>(
        &cluster, factory ? factory(i) : nullptr));
    if (config.topology == Topology::kDistCache) {
      DistCacheConfig dc;
      dc.hot_keys = config.distcache_hot_keys;
      dc.epoch_ops = config.distcache_epoch_ops;
      routers.push_back(std::make_unique<DistCacheRouter>(cache_node_ids, dc));
      clients.back()->SetRouter(routers.back().get());
    }
    if (injector != nullptr) {
      clients.back()->SetFaultInjector(injector.get(), i,
                                       config.failure_policy);
    }
    if (retry_budget != nullptr) {
      clients.back()->SetRetryBudget(retry_budget.get());
    } else if (per_client_budget) {
      client_budgets.push_back(std::make_unique<RetryBudget>(
          config.failure_policy.retry_budget_ratio,
          config.failure_policy.retry_budget_burst));
      clients.back()->SetRetryBudget(client_budgets.back().get());
    }
    if (config.trace_capacity > 0) {
      // One private tracer per client, written only by the thread that
      // drives the client — merged after the join below.
      tracers.push_back(std::make_unique<metrics::EventTracer>(
          config.trace_capacity, i));
      clients.back()->SetTracer(tracers.back().get());
    }
    if (resizer_config != nullptr && clients.back()->local_cache() != nullptr) {
      Status s = clients.back()->EnableElasticResizing(*resizer_config);
      if (!s.ok()) return s;
    }
    auto stream =
        workload::OpStream::Create(config.key_space, phases, config.seed + i);
    if (!stream.ok()) return stream.status();
    streams.push_back(std::move(stream).value());
  }

  // Topology mutations trace to a synthetic "controller" client with id
  // num_clients — its (client, seq) keys merge deterministically after
  // every real client's events.
  std::unique_ptr<metrics::EventTracer> controller_tracer;
  if (config.trace_capacity > 0 && !churn.empty()) {
    controller_tracer = std::make_unique<metrics::EventTracer>(
        config.trace_capacity, config.num_clients);
  }
  const std::vector<ChurnEventGroup> groups = GroupChurnEvents(churn);

  uint32_t num_threads = std::min(config.num_threads, config.num_clients);
  if (num_threads <= 1) {
    // Round-robin interleave — the in-process analogue of the paper's
    // concurrent client threads issuing back-to-back requests. Churn
    // groups partition the run: drive everyone to the barrier op, mutate,
    // resume.
    std::vector<uint32_t> all(config.num_clients);
    for (uint32_t i = 0; i < config.num_clients; ++i) all[i] = i;
    for (const ChurnEventGroup& group : groups) {
      DriveClientsUntil(all, clients, streams, group.at_op,
                        config.batch_size);
      ApplyChurnGroup(group, cluster, controller_tracer.get());
      // Router clients route through the unfenced path, so the barrier is
      // their only chance to observe the new ring. Ring clients keep their
      // stale snapshot on purpose — the epoch fence is what catches them.
      for (uint32_t i : all) {
        if (clients[i]->router() != nullptr) clients[i]->RefreshRouteView();
      }
    }
    DriveClientsUntil(all, clients, streams, UINT64_MAX, config.batch_size);
  } else {
    // Client i runs on thread i % T. Each client's cache, stream, and stats
    // are private to its thread; only the shared back-end (thread-safe) is
    // touched concurrently. Every thread walks the same churn-group
    // sequence, so barrier arrivals pair up across threads in order.
    std::vector<std::vector<uint32_t>> owned(num_threads);
    for (uint32_t i = 0; i < config.num_clients; ++i) {
      owned[i % num_threads].push_back(i);
    }
    ChurnBarrier barrier(num_threads);
    auto drive = [&](const std::vector<uint32_t>& mine) {
      for (const ChurnEventGroup& group : groups) {
        DriveClientsUntil(mine, clients, streams, group.at_op,
                          config.batch_size);
        barrier.ArriveAndWait([&] {
          ApplyChurnGroup(group, cluster, controller_tracer.get());
        });
        // Same refresh as the serial engine, but each thread refreshes only
        // its own clients — no client is touched off its driving thread.
        for (uint32_t i : mine) {
          if (clients[i]->router() != nullptr) clients[i]->RefreshRouteView();
        }
      }
      DriveClientsUntil(mine, clients, streams, UINT64_MAX,
                        config.batch_size);
    };
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) {
      workers.emplace_back(drive, std::cref(owned[t]));
    }
    for (std::thread& w : workers) w.join();
  }

  ExperimentResult result;
  std::vector<uint64_t> all_lookups = cluster.PerServerLookups();
  result.cache_node_ids = cluster.CacheNodeIds();
  if (result.cache_node_ids.empty()) {
    result.per_server_lookups = std::move(all_lookups);
  } else {
    // Partition loads: `imbalance` is the *shard* imbalance (comparable to
    // ring runs); cache-node loads are reported alongside, not mixed in.
    std::vector<bool> is_cache(all_lookups.size(), false);
    result.cache_node_lookups.reserve(result.cache_node_ids.size());
    for (ServerId id : result.cache_node_ids) {
      is_cache[id] = true;
      result.cache_node_lookups.push_back(all_lookups[id]);
    }
    result.per_server_lookups.reserve(all_lookups.size() -
                                      result.cache_node_ids.size());
    for (size_t i = 0; i < all_lookups.size(); ++i) {
      if (!is_cache[i]) result.per_server_lookups.push_back(all_lookups[i]);
    }
  }
  result.imbalance = metrics::LoadImbalance(result.per_server_lookups);
  result.total_backend_lookups =
      metrics::TotalLoad(result.per_server_lookups);
  result.per_client.reserve(clients.size());
  result.unavailable_ops_per_server.assign(cluster.server_count(), 0);
  for (const auto& client : clients) {
    const FrontendStats& s = client->stats();
    result.per_client.push_back(s);
    result.aggregate.Add(s);
    const std::vector<uint64_t>& failed = client->failed_ops_per_server();
    for (size_t i = 0;
         i < failed.size() && i < result.unavailable_ops_per_server.size();
         ++i) {
      result.unavailable_ops_per_server[i] += failed[i];
    }
  }
  result.local_hit_rate = result.aggregate.LocalHitRate();
  CacheCluster::TopologyStats tstats = cluster.topology_stats();
  result.topology_changes = tstats.topology_changes;
  result.keys_migrated = tstats.keys_migrated;
  result.routing_epoch = tstats.routing_epoch;
  result.epoch_rejects = tstats.epoch_rejects;
  result.final_active_servers = cluster.active_server_count();
  if (!tracers.empty() || controller_tracer != nullptr) {
    std::vector<const metrics::EventTracer*> views;
    views.reserve(tracers.size() + 1);
    for (const auto& t : tracers) {
      views.push_back(t.get());
      result.trace_dropped += t->dropped();
    }
    if (controller_tracer != nullptr) {
      views.push_back(controller_tracer.get());
      result.trace_dropped += controller_tracer->dropped();
    }
    result.trace = metrics::EventTracer::Merge(views);
  }
  ExportMetrics(&result);
  return result;
}

}  // namespace cot::cluster
