#include "cluster/cache_cluster.h"

#include <mutex>

namespace cot::cluster {

namespace {

/// Expected resident items per shard after a full preload: an even split of
/// the key space plus consistent-hashing slack (ownership spread), so the
/// preload never rehashes a shard's store.
size_t PerShardReserve(uint64_t key_space_size, uint32_t num_servers) {
  return static_cast<size_t>(key_space_size / num_servers +
                             key_space_size / (num_servers * 4) + 16);
}

}  // namespace

CacheCluster::CacheCluster(uint32_t num_servers, uint64_t key_space_size,
                           uint32_t virtual_nodes)
    : ring_(num_servers, virtual_nodes),
      active_(num_servers, true),
      storage_(key_space_size) {
  servers_.reserve(num_servers);
  size_t reserve = PerShardReserve(key_space_size, num_servers);
  for (uint32_t i = 0; i < num_servers; ++i) {
    servers_.push_back(std::make_unique<BackendServer>());
    servers_.back()->Reserve(reserve);
  }
}

BackendServer& CacheCluster::server(ServerId id) {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return *servers_[id];
}

const BackendServer& CacheCluster::server(ServerId id) const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return *servers_[id];
}

uint32_t CacheCluster::server_count() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return static_cast<uint32_t>(servers_.size());
}

ServerId CacheCluster::OwnerOf(uint64_t key) const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return ring_.ServerFor(key);
}

std::vector<uint64_t> CacheCluster::PerServerLookups() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  std::vector<uint64_t> loads;
  loads.reserve(servers_.size());
  for (const auto& s : servers_) loads.push_back(s->lookup_count());
  return loads;
}

void CacheCluster::ResetServerCounters() {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  for (auto& s : servers_) s->ResetCounters();
}

void CacheCluster::FlushMisownedKeys() {
  for (ServerId id = 0; id < servers_.size(); ++id) {
    if (!active_[id]) continue;
    servers_[id]->EraseIf(
        [&](uint64_t key) { return ring_.ServerFor(key) != id; });
  }
}

ServerId CacheCluster::AddServer() {
  std::unique_lock<std::shared_mutex> lock(topology_mu_);
  ring_.AddServer();
  servers_.push_back(std::make_unique<BackendServer>());
  servers_.back()->Reserve(
      PerShardReserve(storage_.key_space_size(), ring_.server_count()));
  active_.push_back(true);
  // Existing shards relinquish the key ranges the newcomer now owns —
  // otherwise a copy stranded on the old owner could serve a stale value
  // if a later topology change handed the range back.
  FlushMisownedKeys();
  return static_cast<ServerId>(servers_.size() - 1);
}

Status CacheCluster::RemoveServer(ServerId id) {
  std::unique_lock<std::shared_mutex> lock(topology_mu_);
  if (id >= servers_.size() || !active_[id]) {
    return Status::NotFound("server not active");
  }
  Status s = ring_.RemoveServer(id);
  if (!s.ok()) return s;
  active_[id] = false;
  servers_[id]->Clear();  // content is unreachable; drop it
  FlushMisownedKeys();
  return Status::OK();
}

bool CacheCluster::IsActive(ServerId id) const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return id < active_.size() && active_[id];
}

uint64_t CacheCluster::server_generation(ServerId id) const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return servers_[id]->generation();
}

bool CacheCluster::AdvanceServerGeneration(ServerId id, uint64_t target) {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return servers_[id]->AdvanceGeneration(target);
}

uint64_t CacheCluster::ForceColdRestart(ServerId id) {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return servers_[id]->ForceRestart();
}

}  // namespace cot::cluster
