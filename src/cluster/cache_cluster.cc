#include "cluster/cache_cluster.h"

namespace cot::cluster {

CacheCluster::CacheCluster(uint32_t num_servers, uint64_t key_space_size,
                           uint32_t virtual_nodes)
    : ring_(num_servers, virtual_nodes),
      servers_(num_servers),
      active_(num_servers, true),
      storage_(key_space_size) {}

std::vector<uint64_t> CacheCluster::PerServerLookups() const {
  std::vector<uint64_t> loads;
  loads.reserve(servers_.size());
  for (const BackendServer& s : servers_) loads.push_back(s.lookup_count());
  return loads;
}

void CacheCluster::ResetServerCounters() {
  for (BackendServer& s : servers_) s.ResetCounters();
}

void CacheCluster::FlushMisownedKeys() {
  for (ServerId id = 0; id < servers_.size(); ++id) {
    if (!active_[id]) continue;
    servers_[id].EraseIf(
        [&](uint64_t key) { return ring_.ServerFor(key) != id; });
  }
}

ServerId CacheCluster::AddServer() {
  ring_.AddServer();
  servers_.emplace_back();
  active_.push_back(true);
  // Existing shards relinquish the key ranges the newcomer now owns —
  // otherwise a copy stranded on the old owner could serve a stale value
  // if a later topology change handed the range back.
  FlushMisownedKeys();
  return static_cast<ServerId>(servers_.size() - 1);
}

Status CacheCluster::RemoveServer(ServerId id) {
  if (id >= servers_.size() || !active_[id]) {
    return Status::NotFound("server not active");
  }
  Status s = ring_.RemoveServer(id);
  if (!s.ok()) return s;
  active_[id] = false;
  servers_[id].Clear();  // content is unreachable; drop it
  FlushMisownedKeys();
  return Status::OK();
}

bool CacheCluster::IsActive(ServerId id) const {
  return id < active_.size() && active_[id];
}

}  // namespace cot::cluster
