#include "cluster/cache_cluster.h"

#include <mutex>
#include <utility>

namespace cot::cluster {

namespace {

/// Expected resident items per shard after a full preload: an even split of
/// the key space plus consistent-hashing slack (ownership spread), so the
/// preload never rehashes a shard's store.
size_t PerShardReserve(uint64_t key_space_size, uint32_t num_servers) {
  return static_cast<size_t>(key_space_size / num_servers +
                             key_space_size / (num_servers * 4) + 16);
}

}  // namespace

CacheCluster::CacheCluster(uint32_t num_servers, uint64_t key_space_size,
                           uint32_t virtual_nodes)
    : ring_(num_servers, virtual_nodes),
      active_(num_servers, true),
      is_cache_node_(num_servers, false),
      storage_(key_space_size) {
  servers_.reserve(num_servers);
  size_t reserve = PerShardReserve(key_space_size, num_servers);
  for (uint32_t i = 0; i < num_servers; ++i) {
    servers_.push_back(std::make_unique<BackendServer>());
    servers_.back()->Reserve(reserve);
    servers_.back()->SetRoutingEpoch(routing_epoch_);
  }
  snapshot_.store(MakeSnapshotLocked(), std::memory_order_release);
}

std::shared_ptr<const CacheCluster::RingSnapshot>
CacheCluster::MakeSnapshotLocked() const {
  std::vector<BackendServer*> shards;
  shards.reserve(servers_.size());
  for (const auto& s : servers_) shards.push_back(s.get());
  return std::make_shared<RingSnapshot>(
      RingSnapshot{routing_epoch_, ring_, std::move(shards)});
}

BackendServer& CacheCluster::server(ServerId id) {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return *servers_[id];
}

const BackendServer& CacheCluster::server(ServerId id) const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return *servers_[id];
}

uint32_t CacheCluster::server_count() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return static_cast<uint32_t>(servers_.size());
}

uint32_t CacheCluster::active_server_count() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return ring_.active_server_count();
}

ServerId CacheCluster::OwnerOf(uint64_t key) const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return ring_.ServerFor(key);
}

std::shared_ptr<const CacheCluster::RingSnapshot> CacheCluster::ring_snapshot()
    const {
  // Lock-free: the publication slot is replaced atomically, so a reader
  // racing a topology mutation gets the complete pre-mutation view (whose
  // requests the epoch fence rejects), never a torn one.
  return snapshot_.load(std::memory_order_acquire);
}

std::shared_ptr<const CacheCluster::RingSnapshot>
CacheCluster::ring_snapshot_synced() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return snapshot_.load(std::memory_order_acquire);
}

uint64_t CacheCluster::routing_epoch() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return routing_epoch_;
}

CacheCluster::TopologyStats CacheCluster::topology_stats() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  TopologyStats stats;
  stats.routing_epoch = routing_epoch_;
  stats.topology_changes = topology_changes_;
  stats.keys_migrated = keys_migrated_;
  for (const auto& s : servers_) {
    stats.epoch_rejects += s->epoch_mismatch_count();
  }
  return stats;
}

std::vector<uint64_t> CacheCluster::PerServerLookups() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  std::vector<uint64_t> loads;
  loads.reserve(servers_.size());
  for (const auto& s : servers_) loads.push_back(s->lookup_count());
  return loads;
}

void CacheCluster::ResetServerCounters() {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  for (auto& s : servers_) s->ResetCounters();
}

void CacheCluster::MigrateMisownedKeysLocked() {
  for (ServerId id = 0; id < servers_.size(); ++id) {
    // Upper-tier cache nodes hold intentionally "misowned" copies (their
    // whole point is serving keys the ring assigns elsewhere); draining
    // them on every ring change would empty the tier. Their freshness is
    // the router's contract (AllReplicas covers them on every write), not
    // migration's.
    if (is_cache_node_[id]) continue;
    // Inactive shards own nothing, so the predicate drains them entirely
    // (the scale-down handoff). ExtractIf and Adopt each take one shard
    // lock at a time — never nested — so migration cannot deadlock with
    // in-flight traffic.
    std::vector<uint64_t> moved = servers_[id]->ExtractIf(
        [&](uint64_t key) { return ring_.ServerFor(key) != id; });
    for (uint64_t key : moved) {
      // The adopted value is re-read from authoritative storage, not
      // copied from the old shard: a copy whose invalidation delete was
      // lost (crash window) is stale, and migrating it would smuggle the
      // staleness past the generation fence onto a healthy shard.
      servers_[ring_.ServerFor(key)]->Adopt(key, storage_.Get(key));
    }
    keys_migrated_ += moved.size();
  }
}

template <typename Mutate>
void CacheCluster::ApplyTopologyChangeLocked(Mutate&& mutate) {
  mutation_in_flight_.store(true, std::memory_order_relaxed);
  // 1. Fence: stamp every shard (active or not) with the new epoch under
  //    its content mutex. From this point, any request carrying the old
  //    epoch is rejected, so no stale-view client can act on content while
  //    ownership moves underneath it.
  ++routing_epoch_;
  for (auto& s : servers_) s->SetRoutingEpoch(routing_epoch_);
  // 2. Mutate the ring / membership.
  mutate();
  // 3. Migrate: every key moves (warm) to its new owner before any client
  //    can see the new epoch.
  MigrateMisownedKeysLocked();
  // 4. Publish: clients refreshing their route view from here on get the
  //    new epoch and a ring whose owners already hold their keys. Release
  //    ordering pairs with the acquire load in ring_snapshot().
  snapshot_.store(MakeSnapshotLocked(), std::memory_order_release);
  ++topology_changes_;
  mutation_in_flight_.store(false, std::memory_order_relaxed);
}

ServerId CacheCluster::AddServer() {
  std::unique_lock<std::shared_mutex> lock(topology_mu_);
  // The new shard's id is its slot in the server vector, which can be
  // ahead of the ring's own id counter when off-ring cache nodes occupy
  // intermediate slots — so the id is assigned explicitly rather than
  // taken from ring_.AddServer().
  ServerId id = static_cast<ServerId>(servers_.size());
  ApplyTopologyChangeLocked([&] {
    Status s = ring_.AddServerWithId(id);
    assert(s.ok() && "fresh server id collided on the ring");
    (void)s;
    servers_.push_back(std::make_unique<BackendServer>());
    servers_.back()->Reserve(
        PerShardReserve(storage_.key_space_size(),
                        ring_.active_server_count()));
    servers_.back()->SetRoutingEpoch(routing_epoch_);
    active_.push_back(true);
    is_cache_node_.push_back(false);
  });
  return id;
}

ServerId CacheCluster::AddCacheNode(size_t max_items) {
  std::unique_lock<std::shared_mutex> lock(topology_mu_);
  // Not a topology change: the ring is untouched, no ownership moves, so
  // there is no epoch bump, no fence, and no migration. The snapshot is
  // republished (same epoch) only so its server vector covers the new id.
  ServerId id = static_cast<ServerId>(servers_.size());
  servers_.push_back(std::make_unique<BackendServer>(max_items));
  servers_.back()->SetRoutingEpoch(routing_epoch_);
  active_.push_back(false);
  is_cache_node_.push_back(true);
  snapshot_.store(MakeSnapshotLocked(), std::memory_order_release);
  return id;
}

bool CacheCluster::IsCacheNode(ServerId id) const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return id < is_cache_node_.size() && is_cache_node_[id];
}

std::vector<ServerId> CacheCluster::CacheNodeIds() const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  std::vector<ServerId> ids;
  for (ServerId id = 0; id < is_cache_node_.size(); ++id) {
    if (is_cache_node_[id]) ids.push_back(id);
  }
  return ids;
}

Status CacheCluster::RemoveServer(ServerId id) {
  std::unique_lock<std::shared_mutex> lock(topology_mu_);
  // Preconditions are checked before the fence/migrate/publish sequence
  // starts, so a rejected call leaves the epoch untouched.
  if (id >= servers_.size() || !active_[id]) {
    return Status::NotFound("server not active");
  }
  if (ring_.active_server_count() <= 1) {
    return Status::FailedPrecondition("cannot remove the last server");
  }
  ApplyTopologyChangeLocked([&] {
    Status s = ring_.RemoveServer(id);
    assert(s.ok());
    (void)s;
    active_[id] = false;
  });
  return Status::OK();
}

Status CacheCluster::RejoinServer(ServerId id) {
  std::unique_lock<std::shared_mutex> lock(topology_mu_);
  if (id >= servers_.size()) {
    return Status::NotFound("server id unknown");
  }
  if (active_[id]) {
    return Status::FailedPrecondition("server is already active");
  }
  if (is_cache_node_[id]) {
    return Status::FailedPrecondition(
        "cache nodes never join the shard ring");
  }
  ApplyTopologyChangeLocked([&] {
    Status s = ring_.AddServerWithId(id);
    assert(s.ok());
    (void)s;
    active_[id] = true;
  });
  return Status::OK();
}

bool CacheCluster::IsActive(ServerId id) const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return id < active_.size() && active_[id];
}

uint64_t CacheCluster::server_generation(ServerId id) const {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return servers_[id]->generation();
}

bool CacheCluster::AdvanceServerGeneration(ServerId id, uint64_t target) {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return servers_[id]->AdvanceGeneration(target);
}

uint64_t CacheCluster::ForceColdRestart(ServerId id) {
  std::shared_lock<std::shared_mutex> lock(topology_mu_);
  return servers_[id]->ForceRestart();
}

}  // namespace cot::cluster
