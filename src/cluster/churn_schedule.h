#ifndef COT_CLUSTER_CHURN_SCHEDULE_H_
#define COT_CLUSTER_CHURN_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cache_cluster.h"
#include "cluster/fault_injector.h"
#include "util/status.h"

namespace cot::cluster {

/// Kinds of topology mutation a churn schedule can apply mid-run.
enum class ChurnAction : uint8_t {
  /// `CacheCluster::AddServer`: the tier grows by one fresh shard.
  kAddServer,
  /// `CacheCluster::RemoveServer`: the shard drains warm to successors.
  kRemoveServer,
  /// `CacheCluster::RejoinServer`: a removed shard returns under its id.
  kRejoinServer,
};

std::string_view ToString(ChurnAction action);

/// One scheduled topology mutation. `at_op` is a barrier on every client's
/// logical operation clock: the event applies when each client has
/// completed exactly `at_op` operations — the same per-client-clock
/// convention fault windows use, and what keeps churn runs byte-identical
/// at any thread count (no client can race past the mutation, and every
/// client observes it at the same point of its own stream).
struct ChurnEvent {
  uint64_t at_op = 0;
  ChurnAction action = ChurnAction::kAddServer;
  /// Target shard for remove/rejoin; ignored for add (the cluster
  /// allocates the id, which `Validate`/`MakeChaosPlan` simulate).
  ServerId server = 0;
};

/// A full per-run churn plan. Events apply in order; `at_op` must be
/// non-decreasing. An empty schedule means a static tier.
struct ChurnSchedule {
  std::vector<ChurnEvent> events;

  bool empty() const { return events.empty(); }

  /// Simulates the schedule against a tier of `initial_servers` shards:
  /// events must be time-ordered, removes must target an active shard and
  /// never leave the tier empty, and rejoins must target a previously
  /// removed shard (`server` is ignored for adds — the cluster allocates
  /// fresh ids densely, which the simulation mirrors).
  Status Validate(uint32_t initial_servers) const;

  /// Largest id space the schedule ever reaches (initial + adds) — what
  /// fault schedules must validate against, since a fault may target a
  /// shard that only exists after mid-run growth.
  uint32_t MaxServerCount(uint32_t initial_servers) const;

  /// Active shard count after every event applied.
  uint32_t FinalActiveCount(uint32_t initial_servers) const;
};

/// Parses the `cot_run --churn` flag syntax into a schedule:
///   "add:AT | remove:SERVER:AT | rejoin:SERVER:AT", comma-separated, e.g.
///   "add:2000,remove:1:5000,rejoin:1:8000".
/// Fails with a descriptive status on malformed entries (ordering and
/// target validity are `Validate`'s job, since they need the tier size).
StatusOr<ChurnSchedule> ParseChurnSchedule(const std::string& spec);

/// Knobs for the seeded chaos-plan generator.
struct ChaosOptions {
  /// Seed for the plan (and, derived, for transient-fault draws).
  uint64_t seed = 1;
  /// Shards the cluster starts with.
  uint32_t initial_servers = 8;
  /// Per-client operation horizon; every event lands in
  /// [warmup_ops, horizon_ops).
  uint64_t horizon_ops = 10000;
  /// No events before this op count (lets caches warm first).
  uint64_t warmup_ops = 0;
  /// Topology mutations to schedule (add/remove/rejoin mix drawn from the
  /// seed, constrained to stay valid).
  uint32_t churn_events = 4;
  /// Fault windows to schedule (crash/transient/slow mix from the seed).
  uint32_t fault_events = 4;
};

/// A composed churn + fault plan for one chaos run.
struct ChaosPlan {
  ChurnSchedule churn;
  FaultSchedule faults;
};

/// Deterministically generates a valid chaos plan from `options`: seeded
/// event times (sorted), action mix constrained by the simulated tier
/// state (never removes the last shard, only rejoins removed ids), and
/// fault windows that may target shards the churn creates mid-run. Same
/// options, same plan — the chaos harness's schedules are reproducible CI
/// artifacts, not flaky randomness.
ChaosPlan MakeChaosPlan(const ChaosOptions& options);

/// Machine-verified safety sweep over a (quiescent) cluster:
///   - every key resident on an active shard is owned by that shard;
///   - every resident value equals the authoritative storage value (no
///     stale copy survived the churn);
///   - removed shards hold no content;
///   - the ring's ownership fractions sum to 1.
/// Returns the first violation found, OK otherwise. Serial use only (it
/// walks shard content; storage reads count toward its load counters).
Status VerifyClusterInvariants(CacheCluster& cluster);

}  // namespace cot::cluster

#endif  // COT_CLUSTER_CHURN_SCHEDULE_H_
