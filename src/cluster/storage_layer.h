#ifndef COT_CLUSTER_STORAGE_LAYER_H_
#define COT_CLUSTER_STORAGE_LAYER_H_

#include <cstdint>
#include <unordered_map>

#include "cache/cache.h"

namespace cot::cluster {

/// Authoritative persistent storage beneath the caching layer (paper
/// Figure 1). Every key in the key space logically exists: an unwritten key
/// reads as a deterministic synthetic value (`Mix64(key)` with version 0),
/// standing in for the paper's pre-loaded 1M-row "usertable". Writes bump a
/// per-key version so tests can verify read-your-writes through the whole
/// cache hierarchy.
class StorageLayer {
 public:
  using Key = cache::Key;
  using Value = cache::Value;

  /// Creates storage over `key_space_size` keys.
  explicit StorageLayer(uint64_t key_space_size);

  /// Reads `key`'s current value. Always succeeds for in-range keys.
  Value Get(Key key);

  /// Writes `value` for `key`.
  void Set(Key key, Value value);

  /// The deterministic initial value of `key` before any write.
  static Value InitialValue(Key key);

  /// Number of keys in the key space.
  uint64_t key_space_size() const { return key_space_size_; }
  /// Cumulative read count (load on the persistent layer).
  uint64_t read_count() const { return read_count_; }
  /// Cumulative write count.
  uint64_t write_count() const { return write_count_; }

 private:
  uint64_t key_space_size_;
  std::unordered_map<Key, Value> overrides_;
  uint64_t read_count_ = 0;
  uint64_t write_count_ = 0;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_STORAGE_LAYER_H_
