#ifndef COT_CLUSTER_STORAGE_LAYER_H_
#define COT_CLUSTER_STORAGE_LAYER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "cache/cache.h"

namespace cot::cluster {

/// Authoritative persistent storage beneath the caching layer (paper
/// Figure 1). Every key in the key space logically exists: an unwritten key
/// reads as a deterministic synthetic value (`Mix64(key)` with version 0),
/// standing in for the paper's pre-loaded 1M-row "usertable". Writes bump a
/// per-key version so tests can verify read-your-writes through the whole
/// cache hierarchy.
///
/// Thread safety: the override table is striped — each stripe is its own
/// map behind its own mutex, keys assigned by hash — so concurrent clients
/// writing different keys almost never contend (a real storage tier shards
/// the same way). The access counters are relaxed atomics: totals are
/// exact, cross-counter snapshots are unordered.
class StorageLayer {
 public:
  using Key = cache::Key;
  using Value = cache::Value;

  /// Creates storage over `key_space_size` keys.
  explicit StorageLayer(uint64_t key_space_size);

  StorageLayer(const StorageLayer&) = delete;
  StorageLayer& operator=(const StorageLayer&) = delete;

  /// Reads `key`'s current value. Always succeeds for in-range keys.
  Value Get(Key key);

  /// Writes `value` for `key`.
  void Set(Key key, Value value);

  /// The deterministic initial value of `key` before any write.
  static Value InitialValue(Key key);

  /// Number of keys in the key space.
  uint64_t key_space_size() const { return key_space_size_; }
  /// Cumulative read count (load on the persistent layer).
  uint64_t read_count() const {
    return read_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative write count.
  uint64_t write_count() const {
    return write_count_.load(std::memory_order_relaxed);
  }

 private:
  /// Number of lock stripes. Power of two; comfortably above any realistic
  /// client-thread count, so two threads rarely collide on a stripe.
  static constexpr size_t kStripes = 64;

  struct Stripe {
    std::mutex mu;
    std::unordered_map<Key, Value> overrides;
  };

  Stripe& StripeFor(Key key);

  uint64_t key_space_size_;
  std::array<Stripe, kStripes> stripes_;
  std::atomic<uint64_t> read_count_{0};
  std::atomic<uint64_t> write_count_{0};
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_STORAGE_LAYER_H_
