#include "cluster/slice_map.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/hash.h"

namespace cot::cluster {

SliceMap::SliceMap(uint32_t num_servers, uint32_t num_slices)
    : num_servers_(num_servers) {
  assert(num_servers >= 1);
  assert(num_slices >= 1 && (num_slices & (num_slices - 1)) == 0);
  int bits = 0;
  while ((1u << bits) < num_slices) ++bits;
  slice_shift_ = 64 - bits;
  assignment_.resize(num_slices);
  slice_load_.assign(num_slices, 0);
  for (uint32_t s = 0; s < num_slices; ++s) {
    assignment_[s] = s % num_servers_;
  }
}

uint32_t SliceMap::SliceOf(uint64_t key) const {
  if (slice_shift_ >= 64) return 0;
  return static_cast<uint32_t>(Mix64(key) >> slice_shift_);
}

ServerId SliceMap::Route(uint64_t key, const RouteView& /*view*/) {
  return assignment_[SliceOf(key)];
}

void SliceMap::OnLookup(uint64_t key, ServerId /*server*/) {
  ++slice_load_[SliceOf(key)];
}

double SliceMap::Rebalance(CacheCluster* cluster) {
  ++rebalance_count_;
  uint64_t total =
      std::accumulate(slice_load_.begin(), slice_load_.end(), uint64_t{0});
  if (total == 0) return 0.0;

  // LPT greedy: heaviest slices first, each onto the lightest server.
  std::vector<uint32_t> order(assignment_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (slice_load_[a] != slice_load_[b]) {
      return slice_load_[a] > slice_load_[b];
    }
    return a < b;
  });
  std::vector<uint64_t> server_load(num_servers_, 0);
  std::vector<ServerId> next(assignment_.size());
  for (uint32_t slice : order) {
    ServerId lightest = 0;
    for (ServerId s = 1; s < num_servers_; ++s) {
      if (server_load[s] < server_load[lightest]) lightest = s;
    }
    next[slice] = lightest;
    server_load[lightest] += slice_load_[slice];
  }

  uint64_t moved = 0;
  std::vector<bool> slice_moved(assignment_.size(), false);
  for (uint32_t s = 0; s < assignment_.size(); ++s) {
    if (next[s] != assignment_[s]) {
      moved += slice_load_[s];
      slice_moved[s] = true;
    }
  }
  if (cluster != nullptr) {
    // Flush moved slices from their old owners (Slicer's reassignment
    // invalidation): group moved slices by old owner, one sweep each.
    for (ServerId owner = 0; owner < num_servers_; ++owner) {
      bool any = false;
      for (uint32_t s = 0; s < assignment_.size(); ++s) {
        if (slice_moved[s] && assignment_[s] == owner) any = true;
      }
      if (!any) continue;
      cluster->server(owner).EraseIf([&](uint64_t key) {
        uint32_t slice = SliceOf(key);
        return slice_moved[slice] && assignment_[slice] == owner;
      });
    }
  }
  assignment_ = std::move(next);
  std::fill(slice_load_.begin(), slice_load_.end(), 0);
  return static_cast<double>(moved) / static_cast<double>(total);
}

}  // namespace cot::cluster
