#ifndef COT_CLUSTER_BACKEND_SERVER_H_
#define COT_CLUSTER_BACKEND_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "cache/cache.h"
#include "cluster/serving_queue.h"
#include "util/flat_hash_map.h"

namespace cot::cluster {

/// One back-end caching shard (a memcached instance in the paper's
/// deployment). Stateless with respect to clients — requests are
/// client-driven (Section 2) — and instrumented with the load counters the
/// evaluation is built on: every `Get` counts toward this server's lookup
/// load whether it hits or misses.
///
/// The shard is an unbounded map by default (the paper provisions 4 GB per
/// instance, far above the hot set); an optional `max_items` bounds it
/// with memcached's LRU eviction, which lets tests and ablations exercise
/// shard-side memory pressure. The store is a `FlatHashMap` (robin-hood,
/// inline storage) — the same container the front-end policies moved to —
/// so a shard lookup is a masked probe, not a node chase.
///
/// Thread safety: like a real memcached instance, one shard serves many
/// concurrent front-end clients. Content (`store_`/`lru_`) is guarded by a
/// per-shard mutex — sharding already spreads clients across shards, so
/// per-shard granularity is the natural stripe width — and the load
/// counters are relaxed atomics, so reading a shard's load never contends
/// with serving traffic. Counter totals are exact (atomic increments);
/// only cross-counter snapshots are unordered, which the experiment
/// drivers avoid by reading counters after joining their worker threads.
/// Holding a mutex makes the shard immovable; `CacheCluster` stores shards
/// behind `unique_ptr` for exactly this reason.
///
/// Failure semantics: a shard that crashes and restarts has lost the
/// invalidation deletes sent while it was down, so it must come back
/// *cold* or it could serve stale copies. The `generation_` counter fences
/// this: `AdvanceGeneration`/`ForceRestart` drop all content and advance
/// the generation, and are idempotent per target generation, so many
/// clients observing the same recovery bump the shard exactly once.
///
/// Routing-epoch fencing: clients route with a cached view of the ring.
/// When the topology changes, `CacheCluster` stamps every shard with the
/// new routing epoch; the fenced `Get`/`Set`/`Delete` overloads compare
/// the caller's epoch against the shard's *inside* the content critical
/// section and reject mismatches without touching content or load
/// counters. A client holding a stale route view therefore cannot read a
/// shard that no longer owns the key, nor strand a fill on it — it gets
/// `kEpochMismatch`, refreshes its view, and retries.
class BackendServer {
 public:
  using Key = cache::Key;
  using Value = cache::Value;

  /// Outcome of a routing-epoch-fenced request.
  enum class ShardStatus : uint8_t {
    kOk,
    /// The caller's routing epoch is stale (or ahead — any disagreement is
    /// a misroute); the request was rejected untouched.
    kEpochMismatch,
  };

  /// Fenced lookup result. `value` is meaningful only when `status` is
  /// `kOk`; `shard_epoch` is the shard's current routing epoch either way
  /// (what the rejected client reports in its trace).
  struct FencedValue {
    ShardStatus status = ShardStatus::kOk;
    uint64_t shard_epoch = 0;
    std::optional<Value> value;
  };

  /// Fenced write/delete acknowledgement.
  struct FencedAck {
    ShardStatus status = ShardStatus::kOk;
    uint64_t shard_epoch = 0;
    /// For Delete: whether the key was resident. For Set: unused.
    bool existed = false;
  };

  /// Acknowledgement of a fenced batched lookup. Per-key results land in
  /// the caller's output array; this carries the request-level outcome.
  struct FencedBatch {
    ShardStatus status = ShardStatus::kOk;
    uint64_t shard_epoch = 0;
    /// Keys served from resident content (the rest were fetched + filled).
    uint32_t hits = 0;
  };

  /// Creates a shard. `max_items` of 0 means unbounded.
  explicit BackendServer(size_t max_items = 0);

  BackendServer(const BackendServer&) = delete;
  BackendServer& operator=(const BackendServer&) = delete;

  /// Pre-sizes the store for `expected_items` keys, so a full preload of
  /// this shard's key range never rehashes.
  void Reserve(size_t expected_items);

  /// Looks up `key`; counts one lookup of load either way.
  std::optional<Value> Get(Key key);

  /// Inserts/overwrites `key` (a client fills the shard after a storage
  /// read, or the shard-side of a write-through).
  void Set(Key key, Value value);

  /// Invalidation delete (client-driven update path). Returns whether the
  /// key was resident.
  bool Delete(Key key);

  /// Epoch-fenced variants: the request carries the client's routing
  /// epoch; on disagreement with the shard's epoch the request is rejected
  /// — no lookup/set/delete is counted and content is untouched. The check
  /// and the content operation are atomic under the shard mutex, so a
  /// fenced op serialized after a topology change can never act on a view
  /// the change invalidated.
  FencedValue Get(Key key, uint64_t client_epoch);
  FencedAck Set(Key key, Value value, uint64_t client_epoch);
  FencedAck Delete(Key key, uint64_t client_epoch);

  /// Fenced batched lookup: one epoch check and ONE acquisition of the
  /// shard mutex serve the whole sub-batch — the batching of the
  /// multi-key memcached `get` that amortizes per-request overhead.
  /// Accounting is identical to `keys.size()` fenced Gets plus a fill Set
  /// per miss: each key counts one lookup, a resident key counts a hit
  /// (and an LRU touch), and a miss calls `fetch(key)` — the caller's
  /// authoritative read — whose value is installed like a client fill
  /// (counting a set) and returned. `out[i]` receives `keys[i]`'s value.
  /// On epoch mismatch the batch is rejected atomically: content and
  /// per-key counters untouched, one mismatch counted (it is one
  /// request). `fetch` must not call back into this shard.
  template <typename Fetch>
  FencedBatch MultiGet(std::span<const Key> keys, uint64_t client_epoch,
                       Fetch&& fetch, Value* out) {
    uint64_t hits = 0;
    uint64_t fills = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (client_epoch != routing_epoch_) {
        epoch_mismatch_count_.fetch_add(1, std::memory_order_relaxed);
        return FencedBatch{ShardStatus::kEpochMismatch, routing_epoch_, 0};
      }
      for (size_t i = 0; i < keys.size(); ++i) {
        auto it = store_.find(keys[i]);
        if (it != store_.end()) {
          ++hits;
          TouchLru(keys[i], it);
          out[i] = it->second.value;
        } else {
          ++fills;
          out[i] = fetch(keys[i]);
          SetLocked(keys[i], out[i]);
        }
      }
    }
    lookup_count_.fetch_add(keys.size(), std::memory_order_relaxed);
    hit_count_.fetch_add(hits, std::memory_order_relaxed);
    set_count_.fetch_add(fills, std::memory_order_relaxed);
    return FencedBatch{ShardStatus::kOk, client_epoch,
                       static_cast<uint32_t>(hits)};
  }

  /// Stamps the shard with the cluster's routing epoch (topology mutations
  /// only; serialized by the cluster's exclusive topology lock).
  void SetRoutingEpoch(uint64_t epoch);
  /// The routing epoch this shard currently serves in.
  uint64_t routing_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return routing_epoch_;
  }
  /// Fenced requests rejected for carrying a stale epoch.
  uint64_t epoch_mismatch_count() const {
    return epoch_mismatch_count_.load(std::memory_order_relaxed);
  }

  /// Number of resident items.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return store_.size();
  }

  /// Cumulative lookups served (the "load" of Figures 3 and Table 2).
  uint64_t lookup_count() const {
    return lookup_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative lookup hits.
  uint64_t hit_count() const {
    return hit_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative sets.
  uint64_t set_count() const {
    return set_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative deletes that removed a key.
  uint64_t delete_count() const {
    return delete_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative LRU evictions under memory pressure (bounded mode only).
  uint64_t eviction_count() const {
    return eviction_count_.load(std::memory_order_relaxed);
  }

  /// Cold-restart generation this shard is serving in (0 = never
  /// restarted).
  uint64_t generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
  }

  /// Fences a cold restart: if `target` is ahead of the current
  /// generation, drops all content (counters are kept — load history
  /// survives a process restart conceptually) and adopts `target`.
  /// Returns true if the shard was cleared, false if it was already at or
  /// past `target` (idempotent under concurrent observers).
  bool AdvanceGeneration(uint64_t target);

  /// Unconditional cold restart: content dropped, generation + 1.
  /// Returns the new generation.
  uint64_t ForceRestart();

  /// Zeroes the load counters (content is kept).
  void ResetCounters();

  /// Drops all content and counters.
  void Clear();

  /// Erases every resident key for which `pred(key)` is true; returns the
  /// number erased. Used by control planes that reassign key ranges (a
  /// Slicer-style rebalance must flush moved slices from their old owner,
  /// or a later move back would expose stale copies). Holds the shard lock
  /// for the whole sweep; `pred` must not call back into this shard.
  template <typename Pred>
  size_t EraseIf(Pred&& pred) {
    std::lock_guard<std::mutex> lock(mu_);
    // FlatHashMap moves entries on erase (backward-shift deletion), so
    // collect doomed keys first, then erase by key.
    doomed_.clear();
    for (const auto& entry : store_) {
      if (pred(entry.first)) doomed_.push_back(entry.first);
    }
    for (Key key : doomed_) {
      if (max_items_ != 0) {
        auto it = store_.find(key);
        lru_.erase(it->second.lru_pos);
      }
      store_.erase(key);
    }
    return doomed_.size();
  }

  /// Like `EraseIf`, but returns the erased keys — the extraction half of
  /// a live migration (the cluster re-reads each key's authoritative value
  /// from storage and `Adopt`s it on the new owner, so a copy whose
  /// invalidation was lost in a crash window can never migrate stale).
  template <typename Pred>
  std::vector<Key> ExtractIf(Pred&& pred) {
    std::lock_guard<std::mutex> lock(mu_);
    doomed_.clear();
    for (const auto& entry : store_) {
      if (pred(entry.first)) doomed_.push_back(entry.first);
    }
    for (Key key : doomed_) {
      if (max_items_ != 0) {
        auto it = store_.find(key);
        lru_.erase(it->second.lru_pos);
      }
      store_.erase(key);
    }
    return doomed_;
  }

  /// Migration insert: installs `key` like `Set` (same LRU/eviction
  /// behaviour) but counts toward `adopted_count` instead of `set_count`,
  /// so client-traffic accounting is undisturbed by handoffs.
  void Adopt(Key key, Value value);

  /// Keys installed by live migration (`Adopt`).
  uint64_t adopted_count() const {
    return adopted_count_.load(std::memory_order_relaxed);
  }

  /// Installs overload defenses (bounded serving queue + deadline
  /// admission) for this shard. Content operations are unaffected — the
  /// queue models serving *time*, which only open-loop drivers account
  /// for. Replaces any existing queue (counters reset); do not call while
  /// another thread is admitting.
  void ConfigureOverload(const OverloadPolicy& policy);

  /// The shard's serving queue, or nullptr when overload defenses were
  /// never configured (all closed-loop paths).
  ServingQueue* serving_queue() { return serving_queue_.get(); }
  const ServingQueue* serving_queue() const { return serving_queue_.get(); }

  /// Visits every resident (key, value) pair under the shard lock (safety
  /// sweeps in tests and invariant checks). `fn` must not call back into
  /// this shard.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : store_) fn(entry.first, entry.second.value);
  }

 private:
  struct Item {
    Value value;
    std::list<Key>::iterator lru_pos;  // valid only in bounded mode
  };

  /// Moves `key` to the MRU position. Caller holds `mu_`.
  void TouchLru(Key key, FlatHashMap<Key, Item>::iterator it);

  /// Drops content (not counters). Caller holds `mu_`.
  void ClearContentLocked();

  /// Installs/overwrites `key`. Caller holds `mu_`.
  void SetLocked(Key key, Value value);

  size_t max_items_;
  // Guards store_, lru_, generation_, routing_epoch_, doomed_.
  mutable std::mutex mu_;
  FlatHashMap<Key, Item> store_;
  std::list<Key> lru_;  // front = MRU; maintained only in bounded mode
  std::vector<Key> doomed_;  // scratch for EraseIf (avoids per-call alloc)
  uint64_t generation_ = 0;
  uint64_t routing_epoch_ = 0;
  std::atomic<uint64_t> lookup_count_{0};
  std::atomic<uint64_t> hit_count_{0};
  std::atomic<uint64_t> set_count_{0};
  std::atomic<uint64_t> delete_count_{0};
  std::atomic<uint64_t> eviction_count_{0};
  std::atomic<uint64_t> epoch_mismatch_count_{0};
  std::atomic<uint64_t> adopted_count_{0};
  std::unique_ptr<ServingQueue> serving_queue_;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_BACKEND_SERVER_H_
