#ifndef COT_CLUSTER_BACKEND_SERVER_H_
#define COT_CLUSTER_BACKEND_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "cache/cache.h"

namespace cot::cluster {

/// One back-end caching shard (a memcached instance in the paper's
/// deployment). Stateless with respect to clients — requests are
/// client-driven (Section 2) — and instrumented with the load counters the
/// evaluation is built on: every `Get` counts toward this server's lookup
/// load whether it hits or misses.
///
/// The shard is an unbounded map by default (the paper provisions 4 GB per
/// instance, far above the hot set); an optional `max_items` bounds it
/// with memcached's LRU eviction, which lets tests and ablations exercise
/// shard-side memory pressure.
///
/// Thread safety: like a real memcached instance, one shard serves many
/// concurrent front-end clients. Content (`store_`/`lru_`) is guarded by a
/// per-shard mutex — sharding already spreads clients across shards, so
/// per-shard granularity is the natural stripe width — and the load
/// counters are relaxed atomics, so reading a shard's load never contends
/// with serving traffic. Counter totals are exact (atomic increments);
/// only cross-counter snapshots are unordered, which the experiment
/// drivers avoid by reading counters after joining their worker threads.
/// Holding a mutex makes the shard immovable; `CacheCluster` stores shards
/// behind `unique_ptr` for exactly this reason.
class BackendServer {
 public:
  using Key = cache::Key;
  using Value = cache::Value;

  /// Creates a shard. `max_items` of 0 means unbounded.
  explicit BackendServer(size_t max_items = 0);

  BackendServer(const BackendServer&) = delete;
  BackendServer& operator=(const BackendServer&) = delete;

  /// Pre-sizes the store for `expected_items` keys, so a full preload of
  /// this shard's key range never rehashes.
  void Reserve(size_t expected_items);

  /// Looks up `key`; counts one lookup of load either way.
  std::optional<Value> Get(Key key);

  /// Inserts/overwrites `key` (a client fills the shard after a storage
  /// read, or the shard-side of a write-through).
  void Set(Key key, Value value);

  /// Invalidation delete (client-driven update path). Returns whether the
  /// key was resident.
  bool Delete(Key key);

  /// Number of resident items.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return store_.size();
  }

  /// Cumulative lookups served (the "load" of Figures 3 and Table 2).
  uint64_t lookup_count() const {
    return lookup_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative lookup hits.
  uint64_t hit_count() const {
    return hit_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative sets.
  uint64_t set_count() const {
    return set_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative deletes that removed a key.
  uint64_t delete_count() const {
    return delete_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative LRU evictions under memory pressure (bounded mode only).
  uint64_t eviction_count() const {
    return eviction_count_.load(std::memory_order_relaxed);
  }

  /// Zeroes the load counters (content is kept).
  void ResetCounters();

  /// Drops all content and counters.
  void Clear();

  /// Erases every resident key for which `pred(key)` is true; returns the
  /// number erased. Used by control planes that reassign key ranges (a
  /// Slicer-style rebalance must flush moved slices from their old owner,
  /// or a later move back would expose stale copies). Holds the shard lock
  /// for the whole sweep; `pred` must not call back into this shard.
  template <typename Pred>
  size_t EraseIf(Pred&& pred) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t erased = 0;
    for (auto it = store_.begin(); it != store_.end();) {
      if (pred(it->first)) {
        if (max_items_ != 0) lru_.erase(it->second.lru_pos);
        it = store_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

 private:
  struct Item {
    Value value;
    std::list<Key>::iterator lru_pos;  // valid only in bounded mode
  };

  /// Moves `key` to the MRU position. Caller holds `mu_`.
  void TouchLru(Key key, std::unordered_map<Key, Item>::iterator it);

  size_t max_items_;
  mutable std::mutex mu_;  // guards store_ and lru_
  std::unordered_map<Key, Item> store_;
  std::list<Key> lru_;  // front = MRU; maintained only in bounded mode
  std::atomic<uint64_t> lookup_count_{0};
  std::atomic<uint64_t> hit_count_{0};
  std::atomic<uint64_t> set_count_{0};
  std::atomic<uint64_t> delete_count_{0};
  std::atomic<uint64_t> eviction_count_{0};
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_BACKEND_SERVER_H_
