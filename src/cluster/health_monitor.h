#ifndef COT_CLUSTER_HEALTH_MONITOR_H_
#define COT_CLUSTER_HEALTH_MONITOR_H_

// Per-shard latency health tracking for gray-failure defense.
//
// Circuit breakers (frontend_client.h) are blind to *gray* failures: a
// shard that is 10x slow but never errors trips no failure counter, yet
// one such shard drags cluster p99 by an order of magnitude. The
// HealthMonitor closes that gap by watching the latency distribution
// itself: a streaming P-squared quantile estimator per shard (5 markers,
// O(1) memory — never an unbounded reservoir) plus an EWMA health score
// in [0, 1]. The score drives three defenses in FrontendClient:
//
//   * adaptive deadlines  — deadline(shard) = max(floor, k * p99(shard)),
//     replacing the fixed LatencyModel-style timeout when pricing failed
//     attempts;
//   * hedged reads        — a read observed to run past the *cluster
//     median*-derived hedge delay is reissued (budget permitting) to the
//     storage tier or the other p2c replica; the median is robust to one
//     gray shard polluting the tail, which the global p99 is not;
//   * lameduck quarantine — a shard whose score sinks below
//     `lameduck_enter` is quarantined: bulk reads bypass it to storage,
//     every `probe_interval`-th read still probes it (so recovery is
//     observable), invalidations are always delivered, and its p2c
//     routing weight drops. Never fenced like a crash: the shard is slow,
//     not dead, and its data is valid.
//
// Each client owns a private monitor fed with *deterministic* observed
// latencies (nominal cost x the injector's slow factor), so health
// decisions — like every other logical stat — are a pure function of the
// client's own stream and byte-identical at any thread count. Private
// monitors also model asymmetric gray failures naturally: a client that
// does not observe the slowness keeps routing to the shard.

#include <cstdint>
#include <vector>

#include "cluster/consistent_hash_ring.h"

namespace cot::cluster {

/// Streaming quantile estimator (Jain & Chlamtac's P-squared algorithm):
/// five markers track the quantile without storing observations. Until
/// five samples arrive, Value() falls back to the exact small-sample
/// quantile.
class P2Quantile {
 public:
  /// `p` in (0, 1), e.g. 0.99.
  explicit P2Quantile(double p = 0.99);

  void Observe(double x);

  /// Current estimate of the p-quantile; 0 before any observation.
  double Value() const;

  uint64_t count() const { return count_; }

 private:
  double p_;
  uint64_t count_ = 0;
  // Marker heights, actual positions, desired positions, position rates.
  double q_[5] = {0, 0, 0, 0, 0};
  double n_[5] = {1, 2, 3, 4, 5};
  double np_[5];
  double dn_[5];
};

/// Tuning knobs for the monitor. Defaults are calibrated against the
/// simulator's LatencyModel scale (nominal backend read ~ 394us = rtt +
/// base service) but every threshold is relative, so the monitor works at
/// any latency scale.
struct HealthConfig {
  /// Quantile tracked per shard for adaptive deadlines.
  double quantile = 0.99;
  /// EWMA smoothing for the health score (higher = faster reaction).
  double ewma_alpha = 0.2;
  /// Deadline floor in us — the legacy fixed timeout, kept as the lower
  /// bound so healthy shards never see a tighter deadline than before.
  double deadline_floor_us = 1000.0;
  /// deadline(shard) = max(floor, deadline_k * p99(shard)).
  double deadline_k = 3.0;
  /// Hedge delay floor in us.
  double hedge_floor_us = 500.0;
  /// hedge delay = max(hedge_floor_us, hedge_k * cluster p50).
  double hedge_k = 3.0;
  /// Enter lameduck when the score sinks below this...
  double lameduck_enter = 0.35;
  /// ...and exit only above this (hysteresis so the state cannot
  /// flap between adjacent observations).
  double lameduck_exit = 0.70;
  /// Observations of a shard required before it may be quarantined.
  uint64_t min_observations = 8;
  /// In lameduck, every Nth read is a probe sent to the shard; the rest
  /// bypass to storage.
  uint64_t probe_interval = 8;
};

class HealthMonitor {
 public:
  /// What a new observation did to the shard's quarantine state.
  enum class Transition { kNone, kEnterLameduck, kExitLameduck };

  HealthMonitor(uint32_t num_shards, const HealthConfig& config);

  /// Feeds one observed latency for `shard`; `healthy_reference_us` is
  /// the latency the caller would consider nominal (score sample =
  /// clamp(reference / observed, 0, 1)). Returns the quarantine
  /// transition, if any.
  Transition Observe(ServerId shard, double latency_us,
                     double healthy_reference_us);

  /// EWMA health score in [0, 1]; 1 before any observation.
  double Score(ServerId shard) const;

  /// Current per-shard p99 estimate in us (0 before observations).
  double QuantileUs(ServerId shard) const;

  /// Adaptive deadline: max(floor, k * p99(shard)); the floor alone
  /// before any observation.
  double DeadlineUs(ServerId shard) const;

  /// Adaptive hedge delay: max(hedge_floor, hedge_k * cluster p50).
  double HedgeDelayUs() const;

  bool IsLameduck(ServerId shard) const;

  /// In lameduck, decides whether the next read to `shard` is a probe
  /// (true, every `probe_interval`-th call) or a bypass (false).
  /// Deterministic counter per shard; call once per routed read.
  bool NextReadProbes(ServerId shard);

  uint64_t observations(ServerId shard) const;

  /// Shards currently quarantined (for reporting).
  uint32_t lameduck_count() const { return lameduck_count_; }

  const HealthConfig& config() const { return config_; }

 private:
  struct ShardHealth {
    P2Quantile p99;
    double score = 1.0;
    uint64_t observations = 0;
    bool lameduck = false;
    uint64_t reads_since_probe = 0;
    explicit ShardHealth(double quantile) : p99(quantile) {}
  };

  /// Grows state to cover `shard` (churn can add shards mid-run).
  ShardHealth& Ensure(ServerId shard);

  HealthConfig config_;
  std::vector<ShardHealth> shards_;
  /// Cluster-wide median latency across all shards this client touches —
  /// the hedge-delay reference. Robust to a single gray shard: one slow
  /// shard shifts the median barely, while it *is* the global tail.
  P2Quantile cluster_p50_;
  uint32_t lameduck_count_ = 0;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_HEALTH_MONITOR_H_
