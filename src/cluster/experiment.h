#ifndef COT_CLUSTER_EXPERIMENT_H_
#define COT_CLUSTER_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "cluster/churn_schedule.h"
#include "cluster/fault_injector.h"
#include "cluster/frontend_client.h"
#include "core/elastic_resizer.h"
#include "metrics/event_tracer.h"
#include "metrics/metrics_registry.h"
#include "util/status.h"
#include "workload/op_stream.h"

namespace cot::cluster {

/// Cluster topology of a run.
enum class Topology {
  /// The paper's architecture: shards behind a consistent-hash ring (the
  /// default; routers like SliceMap may still be attached by drivers).
  kRing,
  /// DistCache-style two layers: a small upper cache layer in independent
  /// hash partitions with power-of-two-choices routing of hot keys
  /// (`DistCacheRouter`), over the same ring + storage substrate.
  kDistCache,
};

/// Parses a topology name ("ring", "distcache"). Unknown names fail with
/// an InvalidArgument status that lists the valid values.
StatusOr<Topology> ParseTopology(const std::string& name);

/// Canonical name of `topology`.
const char* ToString(Topology topology);

/// Declarative description of one cluster run, mirroring the paper's
/// experimental setup (Section 5.1): N memcached shards, M client threads
/// each with its own front-end cache, a YCSB-style workload split evenly
/// across clients.
struct ExperimentConfig {
  /// Number of back-end shards (paper: 8).
  uint32_t num_servers = 8;
  /// Key space size (paper: 1M).
  uint64_t key_space = 1000000;
  /// Number of front-end clients (paper: 20 threads).
  uint32_t num_clients = 20;
  /// Total operations across all clients (paper: 1M-10M).
  uint64_t total_ops = 1000000;
  /// Workload phases; every client runs the same spec with its own RNG
  /// stream. Phase op budgets are per client and are overridden from
  /// `total_ops` when left 0 on a single phase.
  std::vector<workload::PhaseSpec> phases;
  /// Base RNG seed; client i uses seed + i.
  uint64_t seed = 42;
  /// Virtual nodes per server on the ring (see CacheCluster for why the
  /// default is high).
  uint32_t virtual_nodes = 16384;
  /// Load every key into its shard before the run — the YCSB load phase of
  /// the paper's setup. Without it, cold-miss storage penalties dominate
  /// the first pass over the key space and distort timing experiments.
  bool preload_backend = true;
  /// OS threads driving the clients (and the preload). 1 = the serial
  /// round-robin interleave; T > 1 runs client i on thread i % T, making
  /// the run genuinely concurrent like the paper's client threads. Each
  /// client still owns a private cache, OpStream, and RNG seed (seed + i),
  /// so per-client logical stats are independent of the thread count.
  uint32_t num_threads = 1;
  /// Fault plan for the run (empty = the classic never-fails tier). Fault
  /// windows are keyed on each client's logical operation clock, so a
  /// faulty run is exactly as deterministic as a healthy one: client i
  /// experiences every fault at the same point of its own stream at any
  /// thread count.
  FaultSchedule faults;
  /// Client-side failure handling (retries, circuit breaker, cold
  /// recovery). Only consulted when `faults` is non-empty.
  FailurePolicy failure_policy;
  /// Topology mutations applied mid-run (empty = static tier). Each
  /// event's `at_op` is a *barrier* on every client's logical op clock:
  /// the engine drives every client to exactly `at_op` completed
  /// operations, applies the event, then resumes — so churn runs are as
  /// deterministic as static ones at any thread count. Fault schedules
  /// are validated against `churn.MaxServerCount(num_servers)`, letting
  /// faults target shards that only exist after mid-run growth.
  ChurnSchedule churn;
  /// Batched reads: runs of up to `batch_size` consecutive read ops from
  /// a client's stream are issued as one `FrontendClient::MultiGet`
  /// (grouped by owning shard, one shard request per sub-batch); an
  /// update flushes the pending run first. 1 (or 0) = the classic
  /// per-op path. The logical results are unchanged — batching amortizes
  /// transport (locks, fault draws, epoch checks), it does not reorder
  /// the stream.
  uint32_t batch_size = 1;
  /// Cluster topology (see `Topology`). kDistCache adds `cache_nodes`
  /// upper-tier cache nodes and gives every client a private
  /// `DistCacheRouter`; clients then refresh their route views at every
  /// churn barrier (the router path is unfenced, so the barrier — not the
  /// epoch fence — is what keeps routing views current under churn).
  Topology topology = Topology::kRing;
  /// Upper-tier cache nodes (kDistCache only; must be >= 2 — one per
  /// independent partition).
  uint32_t cache_nodes = 4;
  /// Per-cache-node LRU capacity in items; 0 = unbounded (kDistCache).
  size_t cache_node_items = 0;
  /// Hot-set size per client router (kDistCache).
  size_t distcache_hot_keys = 64;
  /// Routed ops between router control-plane epochs (kDistCache).
  uint64_t distcache_epoch_ops = 1024;
  /// Structured event tracing: ring-buffer slots retained *per client*
  /// (resizer decisions, epoch boundaries, breaker transitions, fault
  /// activations, retry episodes). 0 — the default — disables tracing
  /// entirely: no tracer objects exist and every instrumentation site is a
  /// null-pointer test on a cold path. Each client gets a private tracer
  /// (written only by its driving thread), merged deterministically into
  /// `ExperimentResult::trace` after the run, so traces are byte-identical
  /// at any thread count.
  size_t trace_capacity = 0;
};

/// Builds each client's local cache; called once per client index. Return
/// null for a cacheless client.
using CacheFactory =
    std::function<std::unique_ptr<cache::Cache>(uint32_t client_index)>;

/// Aggregated outcome of a run.
struct ExperimentResult {
  /// Lookup load per shard, counted at the shards. Under kDistCache this
  /// covers ring shards only — cache-node load is reported separately in
  /// `cache_node_lookups`, so `imbalance` stays the *shard* imbalance the
  /// paper measures and two-layer runs are comparable to ring runs.
  std::vector<uint64_t> per_server_lookups;
  /// max/min of `per_server_lookups` (the paper's load-imbalance).
  double imbalance = 1.0;
  /// Upper-tier cache nodes, in creation order (empty under kRing).
  std::vector<ServerId> cache_node_ids;
  /// Lookup load per cache node, parallel to `cache_node_ids`.
  std::vector<uint64_t> cache_node_lookups;
  /// Total lookups that reached the back-end.
  uint64_t total_backend_lookups = 0;
  /// Reads/updates/hits aggregated over all clients.
  FrontendStats aggregate;
  /// Per-client stats, indexed by client id. Reads, updates, local hits,
  /// backend lookups, and every robustness counter depend only on the
  /// client's own stream, cache, and fault clock, so they match the
  /// serial run bit-for-bit at any thread count.
  std::vector<FrontendStats> per_client;
  /// Failed/skipped requests per shard, aggregated over clients — the
  /// availability profile of the run (all zero without faults).
  std::vector<uint64_t> unavailable_ops_per_server;
  /// Local cache hit-rate over all clients (hits / reads).
  double local_hit_rate = 0.0;
  /// Merged structured event trace, ordered by `(client, seq)` — the order
  /// is a pure function of each client's own stream, so it is identical at
  /// any thread count. Empty unless `ExperimentConfig::trace_capacity > 0`.
  std::vector<metrics::TraceEvent> trace;
  /// Events dropped across all clients because a ring buffer was full.
  uint64_t trace_dropped = 0;
  /// Topology mutations applied during the run (== churn events).
  uint64_t topology_changes = 0;
  /// Keys handed warm to new owners by live migration, cumulative.
  uint64_t keys_migrated = 0;
  /// Routing epoch at the end of the run (1 + topology_changes).
  uint64_t routing_epoch = 1;
  /// Fenced requests rejected with kEpochMismatch, summed over shards.
  uint64_t epoch_rejects = 0;
  /// Shards on the ring after the last churn event.
  uint32_t final_active_servers = 0;
  /// Run-level counters/gauges (always populated; see ExportMetrics).
  metrics::MetricsRegistry metrics;
};

/// Fills `result->metrics` from the result's own counters: every
/// `FrontendStats` field as a counter, per-shard lookup/failure counts,
/// imbalance and hit-rate gauges, and per-event-type trace counters. Called
/// by the experiment engines; exposed so custom drivers (benches, the
/// end-to-end simulator) can reuse the exact same export.
void ExportMetrics(ExperimentResult* result);

/// Runs the experiment: builds a fresh `CacheCluster`, `num_clients`
/// clients via `factory`, drives each client's private `OpStream` — either
/// round-robin on the calling thread (num_threads == 1) or on
/// `num_threads` OS threads — and reports shard loads. If `resizer_config`
/// is non-null it is attached to every CoT client.
///
/// Fails if the workload spec is invalid.
StatusOr<ExperimentResult> RunExperiment(
    const ExperimentConfig& config, const CacheFactory& factory,
    const core::ResizerConfig* resizer_config = nullptr);

}  // namespace cot::cluster

#endif  // COT_CLUSTER_EXPERIMENT_H_
