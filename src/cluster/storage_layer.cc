#include "cluster/storage_layer.h"

#include <cassert>

#include "util/hash.h"

namespace cot::cluster {

StorageLayer::StorageLayer(uint64_t key_space_size)
    : key_space_size_(key_space_size) {
  assert(key_space_size >= 1);
}

cache::Value StorageLayer::InitialValue(Key key) { return Mix64(key); }

cache::Value StorageLayer::Get(Key key) {
  assert(key < key_space_size_);
  ++read_count_;
  auto it = overrides_.find(key);
  if (it != overrides_.end()) return it->second;
  return InitialValue(key);
}

void StorageLayer::Set(Key key, Value value) {
  assert(key < key_space_size_);
  ++write_count_;
  overrides_[key] = value;
}

}  // namespace cot::cluster
