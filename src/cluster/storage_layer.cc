#include "cluster/storage_layer.h"

#include <cassert>

#include "util/hash.h"

namespace cot::cluster {

StorageLayer::StorageLayer(uint64_t key_space_size)
    : key_space_size_(key_space_size) {
  assert(key_space_size >= 1);
  // Overrides only accumulate on updates (0.2% of a Tao-style workload), so
  // seed each stripe with a modest bucket table: enough that a typical
  // experiment's update volume never rehashes under a stripe lock, without
  // reserving memory proportional to the key space.
  size_t per_stripe =
      static_cast<size_t>(key_space_size / (kStripes * 64) + 16);
  for (Stripe& stripe : stripes_) stripe.overrides.reserve(per_stripe);
}

StorageLayer::Stripe& StorageLayer::StripeFor(Key key) {
  return stripes_[Mix64(key) & (kStripes - 1)];
}

cache::Value StorageLayer::InitialValue(Key key) { return Mix64(key); }

cache::Value StorageLayer::Get(Key key) {
  assert(key < key_space_size_);
  read_count_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.overrides.find(key);
  if (it != stripe.overrides.end()) return it->second;
  return InitialValue(key);
}

void StorageLayer::Set(Key key, Value value) {
  assert(key < key_space_size_);
  write_count_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.overrides[key] = value;
}

}  // namespace cot::cluster
