#ifndef COT_CLUSTER_SLICE_MAP_H_
#define COT_CLUSTER_SLICE_MAP_H_

#include <cstdint>
#include <vector>

#include "cluster/cache_cluster.h"
#include "cluster/routing.h"

namespace cot::cluster {

/// Slicer-style centralized load balancing (Adya et al., OSDI 2016), the
/// paper's main server-side comparator: the key space is divided into
/// fixed hash slices; a control plane collects per-slice load and
/// periodically *reassigns* whole slices to servers to even the load out.
///
/// This models Slicer's core mechanism at the granularity the paper
/// discusses (coarse slices vs CoT's per-key decisions):
///   - `Route` maps a key to its slice's current owner;
///   - `OnLookup` is the control plane's metadata collection;
///   - `Rebalance()` runs the assignment optimization (LPT greedy: place
///     heaviest slices first, each onto the currently lightest server) and
///     reports how much of the observed load changed owners — Slicer's
///     reconfiguration/key-churn cost, which cold-misses at the new owner.
///
/// Limitation the paper calls out: one slice containing a single viral key
/// can exceed a fair server share on its own; slices cannot be split below
/// the configured granularity, while CoT acts per key at the front-end.
class SliceMap : public RoutingPolicy {
 public:
  /// Creates a map of `num_slices` slices over `num_servers` servers,
  /// initially assigned round-robin. `num_slices` must be a power of two.
  SliceMap(uint32_t num_servers, uint32_t num_slices = 4096);

  /// Routes via the slice assignment table; the ring view is ignored —
  /// Slicer's placement is its own, not consistent hashing's.
  ServerId Route(uint64_t key, const RouteView& view) override;
  void OnLookup(uint64_t key, ServerId server) override;

  /// Runs the reassignment optimization over the load observed since the
  /// last call. Returns the fraction of observed load whose slice moved to
  /// a different server (the reconfiguration cost), and resets the
  /// per-slice counters.
  ///
  /// When `cluster` is provided, moved slices are flushed from their old
  /// owners — the invalidation a real Slicer performs on reassignment.
  /// Without it a slice that later moves *back* could expose stale copies
  /// stranded on the previous owner.
  double Rebalance(CacheCluster* cluster = nullptr);

  /// Slice index of `key`.
  uint32_t SliceOf(uint64_t key) const;
  /// Current owner of `slice`.
  ServerId OwnerOf(uint32_t slice) const { return assignment_[slice]; }
  /// Number of slices.
  uint32_t num_slices() const { return static_cast<uint32_t>(assignment_.size()); }
  /// Number of reconfigurations performed.
  uint64_t rebalance_count() const { return rebalance_count_; }

 private:
  uint32_t num_servers_;
  int slice_shift_;  // key hash >> shift = slice index
  std::vector<ServerId> assignment_;
  std::vector<uint64_t> slice_load_;
  uint64_t rebalance_count_ = 0;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_SLICE_MAP_H_
