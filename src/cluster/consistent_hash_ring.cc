#include "cluster/consistent_hash_ring.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"

namespace cot::cluster {

ConsistentHashRing::ConsistentHashRing(uint32_t num_servers,
                                       uint32_t virtual_nodes)
    : virtual_nodes_(virtual_nodes) {
  assert(num_servers >= 1);
  assert(virtual_nodes >= 1);
  points_.reserve(static_cast<size_t>(num_servers) * virtual_nodes);
  for (uint32_t i = 0; i < num_servers; ++i) AddServer();
}

void ConsistentHashRing::InsertPointsFor(ServerId id) {
  for (uint32_t v = 0; v < virtual_nodes_; ++v) {
    uint64_t pos = HashPair(static_cast<uint64_t>(id) + 1, v);
    points_.push_back(Point{pos, id});
  }
}

void ConsistentHashRing::SortPoints() {
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.server < b.server;
            });
  RebuildIndex();
}

void ConsistentHashRing::RebuildIndex() {
  // One bucket per point (rounded up to a power of two, capped at 2^20)
  // keeps the expected scan in ServerFor at a single point while the
  // index stays a small multiple of the point array.
  uint32_t pow = 1;
  while ((size_t{1} << pow) < points_.size() && pow < 20) ++pow;
  shift_ = 64 - pow;
  const size_t buckets = size_t{1} << pow;
  bucket_start_.assign(buckets + 1, static_cast<uint32_t>(points_.size()));
  for (size_t i = points_.size(); i-- > 0;) {
    bucket_start_[points_[i].position >> shift_] = static_cast<uint32_t>(i);
  }
  // bucket_start_[b] = first index whose bucket is >= b (empty buckets
  // borrow their successor's start).
  for (size_t b = buckets; b-- > 0;) {
    if (bucket_start_[b] > bucket_start_[b + 1]) {
      bucket_start_[b] = bucket_start_[b + 1];
    }
  }
}

bool ConsistentHashRing::Contains(ServerId id) const {
  return std::any_of(points_.begin(), points_.end(),
                     [&](const Point& p) { return p.server == id; });
}

ServerId ConsistentHashRing::AddServer() {
  ServerId id = server_count_;
  InsertPointsFor(id);
  ++server_count_;
  ++active_count_;
  SortPoints();
  return id;
}

Status ConsistentHashRing::AddServerWithId(ServerId id) {
  if (Contains(id)) {
    return Status::FailedPrecondition("server id already on the ring");
  }
  InsertPointsFor(id);
  if (id >= server_count_) server_count_ = id + 1;
  ++active_count_;
  SortPoints();
  return Status::OK();
}

Status ConsistentHashRing::RemoveServer(ServerId id) {
  if (id >= server_count_ || !Contains(id)) {
    return Status::NotFound("server id not on the ring");
  }
  if (active_count_ <= 1) {
    return Status::FailedPrecondition("cannot remove the last server");
  }
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&](const Point& p) { return p.server == id; }),
                points_.end());
  --active_count_;
  RebuildIndex();
  return Status::OK();
}

ServerId ConsistentHashRing::ServerFor(uint64_t key) const {
  assert(!points_.empty());
  uint64_t h = Mix64(key);
  // Jump to h's bucket, then walk to the first point clockwise of h. No
  // point is skipped: everything before bucket_start_[b] lies in an
  // earlier bucket, i.e. strictly below h's bucket start.
  size_t i = bucket_start_[h >> shift_];
  while (i < points_.size() && points_[i].position < h) ++i;
  if (i == points_.size()) i = 0;  // wrap around
  return points_[i].server;
}

std::vector<double> ConsistentHashRing::OwnershipFractions() const {
  std::vector<double> fractions(server_count_, 0.0);
  if (points_.empty()) return fractions;
  constexpr double kRing = 18446744073709551616.0;  // 2^64
  for (size_t i = 0; i < points_.size(); ++i) {
    // Arc (prev, this] belongs to this point's server.
    uint64_t curr = points_[i].position;
    uint64_t prev =
        (i == 0) ? points_.back().position : points_[i - 1].position;
    uint64_t arc = curr - prev;  // wraps correctly in uint64 arithmetic
    fractions[points_[i].server] += static_cast<double>(arc) / kRing;
  }
  return fractions;
}

}  // namespace cot::cluster
