#include "cluster/hot_key_replicator.h"

#include <cassert>

namespace cot::cluster {

HotKeyReplicator::HotKeyReplicator(uint32_t num_servers, double hot_share,
                                   uint32_t gamma, size_t tracker_size)
    : num_servers_(num_servers),
      hot_share_(hot_share),
      gamma_(gamma),
      tracker_size_(tracker_size) {
  assert(num_servers >= 1);
  assert(gamma >= 1);
  trackers_.reserve(num_servers);
  for (uint32_t i = 0; i < num_servers; ++i) {
    trackers_.emplace_back(tracker_size_);
  }
  epoch_lookups_.assign(num_servers, 0);
  // At most tracker_size keys per server can be promoted to hot.
  replicas_.reserve(static_cast<size_t>(num_servers) * tracker_size_);
}

ServerId HotKeyReplicator::Route(uint64_t key, const RouteView& view) {
  auto it = replicas_.find(key);
  if (it == replicas_.end()) return view.ring->ServerFor(key);
  // Spread this key's lookups across its replica set.
  const std::vector<ServerId>& set = it->second;
  return set[rotation_++ % set.size()];
}

std::vector<ServerId> HotKeyReplicator::AllReplicas(uint64_t key,
                                                    const RouteView& view) {
  auto it = replicas_.find(key);
  if (it == replicas_.end()) return {view.ring->ServerFor(key)};
  return it->second;
}

void HotKeyReplicator::OnLookup(uint64_t key, ServerId server) {
  trackers_[server].TrackAccess(key, core::AccessType::kRead);
  ++epoch_lookups_[server];
}

std::vector<uint64_t> HotKeyReplicator::EndEpoch(const RouteView& view) {
  std::vector<uint64_t> broadcast;
  for (uint32_t s = 0; s < num_servers_; ++s) {
    uint64_t load = epoch_lookups_[s];
    if (load == 0) continue;
    double threshold = hot_share_ * static_cast<double>(load);
    for (const auto& [key, hotness] : trackers_[s].SortedByHotnessDesc()) {
      if (hotness < threshold) break;  // sorted: rest are colder
      if (replicas_.count(key) != 0) continue;
      // Replicate to gamma servers: the home server plus its successors.
      ServerId home = view.ring->ServerFor(key);
      std::vector<ServerId> set;
      set.reserve(gamma_);
      for (uint32_t g = 0; g < gamma_ && g < num_servers_; ++g) {
        set.push_back((home + g) % num_servers_);
      }
      replicas_[key] = std::move(set);
      broadcast.push_back(key);
    }
    trackers_[s].Clear();
    epoch_lookups_[s] = 0;
  }
  return broadcast;
}

}  // namespace cot::cluster
