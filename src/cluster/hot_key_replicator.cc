#include "cluster/hot_key_replicator.h"

#include <cassert>

namespace cot::cluster {

HotKeyReplicator::HotKeyReplicator(const ConsistentHashRing* ring,
                                   double hot_share, uint32_t gamma,
                                   size_t tracker_size)
    : ring_(ring),
      hot_share_(hot_share),
      gamma_(gamma),
      tracker_size_(tracker_size) {
  assert(ring != nullptr);
  assert(gamma >= 1);
  uint32_t n = ring->server_count();
  trackers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    trackers_.emplace_back(tracker_size_);
  }
  epoch_lookups_.assign(n, 0);
  // At most tracker_size keys per server can be promoted to hot.
  replicas_.reserve(static_cast<size_t>(n) * tracker_size_);
}

ServerId HotKeyReplicator::Route(uint64_t key) {
  auto it = replicas_.find(key);
  if (it == replicas_.end()) return ring_->ServerFor(key);
  // Spread this key's lookups across its replica set.
  const std::vector<ServerId>& set = it->second;
  return set[rotation_++ % set.size()];
}

std::vector<ServerId> HotKeyReplicator::AllReplicas(uint64_t key) {
  auto it = replicas_.find(key);
  if (it == replicas_.end()) return {ring_->ServerFor(key)};
  return it->second;
}

void HotKeyReplicator::OnLookup(uint64_t key, ServerId server) {
  trackers_[server].TrackAccess(key, core::AccessType::kRead);
  ++epoch_lookups_[server];
}

std::vector<uint64_t> HotKeyReplicator::EndEpoch() {
  std::vector<uint64_t> broadcast;
  uint32_t n = ring_->server_count();
  for (uint32_t s = 0; s < n; ++s) {
    uint64_t load = epoch_lookups_[s];
    if (load == 0) continue;
    double threshold = hot_share_ * static_cast<double>(load);
    for (const auto& [key, hotness] : trackers_[s].SortedByHotnessDesc()) {
      if (hotness < threshold) break;  // sorted: rest are colder
      if (replicas_.count(key) != 0) continue;
      // Replicate to gamma servers: the home server plus its successors.
      ServerId home = ring_->ServerFor(key);
      std::vector<ServerId> set;
      set.reserve(gamma_);
      for (uint32_t g = 0; g < gamma_ && g < n; ++g) {
        set.push_back((home + g) % n);
      }
      replicas_[key] = std::move(set);
      broadcast.push_back(key);
    }
    trackers_[s].Clear();
    epoch_lookups_[s] = 0;
  }
  return broadcast;
}

}  // namespace cot::cluster
