#ifndef COT_CLUSTER_RETRY_BUDGET_H_
#define COT_CLUSTER_RETRY_BUDGET_H_

#include <atomic>
#include <cstdint>

namespace cot::cluster {

/// Cluster-wide retry-budget token bucket.
///
/// Retries are the fuel of metastable overload: past the saturation knee,
/// every timeout spawns a retry, which adds load, which causes more
/// timeouts — goodput collapses and *stays* collapsed even when offered
/// load drops back. The industry fix (Finagle, gRPC, Envoy) is a retry
/// budget: retries may consume at most a fixed fraction of fresh traffic,
/// so the retry amplification factor is bounded by (1 + ratio) instead of
/// (1 + max_retries).
///
/// Every fresh (first-attempt) backend request deposits `ratio` tokens;
/// every retry withdraws one. The bucket is capped at `burst` tokens so a
/// long quiet period cannot bank an unbounded retry storm. Tokens are
/// tracked in integer milli-tokens so the bucket is a single atomic —
/// clients on every thread share one instance without a lock.
///
/// Determinism note: a *shared* bucket makes each client's retry decisions
/// depend on sibling traffic, so per-client behaviour is no longer a pure
/// function of its own stream. The closed-loop determinism suites therefore
/// run with no budget attached (the default everywhere); the open-loop
/// harness, whose contract is the accounting identity rather than per-op
/// equality, enables it.
class RetryBudget {
 public:
  /// `ratio` is the retries-per-fresh-request allowance (0.1 = 10%);
  /// `burst` is the bucket cap in whole tokens.
  RetryBudget(double ratio, double burst)
      : deposit_milli_(static_cast<int64_t>(ratio * 1000.0)),
        cap_milli_(static_cast<int64_t>(burst * 1000.0)),
        milli_tokens_(cap_milli_) {}

  /// Deposits the per-fresh-request allowance (saturating at the cap).
  void OnFreshRequest() {
    if (deposit_milli_ == 0) return;
    int64_t cur = milli_tokens_.load(std::memory_order_relaxed);
    for (;;) {
      const int64_t next = cur + deposit_milli_ > cap_milli_
                               ? cap_milli_
                               : cur + deposit_milli_;
      if (next == cur) return;
      if (milli_tokens_.compare_exchange_weak(cur, next,
                                              std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Withdraws one token for a retry. Returns false (and withdraws
  /// nothing) when the budget is exhausted — the caller must give up the
  /// retry and take its fallback path instead. A zero ratio disables
  /// withdrawals entirely: a bucket that can never refill is a fixed
  /// grant, not a budget, so it denies from the first request rather than
  /// silently allowing `burst` unfunded retries.
  bool TryConsume() {
    if (deposit_milli_ == 0) return false;
    int64_t cur = milli_tokens_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur < 1000) return false;
      if (milli_tokens_.compare_exchange_weak(cur, cur - 1000,
                                              std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Current balance in whole tokens (tests / introspection).
  double tokens() const {
    return static_cast<double>(milli_tokens_.load(std::memory_order_relaxed)) /
           1000.0;
  }

 private:
  const int64_t deposit_milli_;
  const int64_t cap_milli_;
  std::atomic<int64_t> milli_tokens_;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_RETRY_BUDGET_H_
