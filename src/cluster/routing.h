#ifndef COT_CLUSTER_ROUTING_H_
#define COT_CLUSTER_ROUTING_H_

#include <vector>

#include "cluster/consistent_hash_ring.h"

namespace cot::cluster {

/// Key-to-server routing policy used by `FrontendClient`. The default is
/// plain consistent hashing (`RingRouter`); the server-side load-balancing
/// comparators from the paper's related work (Slicer-style slice
/// reassignment, hot-key replication) plug in here, so they can be
/// compared against — and composed with — CoT's front-end caching on the
/// same substrate.
///
/// Implementations may be shared by many clients (the simulation is
/// single-threaded).
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// Server to send one lookup of `key` to. Stateful policies may rotate
  /// among replicas.
  virtual ServerId Route(uint64_t key) = 0;

  /// Every server holding `key` (invalidations must reach all replicas).
  /// Defaults to the single routed server.
  virtual std::vector<ServerId> AllReplicas(uint64_t key) {
    return {Route(key)};
  }

  /// Metadata-collection hook: called after a lookup of `key` was sent to
  /// `server` (this is the access stream a control plane or server-side
  /// monitor observes).
  virtual void OnLookup(uint64_t key, ServerId server) {
    (void)key;
    (void)server;
  }
};

/// Plain consistent hashing — the paper's baseline key-discovery scheme.
class RingRouter : public RoutingPolicy {
 public:
  /// Routes via `ring` (borrowed; must outlive the router).
  explicit RingRouter(const ConsistentHashRing* ring) : ring_(ring) {}

  ServerId Route(uint64_t key) override { return ring_->ServerFor(key); }

 private:
  const ConsistentHashRing* ring_;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_ROUTING_H_
