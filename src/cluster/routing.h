#ifndef COT_CLUSTER_ROUTING_H_
#define COT_CLUSTER_ROUTING_H_

#include <vector>

#include "cluster/consistent_hash_ring.h"

namespace cot::cluster {

/// The routing state a policy decides against: the client's cached
/// `RingSnapshot` view, broken out as (epoch, ring). The view is immutable
/// — `FrontendClient` builds it from the `shared_ptr<const RingSnapshot>`
/// it already holds for the fenced serving path — so a policy reading it
/// can never race a topology mutation, no matter when `CacheCluster`
/// mutates the live ring. Policies that need the current topology (the
/// plain ring router, the distcache cold path) read `ring`; policies with
/// their own placement tables (SliceMap) may ignore it.
///
/// The view is passed per call rather than stored: a client refreshes its
/// snapshot after a fenced rejection or a churn barrier, and the very next
/// routing decision sees the new view with no policy-side invalidation
/// hook required.
struct RouteView {
  /// Routing epoch of the snapshot the view was taken from.
  uint64_t epoch = 0;
  /// The ring as of that epoch (borrowed from the immutable snapshot;
  /// never null when handed out by `FrontendClient`).
  const ConsistentHashRing* ring = nullptr;
};

/// Key-to-server routing policy used by `FrontendClient`. The default is
/// plain consistent hashing (`RingRouter`); the server-side load-balancing
/// comparators from the paper's related work (Slicer-style slice
/// reassignment, hot-key replication) and the DistCache-style two-layer
/// topology (`DistCacheRouter`) plug in here, so they can be compared
/// against — and composed with — CoT's front-end caching on the same
/// substrate.
///
/// Implementations may be shared by clients driven from one thread;
/// parallel experiment drivers give each client its own instance (routing
/// state is part of the client's deterministic logical state).
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// Server to send one lookup of `key` to, deciding against `view`.
  /// Stateful policies may rotate among replicas.
  virtual ServerId Route(uint64_t key, const RouteView& view) = 0;

  /// Every server holding `key` (invalidations must reach all replicas —
  /// a write that skips one leaves a stale copy). Defaults to the single
  /// routed server.
  virtual std::vector<ServerId> AllReplicas(uint64_t key,
                                            const RouteView& view) {
    return {Route(key, view)};
  }

  /// Metadata-collection hook: called after a lookup of `key` was sent to
  /// `server` (this is the access stream a control plane or server-side
  /// monitor observes).
  virtual void OnLookup(uint64_t key, ServerId server) {
    (void)key;
    (void)server;
  }

  /// Health hook: the client's gray-failure defense sets `server`'s
  /// routing weight in (0, 1] — 1 restores full health, a lameduck shard
  /// gets a reduced weight. Weight-aware policies (p2c) divide the
  /// shard's attractiveness by it; the default ignores health entirely.
  virtual void OnHealth(ServerId server, double weight) {
    (void)server;
    (void)weight;
  }

  /// Hedge-placement hook: a replica of `key` other than `primary` that a
  /// hedged read could race against the slow primary, or kNoReplica when
  /// the policy has none (the hedge then goes to the storage tier).
  /// Policies replicating hot keys (DistCache p2c) return the other
  /// candidate.
  static constexpr ServerId kNoReplica = static_cast<ServerId>(-1);
  virtual ServerId HedgeReplica(uint64_t key, ServerId primary,
                                const RouteView& view) {
    (void)key;
    (void)primary;
    (void)view;
    return kNoReplica;
  }
};

/// Plain consistent hashing — the paper's baseline key-discovery scheme.
/// Stateless: it routes with whatever ring the caller's view carries.
class RingRouter : public RoutingPolicy {
 public:
  ServerId Route(uint64_t key, const RouteView& view) override {
    return view.ring->ServerFor(key);
  }
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_ROUTING_H_
