#include "cluster/frontend_client.h"

#include <algorithm>
#include <cassert>

#include "metrics/imbalance.h"

namespace cot::cluster {

FrontendClient::FrontendClient(CacheCluster* cluster,
                               std::unique_ptr<cache::Cache> local_cache)
    : cluster_(cluster),
      local_cache_(std::move(local_cache)),
      epoch_lookups_(cluster->server_count(), 0),
      cumulative_lookups_(cluster->server_count(), 0) {
  assert(cluster != nullptr);
  cot_cache_ = dynamic_cast<core::CotCache*>(local_cache_.get());
}

Status FrontendClient::EnableElasticResizing(
    const core::ResizerConfig& config) {
  if (cot_cache_ == nullptr) {
    return Status::FailedPrecondition(
        "elastic resizing requires a CotCache local cache");
  }
  resizer_ = std::make_unique<core::ElasticResizer>(cot_cache_, config);
  return Status::OK();
}

void FrontendClient::EnsureServerVectors() {
  size_t n = cluster_->server_count();
  if (epoch_lookups_.size() < n) {
    epoch_lookups_.resize(n, 0);
    cumulative_lookups_.resize(n, 0);
  }
}

cache::Value FrontendClient::GetImpl(Key key, OpOutcome* outcome) {
  EnsureServerVectors();
  ++stats_.reads;
  if (local_cache_ != nullptr) {
    std::optional<Value> local = local_cache_->Get(key);
    if (local.has_value()) {
      ++stats_.local_hits;
      outcome->local_hit = true;
      OnOperation();
      return *local;
    }
  }
  ServerId sid = router_ != nullptr ? router_->Route(key)
                                    : cluster_->ring().ServerFor(key);
  ++epoch_lookups_[sid];
  ++cumulative_lookups_[sid];
  ++stats_.backend_lookups;
  outcome->backend_contacted = true;
  outcome->server = sid;
  if (router_ != nullptr) router_->OnLookup(key, sid);
  std::optional<Value> value = cluster_->server(sid).Get(key);
  if (value.has_value()) {
    ++stats_.backend_hits;
  } else {
    // Cold path: authoritative read, then fill the shard (Section 2).
    ++stats_.storage_reads;
    outcome->storage_accessed = true;
    value = cluster_->storage().Get(key);
    cluster_->server(sid).Set(key, *value);
  }
  if (local_cache_ != nullptr) {
    local_cache_->Put(key, *value);
  }
  OnOperation();
  return *value;
}

void FrontendClient::SetImpl(Key key, Value value, OpOutcome* outcome) {
  EnsureServerVectors();
  ++stats_.updates;
  cluster_->storage().Set(key, value);
  outcome->storage_accessed = true;
  // The update must reach every replica of the key.
  std::vector<ServerId> targets =
      router_ != nullptr
          ? router_->AllReplicas(key)
          : std::vector<ServerId>{cluster_->ring().ServerFor(key)};
  if (write_policy_ == WritePolicy::kInvalidate) {
    // Memcached client-driven protocol (Section 2): invalidate the local
    // copy and delete the shard copies.
    if (local_cache_ != nullptr) {
      local_cache_->Invalidate(key);
    }
    for (ServerId sid : targets) {
      cluster_->server(sid).Delete(key);
    }
  } else {
    // Write-through: refresh copies in place. The local cache still
    // records the update access for the dual-cost model when it is a
    // CotCache (Invalidate + Put keeps the hotness accounting and the
    // fresh value; plain policies just overwrite).
    if (local_cache_ != nullptr) {
      if (cot_cache_ != nullptr) {
        local_cache_->Invalidate(key);
        local_cache_->Put(key, value);
      } else if (local_cache_->Contains(key)) {
        local_cache_->Put(key, value);
      }
    }
    for (ServerId sid : targets) {
      cluster_->server(sid).Set(key, value);
    }
  }
  outcome->backend_contacted = true;
  outcome->server = targets.front();
  OnOperation();
}

cache::Value FrontendClient::Get(Key key) {
  OpOutcome outcome;
  return GetImpl(key, &outcome);
}

void FrontendClient::Set(Key key, Value value) {
  OpOutcome outcome;
  SetImpl(key, value, &outcome);
}

void FrontendClient::Apply(const workload::Op& op) {
  ApplyDetailed(op);
}

FrontendClient::OpOutcome FrontendClient::ApplyDetailed(
    const workload::Op& op) {
  OpOutcome outcome;
  if (op.type == workload::OpType::kRead) {
    GetImpl(op.key, &outcome);
  } else {
    SetImpl(op.key, ++update_version_, &outcome);
  }
  return outcome;
}

double FrontendClient::CurrentEpochImbalance() const {
  return metrics::LoadImbalance(epoch_lookups_);
}

void FrontendClient::OnOperation() {
  if (resizer_ == nullptr) return;
  resizer_->OnAccess();
  if (!resizer_->EpochComplete()) return;
  // Hold the epoch open until it contains enough backend lookups for the
  // max/min imbalance ratio to be statistically meaningful — with a good
  // front-end cache, E accesses may translate to very few lookups.
  uint64_t lookups = 0;
  for (uint64_t c : epoch_lookups_) lookups += c;
  if (lookups < resizer_->config().min_epoch_backend_lookups) return;
  resizer_->EndEpoch(epoch_lookups_);
  std::fill(epoch_lookups_.begin(), epoch_lookups_.end(), 0);
}

}  // namespace cot::cluster
