#include "cluster/frontend_client.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "metrics/imbalance.h"

namespace cot::cluster {

void FrontendStats::Add(const FrontendStats& other) {
  reads += other.reads;
  updates += other.updates;
  local_hits += other.local_hits;
  backend_lookups += other.backend_lookups;
  backend_hits += other.backend_hits;
  storage_reads += other.storage_reads;
  failed_requests += other.failed_requests;
  retries += other.retries;
  retries_suppressed += other.retries_suppressed;
  failovers += other.failovers;
  degraded_ops += other.degraded_ops;
  invalidations += other.invalidations;
  lost_invalidations += other.lost_invalidations;
  forced_restarts += other.forced_restarts;
  cold_restarts += other.cold_restarts;
  breaker_trips += other.breaker_trips;
  slow_ops += other.slow_ops;
  unavailable_shard_epochs += other.unavailable_shard_epochs;
  epoch_mismatches += other.epoch_mismatches;
  route_refreshes += other.route_refreshes;
  hedges_sent += other.hedges_sent;
  hedges_won += other.hedges_won;
  hedges_lost += other.hedges_lost;
  hedges_suppressed += other.hedges_suppressed;
  lameduck_entries += other.lameduck_entries;
  lameduck_exits += other.lameduck_exits;
  lameduck_bypasses += other.lameduck_bypasses;
  lameduck_probes += other.lameduck_probes;
  gray_ops += other.gray_ops;
}

FrontendClient::FrontendClient(CacheCluster* cluster,
                               std::unique_ptr<cache::Cache> local_cache)
    : cluster_(cluster),
      snapshot_(cluster->ring_snapshot_synced()),
      local_cache_(std::move(local_cache)),
      epoch_lookups_(snapshot_->servers.size(), 0),
      cumulative_lookups_(snapshot_->servers.size(), 0),
      failed_ops_per_server_(snapshot_->servers.size(), 0),
      epoch_shard_unavailable_(snapshot_->servers.size(), 0),
      breakers_(snapshot_->servers.size()) {
  assert(cluster != nullptr);
  cot_cache_ = dynamic_cast<core::CotCache*>(local_cache_.get());
}

void FrontendClient::RefreshRouteView() {
  // Synced variant: a refresh happens because a fenced rejection proved the
  // view stale, so block until the in-flight mutation (if any) has finished
  // migrating — the refreshed view's owners are then warm.
  snapshot_ = cluster_->ring_snapshot_synced();
  EnsureServerVectors();
}

void FrontendClient::NoteEpochMismatch(ServerId sid, uint64_t client_epoch,
                                       uint64_t shard_epoch, uint64_t now,
                                       OpOutcome* outcome) {
  ++stats_.epoch_mismatches;
  ++outcome->epoch_mismatches;
  if (tracer_ != nullptr) {
    tracer_->Record(now, metrics::EpochMismatchPayload{
                             static_cast<uint32_t>(sid), client_epoch,
                             shard_epoch});
  }
}

void FrontendClient::SetFaultInjector(const FaultInjector* injector,
                                      uint32_t client_id,
                                      const FailurePolicy& policy) {
  fault_injector_ = injector;
  fault_client_id_ = client_id;
  failure_policy_ = policy;
  if (injector != nullptr && policy.health_enabled) {
    health_ = std::make_unique<HealthMonitor>(
        static_cast<uint32_t>(snapshot_->servers.size()), policy.health);
  } else {
    health_.reset();
  }
}

void FrontendClient::SetTracer(metrics::EventTracer* tracer) {
  tracer_ = tracer;
  if (resizer_ != nullptr) resizer_->SetTracer(tracer);
}

Status FrontendClient::EnableElasticResizing(
    const core::ResizerConfig& config) {
  if (cot_cache_ == nullptr) {
    return Status::FailedPrecondition(
        "elastic resizing requires a CotCache local cache");
  }
  resizer_ = std::make_unique<core::ElasticResizer>(cot_cache_, config);
  resizer_->SetTracer(tracer_);
  return Status::OK();
}

void FrontendClient::EnsureServerVectors() {
  // Sized from the cached snapshot (lock-free): every ServerId the ring
  // path can produce comes from that snapshot, so its server count bounds
  // them all. Only the router path can hand out ids beyond it — covered by
  // EnsureServerCapacity.
  size_t n = snapshot_->servers.size();
  if (epoch_lookups_.size() < n) {
    epoch_lookups_.resize(n, 0);
    cumulative_lookups_.resize(n, 0);
    failed_ops_per_server_.resize(n, 0);
    epoch_shard_unavailable_.resize(n, 0);
    breakers_.resize(n);
  }
}

void FrontendClient::EnsureServerCapacity(ServerId sid) {
  if (sid < epoch_lookups_.size()) return;
  size_t n = std::max<size_t>(sid + 1, cluster_->server_count());
  epoch_lookups_.resize(n, 0);
  cumulative_lookups_.resize(n, 0);
  failed_ops_per_server_.resize(n, 0);
  epoch_shard_unavailable_.resize(n, 0);
  breakers_.resize(n);
}

bool FrontendClient::BreakerBlocks(ServerId sid, uint64_t now) const {
  const Breaker& b = breakers_[sid];
  // Once the cooldown elapses the breaker is half-open: the next request
  // goes through as a probe.
  return b.open && now < b.open_until;
}

void FrontendClient::RecordFailure(ServerId sid, uint64_t now) {
  Breaker& b = breakers_[sid];
  ++b.consecutive_failures;
  ++failed_ops_per_server_[sid];
  epoch_shard_unavailable_[sid] = 1;
  if (b.open) {
    // Failed half-open probe: stay open for another cooldown.
    b.open_until = now + failure_policy_.breaker_cooldown_ops;
    if (tracer_ != nullptr) {
      tracer_->Record(now, metrics::BreakerTransitionPayload{
                               static_cast<uint32_t>(sid), "half_open", "open",
                               b.consecutive_failures});
    }
  } else if (b.consecutive_failures >=
             failure_policy_.breaker_failure_threshold) {
    b.open = true;
    b.open_until = now + failure_policy_.breaker_cooldown_ops;
    ++stats_.breaker_trips;
    if (tracer_ != nullptr) {
      tracer_->Record(now, metrics::BreakerTransitionPayload{
                               static_cast<uint32_t>(sid), "closed", "open",
                               b.consecutive_failures});
    }
  }
}

void FrontendClient::RecordSuccess(ServerId sid) {
  Breaker& b = breakers_[sid];
  if (b.open && tracer_ != nullptr) {
    // A success on an open breaker is by construction the half-open probe.
    tracer_->Record(op_clock_, metrics::BreakerTransitionPayload{
                                   static_cast<uint32_t>(sid), "half_open",
                                   "closed", b.consecutive_failures});
  }
  b.open = false;
  b.consecutive_failures = 0;
}

void FrontendClient::MaybeRecoverShard(ServerId sid, uint64_t now) {
  if (fault_injector_ == nullptr || !failure_policy_.recover_cold) return;
  uint64_t expected = fault_injector_->CrashGeneration(now, sid);
  if (expected == 0) return;
  // Idempotent across clients: whoever contacts the shard first after the
  // window clears it; everyone else sees the generation already current.
  if (cluster_->AdvanceServerGeneration(sid, expected)) {
    ++stats_.cold_restarts;
  }
}

bool FrontendClient::TryDeliver(ServerId sid, uint64_t now,
                                OpOutcome* outcome) {
  if (fault_injector_ == nullptr) return true;
  // Every delivery attempt that is not a retry is fresh traffic: it funds
  // the cluster-wide retry budget.
  if (retry_budget_ != nullptr) retry_budget_->OnFreshRequest();
  if (health_ != nullptr) {
    // Adaptive deadline in effect for this request's attempts; the sim
    // prices each failed attempt at this instead of the fixed timeout.
    outcome->deadline_us =
        std::max(outcome->deadline_us, health_->DeadlineUs(sid));
  }
  uint32_t attempt = 0;
  for (;;) {
    FaultInjector::Decision d =
        fault_injector_->Evaluate(fault_client_id_, now, sid, attempt);
    if (!d.fail) {
      if (d.slow_factor > 1.0) ++stats_.slow_ops;
      outcome->slow_factor = std::max(outcome->slow_factor, d.slow_factor);
      last_delivery_slow_factor_ = d.slow_factor;
      ObserveHealth(sid, d, now);
      RecordSuccess(sid);
      if (attempt > 0 && tracer_ != nullptr) {
        tracer_->Record(now, metrics::RetryEpisodePayload{
                                 static_cast<uint32_t>(sid), attempt, true});
      }
      return true;
    }
    ++stats_.failed_requests;
    ++outcome->failed_attempts;
    RecordFailure(sid, now);
    if (tracer_ != nullptr) {
      tracer_->Record(now, metrics::FaultActivationPayload{
                               static_cast<uint32_t>(sid),
                               d.crashed ? "crash" : "transient", attempt});
    }
    // A crashed shard is down for the whole window — the retry clock is
    // logical, so re-asking at the same instant cannot succeed.
    if (d.crashed || attempt >= failure_policy_.max_retries) {
      if (tracer_ != nullptr) {
        tracer_->Record(now,
                        metrics::RetryEpisodePayload{
                            static_cast<uint32_t>(sid), attempt + 1, false});
      }
      return false;
    }
    // Past the knee, unbounded retries amplify offered load into collapse;
    // the shared budget caps retry traffic at a fraction of fresh traffic.
    if (retry_budget_ != nullptr && !retry_budget_->TryConsume()) {
      ++stats_.retries_suppressed;
      if (tracer_ != nullptr) {
        tracer_->Record(now,
                        metrics::RetryEpisodePayload{
                            static_cast<uint32_t>(sid), attempt + 1, false});
      }
      return false;
    }
    ++attempt;
    ++stats_.retries;
  }
}

void FrontendClient::ObserveHealth(ServerId sid,
                                   const FaultInjector::Decision& decision,
                                   uint64_t now) {
  if (health_ == nullptr) return;
  if (decision.gray) ++stats_.gray_ops;
  const double nominal = failure_policy_.health_nominal_latency_us;
  const double observed = nominal * decision.slow_factor;
  HealthMonitor::Transition t = health_->Observe(sid, observed, nominal);
  if (t == HealthMonitor::Transition::kNone) return;
  const bool entered = t == HealthMonitor::Transition::kEnterLameduck;
  if (entered) {
    ++stats_.lameduck_entries;
  } else {
    ++stats_.lameduck_exits;
  }
  if (router_ != nullptr) {
    // Quarantine is advisory, not a fence: the router just makes the
    // shard less attractive in p2c comparisons until it recovers.
    router_->OnHealth(sid, entered ? failure_policy_.lameduck_weight : 1.0);
  }
  if (tracer_ != nullptr) {
    tracer_->Record(now, metrics::HealthTransitionPayload{
                             static_cast<uint32_t>(sid),
                             entered ? "lameduck" : "healthy",
                             health_->Score(sid), health_->QuantileUs(sid),
                             health_->observations(sid)});
  }
}

bool FrontendClient::LameduckBypass(ServerId sid, OpOutcome* outcome) {
  if (health_ == nullptr || !health_->IsLameduck(sid)) return false;
  if (health_->NextReadProbes(sid)) {
    // Probe traffic keeps flowing to a quarantined shard — that is what
    // makes recovery observable (and what distinguishes lameduck from an
    // open breaker).
    ++stats_.lameduck_probes;
    return false;
  }
  ++stats_.lameduck_bypasses;
  outcome->lameduck_bypass = true;
  return true;
}

void FrontendClient::MaybeHedge(Key key, ServerId sid, uint64_t now,
                                double slow_factor, OpOutcome* outcome) {
  if (health_ == nullptr || !failure_policy_.hedging_enabled) return;
  const double observed =
      failure_policy_.health_nominal_latency_us * slow_factor;
  const double delay = health_->HedgeDelayUs();
  if (observed <= delay) return;
  // The read is (deterministically) observed to run past the adaptive
  // hedge delay: reissue it, budget permitting. `hedges_sent` counts
  // triggers; sent == won + lost + suppressed is the hard identity.
  ++stats_.hedges_sent;
  if (retry_budget_ != nullptr && !retry_budget_->TryConsume()) {
    // Dry bucket: the hedge is the first load the defense sheds. This is
    // what keeps hedging from amplifying an overload into a retry storm.
    ++stats_.hedges_suppressed;
    if (tracer_ != nullptr) {
      tracer_->Record(now, metrics::HedgePayload{static_cast<uint32_t>(sid),
                                                 "storage", "suppressed",
                                                 observed, delay});
    }
    return;
  }
  ServerId replica = RoutingPolicy::kNoReplica;
  if (router_ != nullptr) {
    replica = router_->HedgeReplica(key, sid, route_view());
  }
  const bool to_replica = replica != RoutingPolicy::kNoReplica;
  double hedge_path_us;
  if (to_replica) {
    // Race the other replica. The oracle tells us what that attempt
    // would observe at this instant (stateless draw, so the race outcome
    // is deterministic); a failing replica attempt simply loses.
    FaultInjector::Decision d =
        fault_injector_->Evaluate(fault_client_id_, now, replica, 0);
    hedge_path_us =
        d.fail ? std::numeric_limits<double>::infinity()
               : failure_policy_.health_nominal_latency_us * d.slow_factor;
  } else {
    hedge_path_us = failure_policy_.hedge_storage_latency_us;
  }
  outcome->hedged = true;
  outcome->hedge_delay_us = delay;
  outcome->hedge_to_replica = to_replica;
  const bool won = delay + hedge_path_us < observed;
  if (won) {
    ++stats_.hedges_won;
    outcome->hedge_won = true;
  } else {
    ++stats_.hedges_lost;
  }
  if (tracer_ != nullptr) {
    tracer_->Record(now, metrics::HedgePayload{
                             static_cast<uint32_t>(sid),
                             to_replica ? "replica" : "storage",
                             won ? "won" : "lost", observed, delay});
  }
}

void FrontendClient::DeliverInvalidation(ServerId sid, Key key,
                                         const std::optional<Value>& value,
                                         uint64_t now, OpOutcome* outcome) {
  if (fault_injector_ != nullptr) {
    // Invalidations bypass the circuit breaker: reads have a safe
    // fallback (storage is authoritative), but a swallowed delete is a
    // future stale read, so delivery is always attempted.
    if (!TryDeliver(sid, now, outcome)) {
      ++stats_.lost_invalidations;
      if (!fault_injector_->InCrashWindow(now, sid)) {
        // The shard is reachable but the message was lost after bounded
        // retries. Without a server-side invalidation log, the only way
        // to keep the no-stale-read contract is to fence the shard cold.
        cluster_->ForceColdRestart(sid);
        ++stats_.forced_restarts;
      }
      // Crash-window loss: the shard cannot serve anyone this window (it
      // is down), and the recovery rule (`FailurePolicy::recover_cold`)
      // restarts it cold — generation-bumped and cleared — before its
      // first post-recovery request.
      return;
    }
    MaybeRecoverShard(sid, now);
  }
  ++stats_.invalidations;
  outcome->backend_contacted = true;
  outcome->server = sid;
  if (value.has_value()) {
    cluster_->server(sid).Set(key, *value);
  } else {
    cluster_->server(sid).Delete(key);
  }
}

void FrontendClient::DeliverInvalidationFenced(
    Key key, const std::optional<Value>& value, uint64_t now,
    OpOutcome* outcome) {
  uint32_t refreshes = 0;
  for (;;) {
    const ServerId sid = snapshot_->ring.ServerFor(key);
    const uint64_t epoch = snapshot_->epoch;
    if (fault_injector_ != nullptr) {
      // Invalidations bypass the circuit breaker: reads have a safe
      // fallback (storage is authoritative), but a swallowed delete is a
      // future stale read, so delivery is always attempted.
      if (!TryDeliver(sid, now, outcome)) {
        ++stats_.lost_invalidations;
        if (!fault_injector_->InCrashWindow(now, sid)) {
          // Reachable shard, message lost after bounded retries: fence it
          // cold (see DeliverInvalidation). A crash-window loss is covered
          // by the recovery generation bump — and if the shard's range
          // moves before the window ends, migration re-reads storage, so
          // the stale copy is dropped rather than handed to a new owner.
          cluster_->ForceColdRestart(sid);
          ++stats_.forced_restarts;
        }
        return;
      }
      MaybeRecoverShard(sid, now);
    }
    BackendServer& shard = *snapshot_->servers[sid];
    BackendServer::FencedAck ack = value.has_value()
                                       ? shard.Set(key, *value, epoch)
                                       : shard.Delete(key, epoch);
    if (ack.status == BackendServer::ShardStatus::kEpochMismatch) {
      NoteEpochMismatch(sid, epoch, ack.shard_epoch, now, outcome);
      if (refreshes >= failure_policy_.max_route_refreshes) {
        // The delete never landed on a stable owner (churn storm). Same
        // contract as a transient loss: fence the key's current owner
        // cold so the undelivered invalidation cannot become a stale
        // read.
        ++stats_.lost_invalidations;
        cluster_->ForceColdRestart(cluster_->OwnerOf(key));
        ++stats_.forced_restarts;
        return;
      }
      ++refreshes;
      ++stats_.route_refreshes;
      RefreshRouteView();
      continue;
    }
    ++stats_.invalidations;
    outcome->backend_contacted = true;
    outcome->server = sid;
    return;
  }
}

cache::Value FrontendClient::GetImpl(Key key, OpOutcome* outcome) {
  const uint64_t now = op_clock_++;
  ++stats_.reads;
  if (local_cache_ != nullptr) {
    std::optional<Value> local = local_cache_->Get(key);
    if (local.has_value()) {
      ++stats_.local_hits;
      outcome->local_hit = true;
      OnOperation();
      return *local;
    }
  }
  if (router_ != nullptr) {
    // Router path (server-side balancing comparators, two-layer
    // topologies): replica placement is the router's business, not the
    // ring's, so requests use the legacy unfenced shard ops. The routing
    // decision itself reads only this client's immutable route view.
    ServerId sid = router_->Route(key, route_view());
    EnsureServerCapacity(sid);
    if (fault_injector_ != nullptr) {
      if (BreakerBlocks(sid, now)) {
        // Degraded mode: the breaker is open, so the shard is skipped
        // entirely and storage serves the read. The shard is not filled
        // (we never confirmed it is reachable).
        ++stats_.degraded_ops;
        ++failed_ops_per_server_[sid];
        epoch_shard_unavailable_[sid] = 1;
        ++stats_.storage_reads;
        outcome->degraded = true;
        outcome->storage_accessed = true;
        Value value = cluster_->storage().Get(key);
        if (local_cache_ != nullptr) local_cache_->Put(key, value);
        OnOperation();
        return value;
      }
      if (LameduckBypass(sid, outcome)) {
        // Quarantined shard: serve from storage without contacting it.
        // Unlike the breaker path the shard is alive and stays warm —
        // no unavailability marking, no fencing, probes keep flowing.
        ++stats_.storage_reads;
        outcome->storage_accessed = true;
        Value value = cluster_->storage().Get(key);
        if (local_cache_ != nullptr) local_cache_->Put(key, value);
        OnOperation();
        return value;
      }
      if (!TryDeliver(sid, now, outcome)) {
        // Failover: retries exhausted (or crash diagnosed) — graceful
        // degradation to the authoritative layer. `Get` never fails.
        ++stats_.failovers;
        ++stats_.storage_reads;
        outcome->storage_accessed = true;
        Value value = cluster_->storage().Get(key);
        if (local_cache_ != nullptr) local_cache_->Put(key, value);
        OnOperation();
        return value;
      }
      // Delivered: enforce the recovery rule before reading content the
      // shard may have carried across a crash.
      MaybeRecoverShard(sid, now);
      MaybeHedge(key, sid, now, last_delivery_slow_factor_, outcome);
    }
    ++epoch_lookups_[sid];
    ++cumulative_lookups_[sid];
    ++stats_.backend_lookups;
    outcome->backend_contacted = true;
    outcome->server = sid;
    router_->OnLookup(key, sid);
    std::optional<Value> value = cluster_->server(sid).Get(key);
    if (value.has_value()) {
      ++stats_.backend_hits;
    } else {
      // Cold path: authoritative read, then fill the shard (Section 2).
      ++stats_.storage_reads;
      outcome->storage_accessed = true;
      value = cluster_->storage().Get(key);
      cluster_->server(sid).Set(key, *value);
    }
    if (local_cache_ != nullptr) {
      local_cache_->Put(key, *value);
    }
    OnOperation();
    return *value;
  }
  // Ring path: route with the cached snapshot, stamp the request with its
  // epoch, and on a fenced rejection refresh-and-reroute (bounded).
  Value value = RingFetch(key, now, outcome);
  if (local_cache_ != nullptr) local_cache_->Put(key, value);
  OnOperation();
  return value;
}

cache::Value FrontendClient::RingFetch(Key key, uint64_t now,
                                       OpOutcome* outcome) {
  uint32_t refreshes = 0;
  for (;;) {
    const ServerId sid = snapshot_->ring.ServerFor(key);
    const uint64_t epoch = snapshot_->epoch;
    if (fault_injector_ != nullptr) {
      if (BreakerBlocks(sid, now)) {
        // Degraded mode: the breaker is open, so the shard is skipped
        // entirely and storage serves the read. The shard is not filled
        // (we never confirmed it is reachable).
        ++stats_.degraded_ops;
        ++failed_ops_per_server_[sid];
        epoch_shard_unavailable_[sid] = 1;
        ++stats_.storage_reads;
        outcome->degraded = true;
        outcome->storage_accessed = true;
        return cluster_->storage().Get(key);
      }
      if (LameduckBypass(sid, outcome)) {
        // Quarantined shard: storage serves the read; the shard is alive
        // and unfenced, probes keep flowing (see GetImpl).
        ++stats_.storage_reads;
        outcome->storage_accessed = true;
        return cluster_->storage().Get(key);
      }
      if (!TryDeliver(sid, now, outcome)) {
        ++stats_.failovers;
        ++stats_.storage_reads;
        outcome->storage_accessed = true;
        return cluster_->storage().Get(key);
      }
      MaybeRecoverShard(sid, now);
      MaybeHedge(key, sid, now, last_delivery_slow_factor_, outcome);
    }
    // The snapshot's shard pointer: no topology lock on the serving path.
    BackendServer& shard = *snapshot_->servers[sid];
    BackendServer::FencedValue reply = shard.Get(key, epoch);
    if (reply.status == BackendServer::ShardStatus::kEpochMismatch) {
      NoteEpochMismatch(sid, epoch, reply.shard_epoch, now, outcome);
      if (refreshes >= failure_policy_.max_route_refreshes) {
        // Refresh budget exhausted (churn storm): storage is
        // authoritative, so fall back rather than chase the ring.
        ++stats_.failovers;
        ++stats_.storage_reads;
        outcome->storage_accessed = true;
        return cluster_->storage().Get(key);
      }
      ++refreshes;
      ++stats_.route_refreshes;
      RefreshRouteView();
      continue;
    }
    ++epoch_lookups_[sid];
    ++cumulative_lookups_[sid];
    ++stats_.backend_lookups;
    outcome->backend_contacted = true;
    outcome->server = sid;
    std::optional<Value> value = reply.value;
    if (value.has_value()) {
      ++stats_.backend_hits;
    } else {
      // Cold path: authoritative read, then fill the shard (Section 2).
      // The fill is fenced too: if the topology moved since the lookup,
      // skipping the fill beats stranding a copy on a non-owner.
      ++stats_.storage_reads;
      outcome->storage_accessed = true;
      value = cluster_->storage().Get(key);
      shard.Set(key, *value, epoch);
    }
    return *value;
  }
}

std::vector<cache::Value> FrontendClient::MultiGet(std::span<const Key> keys) {
  std::vector<Value> out(keys.size());
  if (keys.empty()) return out;
  if (router_ != nullptr) {
    // Custom routers own replica placement; the batch transport is a
    // ring-path optimization, so router clients fall back to per-key Gets.
    for (size_t i = 0; i < keys.size(); ++i) out[i] = Get(keys[i]);
    return out;
  }
  // Logically the batch is one op per key, so the clock advances by the
  // batch size. Batch-level events (the BatchLookup trace record) are
  // stamped at the batch-entry clock; each shard request the batch issues
  // — a sub-batch, or a deferred-duplicate re-fetch — consumes exactly ONE
  // tick from the batch's clock interval for its fault draw, regardless of
  // how many keys it carries (see DESIGN.md "Batched reads"). Ticks are
  // clamped to the interval so a request can never draw against a clock
  // the batch does not own.
  const uint64_t now = op_clock_;
  op_clock_ += keys.size();
  stats_.reads += keys.size();
  const uint64_t last_tick = now + (keys.size() - 1);
  uint64_t fault_tick = 0;
  auto next_draw_clock = [&]() {
    const uint64_t t = now + fault_tick;
    ++fault_tick;
    return t < last_tick ? t : last_tick;
  };
  OpOutcome outcome;  // transport bookkeeping sink (TryDeliver/mismatch)

  // 1. Local probes, all keys, in key order. A duplicate of a key that
  // already missed in this batch is *deferred*, not probed: sequentially
  // its probe would run after the first occurrence's fill, so it re-probes
  // in phase 3 once that fill has been applied. (Cacheless clients skip
  // the dedup — each duplicate costs a backend lookup sequentially too,
  // and the shard processes a sub-batch in key order, so sending both
  // occurrences reproduces that exactly.)
  std::vector<BatchPending>& pending = batch_pending_;
  std::vector<uint32_t>& miss_slots = batch_miss_slots_;
  std::vector<uint32_t>& deferred_slots = batch_deferred_slots_;
  pending.clear();
  miss_slots.clear();
  deferred_slots.clear();
  batch_missed_.clear();  // key -> first miss slot
  uint32_t local_hits = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (local_cache_ != nullptr) {
      if (batch_missed_.contains(keys[i])) {
        deferred_slots.push_back(static_cast<uint32_t>(i));
        continue;
      }
      std::optional<Value> local = local_cache_->Get(keys[i]);
      if (local.has_value()) {
        out[i] = *local;
        ++local_hits;
        continue;
      }
      batch_missed_.find_or_insert(keys[i]).first->second =
          static_cast<uint32_t>(i);
    }
    pending.push_back(BatchPending{keys[i], static_cast<uint32_t>(i), 0});
    miss_slots.push_back(static_cast<uint32_t>(i));
  }
  stats_.local_hits += local_hits;

  // 2. Fan out the misses: sub-batches by owning shard, ascending
  // ServerId, key order preserved within each shard.
  uint32_t sub_batches = 0;
  uint32_t backend_keys = 0;
  uint32_t refreshes = 0;
  std::vector<Key>& group_keys = batch_group_keys_;
  std::vector<Value>& group_values = batch_group_values_;
  std::vector<BatchPending>& rejected = batch_rejected_;
  while (!pending.empty()) {
    const uint64_t epoch = snapshot_->epoch;
    for (BatchPending& p : pending) p.sid = snapshot_->ring.ServerFor(p.key);
    std::stable_sort(pending.begin(), pending.end(),
                     [](const BatchPending& a, const BatchPending& b) {
                       return a.sid < b.sid;
                     });
    rejected.clear();
    size_t i = 0;
    while (i < pending.size()) {
      size_t j = i;
      while (j < pending.size() && pending[j].sid == pending[i].sid) ++j;
      const ServerId sid = pending[i].sid;
      const size_t count = j - i;
      ++sub_batches;
      // One request on the wire = one op-clock tick, however many keys it
      // carries. The breaker check, the fault draw, and recovery all see
      // the same per-request clock.
      const uint64_t draw_clock = next_draw_clock();
      bool to_storage = false;
      if (fault_injector_ != nullptr) {
        if (BreakerBlocks(sid, draw_clock)) {
          // Degraded mode: the whole sub-batch skips the shard; every
          // read it carried is served from storage.
          stats_.degraded_ops += count;
          ++failed_ops_per_server_[sid];
          epoch_shard_unavailable_[sid] = 1;
          to_storage = true;
        } else if (LameduckBypass(sid, &outcome)) {
          // The whole sub-batch bypasses the quarantined shard (it is one
          // request on the wire); count every read it carried.
          stats_.lameduck_bypasses += count - 1;
          to_storage = true;
        } else if (!TryDeliver(sid, draw_clock, &outcome)) {
          // One fault draw per sub-batch: the batch is one request on the
          // wire, so it fails (and retries) as a unit.
          stats_.failovers += count;
          to_storage = true;
        } else {
          MaybeRecoverShard(sid, draw_clock);
        }
      }
      if (to_storage) {
        for (size_t k = i; k < j; ++k) {
          ++stats_.storage_reads;
          out[pending[k].slot] = cluster_->storage().Get(pending[k].key);
        }
        i = j;
        continue;
      }
      group_keys.clear();
      for (size_t k = i; k < j; ++k) group_keys.push_back(pending[k].key);
      group_values.resize(count);
      BackendServer::FencedBatch ack = snapshot_->servers[sid]->MultiGet(
          std::span<const Key>(group_keys.data(), group_keys.size()), epoch,
          [&](Key key) {
            // Authoritative fetch-on-miss; the shard installs the value
            // like a client fill.
            ++stats_.storage_reads;
            return cluster_->storage().Get(key);
          },
          group_values.data());
      if (ack.status == BackendServer::ShardStatus::kEpochMismatch) {
        NoteEpochMismatch(sid, epoch, ack.shard_epoch, now, &outcome);
        for (size_t k = i; k < j; ++k) rejected.push_back(pending[k]);
        i = j;
        continue;
      }
      epoch_lookups_[sid] += count;
      cumulative_lookups_[sid] += count;
      stats_.backend_lookups += count;
      stats_.backend_hits += ack.hits;
      backend_keys += static_cast<uint32_t>(count);
      if (fault_injector_ != nullptr) {
        // One hedge decision per sub-batch — it was one request on the
        // wire, so it is one candidate for reissue.
        MaybeHedge(pending[i].key, sid, draw_clock,
                   last_delivery_slow_factor_, &outcome);
      }
      for (size_t k = i; k < j; ++k) {
        out[pending[k].slot] = group_values[k - i];
      }
      i = j;
    }
    if (rejected.empty()) break;
    if (refreshes >= failure_policy_.max_route_refreshes) {
      // Refresh budget exhausted (churn storm): storage is authoritative,
      // so the still-rejected keys fail over rather than chase the ring.
      for (const BatchPending& p : rejected) {
        ++stats_.failovers;
        ++stats_.storage_reads;
        out[p.slot] = cluster_->storage().Get(p.key);
      }
      break;
    }
    ++refreshes;
    ++stats_.route_refreshes;
    RefreshRouteView();
    // Regroup in key order so the retry fan-out is deterministic too.
    std::sort(rejected.begin(), rejected.end(),
              [](const BatchPending& a, const BatchPending& b) {
                return a.slot < b.slot;
              });
    pending.swap(rejected);
  }

  // 3. Offer every fetched value to the local cache — the same fills N
  // sequential Gets would have made, just after the fan-out. Deferred
  // duplicate slots interleave in key order: each re-probes the cache
  // exactly where its sequential Get would have (after the first
  // occurrence's fill, before later fills), and on a re-probe miss — the
  // fill was declined or already evicted — pays the same per-key backend
  // fetch the sequential Get would pay.
  if (local_cache_ != nullptr) {
    size_t mi = 0;
    size_t di = 0;
    while (mi < miss_slots.size() || di < deferred_slots.size()) {
      if (di >= deferred_slots.size() ||
          (mi < miss_slots.size() && miss_slots[mi] < deferred_slots[di])) {
        const uint32_t slot = miss_slots[mi++];
        local_cache_->Put(keys[slot], out[slot]);
      } else {
        const uint32_t slot = deferred_slots[di++];
        std::optional<Value> local = local_cache_->Get(keys[slot]);
        if (local.has_value()) {
          out[slot] = *local;
          ++stats_.local_hits;
          ++local_hits;
        } else {
          // A deferred re-fetch is its own request on the wire: it draws
          // at the next tick, like a sub-batch.
          out[slot] = RingFetch(keys[slot], next_draw_clock(), &outcome);
          local_cache_->Put(keys[slot], out[slot]);
          ++backend_keys;
        }
      }
    }
  }
  if (tracer_ != nullptr) {
    tracer_->Record(now, metrics::BatchLookupPayload{
                             static_cast<uint32_t>(keys.size()), local_hits,
                             sub_batches, backend_keys});
  }
  for (size_t i = 0; i < keys.size(); ++i) OnOperation();
  return out;
}

void FrontendClient::SetImpl(Key key, Value value, OpOutcome* outcome) {
  const uint64_t now = op_clock_++;
  ++stats_.updates;
  cluster_->storage().Set(key, value);
  outcome->storage_accessed = true;
  std::optional<Value> shard_value =
      write_policy_ == WritePolicy::kWriteThrough
          ? std::optional<Value>(value)
          : std::nullopt;
  if (write_policy_ == WritePolicy::kInvalidate) {
    // Memcached client-driven protocol (Section 2): invalidate the local
    // copy and delete the shard copies.
    if (local_cache_ != nullptr) {
      local_cache_->Invalidate(key);
    }
  } else {
    // Write-through: refresh copies in place. The local cache still
    // records the update access for the dual-cost model when it is a
    // CotCache (Invalidate + Put keeps the hotness accounting and the
    // fresh value; plain policies just overwrite).
    if (local_cache_ != nullptr) {
      if (cot_cache_ != nullptr) {
        local_cache_->Invalidate(key);
        local_cache_->Put(key, value);
      } else if (local_cache_->Contains(key)) {
        local_cache_->Put(key, value);
      }
    }
  }
  if (router_ != nullptr) {
    // The update must reach every replica of the key (the router owns
    // replica placement, so targets come from it, unfenced).
    for (ServerId sid : router_->AllReplicas(key, route_view())) {
      EnsureServerCapacity(sid);
      DeliverInvalidation(sid, key, shard_value, now, outcome);
    }
  } else {
    DeliverInvalidationFenced(key, shard_value, now, outcome);
  }
  OnOperation();
}

cache::Value FrontendClient::Get(Key key) {
  OpOutcome outcome;
  return GetImpl(key, &outcome);
}

void FrontendClient::Set(Key key, Value value) {
  OpOutcome outcome;
  SetImpl(key, value, &outcome);
}

void FrontendClient::Apply(const workload::Op& op) {
  ApplyDetailed(op);
}

FrontendClient::OpOutcome FrontendClient::ApplyDetailed(
    const workload::Op& op) {
  OpOutcome outcome;
  if (op.type == workload::OpType::kRead) {
    GetImpl(op.key, &outcome);
  } else {
    SetImpl(op.key, ++update_version_, &outcome);
  }
  return outcome;
}

double FrontendClient::CurrentEpochImbalance() const {
  if (epoch_lookups_.empty()) return 1.0;
  // A shard that failed this epoch (or left the ring) contributes an
  // absence of signal, not a zero load — excluding it keeps the max/min
  // ratio finite and meaningful when traffic failed over.
  std::vector<uint64_t> available;
  available.reserve(epoch_lookups_.size());
  for (size_t i = 0; i < epoch_lookups_.size(); ++i) {
    if (i < epoch_shard_unavailable_.size() && epoch_shard_unavailable_[i]) {
      continue;
    }
    if (!cluster_->IsActive(static_cast<ServerId>(i))) continue;
    available.push_back(epoch_lookups_[i]);
  }
  if (available.size() < 2) return 1.0;
  return metrics::LoadImbalance(available);
}

void FrontendClient::CloseEpochAvailability() {
  uint64_t unavailable = 0;
  for (uint8_t flag : epoch_shard_unavailable_) unavailable += flag;
  stats_.unavailable_shard_epochs += unavailable;
  std::fill(epoch_shard_unavailable_.begin(), epoch_shard_unavailable_.end(),
            static_cast<uint8_t>(0));
}

void FrontendClient::OnOperation() {
  if (resizer_ == nullptr) return;
  resizer_->OnAccess();
  if (!resizer_->EpochComplete()) return;
  // Hold the epoch open until it contains enough backend lookups for the
  // max/min imbalance ratio to be statistically meaningful — with a good
  // front-end cache, E accesses may translate to very few lookups. Faults
  // can starve lookups indefinitely (everything failing over), so a
  // stalled epoch is eventually closed and handled as no-signal.
  constexpr uint64_t kEpochStallFactor = 8;
  uint64_t lookups = 0;
  for (uint64_t c : epoch_lookups_) lookups += c;
  bool stalled = resizer_->accesses_in_epoch() >=
                 kEpochStallFactor * resizer_->epoch_size();
  if (lookups < resizer_->config().min_epoch_backend_lookups && !stalled) {
    return;
  }
  // Shards that failed this epoch or left the ring are masked out of the
  // imbalance measurement (the resizer treats an epoch with fewer than
  // two usable shards as no-signal).
  std::vector<uint8_t> mask = epoch_shard_unavailable_;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (!cluster_->IsActive(static_cast<ServerId>(i))) mask[i] = 1;
  }
  if (tracer_ != nullptr) {
    // The boundary precedes its decision in the stream: same epoch index,
    // recorded before EndEpoch appends the kResizerDecision event.
    tracer_->Record(op_clock_, metrics::EpochBoundaryPayload{
                                   resizer_->epochs_completed(),
                                   resizer_->accesses_in_epoch(), lookups});
  }
  resizer_->EndEpoch(epoch_lookups_, &mask);
  CloseEpochAvailability();
  std::fill(epoch_lookups_.begin(), epoch_lookups_.end(), 0);
}

}  // namespace cot::cluster
