#include "cluster/health_monitor.h"

#include <algorithm>
#include <cmath>

namespace cot::cluster {

P2Quantile::P2Quantile(double p) : p_(p) {
  np_[0] = 1;
  np_[1] = 1 + 2 * p;
  np_[2] = 1 + 4 * p;
  np_[3] = 3 + 2 * p;
  np_[4] = 5;
  dn_[0] = 0;
  dn_[1] = p / 2;
  dn_[2] = p;
  dn_[3] = (1 + p) / 2;
  dn_[4] = 1;
}

void P2Quantile::Observe(double x) {
  if (count_ < 5) {
    q_[count_++] = x;
    if (count_ == 5) std::sort(q_, q_ + 5);
    return;
  }
  // Find the cell k containing x and clamp the extreme markers.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x < q_[1]) {
    k = 0;
  } else if (x < q_[2]) {
    k = 1;
  } else if (x < q_[3]) {
    k = 2;
  } else if (x <= q_[4]) {
    k = 3;
  } else {
    q_[4] = x;
    k = 3;
  }
  for (int i = k + 1; i < 5; ++i) n_[i] += 1;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];
  ++count_;
  // Adjust the three interior markers toward their desired positions,
  // parabolic (P-squared) when the neighbour gap allows, linear otherwise.
  for (int i = 1; i <= 3; ++i) {
    double d = np_[i] - n_[i];
    if ((d >= 1 && n_[i + 1] - n_[i] > 1) ||
        (d <= -1 && n_[i - 1] - n_[i] < -1)) {
      double sign = d >= 0 ? 1.0 : -1.0;
      double qp =
          q_[i] + sign / (n_[i + 1] - n_[i - 1]) *
                      ((n_[i] - n_[i - 1] + sign) * (q_[i + 1] - q_[i]) /
                           (n_[i + 1] - n_[i]) +
                       (n_[i + 1] - n_[i] - sign) * (q_[i] - q_[i - 1]) /
                           (n_[i] - n_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {
        // Parabolic prediction left the bracket: fall back to linear.
        int j = i + static_cast<int>(sign);
        q_[i] += sign * (q_[j] - q_[i]) / (n_[j] - n_[i]);
      }
      n_[i] += sign;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ >= 5) return q_[2];
  // Exact small-sample quantile over the (unsorted until 5) prefix.
  double sorted[5];
  std::copy(q_, q_ + count_, sorted);
  std::sort(sorted, sorted + count_);
  uint64_t rank = static_cast<uint64_t>(std::ceil(p_ * count_));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  return sorted[rank - 1];
}

HealthMonitor::HealthMonitor(uint32_t num_shards, const HealthConfig& config)
    : config_(config), cluster_p50_(0.5) {
  shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards_.emplace_back(config_.quantile);
  }
}

HealthMonitor::ShardHealth& HealthMonitor::Ensure(ServerId shard) {
  while (shards_.size() <= shard) {
    shards_.emplace_back(config_.quantile);
  }
  return shards_[shard];
}

HealthMonitor::Transition HealthMonitor::Observe(ServerId shard,
                                                 double latency_us,
                                                 double healthy_reference_us) {
  ShardHealth& h = Ensure(shard);
  h.p99.Observe(latency_us);
  cluster_p50_.Observe(latency_us);
  ++h.observations;
  double sample = 1.0;
  if (latency_us > 0.0 && healthy_reference_us > 0.0) {
    sample = std::min(1.0, healthy_reference_us / latency_us);
  }
  h.score += config_.ewma_alpha * (sample - h.score);
  if (!h.lameduck && h.observations >= config_.min_observations &&
      h.score < config_.lameduck_enter) {
    h.lameduck = true;
    h.reads_since_probe = 0;
    ++lameduck_count_;
    return Transition::kEnterLameduck;
  }
  if (h.lameduck && h.score > config_.lameduck_exit) {
    h.lameduck = false;
    --lameduck_count_;
    return Transition::kExitLameduck;
  }
  return Transition::kNone;
}

double HealthMonitor::Score(ServerId shard) const {
  if (shard >= shards_.size()) return 1.0;
  return shards_[shard].score;
}

double HealthMonitor::QuantileUs(ServerId shard) const {
  if (shard >= shards_.size()) return 0.0;
  return shards_[shard].p99.Value();
}

double HealthMonitor::DeadlineUs(ServerId shard) const {
  double p99 = QuantileUs(shard);
  return std::max(config_.deadline_floor_us, config_.deadline_k * p99);
}

double HealthMonitor::HedgeDelayUs() const {
  return std::max(config_.hedge_floor_us,
                  config_.hedge_k * cluster_p50_.Value());
}

bool HealthMonitor::IsLameduck(ServerId shard) const {
  if (shard >= shards_.size()) return false;
  return shards_[shard].lameduck;
}

bool HealthMonitor::NextReadProbes(ServerId shard) {
  ShardHealth& h = Ensure(shard);
  if (!h.lameduck) return true;
  if (config_.probe_interval == 0) return false;
  ++h.reads_since_probe;
  if (h.reads_since_probe >= config_.probe_interval) {
    h.reads_since_probe = 0;
    return true;
  }
  return false;
}

uint64_t HealthMonitor::observations(ServerId shard) const {
  if (shard >= shards_.size()) return 0;
  return shards_[shard].observations;
}

}  // namespace cot::cluster
