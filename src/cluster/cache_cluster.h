#ifndef COT_CLUSTER_CACHE_CLUSTER_H_
#define COT_CLUSTER_CACHE_CLUSTER_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "cluster/backend_server.h"
#include "cluster/consistent_hash_ring.h"
#include "cluster/storage_layer.h"

namespace cot::cluster {

/// The shared back-end of the paper's architecture (Figure 1): a set of
/// caching shards behind a consistent-hash ring, on top of persistent
/// storage. Front-end clients (`FrontendClient`) share one `CacheCluster`.
///
/// Thread safety: shard content and counters are protected inside
/// `BackendServer`; the *topology* (ring, shard vector, active flags,
/// generations) is guarded by a reader-writer lock so membership changes
/// (`AddServer`/`RemoveServer`/`RejoinServer`) are safe against in-flight
/// client traffic. Clients never touch that lock on the serving path: they
/// route and dereference shards through an immutable `RingSnapshot` read
/// lock-free from an atomic publication slot; the lock is reserved for
/// topology mutations (exclusive) and cold administrative reads (shared).
/// Shard objects live behind `unique_ptr` and are never destroyed, so a
/// `BackendServer*` captured in any snapshot stays valid across concurrent
/// `AddServer` vector growth. The bare `ring()` accessor remains for
/// serial phases (preload, tests) and must not race a topology change —
/// enforced by a debug assertion.
///
/// Routing epochs: every topology mutation advances `routing epoch` and,
/// *before* touching the ring, stamps every shard with the new epoch. A
/// client routes with an immutable `RingSnapshot` (lock-free reads of a
/// shared_ptr it refreshes on demand); its requests carry the snapshot's
/// epoch, and a shard rejects any request whose epoch disagrees with its
/// own (`BackendServer::ShardStatus::kEpochMismatch`). Because the stamp
/// happens under each shard's content mutex before the ring mutates, a
/// stale-view request serialized after the change can neither read a
/// shard that lost the key's range nor strand a fill on it. Snapshots are
/// published only after migration completes, so a fresh-epoch view never
/// exists before the new owners hold their keys.
class CacheCluster {
 public:
  /// An immutable, shareable view of the routing state: the epoch, the
  /// ring as of that epoch, and direct shard pointers. Clients cache one
  /// and route against it without taking the topology lock per operation —
  /// including the shard dereference itself: shards are never destroyed
  /// (only deactivated), so the pointers stay valid for the cluster's
  /// lifetime, and any `ServerId` produced by `ring` indexes `servers`.
  struct RingSnapshot {
    uint64_t epoch = 0;
    ConsistentHashRing ring;
    /// Every shard ever created (active or not), indexed by ServerId.
    std::vector<BackendServer*> servers;
  };

  /// Handoff/identity counters (see `topology_stats()`).
  struct TopologyStats {
    /// Current routing epoch (starts at 1; +1 per mutation).
    uint64_t routing_epoch = 1;
    /// Topology mutations applied (add + remove + rejoin).
    uint64_t topology_changes = 0;
    /// Keys moved to their new owner by live migration, cumulative.
    uint64_t keys_migrated = 0;
    /// Fenced requests rejected with kEpochMismatch, summed over shards.
    uint64_t epoch_rejects = 0;
  };

  /// Creates `num_servers` shards over a `key_space_size` key space.
  ///
  /// The virtual-node default is deliberately high (16384 per server): the
  /// ring's *ownership* spread lower-bounds every achievable load-imbalance,
  /// and a front-end chasing I_t = 1.1 needs that floor well below the
  /// target (spread scales as 1/sqrt(virtual_nodes)).
  CacheCluster(uint32_t num_servers, uint64_t key_space_size,
               uint32_t virtual_nodes = 16384);

  /// Shard accessors. The returned reference is stable across topology
  /// changes (shards are never destroyed, only deactivated).
  BackendServer& server(ServerId id);
  const BackendServer& server(ServerId id) const;
  uint32_t server_count() const;
  /// Shards currently on the ring.
  uint32_t active_server_count() const;

  /// The shard currently owning `key` on the ring (topology-safe routing).
  ServerId OwnerOf(uint64_t key) const;

  /// The current routing view, read lock-free from the atomic publication
  /// slot (wait-free on the reader side; never blocks, even while a
  /// topology mutation is in flight — a concurrent reader simply gets the
  /// pre-mutation view, whose requests the epoch fence will reject).
  std::shared_ptr<const RingSnapshot> ring_snapshot() const;

  /// The current routing view, synchronized with topology mutations: blocks
  /// while one is in flight, which is exactly when a client refreshing
  /// after a fenced rejection must wait for the new owners to be warm.
  /// Cold path only (refresh-after-mismatch, construction).
  std::shared_ptr<const RingSnapshot> ring_snapshot_synced() const;

  /// Current routing epoch.
  uint64_t routing_epoch() const;

  /// Handoff counters (epoch, changes, keys migrated, fenced rejects).
  TopologyStats topology_stats() const;

  /// The key-to-server map. Serial use only — see the class comment. The
  /// debug assertion enforces that no topology mutation is in flight.
  const ConsistentHashRing& ring() const {
    assert(!mutation_in_flight_.load(std::memory_order_relaxed) &&
           "CacheCluster::ring() raced a topology mutation");
    return ring_;
  }

  /// The persistent layer.
  StorageLayer& storage() { return storage_; }
  const StorageLayer& storage() const { return storage_; }

  /// Cumulative lookup load per shard, as counted at the shards
  /// themselves (aggregates all clients).
  std::vector<uint64_t> PerServerLookups() const;

  /// Zeroes every shard's load counters.
  void ResetServerCounters();

  /// Adds one caching shard to the tier (the elasticity consistent
  /// hashing exists for, Section 2): ~1/(n+1) of the key space moves to
  /// the new shard. The moved range is *migrated live*: each key the
  /// newcomer now owns is re-read from authoritative storage and adopted
  /// warm, so post-change traffic sees backend hits instead of a cold-miss
  /// storm, and no stale copy can ride along (storage is authoritative by
  /// definition). Old owners are flushed of the range. Returns the new
  /// server's id.
  ServerId AddServer();

  /// Removes shard `id` from the ring. Its content *drains* to the ring
  /// successors (same storage-backed migration as AddServer) — the warm
  /// handoff that makes scale-down routine rather than a hit-rate cliff.
  /// Ids of other servers are unchanged and never reused. Fails if `id`
  /// is unknown, already removed, or the last active server.
  Status RemoveServer(ServerId id);

  /// Returns a previously removed shard to the ring under its old id. It
  /// reclaims its ring ranges, receiving the resident keys via the same
  /// warm migration. Fails if `id` is unknown, currently active, or a
  /// cache node (the upper tier never joins the shard ring).
  Status RejoinServer(ServerId id);

  /// Adds one *upper-tier cache node* (the DistCache-style two-layer
  /// topology): a `BackendServer` that never joins the consistent-hash
  /// ring, owns no key range, and is populated purely by client fills
  /// routed to it (`DistCacheRouter`). `max_items > 0` bounds it as an
  /// LRU cache of that many items; 0 = unbounded. Cache nodes are not
  /// "active" shards: they are excluded from live migration (their
  /// residents are intentionally misowned copies), from invariant
  /// ownership checks, and from ring-based imbalance accounting. Returns
  /// the node's id — drawn from the same ServerId space as shards, so
  /// clients address both tiers uniformly.
  ServerId AddCacheNode(size_t max_items = 0);

  /// True if `id` was created by `AddCacheNode`.
  bool IsCacheNode(ServerId id) const;

  /// Ids of every cache node, in creation order.
  std::vector<ServerId> CacheNodeIds() const;

  /// True if `id` is still serving (present on the ring).
  bool IsActive(ServerId id) const;

  /// Cold-restart generation of shard `id` (0 = never restarted). Part of
  /// the failure-recovery protocol: a shard that was unreachable has lost
  /// invalidation deletes, so it must restart cold before serving again.
  uint64_t server_generation(ServerId id) const;

  /// Bumps shard `id` to generation `target` (dropping its content) if it
  /// is behind. Idempotent: concurrent clients observing the same
  /// recovery clear the shard exactly once. Returns true if it cleared.
  bool AdvanceServerGeneration(ServerId id, uint64_t target);

  /// Unconditional fenced cold restart of shard `id` (content dropped,
  /// generation bumped). The escalation path for an invalidation delete
  /// that could not be delivered to a reachable shard: dropping the
  /// shard's content is the only way to honor the no-stale-read contract
  /// without a server-side invalidation log. Returns the new generation.
  uint64_t ForceColdRestart(ServerId id);

 private:
  /// Fences, migrates, and publishes around a ring mutation `mutate`.
  /// Caller holds `topology_mu_` exclusively.
  template <typename Mutate>
  void ApplyTopologyChangeLocked(Mutate&& mutate);

  /// Builds an immutable snapshot of the current routing state. Caller
  /// holds `topology_mu_` (shared suffices; exclusive during mutations).
  std::shared_ptr<const RingSnapshot> MakeSnapshotLocked() const;

  /// Moves every resident key to its current ring owner: misowned keys are
  /// extracted from their old shard, re-read from storage, and adopted by
  /// the owner. O(total items). Caller holds `topology_mu_` exclusively.
  void MigrateMisownedKeysLocked();

  // Guards ring_, servers_ (the vector, not shard content), active_,
  // routing_epoch_, snapshot_.
  mutable std::shared_mutex topology_mu_;
  ConsistentHashRing ring_;
  // Shards hold a mutex and atomics (immovable), so they live behind
  // unique_ptr to keep the vector growable on AddServer.
  std::vector<std::unique_ptr<BackendServer>> servers_;
  std::vector<bool> active_;
  // Parallel to servers_: true for upper-tier cache nodes (never on the
  // ring, exempt from migration and ownership invariants).
  std::vector<bool> is_cache_node_;
  uint64_t routing_epoch_ = 1;
  uint64_t topology_changes_ = 0;
  uint64_t keys_migrated_ = 0;
  // Atomic publication slot: writers replace it under topology_mu_
  // (exclusive) with release ordering after migration completes; readers
  // load it lock-free with acquire ordering (ring_snapshot()).
  std::atomic<std::shared_ptr<const RingSnapshot>> snapshot_;
  // True only inside a topology mutation; backs the ring() debug assert.
  std::atomic<bool> mutation_in_flight_{false};
  StorageLayer storage_;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_CACHE_CLUSTER_H_
