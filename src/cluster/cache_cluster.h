#ifndef COT_CLUSTER_CACHE_CLUSTER_H_
#define COT_CLUSTER_CACHE_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/backend_server.h"
#include "cluster/consistent_hash_ring.h"
#include "cluster/storage_layer.h"

namespace cot::cluster {

/// The shared back-end of the paper's architecture (Figure 1): a set of
/// caching shards behind a consistent-hash ring, on top of persistent
/// storage. Front-end clients (`FrontendClient`) share one `CacheCluster`.
class CacheCluster {
 public:
  /// Creates `num_servers` shards over a `key_space_size` key space.
  ///
  /// The virtual-node default is deliberately high (16384 per server): the
  /// ring's *ownership* spread lower-bounds every achievable load-imbalance,
  /// and a front-end chasing I_t = 1.1 needs that floor well below the
  /// target (spread scales as 1/sqrt(virtual_nodes)).
  CacheCluster(uint32_t num_servers, uint64_t key_space_size,
               uint32_t virtual_nodes = 16384);

  /// Shard accessors.
  BackendServer& server(ServerId id) { return *servers_[id]; }
  const BackendServer& server(ServerId id) const { return *servers_[id]; }
  uint32_t server_count() const {
    return static_cast<uint32_t>(servers_.size());
  }

  /// The key-to-server map.
  const ConsistentHashRing& ring() const { return ring_; }

  /// The persistent layer.
  StorageLayer& storage() { return storage_; }
  const StorageLayer& storage() const { return storage_; }

  /// Cumulative lookup load per shard, as counted at the shards
  /// themselves (aggregates all clients).
  std::vector<uint64_t> PerServerLookups() const;

  /// Zeroes every shard's load counters.
  void ResetServerCounters();

  /// Adds one caching shard to the tier (the elasticity consistent
  /// hashing exists for, Section 2): ~1/(n+1) of the key space moves to
  /// the new shard. Every existing shard is flushed of the keys it no
  /// longer owns, so no stale copy can resurface after later topology
  /// changes. Returns the new server's id.
  ServerId AddServer();

  /// Removes shard `id` from the ring (its content becomes unreachable
  /// and is dropped); its key range redistributes to ring successors,
  /// which cold-miss to storage. Ids of other servers are unchanged.
  /// Fails if `id` is unknown, already removed, or the last server.
  Status RemoveServer(ServerId id);

  /// True if `id` is still serving (present on the ring).
  bool IsActive(ServerId id) const;

 private:
  /// Drops from every shard the keys it no longer owns. O(total items).
  void FlushMisownedKeys();

  // Shards hold a mutex and atomics (immovable), so they live behind
  // unique_ptr to keep the vector growable on AddServer.
  ConsistentHashRing ring_;
  std::vector<std::unique_ptr<BackendServer>> servers_;
  std::vector<bool> active_;
  StorageLayer storage_;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_CACHE_CLUSTER_H_
