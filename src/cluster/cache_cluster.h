#ifndef COT_CLUSTER_CACHE_CLUSTER_H_
#define COT_CLUSTER_CACHE_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "cluster/backend_server.h"
#include "cluster/consistent_hash_ring.h"
#include "cluster/storage_layer.h"

namespace cot::cluster {

/// The shared back-end of the paper's architecture (Figure 1): a set of
/// caching shards behind a consistent-hash ring, on top of persistent
/// storage. Front-end clients (`FrontendClient`) share one `CacheCluster`.
///
/// Thread safety: shard content and counters are protected inside
/// `BackendServer`; the *topology* (ring, shard vector, active flags,
/// generations) is guarded by a reader-writer lock so membership changes
/// (`AddServer`/`RemoveServer`) are safe against in-flight client traffic.
/// Clients route and fetch shard references through `OwnerOf`/`server`
/// (shared lock); topology mutations take the lock exclusively. Shard
/// objects live behind `unique_ptr`, so a reference obtained under the
/// shared lock stays valid across concurrent `AddServer` vector growth.
/// The bare `ring()` accessor remains for serial phases (preload, tests)
/// and must not race a topology change.
class CacheCluster {
 public:
  /// Creates `num_servers` shards over a `key_space_size` key space.
  ///
  /// The virtual-node default is deliberately high (16384 per server): the
  /// ring's *ownership* spread lower-bounds every achievable load-imbalance,
  /// and a front-end chasing I_t = 1.1 needs that floor well below the
  /// target (spread scales as 1/sqrt(virtual_nodes)).
  CacheCluster(uint32_t num_servers, uint64_t key_space_size,
               uint32_t virtual_nodes = 16384);

  /// Shard accessors. The returned reference is stable across topology
  /// changes (shards are never destroyed, only deactivated).
  BackendServer& server(ServerId id);
  const BackendServer& server(ServerId id) const;
  uint32_t server_count() const;

  /// The shard currently owning `key` on the ring (topology-safe routing).
  ServerId OwnerOf(uint64_t key) const;

  /// The key-to-server map. Serial use only — see the class comment.
  const ConsistentHashRing& ring() const { return ring_; }

  /// The persistent layer.
  StorageLayer& storage() { return storage_; }
  const StorageLayer& storage() const { return storage_; }

  /// Cumulative lookup load per shard, as counted at the shards
  /// themselves (aggregates all clients).
  std::vector<uint64_t> PerServerLookups() const;

  /// Zeroes every shard's load counters.
  void ResetServerCounters();

  /// Adds one caching shard to the tier (the elasticity consistent
  /// hashing exists for, Section 2): ~1/(n+1) of the key space moves to
  /// the new shard. Every existing shard is flushed of the keys it no
  /// longer owns, so no stale copy can resurface after later topology
  /// changes. Returns the new server's id.
  ServerId AddServer();

  /// Removes shard `id` from the ring (its content becomes unreachable
  /// and is dropped); its key range redistributes to ring successors,
  /// which cold-miss to storage. Ids of other servers are unchanged.
  /// Fails if `id` is unknown, already removed, or the last server.
  Status RemoveServer(ServerId id);

  /// True if `id` is still serving (present on the ring).
  bool IsActive(ServerId id) const;

  /// Cold-restart generation of shard `id` (0 = never restarted). Part of
  /// the failure-recovery protocol: a shard that was unreachable has lost
  /// invalidation deletes, so it must restart cold before serving again.
  uint64_t server_generation(ServerId id) const;

  /// Bumps shard `id` to generation `target` (dropping its content) if it
  /// is behind. Idempotent: concurrent clients observing the same
  /// recovery clear the shard exactly once. Returns true if it cleared.
  bool AdvanceServerGeneration(ServerId id, uint64_t target);

  /// Unconditional fenced cold restart of shard `id` (content dropped,
  /// generation bumped). The escalation path for an invalidation delete
  /// that could not be delivered to a reachable shard: dropping the
  /// shard's content is the only way to honor the no-stale-read contract
  /// without a server-side invalidation log. Returns the new generation.
  uint64_t ForceColdRestart(ServerId id);

 private:
  /// Drops from every shard the keys it no longer owns. O(total items).
  /// Caller holds `topology_mu_` exclusively.
  void FlushMisownedKeys();

  // Guards ring_, servers_ (the vector, not shard content), active_.
  mutable std::shared_mutex topology_mu_;
  ConsistentHashRing ring_;
  // Shards hold a mutex and atomics (immovable), so they live behind
  // unique_ptr to keep the vector growable on AddServer.
  std::vector<std::unique_ptr<BackendServer>> servers_;
  std::vector<bool> active_;
  StorageLayer storage_;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_CACHE_CLUSTER_H_
