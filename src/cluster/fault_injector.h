#ifndef COT_CLUSTER_FAULT_INJECTOR_H_
#define COT_CLUSTER_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/consistent_hash_ring.h"
#include "util/status.h"

namespace cot::cluster {

/// Kinds of shard misbehaviour the injector can schedule.
enum class FaultType {
  /// The shard is unreachable for the whole window: every request fails
  /// and there is no point retrying. Invalidation deletes sent during the
  /// window are lost, which is why recovery must come back cold (see
  /// `FailurePolicy::recover_cold`).
  kCrash,
  /// Each request inside the window fails independently with
  /// `probability` (a flaky NIC / overloaded proxy). Retries re-draw.
  kTransient,
  /// The shard serves correctly but `slow_factor` times slower — priced
  /// by the end-to-end simulator, invisible to logical results.
  kSlow,
  /// Gray failure: the shard is *slow but alive*. Like kSlow it never
  /// fails a request (so circuit breakers built on failure counts never
  /// trip), but the degradation is richer: the sustained `slow_factor`
  /// gets per-attempt multiplicative jitter (`jitter`), only a
  /// deterministic `client_fraction` of clients observe it at all
  /// (asymmetric degradation — a degraded NIC is not equally visible from
  /// every rack), and with `stall_probability` an attempt additionally
  /// stalls by `stall_factor` (compaction pause / GC hiccup). All draws
  /// are stateless hashes of the decision tuple, so gray runs stay
  /// byte-identical at any thread count.
  kGray,
};

std::string_view ToString(FaultType type);

/// One scheduled fault window on one shard. Windows are half-open
/// intervals `[start_op, end_op)` over the *observing client's* logical
/// operation clock (its count of applied operations), not wall time —
/// that is what keeps fault runs byte-identical at any thread count: each
/// client experiences every fault at the same point of its own
/// deterministic stream, regardless of how the OS interleaves threads.
struct FaultEvent {
  ServerId server = 0;
  FaultType type = FaultType::kCrash;
  uint64_t start_op = 0;
  uint64_t end_op = 0;
  /// Per-request failure probability; meaningful for kTransient only.
  double probability = 1.0;
  /// Service-time multiplier (>= 1); meaningful for kSlow and kGray.
  double slow_factor = 1.0;
  /// Per-attempt multiplicative jitter amplitude in [0, 1): a successful
  /// gray attempt is scaled by `slow_factor * (1 + jitter * u)` with
  /// u drawn uniformly from [-1, 1). kGray only.
  double jitter = 0.0;
  /// Fraction of clients (in (0, 1]) that observe this gray window at
  /// all; membership is a stable per-(client, window) hash draw, so the
  /// same clients are degraded for the whole window. kGray only.
  double client_fraction = 1.0;
  /// Probability that an attempt additionally stalls (intermittent
  /// hiccup), multiplying the factor by `stall_factor`. kGray only.
  double stall_probability = 0.0;
  /// Multiplier applied on top of `slow_factor` when a stall fires
  /// (>= 1). kGray only.
  double stall_factor = 1.0;
};

/// A full per-run fault plan: a set of windows plus the seed that drives
/// the per-request transient coin flips. An empty schedule means the
/// classic never-fails cluster.
struct FaultSchedule {
  std::vector<FaultEvent> events;
  /// Seed for transient-failure draws. Decisions are a pure hash of
  /// (seed, client, op clock, server, attempt) — stateless, so they are
  /// thread-safe and identical across runs and thread counts.
  uint64_t seed = 0x5eedf001;

  bool empty() const { return events.empty(); }

  /// Checks every event references a valid shard, has a non-empty window,
  /// and sane probability/slow-factor values.
  Status Validate(uint32_t num_servers) const;
};

/// Deterministic fault oracle shared (read-only) by every client of a run.
///
/// The injector never touches shard state itself: it only answers "does
/// this request, at this point of this client's logical clock, succeed?".
/// The failure-aware `FrontendClient` turns those answers into retries,
/// circuit-breaker trips, failovers, and cold-restart generation bumps.
class FaultInjector {
 public:
  /// What happens to one request attempt.
  struct Decision {
    /// The attempt fails (crash window, or transient draw came up bad).
    bool fail = false;
    /// The failure is a crash: the shard is down for the whole window, so
    /// retrying at the same logical instant cannot help.
    bool crashed = false;
    /// Service-time multiplier for a *successful* attempt (>= 1).
    double slow_factor = 1.0;
    /// An active gray window applied to this attempt (this client is in
    /// the window's observing fraction). Lets callers count gray
    /// exposure separately from plain kSlow windows.
    bool gray = false;
  };

  explicit FaultInjector(FaultSchedule schedule);

  /// Evaluates one request attempt by client `client_id` at its logical
  /// clock `op_clock` against shard `server`. `attempt` is the 0-based
  /// retry index; transient draws differ per attempt so bounded retries
  /// can succeed. Pure function of its arguments and the schedule seed.
  Decision Evaluate(uint32_t client_id, uint64_t op_clock, ServerId server,
                    uint32_t attempt) const;

  /// True if `op_clock` falls inside a crash window of `server`.
  bool InCrashWindow(uint64_t op_clock, ServerId server) const;

  /// Number of crash windows of `server` that have fully ended by
  /// `op_clock` — the generation the shard must have restarted into, as
  /// expected by a client at that point of its logical stream. A client
  /// observing `CrashGeneration > CacheCluster generation` must bump (and
  /// thereby clear) the shard before reading it, or deletes lost during
  /// the window could surface as stale reads.
  uint64_t CrashGeneration(uint64_t op_clock, ServerId server) const;

  const FaultSchedule& schedule() const { return schedule_; }

 private:
  FaultSchedule schedule_;
  /// Events bucketed by shard for the per-request scan.
  std::vector<std::vector<FaultEvent>> by_server_;
};

/// Parses the `cot_run --fault-*` flag syntax into a schedule:
///   crash_spec:      "server:start:end[,server:start:end...]"
///   transient_spec:  "server:start:end:prob[,...]"
///   slow_spec:       "server:start:end:factor[,...]"
/// Empty strings contribute no events. Fails with a descriptive status on
/// malformed entries.
StatusOr<FaultSchedule> ParseFaultSchedule(const std::string& crash_spec,
                                           const std::string& transient_spec,
                                           const std::string& slow_spec,
                                           uint64_t seed);

/// Full parser including the `cot_run --gray-*` gray-failure modes, each
/// producing kGray events:
///   gray_slow_spec:  "server:start:end:factor:jitter[,...]"
///   gray_asym_spec:  "server:start:end:factor:fraction[,...]"
///   gray_stall_spec: "server:start:end:prob:factor[,...]"
/// (a stall entry keeps the sustained factor at 1 — only the intermittent
/// hiccup degrades it). The 4-argument overload above delegates here with
/// empty gray specs.
StatusOr<FaultSchedule> ParseFaultSchedule(const std::string& crash_spec,
                                           const std::string& transient_spec,
                                           const std::string& slow_spec,
                                           const std::string& gray_slow_spec,
                                           const std::string& gray_asym_spec,
                                           const std::string& gray_stall_spec,
                                           uint64_t seed);

}  // namespace cot::cluster

#endif  // COT_CLUSTER_FAULT_INJECTOR_H_
