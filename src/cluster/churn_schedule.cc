#include "cluster/churn_schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "util/random.h"

namespace cot::cluster {

std::string_view ToString(ChurnAction action) {
  switch (action) {
    case ChurnAction::kAddServer:
      return "add_server";
    case ChurnAction::kRemoveServer:
      return "remove_server";
    case ChurnAction::kRejoinServer:
      return "rejoin_server";
  }
  return "unknown";
}

namespace {

/// Replays the schedule against a simulated tier, calling `on_event` with
/// the membership state before each event. Shared by Validate and the
/// count helpers so they cannot drift.
struct TierSim {
  std::vector<bool> active;

  explicit TierSim(uint32_t initial_servers)
      : active(initial_servers, true) {}

  uint32_t ActiveCount() const {
    uint32_t n = 0;
    for (bool a : active) n += a ? 1 : 0;
    return n;
  }
};

}  // namespace

Status ChurnSchedule::Validate(uint32_t initial_servers) const {
  if (initial_servers == 0) {
    return Status::InvalidArgument("churn needs at least one initial server");
  }
  TierSim sim(initial_servers);
  uint64_t last_at = 0;
  for (const ChurnEvent& e : events) {
    if (e.at_op < last_at) {
      return Status::InvalidArgument(
          "churn events must be ordered by at_op (event at " +
          std::to_string(e.at_op) + " after " + std::to_string(last_at) + ")");
    }
    last_at = e.at_op;
    switch (e.action) {
      case ChurnAction::kAddServer:
        sim.active.push_back(true);
        break;
      case ChurnAction::kRemoveServer:
        if (e.server >= sim.active.size() || !sim.active[e.server]) {
          return Status::InvalidArgument(
              "churn remove targets inactive server " +
              std::to_string(e.server));
        }
        if (sim.ActiveCount() <= 1) {
          return Status::InvalidArgument(
              "churn cannot remove the last active server");
        }
        sim.active[e.server] = false;
        break;
      case ChurnAction::kRejoinServer:
        if (e.server >= sim.active.size() || sim.active[e.server]) {
          return Status::InvalidArgument(
              "churn rejoin targets a server that is not removed: " +
              std::to_string(e.server));
        }
        sim.active[e.server] = true;
        break;
    }
  }
  return Status::OK();
}

uint32_t ChurnSchedule::MaxServerCount(uint32_t initial_servers) const {
  uint32_t count = initial_servers;
  for (const ChurnEvent& e : events) {
    if (e.action == ChurnAction::kAddServer) ++count;
  }
  return count;
}

uint32_t ChurnSchedule::FinalActiveCount(uint32_t initial_servers) const {
  TierSim sim(initial_servers);
  for (const ChurnEvent& e : events) {
    switch (e.action) {
      case ChurnAction::kAddServer:
        sim.active.push_back(true);
        break;
      case ChurnAction::kRemoveServer:
        if (e.server < sim.active.size()) sim.active[e.server] = false;
        break;
      case ChurnAction::kRejoinServer:
        if (e.server < sim.active.size()) sim.active[e.server] = true;
        break;
    }
  }
  return sim.ActiveCount();
}

StatusOr<ChurnSchedule> ParseChurnSchedule(const std::string& spec) {
  ChurnSchedule schedule;
  if (spec.empty()) return schedule;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string entry = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (entry.empty()) {
      return Status::InvalidArgument("empty churn entry");
    }
    // Keyword, then colon-separated numeric fields.
    size_t colon = entry.find(':');
    std::string keyword = entry.substr(0, colon);
    std::vector<uint64_t> values;
    size_t field_pos = colon == std::string::npos ? entry.size() + 1
                                                  : colon + 1;
    while (field_pos <= entry.size()) {
      size_t next = entry.find(':', field_pos);
      std::string field = entry.substr(
          field_pos,
          next == std::string::npos ? std::string::npos : next - field_pos);
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (field.empty() || end == field.c_str() || *end != '\0' || v < 0.0) {
        return Status::InvalidArgument("bad churn field '" + field +
                                       "' in '" + entry + "'");
      }
      values.push_back(static_cast<uint64_t>(v));
      if (next == std::string::npos) break;
      field_pos = next + 1;
    }
    ChurnEvent event;
    if (keyword == "add" && values.size() == 1) {
      event.action = ChurnAction::kAddServer;
      event.at_op = values[0];
    } else if (keyword == "remove" && values.size() == 2) {
      event.action = ChurnAction::kRemoveServer;
      event.server = static_cast<ServerId>(values[0]);
      event.at_op = values[1];
    } else if (keyword == "rejoin" && values.size() == 2) {
      event.action = ChurnAction::kRejoinServer;
      event.server = static_cast<ServerId>(values[0]);
      event.at_op = values[1];
    } else {
      return Status::InvalidArgument(
          "churn entry '" + entry +
          "' must be add:AT, remove:SERVER:AT, or rejoin:SERVER:AT");
    }
    schedule.events.push_back(event);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at_op < b.at_op;
                   });
  return schedule;
}

ChaosPlan MakeChaosPlan(const ChaosOptions& options) {
  ChaosPlan plan;
  plan.faults.seed = options.seed * 0x9E3779B97F4A7C15ULL + 0x5eedf001;
  if (options.initial_servers == 0 ||
      options.horizon_ops <= options.warmup_ops) {
    return plan;
  }
  Rng rng(options.seed);
  const uint64_t window = options.horizon_ops - options.warmup_ops;

  // Churn: draw sorted event times, then pick a valid action for each
  // against the simulated tier.
  std::vector<uint64_t> times;
  times.reserve(options.churn_events);
  for (uint32_t i = 0; i < options.churn_events; ++i) {
    times.push_back(options.warmup_ops + rng.NextBelow(window));
  }
  std::sort(times.begin(), times.end());
  TierSim sim(options.initial_servers);
  std::vector<ServerId> removed;
  for (uint64_t at : times) {
    ChurnEvent event;
    event.at_op = at;
    // Weighted mix: grow 40%, shrink 40%, rejoin 20% — degraded to a
    // legal action when the draw is infeasible (tier of one cannot
    // shrink; nothing removed cannot rejoin).
    uint64_t draw = rng.NextBelow(10);
    bool can_remove = sim.ActiveCount() > 1;
    bool can_rejoin = !removed.empty();
    if (draw < 4 || (!can_remove && !can_rejoin)) {
      event.action = ChurnAction::kAddServer;
      sim.active.push_back(true);
    } else if (draw < 8 && can_remove) {
      event.action = ChurnAction::kRemoveServer;
      // Pick among active shards.
      uint32_t pick = static_cast<uint32_t>(
          rng.NextBelow(sim.ActiveCount()));
      for (ServerId id = 0; id < sim.active.size(); ++id) {
        if (!sim.active[id]) continue;
        if (pick == 0) {
          event.server = id;
          break;
        }
        --pick;
      }
      sim.active[event.server] = false;
      removed.push_back(event.server);
    } else if (can_rejoin) {
      size_t pick = static_cast<size_t>(rng.NextBelow(removed.size()));
      event.action = ChurnAction::kRejoinServer;
      event.server = removed[pick];
      removed.erase(removed.begin() + static_cast<std::ptrdiff_t>(pick));
      sim.active[event.server] = true;
    } else {
      event.action = ChurnAction::kAddServer;
      sim.active.push_back(true);
    }
    plan.churn.events.push_back(event);
  }

  // Faults: windows over any shard that exists by the end of the run
  // (including churn-created ones); a fault on a currently removed shard
  // is legal and simply never observed.
  const uint32_t max_servers =
      plan.churn.MaxServerCount(options.initial_servers);
  for (uint32_t i = 0; i < options.fault_events; ++i) {
    FaultEvent event;
    event.server = static_cast<ServerId>(rng.NextBelow(max_servers));
    uint64_t start = options.warmup_ops + rng.NextBelow(window);
    uint64_t max_len = std::max<uint64_t>(1, window / 8);
    uint64_t len = 1 + rng.NextBelow(max_len);
    event.start_op = start;
    event.end_op = std::min(options.horizon_ops, start + len);
    if (event.end_op <= event.start_op) event.end_op = event.start_op + 1;
    uint64_t kind = rng.NextBelow(10);
    if (kind < 4) {
      event.type = FaultType::kCrash;
    } else if (kind < 8) {
      event.type = FaultType::kTransient;
      event.probability = 0.3 + 0.6 * rng.NextDouble();
    } else {
      event.type = FaultType::kSlow;
      event.slow_factor = 2.0 + 6.0 * rng.NextDouble();
    }
    plan.faults.events.push_back(event);
  }
  return plan;
}

Status VerifyClusterInvariants(CacheCluster& cluster) {
  const uint32_t n = cluster.server_count();
  for (ServerId id = 0; id < n; ++id) {
    const bool is_active = cluster.IsActive(id);
    // Upper-tier cache nodes hold copies of keys the ring assigns to
    // shards — that is their function — so the ownership and
    // removed-shard-empty checks don't apply to them. The no-stale-copy
    // check below still does: a cache-node value must match storage.
    const bool is_cache_node = cluster.IsCacheNode(id);
    // Collect first (ForEach holds the shard lock; OwnerOf/storage reads
    // must not run under it).
    std::vector<std::pair<uint64_t, cache::Value>> resident;
    cluster.server(id).ForEach([&](uint64_t key, cache::Value value) {
      resident.emplace_back(key, value);
    });
    if (!is_active && !is_cache_node && !resident.empty()) {
      return Status::Internal("removed shard " + std::to_string(id) +
                              " still holds " +
                              std::to_string(resident.size()) + " keys");
    }
    for (const auto& [key, value] : resident) {
      if (!is_cache_node && cluster.OwnerOf(key) != id) {
        return Status::Internal(
            "shard " + std::to_string(id) + " holds key " +
            std::to_string(key) + " owned by shard " +
            std::to_string(cluster.OwnerOf(key)));
      }
      cache::Value authoritative = cluster.storage().Get(key);
      if (value != authoritative) {
        return Status::Internal(
            "stale copy: shard " + std::to_string(id) + " key " +
            std::to_string(key) + " holds " + std::to_string(value) +
            " but storage holds " + std::to_string(authoritative));
      }
    }
  }
  double total = 0.0;
  for (double f : cluster.ring().OwnershipFractions()) total += f;
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::Internal("ring ownership fractions sum to " +
                            std::to_string(total));
  }
  return Status::OK();
}

}  // namespace cot::cluster
