#ifndef COT_CLUSTER_SERVING_QUEUE_H_
#define COT_CLUSTER_SERVING_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>

namespace cot::cluster {

/// Overload defenses for one back-end shard's serving queue. All knobs
/// default to "off" so existing closed-loop experiments are unaffected.
struct OverloadPolicy {
  /// Maximum number of queued-or-in-service requests. An arrival that finds
  /// the queue at this depth is shed (tail drop). 0 = unbounded.
  uint32_t max_queue_depth = 0;
  /// Deadline-aware admission (CoDel-flavored, applied at enqueue): an
  /// arrival whose *projected* queueing delay already exceeds this budget
  /// is shed immediately instead of occupying a slot it cannot use —
  /// serving a request that will blow its deadline is wasted capacity.
  /// 0 = no deadline admission.
  uint64_t deadline_us = 0;
  /// Queue-pressure threshold as a fraction of `max_queue_depth`. At or
  /// above it the shard is "under pressure": invalidation fan-out bypasses
  /// the data queue (tier-1 degradation — deletes are metadata-cheap and
  /// must not be dropped, or stale reads follow). Meaningless when
  /// `max_queue_depth` is 0.
  double pressure_fraction = 0.75;
};

/// Virtual-time bounded FIFO for one shard.
///
/// The queue tracks the *completion timestamps* of admitted requests. An
/// arrival first drains everything that completed before it, then either
/// takes the next service slot (waiting behind the current backlog) or is
/// shed by the tail-drop / deadline rules above. This prices queueing delay
/// into the simulated latency of every admitted request — the quantity a
/// closed-loop driver can never observe, because its clients stop offering
/// load the moment the server slows down.
///
/// Thread safety: guarded by a mutex, like the shard content it models.
/// With one driver thread the admit sequence (and therefore every shed
/// decision) is fully deterministic; with several, per-op outcomes depend
/// on arrival interleaving but the accounting identity
/// offered = admitted + shed always holds exactly.
class ServingQueue {
 public:
  enum class AdmitStatus : uint8_t {
    kAdmitted = 0,
    /// Tail drop: queue at max depth.
    kShedQueueFull = 1,
    /// Deadline admission: projected wait exceeds the latency budget.
    kShedDeadline = 2,
  };

  struct AdmitResult {
    AdmitStatus status = AdmitStatus::kAdmitted;
    /// Time spent queued before service starts (admitted only).
    uint64_t wait_us = 0;
    /// Virtual time at which service completes (admitted only).
    uint64_t completion_us = 0;
    /// Queue depth observed on arrival (before this request joined).
    uint32_t depth = 0;
  };

  explicit ServingQueue(const OverloadPolicy& policy) : policy_(policy) {}

  /// Offers one request arriving at `arrival_us` needing `service_us` of
  /// shard time. Requests are served FIFO, one at a time (a shard is one
  /// serving process in the sim's latency model).
  AdmitResult Admit(uint64_t arrival_us, uint64_t service_us);

  /// Extends the most recently admitted request's service by `extra_us`
  /// (a storage round-trip discovered after admission). No-op if the
  /// queue has fully drained since.
  void ExtendLast(uint64_t extra_us);

  /// Queue depth as seen by an arrival at `now_us` (after draining
  /// completed requests).
  uint32_t DepthAt(uint64_t now_us);

  /// True when the backlog at `now_us` is at or past
  /// `pressure_fraction * max_queue_depth` (bounded queues only).
  bool UnderPressureAt(uint64_t now_us);

  const OverloadPolicy& policy() const { return policy_; }

  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed_queue_full() const {
    return shed_queue_full_.load(std::memory_order_relaxed);
  }
  uint64_t shed_deadline() const {
    return shed_deadline_.load(std::memory_order_relaxed);
  }
  uint64_t shed_total() const { return shed_queue_full() + shed_deadline(); }
  /// Invalidations that skipped the data queue under pressure (counted by
  /// the driver via `NoteBypass`; the queue itself never sees them).
  uint64_t bypassed() const {
    return bypassed_.load(std::memory_order_relaxed);
  }
  void NoteBypass() { bypassed_.fetch_add(1, std::memory_order_relaxed); }
  /// High-water mark of observed arrival depth.
  uint32_t max_depth_seen() const {
    return max_depth_seen_.load(std::memory_order_relaxed);
  }

 private:
  /// Drops completions at or before `now_us`. Caller holds `mu_`.
  void DrainLocked(uint64_t now_us);

  OverloadPolicy policy_;
  std::mutex mu_;
  /// Completion timestamps of queued-or-in-service requests, ascending.
  std::deque<uint64_t> backlog_;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> bypassed_{0};
  std::atomic<uint32_t> max_depth_seen_{0};
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_SERVING_QUEUE_H_
