#ifndef COT_CLUSTER_CONSISTENT_HASH_RING_H_
#define COT_CLUSTER_CONSISTENT_HASH_RING_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace cot::cluster {

/// Identifier of a back-end caching server (dense, 0-based).
using ServerId = uint32_t;

/// Consistent-hash ring (Karger et al. 1997) with virtual nodes, the key
/// discovery mechanism of the paper's system model (Section 2): front-end
/// servers map each key to a caching server without coordination, and
/// adding/removing a server only churns O(1/n) of the key space.
///
/// Each server places `virtual_nodes` points on a 64-bit ring; a key is
/// owned by the first point clockwise from its hash. Virtual nodes smooth
/// the *key-count* distribution — but, as the paper stresses, a fair split
/// of keys is not a fair split of *load* under skew, which is the
/// load-imbalance problem CoT attacks.
class ConsistentHashRing {
 public:
  /// Creates a ring over `num_servers` servers with `virtual_nodes` points
  /// each. `num_servers` >= 1, `virtual_nodes` >= 1.
  ConsistentHashRing(uint32_t num_servers, uint32_t virtual_nodes = 128);

  /// Server owning `key`.
  ServerId ServerFor(uint64_t key) const;

  /// Size of the id space: one past the largest id ever allocated. Removed
  /// ids stay burned (per-id vectors indexed by ServerId never shrink or
  /// re-key), so this is an upper bound on every valid id, not the number
  /// of servers serving traffic — that is `active_server_count()`.
  uint32_t server_count() const { return server_count_; }

  /// Servers currently placed on the ring (eligible to own keys).
  uint32_t active_server_count() const { return active_count_; }

  /// True if `id` currently has points on the ring.
  bool Contains(ServerId id) const;

  /// Adds one server under a fresh id and returns it. Ids are never
  /// reused: after RemoveServer(1) on a 3-server ring, the next AddServer
  /// yields id 3, not a second server 1 — re-adding a removed id is the
  /// explicit `AddServerWithId` below. O(V log V).
  ServerId AddServer();

  /// Re-adds a previously removed server under its old id (a shard
  /// rejoining the tier). Fails if `id` is already on the ring. Ids at or
  /// beyond `server_count()` are also accepted and extend the id space.
  Status AddServerWithId(ServerId id);

  /// Removes server `id`'s points from the ring; its keys redistribute to
  /// ring successors. Ids of other servers are unchanged and `id` is not
  /// recycled by later `AddServer` calls. Fails if `id` is not present or
  /// it is the last server.
  Status RemoveServer(ServerId id);

  /// Fraction of a uniform key space owned by each server, indexed by id
  /// over the full id space (removed ids own 0). Computed from ring arc
  /// lengths; sums to 1 across any add/remove/rejoin sequence.
  /// Diagnostic/test hook.
  std::vector<double> OwnershipFractions() const;

 private:
  struct Point {
    uint64_t position;
    ServerId server;
  };

  void InsertPointsFor(ServerId id);
  void SortPoints();
  /// Rebuilds the bucket index below after any point mutation.
  void RebuildIndex();

  uint32_t virtual_nodes_;
  uint32_t server_count_ = 0;  // id space (never shrinks)
  uint32_t active_count_ = 0;  // servers with points on the ring
  std::vector<Point> points_;  // sorted by position
  // Lookup accelerator: the hash space is cut into ~|points_| equal
  // buckets (a power of two; `shift_` maps a hash to its bucket) and
  // `bucket_start_[b]` holds the index of the first point at or past
  // bucket b's start. ServerFor then scans forward an expected O(1)
  // points instead of binary-searching the whole ring — the difference
  // between ~17 cache-missing probes and ~2 loads at the default
  // 16384 virtual nodes per server.
  std::vector<uint32_t> bucket_start_;
  uint32_t shift_ = 63;
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_CONSISTENT_HASH_RING_H_
