#ifndef COT_CLUSTER_CONSISTENT_HASH_RING_H_
#define COT_CLUSTER_CONSISTENT_HASH_RING_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace cot::cluster {

/// Identifier of a back-end caching server (dense, 0-based).
using ServerId = uint32_t;

/// Consistent-hash ring (Karger et al. 1997) with virtual nodes, the key
/// discovery mechanism of the paper's system model (Section 2): front-end
/// servers map each key to a caching server without coordination, and
/// adding/removing a server only churns O(1/n) of the key space.
///
/// Each server places `virtual_nodes` points on a 64-bit ring; a key is
/// owned by the first point clockwise from its hash. Virtual nodes smooth
/// the *key-count* distribution — but, as the paper stresses, a fair split
/// of keys is not a fair split of *load* under skew, which is the
/// load-imbalance problem CoT attacks.
class ConsistentHashRing {
 public:
  /// Creates a ring over `num_servers` servers with `virtual_nodes` points
  /// each. `num_servers` >= 1, `virtual_nodes` >= 1.
  ConsistentHashRing(uint32_t num_servers, uint32_t virtual_nodes = 128);

  /// Server owning `key`.
  ServerId ServerFor(uint64_t key) const;

  /// Number of servers currently on the ring.
  uint32_t server_count() const { return server_count_; }

  /// Adds one server (id = current server_count). O(V log V).
  void AddServer();

  /// Removes server `id`'s points from the ring; its keys redistribute to
  /// ring successors. Ids of other servers are unchanged. Fails if `id` is
  /// not present or it is the last server.
  Status RemoveServer(ServerId id);

  /// Fraction of a uniform key space owned by each server (computed from
  /// ring arc lengths; sums to 1). Diagnostic/test hook.
  std::vector<double> OwnershipFractions() const;

 private:
  struct Point {
    uint64_t position;
    ServerId server;
  };

  void InsertPointsFor(ServerId id);

  uint32_t virtual_nodes_;
  uint32_t server_count_ = 0;
  std::vector<Point> points_;  // sorted by position
};

}  // namespace cot::cluster

#endif  // COT_CLUSTER_CONSISTENT_HASH_RING_H_
