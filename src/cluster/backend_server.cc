#include "cluster/backend_server.h"

namespace cot::cluster {

BackendServer::BackendServer(size_t max_items) : max_items_(max_items) {}

void BackendServer::TouchLru(Key key,
                             std::unordered_map<Key, Item>::iterator it) {
  if (max_items_ == 0) return;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  it->second.lru_pos = lru_.begin();
  (void)key;
}

std::optional<cache::Value> BackendServer::Get(Key key) {
  ++lookup_count_;
  auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  ++hit_count_;
  TouchLru(key, it);
  return it->second.value;
}

void BackendServer::Set(Key key, Value value) {
  ++set_count_;
  auto it = store_.find(key);
  if (it != store_.end()) {
    it->second.value = value;
    TouchLru(key, it);
    return;
  }
  if (max_items_ != 0 && store_.size() >= max_items_) {
    // memcached-style LRU eviction under memory pressure.
    Key victim = lru_.back();
    lru_.pop_back();
    store_.erase(victim);
    ++eviction_count_;
  }
  Item item;
  item.value = value;
  if (max_items_ != 0) {
    lru_.push_front(key);
    item.lru_pos = lru_.begin();
  }
  store_[key] = item;
}

bool BackendServer::Delete(Key key) {
  auto it = store_.find(key);
  if (it == store_.end()) return false;
  if (max_items_ != 0) lru_.erase(it->second.lru_pos);
  store_.erase(it);
  ++delete_count_;
  return true;
}

void BackendServer::ResetCounters() {
  lookup_count_ = 0;
  hit_count_ = 0;
  set_count_ = 0;
  delete_count_ = 0;
  eviction_count_ = 0;
}

void BackendServer::Clear() {
  store_.clear();
  lru_.clear();
  ResetCounters();
}

}  // namespace cot::cluster
