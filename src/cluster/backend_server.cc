#include "cluster/backend_server.h"

namespace cot::cluster {

BackendServer::BackendServer(size_t max_items) : max_items_(max_items) {}

void BackendServer::Reserve(size_t expected_items) {
  std::lock_guard<std::mutex> lock(mu_);
  store_.reserve(expected_items);
}

void BackendServer::TouchLru(Key key, FlatHashMap<Key, Item>::iterator it) {
  if (max_items_ == 0) return;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  it->second.lru_pos = lru_.begin();
  (void)key;
}

std::optional<cache::Value> BackendServer::Get(Key key) {
  lookup_count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  hit_count_.fetch_add(1, std::memory_order_relaxed);
  TouchLru(key, it);
  return it->second.value;
}

void BackendServer::SetLocked(Key key, Value value) {
  auto it = store_.find(key);
  if (it != store_.end()) {
    it->second.value = value;
    TouchLru(key, it);
    return;
  }
  if (max_items_ != 0 && store_.size() >= max_items_) {
    // memcached-style LRU eviction under memory pressure.
    Key victim = lru_.back();
    lru_.pop_back();
    store_.erase(victim);
    eviction_count_.fetch_add(1, std::memory_order_relaxed);
  }
  Item item;
  item.value = value;
  if (max_items_ != 0) {
    lru_.push_front(key);
    item.lru_pos = lru_.begin();
  }
  store_[key] = item;
}

void BackendServer::Set(Key key, Value value) {
  set_count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  SetLocked(key, value);
}

void BackendServer::Adopt(Key key, Value value) {
  adopted_count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  SetLocked(key, value);
}

bool BackendServer::Delete(Key key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(key);
  if (it == store_.end()) return false;
  if (max_items_ != 0) lru_.erase(it->second.lru_pos);
  store_.erase(key);
  delete_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

BackendServer::FencedValue BackendServer::Get(Key key, uint64_t client_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (client_epoch != routing_epoch_) {
    epoch_mismatch_count_.fetch_add(1, std::memory_order_relaxed);
    return FencedValue{ShardStatus::kEpochMismatch, routing_epoch_,
                       std::nullopt};
  }
  lookup_count_.fetch_add(1, std::memory_order_relaxed);
  auto it = store_.find(key);
  if (it == store_.end()) {
    return FencedValue{ShardStatus::kOk, routing_epoch_, std::nullopt};
  }
  hit_count_.fetch_add(1, std::memory_order_relaxed);
  TouchLru(key, it);
  return FencedValue{ShardStatus::kOk, routing_epoch_, it->second.value};
}

BackendServer::FencedAck BackendServer::Set(Key key, Value value,
                                            uint64_t client_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (client_epoch != routing_epoch_) {
    epoch_mismatch_count_.fetch_add(1, std::memory_order_relaxed);
    return FencedAck{ShardStatus::kEpochMismatch, routing_epoch_, false};
  }
  set_count_.fetch_add(1, std::memory_order_relaxed);
  SetLocked(key, value);
  return FencedAck{ShardStatus::kOk, routing_epoch_, false};
}

BackendServer::FencedAck BackendServer::Delete(Key key,
                                               uint64_t client_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (client_epoch != routing_epoch_) {
    epoch_mismatch_count_.fetch_add(1, std::memory_order_relaxed);
    return FencedAck{ShardStatus::kEpochMismatch, routing_epoch_, false};
  }
  auto it = store_.find(key);
  if (it == store_.end()) {
    return FencedAck{ShardStatus::kOk, routing_epoch_, false};
  }
  if (max_items_ != 0) lru_.erase(it->second.lru_pos);
  store_.erase(key);
  delete_count_.fetch_add(1, std::memory_order_relaxed);
  return FencedAck{ShardStatus::kOk, routing_epoch_, true};
}

void BackendServer::SetRoutingEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  routing_epoch_ = epoch;
}

void BackendServer::ClearContentLocked() {
  store_.clear();
  lru_.clear();
}

bool BackendServer::AdvanceGeneration(uint64_t target) {
  std::lock_guard<std::mutex> lock(mu_);
  if (target <= generation_) return false;
  generation_ = target;
  ClearContentLocked();
  return true;
}

uint64_t BackendServer::ForceRestart() {
  std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
  ClearContentLocked();
  return generation_;
}

void BackendServer::ResetCounters() {
  lookup_count_.store(0, std::memory_order_relaxed);
  hit_count_.store(0, std::memory_order_relaxed);
  set_count_.store(0, std::memory_order_relaxed);
  delete_count_.store(0, std::memory_order_relaxed);
  eviction_count_.store(0, std::memory_order_relaxed);
}

void BackendServer::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ClearContentLocked();
  }
  ResetCounters();
}

void BackendServer::ConfigureOverload(const OverloadPolicy& policy) {
  serving_queue_ = std::make_unique<ServingQueue>(policy);
}

}  // namespace cot::cluster
