#include "cluster/backend_server.h"

namespace cot::cluster {

BackendServer::BackendServer(size_t max_items) : max_items_(max_items) {}

void BackendServer::Reserve(size_t expected_items) {
  std::lock_guard<std::mutex> lock(mu_);
  store_.reserve(expected_items);
}

void BackendServer::TouchLru(Key key, FlatHashMap<Key, Item>::iterator it) {
  if (max_items_ == 0) return;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  it->second.lru_pos = lru_.begin();
  (void)key;
}

std::optional<cache::Value> BackendServer::Get(Key key) {
  lookup_count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  hit_count_.fetch_add(1, std::memory_order_relaxed);
  TouchLru(key, it);
  return it->second.value;
}

void BackendServer::Set(Key key, Value value) {
  set_count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(key);
  if (it != store_.end()) {
    it->second.value = value;
    TouchLru(key, it);
    return;
  }
  if (max_items_ != 0 && store_.size() >= max_items_) {
    // memcached-style LRU eviction under memory pressure.
    Key victim = lru_.back();
    lru_.pop_back();
    store_.erase(victim);
    eviction_count_.fetch_add(1, std::memory_order_relaxed);
  }
  Item item;
  item.value = value;
  if (max_items_ != 0) {
    lru_.push_front(key);
    item.lru_pos = lru_.begin();
  }
  store_[key] = item;
}

bool BackendServer::Delete(Key key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(key);
  if (it == store_.end()) return false;
  if (max_items_ != 0) lru_.erase(it->second.lru_pos);
  store_.erase(key);
  delete_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void BackendServer::ClearContentLocked() {
  store_.clear();
  lru_.clear();
}

bool BackendServer::AdvanceGeneration(uint64_t target) {
  std::lock_guard<std::mutex> lock(mu_);
  if (target <= generation_) return false;
  generation_ = target;
  ClearContentLocked();
  return true;
}

uint64_t BackendServer::ForceRestart() {
  std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
  ClearContentLocked();
  return generation_;
}

void BackendServer::ResetCounters() {
  lookup_count_.store(0, std::memory_order_relaxed);
  hit_count_.store(0, std::memory_order_relaxed);
  set_count_.store(0, std::memory_order_relaxed);
  delete_count_.store(0, std::memory_order_relaxed);
  eviction_count_.store(0, std::memory_order_relaxed);
}

void BackendServer::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ClearContentLocked();
  }
  ResetCounters();
}

}  // namespace cot::cluster
