#include "cluster/distcache_router.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"

namespace cot::cluster {

DistCacheRouter::DistCacheRouter(std::vector<ServerId> cache_nodes,
                                 DistCacheConfig config)
    : config_(config),
      tracker_(std::max<size_t>(1, config.hot_keys * 2)) {
  assert(config_.epoch_ops >= 1);
  ResetCacheTier(std::move(cache_nodes));
}

void DistCacheRouter::ResetCacheTier(std::vector<ServerId> cache_nodes) {
  cache_nodes_ = std::move(cache_nodes);
  split_ = cache_nodes_.size() / 2 + cache_nodes_.size() % 2;
  node_slot_.clear();
  node_slot_.reserve(cache_nodes_.size());
  for (uint32_t i = 0; i < cache_nodes_.size(); ++i) {
    node_slot_[cache_nodes_[i]] = i;
  }
  loads_.assign(cache_nodes_.size(), 0);
  weights_.assign(cache_nodes_.size(), 1.0);
  hot_.clear();
  hot_.reserve(config_.hot_keys);
  ops_in_epoch_ = 0;
}

DistCacheRouter::Candidates DistCacheRouter::CandidatesFor(
    uint64_t key) const {
  assert(two_layer());
  const size_t a_size = split_;
  const size_t b_size = cache_nodes_.size() - split_;
  // Two independently-salted placements, one per partition. Candidates are
  // distinct for every key by construction: A and B index disjoint ranges
  // of the node list.
  Candidates c;
  c.a = cache_nodes_[HashPair(key, config_.salt_a) % a_size];
  c.b = cache_nodes_[split_ + HashPair(key, config_.salt_b) % b_size];
  return c;
}

uint64_t DistCacheRouter::LoadEstimate(ServerId node) const {
  auto it = node_slot_.find(node);
  return it == node_slot_.end() ? 0 : loads_[it->second];
}

double DistCacheRouter::HealthWeight(ServerId node) const {
  auto it = node_slot_.find(node);
  return it == node_slot_.end() ? 1.0 : weights_[it->second];
}

void DistCacheRouter::OnHealth(ServerId server, double weight) {
  auto it = node_slot_.find(server);
  if (it == node_slot_.end()) return;
  weights_[it->second] = std::clamp(weight, 0.01, 1.0);
}

ServerId DistCacheRouter::HedgeReplica(uint64_t key, ServerId primary,
                                       const RouteView& view) {
  (void)view;
  if (!two_layer() || hot_.count(key) == 0) return kNoReplica;
  const Candidates c = CandidatesFor(key);
  if (primary == c.a) return c.b;
  if (primary == c.b) return c.a;
  return kNoReplica;
}

void DistCacheRouter::EndEpoch() {
  ++epochs_completed_;
  ops_in_epoch_ = 0;
  // Rebuild the hot set from the tracker's current top cut.
  hot_.clear();
  size_t taken = 0;
  for (const auto& [key, hotness] : tracker_.SortedByHotnessDesc()) {
    if (taken >= config_.hot_keys) break;
    (void)hotness;
    hot_[key] = 1;
    ++taken;
  }
  // Age both signals: halving keeps recent traffic dominant while bounding
  // estimate staleness (see DistCacheConfig::epoch_ops).
  for (uint64_t& load : loads_) load /= 2;
  tracker_.HalveAllHotness();
}

ServerId DistCacheRouter::Route(uint64_t key, const RouteView& view) {
  // Every routing decision is one observation for the control plane.
  tracker_.TrackAccess(key, core::AccessType::kRead);
  if (++ops_in_epoch_ >= config_.epoch_ops) EndEpoch();
  if (!two_layer() || hot_.count(key) == 0) {
    return view.ring->ServerFor(key);
  }
  const Candidates c = CandidatesFor(key);
  const uint32_t slot_a = node_slot_.find(c.a)->second;
  const uint32_t slot_b = node_slot_.find(c.b)->second;
  // Power of two choices over health-scaled loads: a node's effective
  // load is load / weight, compared cross-multiplied so the healthy
  // (weight 1) case stays the exact integer comparison it always was. A
  // lameduck node's reduced weight inflates its effective load, shedding
  // hot-key traffic to the other candidate. Ties go to the lower id so
  // the decision is a total function of (stream, tier, salts, health).
  const double eff_a =
      static_cast<double>(loads_[slot_a]) * weights_[slot_b];
  const double eff_b =
      static_cast<double>(loads_[slot_b]) * weights_[slot_a];
  if (eff_a < eff_b) return c.a;
  if (eff_b < eff_a) return c.b;
  // Equal effective loads: prefer the healthier node, then the lower id.
  if (weights_[slot_a] > weights_[slot_b]) return c.a;
  if (weights_[slot_b] > weights_[slot_a]) return c.b;
  return std::min(c.a, c.b);
}

std::vector<ServerId> DistCacheRouter::AllReplicas(uint64_t key,
                                                   const RouteView& view) {
  if (!two_layer()) return {view.ring->ServerFor(key)};
  const Candidates c = CandidatesFor(key);
  // Unconditionally fan out to both candidates plus the shard owner: a
  // key's cache copies can outlive its hot-set membership, so every write
  // must reach every node that could ever serve the key.
  return {c.a, c.b, view.ring->ServerFor(key)};
}

void DistCacheRouter::OnLookup(uint64_t key, ServerId server) {
  (void)key;
  // Load estimates count delivered lookups per cache node (shard-tier
  // lookups are not the upper layer's load).
  auto it = node_slot_.find(server);
  if (it != node_slot_.end()) ++loads_[it->second];
}

}  // namespace cot::cluster
