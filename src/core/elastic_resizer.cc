#include "core/elastic_resizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cot::core {

std::string_view ToString(ResizerPhase phase) {
  switch (phase) {
    case ResizerPhase::kRatioDiscovery:
      return "ratio_discovery";
    case ResizerPhase::kBalance:
      return "balance";
    case ResizerPhase::kSteady:
      return "steady";
    case ResizerPhase::kShrink:
      return "shrink";
  }
  return "unknown";
}

std::string_view ToString(ResizeAction action) {
  switch (action) {
    case ResizeAction::kNone:
      return "none";
    case ResizeAction::kNoSignal:
      return "no_signal";
    case ResizeAction::kWarmup:
      return "warmup";
    case ResizeAction::kDoubleTracker:
      return "double_tracker";
    case ResizeAction::kShrinkTrackerBack:
      return "shrink_tracker_back";
    case ResizeAction::kDoubleBoth:
      return "double_both";
    case ResizeAction::kHalveBoth:
      return "halve_both";
    case ResizeAction::kResetTrackerRatio:
      return "reset_tracker_ratio";
    case ResizeAction::kDecay:
      return "decay";
    case ResizeAction::kTargetAchieved:
      return "target_achieved";
    case ResizeAction::kAtLimit:
      return "at_limit";
  }
  return "unknown";
}

ElasticResizer::ElasticResizer(CotCache* cache, ResizerConfig config)
    : cache_(cache),
      config_(config),
      phase_(config.enable_ratio_discovery ? ResizerPhase::kRatioDiscovery
                                           : ResizerPhase::kBalance),
      epoch_size_(config.initial_epoch_size) {
  assert(cache != nullptr);
  assert(config.target_imbalance >= 1.0);
  UpdateEpochSize();
}

bool ElasticResizer::ImbalanceExceedsTarget(double ic) const {
  return ic > config_.target_imbalance * (1.0 + config_.achieved_slack);
}

void ElasticResizer::SetWarmup() { warmup_remaining_ = config_.warmup_epochs; }

void ElasticResizer::UpdateEpochSize() {
  // Algorithm 3 line 4: E := max(E, K), so an epoch always spans enough
  // accesses to fill the tracker.
  epoch_size_ = std::max<uint64_t>(config_.initial_epoch_size,
                                   cache_->tracker_capacity());
}

ResizeAction ElasticResizer::DoubleBoth() {
  size_t c = cache_->capacity();
  size_t k = cache_->tracker_capacity();
  size_t new_c = std::max<size_t>(1, c == 0 ? 1 : 2 * c);
  if (new_c > config_.max_cache_capacity) return ResizeAction::kAtLimit;
  // Grow the tracker first so K >= 2C never breaks mid-flight.
  Status s = cache_->ResizeTracker(std::max<size_t>(2 * k, 2 * new_c));
  assert(s.ok());
  s = cache_->Resize(new_c);
  assert(s.ok());
  (void)s;
  UpdateEpochSize();
  SetWarmup();
  return ResizeAction::kDoubleBoth;
}

ResizeAction ElasticResizer::HalveBoth() {
  size_t c = cache_->capacity();
  size_t k = cache_->tracker_capacity();
  if (c <= config_.min_cache_capacity) return ResizeAction::kAtLimit;
  size_t new_c = std::max(config_.min_cache_capacity, c / 2);
  size_t new_k = std::max<size_t>(2 * new_c, k / 2);
  Status s = cache_->Resize(new_c);
  assert(s.ok());
  s = cache_->ResizeTracker(new_k);
  assert(s.ok());
  (void)s;
  UpdateEpochSize();
  SetWarmup();
  return ResizeAction::kHalveBoth;
}

namespace {

// max/min of a load vector with the same conventions as
// metrics::LoadImbalance (empty/all-zero -> 1, zero min clamped to 1).
// Non-finite entries are skipped defensively — a NaN would otherwise
// poison every later EWMA epoch.
double VectorImbalance(const std::vector<double>& loads) {
  bool any = false;
  double max_load = 0.0, min_load = 0.0;
  for (double v : loads) {
    if (!std::isfinite(v)) continue;
    if (!any) {
      max_load = min_load = v;
      any = true;
      continue;
    }
    max_load = std::max(max_load, v);
    min_load = std::min(min_load, v);
  }
  if (!any || max_load <= 0.0) return 1.0;
  if (min_load < 1.0) min_load = 1.0;
  return max_load / min_load;
}

}  // namespace

EpochReport ElasticResizer::EndEpoch(
    const std::vector<uint64_t>& per_server_lookups,
    const std::vector<uint8_t>* unavailable) {
  const size_t n = per_server_lookups.size();
  auto available = [&](size_t i) {
    return unavailable == nullptr || i >= unavailable->size() ||
           (*unavailable)[i] == 0;
  };
  size_t available_servers = 0;
  uint64_t available_lookups = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!available(i)) continue;
    ++available_servers;
    available_lookups += per_server_lookups[i];
  }
  // An imbalance ratio needs at least two live measurements; an all-zero
  // epoch (every request failed over) measures the outage, not the load
  // split. Either way there is nothing to act on.
  if (available_servers < 2 || available_lookups == 0) {
    return SkipEpoch();
  }
  if (smoothed_loads_.size() != n) {
    // First epoch (or server-count change): adopt the raw vector. Masked
    // entries adopt their raw count too — it is the only estimate we
    // have, and they stay excluded from the ratio below.
    smoothed_loads_.assign(per_server_lookups.begin(),
                           per_server_lookups.end());
  } else {
    // EWMA update only where there is signal: a dead shard's zero is an
    // absence of measurement, and folding it in would drag its smoothed
    // load toward zero and fabricate imbalance after it recovers.
    double w = config_.imbalance_smoothing;
    for (size_t i = 0; i < n; ++i) {
      if (!available(i)) continue;
      smoothed_loads_[i] = w * static_cast<double>(per_server_lookups[i]) +
                           (1.0 - w) * smoothed_loads_[i];
    }
  }
  std::vector<double> raw_avail, smoothed_avail;
  raw_avail.reserve(available_servers);
  smoothed_avail.reserve(available_servers);
  for (size_t i = 0; i < n; ++i) {
    if (!available(i)) continue;
    raw_avail.push_back(static_cast<double>(per_server_lookups[i]));
    smoothed_avail.push_back(smoothed_loads_[i]);
  }
  double raw_ic = VectorImbalance(raw_avail);
  double smoothed_ic = VectorImbalance(smoothed_avail);
  smoothed_imbalance_ = smoothed_ic;
  return EndEpochImpl(raw_ic, smoothed_ic);
}

EpochReport ElasticResizer::SkipEpoch() {
  const CotCache::EpochStats& stats = cache_->epoch_stats();
  EpochReport report;
  report.epoch = epoch_index_++;
  report.phase = phase_;
  report.action = ResizeAction::kNoSignal;
  // Carry the prior smoothed value (1.0 before any measurement) so trace
  // consumers see a continuous series rather than a fabricated spike.
  double prior = smoothed_imbalance_ == 0.0 ? 1.0 : smoothed_imbalance_;
  report.current_imbalance = prior;
  report.smoothed_imbalance = prior;
  report.alpha_target = alpha_target_;
  report.hit_rate = stats.accesses == 0
                        ? 0.0
                        : static_cast<double>(stats.cache_hits) /
                              static_cast<double>(stats.accesses);
  report.cache_capacity = cache_->capacity();
  report.tracker_capacity = cache_->tracker_capacity();
  history_.push_back(report);
  cache_->ResetEpochStats();
  lifetime_accesses_ += accesses_in_epoch_;
  accesses_in_epoch_ = 0;
  TraceDecision(report);
  return report;
}

EpochReport ElasticResizer::EndEpoch(double current_imbalance) {
  // Scalar form: smooth the value directly.
  if (smoothed_imbalance_ == 0.0) {
    smoothed_imbalance_ = current_imbalance;
  } else {
    double w = config_.imbalance_smoothing;
    smoothed_imbalance_ =
        w * current_imbalance + (1.0 - w) * smoothed_imbalance_;
  }
  return EndEpochImpl(current_imbalance, smoothed_imbalance_);
}

EpochReport ElasticResizer::EndEpochImpl(double current_imbalance,
                                         double smoothed_imbalance) {
  const CotCache::EpochStats& stats = cache_->epoch_stats();
  const size_t c = cache_->capacity();
  const size_t k = cache_->tracker_capacity();
  const double ic = smoothed_imbalance;

  EpochReport report;
  report.epoch = epoch_index_++;
  report.phase = phase_;
  report.current_imbalance = current_imbalance;
  report.smoothed_imbalance = smoothed_imbalance;
  report.alpha_c = stats.AlphaC(c);
  report.alpha_kc = stats.AlphaKc(k, c);
  report.alpha_kc_signal =
      config_.literal_alpha_kc
          ? report.alpha_kc
          : (c == 0 ? 0.0
                    : static_cast<double>(stats.tracker_only_hits) /
                          static_cast<double>(c));
  report.alpha_target = alpha_target_;
  report.hit_rate = stats.accesses == 0
                        ? 0.0
                        : static_cast<double>(stats.cache_hits) /
                              static_cast<double>(stats.accesses);
  report.action = ResizeAction::kNone;

  if (warmup_remaining_ > 0) {
    --warmup_remaining_;
    report.action = ResizeAction::kWarmup;
  } else {
    switch (phase_) {
      case ResizerPhase::kRatioDiscovery: {
        // Phase 1: cache fixed, double the tracker until the hit-rate
        // saturates; then step the tracker back and move on.
        if (!have_baseline_) {
          have_baseline_ = true;
          baseline_hit_rate_ = report.hit_rate;
          Status s = cache_->ResizeTracker(2 * k);
          assert(s.ok());
          (void)s;
          UpdateEpochSize();
          SetWarmup();
          report.action = ResizeAction::kDoubleTracker;
        } else {
          double gain = report.hit_rate - baseline_hit_rate_;
          bool significant =
              gain > std::max(config_.ratio_gain_absolute,
                              baseline_hit_rate_ * config_.ratio_gain_relative);
          if (significant) {
            baseline_hit_rate_ = report.hit_rate;
            Status s = cache_->ResizeTracker(2 * k);
            assert(s.ok());
            (void)s;
            UpdateEpochSize();
            SetWarmup();
            report.action = ResizeAction::kDoubleTracker;
          } else {
            // No benefit from the last doubling: shrink back one step
            // (the "dip" at epoch 16 of Figure 7) and start balancing.
            size_t back = std::max<size_t>(std::max<size_t>(1, 2 * c), k / 2);
            Status s = cache_->ResizeTracker(back);
            assert(s.ok());
            (void)s;
            UpdateEpochSize();
            SetWarmup();
            report.action = ResizeAction::kShrinkTrackerBack;
            // Where next depends on why we were discovering: initially we
            // still have to reach I_t (kBalance); re-discovery after a
            // workload change continues into the shrink loop.
            phase_ = (alpha_target_ == 0.0) ? ResizerPhase::kBalance
                                            : ResizerPhase::kShrink;
            have_baseline_ = false;
          }
        }
        break;
      }
      case ResizerPhase::kBalance: {
        if (ImbalanceExceedsTarget(ic)) {
          report.action = DoubleBoth();
          // Algorithm 3 line 5: remember the quality of the cached keys.
          alpha_target_ = report.alpha_c;
        } else {
          alpha_target_ = report.alpha_c;
          phase_ = ResizerPhase::kSteady;
          report.action = ResizeAction::kTargetAchieved;
        }
        break;
      }
      case ResizerPhase::kSteady: {
        double quality_bar = (1.0 - config_.epsilon) * alpha_target_;
        if (ImbalanceExceedsTarget(ic)) {
          // Hysteresis: re-grow only on sustained violations.
          ++consecutive_exceed_;
          if (consecutive_exceed_ >= config_.exceed_epochs_to_regrow) {
            consecutive_exceed_ = 0;
            phase_ = ResizerPhase::kBalance;
            report.action = DoubleBoth();
            alpha_target_ = report.alpha_c;
          }
          break;
        }
        consecutive_exceed_ = 0;
        if (report.alpha_c < quality_bar && report.alpha_kc_signal < quality_bar) {
          // Case 1: both S_c and S_{k-c} went cold — the workload lost
          // skew. Re-discover the right tracker ratio from 2:1, then
          // shrink (Section 6.4's Figure 8 narrative).
          if (config_.enable_ratio_discovery) {
            Status s = cache_->ResizeTracker(std::max<size_t>(1, 2 * c));
            assert(s.ok());
            (void)s;
            UpdateEpochSize();
            SetWarmup();
            have_baseline_ = false;
            phase_ = ResizerPhase::kRatioDiscovery;
            report.action = ResizeAction::kResetTrackerRatio;
          } else {
            phase_ = ResizerPhase::kShrink;
            report.action = HalveBoth();
          }
        } else if (report.alpha_c < quality_bar &&
                   report.alpha_kc_signal >= quality_bar) {
          // Case 2: tracked-but-not-cached keys are outperforming the
          // cache — the hot set is turning over. Decay to forget old
          // trends.
          if (config_.enable_decay) cache_->HalveAllHotness();
          report.action = ResizeAction::kDecay;
        } else {
          // Case 3 / both-fine: hold.
          report.action = ResizeAction::kNone;
        }
        break;
      }
      case ResizerPhase::kShrink: {
        double quality_bar = (1.0 - config_.epsilon) * alpha_target_;
        if (ImbalanceExceedsTarget(ic)) {
          ++consecutive_exceed_;
          if (consecutive_exceed_ >= config_.exceed_epochs_to_regrow) {
            consecutive_exceed_ = 0;
            phase_ = ResizerPhase::kBalance;
            report.action = DoubleBoth();
            alpha_target_ = report.alpha_c;
          }
          break;
        }
        consecutive_exceed_ = 0;
        if (report.alpha_c >= quality_bar) {
          // Quality recovered at this size: hold here.
          phase_ = ResizerPhase::kSteady;
          report.action = ResizeAction::kTargetAchieved;
        } else {
          report.action = HalveBoth();
          // kAtLimit leaves us parked at the minimum footprint.
        }
        break;
      }
    }
  }

  report.cache_capacity = cache_->capacity();
  report.tracker_capacity = cache_->tracker_capacity();
  history_.push_back(report);
  cache_->ResetEpochStats();
  lifetime_accesses_ += accesses_in_epoch_;
  accesses_in_epoch_ = 0;
  TraceDecision(report);
  return report;
}

void ElasticResizer::TraceDecision(const EpochReport& report) {
  if (tracer_ == nullptr) return;
  metrics::ResizerDecisionPayload payload;
  payload.epoch = report.epoch;
  payload.phase = ToString(report.phase);
  payload.action = ToString(report.action);
  payload.current_imbalance = report.current_imbalance;
  payload.smoothed_imbalance = report.smoothed_imbalance;
  payload.target_imbalance = config_.target_imbalance;
  payload.alpha_c = report.alpha_c;
  payload.alpha_kc = report.alpha_kc;
  payload.alpha_kc_signal = report.alpha_kc_signal;
  payload.alpha_target = report.alpha_target;
  payload.hit_rate = report.hit_rate;
  payload.cache_capacity = report.cache_capacity;
  payload.tracker_capacity = report.tracker_capacity;
  tracer_->Record(lifetime_accesses_, payload);
}

}  // namespace cot::core
