#include "core/policy_factory.h"

#include "cache/arc_cache.h"
#include "cache/lfu_cache.h"
#include "cache/lru_cache.h"
#include "cache/lruk_cache.h"
#include "cache/mq_cache.h"
#include "cache/two_q_cache.h"
#include "core/cot_cache.h"

namespace cot::core {

const std::vector<std::string>& PolicyNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "none", "lru", "lfu", "arc", "lru-2", "2q", "mq", "cot"};
  return names;
}

StatusOr<std::unique_ptr<cache::Cache>> MakePolicy(std::string_view name,
                                                   size_t capacity,
                                                   size_t tracker_ratio) {
  if (tracker_ratio == 0) {
    return Status::InvalidArgument("tracker_ratio must be >= 1");
  }
  if (name == "none") return std::unique_ptr<cache::Cache>(nullptr);
  if (name == "lru") {
    return std::unique_ptr<cache::Cache>(
        std::make_unique<cache::LruCache>(capacity));
  }
  if (name == "lfu") {
    return std::unique_ptr<cache::Cache>(
        std::make_unique<cache::LfuCache>(capacity));
  }
  if (name == "arc") {
    return std::unique_ptr<cache::Cache>(
        std::make_unique<cache::ArcCache>(capacity));
  }
  if (name == "lru-2") {
    return std::unique_ptr<cache::Cache>(std::make_unique<cache::LrukCache>(
        capacity, tracker_ratio * capacity, 2));
  }
  if (name == "2q") {
    return std::unique_ptr<cache::Cache>(
        std::make_unique<cache::TwoQCache>(capacity));
  }
  if (name == "mq") {
    return std::unique_ptr<cache::Cache>(
        std::make_unique<cache::MqCache>(capacity));
  }
  if (name == "cot") {
    return std::unique_ptr<cache::Cache>(
        std::make_unique<CotCache>(capacity, tracker_ratio * capacity));
  }
  return Status::InvalidArgument("unknown policy '" + std::string(name) +
                                 "'");
}

}  // namespace cot::core
