#ifndef COT_CORE_ELASTIC_RESIZER_H_
#define COT_CORE_ELASTIC_RESIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/cot_cache.h"
#include "metrics/event_tracer.h"

namespace cot::core {

/// Tunables of the elastic resizing algorithm. Only `target_imbalance`
/// (I_t) is semantically an operator input — everything else is either a
/// constant named in the paper (warm-up of 5 epochs, 2% achieved slack,
/// epoch >= K) or an internal robustness knob with a conservative default.
struct ResizerConfig {
  /// I_t: maximum tolerable ratio between the most- and least-loaded
  /// back-end server as observed by this front-end. The paper's experiments
  /// use 1.1 (Figures 7-8, Table 2) and 1.5 (Figure 3).
  double target_imbalance = 1.1;
  /// Epsilon of Algorithm 3: alpha comparisons use (1 - epsilon) * alpha_t
  /// to absorb statistical noise.
  double epsilon = 0.05;
  /// I_c within this relative slack of I_t counts as achieved ("CoT does
  /// not trigger resizing if I_c is within 2% of I_t", Section 6.4).
  double achieved_slack = 0.02;
  /// E_0: initial epoch length in accesses. The effective epoch is always
  /// max(E_0, K) per Algorithm 3 line 4.
  uint64_t initial_epoch_size = 5000;
  /// Epochs to wait after every resize before acting on measurements
  /// (Section 6.4 uses 5).
  int warmup_epochs = 5;
  /// Minimum relative hit-rate gain for a tracker doubling to be counted as
  /// "significant" during ratio discovery (phase 1).
  double ratio_gain_relative = 0.02;
  /// ... and the minimum absolute gain (hit-rate points).
  double ratio_gain_absolute = 0.002;
  /// Hard bounds on the cache size the resizer will request.
  size_t min_cache_capacity = 1;
  size_t max_cache_capacity = size_t{1} << 20;
  /// When false, phase 1 (tracker-to-cache ratio discovery) is skipped and
  /// the configured ratio is kept; Algorithm 3 then runs alone.
  bool enable_ratio_discovery = true;
  /// EWMA weight of the newest I_c measurement in the smoothed imbalance
  /// the resizer acts on (1.0 = raw, no smoothing). Per-epoch I_c is a
  /// max/min ratio of multinomial counts and is noisy exactly when the
  /// front-end cache works well (few residual backend lookups); smoothing
  /// keeps the resizer from chasing that noise. An implementation
  /// refinement over the paper, which does not discuss estimator noise.
  double imbalance_smoothing = 0.5;
  /// Minimum number of *backend lookups* an epoch must contain before the
  /// driver (FrontendClient) closes it, for the same reason: an I_c ratio
  /// over a handful of lookups per server is meaningless. Enforced by the
  /// driver, not by `EndEpoch` itself.
  uint64_t min_epoch_backend_lookups = 8000;
  /// When false, Case 2 of Algorithm 3 logs but does not decay (the paper
  /// leaves the decay implementation out of scope; we implement half-life
  /// decay and enable it by default).
  bool enable_decay = true;
  /// Use the paper's literal alpha_{k-c} (tracker-only hits averaged over
  /// K-C lines) as the Case-2 signal. The literal form is arithmetically
  /// unreachable in most configurations: with K-C >= C and an epoch of E
  /// accesses, alpha_kc can never reach alpha_t once alpha_t*(K-C) > E —
  /// true even for the paper's own Figure-7 endpoint (alpha_t=7.8,
  /// K-C=1536, E=5000). The default (false) instead asks whether the
  /// *total* hits landing on S_{k-c} would be enough to feed C cache lines
  /// at target quality (tracker_only_hits / C vs (1-eps)*alpha_t), which
  /// preserves the intended semantics — "the tracked-but-not-cached keys
  /// are collectively out-earning the cache" — and actually fires on hot-
  /// set turnover.
  bool literal_alpha_kc = false;
  /// Hysteresis: once the target has been achieved (steady/shrink phases),
  /// the smoothed imbalance must exceed the target for this many
  /// *consecutive* epochs before the resizer re-grows. A single noisy
  /// excursion re-doubling the cache also resets alpha_t to the current
  /// (possibly degenerate) quality, which would blind the shrink detector —
  /// this guard makes that spurious path improbable.
  int exceed_epochs_to_regrow = 2;
};

/// Which part of the resizing state machine an epoch was processed in.
enum class ResizerPhase {
  /// Phase 1 (Section 6.4 / appendix): cache size fixed, tracker doubled
  /// until the hit-rate stops improving, then shrunk back one step.
  kRatioDiscovery,
  /// Phase 2: double cache+tracker (binary search upward) until I_c <= I_t.
  kBalance,
  /// Target met: watch alpha signals for workload change (Algorithm 3's
  /// else-branch).
  kSteady,
  /// Workload-change shrink loop: halve cache+tracker while quality stays
  /// below target and I_t is not violated.
  kShrink,
};

/// What the resizer did at an epoch boundary.
enum class ResizeAction {
  kNone,
  /// The epoch carried no usable load measurement (fewer than two
  /// available servers, or zero lookups — e.g. every request failed over
  /// to storage during an outage). The resizer holds all state: no
  /// resize, no EWMA update, no warmup consumption.
  kNoSignal,
  kWarmup,
  kDoubleTracker,
  kShrinkTrackerBack,
  kDoubleBoth,
  kHalveBoth,
  kResetTrackerRatio,
  kDecay,
  kTargetAchieved,
  kAtLimit,
};

/// Human-readable names (for traces and bench output).
std::string_view ToString(ResizerPhase phase);
std::string_view ToString(ResizeAction action);

/// One row of the per-epoch resizing trace (the data behind the paper's
/// Figures 7 and 8).
struct EpochReport {
  uint64_t epoch = 0;
  ResizerPhase phase = ResizerPhase::kBalance;
  ResizeAction action = ResizeAction::kNone;
  double current_imbalance = 1.0;   // I_c as measured this epoch (raw)
  double smoothed_imbalance = 1.0;  // EWMA the decisions are based on
  double alpha_c = 0.0;
  double alpha_kc = 0.0;        // the paper's definition (per K-C line)
  double alpha_kc_signal = 0.0; // the value Case 1/2 decisions used
  double alpha_target = 0.0;    // alpha_t
  double hit_rate = 0.0;
  size_t cache_capacity = 0;   // after any action this epoch
  size_t tracker_capacity = 0;
};

/// CoT's elastic resizing algorithm (paper Algorithm 3 plus the phase-1
/// ratio discovery narrated in Section 6.4): drives a `CotCache`'s cache
/// and tracker capacities from two per-epoch signals — the front-end's
/// locally observed back-end load-imbalance I_c and the hits-per-line
/// qualities alpha_c / alpha_{k-c}.
///
/// Usage (one instance per front-end, same thread as its cache):
///
///     ElasticResizer resizer(&cache, config);
///     for each access:
///       ... serve via cache, count per-server lookups ...
///       resizer.OnAccess();
///       if (resizer.EpochComplete()) {
///         double ic = metrics::LoadImbalance(per_server_lookups);
///         resizer.EndEpoch(ic);   // may resize the cache
///         reset per-server lookup counters;
///       }
class ElasticResizer {
 public:
  /// Binds the resizer to `cache` (borrowed; must outlive the resizer).
  ElasticResizer(CotCache* cache, ResizerConfig config);

  /// Notes one access; cheap (a counter increment).
  void OnAccess() { ++accesses_in_epoch_; }

  /// True when the current epoch has reached its length (max(E_0, K)).
  bool EpochComplete() const { return accesses_in_epoch_ >= epoch_size_; }

  /// Processes an epoch boundary given the per-server lookup counts the
  /// front-end observed this epoch. The resizer maintains an EWMA of the
  /// *load vector* (weight `imbalance_smoothing`) and acts on the max/min
  /// ratio of the smoothed loads — smoothing the ratio itself would not
  /// remove the upward bias of a max/min over noisy counts. May resize the
  /// cache/tracker; returns the trace row describing what happened.
  ///
  /// `unavailable` (optional, parallel to the load vector) marks servers
  /// whose count is an absence of signal rather than a load: shards that
  /// failed or left the ring this epoch. Masked entries are excluded from
  /// the imbalance (their zero would otherwise read as extreme imbalance)
  /// and their EWMA state is frozen. An epoch with fewer than two
  /// available servers or zero available lookups is processed as
  /// `kNoSignal`: state holds, no resize decision is made.
  EpochReport EndEpoch(const std::vector<uint64_t>& per_server_lookups,
                       const std::vector<uint8_t>* unavailable = nullptr);

  /// Same, but with a pre-computed imbalance value (unit tests, synthetic
  /// drivers). The value is EWMA-smoothed directly.
  EpochReport EndEpoch(double current_imbalance);

  /// Effective epoch length in accesses.
  uint64_t epoch_size() const { return epoch_size_; }
  /// Accesses recorded in the epoch currently open (drivers use this to
  /// detect a stalled epoch that faults starved of backend lookups).
  uint64_t accesses_in_epoch() const { return accesses_in_epoch_; }
  /// The configuration in effect (drivers consult
  /// `min_epoch_backend_lookups`).
  const ResizerConfig& config() const { return config_; }
  /// Current phase.
  ResizerPhase phase() const { return phase_; }
  /// alpha_t, the target average hit per cache-line (0 until first set).
  double alpha_target() const { return alpha_target_; }
  /// Number of completed epochs.
  uint64_t epochs_completed() const { return epoch_index_; }
  /// Full trace of every epoch so far.
  const std::vector<EpochReport>& history() const { return history_; }

  /// Attaches a structured event sink (borrowed; null disables). Every
  /// `EndEpoch` then records one `kResizerDecision` event carrying the full
  /// Algorithm-3 inputs and the chosen action, stamped with the resizer's
  /// cumulative access count as the logical clock. The sink must be
  /// written only by the thread driving this resizer (one tracer per
  /// client — see metrics::EventTracer).
  void SetTracer(metrics::EventTracer* tracer) { tracer_ = tracer; }
  metrics::EventTracer* tracer() const { return tracer_; }

 private:
  EpochReport EndEpochImpl(double raw_imbalance, double smoothed_imbalance);
  /// Closes an epoch that carried no usable measurement: records a
  /// `kNoSignal` trace row and resets epoch counters without touching
  /// sizes, EWMA state, warmup, or alpha_t.
  EpochReport SkipEpoch();
  bool ImbalanceExceedsTarget(double ic) const;
  void SetWarmup();
  void UpdateEpochSize();
  /// Doubles cache and tracker together (preserving their ratio), clamped
  /// to max_cache_capacity. Returns the action actually taken.
  ResizeAction DoubleBoth();
  /// Halves cache and tracker together, clamped to min_cache_capacity.
  ResizeAction HalveBoth();

  /// Emits `report` to the attached tracer (no-op when detached).
  void TraceDecision(const EpochReport& report);

  CotCache* cache_;
  metrics::EventTracer* tracer_ = nullptr;
  ResizerConfig config_;
  ResizerPhase phase_;
  uint64_t epoch_size_;
  uint64_t accesses_in_epoch_ = 0;
  uint64_t lifetime_accesses_ = 0;  // trace timestamp: accesses ever closed
  uint64_t epoch_index_ = 0;
  int warmup_remaining_ = 0;
  double alpha_target_ = 0.0;
  double smoothed_imbalance_ = 0.0;        // 0 = no measurement yet
  std::vector<double> smoothed_loads_;     // EWMA per-server loads
  int consecutive_exceed_ = 0;             // hysteresis counter
  // Ratio-discovery state.
  bool have_baseline_ = false;
  double baseline_hit_rate_ = 0.0;
  std::vector<EpochReport> history_;
};

}  // namespace cot::core

#endif  // COT_CORE_ELASTIC_RESIZER_H_
