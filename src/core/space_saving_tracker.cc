#include "core/space_saving_tracker.h"

#include <algorithm>
#include <cassert>

namespace cot::core {

SpaceSavingTracker::SpaceSavingTracker(size_t capacity, HotnessWeights weights)
    : capacity_(capacity), weights_(weights), heap_(capacity) {
  assert(capacity >= 1);
}

SpaceSavingTracker::TrackResult SpaceSavingTracker::TrackAccess(
    Key key, AccessType type) {
  TrackResult result;
  // Both branches fuse the membership test with the admission: one index
  // probe covers "already tracked?" and, on a miss, places the new entry.
  std::pair<Heap::Id, bool> entry;
  if (heap_.size() >= capacity_) {
    // Full: an untracked key replaces the root (minimum hotness) in place,
    // inheriting its counters — Algorithm 1 lines 2-4 ("benefit of the
    // doubt").
    entry = heap_.FindOrReplaceTopWith(key, [&] {
      Heap::Id top = heap_.TopId();
      result.evicted = heap_.KeyAt(top);
      result.evicted_hotness = heap_.TopPriority();
      KeyCounters inherited = heap_.AuxAt(top);
      inherited.Record(type);
      return std::pair{ComputeHotness(inherited, weights_), inherited};
    });
  } else {
    entry = heap_.FindOrPushWith(key, [&] {
      KeyCounters counters;
      counters.Record(type);
      return std::pair{ComputeHotness(counters, weights_), counters};
    });
  }
  auto [id, was_tracked] = entry;
  if (was_tracked) {
    // Already tracked: update counters and reorder. The probe above located
    // counters, hotness, and heap position all at once.
    result.was_tracked = true;
    KeyCounters& counters = heap_.AuxAt(id);
    counters.Record(type);
    double h = ComputeHotness(counters, weights_);
    heap_.UpdateAt(id, h);
    result.hotness = h;
    return result;
  }
  result.hotness = heap_.PriorityAt(id);
  return result;
}

std::optional<double> SpaceSavingTracker::HotnessOf(Key key) const {
  Heap::Id id = heap_.IdOf(key);
  if (id == Heap::kInvalidId) return std::nullopt;
  return heap_.PriorityAt(id);
}

std::optional<KeyCounters> SpaceSavingTracker::CountersOf(Key key) const {
  Heap::Id id = heap_.IdOf(key);
  if (id == Heap::kInvalidId) return std::nullopt;
  return heap_.AuxAt(id);
}

std::optional<double> SpaceSavingTracker::MinHotness() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.TopPriority();
}

Status SpaceSavingTracker::Resize(size_t new_capacity,
                                  std::vector<Key>* evicted) {
  if (new_capacity < 1) {
    return Status::InvalidArgument("tracker capacity must be >= 1");
  }
  capacity_ = new_capacity;
  while (heap_.size() > capacity_) {
    auto [victim, hotness] = heap_.Pop();
    if (evicted != nullptr) evicted->push_back(victim);
  }
  // Growing: pre-size for the new steady state so the expansion itself is
  // the only rehash (elastic expansion happens on the serving path).
  heap_.Reserve(capacity_);
  return Status::OK();
}

void SpaceSavingTracker::HalveAllHotness() {
  heap_.ForEachId([&](Heap::Id id) { heap_.AuxAt(id).Scale(0.5); });
  heap_.TransformPrioritiesMonotone([](double h) { return h * 0.5; });
}

void SpaceSavingTracker::Clear() { heap_.Clear(); }

void SpaceSavingTracker::Seed(Key key, const KeyCounters& counters) {
  double h = ComputeHotness(counters, weights_);
  Heap::Id id = heap_.IdOf(key);
  if (id != Heap::kInvalidId) {
    heap_.AuxAt(id) = counters;
    heap_.UpdateAt(id, h);
    return;
  }
  if (heap_.size() >= capacity_) heap_.Pop();
  heap_.Push(key, h, counters);
}

std::vector<std::pair<SpaceSavingTracker::Key, double>>
SpaceSavingTracker::SortedByHotnessDesc() const {
  std::vector<std::pair<Key, double>> out;
  out.reserve(heap_.size());
  heap_.ForEach([&](const Key& k, double h) { out.emplace_back(k, h); });
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

bool SpaceSavingTracker::CheckInvariants() const {
  if (heap_.size() > capacity_) return false;
  bool ok = true;
  // Every node's hotness must be derivable from its own counters.
  heap_.ForEachId([&](Heap::Id id) {
    if (ComputeHotness(heap_.AuxAt(id), weights_) != heap_.PriorityAt(id)) {
      ok = false;
    }
  });
  return ok && heap_.CheckInvariants();
}

}  // namespace cot::core
