#include "core/space_saving_tracker.h"

#include <algorithm>
#include <cassert>

namespace cot::core {

namespace {
// Small and mid-size trackers reserve the index well past capacity so it
// runs at a very low load factor: every untracked arrival at capacity is
// an insert + a victim erase, and robin-hood backward-shift deletion gets
// cheaper the shorter the probe chains are — 4x slack halves the measured
// churn cost of the replace-the-minimum path. Past ~8K keys the trade
// flips: arrivals are a shrinking fraction of a skewed stream (more of
// the key space is tracked) while the inflated table stops fitting in L2,
// so every probe pays a deeper miss. There the index is sized to capacity
// only.
size_t IndexReserve(size_t capacity) {
  constexpr size_t kSlack = 4;
  constexpr size_t kSlackCeiling = 32768;  // max slots spent on slack
  return capacity * kSlack <= kSlackCeiling ? capacity * kSlack : capacity;
}
}  // namespace

SpaceSavingTracker::SpaceSavingTracker(size_t capacity, HotnessWeights weights)
    : capacity_(capacity), weights_(weights), heap_(capacity) {
  assert(capacity >= 1);
  index_.reserve(IndexReserve(capacity));
}

SpaceSavingTracker::TrackResult SpaceSavingTracker::TrackAccess(
    Key key, AccessType type) {
  TrackResult result;
  // One index probe covers "already tracked?" and, on a miss, places the
  // new entry (find_or_insert's slot stays valid across the victim erase
  // below — erase never relocates entries).
  auto [it, inserted] = index_.find_or_insert(key);
  if (!inserted) {
    // Tracked (the common case): exact counters and hotness live in the
    // node — update them and stop. The heap slot keeps its old priority as
    // a stale lower bound; only an access that *lowers* hotness must fix
    // the slot now (sift-up), or the lower-bound invariant would break.
    result.was_tracked = true;
    NodeId id = it->second;
    NodeState& node = heap_.AuxAt(id);
    node.counters.Record(type);
    double h = ComputeHotness(node.counters, weights_);
    // "Lowered" in the canonical packed order, so the eager-repair rule
    // below and the stale-slot invariant agree in every edge case.
    HotnessKey now{h, key};
    result.lowered = now < HotnessKey{node.hotness, key};
    node.hotness = h;
    if (result.lowered) {
      if (now < heap_.PriorityAt(id)) heap_.UpdateAt(id, now);
    } else {
      // A raise stays lazy in general, but when it cannot disturb heap
      // order at the node's current position (leaf, or still ≤ all
      // children — 3/4 of a 4-ary heap are leaves) the slot is re-stamped
      // exactly for free, so arrivals rarely find a stale root. Sifting
      // eagerly on the residual failures measured no better.
      heap_.TryRaiseInPlace(id, now);
    }
    result.hotness = h;
    result.id = id;
    result.owner_slot = node.owner_slot;
    return result;
  }
  if (heap_.size() >= capacity_) {
    // Full: the untracked key replaces the true minimum in place,
    // inheriting its counters — Algorithm 1 lines 2-4 ("benefit of the
    // doubt"). Consulting the minimum is what pays the deferred repairs.
    RepairTop();
    Heap::Id top = heap_.TopId();
    const NodeState& victim = heap_.AuxAt(top);
    result.evicted = heap_.KeyAt(top);
    result.evicted_hotness = victim.hotness;
    result.evicted_owner_slot = victim.owner_slot;
    KeyCounters inherited = victim.counters;
    inherited.Record(type);
    double h = ComputeHotness(inherited, weights_);
    index_.erase(*result.evicted);
    NodeId id =
        heap_.ReplaceTop(key, HotnessKey{h, key}, NodeState{inherited, h});
    it->second = id;
    result.hotness = h;
    result.id = id;
    return result;
  }
  KeyCounters counters;
  counters.Record(type);
  double h = ComputeHotness(counters, weights_);
  NodeId id = heap_.Push(key, HotnessKey{h, key}, NodeState{counters, h});
  it->second = id;
  result.hotness = h;
  result.id = id;
  return result;
}

void SpaceSavingTracker::RepairTop() const {
  // Every slot priority is a lower bound of its node's true (hotness, key).
  // Re-stamping the root with its true value and sifting down strictly
  // shrinks the dirty set, so this terminates; once the root is clean it is
  // the true minimum (see class comment for the proof).
  while (true) {
    Heap::Id top = heap_.TopId();
    HotnessKey want{heap_.AuxAt(top).hotness, heap_.KeyAt(top)};
    if (heap_.TopPriority() == want) return;
    heap_.UpdateAt(top, want);
  }
}

SpaceSavingTracker::EvictedKey SpaceSavingTracker::PopMin() {
  RepairTop();
  Heap::Id top = heap_.TopId();
  EvictedKey out{heap_.KeyAt(top), heap_.AuxAt(top).owner_slot};
  index_.erase(out.key);
  heap_.PopTop();
  return out;
}

std::optional<double> SpaceSavingTracker::HotnessOf(Key key) const {
  NodeId id = IdOf(key);
  if (id == kInvalidNode) return std::nullopt;
  return heap_.AuxAt(id).hotness;
}

std::optional<KeyCounters> SpaceSavingTracker::CountersOf(Key key) const {
  NodeId id = IdOf(key);
  if (id == kInvalidNode) return std::nullopt;
  return heap_.AuxAt(id).counters;
}

std::optional<double> SpaceSavingTracker::MinHotness() const {
  if (heap_.empty()) return std::nullopt;
  RepairTop();
  return heap_.TopPriority().hotness();
}

Status SpaceSavingTracker::Resize(size_t new_capacity,
                                  std::vector<Key>* evicted) {
  if (new_capacity < 1) {
    return Status::InvalidArgument("tracker capacity must be >= 1");
  }
  capacity_ = new_capacity;
  while (heap_.size() > capacity_) {
    EvictedKey victim = PopMin();
    if (evicted != nullptr) evicted->push_back(victim.key);
  }
  // Growing: pre-size for the new steady state so the expansion itself is
  // the only rehash (elastic expansion happens on the serving path).
  heap_.Reserve(capacity_);
  index_.reserve(IndexReserve(capacity_));
  return Status::OK();
}

Status SpaceSavingTracker::ResizeWithOwners(size_t new_capacity,
                                            std::vector<EvictedKey>* evicted) {
  if (new_capacity < 1) {
    return Status::InvalidArgument("tracker capacity must be >= 1");
  }
  capacity_ = new_capacity;
  while (heap_.size() > capacity_) {
    EvictedKey victim = PopMin();
    if (evicted != nullptr) evicted->push_back(victim);
  }
  heap_.Reserve(capacity_);
  index_.reserve(IndexReserve(capacity_));
  return Status::OK();
}

void SpaceSavingTracker::HalveAllHotness() {
  heap_.ForEachId([&](Heap::Id id) {
    NodeState& node = heap_.AuxAt(id);
    node.counters.Scale(0.5);
    node.hotness *= 0.5;
  });
  // Scaling preserves (hotness, key) order and keeps every stale lower
  // bound below its (also halved) true hotness.
  heap_.TransformPrioritiesMonotone(
      [](HotnessKey p) { return HotnessKey{p.hotness() * 0.5, p.key()}; });
}

void SpaceSavingTracker::Clear() {
  heap_.Clear();
  index_.clear();
}

SpaceSavingTracker::NodeId SpaceSavingTracker::Seed(
    Key key, const KeyCounters& counters) {
  double h = ComputeHotness(counters, weights_);
  NodeId id = IdOf(key);
  if (id != kInvalidNode) {
    NodeState& node = heap_.AuxAt(id);
    node.counters = counters;
    node.hotness = h;
    // A raise stays lazy; a lowered hotness must fix the slot eagerly to
    // keep the slot a lower bound.
    HotnessKey p{h, key};
    if (HotnessKeyLess{}(p, heap_.PriorityAt(id))) heap_.UpdateAt(id, p);
    return id;
  }
  if (heap_.size() >= capacity_) {
    RepairTop();
    // Space-saving keeps the hottest K keys: a seed colder than the
    // current minimum (by (hotness, key) order) is declined, not admitted
    // by evicting a hotter key.
    if (HotnessKeyLess{}(HotnessKey{h, key}, heap_.TopPriority())) {
      return kInvalidNode;
    }
    index_.erase(heap_.TopKey());
    id = heap_.ReplaceTop(key, HotnessKey{h, key}, NodeState{counters, h});
    index_[key] = id;
    return id;
  }
  id = heap_.Push(key, HotnessKey{h, key}, NodeState{counters, h});
  index_[key] = id;
  return id;
}

std::vector<std::pair<SpaceSavingTracker::Key, double>>
SpaceSavingTracker::SortedByHotnessDesc() const {
  std::vector<std::pair<Key, double>> out;
  out.reserve(heap_.size());
  ForEach([&](Key k, double h) { out.emplace_back(k, h); });
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

bool SpaceSavingTracker::CheckInvariants() const {
  if (heap_.size() > capacity_) return false;
  if (index_.size() != heap_.size()) return false;
  bool ok = true;
  heap_.ForEachId([&](Heap::Id id) {
    const NodeState& node = heap_.AuxAt(id);
    // Exact hotness must be derivable from the node's own counters.
    if (ComputeHotness(node.counters, weights_) != node.hotness) ok = false;
    // The slot is a stale lower bound: tagged with the node's own key and
    // never above the true (hotness, key).
    const HotnessKey& stale = heap_.PriorityAt(id);
    Key key = heap_.KeyAt(id);
    if (stale.key() != key) ok = false;
    if (HotnessKeyLess{}(HotnessKey{node.hotness, key}, stale)) ok = false;
    // Index round-trip.
    auto it = index_.find(key);
    if (it == index_.end() || it->second != id) ok = false;
  });
  return ok && heap_.CheckInvariants();
}

}  // namespace cot::core
