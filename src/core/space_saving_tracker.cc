#include "core/space_saving_tracker.h"

#include <algorithm>
#include <cassert>

namespace cot::core {

SpaceSavingTracker::SpaceSavingTracker(size_t capacity, HotnessWeights weights)
    : capacity_(capacity),
      weights_(weights),
      heap_(capacity),
      counters_(capacity) {
  assert(capacity >= 1);
}

SpaceSavingTracker::TrackResult SpaceSavingTracker::TrackAccess(
    Key key, AccessType type) {
  TrackResult result;
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    // Already tracked: update counters and reorder.
    result.was_tracked = true;
    it->second.Record(type);
    double h = ComputeHotness(it->second, weights_);
    heap_.Update(key, h);
    result.hotness = h;
    return result;
  }
  // Untracked key.
  KeyCounters inherited;
  if (heap_.size() >= capacity_) {
    // Replace the root (minimum hotness) and inherit its counters —
    // Algorithm 1 lines 2-4 ("benefit of the doubt").
    auto [victim, victim_hotness] = heap_.Pop();
    inherited = counters_[victim];
    counters_.erase(victim);
    result.evicted = victim;
  }
  inherited.Record(type);
  double h = ComputeHotness(inherited, weights_);
  counters_[key] = inherited;
  heap_.Push(key, h);
  result.hotness = h;
  return result;
}

std::optional<double> SpaceSavingTracker::HotnessOf(Key key) const {
  if (!heap_.Contains(key)) return std::nullopt;
  return heap_.PriorityOf(key);
}

std::optional<KeyCounters> SpaceSavingTracker::CountersOf(Key key) const {
  auto it = counters_.find(key);
  if (it == counters_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> SpaceSavingTracker::MinHotness() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.TopPriority();
}

Status SpaceSavingTracker::Resize(size_t new_capacity,
                                  std::vector<Key>* evicted) {
  if (new_capacity < 1) {
    return Status::InvalidArgument("tracker capacity must be >= 1");
  }
  capacity_ = new_capacity;
  while (heap_.size() > capacity_) {
    auto [victim, hotness] = heap_.Pop();
    counters_.erase(victim);
    if (evicted != nullptr) evicted->push_back(victim);
  }
  // Growing: pre-size for the new steady state so the expansion itself is
  // the only rehash (elastic expansion happens on the serving path).
  heap_.Reserve(capacity_);
  counters_.reserve(capacity_);
  return Status::OK();
}

void SpaceSavingTracker::HalveAllHotness() {
  for (auto& [key, counters] : counters_) counters.Scale(0.5);
  heap_.TransformPrioritiesMonotone([](double h) { return h * 0.5; });
}

void SpaceSavingTracker::Clear() {
  heap_.Clear();
  counters_.clear();
}

void SpaceSavingTracker::Seed(Key key, const KeyCounters& counters) {
  double h = ComputeHotness(counters, weights_);
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second = counters;
    heap_.Update(key, h);
    return;
  }
  if (heap_.size() >= capacity_) {
    auto [victim, victim_hotness] = heap_.Pop();
    counters_.erase(victim);
  }
  counters_[key] = counters;
  heap_.Push(key, h);
}

std::vector<std::pair<SpaceSavingTracker::Key, double>>
SpaceSavingTracker::SortedByHotnessDesc() const {
  std::vector<std::pair<Key, double>> out;
  out.reserve(heap_.size());
  heap_.ForEach([&](const Key& k, double h) { out.emplace_back(k, h); });
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

bool SpaceSavingTracker::CheckInvariants() const {
  if (heap_.size() != counters_.size()) return false;
  if (heap_.size() > capacity_) return false;
  bool ok = true;
  heap_.ForEach([&](const Key& k, double h) {
    auto it = counters_.find(k);
    if (it == counters_.end() ||
        ComputeHotness(it->second, weights_) != h) {
      ok = false;
    }
  });
  return ok && heap_.CheckInvariants();
}

}  // namespace cot::core
