#ifndef COT_CORE_HOTNESS_H_
#define COT_CORE_HOTNESS_H_

#include <cstdint>

namespace cot::core {

/// Access kinds distinguished by the dual-cost hotness model.
enum class AccessType : uint8_t {
  kRead = 0,
  kUpdate = 1,
};

/// Weights of the dual-cost hotness model (paper Equation 1, after
/// Dasgupta et al. 2017): reads add `read_weight`, updates subtract
/// `update_weight`, so frequently updated keys — whose cached copies are
/// repeatedly invalidated — are pushed out of caching consideration.
struct HotnessWeights {
  double read_weight = 1.0;
  double update_weight = 1.0;
};

/// Per-key access counters. Stored as doubles so that half-life decay
/// (multiplying by 0.5) composes exactly with the linear hotness formula.
struct KeyCounters {
  double read_count = 0.0;
  double update_count = 0.0;

  /// Applies one access of the given type.
  void Record(AccessType type) {
    if (type == AccessType::kRead) {
      read_count += 1.0;
    } else {
      update_count += 1.0;
    }
  }

  /// Scales both counters (half-life decay uses factor 0.5). Because the
  /// hotness formula is linear, scaling counters scales hotness by the same
  /// factor, preserving relative order of all keys.
  void Scale(double factor) {
    read_count *= factor;
    update_count *= factor;
  }
};

/// Hotness of a key under the dual-cost model:
/// `h = read_count * r_w - update_count * u_w` (Equation 1). May be
/// negative for update-dominated keys.
inline double ComputeHotness(const KeyCounters& counters,
                             const HotnessWeights& weights) {
  return counters.read_count * weights.read_weight -
         counters.update_count * weights.update_weight;
}

/// Order-preserving integer image of a finite double: for non-NaN a, b,
/// a < b implies PunHotness(a) < PunHotness(b) (the IEEE-754 sign-flip
/// trick). The only divergence from IEEE `<` is that -0.0 orders strictly
/// below +0.0 instead of comparing equal — an acceptable refinement, since
/// any consistent total order over (hotness, key) is a valid victim rule.
inline uint64_t PunHotness(double h) {
  uint64_t u;
  __builtin_memcpy(&u, &h, sizeof u);
  return (u >> 63) ? ~u : (u | (uint64_t{1} << 63));
}

/// Inverse of PunHotness (exact round-trip).
inline double UnpunHotness(uint64_t u) {
  u = (u >> 63) ? (u & ~(uint64_t{1} << 63)) : ~u;
  double h;
  __builtin_memcpy(&h, &u, sizeof h);
  return h;
}

/// Compound min-heap priority used by the tracker and the CoT cache heap:
/// hotness first, the key itself as a deterministic tie-break (among
/// equally cold keys, the smallest key is the victim). A *total* order
/// makes victim selection a pure function of tracked state — independent
/// of the heap's internal layout history — which is what lets the lazily
/// maintained production heaps be proven decision-for-decision equivalent
/// to an O(n)-scan reference implementation. Admission decisions compare
/// hotness alone (Algorithm 2's strict `>`); the tie-break only selects
/// *which* of the equally cold keys goes.
///
/// Stored as a single 128-bit integer — punned hotness in the high word,
/// key in the low word — so the lexicographic compare that dominates heap
/// sifting is one branch-free integer comparison instead of a
/// double-compare / branch / key-compare chain. Counter inheritance packs
/// the tracked tail into a handful of hotness values, so sift compares hit
/// the tie-break constantly; resolving it in the same compare instruction
/// (not a second branch) is worth ~2x on the replace-the-minimum path.
class HotnessKey {
 public:
  constexpr HotnessKey() = default;
  HotnessKey(double hotness, uint64_t key)
      : bits_((static_cast<unsigned __int128>(PunHotness(hotness)) << 64) |
              key) {}

  double hotness() const {
    return UnpunHotness(static_cast<uint64_t>(bits_ >> 64));
  }
  uint64_t key() const { return static_cast<uint64_t>(bits_); }

  friend bool operator<(const HotnessKey& a, const HotnessKey& b) {
    return a.bits_ < b.bits_;
  }
  friend bool operator==(const HotnessKey& a, const HotnessKey& b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(const HotnessKey& a, const HotnessKey& b) {
    return a.bits_ != b.bits_;
  }

 private:
  unsigned __int128 bits_ = 0;
};

struct HotnessKeyLess {
  bool operator()(const HotnessKey& a, const HotnessKey& b) const {
    return a < b;
  }
};

}  // namespace cot::core

#endif  // COT_CORE_HOTNESS_H_
