#ifndef COT_CORE_HOTNESS_H_
#define COT_CORE_HOTNESS_H_

#include <cstdint>

namespace cot::core {

/// Access kinds distinguished by the dual-cost hotness model.
enum class AccessType : uint8_t {
  kRead = 0,
  kUpdate = 1,
};

/// Weights of the dual-cost hotness model (paper Equation 1, after
/// Dasgupta et al. 2017): reads add `read_weight`, updates subtract
/// `update_weight`, so frequently updated keys — whose cached copies are
/// repeatedly invalidated — are pushed out of caching consideration.
struct HotnessWeights {
  double read_weight = 1.0;
  double update_weight = 1.0;
};

/// Per-key access counters. Stored as doubles so that half-life decay
/// (multiplying by 0.5) composes exactly with the linear hotness formula.
struct KeyCounters {
  double read_count = 0.0;
  double update_count = 0.0;

  /// Applies one access of the given type.
  void Record(AccessType type) {
    if (type == AccessType::kRead) {
      read_count += 1.0;
    } else {
      update_count += 1.0;
    }
  }

  /// Scales both counters (half-life decay uses factor 0.5). Because the
  /// hotness formula is linear, scaling counters scales hotness by the same
  /// factor, preserving relative order of all keys.
  void Scale(double factor) {
    read_count *= factor;
    update_count *= factor;
  }
};

/// Hotness of a key under the dual-cost model:
/// `h = read_count * r_w - update_count * u_w` (Equation 1). May be
/// negative for update-dominated keys.
inline double ComputeHotness(const KeyCounters& counters,
                             const HotnessWeights& weights) {
  return counters.read_count * weights.read_weight -
         counters.update_count * weights.update_weight;
}

}  // namespace cot::core

#endif  // COT_CORE_HOTNESS_H_
