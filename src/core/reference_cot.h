#ifndef COT_CORE_REFERENCE_COT_H_
#define COT_CORE_REFERENCE_COT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/cache.h"
#include "core/cot_cache.h"
#include "core/hotness.h"
#include "util/status.h"

namespace cot::core {

/// O(n)-scan reference model of `SpaceSavingTracker`: a flat vector of
/// (key, counters) entries, every minimum found by a full linear scan under
/// the same total (hotness, key) order the production tracker uses. No
/// heap, no index, no laziness — each decision is a direct transcription of
/// Algorithm 1 plus the victim tie-break rule, which makes the
/// implementation obviously correct by inspection.
///
/// This is the oracle of the lockstep differential suite
/// (`cot_lockstep_differential_test.cc`): the production tracker's lazy
/// deferred-sift maintenance must reproduce this model's hit/eviction/
/// export sequences decision-for-decision. It is NOT for production use —
/// every operation is O(K).
class ReferenceSpaceSavingTracker {
 public:
  using Key = uint64_t;

  explicit ReferenceSpaceSavingTracker(
      size_t capacity, HotnessWeights weights = HotnessWeights{});

  /// Mirrors `SpaceSavingTracker::TrackResult` minus the production-only
  /// handle fields (node id, owner slots).
  struct TrackResult {
    double hotness = 0.0;
    std::optional<Key> evicted;
    double evicted_hotness = 0.0;
    bool was_tracked = false;
    bool lowered = false;
  };

  TrackResult TrackAccess(Key key, AccessType type);

  bool Contains(Key key) const { return FindIndex(key) != kNotFound; }
  std::optional<double> HotnessOf(Key key) const;
  std::optional<KeyCounters> CountersOf(Key key) const;
  std::optional<double> MinHotness() const;

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  const HotnessWeights& weights() const { return weights_; }

  /// Shrinks by repeatedly removing the (hotness, key) minimum.
  Status Resize(size_t new_capacity, std::vector<Key>* evicted = nullptr);

  void HalveAllHotness();
  void Clear() { entries_.clear(); }

  /// Same decision rule as `SpaceSavingTracker::Seed`: overwrite when
  /// tracked, push when not full, otherwise replace the minimum unless the
  /// seed is (hotness, key)-colder than it (declined). Returns whether the
  /// key is tracked afterwards.
  bool Seed(Key key, const KeyCounters& counters);

  std::vector<std::pair<Key, double>> SortedByHotnessDesc() const;

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e.key, e.hotness);
  }

  bool CheckInvariants() const;

 private:
  struct Entry {
    Key key = 0;
    KeyCounters counters;
    double hotness = 0.0;
  };

  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  size_t FindIndex(Key key) const;
  /// Index of the (hotness, key)-minimum entry; entries_ must be non-empty.
  size_t MinIndex() const;

  size_t capacity_;
  HotnessWeights weights_;
  std::vector<Entry> entries_;
};

/// O(n)-scan reference model of `CotCache`: the same admission, eviction,
/// invalidation, epoch-accounting, resize, decay, and warm-handoff
/// decision rules as the production cache, implemented over the reference
/// tracker and a flat vector of resident lines. Residency is a linear
/// scan; the coldest resident is a full scan under (hotness, key) order.
/// The production cache's single-probe layout and lazy heaps must
/// reproduce this model exactly — `Get` results, all `CacheStats` and
/// `EpochStats` counters, and `ExportState` sequences included.
class ReferenceCotCache : public cache::Cache {
 public:
  using Key = cache::Key;
  using Value = cache::Value;
  using EpochStats = CotCache::EpochStats;
  using ExportedKey = CotCache::ExportedKey;

  explicit ReferenceCotCache(const CotCacheConfig& config);
  ReferenceCotCache(size_t cache_capacity, size_t tracker_capacity);

  std::optional<Value> Get(Key key) override;
  void Put(Key key, Value value) override;
  void Invalidate(Key key) override;
  bool Contains(Key key) const override {
    return LineIndex(key) != kNotFound;
  }
  size_t size() const override { return lines_.size(); }
  size_t capacity() const override { return cache_capacity_; }
  Status Resize(size_t new_capacity) override;
  std::string name() const override { return "cot-reference"; }

  Status ResizeTracker(size_t new_tracker_capacity);
  size_t tracker_capacity() const { return tracker_.capacity(); }
  size_t tracker_size() const { return tracker_.size(); }
  const ReferenceSpaceSavingTracker& tracker() const { return tracker_; }

  std::optional<double> MinCachedHotness() const;
  void HalveAllHotness();

  const EpochStats& epoch_stats() const { return epoch_; }
  void ResetEpochStats() { epoch_ = EpochStats(); }

  std::vector<ExportedKey> ExportState() const;
  void ImportState(const std::vector<ExportedKey>& state);

  bool CheckInvariants() const;

 private:
  struct Line {
    Key key = 0;
    Value value = 0;
  };

  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  size_t LineIndex(Key key) const;
  /// Index of the (hotness, key)-coldest line; lines_ must be non-empty.
  size_t ColdestLineIndex() const;
  void DropIfResident(const std::optional<Key>& evicted);

  size_t cache_capacity_;
  ReferenceSpaceSavingTracker tracker_;
  std::vector<Line> lines_;
  EpochStats epoch_;
};

}  // namespace cot::core

#endif  // COT_CORE_REFERENCE_COT_H_
