#ifndef COT_CORE_SPACE_SAVING_TRACKER_H_
#define COT_CORE_SPACE_SAVING_TRACKER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/hotness.h"
#include "util/flat_hash_map.h"
#include "util/min_heap_core.h"
#include "util/status.h"

namespace cot::core {

/// Heavy-hitter tracker implementing the space-saving algorithm (Metwally,
/// Agrawal & El Abbadi, ICDT 2005) extended with the paper's dual-cost
/// hotness model — Algorithm 1 of the paper.
///
/// The tracker maintains at most K keys ordered by hotness with an O(1)
/// hash index. When an untracked key arrives and the tracker is full, it
/// *replaces* the minimum-hotness key and inherits that key's counters
/// ("benefit of the doubt"), the signature move of space-saving: the
/// reported hotness of any tracked key overestimates its true hotness by
/// at most the smallest hotness that was ever evicted, and any key whose
/// true share exceeds 1/K is guaranteed to be tracked in steady state.
///
/// ## Lazy hotness maintenance
///
/// The common access — a read of an already-tracked key — is O(1): it
/// updates the node's exact counters and hotness and *leaves the heap
/// untouched*. The heap slot keeps the key's previous (smaller) priority as
/// a stale **lower bound**; the node is then "dirty". Heap order is
/// repaired only when the minimum is actually consulted (untracked arrival
/// at capacity, `MinHotness`, shrink, seeding at capacity): `RepairTop`
/// re-stamps the root with its true hotness and sifts down, repeating until
/// the root is clean. A clean root is provably the true minimum: stale ≤
/// true for every node, so root.stale ≤ min(stale) ≤ min(true), and a clean
/// root has root.true = root.stale ≤ every true. Accesses that *lower*
/// hotness (updates; reads under a negative read weight) fix their slot
/// eagerly — a sift-up — because a slot above the true value would break
/// the lower-bound invariant. A key accessed M times between repairs thus
/// pays one sift instead of M.
///
/// Victim selection is totally ordered by (hotness, key) — among equally
/// cold keys the smallest key goes — so eviction sequences are a pure
/// function of the tracked state, independent of heap layout history, and
/// provably equal to the O(n)-scan `ReferenceSpaceSavingTracker`.
///
/// ## Owner slots
///
/// Each node carries an opaque `owner_slot` (the CoT cache stores its
/// cache-heap node id there). This merges the tracker index and the cache
/// residency table: one hash probe resolves counters, hotness, heap
/// position, and residency, and tracker evictions hand the owner the
/// victim's slot so dependent state is dropped without any further probe.
class SpaceSavingTracker {
 public:
  using Key = uint64_t;
  /// Stable per-key node handle, valid while the key stays tracked.
  using NodeId = uint32_t;
  static constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
  /// `owner_slot` value meaning "no owner state attached".
  static constexpr uint32_t kNoOwner = static_cast<uint32_t>(-1);

  /// Creates a tracker for at most `capacity` keys.
  explicit SpaceSavingTracker(size_t capacity,
                              HotnessWeights weights = HotnessWeights{});

  /// Result of recording one access.
  struct TrackResult {
    /// Hotness of the accessed key after the access.
    double hotness = 0.0;
    /// Key evicted from the tracker to make room, if any. The owner (the
    /// CoT cache) uses this to preserve the invariant that cached keys
    /// remain tracked.
    std::optional<Key> evicted;
    /// Hotness the evicted key held at eviction (the tracker minimum).
    double evicted_hotness = 0.0;
    /// True if the key was already tracked before this access.
    bool was_tracked = false;
    /// True when this access lowered the key's hotness (an update, or a
    /// read under a negative read weight). The owner must then re-sync any
    /// dependent lazy ordering eagerly — lazy maintenance tolerates only
    /// raises.
    bool lowered = false;
    /// Node id of the accessed key (always valid).
    NodeId id = kInvalidNode;
    /// Owner slot of the accessed key (unchanged by this call).
    uint32_t owner_slot = kNoOwner;
    /// Owner slot the evicted key held, `kNoOwner` when nothing was evicted
    /// or the victim carried no owner state. Lets the owner drop dependent
    /// state probe-free.
    uint32_t evicted_owner_slot = kNoOwner;
  };

  /// Records one access to `key` — Algorithm 1 (`track_key`). If the key is
  /// untracked it is admitted, replacing (and inheriting the counters of)
  /// the minimum-hotness key when full. The access then updates the key's
  /// counters per the dual-cost model; heap order is maintained lazily (see
  /// class comment).
  TrackResult TrackAccess(Key key, AccessType type);

  /// True if `key` is currently tracked.
  bool Contains(Key key) const { return index_.count(key) != 0; }

  /// Hotness of `key`; `nullopt` when untracked.
  std::optional<double> HotnessOf(Key key) const;

  /// Counters of `key`; `nullopt` when untracked (test/diagnostic hook).
  std::optional<KeyCounters> CountersOf(Key key) const;

  /// Minimum hotness among tracked keys; `nullopt` when empty. Repairs the
  /// heap root (amortized against the accesses that dirtied it).
  std::optional<double> MinHotness() const;

  // --- handle (NodeId) surface --------------------------------------------
  // One probe (TrackAccess or IdOf) buys a stable node id; everything below
  // is array indexing. The CoT cache runs its whole access path on ids.

  /// Node id of `key`, or `kInvalidNode` when untracked.
  NodeId IdOf(Key key) const {
    auto it = index_.find(key);
    return it == index_.end() ? kInvalidNode : it->second;
  }
  /// Key of a valid node id.
  Key KeyAt(NodeId id) const { return heap_.KeyAt(id); }
  /// Exact hotness of a valid node id (never stale).
  double HotnessAt(NodeId id) const { return heap_.AuxAt(id).hotness; }
  /// Counters of a valid node id.
  const KeyCounters& CountersAt(NodeId id) const {
    return heap_.AuxAt(id).counters;
  }
  /// Owner slot of a valid node id.
  uint32_t OwnerSlotAt(NodeId id) const { return heap_.AuxAt(id).owner_slot; }
  /// Attaches/clears the owner slot of a valid node id.
  void SetOwnerSlot(NodeId id, uint32_t owner_slot) {
    heap_.AuxAt(id).owner_slot = owner_slot;
  }

  /// Number of tracked keys.
  size_t size() const { return heap_.size(); }
  /// Maximum number of tracked keys.
  size_t capacity() const { return capacity_; }
  /// The hotness weights in effect.
  const HotnessWeights& weights() const { return weights_; }

  /// One key evicted by a shrink, with the owner slot it carried.
  struct EvictedKey {
    Key key = 0;
    uint32_t owner_slot = kNoOwner;
  };

  /// Elastically resizes the tracker. Shrinking evicts the coldest keys
  /// first and reports them (so the owner can drop dependent state);
  /// `new_capacity` must be >= 1.
  Status Resize(size_t new_capacity, std::vector<Key>* evicted = nullptr);

  /// `Resize` variant reporting evicted keys together with their owner
  /// slots, so the owner's drops are probe-free.
  Status ResizeWithOwners(size_t new_capacity,
                          std::vector<EvictedKey>* evicted);

  /// Half-life decay: halves every key's counters (and therefore hotness).
  /// Order-preserving, O(n), no re-heapification — scaling by 0.5 keeps
  /// stale lower bounds below true hotness and preserves (hotness, key)
  /// order. Used by the resizer's Case 2 (hot-set turnover) to retire
  /// stale trends.
  void HalveAllHotness();

  /// Removes every tracked key.
  void Clear();

  /// Directly installs `key` with the given counters (overwriting if
  /// already tracked; replacing the minimum-hotness key if full — but only
  /// when the seeded key is at least as hot, by (hotness, key) order, as
  /// that minimum; a colder seed is declined). This is NOT part of the
  /// space-saving algorithm — it exists for warm handoff
  /// (CotCache::ImportState) and tests, where counters from a previous
  /// instance must be restored without replaying the access stream.
  /// Returns the key's node id, or `kInvalidNode` when declined.
  NodeId Seed(Key key, const KeyCounters& counters);

  /// Returns the tracked keys sorted hottest-first (O(n log n); for tests,
  /// reports and the perfect-cache oracle construction).
  std::vector<std::pair<Key, double>> SortedByHotnessDesc() const;

  /// Visits every (key, exact hotness) pair in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    heap_.ForEachId(
        [&](Heap::Id id) { fn(heap_.KeyAt(id), heap_.AuxAt(id).hotness); });
  }

  /// Verifies heap/index consistency and the lazy-maintenance invariant
  /// (every slot's stale priority ≤ the node's true (hotness, key), hotness
  /// derivable from counters); O(n). Test hook.
  bool CheckInvariants() const;

 private:
  /// Exact per-key state living in the heap node; the heap slot's priority
  /// is a possibly stale lower bound of {hotness, key}.
  struct NodeState {
    KeyCounters counters;
    double hotness = 0.0;
    uint32_t owner_slot = kNoOwner;
  };

  /// Index-free heap core; the key -> node-id index lives in `index_` so
  /// one probe serves membership, counters, hotness, and owner residency.
  using Heap = MinHeapCore<Key, HotnessKey, HotnessKeyLess, NodeState>;

  /// Re-stamps the root with its true priority and sifts down until the
  /// root is clean (then provably the true (hotness, key) minimum). Const
  /// because consulting the minimum is logically read-only; the heap is
  /// mutable for exactly this repair.
  void RepairTop() const;

  /// Evicts the true-minimum key; returns it with its owner slot. Heap
  /// must be non-empty.
  EvictedKey PopMin();

  size_t capacity_;
  HotnessWeights weights_;
  mutable Heap heap_;
  /// Key -> node id. Ids are stable, so sifting never touches this map.
  FlatHashMap<Key, uint32_t> index_;
};

}  // namespace cot::core

#endif  // COT_CORE_SPACE_SAVING_TRACKER_H_
