#ifndef COT_CORE_SPACE_SAVING_TRACKER_H_
#define COT_CORE_SPACE_SAVING_TRACKER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/hotness.h"
#include "util/indexed_min_heap.h"
#include "util/status.h"

namespace cot::core {

/// Heavy-hitter tracker implementing the space-saving algorithm (Metwally,
/// Agrawal & El Abbadi, ICDT 2005) extended with the paper's dual-cost
/// hotness model — Algorithm 1 of the paper.
///
/// The tracker maintains at most K keys in a min-heap ordered by hotness
/// with an O(1) hash index. When an untracked key arrives and the tracker
/// is full, it *replaces* the minimum-hotness key and inherits that key's
/// counters ("benefit of the doubt"), the signature move of space-saving:
/// the reported hotness of any tracked key overestimates its true hotness
/// by at most the smallest hotness that was ever evicted, and any key whose
/// true share exceeds 1/K is guaranteed to be tracked in steady state.
///
/// The tracker is the metadata backbone of CoT: it costs 16 bytes of
/// counters per tracked key (plus index overhead), never stores values, and
/// supports O(n)-amortized elastic resizing and O(n) half-life decay.
class SpaceSavingTracker {
 public:
  using Key = uint64_t;

  /// Creates a tracker for at most `capacity` keys.
  explicit SpaceSavingTracker(size_t capacity,
                              HotnessWeights weights = HotnessWeights{});

  /// Result of recording one access.
  struct TrackResult {
    /// Hotness of the accessed key after the access.
    double hotness = 0.0;
    /// Key evicted from the tracker to make room, if any. The owner (the
    /// CoT cache) uses this to preserve the invariant that cached keys
    /// remain tracked.
    std::optional<Key> evicted;
    /// Hotness the evicted key held at eviction (the tracker minimum).
    /// Lets the owner prove the victim cannot be cached — a cached key's
    /// cache priority equals its tracker hotness, so an eviction hotness
    /// strictly below the cache's minimum needs no cache probe at all.
    double evicted_hotness = 0.0;
    /// True if the key was already tracked before this access.
    bool was_tracked = false;
  };

  /// Records one access to `key` — Algorithm 1 (`track_key`). If the key is
  /// untracked it is admitted, replacing (and inheriting the counters of)
  /// the minimum-hotness key when full. The access then updates the key's
  /// counters per the dual-cost model and reorders the heap.
  TrackResult TrackAccess(Key key, AccessType type);

  /// True if `key` is currently tracked.
  bool Contains(Key key) const { return heap_.Contains(key); }

  /// Hotness of `key`; `nullopt` when untracked.
  std::optional<double> HotnessOf(Key key) const;

  /// Counters of `key`; `nullopt` when untracked (test/diagnostic hook).
  std::optional<KeyCounters> CountersOf(Key key) const;

  /// Minimum hotness among tracked keys; `nullopt` when empty.
  std::optional<double> MinHotness() const;

  /// Number of tracked keys.
  size_t size() const { return heap_.size(); }
  /// Maximum number of tracked keys.
  size_t capacity() const { return capacity_; }
  /// The hotness weights in effect.
  const HotnessWeights& weights() const { return weights_; }

  /// Elastically resizes the tracker. Shrinking evicts the coldest keys
  /// first and reports them (so the owner can drop dependent state);
  /// `new_capacity` must be >= 1.
  Status Resize(size_t new_capacity, std::vector<Key>* evicted = nullptr);

  /// Half-life decay: halves every key's counters (and therefore hotness).
  /// Order-preserving, O(n), no re-heapification. Used by the resizer's
  /// Case 2 (hot-set turnover) to retire stale trends.
  void HalveAllHotness();

  /// Removes every tracked key.
  void Clear();

  /// Directly installs `key` with the given counters (overwriting if
  /// already tracked; evicting the minimum-hotness key if full). This is
  /// NOT part of the space-saving algorithm — it exists for warm handoff
  /// (CotCache::ImportState) and tests, where counters from a previous
  /// instance must be restored without replaying the access stream.
  void Seed(Key key, const KeyCounters& counters);

  /// Returns the tracked keys sorted hottest-first (O(n log n); for tests,
  /// reports and the perfect-cache oracle construction).
  std::vector<std::pair<Key, double>> SortedByHotnessDesc() const;

  /// Visits every (key, hotness) pair in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    heap_.ForEach([&](const Key& k, double h) { fn(k, h); });
  }

  /// Verifies heap/index consistency (O(n); test hook).
  bool CheckInvariants() const;

 private:
  /// Min-heap by hotness whose nodes carry the key's counters as aux
  /// payload: one hash probe per access reaches counters, hotness, and the
  /// heap position alike (the former parallel counters map cost a second
  /// probe on every single access).
  using Heap = IndexedMinHeap<Key, double, std::less<double>, KeyCounters>;

  size_t capacity_;
  HotnessWeights weights_;
  Heap heap_;  // priority = hotness, aux = counters
};

}  // namespace cot::core

#endif  // COT_CORE_SPACE_SAVING_TRACKER_H_
