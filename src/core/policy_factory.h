#ifndef COT_CORE_POLICY_FACTORY_H_
#define COT_CORE_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/cache.h"
#include "util/status.h"

namespace cot::core {

/// Names every replacement policy this library ships, for tools, benches
/// and config files. "none" is accepted and yields a null cache (the
/// cacheless front-end baseline).
const std::vector<std::string>& PolicyNames();

/// Instantiates a replacement policy by name:
///
///   "none"  -> null (no front-end cache)
///   "lru"   -> LruCache
///   "lfu"   -> LfuCache
///   "arc"   -> ArcCache
///   "lru-2" -> LrukCache with history = tracker_ratio * capacity
///   "2q"    -> TwoQCache
///   "mq"    -> MqCache
///   "cot"   -> CotCache with tracker = tracker_ratio * capacity
///
/// `tracker_ratio` only affects the history/tracker-bearing policies; the
/// paper always configures CoT's tracker and LRU-2's history equally.
/// Unknown names fail with kInvalidArgument.
StatusOr<std::unique_ptr<cache::Cache>> MakePolicy(std::string_view name,
                                                   size_t capacity,
                                                   size_t tracker_ratio = 4);

}  // namespace cot::core

#endif  // COT_CORE_POLICY_FACTORY_H_
