#include "core/cot_cache.h"

#include <algorithm>
#include <cassert>

namespace cot::core {

namespace {

size_t EffectiveTrackerCapacity(size_t cache_capacity,
                                size_t tracker_capacity) {
  size_t minimum = std::max<size_t>(1, 2 * cache_capacity);
  return std::max(tracker_capacity, minimum);
}

}  // namespace

CotCache::CotCache(const CotCacheConfig& config)
    : cache_capacity_(config.cache_capacity),
      tracker_(EffectiveTrackerCapacity(config.cache_capacity,
                                        config.tracker_capacity),
               config.weights),
      cache_heap_(config.cache_capacity) {}

CotCache::CotCache(size_t cache_capacity, size_t tracker_capacity)
    : CotCache(CotCacheConfig{cache_capacity, tracker_capacity,
                              HotnessWeights{}}) {}

std::optional<cache::Value> CotCache::Get(Key key) {
  ++epoch_.accesses;
  // The ONE hash probe of the access: membership, counters, hotness, and
  // residency all come back from the tracker node.
  SpaceSavingTracker::TrackResult tracked =
      tracker_.TrackAccess(key, AccessType::kRead);
  RememberTracked(key, tracked.id);
  DropEvicted(tracked);
  if (tracked.owner_slot != SpaceSavingTracker::kNoOwner) {
    // Resident: a plain read leaves the cache heap untouched (the slot
    // keeps a stale lower bound); only a hotness *drop* (negative read
    // weight) must sync the slot eagerly. Raises stay fully lazy here —
    // the cache-heap root is the *coldest* resident, so reads rarely
    // dirty it and RepairCacheTop stays cheap without per-hit upkeep
    // (measured: leaf-refreshing on hits cost ~10ns on the pure-hit path
    // for no gain on the mixed path).
    if (tracked.lowered) SyncLoweredSlot(tracked.owner_slot, tracked.hotness, key);
    ++stats_.hits;
    ++epoch_.cache_hits;
    return cache_heap_.AuxAt(tracked.owner_slot).value;
  }
  if (tracked.was_tracked) ++epoch_.tracker_only_hits;
  ++stats_.misses;
  return std::nullopt;
}

void CotCache::Put(Key key, Value value) {
  if (cache_capacity_ == 0) return;
  // Ensure the key is tracked (Get normally guarantees this; a direct Put
  // records a read access). In the read-through sequence Get(key) →
  // Put(key) the memo short-circuits the tracker probe entirely.
  SpaceSavingTracker::NodeId id;
  if (last_tracked_valid_ && last_tracked_key_ == key) {
    id = last_tracked_id_;
  } else {
    id = tracker_.IdOf(key);
  }
  if (id == SpaceSavingTracker::kInvalidNode) {
    SpaceSavingTracker::TrackResult tracked =
        tracker_.TrackAccess(key, AccessType::kRead);
    RememberTracked(key, tracked.id);
    DropEvicted(tracked);
    id = tracked.id;
  }
  double hotness = tracker_.HotnessAt(id);
  uint32_t slot = tracker_.OwnerSlotAt(id);
  if (slot != SpaceSavingTracker::kNoOwner) {
    // Already resident: refresh the value. The slot's stale bound is
    // already ≤ the (only ever lazily raised) hotness.
    cache_heap_.AuxAt(slot).value = std::move(value);
    return;
  }
  if (cache_heap_.size() < cache_capacity_) {
    AdmitToCache(key, std::move(value), hotness, id);
    return;
  }
  // Admission filter (Algorithm 2, line 6): only keys hotter than the
  // coldest cached key displace it. The filter compares hotness alone; the
  // (hotness, key) order picks which of the equally cold residents goes.
  RepairCacheTop();
  if (hotness > cache_heap_.TopPriority().hotness()) {
    uint32_t victim_slot = cache_heap_.TopId();
    tracker_.SetOwnerSlot(cache_heap_.AuxAt(victim_slot).tracker_id,
                          SpaceSavingTracker::kNoOwner);
    ++stats_.evictions;
    uint32_t new_slot = cache_heap_.ReplaceTop(key, HotnessKey{hotness, key},
                                               CacheNode{std::move(value), id});
    tracker_.SetOwnerSlot(id, new_slot);
    ++stats_.insertions;
  }
  // Otherwise decline: the cache keeps its hotter resident set.
}

void CotCache::Invalidate(Key key) {
  ++epoch_.accesses;
  // Updates lower hotness under the dual-cost model (the tracker syncs its
  // own slot eagerly).
  SpaceSavingTracker::TrackResult tracked =
      tracker_.TrackAccess(key, AccessType::kUpdate);
  RememberTracked(key, tracked.id);
  DropEvicted(tracked);
  if (tracked.owner_slot != SpaceSavingTracker::kNoOwner) {
    DropCacheSlot(tracked.owner_slot);
    tracker_.SetOwnerSlot(tracked.id, SpaceSavingTracker::kNoOwner);
    ++stats_.invalidations;
  }
}

Status CotCache::Resize(size_t new_capacity) {
  ForgetTracked();
  cache_capacity_ = new_capacity;
  cache_heap_.Reserve(cache_capacity_);
  while (cache_heap_.size() > cache_capacity_) {
    RepairCacheTop();
    uint32_t victim_slot = cache_heap_.TopId();
    tracker_.SetOwnerSlot(cache_heap_.AuxAt(victim_slot).tracker_id,
                          SpaceSavingTracker::kNoOwner);
    DropCacheSlot(victim_slot);
    ++stats_.evictions;
  }
  // Maintain K >= 2C.
  size_t min_tracker = std::max<size_t>(1, 2 * cache_capacity_);
  if (tracker_.capacity() < min_tracker) {
    return tracker_.Resize(min_tracker);
  }
  return Status::OK();
}

Status CotCache::ResizeTracker(size_t new_tracker_capacity) {
  ForgetTracked();
  size_t minimum = std::max<size_t>(1, 2 * cache_capacity_);
  if (new_tracker_capacity < minimum) {
    return Status::InvalidArgument(
        "tracker capacity must be >= max(2 * cache capacity, 1)");
  }
  std::vector<SpaceSavingTracker::EvictedKey> evicted;
  Status s = tracker_.ResizeWithOwners(new_tracker_capacity, &evicted);
  if (!s.ok()) return s;
  for (const SpaceSavingTracker::EvictedKey& victim : evicted) {
    if (victim.owner_slot != SpaceSavingTracker::kNoOwner) {
      DropCacheSlot(victim.owner_slot);
    }
  }
  return Status::OK();
}

std::optional<double> CotCache::MinCachedHotness() const {
  if (cache_heap_.empty()) return std::nullopt;
  RepairCacheTop();
  return cache_heap_.TopPriority().hotness();
}

void CotCache::RepairCacheTop() const {
  // Mirror of SpaceSavingTracker::RepairTop over the cache heap: slot
  // priorities are stale lower bounds of the tracker-side true hotness;
  // re-stamping the root until clean makes it the true coldest resident.
  while (true) {
    uint32_t top = cache_heap_.TopId();
    double true_hotness =
        tracker_.HotnessAt(cache_heap_.AuxAt(top).tracker_id);
    HotnessKey want{true_hotness, cache_heap_.KeyAt(top)};
    if (cache_heap_.TopPriority() == want) return;
    cache_heap_.UpdateAt(top, want);
  }
}

void CotCache::HalveAllHotness() {
  ForgetTracked();
  tracker_.HalveAllHotness();
  cache_heap_.TransformPrioritiesMonotone(
      [](HotnessKey p) { return HotnessKey{p.hotness() * 0.5, p.key()}; });
}

void CotCache::AdmitToCache(Key key, Value value, double hotness,
                            SpaceSavingTracker::NodeId id) {
  uint32_t slot = cache_heap_.Push(key, HotnessKey{hotness, key},
                                   CacheNode{std::move(value), id});
  tracker_.SetOwnerSlot(id, slot);
  ++stats_.insertions;
}

std::vector<CotCache::ExportedKey> CotCache::ExportState() const {
  std::vector<ExportedKey> out;
  out.reserve(tracker_.size());
  for (const auto& [key, hotness] : tracker_.SortedByHotnessDesc()) {
    SpaceSavingTracker::NodeId id = tracker_.IdOf(key);
    ExportedKey exported;
    exported.key = key;
    exported.counters = tracker_.CountersAt(id);
    uint32_t slot = tracker_.OwnerSlotAt(id);
    if (slot != SpaceSavingTracker::kNoOwner) {
      exported.value = cache_heap_.AuxAt(slot).value;
    }
    out.push_back(exported);
  }
  return out;
}

void CotCache::ImportState(const std::vector<ExportedKey>& state) {
  ForgetTracked();
  tracker_.Clear();
  cache_heap_.Clear();
  // State is hottest-first; fill the tracker up to K and the cache up to
  // C from the hottest cached entries.
  for (const ExportedKey& entry : state) {
    if (tracker_.size() >= tracker_.capacity()) break;
    SpaceSavingTracker::NodeId id = tracker_.Seed(entry.key, entry.counters);
    if (id == SpaceSavingTracker::kInvalidNode) continue;
    if (entry.value.has_value() && cache_heap_.size() < cache_capacity_) {
      AdmitToCache(entry.key, *entry.value, tracker_.HotnessAt(id), id);
    }
  }
}

bool CotCache::CheckInvariants() const {
  if (cache_heap_.size() > cache_capacity_) return false;
  if (tracker_.capacity() < std::max<size_t>(1, 2 * cache_capacity_)) {
    return false;
  }
  bool ok = true;
  size_t owned = 0;
  // S_c ⊆ S_k with exact owner-slot cross-links, and every cache slot a
  // valid stale lower bound of the tracker-side hotness.
  cache_heap_.ForEachId([&](uint32_t slot) {
    Key key = cache_heap_.KeyAt(slot);
    SpaceSavingTracker::NodeId id = cache_heap_.AuxAt(slot).tracker_id;
    SpaceSavingTracker::NodeId by_key = tracker_.IdOf(key);
    if (by_key == SpaceSavingTracker::kInvalidNode || by_key != id ||
        tracker_.OwnerSlotAt(id) != slot) {
      ok = false;
      return;
    }
    const HotnessKey& stale = cache_heap_.PriorityAt(slot);
    if (stale.key() != key) ok = false;
    if (HotnessKeyLess{}(HotnessKey{tracker_.HotnessAt(id), key}, stale)) {
      ok = false;
    }
  });
  // Owner slots on tracker nodes must point back into live cache nodes —
  // counting both directions proves the mapping is a bijection.
  tracker_.ForEach([&](Key key, double) {
    SpaceSavingTracker::NodeId id = tracker_.IdOf(key);
    if (tracker_.OwnerSlotAt(id) != SpaceSavingTracker::kNoOwner) ++owned;
  });
  if (owned != cache_heap_.size()) ok = false;
  return ok && cache_heap_.CheckInvariants() && tracker_.CheckInvariants();
}

}  // namespace cot::core
