#include "core/cot_cache.h"

#include <algorithm>
#include <cassert>

namespace cot::core {

namespace {

size_t EffectiveTrackerCapacity(size_t cache_capacity,
                                size_t tracker_capacity) {
  size_t minimum = std::max<size_t>(1, 2 * cache_capacity);
  return std::max(tracker_capacity, minimum);
}

}  // namespace

CotCache::CotCache(const CotCacheConfig& config)
    : cache_capacity_(config.cache_capacity),
      read_skip_ok_(config.weights.read_weight >= 0.0),
      tracker_(EffectiveTrackerCapacity(config.cache_capacity,
                                        config.tracker_capacity),
               config.weights),
      cache_heap_(config.cache_capacity) {}

CotCache::CotCache(size_t cache_capacity, size_t tracker_capacity)
    : CotCache(CotCacheConfig{cache_capacity, tracker_capacity,
                              HotnessWeights{}}) {}

std::optional<cache::Value> CotCache::Get(Key key) {
  ++epoch_.accesses;
  SpaceSavingTracker::TrackResult tracked =
      tracker_.TrackAccess(key, AccessType::kRead);
  RememberTracked(key, tracked.hotness);
  MaybeDropEvicted(tracked);

  // Cached priorities mirror tracker hotness, so a hotness strictly below
  // the cache's minimum proves the key is not resident — no index probe
  // needed. Valid only when the read we just recorded cannot have lowered
  // the hotness (read_weight >= 0, the normal configuration): then
  // new-hotness < min implies pre-access hotness < min as well.
  if (read_skip_ok_ &&
      (cache_heap_.empty() || tracked.hotness < cache_heap_.TopPriority())) {
    if (tracked.was_tracked) ++epoch_.tracker_only_hits;
    ++stats_.misses;
    return std::nullopt;
  }

  CacheHeap::Id id = cache_heap_.IdOf(key);
  if (id != CacheHeap::kInvalidId) {
    // Cache hit: refresh the key's hotness in the cache heap. The node id
    // stays valid across the sift, so the value is read without a second
    // probe.
    cache_heap_.UpdateAt(id, tracked.hotness);
    ++stats_.hits;
    ++epoch_.cache_hits;
    return cache_heap_.AuxAt(id);
  }
  if (tracked.was_tracked) ++epoch_.tracker_only_hits;
  ++stats_.misses;
  return std::nullopt;
}

void CotCache::Put(Key key, Value value) {
  if (cache_capacity_ == 0) return;
  // Ensure the key is tracked (Get normally guarantees this; a direct Put
  // records a read access). In the read-through sequence Get(key) →
  // Put(key) the memo short-circuits the tracker probe entirely.
  std::optional<double> hotness;
  if (last_tracked_valid_ && last_tracked_key_ == key) {
    hotness = last_tracked_hotness_;
  } else {
    hotness = tracker_.HotnessOf(key);
  }
  if (!hotness.has_value()) {
    SpaceSavingTracker::TrackResult tracked =
        tracker_.TrackAccess(key, AccessType::kRead);
    RememberTracked(key, tracked.hotness);
    MaybeDropEvicted(tracked);
    hotness = tracked.hotness;
  }
  // A hotness strictly below the cache's minimum priority proves the key is
  // not resident (cached priorities mirror tracker hotness), so the index
  // probe is skipped: a free line admits directly, a full cache has already
  // failed the admission filter and declines with zero probes.
  if (!cache_heap_.empty() && *hotness < cache_heap_.TopPriority()) {
    if (cache_heap_.size() >= cache_capacity_) return;
    AdmitToCache(key, std::move(value), *hotness);
    return;
  }
  CacheHeap::Id id = cache_heap_.IdOf(key);
  if (id != CacheHeap::kInvalidId) {
    cache_heap_.AuxAt(id) = value;
    cache_heap_.UpdateAt(id, *hotness);
    return;
  }
  if (cache_heap_.size() < cache_capacity_) {
    AdmitToCache(key, value, *hotness);
    return;
  }
  // Admission filter (Algorithm 2, line 6): only keys hotter than the
  // coldest cached key displace it.
  assert(!cache_heap_.empty());
  if (*hotness > cache_heap_.TopPriority()) {
    Key victim = cache_heap_.TopKey();
    DropFromCache(victim);
    ++stats_.evictions;
    AdmitToCache(key, value, *hotness);
  }
  // Otherwise decline: the cache keeps its hotter resident set.
}

void CotCache::Invalidate(Key key) {
  ++epoch_.accesses;
  // Updates lower hotness under the dual-cost model.
  SpaceSavingTracker::TrackResult tracked =
      tracker_.TrackAccess(key, AccessType::kUpdate);
  RememberTracked(key, tracked.hotness);
  MaybeDropEvicted(tracked);
  if (cache_heap_.Contains(key)) {
    DropFromCache(key);
    ++stats_.invalidations;
  }
}

Status CotCache::Resize(size_t new_capacity) {
  ForgetTracked();
  cache_capacity_ = new_capacity;
  cache_heap_.Reserve(cache_capacity_);
  while (cache_heap_.size() > cache_capacity_) {
    Key victim = cache_heap_.TopKey();
    DropFromCache(victim);
    ++stats_.evictions;
  }
  // Maintain K >= 2C.
  size_t min_tracker = std::max<size_t>(1, 2 * cache_capacity_);
  if (tracker_.capacity() < min_tracker) {
    return tracker_.Resize(min_tracker);
  }
  return Status::OK();
}

Status CotCache::ResizeTracker(size_t new_tracker_capacity) {
  ForgetTracked();
  size_t minimum = std::max<size_t>(1, 2 * cache_capacity_);
  if (new_tracker_capacity < minimum) {
    return Status::InvalidArgument(
        "tracker capacity must be >= max(2 * cache capacity, 1)");
  }
  std::vector<Key> evicted;
  Status s = tracker_.Resize(new_tracker_capacity, &evicted);
  if (!s.ok()) return s;
  for (Key key : evicted) DropFromCache(key);
  return Status::OK();
}

std::optional<double> CotCache::MinCachedHotness() const {
  if (cache_heap_.empty()) return std::nullopt;
  return cache_heap_.TopPriority();
}

void CotCache::HalveAllHotness() {
  ForgetTracked();
  tracker_.HalveAllHotness();
  cache_heap_.TransformPrioritiesMonotone([](double h) { return h * 0.5; });
}

void CotCache::AdmitToCache(Key key, Value value, double hotness) {
  cache_heap_.Push(key, hotness, std::move(value));
  ++stats_.insertions;
}

void CotCache::DropFromCache(Key key) { cache_heap_.Erase(key); }

void CotCache::MaybeDropEvicted(
    const SpaceSavingTracker::TrackResult& tracked) {
  if (!tracked.evicted.has_value()) return;
  if (cache_heap_.empty() ||
      tracked.evicted_hotness < cache_heap_.TopPriority()) {
    return;  // provably not resident — no probe needed
  }
  DropFromCache(*tracked.evicted);
}

std::vector<CotCache::ExportedKey> CotCache::ExportState() const {
  std::vector<ExportedKey> out;
  out.reserve(tracker_.size());
  for (const auto& [key, hotness] : tracker_.SortedByHotnessDesc()) {
    ExportedKey exported;
    exported.key = key;
    exported.counters = tracker_.CountersOf(key).value();
    CacheHeap::Id id = cache_heap_.IdOf(key);
    if (id != CacheHeap::kInvalidId) exported.value = cache_heap_.AuxAt(id);
    out.push_back(exported);
  }
  return out;
}

void CotCache::ImportState(const std::vector<ExportedKey>& state) {
  ForgetTracked();
  tracker_.Clear();
  cache_heap_.Clear();
  // State is hottest-first; fill the tracker up to K and the cache up to
  // C from the hottest cached entries.
  for (const ExportedKey& entry : state) {
    if (tracker_.size() >= tracker_.capacity()) break;
    tracker_.Seed(entry.key, entry.counters);
    if (entry.value.has_value() && cache_heap_.size() < cache_capacity_) {
      AdmitToCache(entry.key, *entry.value,
                   tracker_.HotnessOf(entry.key).value());
    }
  }
}

bool CotCache::CheckInvariants() const {
  if (cache_heap_.size() > cache_capacity_) return false;
  if (tracker_.capacity() < std::max<size_t>(1, 2 * cache_capacity_)) {
    return false;
  }
  bool ok = true;
  // S_c ⊆ S_k and cache-heap hotness mirrors the tracker.
  cache_heap_.ForEach([&](const Key& k, double h) {
    auto tracked = tracker_.HotnessOf(k);
    if (!tracked.has_value() || *tracked != h) ok = false;
  });
  return ok && cache_heap_.CheckInvariants() && tracker_.CheckInvariants();
}

}  // namespace cot::core
