#ifndef COT_CORE_COT_CACHE_H_
#define COT_CORE_COT_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/cache.h"
#include "core/hotness.h"
#include "core/space_saving_tracker.h"
#include "util/indexed_min_heap.h"
#include "util/status.h"

namespace cot::core {

/// Configuration of a `CotCache`.
struct CotCacheConfig {
  /// Number of cache-lines (C). May be 0: a tracked-but-cacheless front-end
  /// (the elastic minimum under uniform workloads).
  size_t cache_capacity = 64;
  /// Number of tracked keys (K). The paper maintains K >= 2C; the
  /// constructor enforces K >= max(2*C, 1).
  size_t tracker_capacity = 128;
  /// Dual-cost hotness weights (Equation 1).
  HotnessWeights weights{};
};

/// Cache-on-Track replacement policy (paper Section 4, Algorithm 2).
///
/// A `CotCache` couples a space-saving tracker of K keys with a min-heap
/// cache of C < K entries, both ordered by dual-cost hotness. Every access
/// first updates the tracker; a missed key is admitted into the cache only
/// when its tracked hotness exceeds `h_min`, the hotness at the cache-heap
/// root. The cache therefore always holds the *exact* top-C keys of the
/// (approximate) top-K tracked keys — cold and noisy keys from the long
/// tail cannot displace resident heavy hitters, which is what lets a tiny
/// front-end cache behave near-perfectly on skewed workloads.
///
/// Epoch accounting: the cache counts hits on cached keys (S_c) and on
/// tracked-but-not-cached keys (S_{k-c}) since the last `ResetEpochStats`,
/// feeding the resizer's `alpha_c` / `alpha_{k-c}` signals (Algorithm 3).
///
/// Invariant: every cached key is tracked (S_c is a subset of S_k). If the
/// tracker ever evicts a cached key (possible under update-heavy hotness
/// collapse or tracker shrinking), the key is dropped from the cache too.
class CotCache : public cache::Cache {
 public:
  using Key = cache::Key;
  using Value = cache::Value;

  /// Creates a CoT cache. `tracker_capacity` is raised to `2 *
  /// cache_capacity` if configured lower (the paper's K >= 2C rule) and to
  /// at least 1.
  explicit CotCache(const CotCacheConfig& config);

  /// Convenience constructor: capacity C with tracker `ratio * C`.
  CotCache(size_t cache_capacity, size_t tracker_capacity);

  // --- cache::Cache interface -------------------------------------------

  /// Algorithm 2, read path: records a read in the tracker, then serves
  /// from the local cache when resident (updating the key's position in the
  /// cache heap). On a miss the caller fetches from the back-end and offers
  /// the value via `Put`.
  std::optional<Value> Get(Key key) override;

  /// Algorithm 2, admission path: caches (`key`, `value`) iff the cache has
  /// a free line or the key's tracked hotness exceeds `h_min` (evicting the
  /// coldest cached key). Unlike classic policies, `Put` may decline.
  void Put(Key key, Value value) override;

  /// Update path: records an *update* access in the tracker (decreasing the
  /// key's hotness per the dual-cost model) and invalidates any resident
  /// copy.
  void Invalidate(Key key) override;

  bool Contains(Key key) const override { return cache_heap_.Contains(key); }
  size_t size() const override { return cache_heap_.size(); }
  size_t capacity() const override { return cache_capacity_; }

  /// Elastic resize of the cache (C). Shrinking evicts coldest-first.
  /// Raises the tracker capacity to maintain K >= 2C when needed.
  Status Resize(size_t new_capacity) override;

  std::string name() const override { return "cot"; }

  // --- CoT-specific surface ----------------------------------------------

  /// Elastic resize of the tracker (K). Rejects K < max(2C, 1). Shrinking
  /// evicts the tracker's coldest keys; cached keys among them are dropped
  /// from the cache to preserve S_c ⊆ S_k.
  Status ResizeTracker(size_t new_tracker_capacity);

  /// Tracker capacity (K).
  size_t tracker_capacity() const { return tracker_.capacity(); }
  /// Number of tracked keys.
  size_t tracker_size() const { return tracker_.size(); }
  /// Read-only view of the tracker.
  const SpaceSavingTracker& tracker() const { return tracker_; }

  /// `h_min`: hotness of the coldest cached key; `nullopt` when the cache
  /// is empty.
  std::optional<double> MinCachedHotness() const;

  /// Half-life decay of all tracked and cached hotness (resizer Case 2).
  void HalveAllHotness();

  /// Epoch counters for the resizer: hits on cached keys (S_c) and on
  /// tracked-but-not-cached keys (S_{k-c}) since the last reset.
  struct EpochStats {
    uint64_t cache_hits = 0;
    uint64_t tracker_only_hits = 0;
    uint64_t accesses = 0;

    /// Average hits per cache-line, `alpha_c` (0 when C == 0).
    double AlphaC(size_t cache_capacity) const {
      if (cache_capacity == 0) return 0.0;
      return static_cast<double>(cache_hits) /
             static_cast<double>(cache_capacity);
    }
    /// Average hits per tracked-not-cached line, `alpha_{k-c}`.
    double AlphaKc(size_t tracker_capacity, size_t cache_capacity) const {
      if (tracker_capacity <= cache_capacity) return 0.0;
      return static_cast<double>(tracker_only_hits) /
             static_cast<double>(tracker_capacity - cache_capacity);
    }
  };
  const EpochStats& epoch_stats() const { return epoch_; }
  void ResetEpochStats() { epoch_ = EpochStats(); }

  /// One tracked key's state, as exported for warm handoff.
  struct ExportedKey {
    Key key = 0;
    KeyCounters counters;
    /// Present (and meaningful) iff the key was cached.
    std::optional<Value> value;
  };

  /// Exports the full tracker+cache state, hottest first. Together with
  /// `ImportState` this supports the cloud-migration flexibility the paper
  /// motivates (Section 4): a front-end instance about to be migrated or
  /// recycled hands its hot-key knowledge to its replacement instead of
  /// paying the warm-up all over again.
  std::vector<ExportedKey> ExportState() const;

  /// Rebuilds tracker and cache from an exported state (clearing current
  /// content first). Entries beyond this instance's capacities are dropped
  /// coldest-first; cached values beyond C are demoted to tracked-only.
  /// Counter/epoch statistics are not transferred.
  void ImportState(const std::vector<ExportedKey>& state);

  /// Verifies all structural invariants (S_c ⊆ S_k, heap orders, size
  /// bounds); O(n log n). Test hook.
  bool CheckInvariants() const;

 private:
  /// Inserts into the cache heap + value map, evicting the root if full.
  void AdmitToCache(Key key, Value value, double hotness);
  /// Drops `key` from cache structures if resident.
  void DropFromCache(Key key);
  /// Drops a tracker-evicted key from the cache — but only after proving it
  /// could be resident: a cached key's priority equals its tracker hotness,
  /// and the victim held the tracker minimum, so an eviction hotness
  /// strictly below the cache's own minimum skips the probe entirely.
  void MaybeDropEvicted(const SpaceSavingTracker::TrackResult& tracked);

  /// Memo of the most recent tracker access: `Put(key)` directly after
  /// `Get(key)` — the universal read-through sequence — reuses the hotness
  /// that `Get` already computed instead of re-probing the tracker. Valid
  /// because hotness only changes through tracker mutations, and every
  /// mutation path either overwrites the memo (TrackAccess) or clears it
  /// (resize, decay, import).
  void RememberTracked(Key key, double hotness) {
    last_tracked_key_ = key;
    last_tracked_hotness_ = hotness;
    last_tracked_valid_ = true;
  }
  void ForgetTracked() { last_tracked_valid_ = false; }

  /// Min-heap by hotness whose nodes carry the cached value as aux
  /// payload: the hit path pays one hash probe to reach value, hotness,
  /// and heap position (the former parallel value map cost a second one).
  using CacheHeap = IndexedMinHeap<Key, double, std::less<double>, Value>;

  size_t cache_capacity_;
  /// True when reads cannot lower hotness (read_weight >= 0, the normal
  /// configuration). Gates the Get fast path: post-read hotness below the
  /// cache minimum then proves pre-read hotness was below it too, i.e. the
  /// key is not resident and the index probe can be skipped.
  bool read_skip_ok_;
  SpaceSavingTracker tracker_;
  CacheHeap cache_heap_;  // priority = hotness, aux = value
  EpochStats epoch_;
  Key last_tracked_key_ = 0;
  double last_tracked_hotness_ = 0.0;
  bool last_tracked_valid_ = false;
};

}  // namespace cot::core

#endif  // COT_CORE_COT_CACHE_H_
