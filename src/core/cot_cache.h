#ifndef COT_CORE_COT_CACHE_H_
#define COT_CORE_COT_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/cache.h"
#include "core/hotness.h"
#include "core/space_saving_tracker.h"
#include "util/min_heap_core.h"
#include "util/status.h"

namespace cot::core {

/// Configuration of a `CotCache`.
struct CotCacheConfig {
  /// Number of cache-lines (C). May be 0: a tracked-but-cacheless front-end
  /// (the elastic minimum under uniform workloads).
  size_t cache_capacity = 64;
  /// Number of tracked keys (K). The paper maintains K >= 2C; the
  /// constructor enforces K >= max(2*C, 1).
  size_t tracker_capacity = 128;
  /// Dual-cost hotness weights (Equation 1).
  HotnessWeights weights{};
};

/// Cache-on-Track replacement policy (paper Section 4, Algorithm 2).
///
/// A `CotCache` couples a space-saving tracker of K keys with a min-heap
/// cache of C < K entries, both ordered by dual-cost hotness. Every access
/// first updates the tracker; a missed key is admitted into the cache only
/// when its tracked hotness exceeds `h_min`, the hotness of the coldest
/// cached key. The cache therefore always holds the *exact* top-C keys of
/// the (approximate) top-K tracked keys — cold and noisy keys from the long
/// tail cannot displace resident heavy hitters, which is what lets a tiny
/// front-end cache behave near-perfectly on skewed workloads.
///
/// ## Single-probe metadata
///
/// Residency lives on the tracker node: each tracked key carries an
/// `owner_slot` holding its cache-heap node id (or none). `Get` therefore
/// pays exactly ONE hash probe — the tracker access — and resolves
/// counters, hotness, heap position, and residency from it; the cache heap
/// itself is an index-free `MinHeapCore` whose nodes carry the value and a
/// back-reference to the tracker node. Tracker evictions report the
/// victim's owner slot, so dropping a cached victim is probe-free too.
///
/// ## Lazy cache-heap maintenance
///
/// Like the tracker's heap (see `SpaceSavingTracker`), cache slot
/// priorities are stale (hotness, key) lower bounds: a hit raises only the
/// node's tracked hotness, while accesses that lower hotness fix the slot
/// eagerly. `h_min` consultations (admission at capacity, shrink,
/// `MinCachedHotness`) first repair the root, which is then provably the
/// true coldest resident. Victim selection uses the same total
/// (hotness, key) order as the tracker, so eviction sequences match the
/// O(n)-scan `ReferenceCotCache` decision-for-decision.
///
/// Epoch accounting: the cache counts hits on cached keys (S_c) and on
/// tracked-but-not-cached keys (S_{k-c}) since the last `ResetEpochStats`,
/// feeding the resizer's `alpha_c` / `alpha_{k-c}` signals (Algorithm 3).
///
/// Invariant: every cached key is tracked (S_c is a subset of S_k). If the
/// tracker ever evicts a cached key (possible under update-heavy hotness
/// collapse or tracker shrinking), the key is dropped from the cache too.
class CotCache : public cache::Cache {
 public:
  using Key = cache::Key;
  using Value = cache::Value;

  /// Creates a CoT cache. `tracker_capacity` is raised to `2 *
  /// cache_capacity` if configured lower (the paper's K >= 2C rule) and to
  /// at least 1.
  explicit CotCache(const CotCacheConfig& config);

  /// Convenience constructor: capacity C with tracker capacity K.
  CotCache(size_t cache_capacity, size_t tracker_capacity);

  // --- cache::Cache interface -------------------------------------------

  /// Algorithm 2, read path: records a read in the tracker, then serves
  /// from the local cache when resident. One hash probe total (see class
  /// comment). On a miss the caller fetches from the back-end and offers
  /// the value via `Put`.
  std::optional<Value> Get(Key key) override;

  /// Algorithm 2, admission path: caches (`key`, `value`) iff the cache has
  /// a free line or the key's tracked hotness exceeds `h_min` (evicting the
  /// coldest cached key). Unlike classic policies, `Put` may decline.
  void Put(Key key, Value value) override;

  /// Update path: records an *update* access in the tracker (decreasing the
  /// key's hotness per the dual-cost model) and invalidates any resident
  /// copy.
  void Invalidate(Key key) override;

  bool Contains(Key key) const override {
    SpaceSavingTracker::NodeId id = tracker_.IdOf(key);
    return id != SpaceSavingTracker::kInvalidNode &&
           tracker_.OwnerSlotAt(id) != SpaceSavingTracker::kNoOwner;
  }
  size_t size() const override { return cache_heap_.size(); }
  size_t capacity() const override { return cache_capacity_; }

  /// Elastic resize of the cache (C). Shrinking evicts coldest-first.
  /// Raises the tracker capacity to maintain K >= 2C when needed.
  Status Resize(size_t new_capacity) override;

  std::string name() const override { return "cot"; }

  // --- CoT-specific surface ----------------------------------------------

  /// Elastic resize of the tracker (K). Rejects K < max(2C, 1). Shrinking
  /// evicts the tracker's coldest keys; cached keys among them are dropped
  /// from the cache to preserve S_c ⊆ S_k.
  Status ResizeTracker(size_t new_tracker_capacity);

  /// Tracker capacity (K).
  size_t tracker_capacity() const { return tracker_.capacity(); }
  /// Number of tracked keys.
  size_t tracker_size() const { return tracker_.size(); }
  /// Read-only view of the tracker.
  const SpaceSavingTracker& tracker() const { return tracker_; }

  /// `h_min`: hotness of the coldest cached key; `nullopt` when the cache
  /// is empty. Repairs the cache-heap root (amortized against the hits
  /// that dirtied it).
  std::optional<double> MinCachedHotness() const;

  /// Half-life decay of all tracked and cached hotness (resizer Case 2).
  void HalveAllHotness();

  /// Epoch counters for the resizer: hits on cached keys (S_c) and on
  /// tracked-but-not-cached keys (S_{k-c}) since the last reset.
  struct EpochStats {
    uint64_t cache_hits = 0;
    uint64_t tracker_only_hits = 0;
    uint64_t accesses = 0;

    /// Average hits per cache-line, `alpha_c` (0 when C == 0).
    double AlphaC(size_t cache_capacity) const {
      if (cache_capacity == 0) return 0.0;
      return static_cast<double>(cache_hits) /
             static_cast<double>(cache_capacity);
    }
    /// Average hits per tracked-not-cached line, `alpha_{k-c}`.
    double AlphaKc(size_t tracker_capacity, size_t cache_capacity) const {
      if (tracker_capacity <= cache_capacity) return 0.0;
      return static_cast<double>(tracker_only_hits) /
             static_cast<double>(tracker_capacity - cache_capacity);
    }
  };
  const EpochStats& epoch_stats() const { return epoch_; }
  void ResetEpochStats() { epoch_ = EpochStats(); }

  /// One tracked key's state, as exported for warm handoff.
  struct ExportedKey {
    Key key = 0;
    KeyCounters counters;
    /// Present (and meaningful) iff the key was cached.
    std::optional<Value> value;
  };

  /// Exports the full tracker+cache state, hottest first. Together with
  /// `ImportState` this supports the cloud-migration flexibility the paper
  /// motivates (Section 4): a front-end instance about to be migrated or
  /// recycled hands its hot-key knowledge to its replacement instead of
  /// paying the warm-up all over again.
  std::vector<ExportedKey> ExportState() const;

  /// Rebuilds tracker and cache from an exported state (clearing current
  /// content first). Entries beyond this instance's capacities are dropped
  /// coldest-first; cached values beyond C are demoted to tracked-only.
  /// Counter/epoch statistics are not transferred.
  void ImportState(const std::vector<ExportedKey>& state);

  /// Verifies all structural invariants (S_c ⊆ S_k, owner-slot
  /// cross-links, heap orders, stale-lower-bound property, size bounds);
  /// O(n log n). Test hook.
  bool CheckInvariants() const;

 private:
  /// Cache-heap node payload: the cached value plus a back-reference to
  /// the key's tracker node (for probe-free victim owner-slot clearing and
  /// true-hotness reads during repair).
  struct CacheNode {
    Value value = 0;
    SpaceSavingTracker::NodeId tracker_id = SpaceSavingTracker::kInvalidNode;
  };

  /// Index-free min-heap by stale (hotness, key) lower bounds; residency
  /// is recorded on the tracker node (`owner_slot`), so this heap needs no
  /// key index of its own.
  using CacheHeap = MinHeapCore<Key, HotnessKey, HotnessKeyLess, CacheNode>;

  /// Pushes a new cache node for tracker node `id` and records residency.
  void AdmitToCache(Key key, Value value, double hotness,
                    SpaceSavingTracker::NodeId id);
  /// Erases the cache node `slot` (the owning tracker node is gone or is
  /// cleared by the caller).
  void DropCacheSlot(uint32_t slot) { cache_heap_.EraseAt(slot); }
  /// Applies a tracker eviction to the cache: if the victim was resident,
  /// its cache node is dropped — by slot, no probe.
  void DropEvicted(const SpaceSavingTracker::TrackResult& tracked) {
    if (tracked.evicted_owner_slot != SpaceSavingTracker::kNoOwner) {
      DropCacheSlot(tracked.evicted_owner_slot);
    }
  }
  /// A hit that lowered hotness must eagerly lower the cache slot too, to
  /// keep it a valid lower bound.
  void SyncLoweredSlot(uint32_t slot, double hotness, Key key) {
    HotnessKey p{hotness, key};
    if (HotnessKeyLess{}(p, cache_heap_.PriorityAt(slot))) {
      cache_heap_.UpdateAt(slot, p);
    }
  }
  /// Re-stamps the cache-heap root with its true hotness (read off the
  /// tracker node) until clean; the root is then the true coldest
  /// resident. Const for `MinCachedHotness`; the heap is mutable for
  /// exactly this repair.
  void RepairCacheTop() const;

  /// Memo of the most recent tracker access: `Put(key)` directly after
  /// `Get(key)` — the universal read-through sequence — reuses the node id
  /// that `Get` already resolved instead of re-probing the tracker. Valid
  /// because node ids are stable while a key stays tracked, and every
  /// path that could untrack the key either overwrites the memo
  /// (TrackAccess) or clears it (resize, decay, import).
  void RememberTracked(Key key, SpaceSavingTracker::NodeId id) {
    last_tracked_key_ = key;
    last_tracked_id_ = id;
    last_tracked_valid_ = true;
  }
  void ForgetTracked() { last_tracked_valid_ = false; }

  size_t cache_capacity_;
  SpaceSavingTracker tracker_;
  mutable CacheHeap cache_heap_;
  EpochStats epoch_;
  Key last_tracked_key_ = 0;
  SpaceSavingTracker::NodeId last_tracked_id_ = 0;
  bool last_tracked_valid_ = false;
};

}  // namespace cot::core

#endif  // COT_CORE_COT_CACHE_H_
