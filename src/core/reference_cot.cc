#include "core/reference_cot.h"

#include <algorithm>
#include <cassert>

namespace cot::core {

// --- ReferenceSpaceSavingTracker -------------------------------------------

ReferenceSpaceSavingTracker::ReferenceSpaceSavingTracker(
    size_t capacity, HotnessWeights weights)
    : capacity_(capacity), weights_(weights) {
  assert(capacity >= 1);
}

size_t ReferenceSpaceSavingTracker::FindIndex(Key key) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].key == key) return i;
  }
  return kNotFound;
}

size_t ReferenceSpaceSavingTracker::MinIndex() const {
  assert(!entries_.empty());
  size_t best = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (HotnessKeyLess{}(HotnessKey{entries_[i].hotness, entries_[i].key},
                         HotnessKey{entries_[best].hotness,
                                    entries_[best].key})) {
      best = i;
    }
  }
  return best;
}

ReferenceSpaceSavingTracker::TrackResult
ReferenceSpaceSavingTracker::TrackAccess(Key key, AccessType type) {
  TrackResult result;
  size_t i = FindIndex(key);
  if (i != kNotFound) {
    result.was_tracked = true;
    Entry& e = entries_[i];
    e.counters.Record(type);
    double h = ComputeHotness(e.counters, weights_);
    // Same canonical packed order the production tracker uses, so the
    // `lowered` flag matches bit-for-bit in every edge case.
    result.lowered =
        HotnessKeyLess{}(HotnessKey{h, key}, HotnessKey{e.hotness, key});
    e.hotness = h;
    result.hotness = h;
    return result;
  }
  if (entries_.size() >= capacity_) {
    // Replace the (hotness, key)-minimum, inheriting its counters.
    size_t victim = MinIndex();
    Entry& e = entries_[victim];
    result.evicted = e.key;
    result.evicted_hotness = e.hotness;
    e.key = key;
    e.counters.Record(type);
    e.hotness = ComputeHotness(e.counters, weights_);
    result.hotness = e.hotness;
    return result;
  }
  Entry e;
  e.key = key;
  e.counters.Record(type);
  e.hotness = ComputeHotness(e.counters, weights_);
  result.hotness = e.hotness;
  entries_.push_back(e);
  return result;
}

std::optional<double> ReferenceSpaceSavingTracker::HotnessOf(Key key) const {
  size_t i = FindIndex(key);
  if (i == kNotFound) return std::nullopt;
  return entries_[i].hotness;
}

std::optional<KeyCounters> ReferenceSpaceSavingTracker::CountersOf(
    Key key) const {
  size_t i = FindIndex(key);
  if (i == kNotFound) return std::nullopt;
  return entries_[i].counters;
}

std::optional<double> ReferenceSpaceSavingTracker::MinHotness() const {
  if (entries_.empty()) return std::nullopt;
  return entries_[MinIndex()].hotness;
}

Status ReferenceSpaceSavingTracker::Resize(size_t new_capacity,
                                           std::vector<Key>* evicted) {
  if (new_capacity < 1) {
    return Status::InvalidArgument("tracker capacity must be >= 1");
  }
  capacity_ = new_capacity;
  while (entries_.size() > capacity_) {
    size_t victim = MinIndex();
    if (evicted != nullptr) evicted->push_back(entries_[victim].key);
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(victim));
  }
  return Status::OK();
}

void ReferenceSpaceSavingTracker::HalveAllHotness() {
  for (Entry& e : entries_) {
    e.counters.Scale(0.5);
    e.hotness *= 0.5;
  }
}

bool ReferenceSpaceSavingTracker::Seed(Key key, const KeyCounters& counters) {
  double h = ComputeHotness(counters, weights_);
  size_t i = FindIndex(key);
  if (i != kNotFound) {
    entries_[i].counters = counters;
    entries_[i].hotness = h;
    return true;
  }
  if (entries_.size() >= capacity_) {
    size_t victim = MinIndex();
    if (HotnessKeyLess{}(HotnessKey{h, key},
                         HotnessKey{entries_[victim].hotness,
                                    entries_[victim].key})) {
      return false;  // colder than the current minimum: declined
    }
    entries_[victim] = Entry{key, counters, h};
    return true;
  }
  entries_.push_back(Entry{key, counters, h});
  return true;
}

std::vector<std::pair<ReferenceSpaceSavingTracker::Key, double>>
ReferenceSpaceSavingTracker::SortedByHotnessDesc() const {
  std::vector<std::pair<Key, double>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.emplace_back(e.key, e.hotness);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

bool ReferenceSpaceSavingTracker::CheckInvariants() const {
  if (entries_.size() > capacity_) return false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (ComputeHotness(entries_[i].counters, weights_) !=
        entries_[i].hotness) {
      return false;
    }
    for (size_t j = i + 1; j < entries_.size(); ++j) {
      if (entries_[i].key == entries_[j].key) return false;
    }
  }
  return true;
}

// --- ReferenceCotCache -----------------------------------------------------

namespace {

size_t EffectiveTrackerCapacity(size_t cache_capacity,
                                size_t tracker_capacity) {
  size_t minimum = std::max<size_t>(1, 2 * cache_capacity);
  return std::max(tracker_capacity, minimum);
}

}  // namespace

ReferenceCotCache::ReferenceCotCache(const CotCacheConfig& config)
    : cache_capacity_(config.cache_capacity),
      tracker_(EffectiveTrackerCapacity(config.cache_capacity,
                                        config.tracker_capacity),
               config.weights) {}

ReferenceCotCache::ReferenceCotCache(size_t cache_capacity,
                                     size_t tracker_capacity)
    : ReferenceCotCache(CotCacheConfig{cache_capacity, tracker_capacity,
                                       HotnessWeights{}}) {}

size_t ReferenceCotCache::LineIndex(Key key) const {
  for (size_t i = 0; i < lines_.size(); ++i) {
    if (lines_[i].key == key) return i;
  }
  return kNotFound;
}

size_t ReferenceCotCache::ColdestLineIndex() const {
  assert(!lines_.empty());
  size_t best = 0;
  double best_h = tracker_.HotnessOf(lines_[0].key).value();
  for (size_t i = 1; i < lines_.size(); ++i) {
    double h = tracker_.HotnessOf(lines_[i].key).value();
    if (HotnessKeyLess{}(HotnessKey{h, lines_[i].key},
                         HotnessKey{best_h, lines_[best].key})) {
      best = i;
      best_h = h;
    }
  }
  return best;
}

void ReferenceCotCache::DropIfResident(const std::optional<Key>& evicted) {
  if (!evicted.has_value()) return;
  size_t i = LineIndex(*evicted);
  if (i != kNotFound) {
    lines_.erase(lines_.begin() + static_cast<ptrdiff_t>(i));
  }
}

std::optional<cache::Value> ReferenceCotCache::Get(Key key) {
  ++epoch_.accesses;
  auto tracked = tracker_.TrackAccess(key, AccessType::kRead);
  DropIfResident(tracked.evicted);
  size_t i = LineIndex(key);
  if (i != kNotFound) {
    ++stats_.hits;
    ++epoch_.cache_hits;
    return lines_[i].value;
  }
  if (tracked.was_tracked) ++epoch_.tracker_only_hits;
  ++stats_.misses;
  return std::nullopt;
}

void ReferenceCotCache::Put(Key key, Value value) {
  if (cache_capacity_ == 0) return;
  std::optional<double> hotness = tracker_.HotnessOf(key);
  if (!hotness.has_value()) {
    auto tracked = tracker_.TrackAccess(key, AccessType::kRead);
    DropIfResident(tracked.evicted);
    hotness = tracked.hotness;
  }
  size_t i = LineIndex(key);
  if (i != kNotFound) {
    lines_[i].value = value;
    return;
  }
  if (lines_.size() < cache_capacity_) {
    lines_.push_back(Line{key, value});
    ++stats_.insertions;
    return;
  }
  // Admission filter: strictly hotter than the coldest resident (hotness
  // alone decides admission; (hotness, key) order picks the victim).
  size_t victim = ColdestLineIndex();
  if (*hotness > tracker_.HotnessOf(lines_[victim].key).value()) {
    lines_.erase(lines_.begin() + static_cast<ptrdiff_t>(victim));
    ++stats_.evictions;
    lines_.push_back(Line{key, value});
    ++stats_.insertions;
  }
}

void ReferenceCotCache::Invalidate(Key key) {
  ++epoch_.accesses;
  auto tracked = tracker_.TrackAccess(key, AccessType::kUpdate);
  DropIfResident(tracked.evicted);
  size_t i = LineIndex(key);
  if (i != kNotFound) {
    lines_.erase(lines_.begin() + static_cast<ptrdiff_t>(i));
    ++stats_.invalidations;
  }
}

Status ReferenceCotCache::Resize(size_t new_capacity) {
  cache_capacity_ = new_capacity;
  while (lines_.size() > cache_capacity_) {
    size_t victim = ColdestLineIndex();
    lines_.erase(lines_.begin() + static_cast<ptrdiff_t>(victim));
    ++stats_.evictions;
  }
  size_t min_tracker = std::max<size_t>(1, 2 * cache_capacity_);
  if (tracker_.capacity() < min_tracker) {
    return tracker_.Resize(min_tracker);
  }
  return Status::OK();
}

Status ReferenceCotCache::ResizeTracker(size_t new_tracker_capacity) {
  size_t minimum = std::max<size_t>(1, 2 * cache_capacity_);
  if (new_tracker_capacity < minimum) {
    return Status::InvalidArgument(
        "tracker capacity must be >= max(2 * cache capacity, 1)");
  }
  std::vector<Key> evicted;
  Status s = tracker_.Resize(new_tracker_capacity, &evicted);
  if (!s.ok()) return s;
  for (Key key : evicted) DropIfResident(key);
  return Status::OK();
}

std::optional<double> ReferenceCotCache::MinCachedHotness() const {
  if (lines_.empty()) return std::nullopt;
  return tracker_.HotnessOf(lines_[ColdestLineIndex()].key);
}

void ReferenceCotCache::HalveAllHotness() { tracker_.HalveAllHotness(); }

std::vector<ReferenceCotCache::ExportedKey> ReferenceCotCache::ExportState()
    const {
  std::vector<ExportedKey> out;
  out.reserve(tracker_.size());
  for (const auto& [key, hotness] : tracker_.SortedByHotnessDesc()) {
    ExportedKey exported;
    exported.key = key;
    exported.counters = tracker_.CountersOf(key).value();
    size_t i = LineIndex(key);
    if (i != kNotFound) exported.value = lines_[i].value;
    out.push_back(exported);
  }
  return out;
}

void ReferenceCotCache::ImportState(const std::vector<ExportedKey>& state) {
  tracker_.Clear();
  lines_.clear();
  for (const ExportedKey& entry : state) {
    if (tracker_.size() >= tracker_.capacity()) break;
    if (!tracker_.Seed(entry.key, entry.counters)) continue;
    if (entry.value.has_value() && lines_.size() < cache_capacity_) {
      lines_.push_back(Line{entry.key, *entry.value});
      ++stats_.insertions;
    }
  }
}

bool ReferenceCotCache::CheckInvariants() const {
  if (lines_.size() > cache_capacity_) return false;
  if (tracker_.capacity() < std::max<size_t>(1, 2 * cache_capacity_)) {
    return false;
  }
  for (size_t i = 0; i < lines_.size(); ++i) {
    if (!tracker_.Contains(lines_[i].key)) return false;
    for (size_t j = i + 1; j < lines_.size(); ++j) {
      if (lines_[i].key == lines_[j].key) return false;
    }
  }
  return tracker_.CheckInvariants();
}

}  // namespace cot::core
