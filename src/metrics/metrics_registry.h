#ifndef COT_METRICS_METRICS_REGISTRY_H_
#define COT_METRICS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "metrics/histogram.h"

namespace cot::metrics {

/// Named counters, gauges, and log-bucketed latency histograms — the
/// run-level metrics surface behind `cot_run --metrics-out` and the
/// experiment engines.
///
/// Names are hierarchical by convention ("latency_us/local_hit",
/// "shard/3/lookups"). Storage is ordered (`std::map`), so every export is
/// deterministic: same run, same JSON bytes.
///
/// Concurrency model matches the tracer's: one registry per writer thread
/// (or one per run filled after threads join), merged with `Merge`. The
/// registry itself takes no locks.
class MetricsRegistry {
 public:
  /// Adds `delta` to a counter, creating it at zero first.
  void IncrementCounter(std::string_view name, uint64_t delta = 1);
  /// Sets a counter outright (absolute counts imported from other layers).
  void SetCounter(std::string_view name, uint64_t value);
  /// Current counter value; 0 when the counter does not exist.
  uint64_t counter(std::string_view name) const;

  /// Sets a gauge (last-write-wins instantaneous value).
  void SetGauge(std::string_view name, double value);
  /// Current gauge value; 0 when the gauge does not exist.
  double gauge(std::string_view name) const;

  /// Histogram by name, created empty on first use.
  Histogram& histogram(std::string_view name);
  /// Read-only lookup; null when the histogram does not exist.
  const Histogram* FindHistogram(std::string_view name) const;

  /// Folds `other` in: counters add, histograms merge, gauges from `other`
  /// overwrite same-named gauges here.
  void Merge(const MetricsRegistry& other);

  /// Resets to empty.
  void Clear();

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  const std::map<std::string, uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Renders the whole registry as pretty-printed JSON with sorted keys:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} where each
  /// histogram carries count/sum/min/max/mean/p50/p95/p99 plus its
  /// non-zero buckets as [upper_bound, count] pairs.
  std::string ToJson() const;

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace cot::metrics

#endif  // COT_METRICS_METRICS_REGISTRY_H_
