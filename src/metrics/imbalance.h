#ifndef COT_METRICS_IMBALANCE_H_
#define COT_METRICS_IMBALANCE_H_

#include <cstdint>
#include <vector>

namespace cot::metrics {

/// Load-imbalance of a set of per-server load counters, defined (as in the
/// paper, Section 4.1) as the ratio between the most-loaded and least-loaded
/// server: `I = max(load) / min(load)`.
///
/// Edge cases: an empty vector or an all-zero vector has no meaningful
/// imbalance and returns 1.0 (perfectly balanced by convention). If some but
/// not all servers saw zero load, the minimum is clamped to 1 so the ratio is
/// finite; this matches what a per-epoch measurement with integer counters
/// would report.
double LoadImbalance(const std::vector<uint64_t>& per_server_load);

/// Coefficient of variation (stddev / mean) of per-server load; a secondary
/// balance measure reported by some benches. Returns 0 for empty or all-zero
/// input.
double LoadCoefficientOfVariation(const std::vector<uint64_t>& per_server_load);

/// Total load across servers.
uint64_t TotalLoad(const std::vector<uint64_t>& per_server_load);

/// Relative server load of a run versus a baseline run (paper Figure 3):
/// `total(current) / total(baseline)`. Returns 1.0 when the baseline is zero.
double RelativeServerLoad(const std::vector<uint64_t>& current,
                          const std::vector<uint64_t>& baseline);

/// Jain's fairness index of per-server load: `(sum x)^2 / (n * sum x^2)`,
/// in (0, 1]; 1 = perfectly balanced, 1/n = one server takes everything.
/// A scale-free complement to the max/min ratio (which only sees the two
/// extremes). Returns 1.0 for empty or all-zero input.
double JainFairnessIndex(const std::vector<uint64_t>& per_server_load);

}  // namespace cot::metrics

#endif  // COT_METRICS_IMBALANCE_H_
