#include "metrics/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace cot::metrics {

const std::vector<uint64_t>& Histogram::BucketLimits() {
  // Geometric-ish bucket upper bounds: 1, 2, 3, 4, 6, 8, 12, 16, ...
  // (doubling with one midpoint per octave), out to ~1e18.
  static const std::vector<uint64_t>& limits = *new std::vector<uint64_t>([] {
    std::vector<uint64_t> v;
    v.push_back(1);
    v.push_back(2);
    uint64_t base = 2;
    while (base < (1ULL << 62)) {
      v.push_back(base + base / 2);  // 1.5x midpoint
      base *= 2;
      v.push_back(base);
    }
    v.push_back(std::numeric_limits<uint64_t>::max());
    return v;
  }());
  return limits;
}

Histogram::Histogram() : buckets_(BucketLimits().size(), 0) {}

size_t Histogram::BucketIndex(uint64_t value) const {
  const auto& limits = BucketLimits();
  auto it = std::lower_bound(limits.begin(), limits.end(), value);
  return static_cast<size_t>(it - limits.begin());
}

void Histogram::Add(uint64_t value) {
  size_t idx = std::min(BucketIndex(value), buckets_.size() - 1);
  buckets_[idx]++;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

double Histogram::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double threshold = static_cast<double>(count_) * (p / 100.0);
  const auto& limits = BucketLimits();
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    uint64_t next = cumulative + buckets_[i];
    if (static_cast<double>(next) >= threshold) {
      // Interpolate within bucket [lower, upper].
      double lower = (i == 0) ? 0.0 : static_cast<double>(limits[i - 1]);
      double upper = static_cast<double>(limits[i]);
      upper = std::min(upper, static_cast<double>(max_));
      lower = std::max(lower, static_cast<double>(min_));
      if (upper < lower) upper = lower;
      double fraction =
          (threshold - static_cast<double>(cumulative)) /
          static_cast<double>(buckets_[i]);
      return lower + fraction * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f min=%llu max=%llu p50=%.1f p95=%.1f "
                "p99=%.1f",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(max()), Median(), P95(), P99());
  return buf;
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::NonZeroBuckets() const {
  const auto& limits = BucketLimits();
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) out.emplace_back(limits[i], buckets_[i]);
  }
  return out;
}

}  // namespace cot::metrics
