#include "metrics/metrics_registry.h"

#include <cstdio>

namespace cot::metrics {

namespace {

template <typename Map, typename Key>
auto* FindOrNull(Map& map, const Key& key) {
  auto it = map.find(key);
  return it == map.end() ? nullptr : &it->second;
}

void AppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

void MetricsRegistry::IncrementCounter(std::string_view name, uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::SetCounter(std::string_view name, uint64_t value) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

uint64_t MetricsRegistry::counter(std::string_view name) const {
  const uint64_t* v = FindOrNull(counters_, name);
  return v == nullptr ? 0 : *v;
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

double MetricsRegistry::gauge(std::string_view name) const {
  const double* v = FindOrNull(gauges_, name);
  return v == nullptr ? 0.0 : *v;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  return it->second;
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  return FindOrNull(histograms_, name);
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    IncrementCounter(name, value);
  }
  for (const auto& [name, value] : other.gauges_) {
    SetGauge(name, value);
  }
  for (const auto& [name, hist] : other.histograms_) {
    histogram(name).Merge(hist);
  }
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::ToJson() const {
  std::string out;
  out.reserve(1024);
  char buf[96];
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    std::snprintf(buf, sizeof(buf), ": %llu",
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    std::snprintf(buf, sizeof(buf), ": %.6g", value);
    out += buf;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    std::snprintf(
        buf, sizeof(buf), ": {\"count\": %llu, \"sum\": %llu, ",
        static_cast<unsigned long long>(hist.count()),
        static_cast<unsigned long long>(hist.sum()));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"min\": %llu, \"max\": %llu, \"mean\": %.6g, ",
                  static_cast<unsigned long long>(hist.min()),
                  static_cast<unsigned long long>(hist.max()), hist.mean());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"p50\": %.6g, \"p95\": %.6g, \"p99\": %.6g, ",
                  hist.Median(), hist.P95(), hist.P99());
    out += buf;
    out += "\"buckets\": [";
    bool first_bucket = true;
    for (const auto& [upper, count] : hist.NonZeroBuckets()) {
      if (!first_bucket) out += ", ";
      first_bucket = false;
      std::snprintf(buf, sizeof(buf), "[%llu, %llu]",
                    static_cast<unsigned long long>(upper),
                    static_cast<unsigned long long>(count));
      out += buf;
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace cot::metrics
