#ifndef COT_METRICS_SUMMARY_H_
#define COT_METRICS_SUMMARY_H_

#include <cstdint>
#include <limits>

namespace cot::metrics {

/// Streaming summary statistics (Welford's online algorithm): count, mean,
/// sample variance, min, max, and a 95% confidence interval half-width for
/// the mean. Numerically stable for long streams.
class Summary {
 public:
  Summary() = default;

  /// Incorporates one observation.
  void Add(double x);

  /// Merges another summary into this one (parallel Welford merge).
  void Merge(const Summary& other);

  /// Resets to the empty state.
  void Reset();

  /// Number of observations.
  uint64_t count() const { return count_; }
  /// Mean of observations; 0 when empty.
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;
  /// Square root of `variance()`.
  double stddev() const;
  /// Smallest observation; +inf when empty.
  double min() const { return min_; }
  /// Largest observation; -inf when empty.
  double max() const { return max_; }
  /// Sum of observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Half-width of the 95% confidence interval for the mean, using
  /// Student's t quantile for small samples (n <= 30, tabulated) and the
  /// normal approximation (1.96) otherwise. Returns 0 when n < 2.
  double ci95_half_width() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace cot::metrics

#endif  // COT_METRICS_SUMMARY_H_
