#include "metrics/event_tracer.h"

#include <algorithm>
#include <cstdio>

namespace cot::metrics {

std::string_view ToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kEpochBoundary:
      return "epoch_boundary";
    case TraceEventType::kResizerDecision:
      return "resizer_decision";
    case TraceEventType::kBreakerTransition:
      return "breaker_transition";
    case TraceEventType::kFaultActivation:
      return "fault_activation";
    case TraceEventType::kRetryEpisode:
      return "retry_episode";
    case TraceEventType::kTopologyChange:
      return "topology_change";
    case TraceEventType::kEpochMismatch:
      return "epoch_mismatch";
    case TraceEventType::kBatchLookup:
      return "batch_lookup";
    case TraceEventType::kLoadShed:
      return "load_shed";
    case TraceEventType::kHealthTransition:
      return "health_transition";
    case TraceEventType::kHedge:
      return "hedge";
  }
  return "unknown";
}

namespace {

void AppendU64(std::string* out, std::string_view key, uint64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%.*s\":%llu",
                static_cast<int>(key.size()), key.data(),
                static_cast<unsigned long long>(value));
  if (out->back() != '{') out->push_back(',');
  out->append(buf);
}

void AppendDouble(std::string* out, std::string_view key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%.*s\":%.6g",
                static_cast<int>(key.size()), key.data(), value);
  if (out->back() != '{') out->push_back(',');
  out->append(buf);
}

void AppendStr(std::string* out, std::string_view key, std::string_view value) {
  if (out->back() != '{') out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":\"");
  out->append(value);
  out->push_back('"');
}

void AppendBool(std::string* out, std::string_view key, bool value) {
  if (out->back() != '{') out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(value ? "true" : "false");
}

struct PayloadWriter {
  std::string* out;

  void operator()(const EpochBoundaryPayload& p) const {
    AppendU64(out, "epoch", p.epoch);
    AppendU64(out, "accesses", p.accesses);
    AppendU64(out, "backend_lookups", p.backend_lookups);
  }
  void operator()(const ResizerDecisionPayload& p) const {
    AppendU64(out, "epoch", p.epoch);
    AppendStr(out, "phase", p.phase);
    AppendStr(out, "action", p.action);
    AppendDouble(out, "ic", p.current_imbalance);
    AppendDouble(out, "ic_smoothed", p.smoothed_imbalance);
    AppendDouble(out, "i_t", p.target_imbalance);
    AppendDouble(out, "alpha_c", p.alpha_c);
    AppendDouble(out, "alpha_kc", p.alpha_kc);
    AppendDouble(out, "alpha_kc_signal", p.alpha_kc_signal);
    AppendDouble(out, "alpha_t", p.alpha_target);
    AppendDouble(out, "hit_rate", p.hit_rate);
    AppendU64(out, "cache", p.cache_capacity);
    AppendU64(out, "tracker", p.tracker_capacity);
  }
  void operator()(const BreakerTransitionPayload& p) const {
    AppendU64(out, "server", p.server);
    AppendStr(out, "from", p.from);
    AppendStr(out, "to", p.to);
    AppendU64(out, "consecutive_failures", p.consecutive_failures);
  }
  void operator()(const FaultActivationPayload& p) const {
    AppendU64(out, "server", p.server);
    AppendStr(out, "kind", p.kind);
    AppendU64(out, "attempt", p.attempt);
  }
  void operator()(const RetryEpisodePayload& p) const {
    AppendU64(out, "server", p.server);
    AppendU64(out, "failed_attempts", p.failed_attempts);
    AppendBool(out, "delivered", p.delivered);
  }
  void operator()(const TopologyChangePayload& p) const {
    AppendU64(out, "epoch", p.epoch);
    AppendStr(out, "action", p.action);
    AppendU64(out, "server", p.server);
    AppendU64(out, "keys_migrated", p.keys_migrated);
    AppendU64(out, "active_servers", p.active_servers);
  }
  void operator()(const EpochMismatchPayload& p) const {
    AppendU64(out, "server", p.server);
    AppendU64(out, "client_epoch", p.client_epoch);
    AppendU64(out, "shard_epoch", p.shard_epoch);
  }
  void operator()(const BatchLookupPayload& p) const {
    AppendU64(out, "batch_size", p.batch_size);
    AppendU64(out, "local_hits", p.local_hits);
    AppendU64(out, "sub_batches", p.sub_batches);
    AppendU64(out, "backend_keys", p.backend_keys);
  }
  void operator()(const LoadShedPayload& p) const {
    AppendU64(out, "server", p.server);
    AppendStr(out, "reason", p.reason);
    AppendU64(out, "queue_depth", p.queue_depth);
    AppendU64(out, "wait_us", p.wait_us);
  }
  void operator()(const HealthTransitionPayload& p) const {
    AppendU64(out, "server", p.server);
    AppendStr(out, "to", p.to);
    AppendDouble(out, "score", p.score);
    AppendDouble(out, "p99_us", p.p99_us);
    AppendU64(out, "observations", p.observations);
  }
  void operator()(const HedgePayload& p) const {
    AppendU64(out, "server", p.server);
    AppendStr(out, "target", p.target);
    AppendStr(out, "result", p.result);
    AppendDouble(out, "primary_latency_us", p.primary_latency_us);
    AppendDouble(out, "hedge_delay_us", p.hedge_delay_us);
  }
};

}  // namespace

std::string ToJson(const TraceEvent& event) {
  std::string out;
  out.reserve(256);
  out.push_back('{');
  AppendStr(&out, "type", ToString(event.type));
  AppendU64(&out, "client", event.client);
  AppendU64(&out, "seq", event.seq);
  AppendU64(&out, "op_clock", event.op_clock);
  std::visit(PayloadWriter{&out}, event.payload);
  out.push_back('}');
  return out;
}

EventTracer::EventTracer(size_t capacity, uint32_t client)
    : capacity_(capacity), client_(client) {
  ring_.reserve(std::min<size_t>(capacity, 1024));
}

std::vector<TraceEvent> EventTracer::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once wrapped, `head_` is the oldest retained event.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string EventTracer::ToJsonl() const {
  std::string out;
  for (const TraceEvent& event : Events()) {
    out += ToJson(event);
    out.push_back('\n');
  }
  return out;
}

void EventTracer::Clear() {
  ring_.clear();
  head_ = 0;
}

std::vector<TraceEvent> EventTracer::Merge(
    const std::vector<const EventTracer*>& tracers) {
  std::vector<TraceEvent> merged;
  size_t total = 0;
  for (const EventTracer* t : tracers) {
    if (t != nullptr) total += t->size();
  }
  merged.reserve(total);
  for (const EventTracer* t : tracers) {
    if (t == nullptr) continue;
    std::vector<TraceEvent> events = t->Events();
    merged.insert(merged.end(), events.begin(), events.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.client != b.client) return a.client < b.client;
                     return a.seq < b.seq;
                   });
  return merged;
}

}  // namespace cot::metrics
