#include "metrics/summary.h"

#include <algorithm>
#include <cmath>

namespace cot::metrics {

namespace {

// Two-sided 95% Student t quantiles for df = 1..30.
constexpr double kT95[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};

double T95(uint64_t df) {
  if (df == 0) return 0.0;
  if (df <= 30) return kT95[df - 1];
  return 1.96;
}

}  // namespace

void Summary::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  uint64_t total = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Summary::Reset() { *this = Summary(); }

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  double sem = stddev() / std::sqrt(static_cast<double>(count_));
  return T95(count_ - 1) * sem;
}

}  // namespace cot::metrics
