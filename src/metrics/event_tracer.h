#ifndef COT_METRICS_EVENT_TRACER_H_
#define COT_METRICS_EVENT_TRACER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace cot::metrics {

/// Kinds of structured runtime events the tracer records. Every event the
/// system emits is one of these — printf archaeology replaced by a typed,
/// replayable stream.
enum class TraceEventType : uint8_t {
  /// A resizer epoch closed (recorded by the driving client, which knows
  /// its logical clock and how many backend lookups the epoch carried).
  kEpochBoundary,
  /// One Algorithm-3 decision with its full inputs (I_c raw/smoothed, I_t,
  /// alpha_c, alpha_{k-c}, the signal variant actually used, alpha_t) and
  /// the chosen action — the data behind the paper's Figures 7-8.
  kResizerDecision,
  /// A per-shard circuit breaker changed state (closed/open/half_open).
  kBreakerTransition,
  /// One injected fault observed by a client: a request attempt that
  /// failed (crash window or transient draw).
  kFaultActivation,
  /// A delivery that needed retries: how many attempts failed before the
  /// request was delivered or abandoned.
  kRetryEpisode,
  /// A topology mutation (add/remove/rejoin) was applied: the new routing
  /// epoch, the shard affected, and how many keys migrated warm.
  kTopologyChange,
  /// A fenced shard request was rejected for carrying a stale routing
  /// epoch; the client refreshed its route view and retried.
  kEpochMismatch,
  /// One batched read (`FrontendClient::MultiGet`): how many keys the
  /// batch carried, how many the local cache absorbed, and how the rest
  /// fanned out over shard sub-batches.
  kBatchLookup,
  /// An overloaded shard shed a request (bounded serving queue tail drop
  /// or deadline admission) or let an invalidation bypass the data queue
  /// under pressure — the open-loop driver's degradation tiers.
  kLoadShed,
  /// A shard's health score crossed a quarantine threshold: it entered
  /// lameduck (slow-but-alive, probed not fenced) or recovered to
  /// healthy.
  kHealthTransition,
  /// One hedged read: a read running past the adaptive hedge delay was
  /// reissued (or the retry budget suppressed the reissue).
  kHedge,
};

std::string_view ToString(TraceEventType type);

/// Payloads. String fields hold `string_view`s of *static* storage (the
/// enum `ToString` helpers) — events never allocate on the record path.
struct EpochBoundaryPayload {
  uint64_t epoch = 0;
  uint64_t accesses = 0;         // accesses the epoch spanned
  uint64_t backend_lookups = 0;  // lookups the epoch's I_c was computed over
};

struct ResizerDecisionPayload {
  uint64_t epoch = 0;
  std::string_view phase;   // core::ToString(ResizerPhase)
  std::string_view action;  // core::ToString(ResizeAction)
  double current_imbalance = 1.0;   // I_c, raw this epoch
  double smoothed_imbalance = 1.0;  // I_c EWMA the decision used
  double target_imbalance = 0.0;    // I_t
  double alpha_c = 0.0;
  double alpha_kc = 0.0;         // the paper's literal per-(K-C)-line form
  double alpha_kc_signal = 0.0;  // the value Case 1/2 actually compared
  double alpha_target = 0.0;     // alpha_t
  double hit_rate = 0.0;
  uint64_t cache_capacity = 0;    // after the action
  uint64_t tracker_capacity = 0;  // after the action
};

struct BreakerTransitionPayload {
  uint32_t server = 0;
  std::string_view from;  // "closed" | "open" | "half_open"
  std::string_view to;
  uint32_t consecutive_failures = 0;
};

struct FaultActivationPayload {
  uint32_t server = 0;
  std::string_view kind;  // "crash" | "transient"
  uint32_t attempt = 0;   // 0-based retry index of the failed attempt
};

struct RetryEpisodePayload {
  uint32_t server = 0;
  uint32_t failed_attempts = 0;  // attempts that failed before the outcome
  bool delivered = false;        // true if a retry eventually succeeded
};

struct TopologyChangePayload {
  uint64_t epoch = 0;       // routing epoch after the mutation
  std::string_view action;  // "add_server" | "remove_server" | "rejoin_server"
  uint32_t server = 0;      // shard added/removed/rejoined
  uint64_t keys_migrated = 0;   // keys handed warm to new owners
  uint32_t active_servers = 0;  // serving shards after the mutation
};

struct EpochMismatchPayload {
  uint32_t server = 0;        // shard that rejected the request
  uint64_t client_epoch = 0;  // the stale epoch the request carried
  uint64_t shard_epoch = 0;   // the epoch the shard is serving in
};

struct BatchLookupPayload {
  uint32_t batch_size = 0;    // keys in the batch
  uint32_t local_hits = 0;    // keys absorbed by the front-end cache
  uint32_t sub_batches = 0;   // shard sub-batches the misses fanned out to
  uint32_t backend_keys = 0;  // keys delivered to shards
};

struct LoadShedPayload {
  uint32_t server = 0;      // shard whose queue shed / was bypassed
  std::string_view reason;  // "queue_full" | "deadline" | "invalidation_bypass"
  uint32_t queue_depth = 0;  // backlog depth observed at the decision
  uint64_t wait_us = 0;      // projected wait that triggered a deadline shed
};

struct HealthTransitionPayload {
  uint32_t server = 0;
  std::string_view to;  // "lameduck" | "healthy"
  double score = 1.0;   // EWMA health score at the transition
  double p99_us = 0.0;  // shard p99 estimate at the transition
  uint64_t observations = 0;
};

struct HedgePayload {
  uint32_t server = 0;      // primary shard the slow read was routed to
  std::string_view target;  // "storage" | "replica"
  std::string_view result;  // "won" | "lost" | "suppressed"
  double primary_latency_us = 0.0;  // observed primary-path latency
  double hedge_delay_us = 0.0;      // adaptive delay that triggered it
};

/// One recorded event. `(client, seq)` is the deterministic order key:
/// `seq` increments per tracer, and a tracer is only ever written by the
/// one thread driving its client, so merged traces are byte-identical at
/// any thread count.
struct TraceEvent {
  TraceEventType type = TraceEventType::kEpochBoundary;
  uint32_t client = 0;
  uint64_t seq = 0;
  uint64_t op_clock = 0;  // recorder's logical operation clock
  std::variant<EpochBoundaryPayload, ResizerDecisionPayload,
               BreakerTransitionPayload, FaultActivationPayload,
               RetryEpisodePayload, TopologyChangePayload,
               EpochMismatchPayload, BatchLookupPayload, LoadShedPayload,
               HealthTransitionPayload, HedgePayload>
      payload;
};

/// Renders one event as a single-line JSON object (no trailing newline).
std::string ToJson(const TraceEvent& event);

/// Bounded ring buffer of typed runtime events with JSONL export.
///
/// Concurrency model: one tracer per client, written only by the thread
/// driving that client (the same confinement that makes per-client stats
/// deterministic); buffers are merged after the run with `Merge`, keyed on
/// `(client, seq)`. Disabled tracing is a null sink pointer at every
/// instrumentation site — the record call inlines to a single predictable
/// branch, and the sites live on cold paths (epoch boundaries and failure
/// handling), never the per-access hot path.
class EventTracer {
 public:
  /// `capacity` bounds retained events (oldest dropped first); `client`
  /// tags every recorded event.
  explicit EventTracer(size_t capacity = 65536, uint32_t client = 0);

  uint32_t client() const { return client_; }
  size_t capacity() const { return capacity_; }
  /// Events currently retained.
  size_t size() const { return ring_.size(); }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const { return dropped_; }
  /// Total events ever recorded (retained + dropped).
  uint64_t recorded() const { return next_seq_; }

  void Record(uint64_t op_clock, EpochBoundaryPayload payload) {
    Push(TraceEventType::kEpochBoundary, op_clock, payload);
  }
  void Record(uint64_t op_clock, ResizerDecisionPayload payload) {
    Push(TraceEventType::kResizerDecision, op_clock, payload);
  }
  void Record(uint64_t op_clock, BreakerTransitionPayload payload) {
    Push(TraceEventType::kBreakerTransition, op_clock, payload);
  }
  void Record(uint64_t op_clock, FaultActivationPayload payload) {
    Push(TraceEventType::kFaultActivation, op_clock, payload);
  }
  void Record(uint64_t op_clock, RetryEpisodePayload payload) {
    Push(TraceEventType::kRetryEpisode, op_clock, payload);
  }
  void Record(uint64_t op_clock, TopologyChangePayload payload) {
    Push(TraceEventType::kTopologyChange, op_clock, payload);
  }
  void Record(uint64_t op_clock, EpochMismatchPayload payload) {
    Push(TraceEventType::kEpochMismatch, op_clock, payload);
  }
  void Record(uint64_t op_clock, BatchLookupPayload payload) {
    Push(TraceEventType::kBatchLookup, op_clock, payload);
  }
  void Record(uint64_t op_clock, LoadShedPayload payload) {
    Push(TraceEventType::kLoadShed, op_clock, payload);
  }
  void Record(uint64_t op_clock, HealthTransitionPayload payload) {
    Push(TraceEventType::kHealthTransition, op_clock, payload);
  }
  void Record(uint64_t op_clock, HedgePayload payload) {
    Push(TraceEventType::kHedge, op_clock, payload);
  }

  /// Retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Retained events as JSONL (one event per line).
  std::string ToJsonl() const;

  /// Drops all retained events (sequence numbers keep counting).
  void Clear();

  /// Merges per-client tracers into one deterministic stream ordered by
  /// `(client, seq)`. Null entries are skipped.
  static std::vector<TraceEvent> Merge(
      const std::vector<const EventTracer*>& tracers);

 private:
  template <typename Payload>
  void Push(TraceEventType type, uint64_t op_clock, Payload payload) {
    TraceEvent event;
    event.type = type;
    event.client = client_;
    event.seq = next_seq_++;
    event.op_clock = op_clock;
    event.payload = std::move(payload);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else if (capacity_ > 0) {
      ring_[head_] = std::move(event);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    } else {
      ++dropped_;
    }
  }

  size_t capacity_;
  uint32_t client_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;  // index of the oldest event once the ring is full
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace cot::metrics

#endif  // COT_METRICS_EVENT_TRACER_H_
