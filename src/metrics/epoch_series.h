#ifndef COT_METRICS_EPOCH_SERIES_H_
#define COT_METRICS_EPOCH_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cot::metrics {

/// Per-epoch time series recorder used by the adaptive-resizing experiments
/// (paper Figures 7 and 8): a fixed set of named columns, one row appended
/// per epoch, rendered as a CSV block or an aligned text table.
class EpochSeries {
 public:
  /// Creates a series with the given column names (excluding the implicit
  /// leading "epoch" column).
  explicit EpochSeries(std::vector<std::string> columns);

  /// Appends one row. `values.size()` must equal the number of columns.
  void Append(const std::vector<double>& values);

  /// Number of recorded rows.
  size_t rows() const { return data_.size(); }
  /// Number of columns (excluding the epoch index).
  size_t columns() const { return columns_.size(); }
  /// Column names.
  const std::vector<std::string>& column_names() const { return columns_; }

  /// Value at (row, col). Bounds are asserted in debug builds.
  double At(size_t row, size_t col) const;

  /// Full column as a vector (for assertions in tests/benches).
  std::vector<double> Column(size_t col) const;
  /// Column looked up by name; asserts the name exists.
  std::vector<double> Column(const std::string& name) const;

  /// Renders "epoch,<col...>" CSV text.
  std::string ToCsv() const;

  /// Renders an aligned, human-readable table; when `max_rows` is nonzero
  /// and the series is longer, elides the middle rows.
  std::string ToTable(size_t max_rows = 0) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> data_;
};

}  // namespace cot::metrics

#endif  // COT_METRICS_EPOCH_SERIES_H_
