#include "metrics/imbalance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cot::metrics {

double LoadImbalance(const std::vector<uint64_t>& per_server_load) {
  if (per_server_load.empty()) return 1.0;
  uint64_t max_load = *std::max_element(per_server_load.begin(),
                                        per_server_load.end());
  uint64_t min_load = *std::min_element(per_server_load.begin(),
                                        per_server_load.end());
  if (max_load == 0) return 1.0;
  if (min_load == 0) min_load = 1;
  return static_cast<double>(max_load) / static_cast<double>(min_load);
}

double LoadCoefficientOfVariation(
    const std::vector<uint64_t>& per_server_load) {
  if (per_server_load.empty()) return 0.0;
  double n = static_cast<double>(per_server_load.size());
  double sum = 0.0;
  for (uint64_t v : per_server_load) sum += static_cast<double>(v);
  if (sum == 0.0) return 0.0;
  double mean = sum / n;
  double ss = 0.0;
  for (uint64_t v : per_server_load) {
    double d = static_cast<double>(v) - mean;
    ss += d * d;
  }
  return std::sqrt(ss / n) / mean;
}

uint64_t TotalLoad(const std::vector<uint64_t>& per_server_load) {
  return std::accumulate(per_server_load.begin(), per_server_load.end(),
                         static_cast<uint64_t>(0));
}

double RelativeServerLoad(const std::vector<uint64_t>& current,
                          const std::vector<uint64_t>& baseline) {
  uint64_t base = TotalLoad(baseline);
  if (base == 0) return 1.0;
  return static_cast<double>(TotalLoad(current)) / static_cast<double>(base);
}

double JainFairnessIndex(const std::vector<uint64_t>& per_server_load) {
  if (per_server_load.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (uint64_t v : per_server_load) {
    double x = static_cast<double>(v);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  double n = static_cast<double>(per_server_load.size());
  return (sum * sum) / (n * sum_sq);
}

}  // namespace cot::metrics
