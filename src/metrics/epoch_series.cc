#include "metrics/epoch_series.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace cot::metrics {

EpochSeries::EpochSeries(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void EpochSeries::Append(const std::vector<double>& values) {
  assert(values.size() == columns_.size());
  data_.push_back(values);
}

double EpochSeries::At(size_t row, size_t col) const {
  assert(row < data_.size() && col < columns_.size());
  return data_[row][col];
}

std::vector<double> EpochSeries::Column(size_t col) const {
  assert(col < columns_.size());
  std::vector<double> out;
  out.reserve(data_.size());
  for (const auto& row : data_) out.push_back(row[col]);
  return out;
}

std::vector<double> EpochSeries::Column(const std::string& name) const {
  auto it = std::find(columns_.begin(), columns_.end(), name);
  assert(it != columns_.end());
  return Column(static_cast<size_t>(it - columns_.begin()));
}

std::string EpochSeries::ToCsv() const {
  std::ostringstream os;
  os << "epoch";
  for (const auto& c : columns_) os << ',' << c;
  os << '\n';
  for (size_t r = 0; r < data_.size(); ++r) {
    os << r;
    for (double v : data_[r]) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      os << ',' << buf;
    }
    os << '\n';
  }
  return os.str();
}

std::string EpochSeries::ToTable(size_t max_rows) const {
  std::ostringstream os;
  char buf[64];
  os << "epoch";
  for (const auto& c : columns_) {
    std::snprintf(buf, sizeof(buf), " %12s", c.c_str());
    os << buf;
  }
  os << '\n';
  auto emit_row = [&](size_t r) {
    std::snprintf(buf, sizeof(buf), "%5zu", r);
    os << buf;
    for (double v : data_[r]) {
      std::snprintf(buf, sizeof(buf), " %12.4g", v);
      os << buf;
    }
    os << '\n';
  };
  if (max_rows == 0 || data_.size() <= max_rows) {
    for (size_t r = 0; r < data_.size(); ++r) emit_row(r);
  } else {
    size_t head = max_rows / 2;
    size_t tail = max_rows - head;
    for (size_t r = 0; r < head; ++r) emit_row(r);
    os << "  ...\n";
    for (size_t r = data_.size() - tail; r < data_.size(); ++r) emit_row(r);
  }
  return os.str();
}

}  // namespace cot::metrics
