#ifndef COT_METRICS_HISTOGRAM_H_
#define COT_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cot::metrics {

/// Log-bucketed histogram for non-negative values (latencies, counts),
/// modelled after the RocksDB statistics histogram: bucket bounds grow
/// geometrically (x1.5 / x1.33 alternating, i.e. two buckets per octave),
/// so the raw bucket resolution is ~33-50% relative across nine decades
/// with a fixed, allocation-free footprint; linear interpolation inside
/// the containing bucket (clamped to the observed min/max) tightens
/// reported percentiles well below that bound in practice.
class Histogram {
 public:
  Histogram();

  /// Records one observation (values are clamped to the covered range).
  void Add(uint64_t value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Clears all recorded data.
  void Reset();

  /// Number of recorded observations.
  uint64_t count() const { return count_; }
  /// Sum of recorded observations.
  uint64_t sum() const { return sum_; }
  /// Mean observation; 0 when empty.
  double mean() const;
  /// Smallest recorded value (bucket-quantised); 0 when empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  /// Largest recorded value; 0 when empty.
  uint64_t max() const { return count_ == 0 ? 0 : max_; }

  /// Value at percentile `p` in [0, 100], linearly interpolated within the
  /// containing bucket. Returns 0 when empty.
  double Percentile(double p) const;

  /// Convenience accessors for common percentiles.
  double Median() const { return Percentile(50.0); }
  double P95() const { return Percentile(95.0); }
  double P99() const { return Percentile(99.0); }
  double P999() const { return Percentile(99.9); }

  /// Renders a short single-line summary, e.g. for bench output.
  std::string ToString() const;

  /// Occupied buckets as (upper_bound, count) pairs, ascending — the raw
  /// distribution behind a JSON export.
  std::vector<std::pair<uint64_t, uint64_t>> NonZeroBuckets() const;

 private:
  static const std::vector<uint64_t>& BucketLimits();
  size_t BucketIndex(uint64_t value) const;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace cot::metrics

#endif  // COT_METRICS_HISTOGRAM_H_
