#include "sim/end_to_end_sim.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <vector>

#include "cluster/cache_cluster.h"
#include "metrics/imbalance.h"

namespace cot::sim {

namespace {

/// One pending client-issue event.
struct IssueEvent {
  double time;
  uint32_t client;
};

struct IssueLater {
  bool operator()(const IssueEvent& a, const IssueEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.client > b.client;  // deterministic tie-break
  }
};

/// Per-shard timing state. FIFO is implicit: issue events are processed in
/// global time order, so arrivals at a shard are seen in arrival order and
/// `next_free` advances monotonically per shard. `completions` holds the
/// departure times of requests still in the system, so the backlog a new
/// arrival sees is a true request count (bounded by the number of clients —
/// the closed loop cannot diverge).
struct ServerTiming {
  double next_free = 0.0;
  std::deque<double> completions;
};

}  // namespace

StatusOr<EndToEndResult> RunEndToEnd(
    const cluster::ExperimentConfig& config,
    const cluster::CacheFactory& factory, const LatencyModel& model,
    const core::ResizerConfig* resizer_config) {
  if (config.num_clients == 0) {
    return Status::InvalidArgument("num_clients must be >= 1");
  }
  if (config.phases.empty()) {
    return Status::InvalidArgument("at least one workload phase is required");
  }

  uint64_t ops_per_client = config.total_ops / config.num_clients;
  std::vector<workload::PhaseSpec> phases = config.phases;
  if (phases.size() == 1 && phases[0].num_ops == 0) {
    phases[0].num_ops = ops_per_client;
  }

  cluster::CacheCluster cluster(config.num_servers, config.key_space,
                                config.virtual_nodes);
  if (config.preload_backend) {
    for (uint64_t key = 0; key < config.key_space; ++key) {
      cluster.server(cluster.ring().ServerFor(key))
          .Set(key, cluster::StorageLayer::InitialValue(key));
    }
    cluster.ResetServerCounters();
  }
  if (!config.churn.empty()) {
    Status s = config.churn.Validate(config.num_servers);
    if (!s.ok()) return s;
  }
  std::unique_ptr<cluster::FaultInjector> injector;
  if (!config.faults.empty()) {
    Status s = config.faults.Validate(
        config.churn.MaxServerCount(config.num_servers));
    if (!s.ok()) return s;
    injector = std::make_unique<cluster::FaultInjector>(config.faults);
  }
  std::vector<std::unique_ptr<cluster::FrontendClient>> clients;
  std::vector<workload::OpStream> streams;
  std::vector<std::unique_ptr<metrics::EventTracer>> tracers;
  // Per-client retry budgets (the closed-loop sim is serial, but the
  // per-client split keeps its logical stats byte-identical to the
  // threaded logical engine's — see RunExperiment).
  std::vector<std::unique_ptr<cluster::RetryBudget>> budgets;
  for (uint32_t i = 0; i < config.num_clients; ++i) {
    clients.push_back(std::make_unique<cluster::FrontendClient>(
        &cluster, factory ? factory(i) : nullptr));
    if (injector != nullptr) {
      clients.back()->SetFaultInjector(injector.get(), i,
                                       config.failure_policy);
    }
    if (config.failure_policy.retry_budget_ratio > 0.0) {
      budgets.push_back(std::make_unique<cluster::RetryBudget>(
          config.failure_policy.retry_budget_ratio,
          config.failure_policy.retry_budget_burst));
      clients.back()->SetRetryBudget(budgets.back().get());
    }
    if (config.trace_capacity > 0) {
      tracers.push_back(std::make_unique<metrics::EventTracer>(
          config.trace_capacity, i));
      clients.back()->SetTracer(tracers.back().get());
    }
    if (resizer_config != nullptr && clients.back()->local_cache() != nullptr) {
      Status s = clients.back()->EnableElasticResizing(*resizer_config);
      if (!s.ok()) return s;
    }
    auto stream =
        workload::OpStream::Create(config.key_space, phases, config.seed + i);
    if (!stream.ok()) return stream.status();
    streams.push_back(std::move(stream).value());
  }

  // Topology mutations trace to a synthetic controller client (id ==
  // num_clients), matching the logical engine's convention.
  std::unique_ptr<metrics::EventTracer> controller_tracer;
  if (config.trace_capacity > 0 && !config.churn.empty()) {
    controller_tracer = std::make_unique<metrics::EventTracer>(
        config.trace_capacity, config.num_clients);
  }
  // Churn events sharing one at_op barrier, in order.
  struct ChurnGroup {
    uint64_t at_op;
    std::vector<cluster::ChurnEvent> events;
  };
  std::vector<ChurnGroup> churn_groups;
  for (const cluster::ChurnEvent& e : config.churn.events) {
    if (churn_groups.empty() || churn_groups.back().at_op != e.at_op) {
      churn_groups.push_back({e.at_op, {}});
    }
    churn_groups.back().events.push_back(e);
  }
  size_t next_group = 0;
  // Clients whose issue events are held at the current churn barrier.
  std::vector<IssueEvent> parked;

  std::priority_queue<IssueEvent, std::vector<IssueEvent>, IssueLater> events;
  for (uint32_t i = 0; i < config.num_clients; ++i) {
    events.push(IssueEvent{0.0, i});
  }
  const uint32_t max_servers =
      config.churn.MaxServerCount(config.num_servers);
  std::vector<ServerTiming> servers(max_servers);
  std::vector<uint64_t> per_server_requests(max_servers, 0);
  uint64_t total_backend_requests = 0;

  EndToEndResult result;
  double makespan = 0.0;
  double latency_sum = 0.0;
  uint64_t op_count = 0;
  // Per-path latency histograms live in the logical result's registry so
  // cot_run's --metrics-out gets them for free.
  metrics::MetricsRegistry& reg = result.logical.metrics;
  metrics::Histogram& hist_local = reg.histogram("latency_us/local_hit");
  metrics::Histogram& hist_backend = reg.histogram("latency_us/backend");
  metrics::Histogram& hist_storage = reg.histogram("latency_us/storage");
  metrics::Histogram& hist_degraded = reg.histogram("latency_us/degraded");

  while (!events.empty() || !parked.empty()) {
    if (events.empty()) {
      // Every still-running client is parked at the churn barrier: apply
      // the mutation group, price it, and release everyone at once. The
      // release time is the latest arrival plus the control-plane pause
      // plus the per-key migration cost — churn stalls the whole tier, the
      // paper's motivation for making scale events rare and warm.
      const ChurnGroup& group = churn_groups[next_group];
      uint64_t migrated_before = cluster.topology_stats().keys_migrated;
      for (const cluster::ChurnEvent& e : group.events) {
        cluster::ServerId target = e.server;
        switch (e.action) {
          case cluster::ChurnAction::kAddServer:
            target = cluster.AddServer();
            break;
          case cluster::ChurnAction::kRemoveServer:
            (void)cluster.RemoveServer(e.server);
            break;
          case cluster::ChurnAction::kRejoinServer:
            (void)cluster.RejoinServer(e.server);
            break;
        }
        if (controller_tracer != nullptr) {
          cluster::CacheCluster::TopologyStats after =
              cluster.topology_stats();
          controller_tracer->Record(
              group.at_op,
              metrics::TopologyChangePayload{
                  after.routing_epoch, cluster::ToString(e.action), target,
                  after.keys_migrated - migrated_before,
                  cluster.active_server_count()});
        }
      }
      uint64_t moved =
          cluster.topology_stats().keys_migrated - migrated_before;
      double barrier_time = 0.0;
      for (const IssueEvent& p : parked) {
        barrier_time = std::max(barrier_time, p.time);
      }
      double release = barrier_time + model.ChurnPenalty(moved);
      for (const IssueEvent& p : parked) {
        events.push(IssueEvent{release, p.client});
      }
      parked.clear();
      ++next_group;
      makespan = std::max(makespan, release);
      continue;
    }
    IssueEvent ev = events.top();
    events.pop();
    if (streams[ev.client].Done()) {
      makespan = std::max(makespan, ev.time);
      continue;
    }
    if (next_group < churn_groups.size() &&
        clients[ev.client]->op_clock() >= churn_groups[next_group].at_op) {
      // This client reached the barrier op; hold its next issue until the
      // mutation applies. (If some client finishes its stream before the
      // barrier it simply drains above — the barrier fires when the event
      // queue holds only parked clients.)
      parked.push_back(ev);
      continue;
    }
    workload::Op op = streams[ev.client].Next();
    cluster::FrontendClient::OpOutcome outcome =
        clients[ev.client]->ApplyDetailed(op);

    // Time lost to failed backend attempts (timeouts + backoff) before the
    // operation's outcome was known. Zero on healthy runs.
    double penalty =
        outcome.failed_attempts == 0
            ? 0.0
            : model.FaultPenalty(outcome.failed_attempts,
                                 outcome.backend_contacted,
                                 outcome.deadline_us);
    // Stale-route rejections each cost a wasted round trip plus a route
    // refresh before the retry reached the current owner.
    penalty += model.EpochMismatchPenalty(outcome.epoch_mismatches);
    double completion;
    metrics::Histogram* path_hist;
    if (outcome.local_hit) {
      // Local hit: served inside the front-end.
      completion = ev.time + model.local_hit_us;
      path_hist = &hist_local;
    } else if (!outcome.backend_contacted) {
      // No shard delivery: a degraded or failed-over read served by the
      // storage tier, or an update whose invalidations were all lost. The
      // storage path bypasses the shard queues.
      completion = ev.time + penalty + model.rtt_us + model.storage_extra_us;
      path_hist = outcome.failed_attempts > 0 ? &hist_degraded : &hist_storage;
    } else {
      ServerTiming& server = servers[outcome.server];
      double arrival = ev.time + penalty + model.rtt_us / 2.0;
      // Backlog = requests still queued/in service at this shard when the
      // new one arrives.
      while (!server.completions.empty() &&
             server.completions.front() <= arrival) {
        server.completions.pop_front();
      }
      double backlog = static_cast<double>(server.completions.size());
      result.max_backlog = std::max(result.max_backlog, backlog);
      // Recent share of backend traffic landing on this shard (fair = 1/n).
      ++total_backend_requests;
      ++per_server_requests[outcome.server];
      double active = static_cast<double>(cluster.active_server_count());
      double share =
          total_backend_requests < 64
              ? 1.0 / active
              : static_cast<double>(per_server_requests[outcome.server]) /
                    static_cast<double>(total_backend_requests);
      double service =
          model.ServiceTime(backlog, share, active) * outcome.slow_factor;
      if (outcome.storage_accessed) service += model.storage_extra_us;
      double start = std::max(arrival, server.next_free);
      completion = start + service + model.rtt_us / 2.0;
      path_hist = outcome.storage_accessed ? &hist_storage : &hist_backend;
      if (outcome.hedged && outcome.hedge_won) {
        // A won hedge races the slow primary: the op completes at the
        // hedge's path time instead. Hedges are priced, not materialized
        // — the hedge target serves a second copy off the critical path,
        // so it adds no logical lookups and no queue load. The primary is
        // *cancelled* when the hedge returns (tied-request style): the
        // shard frees the slot once the cancel reaches it, half an RTT
        // later. Without cancellation a closed-loop client re-issues
        // while its abandoned request still holds the slow shard, and
        // the invisible queue debt turns the defense into a second
        // overload — the classic hedging footgun.
        double hedge_path =
            outcome.hedge_to_replica
                ? model.rtt_us + model.base_service_us
                : model.rtt_us + model.storage_extra_us;
        double hedged_completion =
            ev.time + penalty + outcome.hedge_delay_us + hedge_path;
        if (hedged_completion < completion) {
          double cancel_at = hedged_completion + model.rtt_us / 2.0;
          service = std::clamp(cancel_at - start, 0.0, service);
          completion = hedged_completion;
        }
      }
      server.next_free = start + service;
      server.completions.push_back(server.next_free);
    }
    double latency = completion - ev.time;
    latency_sum += latency;
    ++op_count;
    result.latency_us.Add(static_cast<uint64_t>(latency));
    path_hist->Add(static_cast<uint64_t>(latency));
    makespan = std::max(makespan, completion);
    events.push(IssueEvent{completion, ev.client});
  }

  result.makespan_us = makespan;
  result.mean_latency_us =
      op_count == 0 ? 0.0 : latency_sum / static_cast<double>(op_count);

  result.logical.per_server_lookups = cluster.PerServerLookups();
  result.logical.imbalance =
      metrics::LoadImbalance(result.logical.per_server_lookups);
  result.logical.total_backend_lookups =
      metrics::TotalLoad(result.logical.per_server_lookups);
  result.logical.unavailable_ops_per_server.assign(cluster.server_count(), 0);
  for (const auto& client : clients) {
    const cluster::FrontendStats& s = client->stats();
    result.logical.per_client.push_back(s);
    result.logical.aggregate.Add(s);
    const std::vector<uint64_t>& failed = client->failed_ops_per_server();
    for (size_t i = 0; i < failed.size() &&
                       i < result.logical.unavailable_ops_per_server.size();
         ++i) {
      result.logical.unavailable_ops_per_server[i] += failed[i];
    }
  }
  result.logical.local_hit_rate = result.logical.aggregate.LocalHitRate();
  cluster::CacheCluster::TopologyStats tstats = cluster.topology_stats();
  result.logical.topology_changes = tstats.topology_changes;
  result.logical.keys_migrated = tstats.keys_migrated;
  result.logical.routing_epoch = tstats.routing_epoch;
  result.logical.epoch_rejects = tstats.epoch_rejects;
  result.logical.final_active_servers = cluster.active_server_count();
  if (!tracers.empty() || controller_tracer != nullptr) {
    std::vector<const metrics::EventTracer*> views;
    views.reserve(tracers.size() + 1);
    for (const auto& t : tracers) {
      views.push_back(t.get());
      result.logical.trace_dropped += t->dropped();
    }
    if (controller_tracer != nullptr) {
      views.push_back(controller_tracer.get());
      result.logical.trace_dropped += controller_tracer->dropped();
    }
    result.logical.trace = metrics::EventTracer::Merge(views);
  }
  reg.SetGauge("sim/makespan_us", result.makespan_us);
  reg.SetGauge("sim/mean_latency_us", result.mean_latency_us);
  reg.SetGauge("sim/max_backlog", result.max_backlog);
  cluster::ExportMetrics(&result.logical);
  return result;
}

}  // namespace cot::sim
