#include "sim/open_loop_sim.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "cluster/retry_budget.h"
#include "cluster/storage_layer.h"
#include "metrics/histogram.h"

namespace cot::sim {

namespace {

using cluster::CacheCluster;
using cluster::FrontendClient;
using cluster::RetryBudget;
using cluster::ServingQueue;
using cluster::StorageLayer;

/// Per-thread accumulator: each driver thread fills its own, merged after
/// the join, so the replay loop touches no shared counters.
struct ThreadAccum {
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  uint64_t goodput = 0;
  uint64_t local_hits = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_storage = 0;
  uint64_t degraded_failovers = 0;
  uint64_t invalidation_bypass = 0;
  uint64_t retries_suppressed = 0;
  uint64_t hedges_sent = 0;
  uint64_t hedges_won = 0;
  uint64_t hedges_lost = 0;
  uint64_t hedges_suppressed = 0;
  double latency_sum_us = 0.0;
  double last_completion_us = 0.0;
  metrics::Histogram hist_local;
  metrics::Histogram hist_backend;
  metrics::Histogram hist_storage;
  metrics::Histogram hist_degraded;
  metrics::Histogram hist_update;
  metrics::Histogram hist_wait;
};

}  // namespace

StatusOr<OpenLoopResult> RunOpenLoop(const OpenLoopConfig& config,
                                     const workload::BinaryTraceView& trace,
                                     const cluster::CacheFactory& factory,
                                     const LatencyModel& model) {
  if (trace.empty()) {
    return Status::InvalidArgument("open-loop replay needs a non-empty trace");
  }
  if (config.num_servers == 0) {
    return Status::InvalidArgument("num_servers must be >= 1");
  }
  if (config.logical_clients == 0) {
    return Status::InvalidArgument("logical_clients must be >= 1");
  }
  if (config.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (config.arrival_rate_per_sec <= 0.0) {
    return Status::InvalidArgument("arrival_rate_per_sec must be positive");
  }

  const uint64_t ops = config.max_ops == 0
                           ? trace.size()
                           : std::min<uint64_t>(config.max_ops, trace.size());
  const uint64_t key_space = std::max<uint64_t>(trace.key_space(), 1);

  CacheCluster cluster(config.num_servers, key_space, config.virtual_nodes);
  if (config.preload_backend) {
    for (uint64_t key = 0; key < key_space; ++key) {
      cluster.server(cluster.ring().ServerFor(key))
          .Set(key, StorageLayer::InitialValue(key));
    }
    cluster.ResetServerCounters();
  }
  // Every shard gets a serving queue — with the default all-zero policy it
  // is unbounded and never sheds, but still prices queueing delay: that IS
  // the no-defense configuration whose latency explodes past the knee.
  for (uint32_t s = 0; s < config.num_servers; ++s) {
    cluster.server(s).ConfigureOverload(config.overload);
  }
  // The storage tier is one more serving process with the same defenses:
  // failover traffic queues (and sheds) there instead of vanishing into an
  // infinitely fast authoritative store.
  ServingQueue storage_queue(config.overload);

  std::unique_ptr<RetryBudget> budget;
  if (config.retry_budget_ratio > 0.0) {
    budget = std::make_unique<RetryBudget>(config.retry_budget_ratio,
                                           config.retry_budget_burst);
  }

  std::vector<std::unique_ptr<FrontendClient>> clients;
  clients.reserve(config.logical_clients);
  for (uint32_t c = 0; c < config.logical_clients; ++c) {
    clients.push_back(std::make_unique<FrontendClient>(
        &cluster, factory ? factory(c) : nullptr));
    if (budget != nullptr) clients.back()->SetRetryBudget(budget.get());
  }

  // One arrival sequence for the whole cluster, precomputed so every
  // thread replays against identical timestamps: arrival i executes trace
  // op i on logical client i % logical_clients.
  std::vector<uint64_t> arrivals(ops);
  {
    workload::ArrivalGenerator gen(config.arrival,
                                   config.arrival_rate_per_sec, config.seed);
    for (uint64_t i = 0; i < ops; ++i) arrivals[i] = gen.Next();
  }

  const uint32_t num_threads =
      std::min<uint32_t>(config.num_threads, config.logical_clients);
  std::vector<ThreadAccum> accums(num_threads);
  std::vector<std::unique_ptr<metrics::EventTracer>> tracers;
  if (config.trace_capacity > 0) {
    tracers.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) {
      tracers.push_back(
          std::make_unique<metrics::EventTracer>(config.trace_capacity, t));
    }
  }

  auto replay = [&](uint32_t tau) {
    ThreadAccum& acc = accums[tau];
    metrics::EventTracer* tracer =
        config.trace_capacity > 0 ? tracers[tau].get() : nullptr;
    for (uint64_t i = 0; i < ops; ++i) {
      const uint32_t c =
          static_cast<uint32_t>(i % config.logical_clients);
      if (c % num_threads != tau) continue;
      const uint64_t now = arrivals[i];
      const workload::Op op = trace[i];
      FrontendClient* client = clients[c].get();
      cache::Cache* local = client->local_cache();
      ++acc.offered;
      if (budget != nullptr) budget->OnFreshRequest();

      auto complete = [&](double latency_us, metrics::Histogram* hist) {
        ++acc.completed;
        acc.latency_sum_us += latency_us;
        const double end = static_cast<double>(now) + latency_us;
        acc.last_completion_us = std::max(acc.last_completion_us, end);
        if (config.deadline_us == 0 ||
            latency_us <= static_cast<double>(config.deadline_us)) {
          ++acc.goodput;
        }
        hist->Add(static_cast<uint64_t>(latency_us));
      };

      if (op.type == workload::OpType::kRead) {
        // Local-hit fast path: no shard request, no admission decision.
        // Contains() is non-mutating, so a shed op never perturbs the
        // cache; the subsequent ApplyDetailed performs the real (LRU/CoT
        // accounted) hit.
        if (local != nullptr && local->Contains(op.key)) {
          client->ApplyDetailed(op);
          ++acc.local_hits;
          complete(model.local_hit_us, &acc.hist_local);
          continue;
        }
        const cluster::ServerId sid = cluster.OwnerOf(op.key);
        ServingQueue* queue = cluster.server(sid).serving_queue();
        const ServingQueue::AdmitResult admit =
            queue->Admit(now, static_cast<uint64_t>(model.base_service_us));
        if (admit.status == ServingQueue::AdmitStatus::kAdmitted) {
          const FrontendClient::OpOutcome outcome =
              client->ApplyDetailed(op);
          double extra = 0.0;
          if (outcome.storage_accessed) {
            // The shard missed and read through to storage: the serving
            // slot is held for the round trip, lengthening the backlog
            // behind it.
            queue->ExtendLast(static_cast<uint64_t>(model.storage_extra_us));
            extra = model.storage_extra_us;
          }
          double latency = model.rtt_us +
                           static_cast<double>(admit.wait_us) +
                           model.base_service_us + extra;
          if (config.hedging && latency > config.hedge_delay_us) {
            // The projected completion (queue wait included) blows
            // through the hedge delay: race a storage-tier copy against
            // the queued primary. Priced, not materialized — the serving
            // slot above stays held (the shard still does the work), but
            // the client stops waiting at whichever path returns first.
            ++acc.hedges_sent;
            if (budget != nullptr && !budget->TryConsume()) {
              ++acc.hedges_suppressed;
            } else {
              const double hedge_latency = config.hedge_delay_us +
                                           model.rtt_us +
                                           model.storage_extra_us;
              if (hedge_latency < latency) {
                latency = hedge_latency;
                ++acc.hedges_won;
              } else {
                ++acc.hedges_lost;
              }
            }
          }
          acc.hist_wait.Add(admit.wait_us);
          complete(latency,
                   outcome.storage_accessed ? &acc.hist_storage
                                            : &acc.hist_backend);
          continue;
        }
        // Shed at the shard. Tier-2 degradation: fail the read over to the
        // storage tier — if the retry budget funds it.
        if (admit.status == ServingQueue::AdmitStatus::kShedQueueFull) {
          ++acc.shed_queue_full;
        } else {
          ++acc.shed_deadline;
        }
        if (tracer != nullptr) {
          tracer->Record(
              i, metrics::LoadShedPayload{
                     static_cast<uint32_t>(sid),
                     admit.status == ServingQueue::AdmitStatus::kShedQueueFull
                         ? "queue_full"
                         : "deadline",
                     admit.depth, admit.wait_us});
        }
        if (budget == nullptr || !budget->TryConsume()) {
          if (budget != nullptr) ++acc.retries_suppressed;
          ++acc.shed;
          continue;
        }
        const uint64_t storage_arrival =
            now + static_cast<uint64_t>(model.rtt_us);
        const ServingQueue::AdmitResult fallback = storage_queue.Admit(
            storage_arrival, static_cast<uint64_t>(model.storage_extra_us));
        if (fallback.status != ServingQueue::AdmitStatus::kAdmitted) {
          ++acc.shed_storage;
          ++acc.shed;
          if (tracer != nullptr) {
            tracer->Record(i, metrics::LoadShedPayload{
                                  config.num_servers, "queue_full",
                                  fallback.depth, fallback.wait_us});
          }
          continue;
        }
        // Degraded completion, same semantics as the breaker's degraded
        // read: storage serves the value, the local cache is filled, the
        // shard is never touched (we never confirmed a serving slot).
        const cache::Value value = cluster.storage().Get(op.key);
        if (local != nullptr) local->Put(op.key, value);
        ++acc.degraded_failovers;
        const double latency = model.rtt_us +
                               static_cast<double>(fallback.wait_us) +
                               model.storage_extra_us;
        complete(latency, &acc.hist_degraded);
        continue;
      }

      // Update: the storage write is authoritative and always happens; the
      // invalidation fan-out to the shard is the part under overload
      // control. Tier-1 degradation sheds it *from the data queue first* —
      // a delete is metadata-cheap, and dropping it would trade overload
      // for stale reads, so under pressure (or a full queue) it bypasses
      // the queue instead of competing with 750 KB value moves.
      const cluster::ServerId sid = cluster.OwnerOf(op.key);
      ServingQueue* queue = cluster.server(sid).serving_queue();
      double wait = 0.0;
      bool bypass = queue->UnderPressureAt(now);
      if (!bypass) {
        const ServingQueue::AdmitResult admit = queue->Admit(
            now, static_cast<uint64_t>(model.invalidation_service_us));
        if (admit.status == ServingQueue::AdmitStatus::kAdmitted) {
          wait = static_cast<double>(admit.wait_us);
        } else {
          bypass = true;
        }
      }
      if (bypass) {
        queue->NoteBypass();
        ++acc.invalidation_bypass;
        if (tracer != nullptr) {
          tracer->Record(i, metrics::LoadShedPayload{
                                static_cast<uint32_t>(sid),
                                "invalidation_bypass",
                                queue->DepthAt(now), 0});
        }
      }
      client->ApplyDetailed(op);
      const double latency = model.rtt_us + model.storage_extra_us + wait +
                             model.invalidation_service_us;
      complete(latency, &acc.hist_update);
    }
  };

  if (num_threads == 1) {
    replay(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) workers.emplace_back(replay, t);
    for (std::thread& w : workers) w.join();
  }

  OpenLoopResult result;
  metrics::Histogram hist_local;
  metrics::Histogram hist_backend;
  metrics::Histogram hist_storage;
  metrics::Histogram hist_degraded;
  metrics::Histogram hist_update;
  metrics::Histogram hist_wait;
  double latency_sum = 0.0;
  double last_completion = 0.0;
  for (const ThreadAccum& acc : accums) {
    result.offered += acc.offered;
    result.completed += acc.completed;
    result.shed += acc.shed;
    result.failed += acc.failed;
    result.goodput += acc.goodput;
    result.local_hits += acc.local_hits;
    result.shed_queue_full += acc.shed_queue_full;
    result.shed_deadline += acc.shed_deadline;
    result.shed_storage += acc.shed_storage;
    result.degraded_failovers += acc.degraded_failovers;
    result.invalidation_bypass += acc.invalidation_bypass;
    result.retries_suppressed += acc.retries_suppressed;
    result.hedges_sent += acc.hedges_sent;
    result.hedges_won += acc.hedges_won;
    result.hedges_lost += acc.hedges_lost;
    result.hedges_suppressed += acc.hedges_suppressed;
    latency_sum += acc.latency_sum_us;
    last_completion = std::max(last_completion, acc.last_completion_us);
    hist_local.Merge(acc.hist_local);
    hist_backend.Merge(acc.hist_backend);
    hist_storage.Merge(acc.hist_storage);
    hist_degraded.Merge(acc.hist_degraded);
    hist_update.Merge(acc.hist_update);
    hist_wait.Merge(acc.hist_wait);
  }
  for (const std::unique_ptr<FrontendClient>& client : clients) {
    result.aggregate.Add(client->stats());
  }

  const double last_arrival =
      ops == 0 ? 0.0 : static_cast<double>(arrivals[ops - 1]);
  result.makespan_us = std::max(last_completion, last_arrival);
  if (result.makespan_us > 0.0) {
    const double seconds = result.makespan_us / 1e6;
    result.offered_rate_per_sec = static_cast<double>(result.offered) / seconds;
    result.completed_rate_per_sec =
        static_cast<double>(result.completed) / seconds;
    result.goodput_rate_per_sec = static_cast<double>(result.goodput) / seconds;
  }
  if (result.completed > 0) {
    result.mean_latency_us =
        latency_sum / static_cast<double>(result.completed);
  }

  metrics::MetricsRegistry& reg = result.metrics;
  reg.SetCounter("openloop/offered", result.offered);
  reg.SetCounter("openloop/completed", result.completed);
  reg.SetCounter("openloop/shed", result.shed);
  reg.SetCounter("openloop/failed", result.failed);
  reg.SetCounter("openloop/goodput", result.goodput);
  reg.SetCounter("openloop/local_hits", result.local_hits);
  reg.SetCounter("openloop/shed_queue_full", result.shed_queue_full);
  reg.SetCounter("openloop/shed_deadline", result.shed_deadline);
  reg.SetCounter("openloop/shed_storage", result.shed_storage);
  reg.SetCounter("openloop/degraded_failovers", result.degraded_failovers);
  reg.SetCounter("openloop/invalidation_bypass", result.invalidation_bypass);
  reg.SetCounter("openloop/retries_suppressed", result.retries_suppressed);
  reg.SetCounter("openloop/hedges_sent", result.hedges_sent);
  reg.SetCounter("openloop/hedges_won", result.hedges_won);
  reg.SetCounter("openloop/hedges_lost", result.hedges_lost);
  reg.SetCounter("openloop/hedges_suppressed", result.hedges_suppressed);
  reg.SetGauge("openloop/arrival_rate_per_sec", config.arrival_rate_per_sec);
  reg.SetGauge("openloop/offered_rate_per_sec", result.offered_rate_per_sec);
  reg.SetGauge("openloop/completed_rate_per_sec",
               result.completed_rate_per_sec);
  reg.SetGauge("openloop/goodput_rate_per_sec", result.goodput_rate_per_sec);
  reg.SetGauge("openloop/makespan_us", result.makespan_us);
  reg.SetGauge("openloop/mean_latency_us", result.mean_latency_us);
  reg.histogram("latency_us/local_hit").Merge(hist_local);
  reg.histogram("latency_us/backend").Merge(hist_backend);
  reg.histogram("latency_us/storage").Merge(hist_storage);
  reg.histogram("latency_us/degraded").Merge(hist_degraded);
  reg.histogram("latency_us/update").Merge(hist_update);
  reg.histogram("queue_wait_us/backend").Merge(hist_wait);

  if (config.trace_capacity > 0) {
    std::vector<const metrics::EventTracer*> ptrs;
    ptrs.reserve(tracers.size());
    for (const auto& t : tracers) ptrs.push_back(t.get());
    result.trace = metrics::EventTracer::Merge(ptrs);
  }
  return result;
}

}  // namespace cot::sim
