#ifndef COT_SIM_OPEN_LOOP_SIM_H_
#define COT_SIM_OPEN_LOOP_SIM_H_

#include <cstdint>
#include <vector>

#include "cluster/experiment.h"
#include "cluster/serving_queue.h"
#include "metrics/event_tracer.h"
#include "metrics/metrics_registry.h"
#include "sim/latency_model.h"
#include "util/status.h"
#include "workload/arrival.h"
#include "workload/binary_trace.h"

namespace cot::sim {

/// Configuration of an open-loop replay.
struct OpenLoopConfig {
  /// Back-end caching shards.
  uint32_t num_servers = 4;
  /// Logical front-end clients multiplexed over the driver threads.
  /// Arrival i executes trace op i on client i % logical_clients, so one
  /// arrival stream drives thousands of front-ends; each logical client
  /// owns its own local cache and sees a strided slice of the trace.
  uint32_t logical_clients = 256;
  /// OS threads. Clients are partitioned c % num_threads; each thread
  /// replays its clients' arrivals in ascending arrival order. The
  /// accounting identity offered = completed + shed + failed holds exactly
  /// at any thread count; per-op outcomes are deterministic at 1 thread.
  uint32_t num_threads = 1;
  /// Cap on replayed ops (0 = the whole trace).
  uint64_t max_ops = 0;
  /// Aggregate offered load, operations per second of virtual time. This
  /// is the open-loop contract: arrivals never wait for completions.
  double arrival_rate_per_sec = 10000.0;
  workload::ArrivalProcess arrival = workload::ArrivalProcess::kPoisson;
  uint64_t seed = 42;
  uint32_t virtual_nodes = 16384;
  /// Install every key on its owning shard before the run (YCSB load
  /// phase), so steady-state shard misses come only from invalidations.
  bool preload_backend = true;
  /// End-to-end latency SLO: a completion within this budget counts
  /// toward *goodput*; a later completion still counts as completed (the
  /// client got its bytes, too late to be useful). 0 = every completion
  /// is goodput.
  uint64_t deadline_us = 5000;
  /// Per-shard serving-queue defenses (depth bound, deadline admission,
  /// pressure threshold). The default — all zeros — is the no-defense
  /// configuration: unbounded queues, nothing shed, queueing delay free
  /// to grow without bound past the knee.
  cluster::OverloadPolicy overload;
  /// Cluster-wide retry budget funding storage failovers of shed reads
  /// (and client retries, if a fault injector were attached): tier-2
  /// degradation spends these tokens. 0 disables — a shed read is simply
  /// dropped.
  double retry_budget_ratio = 0.0;
  double retry_budget_burst = 16.0;
  /// Hedged reads (gray-failure defense, open-loop flavor): an admitted
  /// read whose projected completion — queue wait included — exceeds
  /// `hedge_delay_us` also issues a hedge to the storage tier after that
  /// delay, and the faster path defines the op's latency. Hedges are
  /// priced, not materialized: no storage serving slot is held and no
  /// logical lookup counters move, so every conservation identity is
  /// untouched. Withdraws one retry-budget token per hedge when a budget
  /// is configured (suppressed when the bucket is dry).
  bool hedging = false;
  double hedge_delay_us = 1500.0;
  /// Per-thread trace-event ring capacity (load-shed events). 0 disables.
  size_t trace_capacity = 0;
};

/// Outcome of an open-loop replay. The fundamental identity — checked by
/// tests at 1/2/4 threads on byte-identical traces — is
///
///     offered == completed + shed + failed
///
/// every offered operation meets exactly one fate.
struct OpenLoopResult {
  uint64_t offered = 0;
  /// Ops that produced their value/ack (including degraded completions).
  uint64_t completed = 0;
  /// Ops dropped by admission control (queue full, deadline, storage
  /// failover denied or itself shed).
  uint64_t shed = 0;
  /// Ops that failed outright (fault injection; 0 in fault-free runs).
  uint64_t failed = 0;
  /// Completions within `deadline_us` — the metric the knee bench plots.
  uint64_t goodput = 0;

  // Decomposition (diagnostics; not part of the identity).
  uint64_t local_hits = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_storage = 0;
  /// Shed reads completed via the storage tier (tier-2 degradation).
  uint64_t degraded_failovers = 0;
  /// Invalidations that bypassed a pressured/full data queue (tier-1
  /// degradation; the delete still executed — never dropped).
  uint64_t invalidation_bypass = 0;
  /// Storage failovers denied by the retry budget (op counted shed).
  uint64_t retries_suppressed = 0;
  /// Hedged-read accounting (zeros unless `hedging`); the identity
  /// hedges_sent == hedges_won + hedges_lost + hedges_suppressed holds at
  /// any thread count.
  uint64_t hedges_sent = 0;
  uint64_t hedges_won = 0;
  uint64_t hedges_lost = 0;
  uint64_t hedges_suppressed = 0;

  /// Virtual time of the last completion (or last arrival if later).
  double makespan_us = 0.0;
  double offered_rate_per_sec = 0.0;
  double completed_rate_per_sec = 0.0;
  double goodput_rate_per_sec = 0.0;
  double mean_latency_us = 0.0;

  /// Aggregated logical client counters.
  cluster::FrontendStats aggregate;
  /// Counters, gauges, and the per-path latency / queue-wait histograms
  /// (p50/p99/p999 material).
  metrics::MetricsRegistry metrics;
  /// Merged load-shed events (empty unless trace_capacity > 0).
  std::vector<metrics::TraceEvent> trace;
};

/// Replays `trace` through a real cluster stack under an arrival-rate
/// driven virtual clock.
///
/// Where the closed-loop `RunEndToEnd` keeps one request outstanding per
/// client — so offered load sags exactly when the cluster slows down, and
/// overload is unobservable — this driver offers load on a schedule that
/// never waits. Queue growth, queueing delay, shedding, and the knee in
/// the goodput-vs-offered-load curve all become measurable.
///
/// Mechanics per arrival (virtual time `t`, logical client `c`):
///  - local-cache hit: completes at t + local_hit_us, no shard involved;
///  - read miss: admitted to the owning shard's bounded serving queue
///    (waiting behind its backlog, service priced by the latency model,
///    storage misses extend service); a shed read fails over to the
///    storage tier if the retry budget allows (tier-2 degradation, its
///    own serving queue), else it is dropped;
///  - update: writes storage, then delivers its invalidation through the
///    shard queue — bypassing it (tier-1 degradation) when the shard is
///    under pressure or the queue is full, because a dropped delete would
///    become a stale read. Invalidations are never logically dropped.
///
/// The logical state machine is the real `cot::cluster` stack (same
/// FrontendClient/BackendServer/StorageLayer as every other driver); the
/// simulator only decides admission and prices time. Shed operations are
/// never applied logically — the request never happened.
StatusOr<OpenLoopResult> RunOpenLoop(const OpenLoopConfig& config,
                                     const workload::BinaryTraceView& trace,
                                     const cluster::CacheFactory& factory,
                                     const LatencyModel& model);

}  // namespace cot::sim

#endif  // COT_SIM_OPEN_LOOP_SIM_H_
