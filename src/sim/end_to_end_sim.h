#ifndef COT_SIM_END_TO_END_SIM_H_
#define COT_SIM_END_TO_END_SIM_H_

#include <cstdint>
#include <vector>

#include "cluster/experiment.h"
#include "metrics/histogram.h"
#include "sim/latency_model.h"
#include "util/status.h"

namespace cot::sim {

/// Outcome of an end-to-end timing run.
struct EndToEndResult {
  /// Wall-clock of the whole run (time the last client finishes), in
  /// microseconds — the paper's "overall running time" (Figures 5-6).
  double makespan_us = 0.0;
  /// Mean per-operation latency, microseconds.
  double mean_latency_us = 0.0;
  /// Latency distribution (microsecond resolution).
  metrics::Histogram latency_us;
  /// Peak simulated backlog across shards (thrashing severity diagnostic).
  double max_backlog = 0.0;
  /// Logical counters from the underlying cluster run.
  cluster::ExperimentResult logical;
};

/// Closed-loop discrete-event simulation of the paper's end-to-end
/// experiments: every client keeps exactly one request outstanding (YCSB
/// "back-to-back" issue), local hits complete in `local_hit_us`, and every
/// back-end request queues FIFO at its shard, whose service time degrades
/// as its backlog grows (the thrashing the paper identifies as the reason
/// skew inflates runtime by 8.9x-12.3x with 20 threads).
///
/// The cache/shard *state* machine is the real `cot::cluster` stack — the
/// simulator only prices the requests in time, so hit-rates and imbalance
/// are identical to `RunExperiment` with the same seed.
StatusOr<EndToEndResult> RunEndToEnd(
    const cluster::ExperimentConfig& config,
    const cluster::CacheFactory& factory, const LatencyModel& model,
    const core::ResizerConfig* resizer_config = nullptr);

}  // namespace cot::sim

#endif  // COT_SIM_END_TO_END_SIM_H_
