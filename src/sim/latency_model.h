#ifndef COT_SIM_LATENCY_MODEL_H_
#define COT_SIM_LATENCY_MODEL_H_

#include <algorithm>
#include <cstdint>

namespace cot::sim {

/// Timing parameters of the end-to-end simulator, chosen to match the
/// paper's testbed (Section 5.3): front-ends and back-ends in the same
/// cluster with an average RTT of 244 microseconds, and back-end servers
/// that degrade ("thrash") when too many of the 20 client connections pile
/// onto the most-loaded shard.
struct LatencyModel {
  /// Round-trip time between a front-end and any shard, microseconds.
  double rtt_us = 244.0;
  /// Per-request service time at a shard with no queue, microseconds.
  /// Sized for the paper's 750 KB values: wire + copy time is of the same
  /// order as the same-rack RTT, which is why one saturated shard can
  /// dominate the end-to-end runtime.
  double base_service_us = 150.0;
  /// Time to serve a request from the local front-end cache.
  double local_hit_us = 2.0;
  /// Extra delay when the persistent layer must be read (shard miss).
  double storage_extra_us = 400.0;
  /// Queue depth beyond which service degrades (connection thrashing).
  double thrash_knee = 4.0;
  /// Fractional service-time growth per queued request beyond the knee.
  /// 0 disables thrashing (it cannot occur with a single client anyway).
  double thrash_coeff = 0.15;
  /// Load-dependent service degradation: a shard receiving more than its
  /// fair share (1/n) of recent backend requests serves each of them
  /// slower, by `load_share_penalty` per unit of excess normalized share.
  /// This models the server-side pressure of hammering one instance with
  /// 750 KB values (memory-bandwidth and slab churn on the hot shard) and
  /// is what makes even a *single* closed-loop client slower under skew —
  /// the paper's Figure 6 observation that runtime tracks the imbalance
  /// factor. 0 disables.
  double load_share_penalty = 2.5;

  /// Service time of an invalidation delete at a shard: metadata-only
  /// (erase a map entry), an order of magnitude below moving a 750 KB
  /// value. Used by the open-loop simulator's serving queues; the
  /// closed-loop paths fold invalidations into the RTT as before.
  double invalidation_service_us = 15.0;

  /// Client-side timeout charged for each failed backend attempt: the
  /// client waits this long before declaring the request lost and moving
  /// on (retry, failover, or giving up on an invalidation).
  double timeout_us = 1000.0;
  /// Backoff before the first retry; doubles on each further retry
  /// (exponential backoff, matching FrontendClient's bounded-retry loop).
  double backoff_base_us = 100.0;

  /// Cost of one routing-epoch mismatch: the wasted half-round-trip to the
  /// stale owner is charged separately (via rtt), this is the route-view
  /// refresh against the topology service before the retry.
  double route_refresh_us = 200.0;
  /// Control-plane pause while a topology mutation applies (membership
  /// propagation; the data-plane cost is per-key below).
  double churn_pause_us = 5000.0;
  /// Per-key cost of the warm handoff a mutation triggers: the new owner
  /// re-reads the key from storage and adopts it.
  double migrate_per_key_us = 2.0;

  /// Wall-clock stall of one topology mutation that moved `keys_moved`
  /// keys; every in-flight client resumes after it.
  double ChurnPenalty(uint64_t keys_moved) const {
    return churn_pause_us +
           migrate_per_key_us * static_cast<double>(keys_moved);
  }

  /// Stall a single operation suffered from `mismatches` stale-route
  /// rejections before reaching the current owner: each costs the full
  /// round trip that got rejected plus a route refresh.
  double EpochMismatchPenalty(uint32_t mismatches) const {
    return static_cast<double>(mismatches) * (rtt_us + route_refresh_us);
  }

  /// Effective service time with `backlog` requests already queued at a
  /// shard that has received `share` of all recent backend requests across
  /// `num_servers` shards.
  double ServiceTime(double backlog, double share, double num_servers) const {
    double queue_excess = std::max(0.0, backlog - thrash_knee);
    double share_excess = std::max(0.0, share * num_servers - 1.0);
    return base_service_us * (1.0 + thrash_coeff * queue_excess) *
           (1.0 + load_share_penalty * share_excess);
  }

  /// Total stall an operation suffered from `failed_attempts` failed
  /// backend attempts before its outcome was known: every failure costs a
  /// timeout, and every attempt after a failure is preceded by an
  /// exponentially growing backoff. When the op was eventually delivered
  /// the last failure was followed by a (successful) retry, so it pays
  /// its backoff too; when it failed over, the last failure ended the
  /// attempt loop. `deadline_us` > 0 replaces the fixed `timeout_us` with
  /// the client's adaptive per-shard deadline (see `HealthMonitor`): a
  /// healthy shard's failures are declared dead sooner than the
  /// conservative fixed timeout, a known-slow shard's later.
  double FaultPenalty(uint32_t failed_attempts, bool eventually_delivered,
                      double deadline_us = 0.0) const {
    double penalty = 0.0;
    double backoff = backoff_base_us;
    const double per_failure = deadline_us > 0.0 ? deadline_us : timeout_us;
    for (uint32_t i = 0; i < failed_attempts; ++i) {
      penalty += per_failure;
      if (eventually_delivered || i + 1 < failed_attempts) {
        penalty += backoff;
        backoff *= 2.0;
      }
    }
    return penalty;
  }
};

}  // namespace cot::sim

#endif  // COT_SIM_LATENCY_MODEL_H_
