#ifndef COT_UTIL_INDEXED_MIN_HEAP_H_
#define COT_UTIL_INDEXED_MIN_HEAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <variant>
#include <vector>

#include "util/flat_hash_map.h"
#include "util/min_heap_core.h"

namespace cot {

/// 4-ary min-heap with by-key addressing: every key appears at most once
/// and its priority can be updated or the key erased in O(log n) by key
/// alone. This is `MinHeapCore` (the index-free sifting core) composed with
/// an internal `FlatHashMap` key -> node-id index — the convenient form for
/// owners whose key mapping has no other home: the LFU cache and the LRU-k
/// eviction queue. Owners that already keep per-key metadata (the
/// space-saving tracker, the CoT cache) use `MinHeapCore` directly and
/// store the node id in their own table, so one hash probe serves both
/// structures.
///
/// `Compare(a, b)` returning true means `a` has *higher* priority to stay at
/// the root (default `std::less`: smallest priority at the root).
///
/// Each node can carry an `Aux` payload (default: none). This lets an owner
/// that would otherwise keep a parallel `FlatHashMap` keyed identically to
/// the heap store that state *inside* the heap node and reach it through the
/// same single hash probe that locates the priority. Node ids (`Id`) are
/// stable for the lifetime of a key, so the id returned by
/// `IdOf`/`Push`/`TopId` can be used for several accesses (priority, aux,
/// update) without re-probing; an id is invalidated only when its key is
/// erased.
///
/// Priorities may be compound (e.g. `std::pair` for tie-breaking). Keys must
/// be integers: the by-key index is a `FlatHashMap`. Owners that know their
/// capacity should pass it to the sizing constructor (or call `Reserve`) so
/// the index never rehashes in steady state.
template <typename K, typename P, typename Compare = std::less<P>,
          typename Aux = std::monostate>
class IndexedMinHeap {
 public:
  using Core = MinHeapCore<K, P, Compare, Aux>;
  /// Stable handle to a key's node; valid until the key is erased.
  using Id = typename Core::Id;
  static constexpr Id kInvalidId = Core::kInvalidId;

  IndexedMinHeap() = default;
  explicit IndexedMinHeap(Compare cmp) : core_(std::move(cmp)) {}
  /// Pre-sizes heap storage and index for `expected_capacity` keys.
  explicit IndexedMinHeap(size_t expected_capacity, Compare cmp = Compare())
      : core_(expected_capacity, std::move(cmp)) {
    index_.reserve(expected_capacity);
  }

  /// Pre-allocates for `expected_capacity` keys without changing content.
  void Reserve(size_t expected_capacity) {
    core_.Reserve(expected_capacity);
    index_.reserve(expected_capacity);
  }

  /// Number of keys in the heap.
  size_t size() const { return core_.size(); }
  /// True when the heap holds no keys.
  bool empty() const { return core_.empty(); }
  /// True if `key` is present.
  bool Contains(const K& key) const { return index_.count(key) != 0; }

  /// Key at the root (minimum). Heap must be non-empty.
  const K& TopKey() const { return core_.TopKey(); }
  /// Priority at the root. Heap must be non-empty.
  const P& TopPriority() const { return core_.TopPriority(); }

  /// Priority of `key`, which must be present.
  const P& PriorityOf(const K& key) const {
    auto it = index_.find(key);
    assert(it != index_.end());
    return core_.PriorityAt(it->second);
  }

  // --- handle (Id) surface ------------------------------------------------
  // One hash probe buys a stable node id; everything below is array
  // indexing. This is the hot-path API: callers that need priority + aux +
  // update for the same key pay one probe instead of one per access.

  /// Node id of `key`, or kInvalidId when absent.
  Id IdOf(const K& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? kInvalidId : it->second;
  }
  /// Node id at the root. Heap must be non-empty.
  Id TopId() const { return core_.TopId(); }
  /// Key of a valid node id.
  const K& KeyAt(Id id) const { return core_.KeyAt(id); }
  /// Priority of a valid node id.
  const P& PriorityAt(Id id) const { return core_.PriorityAt(id); }
  /// Aux payload of a valid node id.
  Aux& AuxAt(Id id) { return core_.AuxAt(id); }
  const Aux& AuxAt(Id id) const { return core_.AuxAt(id); }

  /// Changes the priority of the node `id` and restores heap order. The id
  /// stays valid (ids survive sifting).
  void UpdateAt(Id id, P priority) { core_.UpdateAt(id, std::move(priority)); }

  /// Inserts `key` with `priority` (and optional aux payload); returns the
  /// new node's id. `key` must not already be present.
  Id Push(const K& key, P priority, Aux aux = Aux{}) {
    assert(!Contains(key));
    Id id = core_.Push(key, std::move(priority), std::move(aux));
    index_[key] = id;
    return id;
  }

  /// Single-probe "access or admit": looks up `key` and, when absent,
  /// pushes it — reusing the lookup's probe to place the index entry, so a
  /// miss costs one table scan instead of two (IdOf miss + Push insert).
  /// `make()` is invoked only on a miss and must return the new node's
  /// `std::pair<P, Aux>`. Returns the node id and whether the key was
  /// already present.
  template <typename MakeFn>
  std::pair<Id, bool> FindOrPushWith(const K& key, MakeFn&& make) {
    auto [it, inserted] = index_.find_or_insert(key);
    if (!inserted) return {it->second, true};
    auto [priority, aux] = make();
    Id id = core_.Push(key, std::move(priority), std::move(aux));
    it->second = id;
    return {id, false};
  }

  /// Single-probe counterpart of ReplaceTop: looks up `key` and, when
  /// absent, evicts the root and admits `key` in its node — the
  /// space-saving replacement step fused with the membership test that
  /// precedes it. The index entry is placed by the lookup's own probe; only
  /// the evicted key pays a second (erase) probe. `make()` is invoked only
  /// on a miss, before the root is touched, and must return the newcomer's
  /// `std::pair<P, Aux>`. Heap must be non-empty. Returns the node id and
  /// whether the key was already present.
  template <typename MakeFn>
  std::pair<Id, bool> FindOrReplaceTopWith(const K& key, MakeFn&& make) {
    assert(!empty());
    auto [it, inserted] = index_.find_or_insert(key);
    if (!inserted) return {it->second, true};
    auto [priority, aux] = make();
    // Erase after the insert above: erase never relocates entries, so `it`
    // stays valid (the root's key is distinct from `key`, which was absent).
    index_.erase(core_.TopKey());
    Id id = core_.ReplaceTop(key, std::move(priority), std::move(aux));
    it->second = id;
    return {id, false};
  }

  /// Removes and returns the root (key, priority). Heap must be non-empty.
  std::pair<K, P> Pop() {
    auto out = core_.PopTop();
    index_.erase(out.first);
    return out;
  }

  /// Replaces the root's key/priority/aux in place and restores heap order
  /// — the space-saving "evict min, admit newcomer" move. Equivalent to
  /// Pop() + Push(key, ...) but reuses the root's node (one index erase +
  /// one insert, a single sift-down that usually stops after a level or
  /// two since the newcomer's priority is near the evicted minimum, and no
  /// full-depth re-sink of an arbitrary leaf). Heap must be non-empty and
  /// `key` must not already be present. Returns the (reused) node id.
  Id ReplaceTop(const K& key, P priority, Aux aux = Aux{}) {
    assert(!empty());
    assert(!Contains(key));
    index_.erase(core_.TopKey());
    Id id = core_.ReplaceTop(key, std::move(priority), std::move(aux));
    index_[key] = id;
    return id;
  }

  /// Changes the priority of an existing `key` and restores heap order.
  void Update(const K& key, P priority) {
    Id id = IdOf(key);
    assert(id != kInvalidId);
    core_.UpdateAt(id, std::move(priority));
  }

  /// Removes `key` if present; returns whether it was present.
  bool Erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    core_.EraseAt(it->second);
    index_.erase(key);
    return true;
  }

  /// Removes all keys.
  void Clear() {
    core_.Clear();
    index_.clear();
  }

  /// Visits every (key, priority) pair in unspecified (heap) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    core_.ForEach(std::forward<Fn>(fn));
  }

  /// Visits every live node id in unspecified (heap) order. Combine with
  /// KeyAt/PriorityAt/AuxAt — the mutable-aux iteration primitive (e.g.
  /// half-life decay of per-key counters stored as aux).
  template <typename Fn>
  void ForEachId(Fn&& fn) {
    core_.ForEachId(std::forward<Fn>(fn));
  }
  template <typename Fn>
  void ForEachId(Fn&& fn) const {
    core_.ForEachId(std::forward<Fn>(fn));
  }

  /// Applies `fn` to every priority in place. `fn` MUST be monotone
  /// (order-preserving) — e.g. scaling all hotness values by 0.5 during
  /// half-life decay — so the heap property is preserved without a rebuild.
  /// O(n), no re-heapification.
  template <typename Fn>
  void TransformPrioritiesMonotone(Fn&& fn) {
    core_.TransformPrioritiesMonotone(std::forward<Fn>(fn));
  }

  /// Verifies the heap invariant and index consistency; O(n). Intended for
  /// tests (property checks after random operation sequences).
  bool CheckInvariants() const {
    if (index_.size() != core_.size()) return false;
    if (!core_.CheckInvariants()) return false;
    bool ok = true;
    core_.ForEachId([&](Id id) {
      auto it = index_.find(core_.KeyAt(id));
      if (it == index_.end() || it->second != id) ok = false;
    });
    return ok;
  }

 private:
  Core core_;
  /// By-key index: key -> node id (NOT heap position — ids are stable, so
  /// sifting never touches this map).
  FlatHashMap<K, uint32_t> index_;
};

}  // namespace cot

#endif  // COT_UTIL_INDEXED_MIN_HEAP_H_
