#ifndef COT_UTIL_INDEXED_MIN_HEAP_H_
#define COT_UTIL_INDEXED_MIN_HEAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <variant>
#include <vector>

#include "util/flat_hash_map.h"

namespace cot {

/// 4-ary min-heap with by-key addressing: every key appears at most once
/// and its priority can be updated or the key erased in O(log n) by key
/// alone. This is the core structure behind the space-saving tracker, the
/// CoT cache min-heap, the LFU cache, and the LRU-k eviction queue — all of
/// which need "find/replace the minimum" *and* "adjust an arbitrary key".
///
/// `Compare(a, b)` returning true means `a` has *higher* priority to stay at
/// the root (default `std::less`: smallest priority at the root).
///
/// Layout, tuned for the sift-heavy access patterns above:
///   - The heap array stores (priority, node id) pairs, so every sift
///     comparison reads *contiguous* memory — a 4-ary level's children span
///     one or two cache lines — instead of chasing a pointer per child.
///   - Arity 4 halves the depth of the sift-down that dominates
///     replace-the-minimum workloads (space-saving admission).
///   - Each key owns a stable *node* (key, heap position, aux payload); the
///     by-key hash index maps key -> node id and is touched exactly once
///     per operation — never per sift level, since ids don't move.
///
/// Each node can carry an `Aux` payload (default: none). This lets an owner
/// that would otherwise keep a parallel `FlatHashMap` keyed identically to
/// the heap — the tracker's per-key counters, the CoT cache's values —
/// store that state *inside* the heap node and reach it through the same
/// single hash probe that locates the priority. Node ids (`Id`) are stable
/// for the lifetime of a key, so the id returned by `IdOf`/`Push`/`TopId`
/// can be used for several accesses (priority, aux, update) without
/// re-probing; an id is invalidated only when its key is erased.
///
/// Priorities may be compound (e.g. `std::pair` for tie-breaking). Keys must
/// be integers: the by-key index is a `FlatHashMap`. Owners that know their
/// capacity should pass it to the sizing constructor (or call `Reserve`) so
/// the index never rehashes in steady state.
template <typename K, typename P, typename Compare = std::less<P>,
          typename Aux = std::monostate>
class IndexedMinHeap {
 public:
  /// Stable handle to a key's node; valid until the key is erased.
  using Id = uint32_t;
  static constexpr Id kInvalidId = static_cast<Id>(-1);

  IndexedMinHeap() = default;
  explicit IndexedMinHeap(Compare cmp) : cmp_(std::move(cmp)) {}
  /// Pre-sizes heap storage and index for `expected_capacity` keys.
  explicit IndexedMinHeap(size_t expected_capacity, Compare cmp = Compare())
      : cmp_(std::move(cmp)) {
    Reserve(expected_capacity);
  }

  /// Pre-allocates for `expected_capacity` keys without changing content.
  void Reserve(size_t expected_capacity) {
    nodes_.reserve(expected_capacity);
    heap_.reserve(expected_capacity);
    index_.reserve(expected_capacity);
  }

  /// Number of keys in the heap.
  size_t size() const { return heap_.size(); }
  /// True when the heap holds no keys.
  bool empty() const { return heap_.empty(); }
  /// True if `key` is present.
  bool Contains(const K& key) const { return index_.count(key) != 0; }

  /// Key at the root (minimum). Heap must be non-empty.
  const K& TopKey() const {
    assert(!empty());
    return nodes_[heap_[0].id].key;
  }
  /// Priority at the root. Heap must be non-empty.
  const P& TopPriority() const {
    assert(!empty());
    return heap_[0].priority;
  }

  /// Priority of `key`, which must be present.
  const P& PriorityOf(const K& key) const {
    auto it = index_.find(key);
    assert(it != index_.end());
    return heap_[nodes_[it->second].heap_pos].priority;
  }

  // --- handle (Id) surface ------------------------------------------------
  // One hash probe buys a stable node id; everything below is array
  // indexing. This is the hot-path API: callers that need priority + aux +
  // update for the same key pay one probe instead of one per access.

  /// Node id of `key`, or kInvalidId when absent.
  Id IdOf(const K& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? kInvalidId : it->second;
  }
  /// Node id at the root. Heap must be non-empty.
  Id TopId() const {
    assert(!empty());
    return heap_[0].id;
  }
  /// Key of a valid node id.
  const K& KeyAt(Id id) const { return nodes_[id].key; }
  /// Priority of a valid node id.
  const P& PriorityAt(Id id) const {
    return heap_[nodes_[id].heap_pos].priority;
  }
  /// Aux payload of a valid node id.
  Aux& AuxAt(Id id) { return nodes_[id].aux; }
  const Aux& AuxAt(Id id) const { return nodes_[id].aux; }

  /// Changes the priority of the node `id` and restores heap order. The id
  /// stays valid (ids survive sifting).
  void UpdateAt(Id id, P priority) {
    uint32_t pos = nodes_[id].heap_pos;
    bool decreased = cmp_(priority, heap_[pos].priority);
    heap_[pos].priority = std::move(priority);
    if (decreased) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  }

  /// Inserts `key` with `priority` (and optional aux payload); returns the
  /// new node's id. `key` must not already be present.
  Id Push(const K& key, P priority, Aux aux = Aux{}) {
    assert(!Contains(key));
    uint32_t id = AllocNode(key, std::move(aux));
    uint32_t pos = static_cast<uint32_t>(heap_.size());
    heap_.push_back(HeapSlot{std::move(priority), id});
    nodes_[id].heap_pos = pos;
    index_[key] = id;
    SiftUp(pos);
    return id;
  }

  /// Single-probe "access or admit": looks up `key` and, when absent,
  /// pushes it — reusing the lookup's probe to place the index entry, so a
  /// miss costs one table scan instead of two (IdOf miss + Push insert).
  /// `make()` is invoked only on a miss and must return the new node's
  /// `std::pair<P, Aux>`. Returns the node id and whether the key was
  /// already present.
  template <typename MakeFn>
  std::pair<Id, bool> FindOrPushWith(const K& key, MakeFn&& make) {
    auto [it, inserted] = index_.find_or_insert(key);
    if (!inserted) return {it->second, true};
    auto [priority, aux] = make();
    uint32_t id = AllocNode(key, std::move(aux));
    uint32_t pos = static_cast<uint32_t>(heap_.size());
    heap_.push_back(HeapSlot{std::move(priority), id});
    nodes_[id].heap_pos = pos;
    it->second = id;
    SiftUp(pos);
    return {id, false};
  }

  /// Single-probe counterpart of ReplaceTop: looks up `key` and, when
  /// absent, evicts the root and admits `key` in its node — the
  /// space-saving replacement step fused with the membership test that
  /// precedes it. The index entry is placed by the lookup's own probe; only
  /// the evicted key pays a second (erase) probe. `make()` is invoked only
  /// on a miss, before the root is touched, and must return the newcomer's
  /// `std::pair<P, Aux>`. Heap must be non-empty. Returns the node id and
  /// whether the key was already present.
  template <typename MakeFn>
  std::pair<Id, bool> FindOrReplaceTopWith(const K& key, MakeFn&& make) {
    assert(!empty());
    auto [it, inserted] = index_.find_or_insert(key);
    if (!inserted) return {it->second, true};
    auto [priority, aux] = make();
    uint32_t id = heap_[0].id;
    // Erase after the insert above: erase never relocates entries, so `it`
    // stays valid (the root's key is distinct from `key`, which was absent).
    index_.erase(nodes_[id].key);
    nodes_[id].key = key;
    nodes_[id].aux = std::move(aux);
    heap_[0].priority = std::move(priority);
    it->second = id;
    SiftDown(0);
    return {id, false};
  }

  /// Removes and returns the root (key, priority). Heap must be non-empty.
  std::pair<K, P> Pop() {
    assert(!empty());
    std::pair<K, P> out{nodes_[heap_[0].id].key, std::move(heap_[0].priority)};
    RemoveAt(0);
    return out;
  }

  /// Replaces the root's key/priority/aux in place and restores heap order
  /// — the space-saving "evict min, admit newcomer" move. Equivalent to
  /// Pop() + Push(key, ...) but reuses the root's node (one index erase +
  /// one insert, a single sift-down that usually stops after a level or
  /// two since the newcomer's priority is near the evicted minimum, and no
  /// full-depth re-sink of an arbitrary leaf). Heap must be non-empty and
  /// `key` must not already be present. Returns the (reused) node id.
  Id ReplaceTop(const K& key, P priority, Aux aux = Aux{}) {
    assert(!empty());
    assert(!Contains(key));
    uint32_t id = heap_[0].id;
    index_.erase(nodes_[id].key);
    nodes_[id].key = key;
    nodes_[id].aux = std::move(aux);
    heap_[0].priority = std::move(priority);
    index_[key] = id;
    SiftDown(0);
    return id;
  }

  /// Changes the priority of an existing `key` and restores heap order.
  void Update(const K& key, P priority) {
    Id id = IdOf(key);
    assert(id != kInvalidId);
    UpdateAt(id, std::move(priority));
  }

  /// Removes `key` if present; returns whether it was present.
  bool Erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    RemoveAt(nodes_[it->second].heap_pos);
    return true;
  }

  /// Removes all keys.
  void Clear() {
    nodes_.clear();
    free_.clear();
    heap_.clear();
    index_.clear();
  }

  /// Visits every (key, priority) pair in unspecified (heap) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const HeapSlot& slot : heap_) fn(nodes_[slot.id].key, slot.priority);
  }

  /// Visits every live node id in unspecified (heap) order. Combine with
  /// KeyAt/PriorityAt/AuxAt — the mutable-aux iteration primitive (e.g.
  /// half-life decay of per-key counters stored as aux).
  template <typename Fn>
  void ForEachId(Fn&& fn) {
    for (const HeapSlot& slot : heap_) fn(static_cast<Id>(slot.id));
  }
  template <typename Fn>
  void ForEachId(Fn&& fn) const {
    for (const HeapSlot& slot : heap_) fn(static_cast<Id>(slot.id));
  }

  /// Applies `fn` to every priority in place. `fn` MUST be monotone
  /// (order-preserving) — e.g. scaling all hotness values by 0.5 during
  /// half-life decay — so the heap property is preserved without a rebuild.
  /// O(n), no re-heapification.
  template <typename Fn>
  void TransformPrioritiesMonotone(Fn&& fn) {
    for (HeapSlot& slot : heap_) slot.priority = fn(slot.priority);
    assert(CheckInvariants());
  }

  /// Verifies the heap invariant and index consistency; O(n). Intended for
  /// tests (property checks after random operation sequences).
  bool CheckInvariants() const {
    if (index_.size() != heap_.size()) return false;
    if (heap_.size() + free_.size() != nodes_.size()) return false;
    for (size_t i = 0; i < heap_.size(); ++i) {
      uint32_t id = heap_[i].id;
      if (id >= nodes_.size()) return false;
      if (nodes_[id].heap_pos != i) return false;
      auto it = index_.find(nodes_[id].key);
      if (it == index_.end() || it->second != id) return false;
      for (size_t c = kArity * i + 1;
           c < kArity * i + 1 + kArity && c < heap_.size(); ++c) {
        if (cmp_(heap_[c].priority, heap_[i].priority)) return false;
      }
    }
    return true;
  }

 private:
  /// One heap position: priority inline (sift comparisons read contiguous
  /// memory) plus the owning node's id.
  struct HeapSlot {
    P priority;
    uint32_t id;
  };

  /// Stable per-key state; a key's node id is fixed for its lifetime.
  struct Node {
    K key;
    uint32_t heap_pos;
    // Overlaps padding when Aux is the empty default.
    [[no_unique_address]] Aux aux;
  };

  static constexpr uint32_t kArity = 4;

  /// Allocates (or recycles) a node for `key`; heap_pos is set by the
  /// caller once the heap slot exists. Does not touch the index.
  uint32_t AllocNode(const K& key, Aux aux) {
    if (!free_.empty()) {
      uint32_t id = free_.back();
      free_.pop_back();
      nodes_[id].key = key;
      nodes_[id].aux = std::move(aux);
      return id;
    }
    uint32_t id = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{key, 0, std::move(aux)});
    return id;
  }

  void PlaceSlot(uint32_t pos, HeapSlot slot) {
    nodes_[slot.id].heap_pos = pos;
    heap_[pos] = std::move(slot);
  }

  void SiftUp(uint32_t pos) {
    HeapSlot slot = std::move(heap_[pos]);
    while (pos > 0) {
      uint32_t parent = (pos - 1) / kArity;
      if (!cmp_(slot.priority, heap_[parent].priority)) break;
      PlaceSlot(pos, std::move(heap_[parent]));
      pos = parent;
    }
    PlaceSlot(pos, std::move(slot));
  }

  void SiftDown(uint32_t pos) {
    HeapSlot slot = std::move(heap_[pos]);
    const uint32_t n = static_cast<uint32_t>(heap_.size());
    while (true) {
      uint32_t first = kArity * pos + 1;
      if (first >= n) break;
      uint32_t last = first + kArity < n ? first + kArity : n;
      uint32_t smallest = first;
      for (uint32_t c = first + 1; c < last; ++c) {
        if (cmp_(heap_[c].priority, heap_[smallest].priority)) smallest = c;
      }
      if (!cmp_(heap_[smallest].priority, slot.priority)) break;
      PlaceSlot(pos, std::move(heap_[smallest]));
      pos = smallest;
    }
    PlaceSlot(pos, std::move(slot));
  }

  void RemoveAt(uint32_t pos) {
    uint32_t id = heap_[pos].id;
    index_.erase(nodes_[id].key);
    nodes_[id].aux = Aux{};  // release aux resources
    free_.push_back(id);
    uint32_t last = static_cast<uint32_t>(heap_.size()) - 1;
    if (pos != last) {
      // Move the last heap entry into the hole, then restore order in
      // whichever direction is needed.
      PlaceSlot(pos, std::move(heap_[last]));
      heap_.pop_back();
      if (pos > 0 &&
          cmp_(heap_[pos].priority, heap_[(pos - 1) / kArity].priority)) {
        SiftUp(pos);
      } else {
        SiftDown(pos);
      }
    } else {
      heap_.pop_back();
    }
  }

  std::vector<Node> nodes_;
  /// Recycled node ids of erased keys.
  std::vector<uint32_t> free_;
  /// Heap order: position -> (priority, node id).
  std::vector<HeapSlot> heap_;
  /// By-key index: key -> node id (NOT heap position — ids are stable, so
  /// sifting never touches this map).
  FlatHashMap<K, uint32_t> index_;
  Compare cmp_;
};

}  // namespace cot

#endif  // COT_UTIL_INDEXED_MIN_HEAP_H_
