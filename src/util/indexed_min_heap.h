#ifndef COT_UTIL_INDEXED_MIN_HEAP_H_
#define COT_UTIL_INDEXED_MIN_HEAP_H_

#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "util/flat_hash_map.h"

namespace cot {

/// Binary min-heap with by-key addressing: every key appears at most once
/// and its priority can be updated or the key erased in O(log n) by key
/// alone. This is the core structure behind the space-saving tracker, the
/// CoT cache min-heap, the LFU cache, and the LRU-k eviction queue — all of
/// which need "find/replace the minimum" *and* "adjust an arbitrary key".
///
/// `Compare(a, b)` returning true means `a` has *higher* priority to stay at
/// the root (default `std::less`: smallest priority at the root).
///
/// Priorities may be compound (e.g. `std::pair` for tie-breaking). Keys must
/// be integers: the by-key index is a `FlatHashMap`, which keeps the
/// sift-path index updates (one per level) on cache-friendly flat storage.
/// Owners that know their capacity should pass it to the sizing constructor
/// (or call `Reserve`) so the index never rehashes in steady state.
template <typename K, typename P, typename Compare = std::less<P>>
class IndexedMinHeap {
 public:
  IndexedMinHeap() = default;
  explicit IndexedMinHeap(Compare cmp) : cmp_(std::move(cmp)) {}
  /// Pre-sizes heap storage and index for `expected_capacity` keys.
  explicit IndexedMinHeap(size_t expected_capacity, Compare cmp = Compare())
      : cmp_(std::move(cmp)) {
    Reserve(expected_capacity);
  }

  /// Pre-allocates for `expected_capacity` keys without changing content.
  void Reserve(size_t expected_capacity) {
    entries_.reserve(expected_capacity);
    index_.reserve(expected_capacity);
  }

  /// Number of keys in the heap.
  size_t size() const { return entries_.size(); }
  /// True when the heap holds no keys.
  bool empty() const { return entries_.empty(); }
  /// True if `key` is present.
  bool Contains(const K& key) const { return index_.count(key) != 0; }

  /// Key at the root (minimum). Heap must be non-empty.
  const K& TopKey() const {
    assert(!empty());
    return entries_[0].key;
  }
  /// Priority at the root. Heap must be non-empty.
  const P& TopPriority() const {
    assert(!empty());
    return entries_[0].priority;
  }

  /// Priority of `key`, which must be present.
  const P& PriorityOf(const K& key) const {
    auto it = index_.find(key);
    assert(it != index_.end());
    return entries_[it->second].priority;
  }

  /// Inserts `key` with `priority`. `key` must not already be present.
  void Push(const K& key, P priority) {
    assert(!Contains(key));
    entries_.push_back(Entry{key, std::move(priority)});
    index_[key] = entries_.size() - 1;
    SiftUp(entries_.size() - 1);
  }

  /// Removes and returns the root (key, priority). Heap must be non-empty.
  std::pair<K, P> Pop() {
    assert(!empty());
    std::pair<K, P> out{entries_[0].key, entries_[0].priority};
    RemoveAt(0);
    return out;
  }

  /// Changes the priority of an existing `key` and restores heap order.
  void Update(const K& key, P priority) {
    auto it = index_.find(key);
    assert(it != index_.end());
    size_t pos = it->second;
    bool decreased = cmp_(priority, entries_[pos].priority);
    entries_[pos].priority = std::move(priority);
    if (decreased) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  }

  /// Removes `key` if present; returns whether it was present.
  bool Erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    RemoveAt(it->second);
    return true;
  }

  /// Removes all keys.
  void Clear() {
    entries_.clear();
    index_.clear();
  }

  /// Visits every (key, priority) pair in unspecified (heap) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e.key, e.priority);
  }

  /// Applies `fn` to every priority in place. `fn` MUST be monotone
  /// (order-preserving) — e.g. scaling all hotness values by 0.5 during
  /// half-life decay — so the heap property is preserved without a rebuild.
  /// O(n), no re-heapification.
  template <typename Fn>
  void TransformPrioritiesMonotone(Fn&& fn) {
    for (Entry& e : entries_) e.priority = fn(e.priority);
    assert(CheckInvariants());
  }

  /// Verifies the heap invariant and index consistency; O(n). Intended for
  /// tests (property checks after random operation sequences).
  bool CheckInvariants() const {
    if (index_.size() != entries_.size()) return false;
    for (size_t i = 0; i < entries_.size(); ++i) {
      auto it = index_.find(entries_[i].key);
      if (it == index_.end() || it->second != i) return false;
      size_t left = 2 * i + 1, right = 2 * i + 2;
      if (left < entries_.size() &&
          cmp_(entries_[left].priority, entries_[i].priority)) {
        return false;
      }
      if (right < entries_.size() &&
          cmp_(entries_[right].priority, entries_[i].priority)) {
        return false;
      }
    }
    return true;
  }

 private:
  struct Entry {
    K key;
    P priority;
  };

  void Place(size_t pos, Entry entry) {
    index_[entry.key] = pos;
    entries_[pos] = std::move(entry);
  }

  void SiftUp(size_t pos) {
    Entry entry = std::move(entries_[pos]);
    while (pos > 0) {
      size_t parent = (pos - 1) / 2;
      if (!cmp_(entry.priority, entries_[parent].priority)) break;
      Place(pos, std::move(entries_[parent]));
      pos = parent;
    }
    Place(pos, std::move(entry));
  }

  void SiftDown(size_t pos) {
    Entry entry = std::move(entries_[pos]);
    size_t n = entries_.size();
    while (true) {
      size_t left = 2 * pos + 1;
      if (left >= n) break;
      size_t smallest = left;
      size_t right = left + 1;
      if (right < n &&
          cmp_(entries_[right].priority, entries_[left].priority)) {
        smallest = right;
      }
      if (!cmp_(entries_[smallest].priority, entry.priority)) break;
      Place(pos, std::move(entries_[smallest]));
      pos = smallest;
    }
    Place(pos, std::move(entry));
  }

  void RemoveAt(size_t pos) {
    index_.erase(entries_[pos].key);
    size_t last = entries_.size() - 1;
    if (pos != last) {
      Entry moved = std::move(entries_[last]);
      entries_.pop_back();
      // Re-insert the displaced entry at `pos`.
      entries_[pos] = std::move(moved);
      index_[entries_[pos].key] = pos;
      // Restore order in whichever direction is needed.
      if (pos > 0 &&
          cmp_(entries_[pos].priority, entries_[(pos - 1) / 2].priority)) {
        SiftUp(pos);
      } else {
        SiftDown(pos);
      }
    } else {
      entries_.pop_back();
    }
  }

  std::vector<Entry> entries_;
  FlatHashMap<K, size_t> index_;
  Compare cmp_;
};

}  // namespace cot

#endif  // COT_UTIL_INDEXED_MIN_HEAP_H_
