#ifndef COT_UTIL_HASH_H_
#define COT_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cot {

/// 64-bit FNV-1a over a byte string. Stable across platforms and runs; used
/// wherever a deterministic string hash is required (consistent hashing of
/// textual keys, test fixtures).
uint64_t Fnv1a64(std::string_view bytes);

/// The 64-bit finalizer ("fmix64") from MurmurHash3. A fast, high-quality
/// bijective mixer for integer keys; used to place integer keys and virtual
/// nodes on the consistent-hash ring, to scramble keys in the
/// ScrambledZipfian generator (matching YCSB, which uses the same finalizer
/// via FNV-ish hashing), and as the hash of `FlatHashMap`. Inline: the
/// flat-map and ring hot paths must not pay a cross-TU call per lookup.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines a hash value into a running seed (boost-style hash_combine,
/// 64-bit variant).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  seed ^= Mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

/// Hashes a (key, tag) pair — convenience for placing the i-th virtual node
/// of a server on the ring.
inline uint64_t HashPair(uint64_t a, uint64_t b) {
  return Mix64(HashCombine(Mix64(a), b));
}

}  // namespace cot

#endif  // COT_UTIL_HASH_H_
