#include "util/random.h"

#include <cassert>
#include <cmath>

namespace cot {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
  has_cached_gaussian_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound != 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Polar Box-Muller.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace cot
