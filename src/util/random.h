#ifndef COT_UTIL_RANDOM_H_
#define COT_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cot {

/// Deterministic 64-bit pseudo-random number generator (xoshiro256**).
///
/// All randomized components of the library take a `Rng` (or a seed used to
/// construct one) explicitly, so that every experiment is reproducible. The
/// generator is seeded through SplitMix64, which maps any 64-bit seed —
/// including 0 — to a full, well-mixed 256-bit state.
///
/// Not thread-safe; use one instance per thread.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically.
  void Seed(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns a uniformly distributed value in [0, bound). `bound` must be
  /// nonzero. Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBelow(uint64_t bound);

  /// Returns a uniformly distributed integer in the closed range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a double uniformly distributed in [0, 1) with 53 bits of
  /// precision.
  double NextDouble();

  /// Returns a sample from the standard normal distribution (Box-Muller,
  /// polar form, cached second value).
  double NextGaussian();

  /// Returns true with probability `p` (clamped into [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// SplitMix64 step: advances `*state` and returns the next output. Exposed
/// for hashing/scrambling uses (e.g. key scrambling in workload generators).
uint64_t SplitMix64(uint64_t* state);

}  // namespace cot

#endif  // COT_UTIL_RANDOM_H_
