#include "util/hash.h"

namespace cot {

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001B3ULL;  // FNV prime
  }
  return hash;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  seed ^= Mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

uint64_t HashPair(uint64_t a, uint64_t b) {
  return Mix64(HashCombine(Mix64(a), b));
}

}  // namespace cot
