#include "util/hash.h"

namespace cot {

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001B3ULL;  // FNV prime
  }
  return hash;
}

}  // namespace cot
