#include "util/flags.h"

#include <cassert>
#include <charconv>
#include <cstdlib>
#include <sstream>

namespace cot {

void FlagParser::AddString(const std::string& name, std::string default_value,
                           std::string help) {
  assert(flags_.find(name) == flags_.end());
  Flag flag;
  flag.type = Type::kString;
  flag.help = std::move(help);
  flag.string_value = std::move(default_value);
  flags_[name] = std::move(flag);
}

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          std::string help) {
  assert(flags_.find(name) == flags_.end());
  Flag flag;
  flag.type = Type::kInt64;
  flag.help = std::move(help);
  flag.int_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           std::string help) {
  assert(flags_.find(name) == flags_.end());
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = std::move(help);
  flag.double_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         std::string help) {
  assert(flags_.find(name) == flags_.end());
  Flag flag;
  flag.type = Type::kBool;
  flag.help = std::move(help);
  flag.bool_value = default_value;
  flags_[name] = std::move(flag);
}

Status FlagParser::SetValue(Flag& flag, const std::string& name,
                            const std::string& text) {
  switch (flag.type) {
    case Type::kString:
      flag.string_value = text;
      return Status::OK();
    case Type::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::InvalidArgument("--" + name +
                                       ": expected integer, got '" + text +
                                       "'");
      }
      flag.int_value = v;
      return Status::OK();
    }
    case Type::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size() || text.empty()) {
        return Status::InvalidArgument("--" + name +
                                       ": expected number, got '" + text +
                                       "'");
      }
      flag.double_value = v;
      return Status::OK();
    }
    case Type::kBool:
      if (text == "true" || text == "1") {
        flag.bool_value = true;
      } else if (text == "false" || text == "0") {
        flag.bool_value = false;
      } else {
        return Status::InvalidArgument("--" + name +
                                       ": expected true/false, got '" + text +
                                       "'");
      }
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::OK();
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        // Bare boolean flag.
        it->second.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("--" + name + ": missing value");
      }
      value = argv[++i];
    }
    Status s = SetValue(it->second, name, value);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

std::string FlagParser::Help() const {
  std::ostringstream os;
  os << "flags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.type) {
      case Type::kString:
        os << " (string, default \"" << flag.string_value << "\")";
        break;
      case Type::kInt64:
        os << " (int, default " << flag.int_value << ")";
        break;
      case Type::kDouble:
        os << " (number, default " << flag.double_value << ")";
        break;
      case Type::kBool:
        os << " (bool, default " << (flag.bool_value ? "true" : "false")
           << ")";
        break;
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

const std::string& FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && it->second.type == Type::kString);
  return it->second.string_value;
}

int64_t FlagParser::GetInt64(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && it->second.type == Type::kInt64);
  return it->second.int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && it->second.type == Type::kDouble);
  return it->second.double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && it->second.type == Type::kBool);
  return it->second.bool_value;
}

}  // namespace cot
