#ifndef COT_UTIL_FLAGS_H_
#define COT_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace cot {

/// Minimal dependency-free command-line flag parser for the repo's tools
/// and benches. Flags are declared with defaults and help text, then
/// parsed from `--name value` or `--name=value` arguments; bools also
/// accept bare `--name`. `--help` short-circuits (check
/// `help_requested()`), unknown flags and malformed values fail with a
/// descriptive status.
class FlagParser {
 public:
  /// Declares flags. Names are given without the leading dashes. Each name
  /// may be declared once; re-declaration asserts.
  void AddString(const std::string& name, std::string default_value,
                 std::string help);
  void AddInt64(const std::string& name, int64_t default_value,
                std::string help);
  void AddDouble(const std::string& name, double default_value,
                 std::string help);
  void AddBool(const std::string& name, bool default_value, std::string help);

  /// Parses `argv[1..)`. Returns the first error, or OK.
  Status Parse(int argc, char** argv);

  /// True when `--help` was seen; `Help()` is the text to print.
  bool help_requested() const { return help_requested_; }
  std::string Help() const;

  /// Typed accessors; the flag must have been declared with the matching
  /// type (asserted).
  const std::string& GetString(const std::string& name) const;
  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Type { kString, kInt64, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
  };

  Status SetValue(Flag& flag, const std::string& name,
                  const std::string& text);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace cot

#endif  // COT_UTIL_FLAGS_H_
