#ifndef COT_UTIL_FLAT_HASH_MAP_H_
#define COT_UTIL_FLAT_HASH_MAP_H_

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__SSE2__) && !defined(COT_FLAT_HASH_MAP_NO_SSE2)
#include <emmintrin.h>
#define COT_FLAT_HASH_MAP_HAVE_SSE2 1
#else
#define COT_FLAT_HASH_MAP_HAVE_SSE2 0
#endif

#include "util/hash.h"

namespace cot {

namespace flat_hash_map_detail {

/// Control bytes. A full slot stores the key's 7-bit H2 tag (high bit
/// clear); empty and tombstone sentinels have the high bit set, so "slot
/// holds an entry" is a single sign test and a whole group of slots can be
/// classified with one wide comparison.
inline constexpr uint8_t kEmpty = 0x80;
inline constexpr uint8_t kDeleted = 0xFE;

inline constexpr bool IsFull(uint8_t ctrl) { return (ctrl & 0x80) == 0; }

inline constexpr uint64_t kLsbs = 0x0101010101010101ULL;
inline constexpr uint64_t kMsbs = 0x8080808080808080ULL;

/// One unaligned 8-byte load of the control array (SWAR group).
inline uint64_t LoadGroupSwar(const uint8_t* p) {
  uint64_t g;
  std::memcpy(&g, p, sizeof(g));
  return g;
}

/// SWAR candidate mask: bit 8*i+7 is set for (at least) every byte i equal
/// to `h2`. The classic zero-byte trick borrows across bytes, so a byte
/// *following* a true match may be flagged spuriously — callers always
/// confirm candidates with a full key comparison, so false positives cost
/// one extra compare and never correctness.
inline uint64_t MatchH2Swar(uint64_t group, uint8_t h2) {
  uint64_t x = group ^ (kLsbs * h2);
  return (x - kLsbs) & ~x & kMsbs;
}

/// Exact reference implementation of the H2 match (scalar byte loop). The
/// SWAR mask must be a superset of this with false positives only in the
/// shadow of a true match — pinned by the path-equivalence tests.
inline uint64_t MatchH2Scalar(uint64_t group, uint8_t h2) {
  uint64_t mask = 0;
  for (int i = 0; i < 8; ++i) {
    if (static_cast<uint8_t>(group >> (8 * i)) == h2) {
      mask |= 0x80ULL << (8 * i);
    }
  }
  return mask;
}

/// Non-zero iff the group holds at least one kEmpty byte. Built on the same
/// zero-byte trick; spurious per-byte bits can only appear when a lower
/// byte truly matched, so the any-of answer is exact.
inline uint64_t MatchEmptySwar(uint64_t group) {
  uint64_t x = group ^ (kLsbs * kEmpty);
  return (x - kLsbs) & ~x & kMsbs;
}

inline uint64_t MatchEmptyScalar(uint64_t group) {
  uint64_t mask = 0;
  for (int i = 0; i < 8; ++i) {
    if (static_cast<uint8_t>(group >> (8 * i)) == kEmpty) {
      mask |= 0x80ULL << (8 * i);
    }
  }
  return mask;
}

/// Bit 8*i+7 set for every non-full byte i (empty or tombstone). Exact:
/// sentinels are the only control bytes with the high bit set.
inline uint64_t MatchEmptyOrDeletedSwar(uint64_t group) {
  return group & kMsbs;
}

inline constexpr uint64_t kLow7s = 0x7F7F7F7F7F7F7F7FULL;

/// EXACT per-byte kEmpty mask (bit 8*i+7 set iff byte i == kEmpty, no
/// false positives). Masking to the low 7 bits before the carry-add keeps
/// every byte's computation independent — costlier than MatchEmptySwar by
/// two ops, but usable where individual bit positions matter (the erase
/// path's never-full window test), not just the any-of predicate.
inline uint64_t MatchEmptyExactSwar(uint64_t group) {
  uint64_t x = group ^ (kLsbs * kEmpty);
  return ~((x & kLow7s) + kLow7s) & ~x & kMsbs;
}

inline uint64_t MatchEmptyExactScalar(uint64_t group) {
  return MatchEmptyScalar(group);  // the scalar loop is already exact
}

}  // namespace flat_hash_map_detail

/// Open-addressing hash map for integer keys — the hot-path replacement for
/// `std::unordered_map` in the tracker, the indexed heaps, the replacement
/// policies, and the back-end shard stores.
///
/// Layout is Swiss-table style: entries live inline in one flat slot array,
/// and a separate control-byte array mirrors it — one byte per slot holding
/// either a sentinel (empty / tombstone) or the 7 low bits of the key's
/// hash (the "H2" tag). A lookup hashes once, then scans the control array
/// a *group* at a time: 16 bytes per probe with SSE2, else 8 bytes via
/// portable SWAR on a `uint64_t`. One wide compare rejects a whole group of
/// non-matching slots, so the common case touches one cache line of
/// metadata and (on a hit) exactly one slot — strictly less probe work than
/// the per-slot robin-hood walk this map replaces, and the entire
/// improvement is inherited by every owner without call-site changes.
///
/// Erase writes a tombstone (kDeleted). Tombstoned slots are reused by
/// later inserts (the probe takes the first empty-or-tombstone slot on the
/// key's probe path), and purged wholesale whenever the table rehashes; the
/// growth trigger counts full+tombstone slots, so probe chains cannot
/// degrade unboundedly under churn.
///
/// Semantics match the `unordered_map` subset the codebase uses — `find`,
/// `operator[]`, `erase(key)`, `count`, `clear`, `reserve`, `size`,
/// range-for over `std::pair<K, V>` — with two deliberate deviations:
///   - iterators and references are invalidated by *any* insert (the table
///     may rehash); never hold one across a mutation;
///   - iteration order is unspecified and changes as the table grows.
///
/// Keys must be integers (they are hashed through Mix64); values need only
/// be movable and default-constructible. A default-constructed map owns no
/// storage; `reserve` (or the sizing constructor) pre-allocates so a
/// capacity-bounded owner never rehashes in steady state.
///
/// The `kUseSimd` template parameter exists for the path-equivalence test
/// campaign (forcing the portable SWAR probe on SSE2 hardware); production
/// code uses the default.
template <typename K, typename V,
          bool kUseSimd = (COT_FLAT_HASH_MAP_HAVE_SSE2 != 0)>
class FlatHashMap {
  static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                "FlatHashMap keys must be integers (hashed via Mix64)");
  static_assert(!kUseSimd || COT_FLAT_HASH_MAP_HAVE_SSE2,
                "kUseSimd requires SSE2");

 public:
  using value_type = std::pair<K, V>;

  FlatHashMap() = default;

  /// Pre-sizes the table for `expected_size` entries without rehashing.
  explicit FlatHashMap(size_t expected_size) { reserve(expected_size); }

  FlatHashMap(const FlatHashMap&) = default;
  FlatHashMap(FlatHashMap&&) noexcept = default;
  FlatHashMap& operator=(const FlatHashMap&) = default;
  FlatHashMap& operator=(FlatHashMap&&) noexcept = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slots allocated (diagnostic; >= size() / kMaxLoadNum * kMaxLoadDen).
  size_t bucket_count() const { return slots_.size(); }

  /// Tombstoned slots (diagnostic): erased entries whose slot could not be
  /// returned to the empty state. High counts on a steady-size table mean
  /// probe chains are longer than the load factor alone suggests.
  size_t tombstone_count() const {
    size_t n = 0;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i] == flat_hash_map_detail::kDeleted) ++n;
    }
    return n;
  }

 private:
  template <bool kConst>
  class Iter {
    using MapPtr =
        std::conditional_t<kConst, const FlatHashMap*, FlatHashMap*>;
    using Ref = std::conditional_t<kConst, const value_type&, value_type&>;
    using Ptr = std::conditional_t<kConst, const value_type*, value_type*>;

   public:
    Iter() = default;
    Iter(MapPtr map, size_t idx) : map_(map), idx_(idx) {}
    /// const_iterator from iterator.
    template <bool C = kConst, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& other) : map_(other.map_), idx_(other.idx_) {}

    Ref operator*() const { return map_->slots_[idx_]; }
    Ptr operator->() const { return &map_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }
    Iter operator++(int) {
      Iter out = *this;
      ++*this;
      return out;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.idx_ == b.idx_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.idx_ != b.idx_;
    }

   private:
    friend class FlatHashMap;
    void SkipEmpty() {
      while (idx_ < map_->slots_.size() &&
             !flat_hash_map_detail::IsFull(map_->ctrl_[idx_])) {
        ++idx_;
      }
    }
    MapPtr map_ = nullptr;
    size_t idx_ = 0;
  };

 public:
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() {
    iterator it(this, 0);
    it.SkipEmpty();
    return it;
  }
  iterator end() { return iterator(this, slots_.size()); }
  const_iterator begin() const {
    const_iterator it(this, 0);
    it.SkipEmpty();
    return it;
  }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  iterator find(const K& key) {
    return iterator(this, FindIndexOrEnd(key));
  }
  const_iterator find(const K& key) const {
    return const_iterator(this, FindIndexOrEnd(key));
  }
  size_t count(const K& key) const {
    return FindIndex(key) == kNotFound ? 0 : 1;
  }
  bool contains(const K& key) const { return FindIndex(key) != kNotFound; }

  /// Finds `key` or inserts it with a default-constructed value, in one
  /// probe pass over the table (the lookup and the search for an insertable
  /// slot share the same group scan). Returns the entry and whether it was
  /// inserted. This is the primitive behind operator[]; callers that need
  /// to distinguish "found" from "created" (e.g. the indexed heap's fused
  /// access-or-admit path) use it directly.
  std::pair<iterator, bool> find_or_insert(const K& key) {
    if (slots_.empty()) Rehash(kMinSlots);
    const uint64_t hash = Hash(key);
    const uint8_t h2 = H2(hash);
    // Restarted after an in-place purge or rehash (both relocate entries).
    while (true) {
      const size_t mask = slots_.size() - 1;
      size_t pos = H1(hash) & mask;
      size_t insert_idx = kNotFound;
      while (true) {
        Group g = Group::Load(ctrl_.data() + pos);
        auto candidates = g.MatchH2(h2);
        while (candidates != 0) {
          size_t idx = (pos + Group::NextOffset(candidates)) & mask;
          if (slots_[idx].first == key) return {iterator(this, idx), false};
        }
        if (insert_idx == kNotFound) {
          auto open = g.MatchEmptyOrDeleted();
          if (open != 0) insert_idx = (pos + Group::NextOffset(open)) & mask;
        }
        if (g.MatchEmpty() != 0) break;
        pos = (pos + kGroupWidth) & mask;
      }
      // Absent: install at the first open slot seen on the probe path.
      const bool reuse_tombstone =
          ctrl_[insert_idx] == flat_hash_map_detail::kDeleted;
      if (!reuse_tombstone && growth_left_ == 0) {
        if (SlotsFor(size_ + 1) <= slots_.size()) {
          DropDeletesWithoutResize();
        } else {
          Rehash(SlotsFor(size_ + 1));
        }
        continue;
      }
      if (!reuse_tombstone) --growth_left_;
      SetCtrl(insert_idx, h2);
      slots_[insert_idx].first = key;
      slots_[insert_idx].second = V{};
      ++size_;
      return {iterator(this, insert_idx), true};
    }
  }

  /// Value for `key`, default-constructing it on first access.
  V& operator[](const K& key) { return find_or_insert(key).first->second; }

  /// Inserts or overwrites. Returns true if a new entry was created.
  bool insert_or_assign(const K& key, V value) {
    auto [it, inserted] = find_or_insert(key);
    it->second = std::move(value);
    return inserted;
  }

  /// Removes `key`; returns the number of entries removed (0 or 1).
  ///
  /// The vacated slot becomes truly empty (returning its growth budget)
  /// whenever the surrounding control bytes prove that no probe chain can
  /// pass through it — i.e. the window of `kGroupWidth` slots covering it
  /// always presents an empty byte that would have terminated any probe
  /// earlier. Otherwise a tombstone is left: later inserts on the same
  /// probe path reuse it, and tombstones are purged wholesale at the next
  /// rehash. Without this test, erase-heavy steady states (the tracker's
  /// space-saving replacement loop) accumulate tombstones until every
  /// insert triggers a purge.
  size_t erase(const K& key) {
    size_t idx = FindIndex(key);
    if (idx == kNotFound) return 0;
    if (WasNeverFull(idx)) {
      SetCtrl(idx, flat_hash_map_detail::kEmpty);
      ++growth_left_;
    } else {
      SetCtrl(idx, flat_hash_map_detail::kDeleted);
    }
    slots_[idx] = value_type{};  // release resources held by the value
    --size_;
    return 1;
  }

  /// Removes every entry; keeps the allocated table (tombstones included —
  /// they are purged along with everything else).
  void clear() {
    std::fill(ctrl_.begin(), ctrl_.end(), flat_hash_map_detail::kEmpty);
    for (value_type& slot : slots_) slot = value_type{};
    size_ = 0;
    growth_left_ = MaxLoad(slots_.size());
  }

  /// Grows the table so `expected_size` entries fit without rehashing.
  void reserve(size_t expected_size) {
    size_t needed = SlotsFor(expected_size);
    if (needed > slots_.size()) Rehash(needed);
  }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  static constexpr size_t kMinSlots = 8;
  /// Probe granularity: control bytes scanned per wide load.
  static constexpr size_t kGroupWidth = kUseSimd ? 16 : 8;
  /// Cloned control bytes past the end so an unaligned group load starting
  /// at any slot never wraps: ctrl_[cap + j] mirrors ctrl_[j & (cap - 1)].
  static constexpr size_t kGroupTail = kGroupWidth - 1;
  // Max load factor 7/8 counted over full *and* tombstoned slots: at least
  // one slot in eight stays truly empty, which is what terminates every
  // probe loop.
  static constexpr size_t kMaxLoadNum = 7;
  static constexpr size_t kMaxLoadDen = 8;

  static size_t MaxLoad(size_t cap) { return cap / kMaxLoadDen * kMaxLoadNum; }

  static uint64_t Hash(const K& key) {
    return Mix64(static_cast<uint64_t>(key));
  }
  static uint8_t H2(uint64_t hash) { return static_cast<uint8_t>(hash & 0x7F); }
  static size_t H1(uint64_t hash) { return static_cast<size_t>(hash >> 7); }

  /// Smallest power-of-two slot count that holds `n` entries within the max
  /// load factor.
  static size_t SlotsFor(size_t n) {
    size_t slots = kMinSlots;
    while (slots * kMaxLoadNum < n * kMaxLoadDen) slots <<= 1;
    return slots;
  }

  // --- group probe primitives --------------------------------------------
  // Each returns a per-slot bitmask; NextCandidate pops the lowest set bit
  // and yields its slot offset within the group. The SWAR H2 match may
  // contain false positives (see flat_hash_map_detail) — every candidate is
  // confirmed against the stored key.

#if COT_FLAT_HASH_MAP_HAVE_SSE2
  struct GroupSse2 {
    __m128i bytes;
    static GroupSse2 Load(const uint8_t* p) {
      return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
    }
    uint32_t MatchH2(uint8_t h2) const {
      return static_cast<uint32_t>(_mm_movemask_epi8(
          _mm_cmpeq_epi8(bytes, _mm_set1_epi8(static_cast<char>(h2)))));
    }
    uint32_t MatchEmpty() const {
      return static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(
          bytes,
          _mm_set1_epi8(static_cast<char>(flat_hash_map_detail::kEmpty)))));
    }
    uint32_t MatchEmptyOrDeleted() const {
      // Sentinels are exactly the bytes with the sign bit set.
      return static_cast<uint32_t>(_mm_movemask_epi8(bytes));
    }
    // cmpeq is exact per byte already.
    uint32_t MatchEmptyExact() const { return MatchEmpty(); }
    static size_t NextOffset(uint32_t& mask) {
      size_t off = static_cast<size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      return off;
    }
    /// Slots before the first matching byte (mask must be from this group).
    static size_t TrailingNonMatches(uint32_t mask) {
      return static_cast<size_t>(std::countr_zero(mask));
    }
    /// Slots after the last matching byte.
    static size_t LeadingNonMatches(uint32_t mask) {
      return static_cast<size_t>(std::countl_zero(mask << 16));
    }
  };
#endif

  struct GroupSwar {
    uint64_t bytes;
    static GroupSwar Load(const uint8_t* p) {
      return {flat_hash_map_detail::LoadGroupSwar(p)};
    }
    uint64_t MatchH2(uint8_t h2) const {
      return flat_hash_map_detail::MatchH2Swar(bytes, h2);
    }
    uint64_t MatchEmpty() const {
      return flat_hash_map_detail::MatchEmptySwar(bytes);
    }
    uint64_t MatchEmptyOrDeleted() const {
      return flat_hash_map_detail::MatchEmptyOrDeletedSwar(bytes);
    }
    uint64_t MatchEmptyExact() const {
      return flat_hash_map_detail::MatchEmptyExactSwar(bytes);
    }
    static size_t NextOffset(uint64_t& mask) {
      size_t off = static_cast<size_t>(std::countr_zero(mask)) / 8;
      mask &= mask - 1;
      return off;
    }
    static size_t TrailingNonMatches(uint64_t mask) {
      return static_cast<size_t>(std::countr_zero(mask)) / 8;
    }
    static size_t LeadingNonMatches(uint64_t mask) {
      return static_cast<size_t>(std::countl_zero(mask)) / 8;
    }
  };

#if COT_FLAT_HASH_MAP_HAVE_SSE2
  using Group = std::conditional_t<kUseSimd, GroupSse2, GroupSwar>;
#else
  using Group = GroupSwar;
#endif

  /// True when no probe sequence can ever have stepped *past* slot `idx`:
  /// every group-aligned window covering `idx` contains an empty byte both
  /// strictly before and strictly after it within one group width (the
  /// Abseil-style erase test). In that case the erased slot may become
  /// empty instead of a tombstone. Small tables (capacity <= group width)
  /// are always eligible — a single group load covers every slot, so no
  /// probe ever advances beyond its first group.
  bool WasNeverFull(size_t idx) const {
    const size_t cap = slots_.size();
    if (cap <= kGroupWidth) return true;
    const size_t before_idx = (idx - kGroupWidth) & (cap - 1);
    auto after = Group::Load(ctrl_.data() + idx).MatchEmptyExact();
    auto before = Group::Load(ctrl_.data() + before_idx).MatchEmptyExact();
    return after != 0 && before != 0 &&
           Group::TrailingNonMatches(after) +
                   Group::LeadingNonMatches(before) <
               kGroupWidth;
  }

  /// Writes a control byte and its wrap-around mirror(s). For capacities of
  /// at least kGroupTail this is at most two stores.
  void SetCtrl(size_t idx, uint8_t value) {
    ctrl_[idx] = value;
    size_t cap = slots_.size();
    for (size_t m = idx + cap; m < cap + kGroupTail; m += cap) {
      ctrl_[m] = value;
    }
  }

  size_t FindIndex(const K& key) const {
    if (slots_.empty()) return kNotFound;
    const size_t mask = slots_.size() - 1;
    const uint64_t hash = Hash(key);
    const uint8_t h2 = H2(hash);
    size_t pos = H1(hash) & mask;
    // Linear probing by whole groups. kGroupWidth divides every capacity
    // >= kGroupWidth, and smaller tables are covered entirely by the first
    // group (the cloned tail wraps them), so the sequence visits every
    // slot; the max-load invariant guarantees a truly-empty byte
    // terminates it.
    while (true) {
      Group g = Group::Load(ctrl_.data() + pos);
      auto candidates = g.MatchH2(h2);
      while (candidates != 0) {
        size_t idx = (pos + Group::NextOffset(candidates)) & mask;
        if (slots_[idx].first == key) return idx;
      }
      if (g.MatchEmpty() != 0) return kNotFound;
      pos = (pos + kGroupWidth) & mask;
    }
  }

  size_t FindIndexOrEnd(const K& key) const {
    size_t idx = FindIndex(key);
    return idx == kNotFound ? slots_.size() : idx;
  }

  /// First empty-or-tombstone slot on `key`'s probe path. The table always
  /// holds at least one true empty (max-load invariant), so this
  /// terminates.
  size_t FindInsertSlot(uint64_t hash) const {
    const size_t mask = slots_.size() - 1;
    size_t pos = H1(hash) & mask;
    while (true) {
      Group g = Group::Load(ctrl_.data() + pos);
      auto open = g.MatchEmptyOrDeleted();
      if (open != 0) return (pos + Group::NextOffset(open)) & mask;
      pos = (pos + kGroupWidth) & mask;
    }
  }

  /// Reclaims every tombstone without reallocating (Abseil's
  /// drop_deletes_without_resize): mark tombstones empty and full slots
  /// "pending", then re-place each pending element on its probe path —
  /// moving into empties, swapping with other pending elements, or staying
  /// put when already within its target probe group. O(capacity), zero
  /// allocation; afterwards the table is tombstone-free.
  void DropDeletesWithoutResize() {
    const size_t cap = slots_.size();
    const size_t mask = cap - 1;
    // Phase 1: kDeleted -> kEmpty; full -> kDeleted (meaning "pending
    // re-placement" from here on).
    for (size_t i = 0; i < cap; ++i) {
      ctrl_[i] = flat_hash_map_detail::IsFull(ctrl_[i])
                     ? flat_hash_map_detail::kDeleted
                     : flat_hash_map_detail::kEmpty;
    }
    for (size_t j = 0; j < kGroupTail; ++j) ctrl_[cap + j] = ctrl_[j];
    // Phase 2: re-place pending elements. Each iteration settles one
    // element (placed or kept), so this terminates in <= 2*cap steps.
    for (size_t i = 0; i < cap; ++i) {
      while (ctrl_[i] == flat_hash_map_detail::kDeleted) {
        const uint64_t hash = Hash(slots_[i].first);
        const size_t start = H1(hash) & mask;
        const size_t target = FindInsertSlot(hash);
        // Probe-group index of a position on this key's probe sequence.
        auto probe_group = [&](size_t p) {
          return ((p - start) & mask) / kGroupWidth;
        };
        if (probe_group(target) == probe_group(i)) {
          // Already within the group the probe would land in — keep.
          SetCtrl(i, H2(hash));
          break;
        }
        if (ctrl_[target] == flat_hash_map_detail::kEmpty) {
          SetCtrl(target, H2(hash));
          slots_[target] = std::move(slots_[i]);
          slots_[i] = value_type{};
          SetCtrl(i, flat_hash_map_detail::kEmpty);
          break;
        }
        // Target holds another pending element: place ours there and
        // re-process the displaced one, now sitting at i.
        assert(ctrl_[target] == flat_hash_map_detail::kDeleted);
        SetCtrl(target, H2(hash));
        std::swap(slots_[i], slots_[target]);
      }
    }
    growth_left_ = MaxLoad(cap) - size_;
  }

  void Rehash(size_t new_slots) {
    assert((new_slots & (new_slots - 1)) == 0 && new_slots >= kMinSlots);
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    slots_.assign(new_slots, value_type{});
    ctrl_.assign(new_slots + kGroupTail, flat_hash_map_detail::kEmpty);
    growth_left_ = MaxLoad(new_slots);
    const size_t mask = new_slots - 1;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (!flat_hash_map_detail::IsFull(old_ctrl[i])) continue;
      // Known-absent insert into a tombstone-free table: the first empty
      // slot on the probe path is the destination.
      const uint64_t hash = Hash(old_slots[i].first);
      size_t pos = H1(hash) & mask;
      size_t idx;
      while (true) {
        Group g = Group::Load(ctrl_.data() + pos);
        auto open = g.MatchEmptyOrDeleted();
        if (open != 0) {
          idx = (pos + Group::NextOffset(open)) & mask;
          break;
        }
        pos = (pos + kGroupWidth) & mask;
      }
      SetCtrl(idx, H2(hash));
      slots_[idx] = std::move(old_slots[i]);
      --growth_left_;
    }
    size_t live = size_;
    (void)live;
    assert(growth_left_ == MaxLoad(new_slots) - size_);
  }

  std::vector<value_type> slots_;
  /// One byte per slot plus kGroupTail cloned wrap bytes; empty when the
  /// map owns no storage.
  std::vector<uint8_t> ctrl_;
  size_t size_ = 0;
  /// Empty slots that may still be consumed before the next rehash
  /// (MaxLoad(capacity) minus full-plus-tombstone slots).
  size_t growth_left_ = 0;
};

}  // namespace cot

#endif  // COT_UTIL_FLAT_HASH_MAP_H_
