#ifndef COT_UTIL_FLAT_HASH_MAP_H_
#define COT_UTIL_FLAT_HASH_MAP_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace cot {

/// Open-addressing hash map for integer keys — the hot-path replacement for
/// `std::unordered_map` in the tracker, the indexed heaps, and the
/// replacement policies.
///
/// Node-based `std::unordered_map` costs one allocation plus at least one
/// dependent pointer chase per lookup; microbenchmarks show those chases
/// dominate per-access cost for every policy. This map stores entries
/// inline in one flat array (robin-hood linear probing, power-of-two
/// capacity, Mix64 hashing), so a lookup is a masked index plus a short
/// contiguous scan. Erase uses backward-shift deletion, so there are no
/// tombstones and probe sequences never degrade over time.
///
/// Semantics match the `unordered_map` subset the codebase uses — `find`,
/// `operator[]`, `erase(key)`, `count`, `clear`, `reserve`, `size`,
/// range-for over `std::pair<K, V>` — with two deliberate deviations:
///   - iterators and references are invalidated by *any* insert or erase
///     (entries move during probing); never hold one across a mutation;
///   - iteration order is unspecified and changes as the table grows.
///
/// Keys must be integers (they are hashed through Mix64); values need only
/// be movable. A default-constructed map owns no storage; `reserve` (or the
/// sizing constructor) pre-allocates so a capacity-bounded owner never
/// rehashes in steady state.
template <typename K, typename V>
class FlatHashMap {
  static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                "FlatHashMap keys must be integers (hashed via Mix64)");

 public:
  using value_type = std::pair<K, V>;

  FlatHashMap() = default;

  /// Pre-sizes the table for `expected_size` entries without rehashing.
  explicit FlatHashMap(size_t expected_size) { reserve(expected_size); }

  FlatHashMap(const FlatHashMap&) = default;
  FlatHashMap(FlatHashMap&&) noexcept = default;
  FlatHashMap& operator=(const FlatHashMap&) = default;
  FlatHashMap& operator=(FlatHashMap&&) noexcept = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slots allocated (diagnostic; >= size() / kMaxLoadNum * kMaxLoadDen).
  size_t bucket_count() const { return slots_.size(); }

 private:
  template <bool kConst>
  class Iter {
    using MapPtr =
        std::conditional_t<kConst, const FlatHashMap*, FlatHashMap*>;
    using Ref = std::conditional_t<kConst, const value_type&, value_type&>;
    using Ptr = std::conditional_t<kConst, const value_type*, value_type*>;

   public:
    Iter() = default;
    Iter(MapPtr map, size_t idx) : map_(map), idx_(idx) {}
    /// const_iterator from iterator.
    template <bool C = kConst, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& other) : map_(other.map_), idx_(other.idx_) {}

    Ref operator*() const { return map_->slots_[idx_]; }
    Ptr operator->() const { return &map_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }
    Iter operator++(int) {
      Iter out = *this;
      ++*this;
      return out;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.idx_ == b.idx_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.idx_ != b.idx_;
    }

   private:
    friend class FlatHashMap;
    void SkipEmpty() {
      while (idx_ < map_->slots_.size() && map_->dist_[idx_] == 0) ++idx_;
    }
    MapPtr map_ = nullptr;
    size_t idx_ = 0;
  };

 public:
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() {
    iterator it(this, 0);
    it.SkipEmpty();
    return it;
  }
  iterator end() { return iterator(this, slots_.size()); }
  const_iterator begin() const {
    const_iterator it(this, 0);
    it.SkipEmpty();
    return it;
  }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  iterator find(const K& key) {
    return iterator(this, FindIndexOrEnd(key));
  }
  const_iterator find(const K& key) const {
    return const_iterator(this, FindIndexOrEnd(key));
  }
  size_t count(const K& key) const {
    return FindIndex(key) == kNotFound ? 0 : 1;
  }
  bool contains(const K& key) const { return FindIndex(key) != kNotFound; }

  /// Value for `key`, default-constructing it on first access.
  V& operator[](const K& key) {
    size_t idx = FindIndex(key);
    if (idx != kNotFound) return slots_[idx].second;
    ReserveForOneMore();
    return slots_[InsertFresh(key)].second;
  }

  /// Inserts or overwrites. Returns true if a new entry was created.
  bool insert_or_assign(const K& key, V value) {
    size_t idx = FindIndex(key);
    if (idx != kNotFound) {
      slots_[idx].second = std::move(value);
      return false;
    }
    ReserveForOneMore();
    slots_[InsertFresh(key)].second = std::move(value);
    return true;
  }

  /// Removes `key`; returns the number of entries removed (0 or 1).
  size_t erase(const K& key) {
    size_t idx = FindIndex(key);
    if (idx == kNotFound) return 0;
    // Backward-shift deletion: pull every displaced successor one slot
    // toward its home bucket; no tombstones are left behind.
    size_t mask = slots_.size() - 1;
    size_t next = (idx + 1) & mask;
    while (dist_[next] > 1) {
      slots_[idx] = std::move(slots_[next]);
      dist_[idx] = static_cast<uint8_t>(dist_[next] - 1);
      idx = next;
      next = (next + 1) & mask;
    }
    dist_[idx] = 0;
    slots_[idx] = value_type{};  // release resources held by the value
    --size_;
    return 1;
  }

  /// Removes every entry; keeps the allocated table.
  void clear() {
    std::fill(dist_.begin(), dist_.end(), uint8_t{0});
    for (value_type& slot : slots_) slot = value_type{};
    size_ = 0;
  }

  /// Grows the table so `expected_size` entries fit without rehashing.
  void reserve(size_t expected_size) {
    size_t needed = SlotsFor(expected_size);
    if (needed > slots_.size()) Rehash(needed);
  }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  static constexpr size_t kMinSlots = 8;
  // Max load factor 7/8: high enough that the table stays compact, low
  // enough that robin-hood probe lengths stay short.
  static constexpr size_t kMaxLoadNum = 7;
  static constexpr size_t kMaxLoadDen = 8;

  static size_t Hash(const K& key) {
    return static_cast<size_t>(Mix64(static_cast<uint64_t>(key)));
  }

  /// Smallest power-of-two slot count that holds `n` entries within the max
  /// load factor.
  static size_t SlotsFor(size_t n) {
    size_t slots = kMinSlots;
    while (slots * kMaxLoadNum < n * kMaxLoadDen) slots <<= 1;
    return slots;
  }

  size_t FindIndex(const K& key) const {
    if (slots_.empty()) return kNotFound;
    size_t mask = slots_.size() - 1;
    size_t idx = Hash(key) & mask;
    uint8_t d = 1;
    while (true) {
      // Robin-hood invariant: if the resident entry is closer to its home
      // than we would be, the key cannot be further along the probe chain.
      if (dist_[idx] < d) return kNotFound;
      if (slots_[idx].first == key) return idx;
      idx = (idx + 1) & mask;
      ++d;
    }
  }

  size_t FindIndexOrEnd(const K& key) const {
    size_t idx = FindIndex(key);
    return idx == kNotFound ? slots_.size() : idx;
  }

  void ReserveForOneMore() {
    if (slots_.empty() ||
        (size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      Rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
    }
  }

  /// Robin-hood insertion of a key known to be absent, with room
  /// guaranteed. Returns the slot where `key` landed.
  size_t InsertFresh(K key) {
    value_type carry{key, V{}};
    size_t mask = slots_.size() - 1;
    size_t idx = Hash(key) & mask;
    uint8_t d = 1;
    size_t key_slot = kNotFound;
    while (true) {
      if (dist_[idx] == 0) {
        slots_[idx] = std::move(carry);
        dist_[idx] = d;
        ++size_;
        return key_slot == kNotFound ? idx : key_slot;
      }
      if (dist_[idx] < d) {
        // Steal from the rich: the resident is closer to home, so it yields
        // its slot and gets carried forward instead.
        std::swap(carry, slots_[idx]);
        std::swap(d, dist_[idx]);
        if (key_slot == kNotFound) key_slot = idx;
      }
      idx = (idx + 1) & mask;
      ++d;
      if (d == UINT8_MAX) {
        // Probe chain about to overflow the distance byte (pathological
        // clustering). Grow the table — which re-places everything already
        // resident, including `key` if a swap placed it — then insert the
        // still-carried entry into the bigger table.
        bool key_was_placed = key_slot != kNotFound;
        Rehash(slots_.size() * 2);
        size_t carried_slot = InsertFresh(carry.first);
        slots_[carried_slot].second = std::move(carry.second);
        if (!key_was_placed) return carried_slot;  // carry was `key` itself
        key_slot = FindIndex(key);
        assert(key_slot != kNotFound);
        return key_slot;
      }
    }
  }

  void Rehash(size_t new_slots) {
    assert((new_slots & (new_slots - 1)) == 0);
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<uint8_t> old_dist = std::move(dist_);
    slots_.assign(new_slots, value_type{});
    dist_.assign(new_slots, 0);
    size_ = 0;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_dist[i] == 0) continue;
      size_t slot = InsertFresh(old_slots[i].first);
      slots_[slot].second = std::move(old_slots[i].second);
    }
  }

  std::vector<value_type> slots_;
  std::vector<uint8_t> dist_;  // 0 = empty; d >= 1 = 1-based probe distance
  size_t size_ = 0;
};

}  // namespace cot

#endif  // COT_UTIL_FLAT_HASH_MAP_H_
