#ifndef COT_UTIL_STATUS_H_
#define COT_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cot {

/// Error category carried by a `Status`.
///
/// The set mirrors the subset of canonical codes this library actually
/// produces; keeping the list small makes exhaustive switches practical.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

/// Returns the canonical lower-case name of `code` (e.g. "invalid_argument").
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error indicator used across the public API instead of
/// exceptions (the library is exception-free by design, following the
/// RocksDB/Arrow convention for database code).
///
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// human-readable message. `Status` is cheap to copy (one string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A union of a `Status` and a value of type `T`: either holds a usable `T`
/// (when `ok()`) or an error status explaining why no value exists.
///
/// Accessing the value of a non-OK `StatusOr` is a programming error and
/// asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `s` must not be OK.
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT: implicit by design
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value)  // NOLINT: implicit by design
      : status_(Status::OK()), value_(std::move(value)) {}

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The underlying status.
  const Status& status() const { return status_; }

  /// The contained value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  /// Convenience accessors mirroring std::optional.
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cot

#endif  // COT_UTIL_STATUS_H_
