#ifndef COT_UTIL_MIN_HEAP_CORE_H_
#define COT_UTIL_MIN_HEAP_CORE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <variant>
#include <vector>

namespace cot {

/// Index-free 4-ary min-heap addressed by stable node ids. This is the
/// sifting core shared by `IndexedMinHeap` (which adds an internal by-key
/// hash index) and by owners that keep the key -> id mapping *themselves* —
/// the space-saving tracker stores the id in its own metadata table, and
/// the CoT cache heap needs no key index at all because residency is
/// recorded on the tracker node. Separating the heap from the index is
/// what lets one hash probe serve several structures.
///
/// `Compare(a, b)` returning true means `a` has *higher* priority to stay
/// at the root (default `std::less`: smallest priority at the root).
/// `P` should be cheaply copyable — sift loops keep the running minimum in
/// a register and copy child priorities while selecting it.
///
/// Layout, tuned for sift-heavy access patterns:
///   - Priorities and slot ids are parallel arrays (struct-of-arrays): a
///     sift comparison only touches the priority array, so a 4-ary level's
///     children read one cache line of priorities (16-byte `HotnessKey`)
///     with no id/padding interleaved; ids are read only on an actual move.
///   - The child-minimum selection is written as conditional moves over a
///     register-held running minimum, which compiles branch-free for
///     integer-comparable priorities — heap-ordered data makes those
///     branches unpredictable, and mispredicts dominate an L1-resident
///     sift.
///   - Arity 4 halves the depth of the sift-down that dominates
///     replace-the-minimum workloads (space-saving admission).
///   - Each node (key, heap position, aux payload) has a stable id for the
///     lifetime of its key: sifting moves heap slots, never nodes, so an id
///     obtained once stays valid across any number of reorderings and is
///     invalidated only by `EraseAt`/`PopTop`/`Clear` of that key.
///
/// The owner is responsible for key uniqueness and for mapping keys to ids;
/// the core never checks either. `Aux` carries per-key payload (counters,
/// values) inside the node so the owner's single probe reaches everything.
template <typename K, typename P, typename Compare = std::less<P>,
          typename Aux = std::monostate>
class MinHeapCore {
 public:
  /// Stable handle to a key's node; valid until the key is removed.
  using Id = uint32_t;
  static constexpr Id kInvalidId = static_cast<Id>(-1);

  MinHeapCore() = default;
  explicit MinHeapCore(Compare cmp) : cmp_(std::move(cmp)) {}
  /// Pre-sizes node and heap storage for `expected_capacity` keys.
  explicit MinHeapCore(size_t expected_capacity, Compare cmp = Compare())
      : cmp_(std::move(cmp)) {
    Reserve(expected_capacity);
  }

  /// Pre-allocates for `expected_capacity` keys without changing content.
  void Reserve(size_t expected_capacity) {
    nodes_.reserve(expected_capacity);
    priorities_.reserve(expected_capacity);
    slot_ids_.reserve(expected_capacity);
  }

  /// Number of keys in the heap.
  size_t size() const { return slot_ids_.size(); }
  /// True when the heap holds no keys.
  bool empty() const { return slot_ids_.empty(); }

  /// Node id at the root (minimum). Heap must be non-empty.
  Id TopId() const {
    assert(!empty());
    return slot_ids_[0];
  }
  /// Key at the root. Heap must be non-empty.
  const K& TopKey() const {
    assert(!empty());
    return nodes_[slot_ids_[0]].key;
  }
  /// Priority at the root. Heap must be non-empty.
  const P& TopPriority() const {
    assert(!empty());
    return priorities_[0];
  }

  /// Key of a valid node id.
  const K& KeyAt(Id id) const { return nodes_[id].key; }
  /// Priority of a valid node id.
  const P& PriorityAt(Id id) const {
    return priorities_[nodes_[id].heap_pos];
  }
  /// Aux payload of a valid node id.
  Aux& AuxAt(Id id) { return nodes_[id].aux; }
  const Aux& AuxAt(Id id) const { return nodes_[id].aux; }

  /// Changes the priority of the node `id` and restores heap order. The id
  /// stays valid (ids survive sifting).
  void UpdateAt(Id id, P priority) {
    uint32_t pos = nodes_[id].heap_pos;
    bool decreased = cmp_(priority, priorities_[pos]);
    priorities_[pos] = std::move(priority);
    if (decreased) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  }

  /// Opportunistic O(1) cousin of `UpdateAt` for priority *raises*: if the
  /// raise does not violate heap order at the node's current position, the
  /// slot is re-stamped in place and nothing sifts. That covers two common
  /// cases — the node sits on a leaf (3/4 of a 4-ary heap; parent ≤ old ≤
  /// new always holds), or the new priority is still ≤ every child (a
  /// raise inside a tie-pack, checked against one cache line of child
  /// priorities). Returns false, touching nothing, when the raise would
  /// need a real sift. Lazily-maintained owners call this on every raise
  /// to keep most slots exact, which starves the deferred-repair loop that
  /// otherwise pays a full-depth sift per stale slot surfacing at the
  /// root. `priority` must not compare below the node's current slot
  /// priority.
  bool TryRaiseInPlace(Id id, P priority) {
    uint32_t pos = nodes_[id].heap_pos;
    assert(!cmp_(priority, priorities_[pos]));
    const uint32_t n = static_cast<uint32_t>(slot_ids_.size());
    const uint32_t first = kArity * pos + 1;
    if (first < n) {
      const uint32_t last = first + kArity < n ? first + kArity : n;
      for (uint32_t c = first; c < last; ++c) {
        if (cmp_(priorities_[c], priority)) return false;
      }
    }
    priorities_[pos] = std::move(priority);
    return true;
  }

  /// Inserts a new node; returns its id. The owner must guarantee `key` is
  /// not already present.
  Id Push(const K& key, P priority, Aux aux = Aux{}) {
    uint32_t id = AllocNode(key, std::move(aux));
    uint32_t pos = static_cast<uint32_t>(slot_ids_.size());
    priorities_.push_back(std::move(priority));
    slot_ids_.push_back(id);
    nodes_[id].heap_pos = pos;
    SiftUp(pos);
    return id;
  }

  /// Replaces the root's key/priority/aux in place and restores heap order
  /// — the space-saving "evict min, admit newcomer" move. Equivalent to
  /// PopTop() + Push(key, ...) but reuses the root's node (a single
  /// sift-down that usually stops after a level or two since the newcomer's
  /// priority is near the evicted minimum, and no full-depth re-sink of an
  /// arbitrary leaf). Heap must be non-empty; the owner must drop its
  /// mapping for the evicted key (read `TopKey()` first) and record the
  /// returned id — which is the root's reused id — for the newcomer.
  Id ReplaceTop(const K& key, P priority, Aux aux = Aux{}) {
    assert(!empty());
    uint32_t id = slot_ids_[0];
    nodes_[id].key = key;
    nodes_[id].aux = std::move(aux);
    priorities_[0] = std::move(priority);
    SiftDown(0);
    return id;
  }

  /// Removes and returns the root (key, priority). Heap must be non-empty.
  /// The root's id becomes invalid (it is recycled for a future Push).
  std::pair<K, P> PopTop() {
    assert(!empty());
    std::pair<K, P> out{nodes_[slot_ids_[0]].key, std::move(priorities_[0])};
    RemoveAt(0);
    return out;
  }

  /// Removes the node `id`, which becomes invalid (recycled).
  void EraseAt(Id id) { RemoveAt(nodes_[id].heap_pos); }

  /// Removes all keys; every id becomes invalid.
  void Clear() {
    nodes_.clear();
    free_.clear();
    priorities_.clear();
    slot_ids_.clear();
  }

  /// Visits every (key, priority) pair in unspecified (heap) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slot_ids_.size(); ++i) {
      fn(nodes_[slot_ids_[i]].key, priorities_[i]);
    }
  }

  /// Visits every live node id in unspecified (heap) order. Combine with
  /// KeyAt/PriorityAt/AuxAt — the mutable-aux iteration primitive (e.g.
  /// half-life decay of per-key counters stored as aux).
  template <typename Fn>
  void ForEachId(Fn&& fn) {
    for (uint32_t id : slot_ids_) fn(static_cast<Id>(id));
  }
  template <typename Fn>
  void ForEachId(Fn&& fn) const {
    for (uint32_t id : slot_ids_) fn(static_cast<Id>(id));
  }

  /// Applies `fn` to every priority in place. `fn` MUST be monotone
  /// (order-preserving) — e.g. scaling all hotness values by 0.5 during
  /// half-life decay — so the heap property is preserved without a rebuild.
  /// O(n), no re-heapification.
  template <typename Fn>
  void TransformPrioritiesMonotone(Fn&& fn) {
    for (P& priority : priorities_) priority = fn(priority);
    assert(CheckInvariants());
  }

  /// Verifies the heap invariant and node/slot cross-links; O(n). The
  /// owner's key -> id mapping is checked by the owner. Test hook.
  bool CheckInvariants() const {
    if (priorities_.size() != slot_ids_.size()) return false;
    if (slot_ids_.size() + free_.size() != nodes_.size()) return false;
    for (size_t i = 0; i < slot_ids_.size(); ++i) {
      uint32_t id = slot_ids_[i];
      if (id >= nodes_.size()) return false;
      if (nodes_[id].heap_pos != i) return false;
      for (size_t c = kArity * i + 1;
           c < kArity * i + 1 + kArity && c < slot_ids_.size(); ++c) {
        if (cmp_(priorities_[c], priorities_[i])) return false;
      }
    }
    return true;
  }

 private:
  /// Stable per-key state; a key's node id is fixed for its lifetime.
  struct Node {
    K key;
    uint32_t heap_pos;
    // Overlaps padding when Aux is the empty default.
    [[no_unique_address]] Aux aux;
  };

  static constexpr uint32_t kArity = 4;

  /// Allocates (or recycles) a node for `key`; heap_pos is set by the
  /// caller once the heap slot exists.
  uint32_t AllocNode(const K& key, Aux aux) {
    if (!free_.empty()) {
      uint32_t id = free_.back();
      free_.pop_back();
      nodes_[id].key = key;
      nodes_[id].aux = std::move(aux);
      return id;
    }
    uint32_t id = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{key, 0, std::move(aux)});
    return id;
  }

  void PlaceSlot(uint32_t pos, P priority, uint32_t id) {
    nodes_[id].heap_pos = pos;
    priorities_[pos] = std::move(priority);
    slot_ids_[pos] = id;
  }

  void SiftUp(uint32_t pos) {
    P priority = std::move(priorities_[pos]);
    uint32_t id = slot_ids_[pos];
    while (pos > 0) {
      uint32_t parent = (pos - 1) / kArity;
      if (!cmp_(priority, priorities_[parent])) break;
      PlaceSlot(pos, std::move(priorities_[parent]), slot_ids_[parent]);
      pos = parent;
    }
    PlaceSlot(pos, std::move(priority), id);
  }

  void SiftDown(uint32_t pos) {
    P priority = std::move(priorities_[pos]);
    uint32_t id = slot_ids_[pos];
    const uint32_t n = static_cast<uint32_t>(slot_ids_.size());
    while (true) {
      uint32_t first = kArity * pos + 1;
      if (first >= n) break;
      uint32_t last = first + kArity < n ? first + kArity : n;
      // Register-held running minimum; `?:` over the copied priority keeps
      // the selection conditional-move-friendly (see class comment).
      uint32_t smallest = first;
      P min_priority = priorities_[first];
      for (uint32_t c = first + 1; c < last; ++c) {
        const bool less = cmp_(priorities_[c], min_priority);
        min_priority = less ? priorities_[c] : min_priority;
        smallest = less ? c : smallest;
      }
      if (!cmp_(min_priority, priority)) break;
      PlaceSlot(pos, std::move(min_priority), slot_ids_[smallest]);
      pos = smallest;
    }
    PlaceSlot(pos, std::move(priority), id);
  }

  void RemoveAt(uint32_t pos) {
    uint32_t id = slot_ids_[pos];
    nodes_[id].aux = Aux{};  // release aux resources
    free_.push_back(id);
    uint32_t last = static_cast<uint32_t>(slot_ids_.size()) - 1;
    if (pos != last) {
      // Move the last heap entry into the hole, then restore order in
      // whichever direction is needed.
      PlaceSlot(pos, std::move(priorities_[last]), slot_ids_[last]);
      priorities_.pop_back();
      slot_ids_.pop_back();
      if (pos > 0 && cmp_(priorities_[pos], priorities_[(pos - 1) / kArity])) {
        SiftUp(pos);
      } else {
        SiftDown(pos);
      }
    } else {
      priorities_.pop_back();
      slot_ids_.pop_back();
    }
  }

  std::vector<Node> nodes_;
  /// Recycled node ids of erased keys.
  std::vector<uint32_t> free_;
  /// Heap order, struct-of-arrays: position -> priority / node id.
  std::vector<P> priorities_;
  std::vector<uint32_t> slot_ids_;
  Compare cmp_;
};

}  // namespace cot

#endif  // COT_UTIL_MIN_HEAP_CORE_H_
