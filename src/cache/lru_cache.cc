#include "cache/lru_cache.h"

namespace cot::cache {

LruCache::LruCache(size_t capacity) : capacity_(capacity), map_(capacity) {}

std::optional<Value> LruCache::Get(Key key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  recency_.splice(recency_.begin(), recency_, it->second);
  ++stats_.hits;
  return it->second->value;
}

void LruCache::Put(Key key, Value value) {
  if (capacity_ == 0) return;
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->value = value;
    recency_.splice(recency_.begin(), recency_, it->second);
    return;
  }
  if (map_.size() >= capacity_) EvictOne();
  recency_.push_front(Entry{key, value});
  map_[key] = recency_.begin();
  ++stats_.insertions;
}

void LruCache::Invalidate(Key key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  recency_.erase(it->second);
  map_.erase(key);
  ++stats_.invalidations;
}

bool LruCache::Contains(Key key) const { return map_.count(key) != 0; }

Status LruCache::Resize(size_t new_capacity) {
  capacity_ = new_capacity;
  map_.reserve(capacity_);
  while (map_.size() > capacity_) EvictOne();
  return Status::OK();
}

void LruCache::EvictOne() {
  const Entry& victim = recency_.back();
  map_.erase(victim.key);
  recency_.pop_back();
  ++stats_.evictions;
}

}  // namespace cot::cache
