#include "cache/perfect_cache.h"

namespace cot::cache {

PerfectCache::PerfectCache(std::vector<Key> hot_keys)
    : hot_set_(hot_keys.begin(), hot_keys.end()) {}

std::optional<Value> PerfectCache::Get(Key key) {
  if (hot_set_.count(key) != 0) {
    ++stats_.hits;
    return Value{key};  // oracle: value identity mirrors the key
  }
  ++stats_.misses;
  return std::nullopt;
}

void PerfectCache::Put(Key /*key*/, Value /*value*/) {}

void PerfectCache::Invalidate(Key /*key*/) {}

bool PerfectCache::Contains(Key key) const {
  return hot_set_.count(key) != 0;
}

Status PerfectCache::Resize(size_t /*new_capacity*/) {
  return Status::Unimplemented(
      "perfect cache content is fixed at construction");
}

}  // namespace cot::cache
