#ifndef COT_CACHE_PERFECT_CACHE_H_
#define COT_CACHE_PERFECT_CACHE_H_

#include <unordered_set>
#include <vector>

#include "cache/cache.h"

namespace cot::cache {

/// Oracle "perfect cache" (Fan et al. 2011, and the paper's TPC series in
/// Figure 4): given the true hot-most C keys of the workload, every access
/// to one of them hits and every other access misses. Not implementable
/// online — it exists to upper-bound what any C-line replacement policy can
/// achieve, and to validate CoT's claim of near-perfect behaviour.
class PerfectCache : public Cache {
 public:
  /// Creates an oracle over the given hot set (its size is the capacity).
  explicit PerfectCache(std::vector<Key> hot_keys);

  std::optional<Value> Get(Key key) override;
  /// No-op: the oracle's content is fixed by construction.
  void Put(Key key, Value value) override;
  /// No-op (metrics-only oracle; hot keys stay hot).
  void Invalidate(Key key) override;
  bool Contains(Key key) const override;
  size_t size() const override { return hot_set_.size(); }
  size_t capacity() const override { return hot_set_.size(); }
  Status Resize(size_t new_capacity) override;
  std::string name() const override { return "perfect"; }

 private:
  std::unordered_set<Key> hot_set_;
};

}  // namespace cot::cache

#endif  // COT_CACHE_PERFECT_CACHE_H_
