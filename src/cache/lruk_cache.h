#ifndef COT_CACHE_LRUK_CACHE_H_
#define COT_CACHE_LRUK_CACHE_H_

#include <cstdint>
#include <list>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "util/flat_hash_map.h"
#include "util/indexed_min_heap.h"

namespace cot::cache {

/// LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD 1993), with K = 2 by
/// default (LRU-2, "the most responsive LRU-k" per the paper's evaluation).
///
/// Each reference is stamped with a logical clock. The eviction victim is
/// the resident key whose K-th most recent reference is oldest; keys with
/// fewer than K references have infinite backward K-distance and are
/// evicted first (oldest last reference breaks ties). Reference histories
/// of evicted (and invalidated) keys are retained in a bounded LRU history
/// — the paper always configures this history to the same size as CoT's
/// tracker, which is what makes LRU-2 its strongest static competitor.
///
/// The original paper's Correlated Reference Period is 0 here (every
/// reference counts), the standard setting for hit-rate comparisons.
class LrukCache : public Cache {
 public:
  /// Creates a cache of `capacity` entries retaining reference metadata for
  /// up to `history_capacity` evicted keys, with `k` tracked references.
  LrukCache(size_t capacity, size_t history_capacity, int k = 2);

  std::optional<Value> Get(Key key) override;
  void Put(Key key, Value value) override;
  void Invalidate(Key key) override;
  bool Contains(Key key) const override;
  size_t size() const override { return resident_.size(); }
  size_t capacity() const override { return capacity_; }
  Status Resize(size_t new_capacity) override;
  std::string name() const override;

  /// Number of keys currently retained in the evicted-key history.
  size_t history_size() const { return history_.size(); }
  /// History capacity (the paper's "history size").
  size_t history_capacity() const { return history_capacity_; }

 private:
  /// Most recent references, newest first; at most `k_` entries.
  using RefTimes = std::vector<uint64_t>;

  struct Resident {
    Value value;
    RefTimes times;
  };
  struct Ghost {
    RefTimes times;
    std::list<Key>::iterator lru_pos;
  };

  // Eviction priority: (K-th most recent reference or 0, last reference).
  using Priority = std::pair<uint64_t, uint64_t>;

  Priority PriorityFor(const RefTimes& times) const;
  void RecordReference(RefTimes& times);
  void EvictOne();
  /// Moves `key`'s reference times into the ghost history (bounded LRU).
  void RetireToHistory(Key key, RefTimes times);

  size_t capacity_;
  size_t history_capacity_;
  int k_;
  uint64_t clock_ = 0;

  FlatHashMap<Key, Resident> resident_;
  IndexedMinHeap<Key, Priority> evict_heap_;

  FlatHashMap<Key, Ghost> history_;
  std::list<Key> history_lru_;  // front = most recently retired/refreshed
};

}  // namespace cot::cache

#endif  // COT_CACHE_LRUK_CACHE_H_
