#ifndef COT_CACHE_LRU_CACHE_H_
#define COT_CACHE_LRU_CACHE_H_

#include <list>

#include "cache/cache.h"
#include "util/flat_hash_map.h"

namespace cot::cache {

/// Least-Recently-Used replacement: O(1) per operation via an intrusive
/// recency list plus a hash index. The classic front-end policy the paper
/// compares against; its weakness (Section 3) is that any recently touched
/// cold key evicts a hotter one, which is fatal for tiny caches over
/// long-tailed workloads.
class LruCache : public Cache {
 public:
  /// Creates an LRU cache holding at most `capacity` entries.
  explicit LruCache(size_t capacity);

  std::optional<Value> Get(Key key) override;
  void Put(Key key, Value value) override;
  void Invalidate(Key key) override;
  bool Contains(Key key) const override;
  size_t size() const override { return map_.size(); }
  size_t capacity() const override { return capacity_; }
  Status Resize(size_t new_capacity) override;
  std::string name() const override { return "lru"; }

 private:
  struct Entry {
    Key key;
    Value value;
  };
  using List = std::list<Entry>;

  void EvictOne();

  size_t capacity_;
  List recency_;  // front = most recent
  FlatHashMap<Key, List::iterator> map_;
};

}  // namespace cot::cache

#endif  // COT_CACHE_LRU_CACHE_H_
