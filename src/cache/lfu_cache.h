#ifndef COT_CACHE_LFU_CACHE_H_
#define COT_CACHE_LFU_CACHE_H_

#include <cstdint>
#include <utility>

#include "cache/cache.h"
#include "util/flat_hash_map.h"
#include "util/indexed_min_heap.h"

namespace cot::cache {

/// Least-Frequently-Used replacement backed by an indexed min-heap, exactly
/// the O(log C) structure the paper describes (Section 3). The key at the
/// heap root has the fewest hits while resident and is the eviction victim.
/// Frequency counts start at 1 on insertion and are *not* remembered across
/// evictions (no history — that limitation, shared with LRU, is what CoT's
/// tracker removes). Ties on frequency evict the least recently inserted.
class LfuCache : public Cache {
 public:
  /// Creates an LFU cache holding at most `capacity` entries.
  explicit LfuCache(size_t capacity);

  std::optional<Value> Get(Key key) override;
  void Put(Key key, Value value) override;
  void Invalidate(Key key) override;
  bool Contains(Key key) const override;
  size_t size() const override { return values_.size(); }
  size_t capacity() const override { return capacity_; }
  Status Resize(size_t new_capacity) override;
  std::string name() const override { return "lfu"; }

  /// Frequency of a resident key (test hook); 0 when absent.
  uint64_t FrequencyOf(Key key) const;

 private:
  // Priority: (frequency, insertion sequence) — min-heap pops the coldest,
  // oldest entry.
  using Priority = std::pair<uint64_t, uint64_t>;

  void EvictOne();

  size_t capacity_;
  uint64_t next_seq_ = 0;
  IndexedMinHeap<Key, Priority> heap_;
  FlatHashMap<Key, Value> values_;
};

}  // namespace cot::cache

#endif  // COT_CACHE_LFU_CACHE_H_
