#ifndef COT_CACHE_MQ_CACHE_H_
#define COT_CACHE_MQ_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/cache.h"

namespace cot::cache {

/// Multi-Queue replacement (Zhou, Philbin & Li, USENIX ATC 2001) — the
/// online-adaptive policy ARC was shown to beat, cited by the paper
/// (Section 4) among the multiple-LRU-queue ancestors of CoT's tracker.
///
/// Resident entries live in `m` LRU queues; an entry with access
/// frequency `f` belongs to queue `min(floor(log2 f), m-1)`, so hotter
/// entries sit in higher queues and are evicted last. Every entry carries
/// an expiry (`now + life_time`); queue heads that outlive it are demoted
/// one queue, which ages out stale frequency. Evicted keys keep their
/// frequency in a bounded ghost history `Qout` and resume it on return.
class MqCache : public Cache {
 public:
  /// Creates an MQ cache of `capacity` entries with `num_queues` queues, a
  /// ghost history of `ghost_capacity` keys (0 picks the paper's default
  /// of 4x capacity), and the given `life_time` in accesses (0 picks
  /// 8x capacity).
  explicit MqCache(size_t capacity, int num_queues = 8,
                   size_t ghost_capacity = 0, uint64_t life_time = 0);

  std::optional<Value> Get(Key key) override;
  void Put(Key key, Value value) override;
  void Invalidate(Key key) override;
  bool Contains(Key key) const override;
  size_t size() const override { return resident_.size(); }
  size_t capacity() const override { return capacity_; }
  Status Resize(size_t new_capacity) override;
  std::string name() const override { return "mq"; }

  /// Frequency of a resident key (test hook); 0 when absent.
  uint64_t FrequencyOf(Key key) const;
  /// Queue index a resident key currently occupies; -1 when absent.
  int QueueOf(Key key) const;
  /// Ghost history size (test hook).
  size_t ghost_size() const { return ghosts_.size(); }

 private:
  struct Resident {
    Value value;
    uint64_t frequency;
    uint64_t expire_at;
    int queue;
    std::list<Key>::iterator pos;
  };
  struct Ghost {
    uint64_t frequency;
    std::list<Key>::iterator pos;
  };

  int QueueForFrequency(uint64_t frequency) const;
  /// Places `key` (already in `resident_`) at the MRU end of the queue
  /// matching its frequency and refreshes its expiry.
  void Enqueue(Key key);
  /// Demotes expired queue heads one level (the MQ "Adjust" step).
  void AdjustExpired();
  void EvictOne();
  void AddGhost(Key key, uint64_t frequency);

  size_t capacity_;
  int num_queues_;
  size_t ghost_capacity_;
  uint64_t life_time_;
  uint64_t now_ = 0;

  std::vector<std::list<Key>> queues_;  // front = MRU
  std::unordered_map<Key, Resident> resident_;
  std::unordered_map<Key, Ghost> ghosts_;
  std::list<Key> ghost_fifo_;  // front = newest
};

}  // namespace cot::cache

#endif  // COT_CACHE_MQ_CACHE_H_
