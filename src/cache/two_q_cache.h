#ifndef COT_CACHE_TWO_Q_CACHE_H_
#define COT_CACHE_TWO_Q_CACHE_H_

#include <list>
#include <unordered_map>

#include "cache/cache.h"

namespace cot::cache {

/// 2Q replacement (Johnson & Shasha, VLDB 1994) — the "full version" with
/// A1in/A1out/Am. One of the tracking-beyond-the-cache policies the paper
/// cites (Section 4) as fixed-memory ancestors of CoT's tracker.
///
/// New keys enter a small FIFO `A1in`; only keys re-referenced *after*
/// falling out of A1in (their ghosts live in `A1out`) are promoted into
/// the main LRU `Am`. A sequential scan therefore flows through A1in
/// without ever touching the hot working set in Am.
///
/// Defaults follow the paper: |A1in| = C/4, |A1out| = C/2 (ghost keys,
/// metadata only). Resident capacity C is split between A1in and Am.
class TwoQCache : public Cache {
 public:
  /// Creates a 2Q cache of `capacity` resident entries. `kin_fraction` and
  /// `kout_fraction` size A1in and A1out as fractions of the capacity.
  explicit TwoQCache(size_t capacity, double kin_fraction = 0.25,
                     double kout_fraction = 0.5);

  std::optional<Value> Get(Key key) override;
  void Put(Key key, Value value) override;
  void Invalidate(Key key) override;
  bool Contains(Key key) const override;
  size_t size() const override;
  size_t capacity() const override { return capacity_; }
  Status Resize(size_t new_capacity) override;
  std::string name() const override { return "2q"; }

  /// Queue sizes (test hook): {|A1in|, |Am|, |A1out|}.
  struct QueueSizes {
    size_t a1in, am, a1out;
  };
  QueueSizes queue_sizes() const;

 private:
  enum class Where : uint8_t { kA1in, kAm, kA1out };

  struct Entry {
    Where where;
    std::list<Key>::iterator pos;
    Value value;  // valid for resident entries only
  };

  std::list<Key>& ListFor(Where where);
  /// Frees one resident slot per the 2Q RECLAIM rule.
  void ReclaimOne();

  size_t capacity_;
  size_t kin_limit_;
  size_t kout_limit_;
  std::list<Key> a1in_;   // FIFO, front = newest
  std::list<Key> am_;     // LRU, front = MRU
  std::list<Key> a1out_;  // ghost FIFO, front = newest
  std::unordered_map<Key, Entry> dir_;
  size_t resident_ = 0;
};

}  // namespace cot::cache

#endif  // COT_CACHE_TWO_Q_CACHE_H_
