#include "cache/arc_cache.h"

#include <algorithm>
#include <cassert>

namespace cot::cache {

// The directory indexes resident and ghost entries: up to 2c keys.
ArcCache::ArcCache(size_t capacity)
    : capacity_(capacity), dir_(2 * capacity) {}

std::list<Key>& ArcCache::ListFor(ListId id) {
  switch (id) {
    case ListId::kT1:
      return t1_;
    case ListId::kT2:
      return t2_;
    case ListId::kB1:
      return b1_;
    case ListId::kB2:
      return b2_;
  }
  return t1_;  // unreachable
}

void ArcCache::MoveTo(Key key, ListId target) {
  auto it = dir_.find(key);
  assert(it != dir_.end());
  bool was_resident =
      it->second.list == ListId::kT1 || it->second.list == ListId::kT2;
  bool now_resident = target == ListId::kT1 || target == ListId::kT2;
  ListFor(it->second.list).erase(it->second.pos);
  std::list<Key>& dst = ListFor(target);
  dst.push_front(key);
  it->second.list = target;
  it->second.pos = dst.begin();
  if (was_resident && !now_resident) --resident_;
  if (!was_resident && now_resident) ++resident_;
}

void ArcCache::Remove(Key key) {
  auto it = dir_.find(key);
  assert(it != dir_.end());
  if (it->second.list == ListId::kT1 || it->second.list == ListId::kT2) {
    --resident_;
  }
  ListFor(it->second.list).erase(it->second.pos);
  dir_.erase(key);
}

void ArcCache::Replace(bool key_was_in_b2) {
  // REPLACE(x, p) from the ARC paper: evict from T1 when it exceeds the
  // target (or exactly meets it and the request came through B2), else
  // from T2; the victim's key survives in the matching ghost list.
  //
  // Classic ARC only reaches REPLACE with a full cache. Our API adds
  // Invalidate(), which can leave ghosts behind with free resident slots;
  // in that state there is nothing to evict and REPLACE is a no-op.
  if (resident_ < capacity_) return;
  if (!t1_.empty() &&
      (static_cast<double>(t1_.size()) > p_ ||
       (key_was_in_b2 && static_cast<double>(t1_.size()) == p_))) {
    Key victim = t1_.back();
    MoveTo(victim, ListId::kB1);
  } else {
    assert(!t2_.empty());
    Key victim = t2_.back();
    MoveTo(victim, ListId::kB2);
  }
  ++stats_.evictions;
}

std::optional<Value> ArcCache::Get(Key key) {
  auto it = dir_.find(key);
  if (it == dir_.end() ||
      (it->second.list != ListId::kT1 && it->second.list != ListId::kT2)) {
    ++stats_.misses;
    return std::nullopt;
  }
  // Case I: hit — promote to the frequency list.
  Value v = it->second.value;
  MoveTo(key, ListId::kT2);
  ++stats_.hits;
  return v;
}

void ArcCache::Put(Key key, Value value) {
  if (capacity_ == 0) return;
  const double c = static_cast<double>(capacity_);
  auto it = dir_.find(key);
  if (it != dir_.end()) {
    switch (it->second.list) {
      case ListId::kT1:
      case ListId::kT2:
        // Already resident: refresh value and treat as a frequency signal.
        it->second.value = value;
        MoveTo(key, ListId::kT2);
        return;
      case ListId::kB1: {
        // Case II: ghost hit on the recency side — grow p.
        double delta = b1_.size() >= b2_.size()
                           ? 1.0
                           : static_cast<double>(b2_.size()) /
                                 static_cast<double>(b1_.size());
        p_ = std::min(c, p_ + delta);
        Replace(/*key_was_in_b2=*/false);
        MoveTo(key, ListId::kT2);
        dir_[key].value = value;
        ++stats_.insertions;
        return;
      }
      case ListId::kB2: {
        // Case III: ghost hit on the frequency side — shrink p.
        double delta = b2_.size() >= b1_.size()
                           ? 1.0
                           : static_cast<double>(b1_.size()) /
                                 static_cast<double>(b2_.size());
        p_ = std::max(0.0, p_ - delta);
        Replace(/*key_was_in_b2=*/true);
        MoveTo(key, ListId::kT2);
        dir_[key].value = value;
        ++stats_.insertions;
        return;
      }
    }
  }
  // Case IV: completely new key.
  if (t1_.size() + b1_.size() == capacity_) {
    // Case IV(a).
    if (t1_.size() < capacity_) {
      Remove(b1_.back());
      Replace(/*key_was_in_b2=*/false);
    } else {
      // B1 is empty and T1 is full: discard T1's LRU outright.
      Remove(t1_.back());
      ++stats_.evictions;
    }
  } else if (t1_.size() + b1_.size() < capacity_) {
    // Case IV(b).
    size_t total = t1_.size() + t2_.size() + b1_.size() + b2_.size();
    if (total >= capacity_) {
      if (total == 2 * capacity_) Remove(b2_.back());
      Replace(/*key_was_in_b2=*/false);
    }
  }
  t1_.push_front(key);
  dir_[key] = Entry{ListId::kT1, t1_.begin(), value};
  ++resident_;
  ++stats_.insertions;
}

void ArcCache::Invalidate(Key key) {
  auto it = dir_.find(key);
  if (it == dir_.end()) return;
  if (it->second.list == ListId::kT1 || it->second.list == ListId::kT2) {
    ++stats_.invalidations;
  }
  Remove(key);
}

bool ArcCache::Contains(Key key) const {
  auto it = dir_.find(key);
  return it != dir_.end() &&
         (it->second.list == ListId::kT1 || it->second.list == ListId::kT2);
}

size_t ArcCache::size() const { return resident_; }

Status ArcCache::Resize(size_t /*new_capacity*/) {
  return Status::Unimplemented(
      "ARC defines its invariants for a fixed capacity c; see CoT for an "
      "elastic policy");
}

ArcCache::ListSizes ArcCache::list_sizes() const {
  return ListSizes{t1_.size(), t2_.size(), b1_.size(), b2_.size()};
}

bool ArcCache::CheckInvariants() const {
  size_t c = capacity_;
  if (t1_.size() + t2_.size() > c) return false;
  if (t1_.size() + b1_.size() > c) return false;
  if (t1_.size() + t2_.size() + b1_.size() + b2_.size() > 2 * c) return false;
  if (p_ < 0.0 || p_ > static_cast<double>(c)) return false;
  if (resident_ != t1_.size() + t2_.size()) return false;
  if (dir_.size() != t1_.size() + t2_.size() + b1_.size() + b2_.size()) {
    return false;
  }
  return true;
}

}  // namespace cot::cache
