#include "cache/mq_cache.h"

#include <cassert>

namespace cot::cache {

MqCache::MqCache(size_t capacity, int num_queues, size_t ghost_capacity,
                 uint64_t life_time)
    : capacity_(capacity),
      num_queues_(num_queues),
      ghost_capacity_(ghost_capacity != 0 ? ghost_capacity : 4 * capacity),
      life_time_(life_time != 0 ? life_time : 8 * capacity),
      queues_(static_cast<size_t>(num_queues)) {
  assert(num_queues >= 1);
  if (life_time_ == 0) life_time_ = 1;  // capacity 0 edge
  resident_.reserve(capacity_);
  ghosts_.reserve(ghost_capacity_);
}

int MqCache::QueueForFrequency(uint64_t frequency) const {
  int q = 0;
  while (frequency > 1 && q < num_queues_ - 1) {
    frequency >>= 1;
    ++q;
  }
  return q;
}

void MqCache::Enqueue(Key key) {
  Resident& entry = resident_[key];
  int q = QueueForFrequency(entry.frequency);
  queues_[q].push_front(key);
  entry.queue = q;
  entry.pos = queues_[q].begin();
  entry.expire_at = now_ + life_time_;
}

void MqCache::AdjustExpired() {
  // One pass over queue heads per access, as in the paper: demote the LRU
  // entry of each non-bottom queue whose lifetime expired.
  for (int q = 1; q < num_queues_; ++q) {
    if (queues_[q].empty()) continue;
    Key tail = queues_[q].back();
    Resident& entry = resident_[tail];
    if (entry.expire_at < now_) {
      queues_[q].pop_back();
      int down = q - 1;
      queues_[down].push_front(tail);
      entry.queue = down;
      entry.pos = queues_[down].begin();
      entry.expire_at = now_ + life_time_;
    }
  }
}

std::optional<cache::Value> MqCache::Get(Key key) {
  ++now_;
  AdjustExpired();
  auto it = resident_.find(key);
  if (it == resident_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  queues_[it->second.queue].erase(it->second.pos);
  ++it->second.frequency;
  Enqueue(key);
  ++stats_.hits;
  return it->second.value;
}

void MqCache::Put(Key key, Value value) {
  if (capacity_ == 0) return;
  ++now_;
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    it->second.value = value;
    return;
  }
  uint64_t frequency = 1;
  auto ghost = ghosts_.find(key);
  if (ghost != ghosts_.end()) {
    frequency = ghost->second.frequency + 1;  // resume remembered hotness
    ghost_fifo_.erase(ghost->second.pos);
    ghosts_.erase(ghost);
  }
  if (resident_.size() >= capacity_) EvictOne();
  resident_[key] = Resident{value, frequency, 0, 0, {}};
  Enqueue(key);
  ++stats_.insertions;
}

void MqCache::EvictOne() {
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    Key victim = queue.back();
    queue.pop_back();
    auto it = resident_.find(victim);
    assert(it != resident_.end());
    AddGhost(victim, it->second.frequency);
    resident_.erase(it);
    ++stats_.evictions;
    return;
  }
}

void MqCache::AddGhost(Key key, uint64_t frequency) {
  if (ghost_capacity_ == 0) return;
  while (ghosts_.size() >= ghost_capacity_) {
    Key oldest = ghost_fifo_.back();
    ghost_fifo_.pop_back();
    ghosts_.erase(oldest);
  }
  ghost_fifo_.push_front(key);
  ghosts_[key] = Ghost{frequency, ghost_fifo_.begin()};
}

void MqCache::Invalidate(Key key) {
  auto it = resident_.find(key);
  if (it == resident_.end()) return;
  queues_[it->second.queue].erase(it->second.pos);
  AddGhost(key, it->second.frequency);
  resident_.erase(it);
  ++stats_.invalidations;
}

bool MqCache::Contains(Key key) const { return resident_.count(key) != 0; }

Status MqCache::Resize(size_t new_capacity) {
  capacity_ = new_capacity;
  while (resident_.size() > capacity_) EvictOne();
  return Status::OK();
}

uint64_t MqCache::FrequencyOf(Key key) const {
  auto it = resident_.find(key);
  return it == resident_.end() ? 0 : it->second.frequency;
}

int MqCache::QueueOf(Key key) const {
  auto it = resident_.find(key);
  return it == resident_.end() ? -1 : it->second.queue;
}

}  // namespace cot::cache
