#include "cache/two_q_cache.h"

#include <algorithm>
#include <cassert>

namespace cot::cache {

TwoQCache::TwoQCache(size_t capacity, double kin_fraction,
                     double kout_fraction)
    : capacity_(capacity) {
  kin_limit_ = std::max<size_t>(
      1, static_cast<size_t>(kin_fraction * static_cast<double>(capacity)));
  kout_limit_ = std::max<size_t>(
      1, static_cast<size_t>(kout_fraction * static_cast<double>(capacity)));
  if (capacity_ == 0) {
    kin_limit_ = 0;
    kout_limit_ = 0;
  }
  // Directory holds residents plus A1out ghosts.
  dir_.reserve(capacity_ + kout_limit_);
}

std::list<cache::Key>& TwoQCache::ListFor(Where where) {
  switch (where) {
    case Where::kA1in:
      return a1in_;
    case Where::kAm:
      return am_;
    case Where::kA1out:
      return a1out_;
  }
  return a1in_;  // unreachable
}

std::optional<cache::Value> TwoQCache::Get(Key key) {
  auto it = dir_.find(key);
  if (it == dir_.end() || it->second.where == Where::kA1out) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second.where == Where::kAm) {
    // Hot hit: refresh LRU position.
    am_.splice(am_.begin(), am_, it->second.pos);
    it->second.pos = am_.begin();
  }
  // A1in hits keep their FIFO position (2Q rule: correlated references
  // within A1in carry no promotion signal).
  ++stats_.hits;
  return it->second.value;
}

void TwoQCache::ReclaimOne() {
  // RECLAIM: while over budget, prefer draining A1in (its tail's key ghosts
  // into A1out); otherwise evict the LRU of Am outright.
  if (a1in_.size() >= kin_limit_ && !a1in_.empty()) {
    Key victim = a1in_.back();
    a1in_.pop_back();
    --resident_;
    ++stats_.evictions;
    // Ghost the key into A1out.
    auto it = dir_.find(victim);
    assert(it != dir_.end());
    a1out_.push_front(victim);
    it->second.where = Where::kA1out;
    it->second.pos = a1out_.begin();
    while (a1out_.size() > kout_limit_) {
      Key ghost = a1out_.back();
      a1out_.pop_back();
      dir_.erase(ghost);
    }
    return;
  }
  if (!am_.empty()) {
    Key victim = am_.back();
    am_.pop_back();
    dir_.erase(victim);
    --resident_;
    ++stats_.evictions;
    return;
  }
  // Degenerate tiny-capacity case: fall back to draining A1in.
  if (!a1in_.empty()) {
    Key victim = a1in_.back();
    a1in_.pop_back();
    dir_.erase(victim);
    --resident_;
    ++stats_.evictions;
  }
}

void TwoQCache::Put(Key key, Value value) {
  if (capacity_ == 0) return;
  auto it = dir_.find(key);
  if (it != dir_.end()) {
    switch (it->second.where) {
      case Where::kA1in:
      case Where::kAm:
        it->second.value = value;
        return;
      case Where::kA1out: {
        // Re-reference after A1in eviction: promote into Am.
        a1out_.erase(it->second.pos);
        if (resident_ >= capacity_) ReclaimOne();
        am_.push_front(key);
        // `it` may be invalidated by ReclaimOne's erase of other keys, so
        // re-find defensively.
        dir_[key] = Entry{Where::kAm, am_.begin(), value};
        ++resident_;
        ++stats_.insertions;
        return;
      }
    }
  }
  // Brand new key: enters A1in.
  if (resident_ >= capacity_) ReclaimOne();
  a1in_.push_front(key);
  dir_[key] = Entry{Where::kA1in, a1in_.begin(), value};
  ++resident_;
  ++stats_.insertions;
}

void TwoQCache::Invalidate(Key key) {
  auto it = dir_.find(key);
  if (it == dir_.end()) return;
  if (it->second.where != Where::kA1out) {
    --resident_;
    ++stats_.invalidations;
  }
  ListFor(it->second.where).erase(it->second.pos);
  dir_.erase(it);
}

bool TwoQCache::Contains(Key key) const {
  auto it = dir_.find(key);
  return it != dir_.end() && it->second.where != Where::kA1out;
}

size_t TwoQCache::size() const { return resident_; }

Status TwoQCache::Resize(size_t /*new_capacity*/) {
  return Status::Unimplemented(
      "2Q's Kin/Kout tuning is defined for a fixed capacity; see CoT for an "
      "elastic policy");
}

TwoQCache::QueueSizes TwoQCache::queue_sizes() const {
  return QueueSizes{a1in_.size(), am_.size(), a1out_.size()};
}

}  // namespace cot::cache
