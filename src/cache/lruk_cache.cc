#include "cache/lruk_cache.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace cot::cache {

LrukCache::LrukCache(size_t capacity, size_t history_capacity, int k)
    : capacity_(capacity),
      history_capacity_(history_capacity),
      k_(k),
      resident_(capacity),
      evict_heap_(capacity),
      history_(history_capacity) {
  assert(k >= 1);
}

LrukCache::Priority LrukCache::PriorityFor(const RefTimes& times) const {
  // times is newest-first. The K-th most recent reference is times[k-1];
  // fewer than K references = infinite backward distance = priority 0.
  uint64_t kth = times.size() >= static_cast<size_t>(k_)
                     ? times[static_cast<size_t>(k_) - 1]
                     : 0;
  uint64_t last = times.empty() ? 0 : times.front();
  return Priority{kth, last};
}

void LrukCache::RecordReference(RefTimes& times) {
  ++clock_;
  times.insert(times.begin(), clock_);
  if (times.size() > static_cast<size_t>(k_)) times.resize(k_);
}

std::optional<Value> LrukCache::Get(Key key) {
  auto it = resident_.find(key);
  if (it == resident_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  RecordReference(it->second.times);
  evict_heap_.Update(key, PriorityFor(it->second.times));
  ++stats_.hits;
  return it->second.value;
}

void LrukCache::Put(Key key, Value value) {
  if (capacity_ == 0) return;
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    it->second.value = value;
    RecordReference(it->second.times);
    evict_heap_.Update(key, PriorityFor(it->second.times));
    return;
  }
  // Restore any retained history for this key.
  RefTimes times;
  auto hist_it = history_.find(key);
  if (hist_it != history_.end()) {
    times = std::move(hist_it->second.times);
    history_lru_.erase(hist_it->second.lru_pos);
    history_.erase(key);
  }
  RecordReference(times);
  if (resident_.size() >= capacity_) EvictOne();
  evict_heap_.Push(key, PriorityFor(times));
  resident_[key] = Resident{value, std::move(times)};
  ++stats_.insertions;
}

void LrukCache::Invalidate(Key key) {
  auto it = resident_.find(key);
  if (it == resident_.end()) return;
  RetireToHistory(key, std::move(it->second.times));
  resident_.erase(key);
  evict_heap_.Erase(key);
  ++stats_.invalidations;
}

bool LrukCache::Contains(Key key) const { return resident_.count(key) != 0; }

Status LrukCache::Resize(size_t new_capacity) {
  capacity_ = new_capacity;
  resident_.reserve(capacity_);
  evict_heap_.Reserve(capacity_);
  while (resident_.size() > capacity_) EvictOne();
  return Status::OK();
}

std::string LrukCache::name() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "lru-%d", k_);
  return buf;
}

void LrukCache::EvictOne() {
  auto [victim, priority] = evict_heap_.Pop();
  auto it = resident_.find(victim);
  assert(it != resident_.end());
  RetireToHistory(victim, std::move(it->second.times));
  resident_.erase(victim);
  ++stats_.evictions;
}

void LrukCache::RetireToHistory(Key key, RefTimes times) {
  if (history_capacity_ == 0) return;
  while (history_.size() >= history_capacity_) {
    Key oldest = history_lru_.back();
    history_lru_.pop_back();
    history_.erase(oldest);
  }
  history_lru_.push_front(key);
  history_[key] = Ghost{std::move(times), history_lru_.begin()};
}

}  // namespace cot::cache
