#ifndef COT_CACHE_ARC_CACHE_H_
#define COT_CACHE_ARC_CACHE_H_

#include <list>

#include "cache/cache.h"
#include "util/flat_hash_map.h"

namespace cot::cache {

/// Adaptive Replacement Cache (Megiddo & Modha, FAST 2003) — the strongest
/// self-tuning fixed-size baseline the paper compares against.
///
/// ARC partitions resident entries into a recency list T1 and a frequency
/// list T2, shadowed by ghost lists B1/B2 that remember recently evicted
/// keys (metadata only). A hit in B1 ("we evicted this from the recency
/// side too early") grows the adaptation target `p` for T1; a hit in B2
/// shrinks it. The REPLACE subroutine moves entries between the lists to
/// track `p`.
///
/// The paper's critique (Section 3): ARC admits *every* missed key into T1,
/// so under a heavy-tailed workload each one-hit-wonder momentarily costs a
/// slot that a heavy hitter could hold. CoT's tracker-gated admission
/// avoids exactly that cost.
///
/// Invariant (from the paper): |T1|+|T2| <= c, |T1|+|B1| <= c,
/// |T1|+|T2|+|B1|+|B2| <= 2c, and 0 <= p <= c.
class ArcCache : public Cache {
 public:
  /// Creates an ARC cache of `capacity` resident entries (ghost lists hold
  /// up to the same number of keys again, metadata only).
  explicit ArcCache(size_t capacity);

  std::optional<Value> Get(Key key) override;
  void Put(Key key, Value value) override;
  void Invalidate(Key key) override;
  bool Contains(Key key) const override;
  size_t size() const override;
  size_t capacity() const override { return capacity_; }

  /// ARC has no published resize semantics (`p`, ghost sizes and the
  /// invariants are all defined in terms of a fixed `c`); returns
  /// kUnimplemented. This is the elasticity gap the paper contrasts CoT
  /// against.
  Status Resize(size_t new_capacity) override;

  std::string name() const override { return "arc"; }

  /// The adaptation target for |T1| (test/diagnostic hook).
  double p() const { return p_; }
  /// List sizes (test hook): {|T1|, |T2|, |B1|, |B2|}.
  struct ListSizes {
    size_t t1, t2, b1, b2;
  };
  ListSizes list_sizes() const;

  /// Verifies ARC's structural invariants; O(1). Test hook.
  bool CheckInvariants() const;

 private:
  enum class ListId : uint8_t { kT1, kT2, kB1, kB2 };

  struct Entry {
    ListId list;
    std::list<Key>::iterator pos;
    Value value;  // meaningful only for resident entries (T1/T2)
  };

  std::list<Key>& ListFor(ListId id);

  /// Moves `key` (already indexed) to the MRU end of `target`.
  void MoveTo(Key key, ListId target);
  /// Removes `key` entirely.
  void Remove(Key key);
  /// ARC's REPLACE(x, p): demotes the LRU of T1 or T2 to its ghost list.
  void Replace(bool key_was_in_b2);

  size_t capacity_;
  double p_ = 0.0;
  std::list<Key> t1_, t2_, b1_, b2_;  // front = MRU
  FlatHashMap<Key, Entry> dir_;
  size_t resident_ = 0;
};

}  // namespace cot::cache

#endif  // COT_CACHE_ARC_CACHE_H_
