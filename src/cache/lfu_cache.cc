#include "cache/lfu_cache.h"

namespace cot::cache {

LfuCache::LfuCache(size_t capacity)
    : capacity_(capacity), heap_(capacity), values_(capacity) {}

std::optional<Value> LfuCache::Get(Key key) {
  auto it = values_.find(key);
  if (it == values_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Priority p = heap_.PriorityOf(key);
  heap_.Update(key, Priority{p.first + 1, p.second});
  ++stats_.hits;
  return it->second;
}

void LfuCache::Put(Key key, Value value) {
  if (capacity_ == 0) return;
  auto it = values_.find(key);
  if (it != values_.end()) {
    it->second = value;
    return;
  }
  if (values_.size() >= capacity_) EvictOne();
  values_[key] = value;
  heap_.Push(key, Priority{1, next_seq_++});
  ++stats_.insertions;
}

void LfuCache::Invalidate(Key key) {
  if (values_.erase(key) == 0) return;
  heap_.Erase(key);
  ++stats_.invalidations;
}

bool LfuCache::Contains(Key key) const { return values_.count(key) != 0; }

Status LfuCache::Resize(size_t new_capacity) {
  capacity_ = new_capacity;
  heap_.Reserve(capacity_);
  values_.reserve(capacity_);
  while (values_.size() > capacity_) EvictOne();
  return Status::OK();
}

uint64_t LfuCache::FrequencyOf(Key key) const {
  if (!heap_.Contains(key)) return 0;
  return heap_.PriorityOf(key).first;
}

void LfuCache::EvictOne() {
  auto [key, priority] = heap_.Pop();
  values_.erase(key);
  ++stats_.evictions;
}

}  // namespace cot::cache
