#ifndef COT_CACHE_SYNCHRONIZED_CACHE_H_
#define COT_CACHE_SYNCHRONIZED_CACHE_H_

#include <memory>
#include <mutex>
#include <utility>

#include "cache/cache.h"

namespace cot::cache {

/// Thread-safety decorator: serializes every operation on a wrapped cache
/// behind one mutex.
///
/// The paper's model gives each client thread its own private cache, which
/// is the recommended (lock-free) deployment; this wrapper exists for
/// embedders that must share one cache across threads (e.g. one front-end
/// process with a shared hot-keys cache). Coarse-grained by design — the
/// paper's workloads spend microseconds per RTT against ~100 ns per cache
/// op, so a single mutex is nowhere near the bottleneck.
class SynchronizedCache : public Cache {
 public:
  /// Wraps and owns `inner`.
  explicit SynchronizedCache(std::unique_ptr<Cache> inner)
      : inner_(std::move(inner)) {}

  std::optional<Value> Get(Key key) override {
    std::lock_guard<std::mutex> lock(mu_);
    std::optional<Value> v = inner_->Get(key);
    MirrorStats();
    return v;
  }
  void Put(Key key, Value value) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->Put(key, value);
    MirrorStats();
  }
  void Invalidate(Key key) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->Invalidate(key);
    MirrorStats();
  }
  bool Contains(Key key) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Contains(key);
  }
  size_t size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->size();
  }
  size_t capacity() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->capacity();
  }
  Status Resize(size_t new_capacity) override {
    std::lock_guard<std::mutex> lock(mu_);
    Status s = inner_->Resize(new_capacity);
    MirrorStats();
    return s;
  }
  std::string name() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->name() + "+mutex";
  }

  /// The wrapped cache, for policy-specific access. Callers must provide
  /// their own synchronization when touching it directly.
  Cache* inner() { return inner_.get(); }

 private:
  // Keeps the (base-class) stats_ visible through the decorator coherent
  // with the inner cache's counters. Called under mu_.
  void MirrorStats() { stats_ = inner_->stats(); }

  mutable std::mutex mu_;
  std::unique_ptr<Cache> inner_;
};

}  // namespace cot::cache

#endif  // COT_CACHE_SYNCHRONIZED_CACHE_H_
