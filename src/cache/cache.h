#ifndef COT_CACHE_CACHE_H_
#define COT_CACHE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/status.h"

namespace cot::cache {

/// Cache keys are dense 64-bit ids (see `cot::workload::KeySpace` for the
/// textual form).
using Key = uint64_t;

/// Cached values are fixed-size 64-bit handles. Like memcached's item
/// pointers, the cache manages *which* entries stay resident, not the bytes
/// of the payload; callers that cache variable-size blobs keep them in a
/// side store indexed by the handle (see `examples/quickstart.cc`). This
/// matches the paper's accounting: every reported metric is a per-lookup
/// count, independent of value size.
using Value = uint64_t;

/// Counters every replacement policy maintains. All counts are cumulative
/// since construction or the last `ResetStats()`.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;

  /// Lookups observed (hits + misses).
  uint64_t lookups() const { return hits + misses; }

  /// Fraction of lookups served from the cache; 0 when no lookups yet.
  double HitRate() const {
    uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// Abstract front-end cache replacement policy.
///
/// The driving protocol (paper Section 2, the memcached client-driven
/// model) is:
///   - `Get(key)`: attempt to serve a read locally. A miss returns
///     `nullopt`; the caller then fetches from the back-end and calls
///     `Put(key, value)` to offer the value for admission.
///   - `Invalidate(key)`: an update invalidates the local entry.
///
/// `Put` is an *offer*: policies with admission control (CoT) may decline
/// to cache the value; classic policies always admit (evicting per policy).
///
/// A capacity of 0 means "no front-end cache": `Get` always misses and
/// `Put` is a no-op. This is a valid steady state — CoT can elastically
/// shrink to it under uniform workloads.
///
/// Implementations are not thread-safe; the paper's model gives each client
/// thread its own cache.
class Cache {
 public:
  virtual ~Cache() = default;

  /// Looks up `key`, updating recency/frequency state and hit/miss counters.
  virtual std::optional<Value> Get(Key key) = 0;

  /// Offers (`key`, `value`) for caching after a miss was served from the
  /// back-end. May evict per policy, or decline (admission-filtering
  /// policies). Overwrites the stored value if `key` is already resident.
  virtual void Put(Key key, Value value) = 0;

  /// Removes `key` if resident (update/delete invalidation path).
  virtual void Invalidate(Key key) = 0;

  /// True if `key` is resident. Does not perturb policy state or stats.
  virtual bool Contains(Key key) const = 0;

  /// Number of resident entries.
  virtual size_t size() const = 0;

  /// Maximum number of resident entries.
  virtual size_t capacity() const = 0;

  /// Changes the capacity, evicting per policy when shrinking. Policies
  /// without a natural resize semantic (ARC) return `kUnimplemented` — the
  /// paper's point that elasticity must be designed in, not bolted on.
  virtual Status Resize(size_t new_capacity) = 0;

  /// Short policy name for reports, e.g. "lru", "arc", "cot".
  virtual std::string name() const = 0;

  /// Cumulative counters.
  const CacheStats& stats() const { return stats_; }

  /// Zeroes the counters (entries stay resident).
  void ResetStats() { stats_ = CacheStats(); }

 protected:
  CacheStats stats_;
};

}  // namespace cot::cache

#endif  // COT_CACHE_CACHE_H_
