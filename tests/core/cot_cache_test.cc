#include "core/cot_cache.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::core {
namespace {

void Access(CotCache& cache, CotCache::Key k) {
  if (!cache.Get(k).has_value()) cache.Put(k, k * 10);
}

TEST(CotCacheTest, ConstructorEnforcesTrackerAtLeastTwiceCache) {
  CotCache cache(8, 4);  // requested K < 2C
  EXPECT_EQ(cache.capacity(), 8u);
  EXPECT_EQ(cache.tracker_capacity(), 16u);
}

TEST(CotCacheTest, GetMissThenPutAdmitsIntoFreeSpace) {
  CotCache cache(2, 8);
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, 11);
  EXPECT_EQ(*cache.Get(1), 11u);
}

TEST(CotCacheTest, EveryCachedKeyIsTracked) {
  CotCache cache(4, 8);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) Access(cache, rng.NextBelow(50));
  EXPECT_TRUE(cache.CheckInvariants());  // includes S_c ⊆ S_k
}

TEST(CotCacheTest, ColdKeyCannotDisplaceHotKeys) {
  // Two keys stay hot while a stream of one-shot cold keys passes by: with
  // LRU the cold keys would thrash the cache; CoT's admission filter keeps
  // them out. (The hot keys must keep receiving accesses: space-saving's
  // counter inheritance deliberately lets sustained new traffic overtake
  // keys that stop being accessed.)
  CotCache cache(2, 8);
  CotCache::Key cold = 100;
  for (int round = 0; round < 100; ++round) {
    Access(cache, 1);
    Access(cache, 2);
    Access(cache, cold++);
  }
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CotCacheTest, HotterKeyDisplacesColdestCachedKey) {
  CotCache cache(2, 8);
  Access(cache, 1);  // h=1
  Access(cache, 2);
  Access(cache, 2);  // h=2
  ASSERT_EQ(cache.size(), 2u);
  // Key 3 becomes hotter than key 1 (h_min = 1).
  Access(cache, 3);  // h=1: NOT admitted (not > h_min)
  EXPECT_FALSE(cache.Contains(3));
  Access(cache, 3);  // h=2 > h_min=1: admitted, displaces key 1
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(CotCacheTest, MinCachedHotnessTracksCacheRoot) {
  CotCache cache(2, 8);
  EXPECT_FALSE(cache.MinCachedHotness().has_value());
  Access(cache, 1);
  EXPECT_DOUBLE_EQ(*cache.MinCachedHotness(), 1.0);
  Access(cache, 2);
  Access(cache, 2);
  EXPECT_DOUBLE_EQ(*cache.MinCachedHotness(), 1.0);  // key 1 is coldest
  Access(cache, 1);
  Access(cache, 1);
  EXPECT_DOUBLE_EQ(*cache.MinCachedHotness(), 2.0);  // now key 2
}

TEST(CotCacheTest, GetRefreshesCachedHotness) {
  CotCache cache(2, 8);
  Access(cache, 1);
  for (int i = 0; i < 5; ++i) cache.Get(1);
  EXPECT_DOUBLE_EQ(*cache.MinCachedHotness(), 6.0);
}

TEST(CotCacheTest, InvalidateRecordsUpdateAndEvicts) {
  CotCache cache(2, 8);
  Access(cache, 1);
  Access(cache, 1);  // h=2
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Contains(1));
  // Dual-cost model: the update subtracted from the hotness.
  EXPECT_DOUBLE_EQ(*cache.tracker().HotnessOf(1), 1.0);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(CotCacheTest, FrequentlyUpdatedKeysStayOut) {
  // A key that is updated as often as read hovers near hotness 0 and never
  // earns a cache line over read-hot keys.
  CotCache cache(2, 16);
  for (int i = 0; i < 20; ++i) {
    Access(cache, 1);
    Access(cache, 2);
  }
  for (int i = 0; i < 40; ++i) {
    Access(cache, 3);
    cache.Invalidate(3);
  }
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_FALSE(cache.Contains(3));
}

TEST(CotCacheTest, ZeroCapacityTracksButNeverCaches) {
  CotCacheConfig config;
  config.cache_capacity = 0;
  config.tracker_capacity = 8;
  CotCache cache(config);
  Access(cache, 1);
  Access(cache, 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.tracker().Contains(1));
  EXPECT_DOUBLE_EQ(*cache.tracker().HotnessOf(1), 2.0);
}

TEST(CotCacheTest, ResizeGrowAllowsMoreResidents) {
  CotCache cache(1, 8);
  Access(cache, 1);
  Access(cache, 2);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Resize(4).ok());
  Access(cache, 2);
  Access(cache, 3);
  EXPECT_GE(cache.size(), 2u);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(CotCacheTest, ResizeShrinkEvictsColdestFirst) {
  CotCache cache(4, 16);
  for (int reps = 1; reps <= 4; ++reps) {
    for (int i = 0; i < reps; ++i) {
      Access(cache, static_cast<CotCache::Key>(reps));
    }
  }
  // keys 1..4 with hotness 1..4.
  ASSERT_TRUE(cache.Resize(2).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(CotCacheTest, ResizeRaisesTrackerWhenNeeded) {
  CotCache cache(2, 4);
  ASSERT_TRUE(cache.Resize(8).ok());
  EXPECT_GE(cache.tracker_capacity(), 16u);
}

TEST(CotCacheTest, ResizeTrackerRejectsBelowTwiceCache) {
  CotCache cache(4, 16);
  EXPECT_EQ(cache.ResizeTracker(7).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(cache.ResizeTracker(8).ok());
}

TEST(CotCacheTest, TrackerShrinkDropsDependentCachedKeys) {
  CotCache cache(2, 8);
  Access(cache, 1);
  Access(cache, 2);
  ASSERT_EQ(cache.size(), 2u);
  // Shrinking the tracker to 4 may evict tracked keys; cached ones must
  // follow to preserve S_c ⊆ S_k.
  for (CotCache::Key k = 10; k < 14; ++k) {
    Access(cache, k);
    Access(cache, k);
    Access(cache, k);
  }
  ASSERT_TRUE(cache.ResizeTracker(4).ok());
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(CotCacheTest, HalveAllHotnessKeepsOrderAndInvariants) {
  CotCache cache(4, 16);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) Access(cache, rng.NextBelow(40));
  double min_before = *cache.MinCachedHotness();
  cache.HalveAllHotness();
  EXPECT_DOUBLE_EQ(*cache.MinCachedHotness(), min_before / 2.0);
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(CotCacheTest, EpochStatsSeparateCacheAndTrackerHits) {
  CotCache cache(1, 4);
  Access(cache, 1);       // miss (untracked), then admitted
  cache.Get(1);           // cache hit
  cache.Get(2);           // miss, now tracked
  cache.Get(2);           // tracked-but-not-cached hit...
  const auto& epoch = cache.epoch_stats();
  EXPECT_EQ(epoch.cache_hits, 1u);
  EXPECT_GE(epoch.tracker_only_hits, 1u);
  EXPECT_EQ(epoch.accesses, 4u);
  cache.ResetEpochStats();
  EXPECT_EQ(cache.epoch_stats().accesses, 0u);
}

TEST(CotCacheTest, AlphaComputations) {
  CotCache::EpochStats stats;
  stats.cache_hits = 40;
  stats.tracker_only_hits = 12;
  EXPECT_DOUBLE_EQ(stats.AlphaC(8), 5.0);
  EXPECT_DOUBLE_EQ(stats.AlphaC(0), 0.0);
  EXPECT_DOUBLE_EQ(stats.AlphaKc(16, 8), 1.5);
  EXPECT_DOUBLE_EQ(stats.AlphaKc(8, 8), 0.0);
}

TEST(CotCacheTest, NearPerfectHitRateOnSkewedStream) {
  // The headline behaviour: with K = 8C, CoT's hit-rate on a Zipfian 0.99
  // stream approaches the perfect-cache (CDF) hit-rate.
  constexpr size_t kC = 64;
  CotCache cache(kC, 8 * kC);
  workload::ZipfianGenerator gen(100000, 0.99);
  Rng rng(5);
  // Warm up, then measure.
  for (int i = 0; i < 100000; ++i) Access(cache, gen.Next(rng));
  cache.ResetStats();
  for (int i = 0; i < 200000; ++i) Access(cache, gen.Next(rng));
  double tpc = gen.TopCMass(kC);
  EXPECT_GT(cache.stats().HitRate(), 0.90 * tpc);
}

TEST(CotCacheTest, DirectPutWithoutGetIsTracked) {
  CotCache cache(2, 8);
  cache.Put(5, 55);
  EXPECT_TRUE(cache.tracker().Contains(5));
  EXPECT_TRUE(cache.Contains(5));
}

class CotInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CotInvariantTest, RandomOpsKeepInvariants) {
  Rng rng(GetParam());
  CotCache cache(1 + rng.NextBelow(8), 4 + rng.NextBelow(32));
  for (int i = 0; i < 10000; ++i) {
    CotCache::Key k = rng.NextBelow(64);
    switch (rng.NextBelow(10)) {
      case 0:
        cache.Invalidate(k);
        break;
      case 1:
        if (rng.Bernoulli(0.2)) {
          ASSERT_TRUE(cache.Resize(1 + rng.NextBelow(8)).ok());
        }
        Access(cache, k);
        break;
      default:
        Access(cache, k);
        break;
    }
    if (i % 1000 == 0) {
      ASSERT_TRUE(cache.CheckInvariants()) << "step " << i;
    }
  }
  EXPECT_TRUE(cache.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CotInvariantTest,
                         ::testing::Values(1, 2, 3, 5, 7, 21));

}  // namespace
}  // namespace cot::core
