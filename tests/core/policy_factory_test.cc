#include "core/policy_factory.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cot_cache.h"

namespace cot::core {
namespace {

TEST(PolicyFactoryTest, NoneYieldsNullCache) {
  auto cache = MakePolicy("none", 64);
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ(cache->get(), nullptr);
}

TEST(PolicyFactoryTest, EveryListedPolicyConstructs) {
  for (const std::string& name : PolicyNames()) {
    auto cache = MakePolicy(name, 64, 4);
    ASSERT_TRUE(cache.ok()) << name;
    if (name == "none") continue;
    ASSERT_NE(cache->get(), nullptr) << name;
    EXPECT_EQ((*cache)->capacity(), 64u) << name;
    EXPECT_FALSE((*cache)->name().empty()) << name;
  }
}

TEST(PolicyFactoryTest, FactoryNameMatchesPolicyName) {
  for (const std::string& name : {"lru", "lfu", "arc", "2q", "mq"}) {
    auto cache = MakePolicy(name, 8);
    ASSERT_TRUE(cache.ok());
    EXPECT_EQ((*cache)->name(), name);
  }
  auto lru2 = MakePolicy("lru-2", 8);
  EXPECT_EQ((*lru2)->name(), "lru-2");
  auto cot = MakePolicy("cot", 8);
  EXPECT_EQ((*cot)->name(), "cot");
}

TEST(PolicyFactoryTest, TrackerRatioAppliesToCotAndLru2) {
  auto cot = MakePolicy("cot", 16, 8);
  ASSERT_TRUE(cot.ok());
  auto* cot_cache = dynamic_cast<CotCache*>(cot->get());
  ASSERT_NE(cot_cache, nullptr);
  EXPECT_EQ(cot_cache->tracker_capacity(), 128u);
}

TEST(PolicyFactoryTest, UnknownNameFails) {
  auto cache = MakePolicy("fifo", 64);
  ASSERT_FALSE(cache.ok());
  EXPECT_EQ(cache.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(cache.status().message().find("fifo"), std::string::npos);
}

TEST(PolicyFactoryTest, ZeroRatioRejected) {
  EXPECT_FALSE(MakePolicy("cot", 64, 0).ok());
}

TEST(PolicyFactoryTest, PolicyNamesIncludesAllShippedPolicies) {
  const auto& names = PolicyNames();
  for (const char* expected :
       {"none", "lru", "lfu", "arc", "lru-2", "2q", "mq", "cot"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

}  // namespace
}  // namespace cot::core
