#include "core/space_saving_tracker.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::core {
namespace {

TEST(SpaceSavingTrackerTest, TracksUpToCapacity) {
  SpaceSavingTracker tracker(3);
  tracker.TrackAccess(1, AccessType::kRead);
  tracker.TrackAccess(2, AccessType::kRead);
  tracker.TrackAccess(3, AccessType::kRead);
  EXPECT_EQ(tracker.size(), 3u);
  EXPECT_TRUE(tracker.Contains(1));
  EXPECT_TRUE(tracker.Contains(2));
  EXPECT_TRUE(tracker.Contains(3));
}

TEST(SpaceSavingTrackerTest, ReadIncreasesHotness) {
  SpaceSavingTracker tracker(4);
  auto r1 = tracker.TrackAccess(1, AccessType::kRead);
  EXPECT_DOUBLE_EQ(r1.hotness, 1.0);
  EXPECT_FALSE(r1.was_tracked);
  auto r2 = tracker.TrackAccess(1, AccessType::kRead);
  EXPECT_DOUBLE_EQ(r2.hotness, 2.0);
  EXPECT_TRUE(r2.was_tracked);
}

TEST(SpaceSavingTrackerTest, UpdateDecreasesHotness) {
  SpaceSavingTracker tracker(4, HotnessWeights{1.0, 1.0});
  tracker.TrackAccess(1, AccessType::kRead);
  tracker.TrackAccess(1, AccessType::kRead);
  auto r = tracker.TrackAccess(1, AccessType::kUpdate);
  EXPECT_DOUBLE_EQ(r.hotness, 1.0);  // 2 reads - 1 update
}

TEST(SpaceSavingTrackerTest, CustomWeights) {
  SpaceSavingTracker tracker(4, HotnessWeights{2.0, 0.5});
  tracker.TrackAccess(1, AccessType::kRead);
  tracker.TrackAccess(1, AccessType::kUpdate);
  EXPECT_DOUBLE_EQ(*tracker.HotnessOf(1), 2.0 * 1 - 0.5 * 1);
}

TEST(SpaceSavingTrackerTest, HotnessCanGoNegative) {
  SpaceSavingTracker tracker(4);
  tracker.TrackAccess(1, AccessType::kUpdate);
  tracker.TrackAccess(1, AccessType::kUpdate);
  EXPECT_DOUBLE_EQ(*tracker.HotnessOf(1), -2.0);
}

TEST(SpaceSavingTrackerTest, FullTrackerReplacesMinimum) {
  SpaceSavingTracker tracker(2);
  tracker.TrackAccess(1, AccessType::kRead);
  tracker.TrackAccess(1, AccessType::kRead);  // h=2
  tracker.TrackAccess(2, AccessType::kRead);  // h=1
  auto r = tracker.TrackAccess(3, AccessType::kRead);
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(*r.evicted, 2u);  // key 2 was the minimum
  EXPECT_FALSE(tracker.Contains(2));
  EXPECT_TRUE(tracker.Contains(3));
}

TEST(SpaceSavingTrackerTest, NewKeyInheritsVictimCounters) {
  // The space-saving "benefit of the doubt": the newcomer's hotness is the
  // victim's hotness plus its own access.
  SpaceSavingTracker tracker(1);
  for (int i = 0; i < 5; ++i) tracker.TrackAccess(1, AccessType::kRead);
  auto r = tracker.TrackAccess(2, AccessType::kRead);
  EXPECT_DOUBLE_EQ(r.hotness, 6.0);  // inherited 5 + 1 new read
  auto counters = tracker.CountersOf(2);
  ASSERT_TRUE(counters.has_value());
  EXPECT_DOUBLE_EQ(counters->read_count, 6.0);
}

TEST(SpaceSavingTrackerTest, MinHotness) {
  SpaceSavingTracker tracker(4);
  EXPECT_FALSE(tracker.MinHotness().has_value());
  tracker.TrackAccess(1, AccessType::kRead);
  tracker.TrackAccess(1, AccessType::kRead);
  tracker.TrackAccess(2, AccessType::kRead);
  EXPECT_DOUBLE_EQ(*tracker.MinHotness(), 1.0);
}

TEST(SpaceSavingTrackerTest, HotnessOfUntracked) {
  SpaceSavingTracker tracker(2);
  EXPECT_FALSE(tracker.HotnessOf(9).has_value());
  EXPECT_FALSE(tracker.CountersOf(9).has_value());
}

TEST(SpaceSavingTrackerTest, ResizeGrowKeepsAll) {
  SpaceSavingTracker tracker(2);
  tracker.TrackAccess(1, AccessType::kRead);
  tracker.TrackAccess(2, AccessType::kRead);
  ASSERT_TRUE(tracker.Resize(8).ok());
  EXPECT_EQ(tracker.capacity(), 8u);
  EXPECT_EQ(tracker.size(), 2u);
  EXPECT_TRUE(tracker.Contains(1));
}

TEST(SpaceSavingTrackerTest, ResizeShrinkEvictsColdestFirst) {
  SpaceSavingTracker tracker(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j <= i; ++j) {
      tracker.TrackAccess(static_cast<uint64_t>(i), AccessType::kRead);
    }
  }
  // Hotness: key0=1, key1=2, key2=3, key3=4.
  std::vector<uint64_t> evicted;
  ASSERT_TRUE(tracker.Resize(2, &evicted).ok());
  EXPECT_EQ(evicted, (std::vector<uint64_t>{0, 1}));
  EXPECT_TRUE(tracker.Contains(2));
  EXPECT_TRUE(tracker.Contains(3));
}

TEST(SpaceSavingTrackerTest, ResizeRejectsZero) {
  SpaceSavingTracker tracker(2);
  EXPECT_EQ(tracker.Resize(0).code(), StatusCode::kInvalidArgument);
}

TEST(SpaceSavingTrackerTest, HalveAllHotnessScalesEverything) {
  SpaceSavingTracker tracker(4);
  for (int i = 0; i < 8; ++i) tracker.TrackAccess(1, AccessType::kRead);
  tracker.TrackAccess(2, AccessType::kRead);
  tracker.TrackAccess(2, AccessType::kUpdate);
  tracker.HalveAllHotness();
  EXPECT_DOUBLE_EQ(*tracker.HotnessOf(1), 4.0);
  EXPECT_DOUBLE_EQ(*tracker.HotnessOf(2), 0.0);
  EXPECT_TRUE(tracker.CheckInvariants());
}

TEST(SpaceSavingTrackerTest, ClearEmptiesEverything) {
  SpaceSavingTracker tracker(4);
  tracker.TrackAccess(1, AccessType::kRead);
  tracker.Clear();
  EXPECT_EQ(tracker.size(), 0u);
  EXPECT_FALSE(tracker.Contains(1));
}

TEST(SpaceSavingTrackerTest, SortedByHotnessDesc) {
  SpaceSavingTracker tracker(4);
  tracker.TrackAccess(10, AccessType::kRead);
  tracker.TrackAccess(20, AccessType::kRead);
  tracker.TrackAccess(20, AccessType::kRead);
  tracker.TrackAccess(30, AccessType::kRead);
  tracker.TrackAccess(30, AccessType::kRead);
  tracker.TrackAccess(30, AccessType::kRead);
  auto sorted = tracker.SortedByHotnessDesc();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, 30u);
  EXPECT_EQ(sorted[1].first, 20u);
  EXPECT_EQ(sorted[2].first, 10u);
}

// Regression: Seed at capacity used to evict the current minimum
// unconditionally, even when the seeded key was colder — a cold warm-handoff
// entry could displace a hotter tracked key.
TEST(SpaceSavingTrackerTest, SeedColderThanMinimumIsDeclinedAtCapacity) {
  SpaceSavingTracker tracker(2);
  for (int i = 0; i < 5; ++i) tracker.TrackAccess(1, AccessType::kRead);
  for (int i = 0; i < 3; ++i) tracker.TrackAccess(2, AccessType::kRead);
  ASSERT_EQ(tracker.size(), 2u);
  ASSERT_EQ(tracker.MinHotness(), 3.0);

  KeyCounters cold;
  cold.read_count = 1.0;  // hotness 1 < minimum 3: must be declined
  EXPECT_EQ(tracker.Seed(7, cold), SpaceSavingTracker::kInvalidNode);
  EXPECT_FALSE(tracker.Contains(7));
  EXPECT_TRUE(tracker.Contains(1));
  EXPECT_TRUE(tracker.Contains(2));
  EXPECT_EQ(tracker.MinHotness(), 3.0);
  EXPECT_TRUE(tracker.CheckInvariants());

  KeyCounters hot;
  hot.read_count = 10.0;  // hotter than the minimum: replaces key 2
  EXPECT_NE(tracker.Seed(8, hot), SpaceSavingTracker::kInvalidNode);
  EXPECT_TRUE(tracker.Contains(8));
  EXPECT_FALSE(tracker.Contains(2));
  EXPECT_TRUE(tracker.Contains(1));
  EXPECT_EQ(tracker.size(), 2u);
  EXPECT_EQ(tracker.MinHotness(), 5.0);
  EXPECT_TRUE(tracker.CheckInvariants());
}

// Seed ties break on (hotness, key): an equally hot seed with a larger key
// replaces the minimum (it is not lex-smaller), and with a smaller key it
// is declined.
TEST(SpaceSavingTrackerTest, SeedTieBreaksOnKeyOrder) {
  SpaceSavingTracker tracker(1);
  tracker.TrackAccess(5, AccessType::kRead);
  KeyCounters one_read;
  one_read.read_count = 1.0;

  // Same hotness, smaller key: lex-colder, declined.
  EXPECT_EQ(tracker.Seed(3, one_read), SpaceSavingTracker::kInvalidNode);
  EXPECT_TRUE(tracker.Contains(5));

  // Same hotness, larger key: not lex-colder, replaces.
  EXPECT_NE(tracker.Seed(9, one_read), SpaceSavingTracker::kInvalidNode);
  EXPECT_TRUE(tracker.Contains(9));
  EXPECT_FALSE(tracker.Contains(5));
  EXPECT_TRUE(tracker.CheckInvariants());
}

// --- Space-saving theoretical guarantees (Metwally et al. 2005) ----------

TEST(SpaceSavingPropertyTest, OverestimationBoundedByMinCount) {
  // For pure counting (reads only, weight 1): the tracked hotness of any
  // key overestimates its true count by at most the minimum hotness in the
  // tracker at any time; in particular tracked >= true for tracked keys.
  constexpr size_t kK = 64;
  constexpr uint64_t kKeys = 1000;
  SpaceSavingTracker tracker(kK);
  workload::ZipfianGenerator gen(kKeys, 0.99);
  Rng rng(7);
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 50000; ++i) {
    uint64_t k = gen.Next(rng);
    ++truth[k];
    tracker.TrackAccess(k, AccessType::kRead);
  }
  double min_hotness = *tracker.MinHotness();
  tracker.ForEach([&](const uint64_t& k, double h) {
    double true_count = static_cast<double>(truth[k]);
    EXPECT_GE(h + 1e-9, true_count) << "key " << k;
    EXPECT_LE(h - true_count, min_hotness) << "key " << k;
  });
}

TEST(SpaceSavingPropertyTest, HeavyHittersAreAlwaysTracked) {
  // Any key with true frequency > N/K must be in the tracker.
  constexpr size_t kK = 32;
  SpaceSavingTracker tracker(kK);
  workload::ZipfianGenerator gen(10000, 1.2);
  Rng rng(11);
  constexpr int kN = 100000;
  std::map<uint64_t, uint64_t> truth;
  for (int i = 0; i < kN; ++i) {
    uint64_t k = gen.Next(rng);
    ++truth[k];
    tracker.TrackAccess(k, AccessType::kRead);
  }
  for (const auto& [k, count] : truth) {
    if (count > kN / kK) {
      EXPECT_TRUE(tracker.Contains(k)) << "heavy hitter " << k << " lost";
    }
  }
}

TEST(SpaceSavingPropertyTest, TopKeysRankedCorrectlyOnSkewedStream) {
  // With strong skew, the sorted tracker prefix must equal the true
  // hottest keys (ids 0..7 for our un-permuted Zipfian).
  SpaceSavingTracker tracker(128);
  workload::ZipfianGenerator gen(100000, 1.2);
  Rng rng(13);
  for (int i = 0; i < 200000; ++i) {
    tracker.TrackAccess(gen.Next(rng), AccessType::kRead);
  }
  auto sorted = tracker.SortedByHotnessDesc();
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_LT(sorted[i].first, 10u) << "rank " << i;
  }
}

class TrackerInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrackerInvariantTest, RandomOpsKeepInvariants) {
  Rng rng(GetParam());
  SpaceSavingTracker tracker(1 + rng.NextBelow(32));
  for (int i = 0; i < 10000; ++i) {
    uint64_t k = rng.NextBelow(100);
    AccessType t =
        rng.Bernoulli(0.9) ? AccessType::kRead : AccessType::kUpdate;
    tracker.TrackAccess(k, t);
    if (i % 1000 == 0) {
      ASSERT_TRUE(tracker.CheckInvariants());
      if (rng.Bernoulli(0.5)) {
        ASSERT_TRUE(tracker.Resize(1 + rng.NextBelow(32)).ok());
      }
    }
  }
  EXPECT_TRUE(tracker.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerInvariantTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace cot::core
