// Golden-trace tests for the elastic resizer's decision stream: synthetic
// drivers pin the *exact* Algorithm-3 action sequences (expand, shrink,
// decay), and end-to-end cluster runs replay the paper's Figure 7 / Figure 8
// scenarios asserting the decision pattern recorded by the EventTracer.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "core/cot_cache.h"
#include "core/elastic_resizer.h"
#include "metrics/event_tracer.h"
#include "workload/op_stream.h"

namespace cot {
namespace {

using core::CotCache;
using core::ElasticResizer;
using core::ResizerConfig;
using metrics::EventTracer;
using metrics::ResizerDecisionPayload;
using metrics::TraceEvent;
using metrics::TraceEventType;

std::vector<std::string> DecisionActions(const EventTracer& tracer) {
  std::vector<std::string> actions;
  for (const TraceEvent& e : tracer.Events()) {
    if (e.type != TraceEventType::kResizerDecision) continue;
    actions.emplace_back(std::get<ResizerDecisionPayload>(e.payload).action);
  }
  return actions;
}

std::vector<const ResizerDecisionPayload*> Decisions(
    const std::vector<TraceEvent>& events) {
  std::vector<const ResizerDecisionPayload*> out;
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kResizerDecision) {
      out.push_back(&std::get<ResizerDecisionPayload>(e.payload));
    }
  }
  return out;
}

ResizerConfig SyntheticConfig() {
  ResizerConfig config;
  config.target_imbalance = 1.1;
  config.warmup_epochs = 0;
  config.imbalance_smoothing = 1.0;  // act on the raw signal
  config.enable_ratio_discovery = false;
  return config;
}

// Accesses `key` once through the full protocol (Get, miss-fill Put).
void Touch(CotCache* cache, uint64_t key) {
  if (!cache->Get(key).has_value()) cache->Put(key, key);
}

TEST(ResizerGoldenTraceTest, ExpandSequenceIsExact) {
  CotCache cache(2, 8);
  ElasticResizer resizer(&cache, SyntheticConfig());
  EventTracer tracer(256);
  resizer.SetTracer(&tracer);

  // Figure-7 shape, synthetic: imbalance stays above target -> binary
  // search upward; the first epoch at target stops the search.
  resizer.EndEpoch(2.0);
  resizer.EndEpoch(2.0);
  resizer.EndEpoch(2.0);
  resizer.EndEpoch(1.05);
  resizer.EndEpoch(1.05);

  EXPECT_EQ(DecisionActions(tracer),
            (std::vector<std::string>{"double_both", "double_both",
                                      "double_both", "target_achieved",
                                      "none"}));
  auto decisions = Decisions(tracer.Events());
  ASSERT_EQ(decisions.size(), 5u);
  EXPECT_EQ(decisions[0]->cache_capacity, 4u);
  EXPECT_EQ(decisions[1]->cache_capacity, 8u);
  EXPECT_EQ(decisions[2]->cache_capacity, 16u);
  EXPECT_EQ(decisions[3]->cache_capacity, 16u);
  for (const auto* d : decisions) {
    EXPECT_EQ(d->target_imbalance, 1.1);
    EXPECT_GE(d->tracker_capacity, 2 * d->cache_capacity);
  }
  EXPECT_EQ(std::string(decisions[2]->phase), "balance");
  EXPECT_EQ(std::string(decisions[4]->phase), "steady");
  // Epoch indices are recorded 0-based in decision order.
  for (size_t i = 0; i < decisions.size(); ++i) {
    EXPECT_EQ(decisions[i]->epoch, i);
  }
}

TEST(ResizerGoldenTraceTest, WarmupEpochsAreConsumedAndTraced) {
  CotCache cache(2, 8);
  ResizerConfig config = SyntheticConfig();
  config.warmup_epochs = 2;
  ElasticResizer resizer(&cache, config);
  EventTracer tracer(256);
  resizer.SetTracer(&tracer);

  resizer.EndEpoch(2.0);  // double_both, arms 2 warmup epochs
  resizer.EndEpoch(2.0);
  resizer.EndEpoch(2.0);
  resizer.EndEpoch(2.0);  // warmup over: acts again

  EXPECT_EQ(DecisionActions(tracer),
            (std::vector<std::string>{"double_both", "warmup", "warmup",
                                      "double_both"}));
}

TEST(ResizerGoldenTraceTest, ShrinkSequenceIsExact) {
  CotCache cache(4, 16);
  ElasticResizer resizer(&cache, SyntheticConfig());
  EventTracer tracer(256);
  resizer.SetTracer(&tracer);

  // Epoch 0: a hot working set exactly the cache's size establishes a high
  // alpha_t, and the target imbalance is already met.
  for (int round = 0; round < 200; ++round) {
    for (uint64_t key = 0; key < 4; ++key) Touch(&cache, key);
  }
  resizer.EndEpoch(1.05);  // target_achieved, alpha_t ~ 199

  // Epochs 1-3: the workload evaporates (no accesses at all): quality is
  // gone on both S_c and S_{k-c}, so the resizer halves down to the floor.
  resizer.EndEpoch(1.0);
  resizer.EndEpoch(1.0);
  resizer.EndEpoch(1.0);

  // Epoch 4: a single hot key at the minimum footprint restores quality.
  for (int i = 0; i < 400; ++i) Touch(&cache, 0);
  resizer.EndEpoch(1.0);

  EXPECT_EQ(DecisionActions(tracer),
            (std::vector<std::string>{"target_achieved", "halve_both",
                                      "halve_both", "at_limit",
                                      "target_achieved"}));
  auto decisions = Decisions(tracer.Events());
  ASSERT_EQ(decisions.size(), 5u);
  EXPECT_GT(decisions[0]->alpha_c, 100.0);
  EXPECT_EQ(decisions[1]->cache_capacity, 2u);
  EXPECT_EQ(decisions[2]->cache_capacity, 1u);
  EXPECT_EQ(decisions[3]->cache_capacity, 1u);
  EXPECT_EQ(std::string(decisions[3]->phase), "shrink");
  EXPECT_EQ(std::string(decisions[4]->phase), "shrink");
  EXPECT_GT(decisions[4]->alpha_c, decisions[4]->alpha_target * 0.95);
}

TEST(ResizerGoldenTraceTest, HotSetTurnoverTriggersDecay) {
  CotCache cache(2, 4096);
  ElasticResizer resizer(&cache, SyntheticConfig());
  EventTracer tracer(256);
  resizer.SetTracer(&tracer);

  // Epoch 0: two scorching keys set a high alpha_t.
  for (int round = 0; round < 400; ++round) {
    Touch(&cache, 0);
    Touch(&cache, 1);
  }
  resizer.EndEpoch(1.0);  // target_achieved

  // Epochs 1-2: the hot set turns over — thousands of *new* keys each seen
  // twice. They earn tracker hits but are too cold to displace the (stale)
  // residents, so S_{k-c} out-earns S_c: Algorithm 3 Case 2, decay.
  uint64_t next_key = 1000;
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (int i = 0; i < 2000; ++i, ++next_key) {
      Touch(&cache, next_key);
      Touch(&cache, next_key);
    }
    resizer.EndEpoch(1.0);
  }

  EXPECT_EQ(DecisionActions(tracer),
            (std::vector<std::string>{"target_achieved", "decay", "decay"}));
  auto decisions = Decisions(tracer.Events());
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_LT(decisions[1]->alpha_c, decisions[1]->alpha_target * 0.95);
  EXPECT_GE(decisions[1]->alpha_kc_signal,
            decisions[1]->alpha_target * 0.95);
  // Capacity held: decay forgets trends without resizing.
  EXPECT_EQ(decisions[2]->cache_capacity, 2u);
}

ResizerConfig ScenarioConfig() {
  ResizerConfig config;
  config.target_imbalance = 1.1;
  config.initial_epoch_size = 2000;
  config.warmup_epochs = 2;
  return config;
}

size_t IndexOf(const std::vector<std::string>& actions,
               const std::string& needle, size_t from = 0) {
  for (size_t i = from; i < actions.size(); ++i) {
    if (actions[i] == needle) return i;
  }
  return actions.size();
}

TEST(ResizerGoldenTraceTest, Figure7ScenarioDecisionPattern) {
  // The paper's adaptive-expand experiment (Figure 7) at test scale: start
  // from 2 cache lines under heavy skew and let the resizer work.
  cluster::CacheCluster cluster(8, 100000);
  cluster::FrontendClient client(&cluster, std::make_unique<CotCache>(2, 4));
  EventTracer tracer(65536);
  client.SetTracer(&tracer);
  ASSERT_TRUE(client.EnableElasticResizing(ScenarioConfig()).ok());

  workload::PhaseSpec zipf;
  zipf.distribution = workload::Distribution::kZipfian;
  zipf.skew = 1.2;
  zipf.read_fraction = 1.0;
  zipf.num_ops = 2000000;
  auto stream = workload::OpStream::Create(100000, {zipf}, /*seed=*/7);
  ASSERT_TRUE(stream.ok());
  while (!stream->Done()) client.Apply(stream->Next());

  std::vector<std::string> actions;
  for (const auto* d : Decisions(tracer.Events())) {
    actions.emplace_back(d->action);
  }
  ASSERT_GT(actions.size(), 10u);

  // Phase 1 first: the tracker ratio is discovered (>= 1 doubling, closed
  // by the step-back) before any cache growth.
  size_t first_double_tracker = IndexOf(actions, "double_tracker");
  size_t shrink_back = IndexOf(actions, "shrink_tracker_back");
  size_t first_double_both = IndexOf(actions, "double_both");
  ASSERT_LT(first_double_tracker, actions.size());
  ASSERT_LT(shrink_back, actions.size());
  ASSERT_LT(first_double_both, actions.size());
  EXPECT_LT(first_double_tracker, shrink_back);
  EXPECT_LT(shrink_back, first_double_both);

  // Phase 2: binary search upward needs several doublings from 2 lines.
  size_t doublings = 0;
  for (const std::string& a : actions) doublings += (a == "double_both");
  EXPECT_GE(doublings, 2u);

  // The search terminates at the target.
  size_t achieved = IndexOf(actions, "target_achieved", first_double_both);
  ASSERT_LT(achieved, actions.size());

  // The trace is exactly the resizer's own history, decision for decision.
  const auto& history = client.resizer()->history();
  auto decisions = Decisions(tracer.Events());
  ASSERT_EQ(decisions.size(), history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(decisions[i]->action, core::ToString(history[i].action)) << i;
    EXPECT_EQ(decisions[i]->epoch, history[i].epoch) << i;
    EXPECT_EQ(decisions[i]->cache_capacity, history[i].cache_capacity) << i;
  }

  // Every decision is preceded by its epoch-boundary event.
  std::vector<TraceEvent> events = tracer.Events();
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != TraceEventType::kResizerDecision) continue;
    ASSERT_GT(i, 0u);
    EXPECT_EQ(events[i - 1].type, TraceEventType::kEpochBoundary);
    EXPECT_EQ(std::get<metrics::EpochBoundaryPayload>(events[i - 1].payload)
                  .epoch,
              std::get<ResizerDecisionPayload>(events[i].payload).epoch);
  }

  // Endpoint: the smoothed imbalance meets the target (with EWMA slack).
  EXPECT_LE(decisions.back()->smoothed_imbalance, 1.1 * 1.25);
}

TEST(ResizerGoldenTraceTest, Figure8ScenarioDecisionPattern) {
  // The paper's adaptive-shrink experiment (Figure 8): reach steady state
  // under skew, then turn the workload uniform and watch the traced
  // decisions walk the shrink path.
  cluster::CacheCluster cluster(8, 100000);
  cluster::FrontendClient client(&cluster, std::make_unique<CotCache>(2, 4));
  EventTracer tracer(65536);
  client.SetTracer(&tracer);
  ASSERT_TRUE(client.EnableElasticResizing(ScenarioConfig()).ok());
  auto* cache = dynamic_cast<CotCache*>(client.local_cache());
  ASSERT_NE(cache, nullptr);

  workload::PhaseSpec zipf;
  zipf.distribution = workload::Distribution::kZipfian;
  zipf.skew = 1.2;
  zipf.read_fraction = 1.0;
  zipf.num_ops = 0;
  auto zipf_stream = workload::OpStream::Create(100000, {zipf}, /*seed=*/13);
  ASSERT_TRUE(zipf_stream.ok());
  uint64_t budget = 5000000;
  size_t steady_since = 0;
  bool in_steady_run = false;
  while (budget-- > 0) {
    client.Apply(zipf_stream->Next());
    ElasticResizer* rz = client.resizer();
    if (rz->phase() == core::ResizerPhase::kSteady) {
      if (!in_steady_run) {
        in_steady_run = true;
        steady_since = rz->history().size();
      }
      if (rz->history().size() >= steady_since + 3) break;
    } else {
      in_steady_run = false;
    }
  }
  ASSERT_EQ(client.resizer()->phase(), core::ResizerPhase::kSteady);
  size_t peak_capacity = cache->capacity();
  ASSERT_GE(peak_capacity, 16u);
  size_t decisions_at_switch = Decisions(tracer.Events()).size();

  workload::PhaseSpec uniform;
  uniform.distribution = workload::Distribution::kUniform;
  uniform.read_fraction = 1.0;
  uniform.num_ops = 0;
  auto uniform_stream =
      workload::OpStream::Create(100000, {uniform}, /*seed=*/14);
  ASSERT_TRUE(uniform_stream.ok());
  for (uint64_t i = 0; i < 3000000; ++i) {
    client.Apply(uniform_stream->Next());
    if (cache->capacity() <= peak_capacity / 8) break;
  }
  EXPECT_LE(cache->capacity(), peak_capacity / 4);

  std::vector<std::string> actions;
  for (const auto* d : Decisions(tracer.Events())) {
    actions.emplace_back(d->action);
  }
  // The uniform phase begins with the Case-1 response: re-discover the
  // tracker ratio, then halve down.
  size_t reset = IndexOf(actions, "reset_tracker_ratio", decisions_at_switch);
  ASSERT_LT(reset, actions.size()) << "Case 1 never fired";
  size_t rediscover = IndexOf(actions, "double_tracker", reset);
  size_t first_halve = IndexOf(actions, "halve_both", reset);
  ASSERT_LT(first_halve, actions.size()) << "never shrank after Case 1";
  EXPECT_LT(rediscover, first_halve)
      << "ratio re-discovery should precede the shrink loop";
  size_t halvings = 0;
  for (size_t i = reset; i < actions.size(); ++i) {
    halvings += (actions[i] == "halve_both");
  }
  EXPECT_GE(halvings, 2u);
}

}  // namespace
}  // namespace cot
