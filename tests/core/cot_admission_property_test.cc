// Property tests of CoT's central claim (Section 4.2): under read-through
// driving, the cache always holds the exact top-C keys of the tracked set
// — formally, every tracked-but-not-cached key's hotness is <= h_min, the
// coldest cached key's hotness.
//
// The property is exact for read-only streams (every hotness change flows
// through Get, whose miss path offers the key for admission). Updates and
// explicit resizes can transiently open free slots that are refilled by
// the next accesses, which is why the paper qualifies "exact top C ...
// with respect to the approximate top-K".

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/cot_cache.h"
#include "util/hash.h"
#include "util/random.h"
#include "workload/simple_generators.h"
#include "workload/zipfian_generator.h"

namespace cot::core {
namespace {

// Asserts the top-C property: max hotness over S_{k-c} <= min over S_c.
::testing::AssertionResult CacheHoldsTopOfTracker(const CotCache& cache) {
  if (cache.size() == 0) return ::testing::AssertionSuccess();
  double h_min = cache.MinCachedHotness().value();
  double worst = -std::numeric_limits<double>::infinity();
  uint64_t worst_key = 0;
  cache.tracker().ForEach([&](const uint64_t& key, double hotness) {
    if (!cache.Contains(key) && hotness > worst) {
      worst = hotness;
      worst_key = key;
    }
  });
  if (worst > h_min) {
    return ::testing::AssertionFailure()
           << "tracked-not-cached key " << worst_key << " has hotness "
           << worst << " > h_min " << h_min;
  }
  return ::testing::AssertionSuccess();
}

struct StreamCase {
  const char* label;
  double skew;  // 0 = uniform
  uint64_t keys;
  size_t cache_lines;
  size_t tracker_lines;
};

class AdmissionPropertyTest : public ::testing::TestWithParam<StreamCase> {};

TEST_P(AdmissionPropertyTest, ReadOnlyStreamKeepsTopCProperty) {
  const StreamCase& param = GetParam();
  CotCache cache(param.cache_lines, param.tracker_lines);
  std::unique_ptr<workload::KeyGenerator> gen;
  if (param.skew == 0.0) {
    gen = std::make_unique<workload::UniformGenerator>(param.keys);
  } else {
    gen = std::make_unique<workload::ZipfianGenerator>(param.keys,
                                                       param.skew);
  }
  Rng rng(Fnv1a64(param.label));
  for (int i = 0; i < 30000; ++i) {
    CotCache::Key k = gen->Next(rng);
    if (!cache.Get(k).has_value()) cache.Put(k, k);
    if (i % 1000 == 999) {
      ASSERT_TRUE(CacheHoldsTopOfTracker(cache)) << "at access " << i;
      ASSERT_TRUE(cache.CheckInvariants());
    }
  }
  ASSERT_TRUE(CacheHoldsTopOfTracker(cache));
}

INSTANTIATE_TEST_SUITE_P(
    Streams, AdmissionPropertyTest,
    ::testing::Values(StreamCase{"zipf12_tiny", 1.2, 10000, 2, 8},
                      StreamCase{"zipf12_small", 1.2, 10000, 8, 32},
                      StreamCase{"zipf099", 0.99, 10000, 16, 128},
                      StreamCase{"zipf09", 0.9, 50000, 32, 512},
                      StreamCase{"uniform", 0.0, 5000, 8, 32},
                      StreamCase{"tracker_equals_2c", 1.2, 10000, 16, 32}),
    [](const ::testing::TestParamInfo<StreamCase>& info) {
      return info.param.label;
    });

TEST(AdmissionPropertyTest, PropertyRestoresAfterDecay) {
  // Half-life decay scales all hotness uniformly: the top-C property is
  // preserved by construction.
  CotCache cache(8, 64);
  workload::ZipfianGenerator gen(10000, 1.2);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    CotCache::Key k = gen.Next(rng);
    if (!cache.Get(k).has_value()) cache.Put(k, k);
    if (i % 5000 == 4999) cache.HalveAllHotness();
  }
  EXPECT_TRUE(CacheHoldsTopOfTracker(cache));
}

TEST(AdmissionPropertyTest, FullCoverageTrackerCountsExactly) {
  // Degenerate case K >= |key space|: space-saving never evicts, so every
  // tracked hotness equals the true access count exactly.
  constexpr uint64_t kKeys = 256;
  CotCache cache(16, 2 * kKeys);
  std::vector<uint64_t> truth(kKeys, 0);
  workload::ZipfianGenerator gen(kKeys, 0.99);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    CotCache::Key k = gen.Next(rng);
    ++truth[k];
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  for (CotCache::Key k = 0; k < kKeys; ++k) {
    if (truth[k] == 0) continue;
    auto h = cache.tracker().HotnessOf(k);
    ASSERT_TRUE(h.has_value());
    EXPECT_DOUBLE_EQ(*h, static_cast<double>(truth[k])) << "key " << k;
  }
}

TEST(AdmissionPropertyTest, FullCoverageCacheEqualsTopCByTrueCount) {
  // With exact counts, CoT's cache must be exactly the top-C keys by true
  // frequency — the "perfect LFU" the TPC oracle assumes.
  constexpr uint64_t kKeys = 256;
  constexpr size_t kC = 16;
  CotCache cache(kC, 2 * kKeys);
  std::vector<uint64_t> truth(kKeys, 0);
  workload::ZipfianGenerator gen(kKeys, 1.2);
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    CotCache::Key k = gen.Next(rng);
    ++truth[k];
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  // True top-C threshold (count of the C-th hottest key).
  std::vector<uint64_t> sorted(truth);
  std::sort(sorted.rbegin(), sorted.rend());
  uint64_t threshold = sorted[kC - 1];
  // Every cached key's true count is >= the threshold's tie class, and
  // every key strictly above the threshold is cached.
  for (CotCache::Key k = 0; k < kKeys; ++k) {
    if (truth[k] > threshold) {
      EXPECT_TRUE(cache.Contains(k))
          << "key " << k << " (count " << truth[k] << ") missing";
    }
    if (cache.Contains(k)) {
      EXPECT_GE(truth[k], threshold) << "cold key " << k << " cached";
    }
  }
}

TEST(AdmissionPropertyTest, HotspotStreamExactHotSetCaptured) {
  // With a sharp hot/cold boundary and C >= hot-set size, CoT must end up
  // caching exactly the hot set.
  constexpr uint64_t kHotKeys = 16;
  workload::HotspotGenerator gen(10000, /*hot_set_fraction=*/0.0016,
                                 /*hot_opn_fraction=*/0.95);
  ASSERT_EQ(gen.hot_set_size(), kHotKeys);
  CotCache cache(kHotKeys, 8 * kHotKeys);
  Rng rng(11);
  for (int i = 0; i < 100000; ++i) {
    CotCache::Key k = gen.Next(rng);
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
  size_t hot_cached = 0;
  for (CotCache::Key k = 0; k < kHotKeys; ++k) {
    if (cache.Contains(k)) ++hot_cached;
  }
  EXPECT_GE(hot_cached, kHotKeys - 1);  // allow one boundary straggler
}

}  // namespace
}  // namespace cot::core
