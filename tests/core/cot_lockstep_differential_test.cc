// Lockstep differential suite for the optimized tracker/CoT hot path.
//
// The production `SpaceSavingTracker` and `CotCache` maintain their heaps
// lazily (stale lower-bound slot priorities, repair-on-min-read) and merge
// the tracker index with cache residency into a single probe. Those are
// pure performance restructurings: every externally observable decision —
// hit/miss results, eviction victims, admission outcomes, stats and epoch
// counters, export sequences — must equal the O(n)-scan reference
// implementation (`reference_cot.h`), which transcribes Algorithm 1/2 plus
// the (hotness, key) victim tie-break directly.
//
// Each scenario drives both implementations through the same seeded stream
// (Zipfian, sequential scan, update-heavy, tie-dense uniform) interleaved
// with the structural events that historically break shadow state: cache
// and tracker resizes in both directions, half-life decay, and warm
// handoff export/import round trips. `CheckInvariants` runs on the
// optimized side after EVERY step, so a broken lazy invariant is caught at
// the step that introduced it, not at the next minimum consultation.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cot_cache.h"
#include "core/reference_cot.h"
#include "core/space_saving_tracker.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::core {
namespace {

using cache::Key;
using cache::Value;

// --- stream generation ------------------------------------------------------

enum class StreamKind {
  kZipfian,      // skewed reads (+ optional updates)
  kScan,         // sequential wraparound sweep
  kTinyUniform,  // tiny key space: dense hotness ties
};

struct Scenario {
  const char* name;
  StreamKind kind;
  uint64_t key_space;
  double skew;            // zipfian only
  double update_fraction; // fraction of accesses that are updates
  size_t cache_capacity;
  size_t tracker_capacity;
  HotnessWeights weights;
  int steps;
};

class StreamGen {
 public:
  StreamGen(const Scenario& s, uint64_t seed) : scenario_(s), rng_(seed) {
    if (s.kind == StreamKind::kZipfian) {
      zipf_.emplace(s.key_space, s.skew);
    }
  }

  Key NextKey() {
    switch (scenario_.kind) {
      case StreamKind::kZipfian:
        return zipf_->Next(rng_);
      case StreamKind::kScan:
        return next_scan_++ % scenario_.key_space;
      case StreamKind::kTinyUniform:
        return rng_.NextBelow(scenario_.key_space);
    }
    return 0;
  }

  bool NextIsUpdate() { return rng_.Bernoulli(scenario_.update_fraction); }

 private:
  Scenario scenario_;
  Rng rng_;
  std::optional<workload::ZipfianGenerator> zipf_;
  uint64_t next_scan_ = 0;
};

Value ValueFor(Key k) { return k * 0x9E3779B97F4A7C15ULL + 1; }

// --- tracker-level lockstep -------------------------------------------------

class TrackerLockstepTest : public ::testing::TestWithParam<Scenario> {};

void ExpectSameTrackResult(const SpaceSavingTracker::TrackResult& a,
                           const ReferenceSpaceSavingTracker::TrackResult& b,
                           int step) {
  ASSERT_EQ(a.hotness, b.hotness) << "step " << step;
  ASSERT_EQ(a.was_tracked, b.was_tracked) << "step " << step;
  ASSERT_EQ(a.lowered, b.lowered) << "step " << step;
  ASSERT_EQ(a.evicted, b.evicted) << "step " << step;
  if (a.evicted.has_value()) {
    ASSERT_EQ(a.evicted_hotness, b.evicted_hotness) << "step " << step;
  }
}

TEST_P(TrackerLockstepTest, DecisionSequencesMatchReference) {
  const Scenario& s = GetParam();
  SpaceSavingTracker opt(s.tracker_capacity, s.weights);
  ReferenceSpaceSavingTracker ref(s.tracker_capacity, s.weights);
  StreamGen gen(s, /*seed=*/1234);
  Rng event_rng(99);

  for (int step = 0; step < s.steps; ++step) {
    Key key = gen.NextKey();
    AccessType type =
        gen.NextIsUpdate() ? AccessType::kUpdate : AccessType::kRead;
    auto a = opt.TrackAccess(key, type);
    auto b = ref.TrackAccess(key, type);
    ASSERT_NO_FATAL_FAILURE(ExpectSameTrackResult(a, b, step));
    ASSERT_TRUE(opt.CheckInvariants()) << "step " << step;

    // Structural events, each compared exhaustively right after.
    bool perturbed = false;
    if (step == s.steps / 4) {
      // Shrink to ~60%: coldest keys leave, identical victim sequences.
      size_t smaller = std::max<size_t>(1, s.tracker_capacity * 3 / 5);
      std::vector<Key> ev_a, ev_b;
      ASSERT_TRUE(opt.Resize(smaller, &ev_a).ok());
      ASSERT_TRUE(ref.Resize(smaller, &ev_b).ok());
      ASSERT_EQ(ev_a, ev_b) << "step " << step;
      perturbed = true;
    } else if (step == s.steps / 3) {
      ASSERT_TRUE(opt.Resize(s.tracker_capacity).ok());
      ASSERT_TRUE(ref.Resize(s.tracker_capacity).ok());
      perturbed = true;
    } else if (step == s.steps / 2) {
      opt.HalveAllHotness();
      ref.HalveAllHotness();
      perturbed = true;
    } else if (step == 2 * s.steps / 3) {
      // Seed a batch of keys (some tracked, some new, some too cold),
      // mirroring a warm-handoff import mid-stream.
      for (int i = 0; i < 8; ++i) {
        Key sk = event_rng.NextBelow(2 * s.key_space);
        KeyCounters counters;
        counters.read_count =
            static_cast<double>(event_rng.NextBelow(40));
        counters.update_count =
            static_cast<double>(event_rng.NextBelow(10));
        SpaceSavingTracker::NodeId id = opt.Seed(sk, counters);
        bool installed = ref.Seed(sk, counters);
        ASSERT_EQ(id != SpaceSavingTracker::kInvalidNode, installed)
            << "step " << step << " seed " << sk;
      }
      perturbed = true;
    }
    if (perturbed) {
      ASSERT_TRUE(opt.CheckInvariants()) << "step " << step;
    }

    if (perturbed || step % 97 == 0) {
      ASSERT_EQ(opt.MinHotness(), ref.MinHotness()) << "step " << step;
      ASSERT_TRUE(opt.CheckInvariants()) << "step " << step;
    }
    if (perturbed || step % 250 == 0) {
      ASSERT_EQ(opt.SortedByHotnessDesc(), ref.SortedByHotnessDesc())
          << "step " << step;
    }
  }
  ASSERT_EQ(opt.SortedByHotnessDesc(), ref.SortedByHotnessDesc());
}

// --- cache-level lockstep ---------------------------------------------------

class CotLockstepTest : public ::testing::TestWithParam<Scenario> {};

void ExpectSameCounters(const CotCache& opt, const ReferenceCotCache& ref,
                        int step) {
  ASSERT_EQ(opt.stats().hits, ref.stats().hits) << "step " << step;
  ASSERT_EQ(opt.stats().misses, ref.stats().misses) << "step " << step;
  ASSERT_EQ(opt.stats().insertions, ref.stats().insertions)
      << "step " << step;
  ASSERT_EQ(opt.stats().evictions, ref.stats().evictions) << "step " << step;
  ASSERT_EQ(opt.stats().invalidations, ref.stats().invalidations)
      << "step " << step;
  ASSERT_EQ(opt.epoch_stats().cache_hits, ref.epoch_stats().cache_hits)
      << "step " << step;
  ASSERT_EQ(opt.epoch_stats().tracker_only_hits,
            ref.epoch_stats().tracker_only_hits)
      << "step " << step;
  ASSERT_EQ(opt.epoch_stats().accesses, ref.epoch_stats().accesses)
      << "step " << step;
  ASSERT_EQ(opt.size(), ref.size()) << "step " << step;
  ASSERT_EQ(opt.tracker_size(), ref.tracker_size()) << "step " << step;
}

void ExpectSameExportedState(const CotCache& opt,
                             const ReferenceCotCache& ref, int step) {
  auto a = opt.ExportState();
  auto b = ref.ExportState();
  ASSERT_EQ(a.size(), b.size()) << "step " << step;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].key, b[i].key) << "step " << step << " entry " << i;
    ASSERT_EQ(a[i].counters.read_count, b[i].counters.read_count)
        << "step " << step << " entry " << i;
    ASSERT_EQ(a[i].counters.update_count, b[i].counters.update_count)
        << "step " << step << " entry " << i;
    ASSERT_EQ(a[i].value, b[i].value) << "step " << step << " entry " << i;
  }
}

TEST_P(CotLockstepTest, DecisionSequencesMatchReference) {
  const Scenario& s = GetParam();
  CotCacheConfig config{s.cache_capacity, s.tracker_capacity, s.weights};
  CotCache opt(config);
  ReferenceCotCache ref(config);
  StreamGen gen(s, /*seed=*/4321);

  for (int step = 0; step < s.steps; ++step) {
    Key key = gen.NextKey();
    if (gen.NextIsUpdate()) {
      opt.Invalidate(key);
      ref.Invalidate(key);
    } else {
      // Read-through: a miss fetches from the notional back-end and offers
      // the value for admission, exactly as FrontendClient drives it.
      auto a = opt.Get(key);
      auto b = ref.Get(key);
      ASSERT_EQ(a, b) << "step " << step;
      if (!a.has_value()) {
        opt.Put(key, ValueFor(key));
        ref.Put(key, ValueFor(key));
      }
    }
    ASSERT_NO_FATAL_FAILURE(ExpectSameCounters(opt, ref, step));
    ASSERT_TRUE(opt.CheckInvariants()) << "step " << step;

    bool perturbed = false;
    if (step == s.steps / 5) {
      // Cache shrink (coldest residents leave in identical order, visible
      // through the evictions counter and the exported state).
      ASSERT_EQ(opt.Resize(s.cache_capacity / 2).ok(),
                ref.Resize(s.cache_capacity / 2).ok());
      perturbed = true;
    } else if (step == s.steps / 4) {
      ASSERT_EQ(opt.Resize(s.cache_capacity).ok(),
                ref.Resize(s.cache_capacity).ok());
      perturbed = true;
    } else if (step == s.steps * 2 / 5) {
      // Tracker shrink to the K >= 2C floor: cached keys among the victims
      // must be dropped from both caches identically.
      size_t floor = std::max<size_t>(1, 2 * s.cache_capacity);
      ASSERT_EQ(opt.ResizeTracker(floor).ok(),
                ref.ResizeTracker(floor).ok());
      perturbed = true;
    } else if (step == s.steps / 2) {
      ASSERT_EQ(opt.ResizeTracker(s.tracker_capacity).ok(),
                ref.ResizeTracker(s.tracker_capacity).ok());
      perturbed = true;
    } else if (step == s.steps * 3 / 5) {
      opt.HalveAllHotness();
      ref.HalveAllHotness();
      perturbed = true;
    } else if (step == s.steps * 4 / 5) {
      // Warm-handoff round trip: both sides export identical state, then
      // both re-import the optimized export.
      ASSERT_NO_FATAL_FAILURE(ExpectSameExportedState(opt, ref, step));
      auto exported = opt.ExportState();
      opt.ImportState(exported);
      ref.ImportState(exported);
      perturbed = true;
    }
    if (perturbed) {
      ASSERT_TRUE(opt.CheckInvariants()) << "step " << step;
      ASSERT_NO_FATAL_FAILURE(ExpectSameExportedState(opt, ref, step));
      ASSERT_EQ(opt.MinCachedHotness(), ref.MinCachedHotness())
          << "step " << step;
    }
    if (step % 97 == 0) {
      ASSERT_EQ(opt.MinCachedHotness(), ref.MinCachedHotness())
          << "step " << step;
      ASSERT_TRUE(opt.CheckInvariants()) << "step " << step;
    }
    if (step % 500 == 0) {
      ASSERT_NO_FATAL_FAILURE(ExpectSameExportedState(opt, ref, step));
    }
  }
  ASSERT_NO_FATAL_FAILURE(ExpectSameExportedState(opt, ref, s.steps));
  ASSERT_EQ(opt.MinCachedHotness(), ref.MinCachedHotness());
}

// --- scenarios --------------------------------------------------------------

const Scenario kScenarios[] = {
    {"zipfian_reads", StreamKind::kZipfian, 4096, 0.99, 0.0, 64, 256,
     HotnessWeights{}, 4000},
    {"zipfian_mixed", StreamKind::kZipfian, 2048, 0.99, 0.25, 64, 128,
     HotnessWeights{}, 4000},
    {"update_heavy", StreamKind::kZipfian, 2048, 0.9, 0.6, 48, 96,
     HotnessWeights{}, 4000},
    {"scan", StreamKind::kScan, 1500, 0.0, 0.05, 32, 64, HotnessWeights{},
     4000},
    {"tiny_ties", StreamKind::kTinyUniform, 24, 0.0, 0.3, 4, 8,
     HotnessWeights{}, 5000},
    {"negative_read_weight", StreamKind::kZipfian, 512, 0.99, 0.2, 16, 32,
     HotnessWeights{-0.5, 2.0}, 3000},
    {"uniform_churn", StreamKind::kTinyUniform, 8192, 0.0, 0.1, 32, 64,
     HotnessWeights{}, 4000},
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(Streams, TrackerLockstepTest,
                         ::testing::ValuesIn(kScenarios), ScenarioName);
INSTANTIATE_TEST_SUITE_P(Streams, CotLockstepTest,
                         ::testing::ValuesIn(kScenarios), ScenarioName);

}  // namespace
}  // namespace cot::core
