#include "core/elastic_resizer.h"

#include <gtest/gtest.h>

#include "core/cot_cache.h"

namespace cot::core {
namespace {

// Drives `reps` read accesses to `key` through the cache (read-through).
void Hammer(CotCache& cache, CotCache::Key key, int reps) {
  for (int i = 0; i < reps; ++i) {
    if (!cache.Get(key).has_value()) cache.Put(key, key);
  }
}

// Touches `key` via Get only (never offers a value), so the key heats up in
// the tracker without being admitted — a pure S_{k-c} signal.
void Graze(CotCache& cache, CotCache::Key key, int reps) {
  for (int i = 0; i < reps; ++i) cache.Get(key);
}

ResizerConfig FastConfig() {
  ResizerConfig config;
  config.target_imbalance = 1.1;
  config.warmup_epochs = 0;
  config.initial_epoch_size = 16;
  config.enable_ratio_discovery = false;
  // Unit tests feed exact I_c values and want crisp single-epoch reactions.
  config.imbalance_smoothing = 1.0;
  config.min_epoch_backend_lookups = 0;
  config.exceed_epochs_to_regrow = 1;
  return config;
}

TEST(ElasticResizerTest, InitialPhaseFollowsConfig) {
  CotCache cache(2, 4);
  ResizerConfig with_discovery;
  with_discovery.enable_ratio_discovery = true;
  with_discovery.imbalance_smoothing = 1.0;
  ElasticResizer r1(&cache, with_discovery);
  EXPECT_EQ(r1.phase(), ResizerPhase::kRatioDiscovery);

  ResizerConfig without = FastConfig();
  ElasticResizer r2(&cache, without);
  EXPECT_EQ(r2.phase(), ResizerPhase::kBalance);
}

TEST(ElasticResizerTest, EpochSizeAtLeastTrackerCapacity) {
  CotCache cache(64, 1024);
  ResizerConfig config = FastConfig();
  config.initial_epoch_size = 100;
  ElasticResizer resizer(&cache, config);
  EXPECT_EQ(resizer.epoch_size(), 1024u);  // max(E0, K)
}

TEST(ElasticResizerTest, OnAccessDrivesEpochCompletion) {
  CotCache cache(2, 4);
  ResizerConfig config = FastConfig();
  config.initial_epoch_size = 10;
  ElasticResizer resizer(&cache, config);
  for (int i = 0; i < 9; ++i) {
    resizer.OnAccess();
    EXPECT_FALSE(resizer.EpochComplete());
  }
  resizer.OnAccess();
  EXPECT_TRUE(resizer.EpochComplete());
  resizer.EndEpoch(1.0);
  EXPECT_FALSE(resizer.EpochComplete());  // counter reset
}

TEST(ElasticResizerTest, ImbalanceAboveTargetDoublesBoth) {
  CotCache cache(2, 4);
  ElasticResizer resizer(&cache, FastConfig());
  EpochReport report = resizer.EndEpoch(/*current_imbalance=*/5.0);
  EXPECT_EQ(report.action, ResizeAction::kDoubleBoth);
  EXPECT_EQ(cache.capacity(), 4u);
  EXPECT_EQ(cache.tracker_capacity(), 8u);
}

TEST(ElasticResizerTest, WarmupSuppressesActionsAfterResize) {
  CotCache cache(2, 4);
  ResizerConfig config = FastConfig();
  config.warmup_epochs = 3;
  ElasticResizer resizer(&cache, config);
  EXPECT_EQ(resizer.EndEpoch(5.0).action, ResizeAction::kDoubleBoth);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(resizer.EndEpoch(5.0).action, ResizeAction::kWarmup);
    EXPECT_EQ(cache.capacity(), 4u);  // unchanged during warmup
  }
  EXPECT_EQ(resizer.EndEpoch(5.0).action, ResizeAction::kDoubleBoth);
  EXPECT_EQ(cache.capacity(), 8u);
}

TEST(ElasticResizerTest, DoublingStopsAtTargetAndRecordsAlpha) {
  CotCache cache(2, 4);
  ElasticResizer resizer(&cache, FastConfig());
  resizer.EndEpoch(3.0);
  resizer.EndEpoch(2.0);
  ASSERT_EQ(cache.capacity(), 8u);
  // Give the cached keys some hits so alpha_t is meaningful.
  Hammer(cache, 1, 21);
  Hammer(cache, 2, 21);
  EpochReport report = resizer.EndEpoch(1.05);
  EXPECT_EQ(report.action, ResizeAction::kTargetAchieved);
  EXPECT_EQ(resizer.phase(), ResizerPhase::kSteady);
  EXPECT_DOUBLE_EQ(resizer.alpha_target(), report.alpha_c);
  EXPECT_GT(resizer.alpha_target(), 0.0);
}

TEST(ElasticResizerTest, AchievedSlackToleratesTwoPercent) {
  CotCache cache(2, 4);
  ResizerConfig config = FastConfig();
  config.target_imbalance = 1.1;
  config.achieved_slack = 0.02;
  ElasticResizer resizer(&cache, config);
  // 1.12 < 1.1 * 1.02 = 1.122: counts as achieved.
  EXPECT_EQ(resizer.EndEpoch(1.12).action, ResizeAction::kTargetAchieved);
}

TEST(ElasticResizerTest, SteadyViolationResumesDoubling) {
  CotCache cache(2, 4);
  ElasticResizer resizer(&cache, FastConfig());
  resizer.EndEpoch(1.0);  // steady
  ASSERT_EQ(resizer.phase(), ResizerPhase::kSteady);
  EpochReport report = resizer.EndEpoch(9.0);
  EXPECT_EQ(report.action, ResizeAction::kDoubleBoth);
  EXPECT_EQ(resizer.phase(), ResizerPhase::kBalance);
}

TEST(ElasticResizerTest, Case2TriggersDecay) {
  CotCache cache(2, 8);
  ElasticResizer resizer(&cache, FastConfig());
  // Epoch 1: two hot cached keys -> steady with alpha_t = 10.
  Hammer(cache, 1, 11);
  Hammer(cache, 2, 11);
  resizer.EndEpoch(1.0);
  ASSERT_EQ(resizer.phase(), ResizerPhase::kSteady);
  ASSERT_DOUBLE_EQ(resizer.alpha_target(), 10.0);
  double hotness_before = *cache.tracker().HotnessOf(1);
  // Epoch 2: the hot set moved — tracked-but-not-cached keys get all hits.
  Graze(cache, 10, 40);
  Graze(cache, 11, 40);
  Graze(cache, 12, 40);
  EpochReport report = resizer.EndEpoch(1.0);
  EXPECT_EQ(report.action, ResizeAction::kDecay);
  EXPECT_EQ(resizer.phase(), ResizerPhase::kSteady);
  EXPECT_LT(*cache.tracker().HotnessOf(1), hotness_before);
}

TEST(ElasticResizerTest, Case2WithDecayDisabledLogsButKeepsHotness) {
  CotCache cache(2, 8);
  ResizerConfig config = FastConfig();
  config.enable_decay = false;
  ElasticResizer resizer(&cache, config);
  Hammer(cache, 1, 11);
  Hammer(cache, 2, 11);
  resizer.EndEpoch(1.0);
  double hotness_before = *cache.tracker().HotnessOf(1);
  Graze(cache, 10, 40);
  Graze(cache, 11, 40);
  Graze(cache, 12, 40);
  EpochReport report = resizer.EndEpoch(1.0);
  EXPECT_EQ(report.action, ResizeAction::kDecay);
  EXPECT_DOUBLE_EQ(*cache.tracker().HotnessOf(1), hotness_before);
}

TEST(ElasticResizerTest, Case1ShrinksWhenBothQualitiesCollapse) {
  CotCache cache(4, 8);
  ResizerConfig config = FastConfig();  // discovery disabled -> direct halve
  ElasticResizer resizer(&cache, config);
  Hammer(cache, 1, 41);
  Hammer(cache, 2, 41);
  Hammer(cache, 3, 41);
  Hammer(cache, 4, 41);
  resizer.EndEpoch(1.0);  // steady, alpha_t = 40
  ASSERT_EQ(resizer.phase(), ResizerPhase::kSteady);
  // Workload went uniform/cold: nobody achieves alpha_t.
  EpochReport report = resizer.EndEpoch(1.0);
  EXPECT_EQ(report.action, ResizeAction::kHalveBoth);
  EXPECT_EQ(resizer.phase(), ResizerPhase::kShrink);
  EXPECT_EQ(cache.capacity(), 2u);
  EXPECT_EQ(cache.tracker_capacity(), 4u);
}

TEST(ElasticResizerTest, Case1WithDiscoveryResetsTrackerRatio) {
  CotCache cache(4, 64);
  ResizerConfig config = FastConfig();
  config.enable_ratio_discovery = true;
  config.imbalance_smoothing = 1.0;
  ElasticResizer resizer(&cache, config);
  // Skip the initial discovery by feeding epochs until kBalance completes.
  // Initial phase: discovery — first epoch doubles the tracker.
  resizer.EndEpoch(1.0);  // baseline + double tracker
  EpochReport r = resizer.EndEpoch(1.0);  // no gain -> shrink back, balance
  ASSERT_EQ(r.action, ResizeAction::kShrinkTrackerBack);
  ASSERT_EQ(resizer.phase(), ResizerPhase::kBalance);
  Hammer(cache, 1, 41);
  Hammer(cache, 2, 41);
  Hammer(cache, 3, 41);
  Hammer(cache, 4, 41);
  resizer.EndEpoch(1.0);  // steady with alpha_t = 40
  ASSERT_EQ(resizer.phase(), ResizerPhase::kSteady);
  EpochReport report = resizer.EndEpoch(1.0);  // both cold
  EXPECT_EQ(report.action, ResizeAction::kResetTrackerRatio);
  EXPECT_EQ(resizer.phase(), ResizerPhase::kRatioDiscovery);
  EXPECT_EQ(cache.tracker_capacity(), 2 * cache.capacity());
}

TEST(ElasticResizerTest, ShrinkStopsAtMinimumFootprint) {
  CotCache cache(2, 4);
  ResizerConfig config = FastConfig();
  config.min_cache_capacity = 1;
  ElasticResizer resizer(&cache, config);
  Hammer(cache, 1, 21);
  Hammer(cache, 2, 21);
  resizer.EndEpoch(1.0);  // steady, alpha_t = 20
  resizer.EndEpoch(1.0);  // cold -> halve to C=1
  ASSERT_EQ(cache.capacity(), 1u);
  EpochReport report = resizer.EndEpoch(1.0);  // cold again, at minimum
  EXPECT_EQ(report.action, ResizeAction::kAtLimit);
  EXPECT_EQ(cache.capacity(), 1u);
}

TEST(ElasticResizerTest, ShrinkRecoveryReturnsToSteady) {
  CotCache cache(4, 8);
  ElasticResizer resizer(&cache, FastConfig());
  Hammer(cache, 1, 41);
  Hammer(cache, 2, 41);
  Hammer(cache, 3, 41);
  Hammer(cache, 4, 41);
  resizer.EndEpoch(1.0);  // steady, alpha_t = 40
  resizer.EndEpoch(1.0);  // halve -> shrink phase, C=2
  ASSERT_EQ(resizer.phase(), ResizerPhase::kShrink);
  // Quality recovers at the smaller size.
  Hammer(cache, 1, 40);
  Hammer(cache, 2, 40);
  EpochReport report = resizer.EndEpoch(1.0);
  EXPECT_EQ(report.action, ResizeAction::kTargetAchieved);
  EXPECT_EQ(resizer.phase(), ResizerPhase::kSteady);
}

TEST(ElasticResizerTest, ShrinkViolationResumesDoubling) {
  CotCache cache(4, 8);
  ElasticResizer resizer(&cache, FastConfig());
  Hammer(cache, 1, 41);
  Hammer(cache, 2, 41);
  Hammer(cache, 3, 41);
  Hammer(cache, 4, 41);
  resizer.EndEpoch(1.0);
  resizer.EndEpoch(1.0);  // shrink to C=2
  ASSERT_EQ(resizer.phase(), ResizerPhase::kShrink);
  EpochReport report = resizer.EndEpoch(8.0);  // imbalance shot up
  EXPECT_EQ(report.action, ResizeAction::kDoubleBoth);
  EXPECT_EQ(resizer.phase(), ResizerPhase::kBalance);
}

TEST(ElasticResizerTest, SteadyRegrowRequiresConsecutiveViolations) {
  CotCache cache(2, 4);
  ResizerConfig config = FastConfig();
  config.exceed_epochs_to_regrow = 2;
  ElasticResizer resizer(&cache, config);
  resizer.EndEpoch(1.0);  // steady
  ASSERT_EQ(resizer.phase(), ResizerPhase::kSteady);
  // One spike: no action (hysteresis).
  EXPECT_EQ(resizer.EndEpoch(9.0).action, ResizeAction::kNone);
  EXPECT_EQ(resizer.phase(), ResizerPhase::kSteady);
  // A calm epoch resets the counter.
  resizer.EndEpoch(1.0);
  EXPECT_EQ(resizer.EndEpoch(9.0).action, ResizeAction::kNone);
  // Two in a row: act.
  EXPECT_EQ(resizer.EndEpoch(9.0).action, ResizeAction::kDoubleBoth);
  EXPECT_EQ(resizer.phase(), ResizerPhase::kBalance);
}

TEST(ElasticResizerTest, MaxCapacityCapsDoubling) {
  CotCache cache(4, 8);
  ResizerConfig config = FastConfig();
  config.max_cache_capacity = 8;
  ElasticResizer resizer(&cache, config);
  EXPECT_EQ(resizer.EndEpoch(9.0).action, ResizeAction::kDoubleBoth);
  EXPECT_EQ(cache.capacity(), 8u);
  EXPECT_EQ(resizer.EndEpoch(9.0).action, ResizeAction::kAtLimit);
  EXPECT_EQ(cache.capacity(), 8u);
}

TEST(ElasticResizerTest, RatioDiscoveryDoublesTrackerWhileHitRateGrows) {
  CotCache cache(2, 4);
  ResizerConfig config;
  config.warmup_epochs = 0;
  config.initial_epoch_size = 16;
  config.enable_ratio_discovery = true;
  config.imbalance_smoothing = 1.0;
  ElasticResizer resizer(&cache, config);
  ASSERT_EQ(resizer.phase(), ResizerPhase::kRatioDiscovery);
  // Epoch 1 sets the baseline and doubles the tracker to probe.
  Hammer(cache, 1, 10);
  EpochReport r1 = resizer.EndEpoch(1.0);
  EXPECT_EQ(r1.action, ResizeAction::kDoubleTracker);
  EXPECT_EQ(cache.tracker_capacity(), 8u);
  EXPECT_EQ(cache.capacity(), 2u);  // cache never moves in phase 1
  // Epoch 2: hit-rate jumped (gain significant) -> keep doubling.
  Hammer(cache, 1, 99);
  cache.Get(2);
  EpochReport r2 = resizer.EndEpoch(1.0);
  EXPECT_EQ(r2.action, ResizeAction::kDoubleTracker);
  EXPECT_EQ(cache.tracker_capacity(), 16u);
  // Epoch 3: same hit-rate -> no gain -> shrink back and move to balance.
  Hammer(cache, 1, 99);
  cache.Get(2);
  EpochReport r3 = resizer.EndEpoch(1.0);
  EXPECT_EQ(r3.action, ResizeAction::kShrinkTrackerBack);
  EXPECT_EQ(cache.tracker_capacity(), 8u);
  EXPECT_EQ(resizer.phase(), ResizerPhase::kBalance);
}

TEST(ElasticResizerTest, HistoryRecordsEveryEpoch) {
  CotCache cache(2, 4);
  ElasticResizer resizer(&cache, FastConfig());
  for (int i = 0; i < 5; ++i) resizer.EndEpoch(1.0 + i);
  EXPECT_EQ(resizer.history().size(), 5u);
  EXPECT_EQ(resizer.epochs_completed(), 5u);
  EXPECT_DOUBLE_EQ(resizer.history()[3].current_imbalance, 4.0);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(resizer.history()[i].epoch, i);
  }
}

TEST(ElasticResizerTest, DeadShardsAreMaskedOutOfImbalance) {
  CotCache cache(2, 4);
  ElasticResizer resizer(&cache, FastConfig());
  // Shard 3 failed this epoch: its zero lookups would read as a 500x
  // imbalance if taken literally. Masked, the remaining shards are even.
  std::vector<uint64_t> loads = {500, 510, 505, 0};
  std::vector<uint8_t> unavailable = {0, 0, 0, 1};
  EpochReport report = resizer.EndEpoch(loads, &unavailable);
  EXPECT_NE(report.action, ResizeAction::kNoSignal);
  EXPECT_LT(report.smoothed_imbalance, 1.1);
  // Unmasked, the same vector demands growth.
  CotCache cache2(2, 4);
  ElasticResizer resizer2(&cache2, FastConfig());
  EpochReport raw = resizer2.EndEpoch(loads);
  EXPECT_GT(raw.smoothed_imbalance, 100.0);
}

TEST(ElasticResizerTest, NoSignalEpochHoldsAllState) {
  CotCache cache(2, 4);
  ElasticResizer resizer(&cache, FastConfig());
  size_t capacity = cache.capacity();
  size_t tracker = cache.tracker_capacity();

  // Zero available lookups (all traffic failed over to storage).
  EpochReport zeros = resizer.EndEpoch(std::vector<uint64_t>{0, 0, 0, 0});
  EXPECT_EQ(zeros.action, ResizeAction::kNoSignal);

  // Fewer than two available shards: a ratio needs two measurements.
  std::vector<uint64_t> loads = {800, 900, 1000};
  std::vector<uint8_t> two_down = {1, 1, 0};
  EpochReport starved = resizer.EndEpoch(loads, &two_down);
  EXPECT_EQ(starved.action, ResizeAction::kNoSignal);

  EXPECT_EQ(cache.capacity(), capacity);
  EXPECT_EQ(cache.tracker_capacity(), tracker);
  // The trace still records the skipped epochs.
  EXPECT_EQ(resizer.epochs_completed(), 2u);
  ASSERT_EQ(resizer.history().size(), 2u);
  // Neither epoch fabricated an imbalance measurement.
  EXPECT_DOUBLE_EQ(resizer.history()[0].smoothed_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(resizer.history()[1].smoothed_imbalance, 1.0);
}

TEST(ElasticResizerTest, EwmaIsFrozenForMaskedShards) {
  CotCache cache(2, 4);
  ResizerConfig config = FastConfig();
  config.imbalance_smoothing = 0.5;
  ElasticResizer resizer(&cache, config);
  // Epoch 1: all healthy and even.
  resizer.EndEpoch(std::vector<uint64_t>{1000, 1000});
  // Epoch 2: shard 1 dies; its zero must not drag its EWMA load down.
  std::vector<uint64_t> loads = {1000, 0};
  std::vector<uint8_t> down = {0, 1};
  resizer.EndEpoch(loads, &down);
  // Epoch 3: shard 1 recovers with even load — a dragged-down EWMA would
  // report imbalance here; frozen state reports balance.
  EpochReport recovered =
      resizer.EndEpoch(std::vector<uint64_t>{1000, 1000});
  EXPECT_LT(recovered.smoothed_imbalance, 1.1);
}

TEST(ElasticResizerTest, ToStringCoversAllEnumerators) {
  for (ResizerPhase p :
       {ResizerPhase::kRatioDiscovery, ResizerPhase::kBalance,
        ResizerPhase::kSteady, ResizerPhase::kShrink}) {
    EXPECT_NE(ToString(p), "unknown");
  }
  for (ResizeAction a :
       {ResizeAction::kNone, ResizeAction::kNoSignal, ResizeAction::kWarmup,
        ResizeAction::kDoubleTracker, ResizeAction::kShrinkTrackerBack,
        ResizeAction::kDoubleBoth, ResizeAction::kHalveBoth,
        ResizeAction::kResetTrackerRatio, ResizeAction::kDecay,
        ResizeAction::kTargetAchieved, ResizeAction::kAtLimit}) {
    EXPECT_NE(ToString(a), "unknown");
  }
}

}  // namespace
}  // namespace cot::core
