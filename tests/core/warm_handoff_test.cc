// Warm-handoff tests: exporting a CoT instance's tracker+cache state and
// importing it into a replacement instance (the cloud-migration
// flexibility the paper motivates in Section 4).

#include <gtest/gtest.h>

#include "core/cot_cache.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::core {
namespace {

void Warm(CotCache& cache, uint64_t keys, double skew, int ops,
          uint64_t seed) {
  workload::ZipfianGenerator gen(keys, skew);
  Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    CotCache::Key k = gen.Next(rng);
    if (!cache.Get(k).has_value()) cache.Put(k, k);
  }
}

TEST(WarmHandoffTest, ExportIsHottestFirstAndMarksCachedKeys) {
  CotCache cache(4, 16);
  Warm(cache, 1000, 1.2, 5000, 1);
  auto state = cache.ExportState();
  ASSERT_EQ(state.size(), cache.tracker_size());
  double prev = std::numeric_limits<double>::infinity();
  size_t cached = 0;
  for (const auto& entry : state) {
    double h = entry.counters.read_count - entry.counters.update_count;
    EXPECT_LE(h, prev);
    prev = h;
    if (entry.value.has_value()) {
      ++cached;
      EXPECT_TRUE(cache.Contains(entry.key));
    }
  }
  EXPECT_EQ(cached, cache.size());
}

TEST(WarmHandoffTest, ImportReproducesTrackerAndCache) {
  CotCache original(8, 64);
  Warm(original, 10000, 1.2, 20000, 2);

  CotCache replacement(8, 64);
  replacement.ImportState(original.ExportState());

  EXPECT_EQ(replacement.size(), original.size());
  EXPECT_EQ(replacement.tracker_size(), original.tracker_size());
  original.tracker().ForEach([&](const uint64_t& key, double hotness) {
    auto h = replacement.tracker().HotnessOf(key);
    ASSERT_TRUE(h.has_value()) << "key " << key << " lost in handoff";
    EXPECT_DOUBLE_EQ(*h, hotness);
  });
  for (const auto& entry : original.ExportState()) {
    if (entry.value.has_value()) {
      EXPECT_TRUE(replacement.Contains(entry.key));
    }
  }
  EXPECT_TRUE(replacement.CheckInvariants());
}

TEST(WarmHandoffTest, ImportIntoSmallerInstanceKeepsHottest) {
  CotCache original(8, 64);
  Warm(original, 10000, 1.2, 20000, 3);
  auto state = original.ExportState();

  CotCache smaller(2, 8);
  smaller.ImportState(state);
  EXPECT_LE(smaller.size(), 2u);
  EXPECT_EQ(smaller.tracker_size(), 8u);
  // The hottest exported keys survive.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(smaller.tracker().Contains(state[i].key));
  }
  EXPECT_TRUE(smaller.CheckInvariants());
}

TEST(WarmHandoffTest, ImportClearsPreviousContent) {
  CotCache a(4, 16);
  Warm(a, 1000, 1.2, 5000, 4);
  CotCache b(4, 16);
  Warm(b, 1000, 1.2, 5000, 999);  // different stream
  b.ImportState(a.ExportState());
  // b now mirrors a, not its old self.
  EXPECT_EQ(b.tracker_size(), a.tracker_size());
  a.tracker().ForEach([&](const uint64_t& key, double hotness) {
    EXPECT_TRUE(b.tracker().Contains(key));
    (void)hotness;
  });
}

TEST(WarmHandoffTest, WarmImportSkipsColdStart) {
  // The payoff: a warm-started instance hits immediately.
  CotCache original(64, 512);
  Warm(original, 100000, 1.2, 200000, 5);

  CotCache cold(64, 512);
  CotCache warm(64, 512);
  warm.ImportState(original.ExportState());

  workload::ZipfianGenerator gen(100000, 1.2);
  Rng rng(6);
  int cold_hits = 0, warm_hits = 0;
  for (int i = 0; i < 2000; ++i) {
    CotCache::Key k = gen.Next(rng);
    if (cold.Get(k).has_value()) {
      ++cold_hits;
    } else {
      cold.Put(k, k);
    }
    if (warm.Get(k).has_value()) {
      ++warm_hits;
    } else {
      warm.Put(k, k);
    }
  }
  EXPECT_GT(warm_hits, cold_hits);
}

TEST(WarmHandoffTest, SeedOverwritesAndEvicts) {
  SpaceSavingTracker tracker(2);
  KeyCounters hot;
  hot.read_count = 100;
  tracker.Seed(1, hot);
  KeyCounters warm;
  warm.read_count = 50;
  tracker.Seed(2, warm);
  KeyCounters hotter;
  hotter.read_count = 200;
  tracker.Seed(3, hotter);  // evicts the min (key 2)
  EXPECT_TRUE(tracker.Contains(1));
  EXPECT_FALSE(tracker.Contains(2));
  EXPECT_TRUE(tracker.Contains(3));
  // Overwrite path.
  KeyCounters updated;
  updated.read_count = 1;
  tracker.Seed(1, updated);
  EXPECT_DOUBLE_EQ(*tracker.HotnessOf(1), 1.0);
  EXPECT_TRUE(tracker.CheckInvariants());
}

}  // namespace
}  // namespace cot::core
