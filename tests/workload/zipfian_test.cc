#include "workload/zipfian_generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "util/random.h"

namespace cot::workload {
namespace {

TEST(ZipfianZetaTest, KnownValues) {
  EXPECT_DOUBLE_EQ(ZipfianGenerator::Zeta(1, 0.99), 1.0);
  EXPECT_NEAR(ZipfianGenerator::Zeta(2, 0.5), 1.0 + 1.0 / std::sqrt(2.0),
              1e-12);
  // zeta(3, 2) = 1 + 1/4 + 1/9.
  EXPECT_NEAR(ZipfianGenerator::Zeta(3, 2.0), 1.0 + 0.25 + 1.0 / 9.0, 1e-12);
}

TEST(ZipfianZetaTest, MatchesYcsbScrambledConstant) {
  // The YCSB constant 26.469... is zeta(10^10, 0.99); checking a smaller
  // prefix is feasible: zeta is increasing in n.
  double z6 = ZipfianGenerator::Zeta(1000000, 0.99);
  EXPECT_GT(z6, 14.5);
  EXPECT_LT(z6, 16.0);
}

TEST(ZipfianGeneratorTest, StaysInRange) {
  ZipfianGenerator gen(1000, 0.99);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(gen.Next(rng), 1000u);
  }
}

TEST(ZipfianGeneratorTest, DeterministicGivenSeed) {
  ZipfianGenerator g1(1000, 0.99), g2(1000, 0.99);
  Rng r1(7), r2(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(g1.Next(r1), g2.Next(r2));
  }
}

TEST(ZipfianGeneratorTest, KeyZeroIsHottest) {
  ZipfianGenerator gen(10000, 0.99);
  Rng rng(3);
  std::map<Key, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[gen.Next(rng)];
  int max_count = 0;
  Key max_key = 0;
  for (const auto& [k, c] : counts) {
    if (c > max_count) {
      max_count = c;
      max_key = k;
    }
  }
  EXPECT_EQ(max_key, 0u);
}

TEST(ZipfianGeneratorTest, TopKeyFrequencyMatchesTheory) {
  constexpr uint64_t kN = 10000;
  constexpr double kS = 0.99;
  ZipfianGenerator gen(kN, kS);
  Rng rng(11);
  constexpr int kSamples = 500000;
  int zero_count = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (gen.Next(rng) == 0) ++zero_count;
  }
  double measured = static_cast<double>(zero_count) / kSamples;
  double theory = gen.ProbabilityOfRank(0);
  EXPECT_NEAR(measured, theory, theory * 0.05);
}

TEST(ZipfianGeneratorTest, EmpiricalCdfTracksTopCMass) {
  constexpr uint64_t kN = 100000;
  ZipfianGenerator gen(kN, 1.2);
  Rng rng(13);
  constexpr int kSamples = 300000;
  int in_top64 = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (gen.Next(rng) < 64) ++in_top64;
  }
  double measured = static_cast<double>(in_top64) / kSamples;
  double theory = gen.TopCMass(64);
  EXPECT_NEAR(measured, theory, 0.02);
}

TEST(ZipfianGeneratorTest, TopCMassProperties) {
  ZipfianGenerator gen(1000, 0.9);
  EXPECT_DOUBLE_EQ(gen.TopCMass(1000), 1.0);
  EXPECT_DOUBLE_EQ(gen.TopCMass(5000), 1.0);  // clamped
  double prev = 0.0;
  for (uint64_t c : {1ULL, 2ULL, 4ULL, 64ULL, 512ULL}) {
    double mass = gen.TopCMass(c);
    EXPECT_GT(mass, prev);
    EXPECT_LE(mass, 1.0);
    prev = mass;
  }
  EXPECT_NEAR(gen.TopCMass(1), gen.ProbabilityOfRank(0), 1e-12);
}

TEST(ZipfianGeneratorTest, HigherSkewConcentratesMoreMass) {
  ZipfianGenerator mild(100000, 0.9);
  ZipfianGenerator heavy(100000, 1.5);
  EXPECT_LT(mild.TopCMass(64), heavy.TopCMass(64));
}

TEST(ZipfianGeneratorTest, ProbabilityOfRankSumsToOne) {
  ZipfianGenerator gen(500, 0.99);
  double sum = 0.0;
  for (uint64_t r = 0; r < 500; ++r) sum += gen.ProbabilityOfRank(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(gen.ProbabilityOfRank(500), 0.0);
}

TEST(ZipfianGeneratorTest, SingleItemAlwaysZero) {
  ZipfianGenerator gen(1, 0.99);
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.Next(rng), 0u);
}

TEST(ZipfianGeneratorTest, NameIncludesSkew) {
  ZipfianGenerator gen(10, 1.2);
  EXPECT_EQ(gen.name(), "zipfian(1.20)");
  EXPECT_DOUBLE_EQ(gen.skew(), 1.2);
  EXPECT_EQ(gen.item_count(), 10u);
}

TEST(PermutedGeneratorTest, PermutationIsBijective) {
  constexpr uint64_t kN = 1000;
  auto inner = std::make_unique<ZipfianGenerator>(kN, 0.99);
  PermutedGenerator gen(std::move(inner), /*seed=*/77);
  std::set<Key> images;
  for (Key k = 0; k < kN; ++k) {
    Key img = gen.Permute(k);
    EXPECT_LT(img, kN);
    images.insert(img);
  }
  EXPECT_EQ(images.size(), kN);  // injective on the full domain
}

TEST(PermutedGeneratorTest, PermutationActuallyScrambles) {
  auto inner = std::make_unique<ZipfianGenerator>(4096, 0.99);
  PermutedGenerator gen(std::move(inner), 123);
  int fixed_points = 0;
  for (Key k = 0; k < 4096; ++k) {
    if (gen.Permute(k) == k) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 16);  // a random permutation expects ~1
}

TEST(PermutedGeneratorTest, PreservesTopKeyMassExactly) {
  // Unlike YCSB's hash-mod scrambling, the Feistel permutation is
  // collision-free: the hottest key's mass is unchanged, only its id moves.
  constexpr uint64_t kN = 10000;
  ZipfianGenerator reference(kN, 0.99);
  auto inner = std::make_unique<ZipfianGenerator>(kN, 0.99);
  PermutedGenerator gen(std::move(inner), 99);
  Key hot_image = gen.Permute(0);

  Rng rng(19);
  constexpr int kSamples = 400000;
  int hot_count = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (gen.Next(rng) == hot_image) ++hot_count;
  }
  double measured = static_cast<double>(hot_count) / kSamples;
  double theory = reference.ProbabilityOfRank(0);
  EXPECT_NEAR(measured, theory, theory * 0.05);
}

TEST(PermutedGeneratorTest, DifferentSeedsDifferentPermutations) {
  auto i1 = std::make_unique<ZipfianGenerator>(1000, 0.99);
  auto i2 = std::make_unique<ZipfianGenerator>(1000, 0.99);
  PermutedGenerator g1(std::move(i1), 1);
  PermutedGenerator g2(std::move(i2), 2);
  int same = 0;
  for (Key k = 0; k < 1000; ++k) {
    if (g1.Permute(k) == g2.Permute(k)) ++same;
  }
  EXPECT_LT(same, 20);
}

// Parameterized sweep over the paper's skew values: the sampled
// distribution's top-64 mass must track the analytic CDF.
class ZipfianSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfianSkewSweep, SampledTop64MassMatchesCdf) {
  double skew = GetParam();
  constexpr uint64_t kN = 100000;
  ZipfianGenerator gen(kN, skew);
  Rng rng(29);
  constexpr int kSamples = 200000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (gen.Next(rng) < 64) ++hits;
  }
  double measured = static_cast<double>(hits) / kSamples;
  EXPECT_NEAR(measured, gen.TopCMass(64), 0.02) << "skew=" << skew;
}

INSTANTIATE_TEST_SUITE_P(PaperSkews, ZipfianSkewSweep,
                         ::testing::Values(0.5, 0.9, 0.99, 1.2, 1.5));

}  // namespace
}  // namespace cot::workload
