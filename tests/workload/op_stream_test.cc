#include "workload/op_stream.h"

#include <gtest/gtest.h>

namespace cot::workload {
namespace {

PhaseSpec ZipfPhase(uint64_t ops, double skew = 0.99) {
  PhaseSpec spec;
  spec.distribution = Distribution::kZipfian;
  spec.skew = skew;
  spec.num_ops = ops;
  return spec;
}

TEST(MakeGeneratorTest, AllDistributionsConstruct) {
  for (Distribution d :
       {Distribution::kUniform, Distribution::kZipfian,
        Distribution::kScrambledZipfian, Distribution::kPermutedZipfian,
        Distribution::kHotspot, Distribution::kGaussian,
        Distribution::kSequential, Distribution::kLatest}) {
    PhaseSpec spec;
    spec.distribution = d;
    auto gen = MakeGenerator(spec, 1000);
    ASSERT_TRUE(gen.ok()) << static_cast<int>(d);
    EXPECT_EQ((*gen)->item_count(), 1000u);
  }
}

TEST(MakeGeneratorTest, RejectsBadParameters) {
  PhaseSpec spec;
  EXPECT_FALSE(MakeGenerator(spec, 0).ok());

  spec.distribution = Distribution::kZipfian;
  spec.skew = 1.0;
  EXPECT_FALSE(MakeGenerator(spec, 10).ok());
  spec.skew = -0.5;
  EXPECT_FALSE(MakeGenerator(spec, 10).ok());

  spec = PhaseSpec{};
  spec.read_fraction = 1.5;
  EXPECT_FALSE(MakeGenerator(spec, 10).ok());

  spec = PhaseSpec{};
  spec.distribution = Distribution::kHotspot;
  spec.hot_set_fraction = 0.0;
  EXPECT_FALSE(MakeGenerator(spec, 10).ok());

  spec = PhaseSpec{};
  spec.distribution = Distribution::kGaussian;
  spec.gaussian_stddev_fraction = 0.0;
  EXPECT_FALSE(MakeGenerator(spec, 10).ok());
}

TEST(OpStreamTest, EmitsExactlyBudgetedOps) {
  auto stream = OpStream::Create(100, {ZipfPhase(500)}, 1);
  ASSERT_TRUE(stream.ok());
  uint64_t n = 0;
  while (!stream->Done()) {
    Op op = stream->Next();
    EXPECT_LT(op.key, 100u);
    ++n;
  }
  EXPECT_EQ(n, 500u);
  EXPECT_EQ(stream->ops_emitted(), 500u);
}

TEST(OpStreamTest, ReadWriteMixApproximatesSpec) {
  PhaseSpec spec = ZipfPhase(100000);
  spec.read_fraction = 0.998;  // Tao's mix
  auto stream = OpStream::Create(1000, {spec}, 2);
  ASSERT_TRUE(stream.ok());
  uint64_t updates = 0;
  while (!stream->Done()) {
    if (stream->Next().type == OpType::kUpdate) ++updates;
  }
  EXPECT_NEAR(static_cast<double>(updates) / 100000.0, 0.002, 0.001);
}

TEST(OpStreamTest, AllReadsWhenFractionIsOne) {
  PhaseSpec spec = ZipfPhase(1000);
  spec.read_fraction = 1.0;
  auto stream = OpStream::Create(100, {spec}, 3);
  ASSERT_TRUE(stream.ok());
  while (!stream->Done()) {
    EXPECT_EQ(stream->Next().type, OpType::kRead);
  }
}

TEST(OpStreamTest, PhasesRunInOrder) {
  PhaseSpec uniform;
  uniform.distribution = Distribution::kUniform;
  uniform.num_ops = 100;
  auto stream = OpStream::Create(50, {ZipfPhase(100), uniform}, 4);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->current_phase(), 0u);
  for (int i = 0; i < 100; ++i) stream->Next();
  // Next op comes from phase 1.
  stream->Next();
  EXPECT_EQ(stream->current_phase(), 1u);
  EXPECT_EQ(stream->current_name(), "uniform");
  for (int i = 0; i < 99; ++i) stream->Next();
  EXPECT_TRUE(stream->Done());
}

TEST(OpStreamTest, UnboundedFinalPhaseNeverDone) {
  PhaseSpec tail;
  tail.distribution = Distribution::kUniform;
  tail.num_ops = 0;  // unbounded
  auto stream = OpStream::Create(10, {ZipfPhase(10), tail}, 5);
  ASSERT_TRUE(stream.ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_FALSE(stream->Done());
    stream->Next();
  }
}

TEST(OpStreamTest, UnboundedNonFinalPhaseRejected) {
  PhaseSpec unbounded;
  unbounded.num_ops = 0;
  auto stream = OpStream::Create(10, {unbounded, ZipfPhase(10)}, 6);
  EXPECT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

TEST(OpStreamTest, NoPhasesRejected) {
  auto stream = OpStream::Create(10, {}, 7);
  EXPECT_FALSE(stream.ok());
}

TEST(OpStreamTest, DeterministicAcrossRuns) {
  auto s1 = OpStream::Create(1000, {ZipfPhase(200)}, 42);
  auto s2 = OpStream::Create(1000, {ZipfPhase(200)}, 42);
  ASSERT_TRUE(s1.ok() && s2.ok());
  while (!s1->Done()) {
    Op a = s1->Next();
    Op b = s2->Next();
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.type, b.type);
  }
}

TEST(OpStreamTest, PeekDoesNotConsumeOrPerturbTheStream) {
  // A peek-heavy walk must see exactly the stream a plain walk sees: Peek
  // draws the op once and Next hands back the same draw, so interleaving
  // peeks (even repeated ones) cannot shift the sequence.
  PhaseSpec spec = ZipfPhase(500);
  spec.read_fraction = 0.9;  // mixed types, so Peek's type matters
  auto plain = OpStream::Create(200, {spec}, 42);
  auto peeky = OpStream::Create(200, {spec}, 42);
  ASSERT_TRUE(plain.ok() && peeky.ok());
  uint64_t n = 0;
  while (!plain->Done()) {
    const Op& peeked = peeky->Peek();
    const Op& again = peeky->Peek();  // repeated peeks are idempotent
    EXPECT_EQ(peeked.key, again.key);
    EXPECT_EQ(peeked.type, again.type);
    Op expected = plain->Next();
    Op consumed = peeky->Next();
    EXPECT_EQ(consumed.key, expected.key);
    EXPECT_EQ(consumed.type, expected.type);
    EXPECT_EQ(peeked.key, expected.key);
    EXPECT_EQ(peeked.type, expected.type);
    ++n;
  }
  EXPECT_TRUE(peeky->Done());
  EXPECT_EQ(n, 500u);
  EXPECT_EQ(peeky->ops_emitted(), 500u);
}

TEST(OpStreamTest, PeekedFinalOpKeepsStreamNotDone) {
  // The batching driver's termination logic: a peeked-but-unconsumed op is
  // still owed, so Done() must stay false until Next() takes it.
  auto stream = OpStream::Create(100, {ZipfPhase(3)}, 9);
  ASSERT_TRUE(stream.ok());
  stream->Next();
  stream->Next();
  stream->Peek();  // draws the last budgeted op
  EXPECT_FALSE(stream->Done());
  stream->Next();
  EXPECT_TRUE(stream->Done());
}

TEST(OpStreamTest, DifferentSeedsDiffer) {
  auto s1 = OpStream::Create(1000, {ZipfPhase(200)}, 1);
  auto s2 = OpStream::Create(1000, {ZipfPhase(200)}, 2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  int same = 0;
  for (int i = 0; i < 200; ++i) {
    if (s1->Next().key == s2->Next().key) ++same;
  }
  EXPECT_LT(same, 150);  // zipf repeats hot keys, but streams must differ
}

}  // namespace
}  // namespace cot::workload
