#include "workload/scrambled_zipfian_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::workload {
namespace {

TEST(FnvHash64Test, DeterministicAndNonNegative) {
  for (uint64_t v : {0ULL, 1ULL, 42ULL, 1234567890123ULL}) {
    uint64_t h1 = ScrambledZipfianGenerator::FnvHash64(v);
    uint64_t h2 = ScrambledZipfianGenerator::FnvHash64(v);
    EXPECT_EQ(h1, h2);
    // Java Math.abs result: representable as non-negative int64.
    EXPECT_EQ(static_cast<uint64_t>(std::abs(static_cast<int64_t>(h1))), h1);
  }
}

TEST(FnvHash64Test, SpreadsSmallInputs) {
  std::map<uint64_t, int> buckets;
  for (uint64_t v = 0; v < 10000; ++v) {
    ++buckets[ScrambledZipfianGenerator::FnvHash64(v) % 10];
  }
  for (const auto& [b, c] : buckets) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(ScrambledZipfianTest, StaysInRange) {
  ScrambledZipfianGenerator gen(5000);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(gen.Next(rng), 5000u);
  }
}

TEST(ScrambledZipfianTest, NameReportsRequestedSkew) {
  ScrambledZipfianGenerator gen(100, 1.2);
  EXPECT_EQ(gen.name(), "scrambled_zipfian(requested=1.20)");
}

// --- The YCSB bug the paper reports (Section 1, contribution 5) ---------

TEST(ScrambledZipfianBugTest, HottestKeyMassFarBelowTrueZipfian) {
  // A true Zipfian(0.99) over 10K keys gives its hottest key mass
  // 1/zeta(10^4, 0.99) ~ 10.2%. YCSB's scrambled variant folds a
  // 10-billion-key distribution into the space, capping the hottest key
  // near 1/zeta(10^10, 0.99) ~ 3.8%.
  constexpr uint64_t kN = 10000;
  constexpr int kSamples = 400000;

  ZipfianGenerator truth(kN, 0.99);
  double true_top_mass = truth.ProbabilityOfRank(0);

  ScrambledZipfianGenerator scrambled(kN, 0.99);
  Rng rng(7);
  std::map<Key, int> counts;
  for (int i = 0; i < kSamples; ++i) ++counts[scrambled.Next(rng)];
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  double measured_top_mass = static_cast<double>(max_count) / kSamples;

  EXPECT_LT(measured_top_mass, 0.6 * true_top_mass);
  // And it is close to the 10^10-universe hottest-key mass.
  EXPECT_NEAR(measured_top_mass, 1.0 / ScrambledZipfianGenerator::kZetan,
              0.01);
}

TEST(ScrambledZipfianBugTest, RequestedSkewIsIgnored) {
  // Exactly as in YCSB: asking for skew 1.4 changes nothing — the inner
  // distribution is pinned to (10^10, 0.99, precomputed zeta).
  constexpr uint64_t kN = 10000;
  constexpr int kSamples = 200000;
  auto max_mass = [&](double requested_skew, uint64_t seed) {
    ScrambledZipfianGenerator gen(kN, requested_skew);
    Rng rng(seed);
    std::map<Key, int> counts;
    for (int i = 0; i < kSamples; ++i) ++counts[gen.Next(rng)];
    int max_count = 0;
    for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
    return static_cast<double>(max_count) / kSamples;
  };
  double at_099 = max_mass(0.99, 5);
  double at_140 = max_mass(1.40, 5);  // same seed -> identical stream
  EXPECT_DOUBLE_EQ(at_099, at_140);
}

TEST(ScrambledZipfianBugTest, Top64MassWellBelowTrueZipfianCdf) {
  // The aggregate effect that broke the paper's first experiments: the
  // whole hot set carries much less mass than the configured skew implies.
  constexpr uint64_t kN = 10000;
  constexpr int kSamples = 300000;

  ZipfianGenerator truth(kN, 0.99);
  ScrambledZipfianGenerator scrambled(kN, 0.99);
  Rng rng(9);
  std::map<Key, int> counts;
  for (int i = 0; i < kSamples; ++i) ++counts[scrambled.Next(rng)];
  std::vector<int> sorted;
  sorted.reserve(counts.size());
  for (const auto& [k, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  double top64 = 0;
  for (size_t i = 0; i < 64 && i < sorted.size(); ++i) top64 += sorted[i];
  double measured = top64 / kSamples;
  EXPECT_LT(measured, 0.75 * truth.TopCMass(64));
}

TEST(ScrambledZipfianBugTest, CorrectedGeneratorDoesNotLoseSkew) {
  // The fix shipped in this library: a Zipfian over exactly kN keys with a
  // bijective Feistel scramble. Its top-1 mass matches the true CDF.
  constexpr uint64_t kN = 10000;
  constexpr int kSamples = 300000;
  ZipfianGenerator truth(kN, 0.99);
  auto inner = std::make_unique<ZipfianGenerator>(kN, 0.99);
  PermutedGenerator fixed(std::move(inner), 42);
  Rng rng(13);
  std::map<Key, int> counts;
  for (int i = 0; i < kSamples; ++i) ++counts[fixed.Next(rng)];
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  double measured = static_cast<double>(max_count) / kSamples;
  EXPECT_NEAR(measured, truth.ProbabilityOfRank(0),
              truth.ProbabilityOfRank(0) * 0.10);
}

}  // namespace
}  // namespace cot::workload
