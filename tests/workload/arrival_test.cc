#include "workload/arrival.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace cot::workload {
namespace {

TEST(ArrivalProcess, ParsesKnownNamesAndRejectsOthers) {
  auto p = ParseArrivalProcess("poisson");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, ArrivalProcess::kPoisson);
  auto u = ParseArrivalProcess("uniform");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(*u, ArrivalProcess::kUniform);
  EXPECT_FALSE(ParseArrivalProcess("bursty").ok());
  EXPECT_EQ(ArrivalProcessName(ArrivalProcess::kPoisson), "poisson");
  EXPECT_EQ(ArrivalProcessName(ArrivalProcess::kUniform), "uniform");
}

TEST(ArrivalGenerator, TimestampsAreMonotone) {
  ArrivalGenerator gen(ArrivalProcess::kPoisson, 50000.0, 7);
  uint64_t prev = 0;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t t = gen.Next();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(ArrivalGenerator, UniformHitsTheExactRate) {
  // 10k/s -> 100 us gaps; arrival n lands at (n+1)*100 us.
  ArrivalGenerator gen(ArrivalProcess::kUniform, 10000.0, 1);
  for (uint64_t n = 1; n <= 1000; ++n) {
    EXPECT_EQ(gen.Next(), n * 100);
  }
}

TEST(ArrivalGenerator, PoissonConvergesToTheTargetRate) {
  const double rate = 20000.0;
  const int n = 200000;
  ArrivalGenerator gen(ArrivalProcess::kPoisson, rate, 42);
  uint64_t last = 0;
  for (int i = 0; i < n; ++i) last = gen.Next();
  const double achieved = static_cast<double>(n) /
                          (static_cast<double>(last) / 1e6);
  // 200k exponential draws: the sample mean is within ~1% whp.
  EXPECT_NEAR(achieved / rate, 1.0, 0.02);
}

TEST(ArrivalGenerator, SameSeedSameSchedule) {
  ArrivalGenerator a(ArrivalProcess::kPoisson, 5000.0, 99);
  ArrivalGenerator b(ArrivalProcess::kPoisson, 5000.0, 99);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ArrivalGenerator, DifferentSeedsDiverge) {
  ArrivalGenerator a(ArrivalProcess::kPoisson, 5000.0, 1);
  ArrivalGenerator b(ArrivalProcess::kPoisson, 5000.0, 2);
  int diffs = 0;
  for (int i = 0; i < 1000; ++i) diffs += a.Next() != b.Next() ? 1 : 0;
  EXPECT_GT(diffs, 900);
}

TEST(ArrivalGenerator, PoissonIsBurstierThanUniform) {
  // Coefficient of variation of exponential gaps is ~1; uniform is 0.
  ArrivalGenerator gen(ArrivalProcess::kPoisson, 10000.0, 3);
  std::vector<double> gaps;
  uint64_t prev = 0;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t t = gen.Next();
    gaps.push_back(static_cast<double>(t - prev));
    prev = t;
  }
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  const double cv = std::sqrt(var) / mean;
  EXPECT_GT(cv, 0.9);
  EXPECT_LT(cv, 1.1);
}

}  // namespace
}  // namespace cot::workload
