#include "workload/binary_trace.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "workload/types.h"

namespace cot::workload {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(BinaryTrace, RoundTripsOpsAndHeader) {
  const std::string path = TestPath("bt_roundtrip.bin");
  const std::vector<Op> ops = {
      {0, OpType::kRead},      {17, OpType::kUpdate}, {5, OpType::kRead},
      {99999, OpType::kRead},  {42, OpType::kUpdate},
  };
  BinaryTraceWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (Op op : ops) ASSERT_TRUE(writer.Append(op).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.count(), ops.size());

  auto view = BinaryTraceView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->size(), ops.size());
  EXPECT_EQ(view->key_space(), 100000u);  // max key + 1
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ((*view)[i].key, ops[i].key) << "op " << i;
    EXPECT_EQ((*view)[i].type, ops[i].type) << "op " << i;
  }
  std::remove(path.c_str());
}

TEST(BinaryTrace, EncodeDecodeIsLossless) {
  for (Op op : {Op{0, OpType::kRead}, Op{0, OpType::kUpdate},
                Op{(uint64_t{1} << 62), OpType::kUpdate},
                Op{123456789, OpType::kRead}}) {
    const Op back = DecodeBinaryOp(EncodeBinaryOp(op));
    EXPECT_EQ(back.key, op.key);
    EXPECT_EQ(back.type, op.type);
  }
}

TEST(BinaryTrace, EmptyTraceOpensWithZeroSize) {
  const std::string path = TestPath("bt_empty.bin");
  BinaryTraceWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto view = BinaryTraceView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->size(), 0u);
  EXPECT_TRUE(view->empty());
  std::remove(path.c_str());
}

TEST(BinaryTrace, RejectsMissingFile) {
  auto view = BinaryTraceView::Open(TestPath("bt_does_not_exist.bin"));
  EXPECT_FALSE(view.ok());
}

TEST(BinaryTrace, RejectsBadMagic) {
  const std::string path = TestPath("bt_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTATRACE-PADDING-TO-32-BYTES!!!";
  }
  auto view = BinaryTraceView::Open(path);
  EXPECT_FALSE(view.ok());
  std::remove(path.c_str());
}

TEST(BinaryTrace, RejectsTruncatedBody) {
  const std::string path = TestPath("bt_truncated.bin");
  BinaryTraceWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (uint64_t k = 0; k < 16; ++k) {
    ASSERT_TRUE(writer.Append({k, OpType::kRead}).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  // Chop the last op off; the header still claims 16.
  ASSERT_EQ(truncate(path.c_str(),
                     static_cast<off_t>(BinaryTraceHeader::kSize + 15 * 8)),
            0);
  auto view = BinaryTraceView::Open(path);
  EXPECT_FALSE(view.ok());
  std::remove(path.c_str());
}

TEST(BinaryTrace, ViewIsMovable) {
  const std::string path = TestPath("bt_move.bin");
  BinaryTraceWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append({7, OpType::kUpdate}).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto view = BinaryTraceView::Open(path);
  ASSERT_TRUE(view.ok());
  BinaryTraceView moved = std::move(view).value();
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0].key, 7u);
  EXPECT_EQ(moved[0].type, OpType::kUpdate);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cot::workload
