#include "workload/zipf_estimate.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::workload {
namespace {

std::vector<uint64_t> SampleCounts(uint64_t keys, double skew,
                                   int samples, uint64_t seed) {
  ZipfianGenerator gen(keys, skew);
  Rng rng(seed);
  std::vector<uint64_t> counts(keys, 0);
  for (int i = 0; i < samples; ++i) ++counts[gen.Next(rng)];
  return counts;
}

TEST(EstimateZipfSkewTest, RecoversKnownSkews) {
  for (double s : {0.7, 0.9, 0.99, 1.2}) {
    auto counts = SampleCounts(100000, s, 500000, 42);
    auto estimate = EstimateZipfSkew(counts);
    ASSERT_TRUE(estimate.ok());
    EXPECT_NEAR(*estimate, s, 0.12) << "true s = " << s;
  }
}

TEST(EstimateZipfSkewTest, UniformCountsReadAsNoSkew) {
  std::vector<uint64_t> counts(1000, 50);
  auto estimate = EstimateZipfSkew(counts);
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 0.0);
}

TEST(EstimateZipfSkewTest, SampledUniformReadsAsNearZero) {
  Rng rng(7);
  std::vector<uint64_t> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[rng.NextBelow(1000)];
  auto estimate = EstimateZipfSkew(counts);
  ASSERT_TRUE(estimate.ok());
  EXPECT_LT(*estimate, 0.15);
}

TEST(EstimateZipfSkewTest, ZerosAreIgnored) {
  std::vector<uint64_t> counts = {0, 100, 0, 50, 0, 25, 0};
  auto estimate = EstimateZipfSkew(counts);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(*estimate, 0.5);
}

TEST(EstimateZipfSkewTest, RejectsDegenerateInput) {
  EXPECT_FALSE(EstimateZipfSkew({}).ok());
  EXPECT_FALSE(EstimateZipfSkew({5}).ok());
  EXPECT_FALSE(EstimateZipfSkew({0, 0, 7}).ok());
}

TEST(EstimateRequiredCacheLinesTest, ValidatesArguments) {
  EXPECT_FALSE(EstimateRequiredCacheLines(0, 0.99, 8, 1.1).ok());
  EXPECT_FALSE(EstimateRequiredCacheLines(1000, 0.99, 0, 1.1).ok());
  EXPECT_FALSE(EstimateRequiredCacheLines(1000, 0.99, 8, 0.9).ok());
  EXPECT_FALSE(EstimateRequiredCacheLines(1000, 1.0, 8, 1.1).ok());
}

TEST(EstimateRequiredCacheLinesTest, UniformNeedsNoCache) {
  auto lines = EstimateRequiredCacheLines(1000000, 0.0, 8, 1.1);
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(*lines, 0u);
}

TEST(EstimateRequiredCacheLinesTest, MoreSkewNeedsMoreLines) {
  auto mild = EstimateRequiredCacheLines(100000, 0.9, 8, 1.1);
  auto heavy = EstimateRequiredCacheLines(100000, 1.2, 8, 1.1);
  ASSERT_TRUE(mild.ok() && heavy.ok());
  EXPECT_GT(*heavy, *mild);
  EXPECT_GT(*mild, 0u);
}

TEST(EstimateRequiredCacheLinesTest, LooserTargetNeedsFewerLines) {
  auto tight = EstimateRequiredCacheLines(100000, 1.2, 8, 1.1);
  auto loose = EstimateRequiredCacheLines(100000, 1.2, 8, 1.5);
  ASSERT_TRUE(tight.ok() && loose.ok());
  EXPECT_LT(*loose, *tight);
}

TEST(EstimateRequiredCacheLinesTest, MoreServersNeedMoreLines) {
  // More shards -> the hottest uncached key is a larger multiple of the
  // fair share -> more caching needed (Fan et al.'s O(n log n) intuition).
  auto few = EstimateRequiredCacheLines(100000, 1.2, 4, 1.1);
  auto many = EstimateRequiredCacheLines(100000, 1.2, 32, 1.1);
  ASSERT_TRUE(few.ok() && many.ok());
  EXPECT_GE(*many, *few);
}

TEST(EstimateRequiredCacheLinesTest, MatchesFig3Ballpark) {
  // Figure 3's setting: Zipf 1.5, 1M keys, 8 servers, target 1.5. The
  // paper measures ~64 lines; the analytic lower bound must land within a
  // few doublings below that.
  auto lines = EstimateRequiredCacheLines(1000000, 1.5, 8, 1.5);
  ASSERT_TRUE(lines.ok());
  EXPECT_GE(*lines, 4u);
  EXPECT_LE(*lines, 256u);
}

}  // namespace
}  // namespace cot::workload
