#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/random.h"

namespace cot::workload {
namespace {

TEST(TraceParseTest, ParsesKeysAndOps) {
  auto trace = Trace::Parse("1\n2,r\n3,u\n");
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->size(), 3u);
  EXPECT_EQ(trace->ops()[0].key, 1u);
  EXPECT_EQ(trace->ops()[0].type, OpType::kRead);
  EXPECT_EQ(trace->ops()[1].type, OpType::kRead);
  EXPECT_EQ(trace->ops()[2].key, 3u);
  EXPECT_EQ(trace->ops()[2].type, OpType::kUpdate);
}

TEST(TraceParseTest, SkipsCommentsBlanksAndCrLf) {
  auto trace = Trace::Parse("# header\n\n  5  \r\n# tail\n7,u\r\n");
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->size(), 2u);
  EXPECT_EQ(trace->ops()[0].key, 5u);
  EXPECT_EQ(trace->ops()[1].key, 7u);
}

TEST(TraceParseTest, EmptyTextIsEmptyTrace) {
  auto trace = Trace::Parse("");
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->empty());
  EXPECT_EQ(trace->KeySpaceSize(), 0u);
}

TEST(TraceParseTest, ReportsBadKeyWithLineNumber) {
  auto trace = Trace::Parse("1\nabc\n");
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(trace.status().message().find("line 2"), std::string::npos);
}

TEST(TraceParseTest, ReportsBadOp) {
  auto trace = Trace::Parse("1,x\n");
  ASSERT_FALSE(trace.ok());
  EXPECT_NE(trace.status().message().find("expected r or u"),
            std::string::npos);
}

TEST(TraceParseTest, RoundTripsThroughToText) {
  auto original = Trace::Parse("1\n42,u\n7,r\n");
  ASSERT_TRUE(original.ok());
  auto reparsed = Trace::Parse(original->ToText());
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), original->size());
  for (size_t i = 0; i < original->size(); ++i) {
    EXPECT_EQ(reparsed->ops()[i].key, original->ops()[i].key);
    EXPECT_EQ(reparsed->ops()[i].type, original->ops()[i].type);
  }
}

TEST(TraceLoadTest, LoadsFromFileAndRejectsMissing) {
  std::string path = ::testing::TempDir() + "/cot_trace_test.txt";
  {
    std::ofstream out(path);
    out << "10\n20,u\n";
  }
  auto trace = Trace::Load(path);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->size(), 2u);
  EXPECT_EQ(trace->KeySpaceSize(), 21u);
  std::remove(path.c_str());

  auto missing = Trace::Load(path + ".does-not-exist");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(TraceTest, AppendBuildsTrace) {
  Trace trace;
  trace.Append(Op{3, OpType::kRead});
  trace.Append(Op{9, OpType::kUpdate});
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.KeySpaceSize(), 10u);
}

TEST(TraceKeyGeneratorTest, ReplaysInOrderAndWraps) {
  auto trace = Trace::Parse("1\n2\n3\n");
  ASSERT_TRUE(trace.ok());
  TraceKeyGenerator gen(&*trace);
  Rng rng(1);
  EXPECT_EQ(gen.Next(rng), 1u);
  EXPECT_EQ(gen.Next(rng), 2u);
  EXPECT_EQ(gen.Next(rng), 3u);
  EXPECT_EQ(gen.laps(), 1u);
  EXPECT_EQ(gen.Next(rng), 1u);  // wrapped
  EXPECT_EQ(gen.item_count(), 4u);
  EXPECT_EQ(gen.name(), "trace");
}

}  // namespace
}  // namespace cot::workload
