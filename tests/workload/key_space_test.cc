#include "workload/key_space.h"

#include <gtest/gtest.h>

namespace cot::workload {
namespace {

TEST(KeySpaceTest, FormatsWithDefaultPrefix) {
  KeySpace ks(1000);
  EXPECT_EQ(ks.Format(0), "usertable:0");
  EXPECT_EQ(ks.Format(42), "usertable:42");
  EXPECT_EQ(ks.Format(999), "usertable:999");
  EXPECT_EQ(ks.size(), 1000u);
  EXPECT_EQ(ks.prefix(), "usertable:");
}

TEST(KeySpaceTest, CustomPrefix) {
  KeySpace ks(10, "user:");
  EXPECT_EQ(ks.Format(3), "user:3");
}

TEST(KeySpaceTest, RoundTrips) {
  KeySpace ks(100000);
  for (Key id : {0ULL, 1ULL, 99999ULL, 31337ULL}) {
    auto parsed = ks.Parse(ks.Format(id));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, id);
  }
}

TEST(KeySpaceTest, ParseRejectsWrongPrefix) {
  KeySpace ks(100);
  EXPECT_EQ(ks.Parse("other:5").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ks.Parse("usertable").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ks.Parse("").status().code(), StatusCode::kInvalidArgument);
}

TEST(KeySpaceTest, ParseRejectsNonNumericSuffix) {
  KeySpace ks(100);
  EXPECT_EQ(ks.Parse("usertable:abc").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ks.Parse("usertable:12x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ks.Parse("usertable:").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KeySpaceTest, ParseRejectsOutOfRange) {
  KeySpace ks(100);
  EXPECT_EQ(ks.Parse("usertable:100").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ks.Parse("usertable:18446744073709551616").status().code(),
            StatusCode::kInvalidArgument);  // overflows uint64
}

}  // namespace
}  // namespace cot::workload
