#include "workload/simple_generators.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/random.h"

namespace cot::workload {
namespace {

TEST(UniformGeneratorTest, StaysInRangeAndIsUniform) {
  UniformGenerator gen(100);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    Key k = gen.Next(rng);
    ASSERT_LT(k, 100u);
    ++counts[k];
  }
  double expected = kSamples / 100.0;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.8);
    EXPECT_LT(c, expected * 1.2);
  }
  EXPECT_EQ(gen.name(), "uniform");
}

TEST(HotspotGeneratorTest, HotSetReceivesConfiguredFraction) {
  // 1% of keys get 90% of operations.
  HotspotGenerator gen(10000, 0.01, 0.9);
  EXPECT_EQ(gen.hot_set_size(), 100u);
  Rng rng(3);
  constexpr int kSamples = 200000;
  int hot_ops = 0;
  for (int i = 0; i < kSamples; ++i) {
    Key k = gen.Next(rng);
    ASSERT_LT(k, 10000u);
    if (k < 100) ++hot_ops;
  }
  EXPECT_NEAR(static_cast<double>(hot_ops) / kSamples, 0.9, 0.01);
}

TEST(HotspotGeneratorTest, ZeroHotFractionMeansAllCold) {
  HotspotGenerator gen(1000, 0.1, 0.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(gen.Next(rng), gen.hot_set_size());
  }
}

TEST(HotspotGeneratorTest, FullHotSetDegeneratesToUniform) {
  HotspotGenerator gen(100, 1.0, 0.9);
  EXPECT_EQ(gen.hot_set_size(), 100u);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(gen.Next(rng), 100u);
  }
}

TEST(GaussianGeneratorTest, CentredOnConfiguredMean) {
  GaussianGenerator gen(10000, 0.5, 0.05);
  Rng rng(9);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    Key k = gen.Next(rng);
    ASSERT_LT(k, 10000u);
    sum += static_cast<double>(k);
  }
  EXPECT_NEAR(sum / kSamples, 5000.0, 50.0);
}

TEST(GaussianGeneratorTest, ClampsToKeySpace) {
  // Mean at the edge: half the mass clamps to 0.
  GaussianGenerator gen(1000, 0.0, 0.1);
  Rng rng(11);
  int zeros = 0;
  for (int i = 0; i < 10000; ++i) {
    Key k = gen.Next(rng);
    ASSERT_LT(k, 1000u);
    if (k == 0) ++zeros;
  }
  EXPECT_GT(zeros, 4000);
}

TEST(SequentialGeneratorTest, RoundRobinCoversEveryKey) {
  SequentialGenerator gen(5);
  Rng rng(1);
  std::vector<Key> seen;
  for (int i = 0; i < 12; ++i) seen.push_back(gen.Next(rng));
  EXPECT_EQ(seen, (std::vector<Key>{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1}));
}

TEST(LatestGeneratorTest, NewestKeysAreHottest) {
  LatestGenerator gen(1000, 0.99);
  Rng rng(13);
  std::map<Key, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[gen.Next(rng)];
  // The newest key (id 999) must be the hottest.
  int max_count = 0;
  Key max_key = 0;
  for (const auto& [k, c] : counts) {
    if (c > max_count) {
      max_count = c;
      max_key = k;
    }
  }
  EXPECT_EQ(max_key, 999u);
}

TEST(LatestGeneratorTest, AdvanceShiftsTheHotSpot) {
  LatestGenerator gen(1000, 0.99);
  for (int i = 0; i < 500; ++i) gen.Advance();
  EXPECT_EQ(gen.item_count(), 1500u);
  Rng rng(17);
  std::map<Key, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[gen.Next(rng)];
  int max_count = 0;
  Key max_key = 0;
  for (const auto& [k, c] : counts) {
    if (c > max_count) {
      max_count = c;
      max_key = k;
    }
  }
  EXPECT_EQ(max_key, 1499u);
}

TEST(LatestGeneratorTest, StaysInRangeWhileGrowing) {
  LatestGenerator gen(10, 0.9);
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_LT(gen.Next(rng), gen.item_count());
    if (i % 10 == 0) gen.Advance();
  }
}

}  // namespace
}  // namespace cot::workload
