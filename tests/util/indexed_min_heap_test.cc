#include "util/indexed_min_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/random.h"

namespace cot {
namespace {

TEST(IndexedMinHeapTest, StartsEmpty) {
  IndexedMinHeap<int, int> heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_FALSE(heap.Contains(1));
}

TEST(IndexedMinHeapTest, PushPopSingle) {
  IndexedMinHeap<int, int> heap;
  heap.Push(7, 42);
  EXPECT_EQ(heap.size(), 1u);
  EXPECT_TRUE(heap.Contains(7));
  EXPECT_EQ(heap.TopKey(), 7);
  EXPECT_EQ(heap.TopPriority(), 42);
  auto [k, p] = heap.Pop();
  EXPECT_EQ(k, 7);
  EXPECT_EQ(p, 42);
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMinHeapTest, PopsInPriorityOrder) {
  IndexedMinHeap<int, int> heap;
  const std::vector<int> priorities = {5, 3, 9, 1, 7, 2, 8, 4, 6, 0};
  for (size_t i = 0; i < priorities.size(); ++i) {
    heap.Push(static_cast<int>(i), priorities[i]);
  }
  int prev = -1;
  while (!heap.empty()) {
    auto [k, p] = heap.Pop();
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(IndexedMinHeapTest, UpdateRestoresOrder) {
  IndexedMinHeap<int, int> heap;
  for (int i = 0; i < 10; ++i) heap.Push(i, i * 10);
  heap.Update(9, -1);  // decrease key 9 below everything
  EXPECT_EQ(heap.TopKey(), 9);
  heap.Update(9, 1000);  // and back above everything
  EXPECT_EQ(heap.TopKey(), 0);
  EXPECT_TRUE(heap.CheckInvariants());
}

TEST(MinHeapCoreTest, TryRaiseInPlaceAcceptsOrderPreservingRaises) {
  // Direct core usage (externally-owned ids), as the tracker uses it.
  MinHeapCore<int, int> heap;
  std::vector<MinHeapCore<int, int>::Id> ids;
  for (int i = 0; i < 21; ++i) ids.push_back(heap.Push(i, i * 10));
  // A leaf raise always succeeds with no reordering (21 nodes, 4-ary:
  // positions 6.. are leaves; the last-pushed key sits on one).
  MinHeapCore<int, int>::Id leaf = ids.back();
  int leaf_priority = heap.PriorityAt(leaf);
  EXPECT_TRUE(heap.TryRaiseInPlace(leaf, leaf_priority + 5));
  EXPECT_EQ(heap.PriorityAt(leaf), leaf_priority + 5);
  EXPECT_TRUE(heap.CheckInvariants());
  // A root raise above a child must be refused untouched...
  MinHeapCore<int, int>::Id root = heap.TopId();
  int root_priority = heap.TopPriority();
  EXPECT_FALSE(heap.TryRaiseInPlace(root, 10000));
  EXPECT_EQ(heap.PriorityAt(root), root_priority);
  // ...but a raise that stays at or below every child is stamped in
  // place, still at the root.
  EXPECT_TRUE(heap.TryRaiseInPlace(root, root_priority + 5));
  EXPECT_EQ(heap.TopId(), root);
  EXPECT_EQ(heap.TopPriority(), root_priority + 5);
  EXPECT_TRUE(heap.CheckInvariants());
}

TEST(MinHeapCoreTest, TryRaiseInPlaceRandomizedAgainstUpdateAt) {
  // Whenever TryRaiseInPlace succeeds, the heap must be exactly as valid
  // as if UpdateAt had run; whenever it refuses, the heap is untouched
  // and UpdateAt still works. Pop order stays fully sorted either way.
  Rng rng(1234);
  MinHeapCore<int, int> heap;
  std::vector<MinHeapCore<int, int>::Id> ids;
  std::vector<int> model;
  for (int i = 0; i < 64; ++i) {
    int p = static_cast<int>(rng.NextBelow(100));
    ids.push_back(heap.Push(i, p));
    model.push_back(p);
  }
  for (int step = 0; step < 2000; ++step) {
    size_t i = rng.NextBelow(ids.size());
    int raised = heap.PriorityAt(ids[i]) + static_cast<int>(rng.NextBelow(8));
    if (!heap.TryRaiseInPlace(ids[i], raised)) {
      heap.UpdateAt(ids[i], raised);
    }
    model[i] = raised;
    ASSERT_TRUE(heap.CheckInvariants());
  }
  std::sort(model.begin(), model.end());
  for (int expected : model) {
    EXPECT_EQ(heap.PopTop().second, expected);
  }
}

TEST(IndexedMinHeapTest, EraseRemovesKey) {
  IndexedMinHeap<int, int> heap;
  for (int i = 0; i < 10; ++i) heap.Push(i, i);
  EXPECT_TRUE(heap.Erase(5));
  EXPECT_FALSE(heap.Contains(5));
  EXPECT_FALSE(heap.Erase(5));
  EXPECT_EQ(heap.size(), 9u);
  EXPECT_TRUE(heap.CheckInvariants());
}

TEST(IndexedMinHeapTest, EraseRoot) {
  IndexedMinHeap<int, int> heap;
  for (int i = 0; i < 10; ++i) heap.Push(i, i);
  EXPECT_TRUE(heap.Erase(0));
  EXPECT_EQ(heap.TopKey(), 1);
  EXPECT_TRUE(heap.CheckInvariants());
}

TEST(IndexedMinHeapTest, PriorityOf) {
  IndexedMinHeap<int, int> heap;
  heap.Push(3, 33);
  heap.Push(4, 44);
  EXPECT_EQ(heap.PriorityOf(3), 33);
  EXPECT_EQ(heap.PriorityOf(4), 44);
}

TEST(IndexedMinHeapTest, ClearEmptiesEverything) {
  IndexedMinHeap<int, int> heap;
  for (int i = 0; i < 5; ++i) heap.Push(i, i);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.Contains(0));
  heap.Push(0, 0);  // usable after clear
  EXPECT_EQ(heap.size(), 1u);
}

TEST(IndexedMinHeapTest, ForEachVisitsAll) {
  IndexedMinHeap<int, int> heap;
  for (int i = 0; i < 8; ++i) heap.Push(i, 100 - i);
  int count = 0, prio_sum = 0;
  heap.ForEach([&](const int& k, const int& p) {
    ++count;
    prio_sum += p;
    EXPECT_EQ(p, 100 - k);
  });
  EXPECT_EQ(count, 8);
  EXPECT_EQ(prio_sum, 100 * 8 - 28);
}

TEST(IndexedMinHeapTest, TransformPrioritiesMonotonePreservesOrder) {
  IndexedMinHeap<int, double> heap;
  for (int i = 0; i < 16; ++i) heap.Push(i, static_cast<double>(i) - 8.0);
  heap.TransformPrioritiesMonotone([](double p) { return p * 0.5; });
  EXPECT_TRUE(heap.CheckInvariants());
  EXPECT_EQ(heap.TopKey(), 0);
  EXPECT_DOUBLE_EQ(heap.TopPriority(), -4.0);
}

TEST(IndexedMinHeapTest, CompoundPriorityTieBreaks) {
  using P = std::pair<int, int>;
  IndexedMinHeap<int, P> heap;
  heap.Push(1, P{5, 2});
  heap.Push(2, P{5, 1});
  heap.Push(3, P{4, 9});
  EXPECT_EQ(heap.TopKey(), 3);
  heap.Pop();
  EXPECT_EQ(heap.TopKey(), 2);  // (5,1) < (5,2)
}

TEST(IndexedMinHeapTest, DuplicatePrioritiesAllowed) {
  IndexedMinHeap<int, int> heap;
  for (int i = 0; i < 20; ++i) heap.Push(i, 7);
  EXPECT_EQ(heap.size(), 20u);
  int popped = 0;
  while (!heap.empty()) {
    EXPECT_EQ(heap.Pop().second, 7);
    ++popped;
  }
  EXPECT_EQ(popped, 20);
}

// Property test: a long random sequence of push/pop/update/erase stays
// consistent with a reference model and preserves the heap invariant.
class IndexedMinHeapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexedMinHeapPropertyTest, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  IndexedMinHeap<int, int> heap;
  std::map<int, int> model;  // key -> priority

  for (int step = 0; step < 5000; ++step) {
    int action = static_cast<int>(rng.NextBelow(4));
    int key = static_cast<int>(rng.NextBelow(200));
    int priority = static_cast<int>(rng.NextBelow(1000));
    switch (action) {
      case 0:  // push (if absent)
        if (!model.count(key)) {
          heap.Push(key, priority);
          model[key] = priority;
        }
        break;
      case 1:  // update (if present)
        if (model.count(key)) {
          heap.Update(key, priority);
          model[key] = priority;
        }
        break;
      case 2:  // erase
        EXPECT_EQ(heap.Erase(key), model.erase(key) != 0);
        break;
      case 3:  // pop
        if (!model.empty()) {
          auto [k, p] = heap.Pop();
          // Must be a minimum-priority key of the model.
          int min_priority = model.begin()->second;
          for (const auto& [mk, mp] : model) {
            min_priority = std::min(min_priority, mp);
          }
          EXPECT_EQ(p, min_priority);
          ASSERT_TRUE(model.count(k));
          EXPECT_EQ(model[k], p);
          model.erase(k);
        }
        break;
    }
    ASSERT_EQ(heap.size(), model.size());
  }
  EXPECT_TRUE(heap.CheckInvariants());
  for (const auto& [k, p] : model) {
    ASSERT_TRUE(heap.Contains(k));
    EXPECT_EQ(heap.PriorityOf(k), p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedMinHeapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 1234, 99999));

}  // namespace
}  // namespace cot
