#include "util/flat_hash_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/random.h"

namespace cot {
namespace {

TEST(FlatHashMapTest, StartsEmpty) {
  FlatHashMap<uint64_t, uint64_t> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.count(0), 0u);
  EXPECT_EQ(map.find(42), map.end());
  EXPECT_EQ(map.erase(42), 0u);
  EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatHashMapTest, InsertFindEraseBasics) {
  FlatHashMap<uint64_t, uint64_t> map;
  map[1] = 10;
  map[2] = 20;
  map[3] = 30;
  EXPECT_EQ(map.size(), 3u);
  ASSERT_NE(map.find(2), map.end());
  EXPECT_EQ(map.find(2)->second, 20u);
  EXPECT_EQ(map.count(3), 1u);
  EXPECT_EQ(map.count(4), 0u);

  EXPECT_EQ(map.erase(2), 1u);
  EXPECT_EQ(map.erase(2), 0u);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.find(2), map.end());
  EXPECT_EQ(map.find(1)->second, 10u);
  EXPECT_EQ(map.find(3)->second, 30u);
}

TEST(FlatHashMapTest, OperatorBracketDefaultConstructsAndOverwrites) {
  FlatHashMap<uint64_t, uint64_t> map;
  EXPECT_EQ(map[7], 0u);  // default-constructed on first access
  map[7] = 99;
  EXPECT_EQ(map[7], 99u);
  map[7] = 100;
  EXPECT_EQ(map[7], 100u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, InsertOrAssign) {
  FlatHashMap<uint64_t, uint64_t> map;
  EXPECT_TRUE(map.insert_or_assign(5, 50));
  EXPECT_FALSE(map.insert_or_assign(5, 51));
  EXPECT_EQ(map.find(5)->second, 51u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, ZeroKeyIsAnOrdinaryKey) {
  FlatHashMap<uint64_t, uint64_t> map;
  map[0] = 123;
  EXPECT_EQ(map.count(0), 1u);
  EXPECT_EQ(map.find(0)->second, 123u);
  EXPECT_EQ(map.erase(0), 1u);
  EXPECT_EQ(map.count(0), 0u);
}

TEST(FlatHashMapTest, ReserveAvoidsGrowthAndKeepsEntries) {
  FlatHashMap<uint64_t, uint64_t> map(1000);
  size_t buckets = map.bucket_count();
  for (uint64_t k = 0; k < 1000; ++k) map[k] = k * k;
  EXPECT_EQ(map.bucket_count(), buckets);  // no rehash while within reserve
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(map.count(k), 1u) << k;
    EXPECT_EQ(map.find(k)->second, k * k);
  }
}

TEST(FlatHashMapTest, GrowthPreservesEntries) {
  FlatHashMap<uint64_t, uint64_t> map;  // starts unallocated, grows often
  for (uint64_t k = 0; k < 5000; ++k) map[k * 7919] = k;
  EXPECT_EQ(map.size(), 5000u);
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_EQ(map.count(k * 7919), 1u) << k;
    EXPECT_EQ(map.find(k * 7919)->second, k);
  }
}

TEST(FlatHashMapTest, ClearKeepsAllocationAndEmptiesMap) {
  FlatHashMap<uint64_t, uint64_t> map(100);
  for (uint64_t k = 0; k < 100; ++k) map[k] = k;
  size_t buckets = map.bucket_count();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.bucket_count(), buckets);
  EXPECT_EQ(map.count(50), 0u);
  map[50] = 1;
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, IterationVisitsEveryEntryOnce) {
  FlatHashMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> reference;
  for (uint64_t k = 1; k <= 257; ++k) {
    map[k] = k + 1;
    reference[k] = k + 1;
  }
  std::unordered_map<uint64_t, uint64_t> seen;
  for (const auto& [key, value] : map) {
    EXPECT_EQ(seen.count(key), 0u) << "duplicate key " << key;
    seen[key] = value;
  }
  EXPECT_EQ(seen, reference);
}

TEST(FlatHashMapTest, MutationThroughIterator) {
  FlatHashMap<uint64_t, uint64_t> map;
  for (uint64_t k = 0; k < 64; ++k) map[k] = 0;
  for (auto& [key, value] : map) value = key * 2;
  for (uint64_t k = 0; k < 64; ++k) EXPECT_EQ(map.find(k)->second, k * 2);
}

TEST(FlatHashMapTest, NonTrivialValueTypeReleasedOnErase) {
  FlatHashMap<uint64_t, std::vector<int>> map;
  map[1] = {1, 2, 3};
  map[2] = {4, 5};
  EXPECT_EQ(map.find(1)->second.size(), 3u);
  map.erase(1);
  EXPECT_EQ(map.count(1), 0u);
  EXPECT_EQ(map.find(2)->second.size(), 2u);
}

TEST(FlatHashMapTest, SignedKeysWork) {
  FlatHashMap<int, int> map;
  map[-5] = 1;
  map[5] = 2;
  map[0] = 3;
  EXPECT_EQ(map.find(-5)->second, 1);
  EXPECT_EQ(map.find(5)->second, 2);
  EXPECT_EQ(map.find(0)->second, 3);
  EXPECT_EQ(map.erase(-5), 1u);
  EXPECT_EQ(map.count(-5), 0u);
}

// Differential fuzz: a long random mixed workload must behave exactly like
// std::unordered_map. This exercises robin-hood displacement chains and
// backward-shift deletion across many load factors.
TEST(FlatHashMapTest, RandomOpsMatchUnorderedMap) {
  FlatHashMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> reference;
  Rng rng(20240806);
  // Narrow key range forces frequent hits, overwrites, and erases.
  constexpr uint64_t kKeyRange = 1500;
  for (int i = 0; i < 200000; ++i) {
    uint64_t key = rng.NextUint64() % kKeyRange;
    switch (rng.NextUint64() % 4) {
      case 0:
      case 1: {  // insert/overwrite
        uint64_t value = rng.NextUint64();
        map[key] = value;
        reference[key] = value;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(map.erase(key), reference.erase(key));
        break;
      }
      case 3: {  // lookup
        auto it = map.find(key);
        auto ref_it = reference.find(key);
        ASSERT_EQ(it == map.end(), ref_it == reference.end()) << key;
        if (ref_it != reference.end()) {
          EXPECT_EQ(it->second, ref_it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), reference.size());
  }
  // Full final comparison, both directions.
  std::unordered_map<uint64_t, uint64_t> contents;
  for (const auto& [key, value] : map) contents[key] = value;
  EXPECT_EQ(contents, reference);
}

TEST(FlatHashMapTest, AdversarialCollidingKeysStillCorrect) {
  // Keys chosen in one aligned stride; Mix64 should spread them, but even
  // under clustering the map must stay correct.
  FlatHashMap<uint64_t, uint64_t> map;
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 4096; ++k) keys.push_back(k << 20);
  for (uint64_t k : keys) map[k] = k + 1;
  for (size_t i = 0; i < keys.size(); i += 2) map.erase(keys[i]);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(map.count(keys[i]), 0u);
    } else {
      ASSERT_EQ(map.count(keys[i]), 1u);
      EXPECT_EQ(map.find(keys[i])->second, keys[i] + 1);
    }
  }
}

}  // namespace
}  // namespace cot
