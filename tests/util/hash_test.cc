#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace cot {
namespace {

TEST(Fnv1a64Test, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171F73967E8ULL);
}

TEST(Fnv1a64Test, SensitiveToEveryByte) {
  EXPECT_NE(Fnv1a64("usertable:1"), Fnv1a64("usertable:2"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
}

TEST(Mix64Test, ZeroMapsToZero) {
  // fmix64 is a bijection fixing 0 (all-zero input stays zero).
  EXPECT_EQ(Mix64(0), 0u);
}

TEST(Mix64Test, IsDeterministicAndSpreads) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 1; i <= 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);  // injective on this sample
  EXPECT_EQ(Mix64(42), Mix64(42));
}

TEST(Mix64Test, AvalancheFlipsRoughlyHalfTheBits) {
  int total_flips = 0;
  constexpr int kTrials = 1000;
  for (uint64_t i = 1; i <= kTrials; ++i) {
    uint64_t diff = Mix64(i) ^ Mix64(i ^ 1);  // flip the lowest input bit
    total_flips += __builtin_popcountll(diff);
  }
  double avg = static_cast<double>(total_flips) / kTrials;
  EXPECT_GT(avg, 28.0);
  EXPECT_LT(avg, 36.0);
}

TEST(HashCombineTest, OrderMatters) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashPairTest, DistinctPairsDistinctHashes) {
  std::set<uint64_t> outputs;
  for (uint64_t a = 0; a < 50; ++a) {
    for (uint64_t b = 0; b < 50; ++b) {
      outputs.insert(HashPair(a, b));
    }
  }
  EXPECT_EQ(outputs.size(), 2500u);
}

}  // namespace
}  // namespace cot
