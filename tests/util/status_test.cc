#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace cot {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode expected_code;
    std::string expected_name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("bad"), StatusCode::kInvalidArgument,
       "invalid_argument"},
      {Status::NotFound("missing"), StatusCode::kNotFound, "not_found"},
      {Status::AlreadyExists("dup"), StatusCode::kAlreadyExists,
       "already_exists"},
      {Status::OutOfRange("oob"), StatusCode::kOutOfRange, "out_of_range"},
      {Status::FailedPrecondition("pre"), StatusCode::kFailedPrecondition,
       "failed_precondition"},
      {Status::Unimplemented("todo"), StatusCode::kUnimplemented,
       "unimplemented"},
      {Status::Internal("boom"), StatusCode::kInternal, "internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.expected_code);
    EXPECT_EQ(StatusCodeToString(c.status.code()), c.expected_name);
    EXPECT_NE(c.status.ToString().find(c.expected_name), std::string::npos);
    EXPECT_NE(c.status.ToString().find(c.status.message()), std::string::npos);
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("hello"));
  EXPECT_EQ(v->size(), 5u);
}

}  // namespace
}  // namespace cot
