// Property/fuzz tests for util's FlatHashMap: seeded random interleavings of
// insert / overwrite / erase / clear / reserve, checked against
// std::unordered_map as the model after every operation batch. Small tables
// keep the key space dense relative to the slot count so backward-shift
// deletion constantly crosses the wrap boundary of the circular probe array.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/flat_hash_map.h"
#include "util/random.h"

namespace cot {
namespace {

template <typename V>
void ExpectMatchesModel(const FlatHashMap<uint64_t, V>& map,
                        const std::unordered_map<uint64_t, V>& model,
                        uint64_t key_space) {
  ASSERT_EQ(map.size(), model.size());
  // Model -> map: every modelled entry present with the right value.
  for (const auto& [key, value] : model) {
    auto it = map.find(key);
    ASSERT_NE(it, map.end()) << "key " << key << " missing";
    EXPECT_EQ(it->second, value) << "key " << key;
    EXPECT_EQ(map.count(key), 1u);
    EXPECT_TRUE(map.contains(key));
  }
  // Map -> model via iteration: no phantom entries, no duplicates.
  size_t iterated = 0;
  for (const auto& [key, value] : map) {
    ++iterated;
    auto it = model.find(key);
    ASSERT_NE(it, model.end()) << "phantom key " << key;
    EXPECT_EQ(it->second, value);
  }
  EXPECT_EQ(iterated, map.size());
  // Probe a band of absent keys.
  for (uint64_t key = 0; key < key_space; key += 7) {
    EXPECT_EQ(map.contains(key), model.count(key) != 0) << "key " << key;
  }
}

/// One fuzz campaign: `ops` random operations over a `key_space`-dense key
/// range, cross-checked against the model every `check_every` steps.
void RunCampaign(uint64_t seed, uint64_t ops, uint64_t key_space,
                 uint64_t check_every) {
  Rng rng(seed);
  FlatHashMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> model;
  for (uint64_t i = 0; i < ops; ++i) {
    uint64_t key = rng.NextBelow(key_space);
    double roll = rng.NextDouble();
    if (roll < 0.45) {
      uint64_t value = rng.NextUint64();
      bool fresh = map.insert_or_assign(key, value);
      bool model_fresh = model.insert_or_assign(key, value).second;
      ASSERT_EQ(fresh, model_fresh) << "op " << i << " key " << key;
    } else if (roll < 0.60) {
      // operator[] path: default-construct then mutate in place.
      map[key] += key + 1;
      model[key] += key + 1;
    } else if (roll < 0.92) {
      ASSERT_EQ(map.erase(key), model.erase(key)) << "op " << i << " key "
                                                  << key;
    } else if (roll < 0.96) {
      size_t extra = rng.NextBelow(64);
      map.reserve(map.size() + extra);  // mid-stream rehash
    } else {
      map.clear();
      model.clear();
    }
    ASSERT_EQ(map.size(), model.size()) << "op " << i;
    ASSERT_EQ(map.empty(), model.empty()) << "op " << i;
    if (i % check_every == check_every - 1) {
      ExpectMatchesModel(map, model, key_space);
    }
  }
  ExpectMatchesModel(map, model, key_space);
}

TEST(FlatHashMapPropertyTest, RandomOpsMatchUnorderedMapSmallTable) {
  // Dense small table: constant erase traffic around the wrap boundary.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RunCampaign(seed, /*ops=*/20000, /*key_space=*/24, /*check_every=*/512);
  }
}

TEST(FlatHashMapPropertyTest, RandomOpsMatchUnorderedMapMediumTable) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    RunCampaign(seed, /*ops=*/30000, /*key_space=*/2048,
                /*check_every=*/2048);
  }
}

TEST(FlatHashMapPropertyTest, GrowShrinkChurnAcrossRehashes) {
  // Ramp far past the initial table, then erase back down, repeatedly —
  // every growth rehash moves all entries, every erase backward-shifts.
  Rng rng(99);
  FlatHashMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> model;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (uint64_t i = 0; i < 3000; ++i) {
      uint64_t key = rng.NextUint64();
      map.insert_or_assign(key, key ^ 0xabcd);
      model.insert_or_assign(key, key ^ 0xabcd);
    }
    ExpectMatchesModel(map, model, 64);
    // Erase roughly half, in model iteration order (arbitrary but valid).
    std::vector<uint64_t> doomed;
    bool take = false;
    for (const auto& [key, value] : model) {
      if ((take = !take)) doomed.push_back(key);
    }
    for (uint64_t key : doomed) {
      ASSERT_EQ(map.erase(key), 1u);
      model.erase(key);
    }
    ExpectMatchesModel(map, model, 64);
  }
}

TEST(FlatHashMapPropertyTest, NonTrivialValuesSurviveShiftsAndRehashes) {
  // std::string values: backward-shift deletion and rehashing must move the
  // payloads without slicing, leaking, or duplicating them.
  Rng rng(7);
  FlatHashMap<uint64_t, std::string> map;
  std::unordered_map<uint64_t, std::string> model;
  for (uint64_t i = 0; i < 8000; ++i) {
    uint64_t key = rng.NextBelow(96);
    if (rng.NextDouble() < 0.6) {
      std::string value(1 + key % 40, static_cast<char>('a' + key % 26));
      map.insert_or_assign(key, value);
      model.insert_or_assign(key, value);
    } else {
      ASSERT_EQ(map.erase(key), model.erase(key)) << "op " << i;
    }
  }
  ExpectMatchesModel(map, model, 96);
}

TEST(FlatHashMapPropertyTest, EraseDuringFullWrapOccupancy) {
  // Fill to exactly the max load factor of the minimum 8-slot table (7
  // entries), so probe chains wrap; then erase in every possible order of a
  // rotating window. Catches backward-shift bugs at the index-0 boundary.
  for (uint64_t base = 0; base < 64; ++base) {
    FlatHashMap<uint64_t, uint64_t> map;
    std::unordered_map<uint64_t, uint64_t> model;
    for (uint64_t i = 0; i < 7; ++i) {
      map.insert_or_assign(base + i * 97, i);
      model.insert_or_assign(base + i * 97, i);
    }
    ASSERT_EQ(map.bucket_count(), 8u) << "test premise: minimum table";
    for (uint64_t i = 0; i < 7; ++i) {
      uint64_t key = base + ((i + base) % 7) * 97;
      ASSERT_EQ(map.erase(key), model.erase(key)) << "base " << base;
      ExpectMatchesModel(map, model, 0);
    }
    EXPECT_TRUE(map.empty());
  }
}

TEST(FlatHashMapPropertyTest, ClearKeepsTableReusable) {
  FlatHashMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < 1000; ++i) map.insert_or_assign(i, i);
  size_t buckets = map.bucket_count();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.bucket_count(), buckets) << "clear must keep the allocation";
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_FALSE(map.contains(i));
  for (uint64_t i = 0; i < 1000; ++i) map.insert_or_assign(i * 3, i);
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(map.contains(i * 3));
    EXPECT_EQ(map.find(i * 3)->second, i);
  }
}

TEST(FlatHashMapPropertyTest, FindOrInsertMatchesModelUnderChurn) {
  // The one-probe find-or-insert entry point under the same churn the
  // random campaign applies to the classic mutators: fresh inserts get a
  // default-constructed value the caller then assigns; repeats must hand
  // back the live entry.
  Rng rng(1234);
  FlatHashMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> model;
  for (uint64_t i = 0; i < 30000; ++i) {
    uint64_t key = rng.NextBelow(48);
    double roll = rng.NextDouble();
    if (roll < 0.6) {
      auto [it, inserted] = map.find_or_insert(key);
      auto [mit, model_inserted] = model.try_emplace(key, 0);
      ASSERT_EQ(inserted, model_inserted) << "op " << i << " key " << key;
      it->second += key + 3;
      mit->second += key + 3;
      ASSERT_EQ(it->second, mit->second);
    } else if (roll < 0.9) {
      ASSERT_EQ(map.erase(key), model.erase(key)) << "op " << i;
    } else {
      map.reserve(map.size() + rng.NextBelow(32));
    }
    if (i % 1024 == 1023) ExpectMatchesModel(map, model, 48);
  }
  ExpectMatchesModel(map, model, 48);
}

TEST(FlatHashMapPropertyTest, TombstoneSlotsAreReusedWithoutGrowth) {
  // Insert/erase cycles over a fixed working set must not grow the table:
  // the insert probe takes the first tombstone on the key's probe path,
  // and the rehash trigger purges the rest. A leak of either kind shows
  // up as bucket_count creep (or unbounded tombstone_count).
  FlatHashMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < 6; ++i) map.insert_or_assign(i * 131, i);
  const size_t buckets = map.bucket_count();
  for (uint64_t cycle = 0; cycle < 5000; ++cycle) {
    uint64_t key = (cycle % 6) * 131;
    ASSERT_EQ(map.erase(key), 1u);
    map.insert_or_assign(key, cycle);
    ASSERT_EQ(map.size(), 6u);
    ASSERT_LE(map.tombstone_count(), map.bucket_count());
  }
  // Steady-state churn may rehash in place (purging tombstones) but must
  // never need a bigger table for the same 6 live entries.
  EXPECT_EQ(map.bucket_count(), buckets);
  for (uint64_t i = 0; i < 6; ++i) EXPECT_TRUE(map.contains(i * 131));
}

// ---- SWAR probe-kernel equivalence -------------------------------------
//
// The group matchers are the correctness core of the probe loop. Each SWAR
// kernel has an exact scalar reference next to it in the header; these
// tests pin the documented contracts over random and adversarial groups.

uint64_t AdversarialGroup(Rng& rng, uint8_t h2) {
  // Bytes drawn from the values that stress the zero-byte trick: the tag
  // itself, off-by-one neighbours, both sentinels, and extremes.
  const uint8_t pool[] = {h2,
                          static_cast<uint8_t>(h2 + 1),
                          static_cast<uint8_t>(h2 - 1),
                          flat_hash_map_detail::kEmpty,
                          flat_hash_map_detail::kDeleted,
                          0x00,
                          0x7F,
                          0xFF};
  uint64_t group = 0;
  for (int b = 0; b < 8; ++b) {
    group |= static_cast<uint64_t>(pool[rng.NextBelow(8)]) << (8 * b);
  }
  return group;
}

TEST(FlatHashMapPropertyTest, SwarH2MatchAgreesWithScalarReference) {
  namespace d = flat_hash_map_detail;
  Rng rng(42);
  for (int trial = 0; trial < 200000; ++trial) {
    uint8_t h2 = static_cast<uint8_t>(rng.NextBelow(128));  // tags are 7-bit
    uint64_t group =
        (trial % 2 == 0) ? rng.NextUint64() : AdversarialGroup(rng, h2);
    uint64_t exact = d::MatchH2Scalar(group, h2);
    uint64_t swar = d::MatchH2Swar(group, h2);
    // Superset: every true match is flagged.
    ASSERT_EQ(swar & exact, exact) << "group " << group;
    // False positives only in the shadow of a true match: a spurious bit
    // at byte i requires a genuine match at some lower byte.
    uint64_t spurious = swar & ~exact;
    for (int b = 0; b < 8; ++b) {
      if (spurious & (0x80ULL << (8 * b))) {
        uint64_t lower_true = exact & ((0x80ULL << (8 * b)) - 1);
        ASSERT_NE(lower_true, 0u)
            << "unshadowed false positive at byte " << b;
      }
    }
  }
}

TEST(FlatHashMapPropertyTest, SwarEmptyMatchersAgreeWithScalarReference) {
  namespace d = flat_hash_map_detail;
  Rng rng(7);
  for (int trial = 0; trial < 200000; ++trial) {
    uint64_t group = (trial % 2 == 0)
                         ? rng.NextUint64()
                         : AdversarialGroup(rng, d::kEmpty);
    // Any-of predicate: exact as a boolean.
    ASSERT_EQ(d::MatchEmptySwar(group) != 0, d::MatchEmptyScalar(group) != 0)
        << "group " << group;
    // The exact variant must agree bit-for-bit.
    ASSERT_EQ(d::MatchEmptyExactSwar(group), d::MatchEmptyScalar(group))
        << "group " << group;
    // Empty-or-deleted = high bit per byte, by construction of the
    // control encoding.
    uint64_t expected = 0;
    for (int b = 0; b < 8; ++b) {
      if (!d::IsFull(static_cast<uint8_t>(group >> (8 * b)))) {
        expected |= 0x80ULL << (8 * b);
      }
    }
    ASSERT_EQ(d::MatchEmptyOrDeletedSwar(group), expected);
  }
}

#if COT_FLAT_HASH_MAP_HAVE_SSE2
TEST(FlatHashMapPropertyTest, SimdAndSwarTablesStayIdentical) {
  // The same operation stream through the 16-wide SSE2 probe and the
  // 8-wide portable SWAR probe (kUseSimd = false) must produce identical
  // tables — the group width is an implementation detail.
  Rng rng(271828);
  FlatHashMap<uint64_t, uint64_t, true> simd;
  FlatHashMap<uint64_t, uint64_t, false> swar;
  std::unordered_map<uint64_t, uint64_t> model;
  for (uint64_t i = 0; i < 40000; ++i) {
    uint64_t key = rng.NextBelow(512);
    double roll = rng.NextDouble();
    if (roll < 0.5) {
      uint64_t value = rng.NextUint64();
      ASSERT_EQ(simd.insert_or_assign(key, value),
                swar.insert_or_assign(key, value));
      model.insert_or_assign(key, value);
    } else if (roll < 0.6) {
      auto [sit, s_fresh] = simd.find_or_insert(key);
      auto [wit, w_fresh] = swar.find_or_insert(key);
      ASSERT_EQ(s_fresh, w_fresh) << "op " << i;
      sit->second = wit->second = model[key];
    } else if (roll < 0.95) {
      ASSERT_EQ(simd.erase(key), swar.erase(key)) << "op " << i;
      model.erase(key);
    } else {
      size_t extra = rng.NextBelow(64);
      simd.reserve(simd.size() + extra);
      swar.reserve(swar.size() + extra);
    }
    ASSERT_EQ(simd.size(), swar.size()) << "op " << i;
  }
  ASSERT_EQ(simd.size(), model.size());
  for (const auto& [key, value] : model) {
    auto sit = simd.find(key);
    auto wit = swar.find(key);
    ASSERT_NE(sit, simd.end());
    ASSERT_NE(wit, swar.end());
    EXPECT_EQ(sit->second, value);
    EXPECT_EQ(wit->second, value);
  }
}
#endif  // COT_FLAT_HASH_MAP_HAVE_SSE2

}  // namespace
}  // namespace cot
