#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace cot {
namespace {

// Builds an argv from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    pointers_.push_back(const_cast<char*>("prog"));
    for (auto& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

FlagParser MakeParser() {
  FlagParser flags;
  flags.AddString("name", "default", "a string");
  flags.AddInt64("count", 7, "an int");
  flags.AddDouble("ratio", 0.5, "a double");
  flags.AddBool("verbose", false, "a bool");
  return flags;
}

TEST(FlagParserTest, DefaultsWithoutArgs) {
  FlagParser flags = MakeParser();
  ArgvBuilder args({});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt64("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, SpaceSeparatedValues) {
  FlagParser flags = MakeParser();
  ArgvBuilder args({"--name", "hello", "--count", "42", "--ratio", "1.25"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetString("name"), "hello");
  EXPECT_EQ(flags.GetInt64("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 1.25);
}

TEST(FlagParserTest, EqualsSeparatedValues) {
  FlagParser flags = MakeParser();
  ArgvBuilder args({"--name=world", "--count=-3", "--verbose=true"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetString("name"), "world");
  EXPECT_EQ(flags.GetInt64("count"), -3);
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, BareBooleanFlag) {
  FlagParser flags = MakeParser();
  ArgvBuilder args({"--verbose"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser flags = MakeParser();
  ArgvBuilder args({"input.txt", "--count", "1", "more"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "more"}));
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser flags = MakeParser();
  ArgvBuilder args({"--nope", "1"});
  Status s = flags.Parse(args.argc(), args.argv());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("nope"), std::string::npos);
}

TEST(FlagParserTest, MalformedValuesFail) {
  {
    FlagParser flags = MakeParser();
    ArgvBuilder args({"--count", "abc"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
  }
  {
    FlagParser flags = MakeParser();
    ArgvBuilder args({"--ratio", "xyz"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
  }
  {
    // Booleans only bind values via '='; a following token is positional.
    FlagParser flags = MakeParser();
    ArgvBuilder args({"--verbose=maybe"});
    EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
  }
  {
    FlagParser flags = MakeParser();
    ArgvBuilder args({"--verbose", "maybe"});
    ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
    EXPECT_TRUE(flags.GetBool("verbose"));
    EXPECT_EQ(flags.positional(), (std::vector<std::string>{"maybe"}));
  }
}

TEST(FlagParserTest, MissingValueFails) {
  FlagParser flags = MakeParser();
  ArgvBuilder args({"--count"});
  Status s = flags.Parse(args.argc(), args.argv());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("missing value"), std::string::npos);
}

TEST(FlagParserTest, HelpShortCircuits) {
  FlagParser flags = MakeParser();
  ArgvBuilder args({"--help", "--garbage"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(flags.help_requested());
  std::string help = flags.Help();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("an int"), std::string::npos);
}

}  // namespace
}  // namespace cot
