#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace cot {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  // SplitMix64 seeding maps 0 to a non-degenerate state.
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.NextUint64());
  EXPECT_GT(seen.size(), 98u);
}

TEST(RngTest, ReseedResets) {
  Rng rng(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.NextUint64());
  rng.Seed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.NextUint64(), first[i]);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(11);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBelow(kBound)];
  // Chi-squared with 9 dof: 99.9th percentile ~ 27.9.
  double expected = static_cast<double>(kSamples) / kBound;
  double chi2 = 0;
  for (int c : counts) {
    double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(RngTest, UniformIntCoversClosedRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(23);
  constexpr int kSamples = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kSamples; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kSamples;
  double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, BernoulliEdgesAndRate) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleHandlesSmallInputs) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(SplitMix64Test, KnownSequenceProperties) {
  uint64_t state = 0;
  uint64_t a = SplitMix64(&state);
  uint64_t b = SplitMix64(&state);
  EXPECT_NE(a, b);
  // Deterministic given the same starting state.
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(&state2), a);
  EXPECT_EQ(SplitMix64(&state2), b);
}

}  // namespace
}  // namespace cot
