// Back-end topology elasticity: caching shards are added and removed
// mid-run (the scenario consistent hashing exists for, paper Section 2).
// Keys must churn minimally, reads must never go stale across ownership
// changes, and CoT front-ends must keep serving through the churn.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "cache/lru_cache.h"
#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "core/cot_cache.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::cluster {
namespace {

TEST(ClusterElasticityTest, AddServerTakesTraffic) {
  CacheCluster cluster(4, 10000);
  FrontendClient client(&cluster, nullptr);
  for (uint64_t k = 0; k < 2000; ++k) client.Get(k % 10000);
  ServerId fresh = cluster.AddServer();
  EXPECT_EQ(fresh, 4u);
  EXPECT_EQ(cluster.server_count(), 5u);
  EXPECT_TRUE(cluster.IsActive(fresh));
  uint64_t before = cluster.server(fresh).lookup_count();
  for (uint64_t k = 0; k < 5000; ++k) client.Get(k % 10000);
  uint64_t gained = cluster.server(fresh).lookup_count() - before;
  // ~1/5 of traffic should land on the newcomer.
  EXPECT_GT(gained, 5000 / 5 / 2);
  EXPECT_LT(gained, 5000 / 5 * 2);
}

TEST(ClusterElasticityTest, RemoveServerStopsItsTraffic) {
  CacheCluster cluster(4, 10000);
  FrontendClient client(&cluster, nullptr);
  ASSERT_TRUE(cluster.RemoveServer(2).ok());
  EXPECT_FALSE(cluster.IsActive(2));
  uint64_t before = cluster.server(2).lookup_count();
  for (uint64_t k = 0; k < 5000; ++k) client.Get(k % 10000);
  EXPECT_EQ(cluster.server(2).lookup_count(), before);
  // Errors on bad removals.
  EXPECT_FALSE(cluster.RemoveServer(2).ok());
  EXPECT_FALSE(cluster.RemoveServer(99).ok());
}

TEST(ClusterElasticityTest, AddServerFlushesMisownedCopies) {
  CacheCluster cluster(2, 100000);
  FrontendClient client(&cluster, nullptr);
  // Warm every shard with a spread of keys.
  for (uint64_t k = 0; k < 2000; ++k) client.Get(k);
  cluster.AddServer();
  // No shard may hold a key it does not own.
  for (ServerId id = 0; id < cluster.server_count(); ++id) {
    if (!cluster.IsActive(id)) continue;
    size_t misowned = cluster.server(id).EraseIf([&](uint64_t key) {
      return cluster.ring().ServerFor(key) != id;
    });
    EXPECT_EQ(misowned, 0u) << "server " << id;
  }
}

TEST(ClusterElasticityTest, ReadsStayFreshAcrossTopologyChurn) {
  // Model-checked consistency with servers joining and leaving mid-run.
  CacheCluster cluster(3, 2000);
  FrontendClient client(&cluster,
                        std::make_unique<cache::LruCache>(32));
  std::unordered_map<uint64_t, cache::Value> model;
  workload::ZipfianGenerator gen(2000, 1.1);
  Rng rng(5);
  cache::Value next_value = 50000;
  for (int i = 0; i < 60000; ++i) {
    uint64_t key = gen.Next(rng);
    if (rng.Bernoulli(0.1)) {
      cache::Value v = ++next_value;
      client.Set(key, v);
      model[key] = v;
    } else {
      cache::Value expected = model.count(key)
                                  ? model[key]
                                  : StorageLayer::InitialValue(key);
      ASSERT_EQ(client.Get(key), expected) << "op " << i;
    }
    if (i == 15000) cluster.AddServer();
    if (i == 30000) ASSERT_TRUE(cluster.RemoveServer(1).ok());
    if (i == 45000) cluster.AddServer();
  }
}

TEST(ClusterElasticityTest, CotElasticityRidesThroughShardChanges) {
  // A CoT front-end with an attached resizer keeps balancing while the
  // back-end scales out underneath it.
  CacheCluster cluster(4, 50000);
  FrontendClient client(&cluster, std::make_unique<core::CotCache>(64, 512));
  core::ResizerConfig config;
  config.target_imbalance = 1.3;
  config.warmup_epochs = 1;
  ASSERT_TRUE(client.EnableElasticResizing(config).ok());
  workload::ZipfianGenerator gen(50000, 1.2);
  Rng rng(9);
  for (int i = 0; i < 400000; ++i) {
    uint64_t key = gen.Next(rng);
    client.Get(key);
    if (i == 100000) cluster.AddServer();
    if (i == 200000) cluster.AddServer();
  }
  EXPECT_EQ(cluster.server_count(), 6u);
  // The client's counters cover the grown topology and epochs advanced.
  EXPECT_EQ(client.cumulative_lookups().size(), 6u);
  EXPECT_GT(client.resizer()->epochs_completed(), 3u);
  EXPECT_GT(client.stats().LocalHitRate(), 0.3);
}

}  // namespace
}  // namespace cot::cluster
