// Integration tests asserting the paper's headline hit-rate ordering
// (Figure 4 shape): CoT ~ TPC > LRU-2 ~ ARC > LFU ~ LRU on skewed
// workloads, at test scale.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cache/arc_cache.h"
#include "cache/cache.h"
#include "cache/lfu_cache.h"
#include "cache/lru_cache.h"
#include "cache/lruk_cache.h"
#include "cache/perfect_cache.h"
#include "core/cot_cache.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot {
namespace {

// Measures the steady-state hit rate of `cache` on `total` Zipfian(skew)
// accesses over `keys` keys (first half is warm-up).
double MeasureHitRate(cache::Cache* cache, double skew, uint64_t keys,
                      int total, uint64_t seed) {
  workload::ZipfianGenerator gen(keys, skew);
  Rng rng(seed);
  for (int i = 0; i < total / 2; ++i) {
    cache::Key k = gen.Next(rng);
    if (!cache->Get(k).has_value()) cache->Put(k, k);
  }
  cache->ResetStats();
  for (int i = total / 2; i < total; ++i) {
    cache::Key k = gen.Next(rng);
    if (!cache->Get(k).has_value()) cache->Put(k, k);
  }
  return cache->stats().HitRate();
}

struct RatesAtC {
  double lru, lfu, arc, lru2, cot, tpc;
};

RatesAtC MeasureAll(size_t c, double skew, uint64_t keys, int total,
                    size_t tracker_ratio) {
  RatesAtC rates;
  {
    cache::LruCache cache(c);
    rates.lru = MeasureHitRate(&cache, skew, keys, total, 1);
  }
  {
    cache::LfuCache cache(c);
    rates.lfu = MeasureHitRate(&cache, skew, keys, total, 1);
  }
  {
    cache::ArcCache cache(c);
    rates.arc = MeasureHitRate(&cache, skew, keys, total, 1);
  }
  {
    cache::LrukCache cache(c, tracker_ratio * c, 2);
    rates.lru2 = MeasureHitRate(&cache, skew, keys, total, 1);
  }
  {
    core::CotCache cache(c, tracker_ratio * c);
    rates.cot = MeasureHitRate(&cache, skew, keys, total, 1);
  }
  rates.tpc = workload::ZipfianGenerator(keys, skew).TopCMass(c);
  return rates;
}

TEST(HitRateComparisonTest, CotNearTpcOnZipf099) {
  RatesAtC rates = MeasureAll(/*c=*/64, /*skew=*/0.99, /*keys=*/50000,
                              /*total=*/400000, /*tracker_ratio=*/8);
  EXPECT_GT(rates.cot, 0.92 * rates.tpc);
}

TEST(HitRateComparisonTest, CotBeatsLruAndLfuOnZipf099) {
  RatesAtC rates = MeasureAll(64, 0.99, 50000, 400000, 8);
  EXPECT_GT(rates.cot, rates.lru);
  EXPECT_GT(rates.cot, rates.lfu);
}

TEST(HitRateComparisonTest, CotAtLeastMatchesArcAndLru2OnZipf099) {
  RatesAtC rates = MeasureAll(64, 0.99, 50000, 400000, 8);
  EXPECT_GE(rates.cot, rates.arc * 0.98);
  EXPECT_GE(rates.cot, rates.lru2 * 0.98);
}

TEST(HitRateComparisonTest, OrderingHoldsAtLowSkew) {
  RatesAtC rates = MeasureAll(64, 0.9, 50000, 400000, 16);
  EXPECT_GT(rates.cot, rates.lru);
  EXPECT_GT(rates.cot, rates.lfu);
  EXPECT_GT(rates.cot, 0.9 * rates.tpc);
}

TEST(HitRateComparisonTest, OrderingHoldsAtHighSkew) {
  RatesAtC rates = MeasureAll(64, 1.2, 50000, 400000, 4);
  EXPECT_GE(rates.cot, rates.lru);
  EXPECT_GE(rates.cot, rates.lfu * 0.99);
  EXPECT_GT(rates.cot, 0.92 * rates.tpc);
}

TEST(HitRateComparisonTest, CotWithFewerLinesBeatsLruWithMore) {
  // Figure 4's "75% fewer cache-lines" claim, scaled down: CoT at C=64
  // should beat LRU at C=256 on Zipfian 0.99.
  core::CotCache cot(64, 512);
  double cot_rate = MeasureHitRate(&cot, 0.99, 50000, 400000, 2);
  cache::LruCache lru(256);
  double lru_rate = MeasureHitRate(&lru, 0.99, 50000, 400000, 2);
  EXPECT_GT(cot_rate, lru_rate);
}

TEST(HitRateComparisonTest, TrackerRatioSweepSaturates) {
  // Appendix Figure 9 shape: growing K at fixed C raises the hit rate,
  // with diminishing returns beyond K = 16C.
  double r2 = 0, r16 = 0, r32 = 0;
  {
    core::CotCache cache(32, 2 * 32);
    r2 = MeasureHitRate(&cache, 0.99, 50000, 400000, 3);
  }
  {
    core::CotCache cache(32, 16 * 32);
    r16 = MeasureHitRate(&cache, 0.99, 50000, 400000, 3);
  }
  {
    core::CotCache cache(32, 32 * 32);
    r32 = MeasureHitRate(&cache, 0.99, 50000, 400000, 3);
  }
  EXPECT_GT(r16, r2);
  EXPECT_LT(r32 - r16, (r16 - r2) * 0.5);  // saturation
}

}  // namespace
}  // namespace cot
