// Long-run soak tests: once CoT's resizer has converged on a stationary
// workload, it must *stay* converged — no oscillation between doubling and
// halving, no decay storms, and a bounded total resize count. Oscillation
// is the classic failure mode of feedback controllers driven by noisy
// estimators, which is exactly what the resizer's smoothing/hysteresis
// machinery (DESIGN.md §5) exists to prevent.

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "core/cot_cache.h"
#include "core/elastic_resizer.h"
#include "workload/op_stream.h"

namespace cot {
namespace {

using cluster::CacheCluster;
using cluster::FrontendClient;
using core::CotCache;
using core::ResizeAction;
using core::ResizerConfig;
using core::ResizerPhase;

struct SoakOutcome {
  size_t resize_actions_after_convergence = 0;
  size_t decay_actions = 0;
  size_t epochs_after_convergence = 0;
  size_t converged_at_epoch = 0;
  bool converged = false;
  size_t final_capacity = 0;
};

SoakOutcome Soak(double skew, uint64_t total_ops, uint64_t seed) {
  CacheCluster cluster(8, 100000);
  auto client = std::make_unique<FrontendClient>(
      &cluster, std::make_unique<CotCache>(2, 4));
  ResizerConfig config;
  config.target_imbalance = 1.1;
  config.initial_epoch_size = 2000;
  config.warmup_epochs = 2;
  EXPECT_TRUE(client->EnableElasticResizing(config).ok());

  workload::PhaseSpec phase;
  if (skew == 0.0) {
    phase.distribution = workload::Distribution::kUniform;
  } else {
    phase.distribution = workload::Distribution::kZipfian;
    phase.skew = skew;
  }
  phase.read_fraction = 0.998;
  phase.num_ops = total_ops;
  auto stream = workload::OpStream::Create(100000, {phase}, seed);
  EXPECT_TRUE(stream.ok());
  while (!stream->Done()) client->Apply(stream->Next());

  SoakOutcome outcome;
  const auto& history = client->resizer()->history();
  // Convergence = first epoch in steady state.
  for (size_t i = 0; i < history.size(); ++i) {
    if (history[i].phase == ResizerPhase::kSteady) {
      outcome.converged = true;
      outcome.converged_at_epoch = i;
      break;
    }
  }
  if (outcome.converged) {
    for (size_t i = outcome.converged_at_epoch; i < history.size(); ++i) {
      ++outcome.epochs_after_convergence;
      ResizeAction action = history[i].action;
      if (action == ResizeAction::kDoubleBoth ||
          action == ResizeAction::kHalveBoth ||
          action == ResizeAction::kDoubleTracker ||
          action == ResizeAction::kShrinkTrackerBack ||
          action == ResizeAction::kResetTrackerRatio) {
        ++outcome.resize_actions_after_convergence;
      }
      if (action == ResizeAction::kDecay) ++outcome.decay_actions;
    }
  }
  auto* cache = dynamic_cast<CotCache*>(client->local_cache());
  outcome.final_capacity = cache->capacity();
  return outcome;
}

TEST(ResizerStabilityTest, StationaryZipfStaysConverged) {
  SoakOutcome outcome = Soak(1.2, 6000000, 21);
  ASSERT_TRUE(outcome.converged);
  ASSERT_GT(outcome.epochs_after_convergence, 20u)
      << "soak too short to judge stability";
  // At most a small tail of corrective resizes is tolerated; sustained
  // oscillation would produce one every few epochs.
  EXPECT_LE(outcome.resize_actions_after_convergence,
            outcome.epochs_after_convergence / 10)
      << "resizer oscillates in steady state";
  // No decay storms on a stationary workload.
  EXPECT_LE(outcome.decay_actions, outcome.epochs_after_convergence / 10);
}

TEST(ResizerStabilityTest, ModerateSkewAlsoStable) {
  SoakOutcome outcome = Soak(0.99, 6000000, 22);
  ASSERT_TRUE(outcome.converged);
  ASSERT_GT(outcome.epochs_after_convergence, 20u);
  EXPECT_LE(outcome.resize_actions_after_convergence,
            outcome.epochs_after_convergence / 10);
}

TEST(ResizerStabilityTest, UniformNeverBlowsUp) {
  SoakOutcome outcome = Soak(0.0, 3000000, 23);
  // Uniform converges immediately (already balanced) and must stay tiny.
  EXPECT_LE(outcome.final_capacity, 32u);
}

}  // namespace
}  // namespace cot
