// Model-checked protocol consistency: random mixed workloads driven
// through the full stack (front-end caches, replication, slice
// rebalancing, both write protocols) must always return the value the
// last Set wrote — verified against a flat reference map. The
// single-threaded interleave makes linearizability checking exact: any
// stale read is a protocol bug, not a race.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/lru_cache.h"
#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "cluster/hot_key_replicator.h"
#include "cluster/slice_map.h"
#include "core/cot_cache.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::cluster {
namespace {

/// View over the cluster's quiescent ring for control-plane calls made
/// outside a client (tests drive churnless clusters here).
RouteView ViewOf(const CacheCluster& cluster) {
  return RouteView{cluster.routing_epoch(), &cluster.ring()};
}

// Drives `ops` random reads/writes from `num_clients` clients and checks
// every read against the reference model. `on_epoch` runs every 5000 ops
// (control-plane work: rebalances, replication decisions).
template <typename MakeCache, typename OnEpoch>
void CheckConsistency(CacheCluster* cluster, uint32_t num_clients,
                      MakeCache&& make_cache, RoutingPolicy* router,
                      FrontendClient::WritePolicy write_policy, int ops,
                      uint64_t seed, OnEpoch&& on_epoch) {
  std::vector<std::unique_ptr<FrontendClient>> clients;
  for (uint32_t i = 0; i < num_clients; ++i) {
    clients.push_back(
        std::make_unique<FrontendClient>(cluster, make_cache()));
    clients.back()->SetRouter(router);
    clients.back()->SetWritePolicy(write_policy);
  }
  std::unordered_map<uint64_t, cache::Value> model;
  workload::ZipfianGenerator gen(5000, 1.1);  // hot keys collide a lot
  Rng rng(seed);
  cache::Value next_value = 1000000;
  for (int i = 0; i < ops; ++i) {
    uint64_t key = gen.Next(rng);
    FrontendClient& client = *clients[rng.NextBelow(num_clients)];
    if (rng.Bernoulli(0.1)) {
      cache::Value v = ++next_value;
      client.Set(key, v);
      model[key] = v;
    } else {
      cache::Value expected = model.count(key)
                                  ? model[key]
                                  : StorageLayer::InitialValue(key);
      ASSERT_EQ(client.Get(key), expected)
          << "stale read of key " << key << " at op " << i;
    }
    if (i % 5000 == 4999) on_epoch();
  }
}

TEST(ProtocolConsistencyTest, InvalidateProtocolWithLocalCache) {
  // One client: its own invalidations keep its cache perfectly coherent.
  CacheCluster cluster(8, 5000);
  CheckConsistency(
      &cluster, 1,
      [] { return std::make_unique<cache::LruCache>(64); }, nullptr,
      FrontendClient::WritePolicy::kInvalidate, 50000, 1, [] {});
}

TEST(ProtocolConsistencyTest, MultipleCachelessClientsAreCoherent) {
  // With no front-end caches, shard + storage keep all clients coherent.
  CacheCluster cluster(8, 5000);
  CheckConsistency(
      &cluster, 4, [] { return std::unique_ptr<cache::Cache>(); }, nullptr,
      FrontendClient::WritePolicy::kInvalidate, 50000, 11, [] {});
}

TEST(ProtocolConsistencyTest, CrossClientLocalStalenessIsInherent) {
  // The paper's Section 2 protocol invalidates only the *writer's* local
  // cache; other front-ends' copies go stale until an update-propagation
  // mechanism (outside the protocol) reaches them. This is exactly the
  // consistency-management cost the paper argues front-end caches should
  // stay small to contain. Document the behaviour explicitly:
  CacheCluster cluster(4, 100);
  FrontendClient a(&cluster, std::make_unique<cache::LruCache>(8));
  FrontendClient b(&cluster, std::make_unique<cache::LruCache>(8));
  cache::Value initial = a.Get(7);  // a caches the initial value
  b.Set(7, 999);                    // b invalidates b-local + shard
  EXPECT_EQ(a.Get(7), initial);     // a still serves its stale copy
  a.local_cache()->Invalidate(7);   // ... until propagation reaches it
  EXPECT_EQ(a.Get(7), 999u);
}

TEST(ProtocolConsistencyTest, WriteThroughProtocolWithLocalCaches) {
  // Note: write-through with *multiple* clients is only coherent for the
  // writer's own cache; other clients' stale local copies are a known
  // property of write-through without invalidation fan-out. Use one
  // client, which must be perfectly coherent.
  CacheCluster cluster(8, 5000);
  CheckConsistency(
      &cluster, 1,
      [] { return std::make_unique<cache::LruCache>(64); }, nullptr,
      FrontendClient::WritePolicy::kWriteThrough, 50000, 2, [] {});
}

TEST(ProtocolConsistencyTest, CotCacheWithDualCostInvalidation) {
  CacheCluster cluster(8, 5000);
  CheckConsistency(
      &cluster, 1,
      [] { return std::make_unique<core::CotCache>(32, 128); }, nullptr,
      FrontendClient::WritePolicy::kInvalidate, 50000, 3, [] {});
}

TEST(ProtocolConsistencyTest, SliceRebalancingNeverServesStale) {
  CacheCluster cluster(8, 5000);
  SliceMap slicer(8, 256);
  CheckConsistency(
      &cluster, 4, [] { return std::unique_ptr<cache::Cache>(); }, &slicer,
      FrontendClient::WritePolicy::kInvalidate, 80000, 4,
      [&] { slicer.Rebalance(&cluster); });
}

TEST(ProtocolConsistencyTest, SliceRebalanceWithoutFlushWouldGoStale) {
  // Documents why Rebalance takes the cluster: without the flush, a slice
  // moving away and back exposes the stranded copy. We force the
  // move-away/move-back by alternating synthetic load patterns.
  CacheCluster cluster(2, 100);
  SliceMap slicer(2, 2);  // two slices, two servers
  FrontendClient client(&cluster, nullptr);
  client.SetRouter(&slicer);

  // Find two keys in different slices.
  uint64_t key_a = 0;
  while (slicer.SliceOf(key_a) != 0) ++key_a;
  uint64_t key_b = 0;
  while (slicer.SliceOf(key_b) != 1) ++key_b;

  // Warm key_a on its current owner.
  client.Get(key_a);
  ServerId owner_before = slicer.Route(key_a, client.route_view());

  // Load pattern that flips the assignment: make slice 1 heavy.
  for (int i = 0; i < 100; ++i) slicer.OnLookup(key_b, slicer.Route(key_b, client.route_view()));
  slicer.OnLookup(key_a, slicer.Route(key_a, client.route_view()));
  slicer.Rebalance(&cluster);  // with flush

  if (slicer.Route(key_a, client.route_view()) != owner_before) {
    // Update while the key lives elsewhere.
    client.Set(key_a, 777);
    // Flip back.
    for (int i = 0; i < 100; ++i) {
      slicer.OnLookup(key_a, slicer.Route(key_a, client.route_view()));
    }
    slicer.OnLookup(key_b, slicer.Route(key_b, client.route_view()));
    slicer.Rebalance(&cluster);
    // With the flush, the old owner no longer holds the pre-update copy.
    EXPECT_EQ(client.Get(key_a), 777u);
  }
}

TEST(ProtocolConsistencyTest, HotKeyReplicationStaysCoherent) {
  CacheCluster cluster(8, 5000);
  HotKeyReplicator replicator(8, /*hot_share=*/0.02,
                              /*gamma=*/4, /*tracker_size=*/128);
  CheckConsistency(
      &cluster, 4, [] { return std::unique_ptr<cache::Cache>(); },
      &replicator, FrontendClient::WritePolicy::kInvalidate, 80000, 5,
      [&] { replicator.EndEpoch(ViewOf(cluster)); });
}

TEST(ProtocolConsistencyTest, EverythingAtOnce) {
  // Replication + a CoT cache + epoch churn, one seed per run.
  for (uint64_t seed : {7u, 8u, 9u}) {
    CacheCluster cluster(8, 5000);
    HotKeyReplicator replicator(8, 0.02, 8, 128);
    CheckConsistency(
        &cluster, 1,
        [] { return std::make_unique<core::CotCache>(16, 64); },
        &replicator, FrontendClient::WritePolicy::kInvalidate, 60000, seed,
        [&] { replicator.EndEpoch(ViewOf(cluster)); });
  }
}

}  // namespace
}  // namespace cot::cluster
