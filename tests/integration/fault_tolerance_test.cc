// End-to-end tests of the fault-injection framework and the failure-aware
// client protocol: the stale-read regression the recovery/generation rule
// exists for, availability accounting, determinism of faulty runs across
// thread counts, and fault pricing in the end-to-end simulator.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cache/lru_cache.h"
#include "cluster/cache_cluster.h"
#include "cluster/experiment.h"
#include "cluster/fault_injector.h"
#include "cluster/frontend_client.h"
#include "sim/end_to_end_sim.h"
#include "util/random.h"

namespace cot::cluster {
namespace {

FaultEvent CrashEvent(ServerId server, uint64_t start, uint64_t end) {
  FaultEvent e;
  e.server = server;
  e.type = FaultType::kCrash;
  e.start_op = start;
  e.end_op = end;
  return e;
}

FaultEvent TransientEvent(ServerId server, uint64_t start, uint64_t end,
                          double probability) {
  FaultEvent e;
  e.server = server;
  e.type = FaultType::kTransient;
  e.start_op = start;
  e.end_op = end;
  e.probability = probability;
  return e;
}

FaultEvent SlowEvent(ServerId server, uint64_t start, uint64_t end,
                     double factor) {
  FaultEvent e;
  e.server = server;
  e.type = FaultType::kSlow;
  e.start_op = start;
  e.end_op = end;
  e.slow_factor = factor;
  return e;
}

// The regression the recovery/generation rule exists for. A shard crashes,
// missing an invalidation delete, and recovers. Without the generation
// bump its pre-crash copy survives recovery and is served — a stale read.
// With the bump (the default) the shard comes back cold and re-fetches the
// authoritative value.
TEST(FaultToleranceTest, StaleReadHazardWithoutColdRecovery) {
  CacheCluster cluster(2, 100);
  const cache::Key key = 17;
  ServerId owner = cluster.OwnerOf(key);

  // The shard is down exactly while the update's delete is sent (client
  // clock 1) and back up at clock 3.
  FaultSchedule schedule;
  schedule.events.push_back(CrashEvent(owner, 1, 3));
  FaultInjector injector(schedule);

  FailurePolicy unsafe;
  unsafe.recover_cold = false;  // disable the generation bump
  unsafe.breaker_failure_threshold = 100;
  FrontendClient client(&cluster, /*local_cache=*/nullptr);
  client.SetFaultInjector(&injector, /*client_id=*/0, unsafe);

  EXPECT_EQ(client.Get(key), StorageLayer::InitialValue(key));  // clock 0
  client.Set(key, 4242);                    // clock 1: delete lost (crash)
  EXPECT_EQ(client.stats().lost_invalidations, 1u);
  EXPECT_EQ(client.Get(key), 4242u);        // clock 2: crash -> failover
  EXPECT_EQ(client.stats().failovers, 1u);

  // Clock 3: shard recovered, still holding the pre-crash copy. Without
  // the generation bump the client reads it — stale.
  cache::Value read = client.Get(key);
  EXPECT_EQ(read, StorageLayer::InitialValue(key));
  EXPECT_NE(read, 4242u) << "expected to demonstrate the stale-read hazard";
}

TEST(FaultToleranceTest, ColdRecoveryPreventsTheStaleRead) {
  CacheCluster cluster(2, 100);
  const cache::Key key = 17;
  ServerId owner = cluster.OwnerOf(key);

  FaultSchedule schedule;
  schedule.events.push_back(CrashEvent(owner, 1, 3));
  FaultInjector injector(schedule);

  FailurePolicy safe;  // recover_cold = true by default
  safe.breaker_failure_threshold = 100;
  FrontendClient client(&cluster, nullptr);
  client.SetFaultInjector(&injector, 0, safe);

  EXPECT_EQ(client.Get(key), StorageLayer::InitialValue(key));  // clock 0
  client.Set(key, 4242);                                        // clock 1
  EXPECT_EQ(client.Get(key), 4242u);                            // clock 2

  // Clock 3: first contact after the crash window bumps the generation,
  // the shard restarts cold, and the read re-fetches from storage.
  EXPECT_EQ(client.Get(key), 4242u);
  EXPECT_EQ(client.stats().cold_restarts, 1u);
  EXPECT_EQ(cluster.server_generation(owner), 1u);
  // The fill after the cold miss re-populated the shard with fresh data.
  auto shard_copy = cluster.server(owner).Get(key);
  ASSERT_TRUE(shard_copy.has_value());
  EXPECT_EQ(*shard_copy, 4242u);
}

// A reachable shard that swallows an invalidation after bounded retries is
// fenced with a forced cold restart — the stale copy cannot survive.
TEST(FaultToleranceTest, LostInvalidationToReachableShardForcesColdRestart) {
  CacheCluster cluster(2, 100);
  const cache::Key key = 23;
  ServerId owner = cluster.OwnerOf(key);

  FaultSchedule schedule;
  // Certain transient failure: every attempt of ops 1..2 fails, but the
  // shard is not crashed, so the loss cannot rely on crash recovery.
  schedule.events.push_back(TransientEvent(owner, 1, 2, 1.0));
  FaultInjector injector(schedule);

  FrontendClient client(&cluster, nullptr);
  client.SetFaultInjector(&injector, 0, FailurePolicy());

  EXPECT_EQ(client.Get(key), StorageLayer::InitialValue(key));  // clock 0
  client.Set(key, 99);  // clock 1: delete undeliverable -> fence
  EXPECT_EQ(client.stats().lost_invalidations, 1u);
  EXPECT_EQ(client.stats().forced_restarts, 1u);
  // The pre-update copy was dropped with the fence.
  EXPECT_FALSE(cluster.server(owner).Get(key).has_value());
  EXPECT_EQ(client.Get(key), 99u);  // clock 2: cold miss -> fresh
}

// Zero-stale-read soak: a client without a local cache races updates and
// reads against crash, transient, and slow windows. Storage is
// authoritative, so every read must observe the latest write no matter
// which path (shard, failover, degraded) served it.
TEST(FaultToleranceTest, NoStaleReadsUnderMixedFaultSchedule) {
  const uint32_t kServers = 4;
  CacheCluster cluster(kServers, 64);
  FaultSchedule schedule;
  schedule.events.push_back(CrashEvent(0, 100, 400));
  schedule.events.push_back(CrashEvent(1, 600, 900));
  schedule.events.push_back(CrashEvent(0, 1200, 1300));  // second crash
  schedule.events.push_back(TransientEvent(2, 0, 2000, 0.4));
  schedule.events.push_back(SlowEvent(3, 0, 2000, 5.0));
  ASSERT_TRUE(schedule.Validate(kServers).ok());
  FaultInjector injector(schedule);

  FrontendClient client(&cluster, nullptr);
  client.SetFaultInjector(&injector, 0, FailurePolicy());

  std::map<cache::Key, cache::Value> expected;
  Rng rng(2024);
  for (uint64_t op = 0; op < 2000; ++op) {
    cache::Key key = rng.NextBelow(64);
    if (rng.NextBelow(10) == 0) {
      cache::Value value = 1000 + op;
      client.Set(key, value);
      expected[key] = value;
    } else {
      cache::Value want = expected.count(key)
                              ? expected[key]
                              : StorageLayer::InitialValue(key);
      ASSERT_EQ(client.Get(key), want) << "stale read at op " << op;
    }
  }
  // The schedule actually exercised every failure path.
  const FrontendStats& s = client.stats();
  EXPECT_GT(s.failed_requests, 0u);
  EXPECT_GT(s.retries, 0u);
  EXPECT_GT(s.failovers, 0u);
  EXPECT_GT(s.breaker_trips, 0u);
  EXPECT_GT(s.degraded_ops, 0u);
  EXPECT_GT(s.slow_ops, 0u);
  EXPECT_GT(s.cold_restarts, 0u);
}

// The acceptance identity: every read is served exactly once — locally, by
// a delivered shard lookup, by a degraded (breaker) storage read, or by a
// failover storage read. Every update invalidation is either delivered or
// counted lost.
TEST(FaultToleranceTest, AvailabilityCountersAccountForEveryOperation) {
  ExperimentConfig config;
  config.num_servers = 4;
  config.key_space = 5000;
  config.num_clients = 4;
  config.total_ops = 40000;
  config.seed = 7;
  workload::PhaseSpec phase;
  phase.read_fraction = 0.9;
  config.phases = {phase};
  config.faults.events.push_back(CrashEvent(0, 1000, 4000));
  config.faults.events.push_back(TransientEvent(1, 2000, 8000, 0.5));

  auto result = RunExperiment(
      config, [](uint32_t) { return std::make_unique<cache::LruCache>(64); });
  ASSERT_TRUE(result.ok());
  const FrontendStats& a = result->aggregate;

  EXPECT_EQ(a.reads,
            a.local_hits + a.backend_lookups + a.degraded_ops + a.failovers);
  // Single-replica routing: one invalidation target per update.
  EXPECT_EQ(a.updates, a.invalidations + a.lost_invalidations);
  // Delivered lookups resolve at the shard or at storage; degraded and
  // failover reads hit storage too; invalidation losses never read.
  EXPECT_EQ(a.backend_lookups + a.degraded_ops + a.failovers,
            a.backend_hits + a.storage_reads);
  EXPECT_GE(a.failed_requests, a.retries);
  EXPECT_GT(a.failovers + a.degraded_ops, 0u);
  EXPECT_GT(a.lost_invalidations, 0u);

  // The availability profile blames the shards the schedule actually hit.
  ASSERT_EQ(result->unavailable_ops_per_server.size(), 4u);
  EXPECT_GT(result->unavailable_ops_per_server[0], 0u);
  EXPECT_GT(result->unavailable_ops_per_server[1], 0u);
  EXPECT_EQ(result->unavailable_ops_per_server[2], 0u);
  EXPECT_EQ(result->unavailable_ops_per_server[3], 0u);
}

// Fault windows are keyed on each client's logical op clock, so a faulty
// run is exactly as deterministic as a healthy one: per-client logical
// stats are byte-identical at any thread count. (backend_hits and
// storage_reads are excluded: under concurrent updates, whether a shard
// miss hits storage before another client's fill is a real race, same as
// in the fault-free parallel experiment contract. cold_restarts is also
// excluded: which client wins the idempotent generation bump is timing.)
TEST(FaultToleranceTest, FaultyRunsAreDeterministicAcrossThreadCounts) {
  ExperimentConfig config;
  config.num_servers = 4;
  config.key_space = 2000;
  config.num_clients = 8;
  config.total_ops = 64000;
  config.seed = 11;
  workload::PhaseSpec phase;
  phase.read_fraction = 0.95;
  config.phases = {phase};
  config.faults.events.push_back(CrashEvent(0, 500, 2500));
  config.faults.events.push_back(TransientEvent(1, 1000, 5000, 0.3));
  config.faults.events.push_back(SlowEvent(2, 0, 8000, 3.0));

  auto factory = [](uint32_t) {
    return std::make_unique<cache::LruCache>(128);
  };

  std::vector<std::vector<FrontendStats>> runs;
  for (uint32_t threads : {1u, 2u, 4u}) {
    config.num_threads = threads;
    auto result = RunExperiment(config, factory);
    ASSERT_TRUE(result.ok());
    runs.push_back(result->per_client);
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      const FrontendStats& a = runs[0][i];
      const FrontendStats& b = runs[run][i];
      EXPECT_EQ(a.reads, b.reads) << "client " << i;
      EXPECT_EQ(a.updates, b.updates) << "client " << i;
      EXPECT_EQ(a.local_hits, b.local_hits) << "client " << i;
      EXPECT_EQ(a.backend_lookups, b.backend_lookups) << "client " << i;
      EXPECT_EQ(a.failed_requests, b.failed_requests) << "client " << i;
      EXPECT_EQ(a.retries, b.retries) << "client " << i;
      EXPECT_EQ(a.failovers, b.failovers) << "client " << i;
      EXPECT_EQ(a.degraded_ops, b.degraded_ops) << "client " << i;
      EXPECT_EQ(a.invalidations, b.invalidations) << "client " << i;
      EXPECT_EQ(a.lost_invalidations, b.lost_invalidations)
          << "client " << i;
      EXPECT_EQ(a.forced_restarts, b.forced_restarts) << "client " << i;
      EXPECT_EQ(a.breaker_trips, b.breaker_trips) << "client " << i;
      EXPECT_EQ(a.slow_ops, b.slow_ops) << "client " << i;
    }
  }
  // The schedule fired (this is not a vacuous comparison).
  uint64_t failed = 0;
  for (const FrontendStats& s : runs[0]) failed += s.failed_requests;
  EXPECT_GT(failed, 0u);
}

// The client's locally observed imbalance stays finite when faults starve
// shards of traffic (satellite: zero-lookup / zero-shard epoch guards).
TEST(FaultToleranceTest, EpochImbalanceIsFiniteWhenAllTrafficFailsOver) {
  CacheCluster cluster(2, 100);
  FaultSchedule schedule;
  schedule.events.push_back(CrashEvent(0, 0, 1000));
  schedule.events.push_back(CrashEvent(1, 0, 1000));
  FaultInjector injector(schedule);
  FrontendClient client(&cluster, nullptr);
  FailurePolicy policy;
  policy.breaker_failure_threshold = 1000000;  // keep attempting
  client.SetFaultInjector(&injector, 0, policy);

  for (uint64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(client.Get(k % 100), StorageLayer::InitialValue(k % 100));
  }
  EXPECT_EQ(client.stats().failovers, 200u);
  double imbalance = client.CurrentEpochImbalance();
  EXPECT_EQ(imbalance, 1.0);  // no usable signal -> neutral, never NaN
}

// The end-to-end simulator prices the degraded paths: the same workload
// costs strictly more wall-clock with failures in it, and delivered slow
// windows stretch service times.
TEST(FaultToleranceTest, SimulatorPricesFaultsIntoTheMakespan) {
  ExperimentConfig config;
  config.num_servers = 4;
  config.key_space = 2000;
  config.num_clients = 4;
  config.total_ops = 20000;
  config.seed = 5;
  workload::PhaseSpec phase;
  phase.read_fraction = 0.95;
  config.phases = {phase};

  auto factory = [](uint32_t) {
    return std::make_unique<cache::LruCache>(64);
  };
  sim::LatencyModel model;

  auto healthy = sim::RunEndToEnd(config, factory, model);
  ASSERT_TRUE(healthy.ok());

  config.faults.events.push_back(CrashEvent(0, 100, 2000));
  config.faults.events.push_back(SlowEvent(1, 0, 5000, 6.0));
  auto faulty = sim::RunEndToEnd(config, factory, model);
  ASSERT_TRUE(faulty.ok());

  EXPECT_GT(faulty->makespan_us, healthy->makespan_us);
  EXPECT_GT(faulty->mean_latency_us, healthy->mean_latency_us);
  EXPECT_GT(faulty->logical.aggregate.failed_requests, 0u);
  EXPECT_GT(faulty->logical.aggregate.slow_ops, 0u);
}

TEST(FaultToleranceTest, FaultPenaltyMatchesTimeoutAndBackoffLadder) {
  sim::LatencyModel model;
  model.timeout_us = 1000.0;
  model.backoff_base_us = 100.0;
  EXPECT_DOUBLE_EQ(model.FaultPenalty(0, true), 0.0);
  EXPECT_DOUBLE_EQ(model.FaultPenalty(0, false), 0.0);
  // One failure then success: timeout + the backoff before the retry.
  EXPECT_DOUBLE_EQ(model.FaultPenalty(1, true), 1100.0);
  // One failure then failover: just the timeout.
  EXPECT_DOUBLE_EQ(model.FaultPenalty(1, false), 1000.0);
  // Three failures then failover: 3 timeouts + 100 + 200 of backoff.
  EXPECT_DOUBLE_EQ(model.FaultPenalty(3, false), 3300.0);
  // Three failures then success: backoff before every re-attempt.
  EXPECT_DOUBLE_EQ(model.FaultPenalty(3, true), 3700.0);
}

// An invalid schedule is rejected before any work happens.
TEST(FaultToleranceTest, ExperimentRejectsInvalidSchedule) {
  ExperimentConfig config;
  config.num_servers = 2;
  config.num_clients = 1;
  config.total_ops = 10;
  workload::PhaseSpec phase;
  config.phases = {phase};
  config.faults.events.push_back(CrashEvent(5, 0, 10));  // unknown shard
  auto result = RunExperiment(config, nullptr);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace cot::cluster
