// The chaos harness: seeded churn + fault schedules driven against the
// real cluster stack, with machine-checked safety invariants after every
// run. Three legs:
//
//   1. A lockstep shadow-map run (the strongest no-stale-read oracle):
//      every read is compared against an authoritative shadow value while
//      servers are added/removed/rejoined and crash/transient/slow faults
//      fire, for several distinct seeds.
//   2. RunExperiment chaos runs whose aggregate stats must satisfy the
//      stats-conservation identities exactly.
//   3. Determinism: churn runs produce byte-identical merged traces across
//      1/2/4 threads (read-only chaos), and per-client logical stats stay
//      bit-for-bit identical even with updates and faults in the mix.
//
// Plus a timed-sim check that churn is actually priced (migration pauses
// and epoch-mismatch round-trips cost wall-clock).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cache_cluster.h"
#include "cluster/churn_schedule.h"
#include "cluster/distcache_router.h"
#include "cluster/experiment.h"
#include "cluster/fault_injector.h"
#include "cluster/frontend_client.h"
#include "core/cot_cache.h"
#include "metrics/event_tracer.h"
#include "sim/end_to_end_sim.h"
#include "util/random.h"
#include "workload/op_stream.h"
#include "workload/zipfian_generator.h"

namespace cot::cluster {
namespace {

CacheFactory CotFactory() {
  return [](uint32_t) { return std::make_unique<core::CotCache>(64, 512); };
}

ExperimentConfig ChaosConfig(double read_fraction) {
  ExperimentConfig config;
  config.num_servers = 4;
  config.key_space = 5000;
  config.num_clients = 4;
  config.total_ops = 16000;  // 4000 per client
  workload::PhaseSpec phase;
  phase.distribution = workload::Distribution::kZipfian;
  phase.skew = 0.99;
  phase.read_fraction = read_fraction;
  config.phases = {phase};
  return config;
}

/// The stats-conservation identities every run must satisfy, faults and
/// churn included. A violated identity means an op was double-counted or
/// silently dropped somewhere in the routing/failover/escalation paths.
void ExpectConservation(const FrontendStats& s, const std::string& label) {
  EXPECT_EQ(s.reads,
            s.local_hits + s.backend_lookups + s.degraded_ops + s.failovers)
      << label << ": every read is a hit, a backend lookup, or a fallback";
  EXPECT_EQ(s.updates, s.invalidations + s.lost_invalidations)
      << label << ": every update's invalidation is delivered or escalated";
  EXPECT_EQ(s.backend_hits + s.storage_reads,
            s.backend_lookups + s.degraded_ops + s.failovers)
      << label << ": every non-local read is served exactly once";
}

/// Leg 1 — the no-stale-read oracle. A single cacheless client (every read
/// goes to the tier, so staleness cannot hide behind a local copy) runs
/// lockstep against a shadow map of authoritative values while a seeded
/// chaos plan mutates the topology and injects faults on the same op
/// clock. Any read that does not match the shadow is a safety violation.
TEST(ChaosChurnTest, LockstepShadowMapSeesNoStaleReads) {
  constexpr uint64_t kKeys = 2000;
  constexpr uint64_t kHorizon = 4000;

  for (uint64_t seed : {11ull, 23ull, 47ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosOptions options;
    options.seed = seed;
    options.initial_servers = 4;
    options.horizon_ops = kHorizon;
    options.warmup_ops = 200;
    options.churn_events = 5;
    options.fault_events = 4;
    ChaosPlan plan = MakeChaosPlan(options);
    ASSERT_TRUE(plan.churn.Validate(options.initial_servers).ok());

    CacheCluster cluster(options.initial_servers, kKeys);
    FrontendClient client(&cluster, nullptr);
    FaultInjector injector(plan.faults);
    client.SetFaultInjector(&injector, /*client_id=*/0, FailurePolicy());

    std::unordered_map<uint64_t, uint64_t> shadow;  // overrides only
    auto expected = [&shadow](uint64_t key) {
      auto it = shadow.find(key);
      return it == shadow.end() ? StorageLayer::InitialValue(key)
                                : it->second;
    };

    Rng rng(seed ^ 0xC0FFEEULL);
    size_t next_event = 0;
    for (uint64_t op = 0; op < kHorizon; ++op) {
      // Barrier semantics: an event at `at_op` applies once the client has
      // completed exactly `at_op` operations.
      while (next_event < plan.churn.events.size() &&
             plan.churn.events[next_event].at_op == client.op_clock()) {
        const ChurnEvent& e = plan.churn.events[next_event++];
        switch (e.action) {
          case ChurnAction::kAddServer:
            cluster.AddServer();
            break;
          case ChurnAction::kRemoveServer:
            ASSERT_TRUE(cluster.RemoveServer(e.server).ok());
            break;
          case ChurnAction::kRejoinServer:
            ASSERT_TRUE(cluster.RejoinServer(e.server).ok());
            break;
        }
      }
      uint64_t key = rng.NextBelow(kKeys);
      if (rng.NextDouble() < 0.9) {
        EXPECT_EQ(client.Get(key), expected(key))
            << "stale read of key " << key << " at op " << op;
      } else {
        uint64_t value = 1000000 + op;
        client.Set(key, value);
        shadow[key] = value;
      }
    }
    EXPECT_EQ(next_event, plan.churn.events.size())
        << "every scheduled churn event must fire inside the horizon";
    EXPECT_GE(client.stats().epoch_mismatches, 1u)
        << "a cacheless client must observe the fencing after churn";
    ExpectConservation(client.stats(), "lockstep");

    // Quiesce sweep: read every key once. This (a) re-checks the whole key
    // space against the shadow and (b) makes every active shard serve a
    // request, so any shard that ended the run inside a crash window gets
    // its recovery fence (generation bump) applied before the invariant
    // sweep below.
    for (uint64_t key = 0; key < kKeys; ++key) {
      EXPECT_EQ(client.Get(key), expected(key)) << "sweep, key " << key;
    }
    Status invariants = VerifyClusterInvariants(cluster);
    EXPECT_TRUE(invariants.ok()) << invariants;
  }
}

/// Leg 2 — full engine runs over three distinct seeded churn+fault
/// schedules: zero invariant violations, exact conservation identities,
/// and exact epoch/topology accounting.
TEST(ChaosChurnTest, SeededEngineRunsSatisfyConservationIdentities) {
  for (uint64_t seed : {3ull, 9ull, 27ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosOptions options;
    options.seed = seed;
    options.initial_servers = 4;
    options.horizon_ops = 4000;  // per-client ops below
    options.warmup_ops = 500;
    options.churn_events = 4;
    options.fault_events = 3;
    ChaosPlan plan = MakeChaosPlan(options);

    ExperimentConfig config = ChaosConfig(/*read_fraction=*/0.9);
    config.seed = seed;
    config.churn = plan.churn;
    config.faults = plan.faults;

    auto result = RunExperiment(config, CotFactory());
    ASSERT_TRUE(result.ok()) << result.status();

    EXPECT_EQ(result->topology_changes, plan.churn.events.size());
    EXPECT_EQ(result->routing_epoch, 1 + plan.churn.events.size());
    EXPECT_EQ(result->final_active_servers,
              plan.churn.FinalActiveCount(options.initial_servers));
    EXPECT_GT(result->keys_migrated, 0u)
        << "chaos churn on a warm tier must migrate keys";
    EXPECT_EQ(result->aggregate.epoch_mismatches, result->epoch_rejects)
        << "every shard-side reject must be accounted by exactly one "
           "client-side mismatch";
    EXPECT_EQ(result->aggregate.epoch_mismatches,
              result->aggregate.route_refreshes)
        << "with the default refresh budget every mismatch refreshes once";

    ExpectConservation(result->aggregate, "aggregate");
    for (uint32_t c = 0; c < config.num_clients; ++c) {
      ExpectConservation(result->per_client[c],
                         "client " + std::to_string(c));
    }
  }
}

/// Leg 3a — determinism, strong form: a read-only chaos run (churn plus
/// transient/slow faults, preloaded tier) must produce a byte-identical
/// merged trace and identical per-client stats at any thread count.
TEST(ChaosChurnTest, ReadOnlyChaosTraceByteIdenticalAcrossThreads) {
  auto spec = ParseChurnSchedule("add:500,remove:1:1000,rejoin:1:2000,add:3000");
  ASSERT_TRUE(spec.ok()) << spec.status();

  ExperimentConfig config = ChaosConfig(/*read_fraction=*/1.0);
  config.churn = *spec;
  config.trace_capacity = 4096;
  FaultEvent transient;
  transient.server = 2;
  transient.type = FaultType::kTransient;
  transient.start_op = 600;
  transient.end_op = 900;
  transient.probability = 0.5;
  FaultEvent slow;
  slow.server = 0;
  slow.type = FaultType::kSlow;
  slow.start_op = 1500;
  slow.end_op = 2500;
  slow.slow_factor = 4.0;
  config.faults.events = {transient, slow};

  auto serialize = [](const ExperimentResult& result) {
    std::string out;
    for (const metrics::TraceEvent& event : result.trace) {
      out += metrics::ToJson(event);
      out += '\n';
    }
    return out;
  };

  config.num_threads = 1;
  auto serial = RunExperiment(config, CotFactory());
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->topology_changes, 4u);
  EXPECT_GT(serial->aggregate.epoch_mismatches, 0u);
  const std::string golden = serialize(*serial);
  ASSERT_FALSE(golden.empty());

  for (uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    config.num_threads = threads;
    auto parallel = RunExperiment(config, CotFactory());
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(serialize(*parallel), golden)
        << "chaos traces must be byte-identical across thread counts";
    for (uint32_t c = 0; c < config.num_clients; ++c) {
      SCOPED_TRACE("client " + std::to_string(c));
      const FrontendStats& a = serial->per_client[c];
      const FrontendStats& b = parallel->per_client[c];
      EXPECT_EQ(a.reads, b.reads);
      EXPECT_EQ(a.local_hits, b.local_hits);
      EXPECT_EQ(a.backend_lookups, b.backend_lookups);
      EXPECT_EQ(a.backend_hits, b.backend_hits)
          << "read-only preloaded chaos keeps even shard hits exact";
      EXPECT_EQ(a.epoch_mismatches, b.epoch_mismatches);
      EXPECT_EQ(a.route_refreshes, b.route_refreshes);
      EXPECT_EQ(a.failovers, b.failovers);
      EXPECT_EQ(a.retries, b.retries);
      EXPECT_EQ(a.slow_ops, b.slow_ops);
    }
  }
}

/// Leg 3b — determinism, mixed form: with updates and a full chaos plan
/// (crash windows included), the per-client logical counters that depend
/// only on the client's own stream stay bit-for-bit identical across
/// thread counts. Shard-content-dependent counters (backend hits, storage
/// reads) legitimately vary with interleaving and are excluded.
TEST(ChaosChurnTest, MixedChaosKeepsPerClientLogicalStatsDeterministic) {
  ChaosOptions options;
  options.seed = 5;
  options.initial_servers = 4;
  options.horizon_ops = 4000;
  options.warmup_ops = 500;
  options.churn_events = 4;
  options.fault_events = 3;
  ChaosPlan plan = MakeChaosPlan(options);

  ExperimentConfig config = ChaosConfig(/*read_fraction=*/0.9);
  config.churn = plan.churn;
  config.faults = plan.faults;

  config.num_threads = 1;
  auto serial = RunExperiment(config, CotFactory());
  ASSERT_TRUE(serial.ok()) << serial.status();

  for (uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    config.num_threads = threads;
    auto parallel = RunExperiment(config, CotFactory());
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(parallel->topology_changes, serial->topology_changes);
    EXPECT_EQ(parallel->routing_epoch, serial->routing_epoch);
    for (uint32_t c = 0; c < config.num_clients; ++c) {
      SCOPED_TRACE("client " + std::to_string(c));
      const FrontendStats& a = serial->per_client[c];
      const FrontendStats& b = parallel->per_client[c];
      EXPECT_EQ(a.reads, b.reads);
      EXPECT_EQ(a.updates, b.updates);
      EXPECT_EQ(a.local_hits, b.local_hits);
      EXPECT_EQ(a.backend_lookups, b.backend_lookups);
      EXPECT_EQ(a.epoch_mismatches, b.epoch_mismatches);
      EXPECT_EQ(a.route_refreshes, b.route_refreshes);
      EXPECT_EQ(a.invalidations, b.invalidations);
      EXPECT_EQ(a.lost_invalidations, b.lost_invalidations);
      EXPECT_EQ(a.failovers, b.failovers);
      EXPECT_EQ(a.degraded_ops, b.degraded_ops);
      ExpectConservation(b, "client " + std::to_string(c));
    }
  }
}

/// The distcache variant of the update identity: AllReplicas fans every
/// update out to both cache-tier candidates plus the shard owner, so each
/// update accounts for exactly three deliveries-or-losses.
void ExpectDistCacheConservation(const FrontendStats& s,
                                 const std::string& label) {
  EXPECT_EQ(s.reads,
            s.local_hits + s.backend_lookups + s.degraded_ops + s.failovers)
      << label << ": every read is a hit, a backend lookup, or a fallback";
  EXPECT_EQ(s.updates * 3, s.invalidations + s.lost_invalidations)
      << label
      << ": every update fans out to both candidates plus the owner";
  EXPECT_EQ(s.backend_hits + s.storage_reads,
            s.backend_lookups + s.degraded_ops + s.failovers)
      << label << ": every non-local read is served exactly once";
}

/// Leg 1, two-layer form — the no-stale-read oracle over the distcache
/// topology: a cacheless client routes hot keys through a 4-node cache
/// tier while seeded churn+faults hit the shard ring AND the cache tier
/// itself is reconfigured mid-run (repartition + cold flush, the elastic
/// cache-layer scaling motion). Any read differing from the shadow map is
/// a safety violation: a stale cache-tier copy that survived an update's
/// fan-out or a reconfiguration.
TEST(ChaosChurnTest, DistCacheLockstepShadowMapSeesNoStaleReads) {
  constexpr uint64_t kKeys = 2000;
  constexpr uint64_t kHorizon = 4000;
  constexpr uint32_t kShards = 4;
  constexpr uint32_t kCacheNodes = 4;

  for (uint64_t seed : {11ull, 23ull, 47ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosOptions options;
    options.seed = seed;
    options.initial_servers = kShards;
    options.horizon_ops = kHorizon;
    options.warmup_ops = 200;
    options.churn_events = 5;
    options.fault_events = 4;
    ChaosPlan plan = MakeChaosPlan(options);
    ASSERT_TRUE(plan.churn.Validate(kShards).ok());
    // Chaos plans are authored in plain shard-id space (the j-th added
    // shard gets id kShards + j). Cache nodes occupy those ids here, so
    // re-base added-shard references — the same rule RunExperiment
    // applies for kDistCache.
    for (ChurnEvent& e : plan.churn.events) {
      if (e.server >= kShards) e.server += kCacheNodes;
    }
    for (FaultEvent& e : plan.faults.events) {
      if (e.server >= kShards) e.server += kCacheNodes;
    }

    CacheCluster cluster(kShards, kKeys);
    std::vector<ServerId> tier;
    for (uint32_t i = 0; i < kCacheNodes; ++i) {
      tier.push_back(cluster.AddCacheNode());
    }
    DistCacheConfig dc;
    dc.hot_keys = 32;
    dc.epoch_ops = 256;
    DistCacheRouter router(tier, dc);
    FrontendClient client(&cluster, nullptr);
    client.SetRouter(&router);
    FaultInjector injector(plan.faults);
    client.SetFaultInjector(&injector, /*client_id=*/0, FailurePolicy());

    std::unordered_map<uint64_t, uint64_t> shadow;  // overrides only
    auto expected = [&shadow](uint64_t key) {
      auto it = shadow.find(key);
      return it == shadow.end() ? StorageLayer::InitialValue(key)
                                : it->second;
    };

    // Cache-tier reconfigurations on the same logical clock as churn:
    // reverse the node list (every node switches partition) mid-run, then
    // restore it. Each reconfig must be paired with a cold flush of every
    // cache node — a copy stranded on an ex-candidate stops receiving
    // invalidations and would serve stale forever.
    std::vector<uint64_t> reconfigs = {kHorizon / 3, (2 * kHorizon) / 3};
    size_t next_reconfig = 0;

    Rng rng(seed ^ 0xD15CACE5ULL);
    workload::ZipfianGenerator gen(kKeys, 1.1);
    size_t next_event = 0;
    for (uint64_t op = 0; op < kHorizon; ++op) {
      while (next_event < plan.churn.events.size() &&
             plan.churn.events[next_event].at_op == client.op_clock()) {
        const ChurnEvent& e = plan.churn.events[next_event++];
        switch (e.action) {
          case ChurnAction::kAddServer:
            cluster.AddServer();
            break;
          case ChurnAction::kRemoveServer:
            ASSERT_TRUE(cluster.RemoveServer(e.server).ok());
            break;
          case ChurnAction::kRejoinServer:
            ASSERT_TRUE(cluster.RejoinServer(e.server).ok());
            break;
        }
        // Router clients route off their snapshot unfenced, so the churn
        // barrier is where they must observe the new ring.
        client.RefreshRouteView();
      }
      if (next_reconfig < reconfigs.size() &&
          client.op_clock() >= reconfigs[next_reconfig]) {
        ++next_reconfig;
        std::vector<ServerId> reshuffled(tier.rbegin(), tier.rend());
        tier = reshuffled;
        router.ResetCacheTier(tier);
        for (ServerId node : cluster.CacheNodeIds()) {
          cluster.ForceColdRestart(node);
        }
      }
      uint64_t key = gen.Next(rng);
      if (rng.NextDouble() < 0.9) {
        EXPECT_EQ(client.Get(key), expected(key))
            << "stale read of key " << key << " at op " << op;
      } else {
        uint64_t value = 1000000 + op;
        client.Set(key, value);
        shadow[key] = value;
      }
    }
    EXPECT_EQ(next_event, plan.churn.events.size())
        << "every scheduled churn event must fire inside the horizon";
    EXPECT_EQ(next_reconfig, reconfigs.size());
    ExpectDistCacheConservation(client.stats(), "distcache lockstep");

    // The tier must actually have served traffic for the oracle to mean
    // anything.
    uint64_t tier_lookups = 0;
    for (ServerId node : cluster.CacheNodeIds()) {
      tier_lookups += cluster.server(node).lookup_count();
    }
    EXPECT_GT(tier_lookups, 0u) << "hot keys never reached the cache tier";

    // Quiesce sweep: every key re-checked against the shadow, every
    // active shard touched (applies pending recovery fences), then the
    // cluster-wide invariants — cache nodes included in the freshness
    // check, exempted from ring-ownership.
    for (uint64_t key = 0; key < kKeys; ++key) {
      EXPECT_EQ(client.Get(key), expected(key)) << "sweep, key " << key;
    }
    Status invariants = VerifyClusterInvariants(cluster);
    EXPECT_TRUE(invariants.ok()) << invariants;
  }
}

/// Legs 2+3, two-layer form — full engine distcache runs under seeded
/// churn+faults: the conservation identities (with the 3-target update
/// fan-out) hold exactly, and per-client logical stats plus per-shard and
/// per-cache-node load counts are bit-for-bit identical across 1/2/4
/// threads.
TEST(ChaosChurnTest, DistCacheEngineChaosDeterministicAcrossThreads) {
  ChaosOptions options;
  options.seed = 13;
  options.initial_servers = 4;
  options.horizon_ops = 4000;
  options.warmup_ops = 500;
  options.churn_events = 4;
  options.fault_events = 3;
  ChaosPlan plan = MakeChaosPlan(options);

  ExperimentConfig config = ChaosConfig(/*read_fraction=*/0.9);
  config.churn = plan.churn;
  config.faults = plan.faults;
  config.topology = Topology::kDistCache;
  config.cache_nodes = 4;
  config.distcache_hot_keys = 64;
  config.distcache_epoch_ops = 512;

  config.num_threads = 1;
  auto serial = RunExperiment(config, CotFactory());
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->topology_changes, plan.churn.events.size());
  ASSERT_EQ(serial->cache_node_ids.size(), 4u);
  ExpectDistCacheConservation(serial->aggregate, "serial aggregate");
  for (uint32_t c = 0; c < config.num_clients; ++c) {
    ExpectDistCacheConservation(serial->per_client[c],
                                "serial client " + std::to_string(c));
  }

  for (uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    config.num_threads = threads;
    auto parallel = RunExperiment(config, CotFactory());
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(parallel->topology_changes, serial->topology_changes);
    EXPECT_EQ(parallel->routing_epoch, serial->routing_epoch);
    // Load counters are sums of per-client deterministic routing
    // decisions, so they are exact across thread counts — shard tier and
    // cache tier both.
    EXPECT_EQ(parallel->per_server_lookups, serial->per_server_lookups);
    EXPECT_EQ(parallel->cache_node_lookups, serial->cache_node_lookups);
    for (uint32_t c = 0; c < config.num_clients; ++c) {
      SCOPED_TRACE("client " + std::to_string(c));
      const FrontendStats& a = serial->per_client[c];
      const FrontendStats& b = parallel->per_client[c];
      EXPECT_EQ(a.reads, b.reads);
      EXPECT_EQ(a.updates, b.updates);
      EXPECT_EQ(a.local_hits, b.local_hits);
      EXPECT_EQ(a.backend_lookups, b.backend_lookups);
      EXPECT_EQ(a.invalidations, b.invalidations);
      EXPECT_EQ(a.lost_invalidations, b.lost_invalidations);
      EXPECT_EQ(a.failovers, b.failovers);
      EXPECT_EQ(a.degraded_ops, b.degraded_ops);
      ExpectDistCacheConservation(b, "client " + std::to_string(c));
    }
  }
}

/// Churn costs wall-clock in the timed simulator: migration pauses and
/// epoch-mismatch re-routes are priced, so a churned run's makespan must
/// exceed the identical static run's.
TEST(ChaosChurnTest, TimedSimPricesChurn) {
  ExperimentConfig config = ChaosConfig(/*read_fraction=*/1.0);
  config.total_ops = 8000;  // 2000 per client
  sim::LatencyModel model;

  auto still = sim::RunEndToEnd(config, CotFactory(), model);
  ASSERT_TRUE(still.ok()) << still.status();

  auto spec = ParseChurnSchedule("add:500,remove:1:1000");
  ASSERT_TRUE(spec.ok());
  config.churn = *spec;
  auto churned = sim::RunEndToEnd(config, CotFactory(), model);
  ASSERT_TRUE(churned.ok()) << churned.status();

  EXPECT_EQ(churned->logical.topology_changes, 2u);
  EXPECT_EQ(churned->logical.routing_epoch, 3u);
  EXPECT_GT(churned->logical.keys_migrated, 0u);
  EXPECT_GT(churned->makespan_us, still->makespan_us)
      << "migration pauses and mismatch round-trips must cost time";
}

}  // namespace
}  // namespace cot::cluster
