// Integration tests for CoT's elastic resizing driven end-to-end through
// the cluster stack — the test-sized analogues of the paper's Figures 7-8.

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "core/cot_cache.h"
#include "core/elastic_resizer.h"
#include "workload/op_stream.h"

namespace cot {
namespace {

using cluster::CacheCluster;
using cluster::FrontendClient;
using core::CotCache;
using core::ResizerConfig;
using core::ResizerPhase;

// Runs `ops` operations from `phase` through a fresh CoT client attached to
// `cluster` and returns the client.
std::unique_ptr<FrontendClient> RunElasticClient(
    CacheCluster* cluster, const workload::PhaseSpec& phase, uint64_t ops,
    const ResizerConfig& config, uint64_t seed) {
  auto client = std::make_unique<FrontendClient>(
      cluster, std::make_unique<CotCache>(2, 4));
  EXPECT_TRUE(client->EnableElasticResizing(config).ok());
  workload::PhaseSpec bounded = phase;
  bounded.num_ops = ops;
  auto stream = workload::OpStream::Create(cluster->storage().key_space_size(),
                                           {bounded}, seed);
  EXPECT_TRUE(stream.ok());
  while (!stream->Done()) client->Apply(stream->Next());
  return client;
}

ResizerConfig TestResizerConfig() {
  ResizerConfig config;
  config.target_imbalance = 1.1;
  config.initial_epoch_size = 2000;
  config.warmup_epochs = 2;
  return config;
}

TEST(AdaptiveResizingIntegrationTest, ExpandsUntilTargetImbalanceOnZipf) {
  CacheCluster cluster(8, 100000);
  workload::PhaseSpec zipf;
  zipf.distribution = workload::Distribution::kZipfian;
  zipf.skew = 1.2;
  zipf.read_fraction = 1.0;
  auto client = RunElasticClient(&cluster, zipf, 2000000, TestResizerConfig(),
                                 /*seed=*/7);

  core::ElasticResizer* resizer = client->resizer();
  ASSERT_NE(resizer, nullptr);
  ASSERT_GT(resizer->epochs_completed(), 10u);
  // Starting from 2 cache-lines, CoT must have grown substantially ...
  CotCache* cache = dynamic_cast<CotCache*>(client->local_cache());
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->capacity(), 16u);
  EXPECT_GE(cache->tracker_capacity(), 2 * cache->capacity());
  // ... and the last epochs must meet the target imbalance (the smoothed
  // signal the resizer acts on; single-epoch ratios are noisy).
  const auto& history = resizer->history();
  double final_ic = history.back().smoothed_imbalance;
  EXPECT_LE(final_ic, 1.1 * 1.25)
      << "final imbalance far above target";
  // Steady state reached at some point.
  bool reached_steady = false;
  for (const auto& report : history) {
    if (report.phase == ResizerPhase::kSteady) reached_steady = true;
  }
  EXPECT_TRUE(reached_steady);
}

TEST(AdaptiveResizingIntegrationTest, CacheSizesOnlyMoveInPowersOfTwo) {
  CacheCluster cluster(8, 50000);
  workload::PhaseSpec zipf;
  zipf.distribution = workload::Distribution::kZipfian;
  zipf.skew = 1.2;
  auto client = RunElasticClient(&cluster, zipf, 200000, TestResizerConfig(),
                                 /*seed=*/11);
  for (const auto& report : client->resizer()->history()) {
    size_t c = report.cache_capacity;
    EXPECT_EQ(c & (c - 1), 0u) << "cache capacity " << c
                               << " is not a power of two";
  }
}

TEST(AdaptiveResizingIntegrationTest, ShrinksWhenWorkloadTurnsUniform) {
  CacheCluster cluster(8, 100000);
  auto client = std::make_unique<FrontendClient>(
      &cluster, std::make_unique<CotCache>(2, 4));
  ASSERT_TRUE(client->EnableElasticResizing(TestResizerConfig()).ok());
  CotCache* cache = dynamic_cast<CotCache*>(client->local_cache());

  // Phase 1: skewed — drive until the resizer settles in steady state (the
  // Figure 7 endpoint), bounded by an op budget.
  workload::PhaseSpec zipf;
  zipf.distribution = workload::Distribution::kZipfian;
  zipf.skew = 1.2;
  zipf.read_fraction = 1.0;
  zipf.num_ops = 0;  // unbounded; we stop on state
  auto zipf_stream = workload::OpStream::Create(100000, {zipf}, /*seed=*/13);
  ASSERT_TRUE(zipf_stream.ok());
  uint64_t budget = 5000000;
  size_t steady_since = 0;
  bool in_steady_run = false;
  while (budget-- > 0) {
    client->Apply(zipf_stream->Next());
    core::ElasticResizer* rz = client->resizer();
    if (rz->phase() == ResizerPhase::kSteady) {
      if (!in_steady_run) {
        in_steady_run = true;
        steady_since = rz->history().size();
      }
      if (rz->history().size() >= steady_since + 3) break;  // settled
    } else {
      in_steady_run = false;
    }
  }
  ASSERT_EQ(client->resizer()->phase(), ResizerPhase::kSteady)
      << "never reached steady state on the skewed phase";
  size_t peak_capacity = cache->capacity();
  ASSERT_GE(peak_capacity, 16u) << "never grew during the skewed phase";

  // Phase 2: uniform — the front-end cache is now worthless; CoT must
  // shrink (Figure 8) without violating the target imbalance.
  workload::PhaseSpec uniform;
  uniform.distribution = workload::Distribution::kUniform;
  uniform.read_fraction = 1.0;
  uniform.num_ops = 0;
  auto uniform_stream =
      workload::OpStream::Create(100000, {uniform}, /*seed=*/14);
  ASSERT_TRUE(uniform_stream.ok());
  for (uint64_t i = 0; i < 3000000; ++i) {
    client->Apply(uniform_stream->Next());
    if (cache->capacity() <= peak_capacity / 8) break;
  }
  EXPECT_LE(cache->capacity(), peak_capacity / 4)
      << "did not shrink after the workload went uniform";
  // Target imbalance still honoured at the end.
  double final_ic = client->resizer()->history().back().smoothed_imbalance;
  EXPECT_LE(final_ic, 1.1 * 1.25);
}

TEST(AdaptiveResizingIntegrationTest, UniformWorkloadStaysAtMinimumFootprint) {
  CacheCluster cluster(8, 100000);
  workload::PhaseSpec uniform;
  uniform.distribution = workload::Distribution::kUniform;
  uniform.read_fraction = 1.0;
  auto client = RunElasticClient(&cluster, uniform, 300000,
                                 TestResizerConfig(), /*seed=*/17);
  CotCache* cache = dynamic_cast<CotCache*>(client->local_cache());
  // Uniform traffic over 8 shards is already balanced: the cache must stay
  // negligible. (A few doublings while the imbalance EWMA converges on the
  // first noisy epochs are tolerated.)
  EXPECT_LE(cache->capacity(), 32u);
}

}  // namespace
}  // namespace cot
