#include "metrics/summary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace cot::metrics {
namespace {

TEST(SummaryTest, EmptyDefaults) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(SummaryTest, KnownSmallSample) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4, sample var 32/7.
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, Ci95UsesStudentTForSmallSamples) {
  Summary s;
  // n = 2, values 0 and 2: mean 1, sample stddev sqrt(2), sem 1.
  s.Add(0.0);
  s.Add(2.0);
  EXPECT_NEAR(s.ci95_half_width(), 12.706, 1e-9);  // t(df=1) * 1
}

TEST(SummaryTest, Ci95NormalApproxForLargeSamples) {
  Summary s;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) s.Add(rng.NextGaussian());
  double sem = s.stddev() / std::sqrt(10000.0);
  EXPECT_NEAR(s.ci95_half_width(), 1.96 * sem, 1e-9);
}

TEST(SummaryTest, MergeMatchesSequential) {
  Rng rng(9);
  Summary all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble() * 100;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryTest, MergeWithEmpty) {
  Summary a, b;
  a.Add(1.0);
  a.Add(3.0);
  Summary a_copy = a;
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.Merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SummaryTest, ResetClears) {
  Summary s;
  s.Add(4.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SummaryTest, NumericallyStableForLargeOffsets) {
  Summary s;
  // Welford should keep precision with a large common offset.
  for (int i = 0; i < 1000; ++i) s.Add(1e12 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
  EXPECT_NEAR(s.mean(), 1e12 + 0.5, 1.0);
}

}  // namespace
}  // namespace cot::metrics
