#include "metrics/event_tracer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cot::metrics {
namespace {

EpochBoundaryPayload Epoch(uint64_t epoch) {
  EpochBoundaryPayload p;
  p.epoch = epoch;
  p.accesses = 100 * (epoch + 1);
  p.backend_lookups = 10 * (epoch + 1);
  return p;
}

TEST(EventTracerTest, StartsEmpty) {
  EventTracer tracer(8, 3);
  EXPECT_EQ(tracer.client(), 3u);
  EXPECT_EQ(tracer.capacity(), 8u);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Events().empty());
  EXPECT_TRUE(tracer.ToJsonl().empty());
}

TEST(EventTracerTest, RecordsInOrderWithSequenceNumbers) {
  EventTracer tracer(8, 7);
  tracer.Record(11, Epoch(0));
  RetryEpisodePayload retry;
  retry.server = 2;
  retry.failed_attempts = 1;
  retry.delivered = true;
  tracer.Record(12, retry);

  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, TraceEventType::kEpochBoundary);
  EXPECT_EQ(events[0].client, 7u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].op_clock, 11u);
  EXPECT_EQ(events[1].type, TraceEventType::kRetryEpisode);
  EXPECT_EQ(events[1].seq, 1u);
  const auto& p = std::get<RetryEpisodePayload>(events[1].payload);
  EXPECT_EQ(p.server, 2u);
  EXPECT_TRUE(p.delivered);
}

TEST(EventTracerTest, RingDropsOldestWhenFull) {
  EventTracer tracer(4);
  for (uint64_t i = 0; i < 10; ++i) tracer.Record(i, Epoch(i));
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.recorded(), 10u);

  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // The four newest survive, oldest-first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i) << i;
    EXPECT_EQ(std::get<EpochBoundaryPayload>(events[i].payload).epoch, 6 + i);
  }
}

TEST(EventTracerTest, ZeroCapacityDropsEverything) {
  EventTracer tracer(0);
  tracer.Record(1, Epoch(0));
  tracer.Record(2, Epoch(1));
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(tracer.recorded(), 2u);
}

TEST(EventTracerTest, ClearKeepsSequenceCounting) {
  EventTracer tracer(8);
  tracer.Record(1, Epoch(0));
  tracer.Record(2, Epoch(1));
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  tracer.Record(3, Epoch(2));
  ASSERT_EQ(tracer.Events().size(), 1u);
  EXPECT_EQ(tracer.Events()[0].seq, 2u);
}

TEST(EventTracerTest, MergeOrdersByClientThenSeq) {
  EventTracer a(8, 1);
  EventTracer b(8, 0);
  a.Record(5, Epoch(0));
  a.Record(6, Epoch(1));
  b.Record(7, Epoch(2));

  std::vector<TraceEvent> merged = EventTracer::Merge({&a, nullptr, &b});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].client, 0u);
  EXPECT_EQ(merged[1].client, 1u);
  EXPECT_EQ(merged[1].seq, 0u);
  EXPECT_EQ(merged[2].client, 1u);
  EXPECT_EQ(merged[2].seq, 1u);
}

TEST(EventTracerTest, JsonCarriesTypeTagAndPayloadFields) {
  EventTracer tracer(8, 4);
  BreakerTransitionPayload p;
  p.server = 3;
  p.from = "closed";
  p.to = "open";
  p.consecutive_failures = 5;
  tracer.Record(42, p);

  std::string line = ToJson(tracer.Events()[0]);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"type\":\"breaker_transition\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"client\":4"), std::string::npos) << line;
  EXPECT_NE(line.find("\"op_clock\":42"), std::string::npos) << line;
  EXPECT_NE(line.find("\"from\":\"closed\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"to\":\"open\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"consecutive_failures\":5"), std::string::npos)
      << line;
}

TEST(EventTracerTest, ResizerDecisionJsonCarriesAlgorithmInputs) {
  EventTracer tracer(8);
  ResizerDecisionPayload p;
  p.epoch = 9;
  p.phase = "balance";
  p.action = "double_both";
  p.current_imbalance = 1.5;
  p.smoothed_imbalance = 1.25;
  p.target_imbalance = 1.1;
  p.alpha_c = 12.5;
  p.alpha_kc = 3.25;
  p.alpha_kc_signal = 4.5;
  p.alpha_target = 2.75;
  p.hit_rate = 0.5;
  p.cache_capacity = 64;
  p.tracker_capacity = 256;
  tracer.Record(1000, p);

  std::string line = ToJson(tracer.Events()[0]);
  for (const char* needle :
       {"\"phase\":\"balance\"", "\"action\":\"double_both\"", "\"ic\":1.5",
        "\"ic_smoothed\":1.25", "\"i_t\":1.1", "\"alpha_c\":12.5",
        "\"alpha_kc\":3.25", "\"alpha_kc_signal\":4.5", "\"alpha_t\":2.75",
        "\"hit_rate\":0.5", "\"cache\":64", "\"tracker\":256"}) {
    EXPECT_NE(line.find(needle), std::string::npos) << needle << " missing in "
                                                    << line;
  }
}

TEST(EventTracerTest, ToJsonlEmitsOneLinePerEvent) {
  EventTracer tracer(8);
  tracer.Record(1, Epoch(0));
  tracer.Record(2, Epoch(1));
  std::string jsonl = tracer.ToJsonl();
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  size_t lines = 0;
  for (char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 2u);
}

TEST(EventTracerTest, TypeNamesAreStable) {
  EXPECT_EQ(ToString(TraceEventType::kEpochBoundary), "epoch_boundary");
  EXPECT_EQ(ToString(TraceEventType::kResizerDecision), "resizer_decision");
  EXPECT_EQ(ToString(TraceEventType::kBreakerTransition),
            "breaker_transition");
  EXPECT_EQ(ToString(TraceEventType::kFaultActivation), "fault_activation");
  EXPECT_EQ(ToString(TraceEventType::kRetryEpisode), "retry_episode");
}

}  // namespace
}  // namespace cot::metrics
