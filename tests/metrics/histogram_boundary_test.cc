// Boundary regressions for Histogram::Percentile — the cases audited in the
// observability PR: empty histograms, single samples, exact p0/p100, values
// sitting exactly on bucket limits, and merged histograms whose min/max
// clamps come from different sources.

#include <gtest/gtest.h>

#include <vector>

#include "metrics/histogram.h"

namespace cot::metrics {
namespace {

TEST(HistogramBoundaryTest, EmptyHistogramReportsZeroEverywhere) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  EXPECT_EQ(h.Percentile(100.0), 0.0);
  EXPECT_TRUE(h.NonZeroBuckets().empty());
}

TEST(HistogramBoundaryTest, SingleSampleEveryPercentileIsTheSample) {
  Histogram h;
  h.Add(137);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 137.0) << "p=" << p;
  }
  EXPECT_EQ(h.min(), 137u);
  EXPECT_EQ(h.max(), 137u);
  EXPECT_EQ(h.mean(), 137.0);
}

TEST(HistogramBoundaryTest, P0IsMinAndP100IsMax) {
  Histogram h;
  for (uint64_t v : {3u, 10u, 100u, 5000u}) h.Add(v);
  EXPECT_EQ(h.Percentile(0.0), static_cast<double>(h.min()));
  EXPECT_EQ(h.Percentile(100.0), static_cast<double>(h.max()));
}

TEST(HistogramBoundaryTest, PercentilesClampedToObservedRange) {
  Histogram h;
  // Two values deep inside the same wide bucket: interpolation must never
  // report below the observed min or above the observed max.
  h.Add(1000);
  h.Add(1001);
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    double v = h.Percentile(p);
    EXPECT_GE(v, 1000.0) << "p=" << p;
    EXPECT_LE(v, 1001.0) << "p=" << p;
  }
}

TEST(HistogramBoundaryTest, PercentileIsMonotoneInP) {
  Histogram h;
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 1000; ++i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    h.Add((seed >> 33) % 100000);
  }
  double prev = h.Percentile(0.0);
  for (double p = 1.0; p <= 100.0; p += 1.0) {
    double cur = h.Percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(HistogramBoundaryTest, ValueOnExactBucketLimitStaysInRange) {
  // 1 and 2 are exact bucket limits of the RocksDB-style table; make sure
  // landing exactly on a limit doesn't leak into the neighbouring bucket's
  // interpolation range.
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Add(2);
  EXPECT_EQ(h.min(), 2u);
  EXPECT_EQ(h.max(), 2u);
  for (double p : {0.0, 50.0, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 2.0) << "p=" << p;
  }
}

TEST(HistogramBoundaryTest, MedianOfUniformRampIsNearCenter) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Add(v);
  // Bucketed median can't be exact, but must land within the bucket
  // resolution (~50% relative) of the true median 500.
  EXPECT_GT(h.Median(), 250.0);
  EXPECT_LT(h.Median(), 800.0);
  EXPECT_EQ(h.Percentile(100.0), 1000.0);
  EXPECT_EQ(h.Percentile(0.0), 1.0);
}

TEST(HistogramBoundaryTest, MergedHistogramClampsToCombinedMinMax) {
  Histogram low;
  low.Add(5);
  low.Add(7);
  Histogram high;
  high.Add(90000);

  Histogram merged = low;
  merged.Merge(high);
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.min(), 5u);
  EXPECT_EQ(merged.max(), 90000u);
  EXPECT_EQ(merged.Percentile(0.0), 5.0);
  EXPECT_EQ(merged.Percentile(100.0), 90000.0);
  // Merging into an empty histogram adopts the source's extrema.
  Histogram empty;
  empty.Merge(merged);
  EXPECT_EQ(empty.min(), 5u);
  EXPECT_EQ(empty.max(), 90000u);
}

TEST(HistogramBoundaryTest, MergeWithEmptyIsIdentity) {
  Histogram h;
  h.Add(42);
  Histogram empty;
  h.Merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.Median(), 42.0);
}

TEST(HistogramBoundaryTest, NonZeroBucketsAscendingAndCountsMatch) {
  Histogram h;
  for (uint64_t v : {1u, 1u, 10u, 100u, 100u, 100u}) h.Add(v);
  auto buckets = h.NonZeroBuckets();
  ASSERT_FALSE(buckets.empty());
  uint64_t total = 0;
  uint64_t prev_upper = 0;
  for (const auto& [upper, count] : buckets) {
    EXPECT_GT(upper, prev_upper);
    EXPECT_GT(count, 0u);
    prev_upper = upper;
    total += count;
  }
  EXPECT_EQ(total, h.count());
}

TEST(HistogramBoundaryTest, ResetForgetsExtrema) {
  Histogram h;
  h.Add(1);
  h.Add(1000000);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.Add(7);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_EQ(h.Median(), 7.0);
}

}  // namespace
}  // namespace cot::metrics
