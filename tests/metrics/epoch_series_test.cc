#include "metrics/epoch_series.h"

#include <gtest/gtest.h>

namespace cot::metrics {
namespace {

TEST(EpochSeriesTest, StartsEmpty) {
  EpochSeries s({"a", "b"});
  EXPECT_EQ(s.rows(), 0u);
  EXPECT_EQ(s.columns(), 2u);
  EXPECT_EQ(s.column_names()[0], "a");
}

TEST(EpochSeriesTest, AppendAndAccess) {
  EpochSeries s({"cache", "tracker", "ic"});
  s.Append({2, 4, 5.0});
  s.Append({4, 8, 2.5});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.At(1, 2), 2.5);
}

TEST(EpochSeriesTest, ColumnByIndexAndName) {
  EpochSeries s({"x", "y"});
  s.Append({1, 10});
  s.Append({2, 20});
  s.Append({3, 30});
  EXPECT_EQ(s.Column(0), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(s.Column("y"), (std::vector<double>{10, 20, 30}));
}

TEST(EpochSeriesTest, CsvFormat) {
  EpochSeries s({"x"});
  s.Append({1.5});
  std::string csv = s.ToCsv();
  EXPECT_EQ(csv, "epoch,x\n0,1.5\n");
}

TEST(EpochSeriesTest, TableContainsHeaderAndValues) {
  EpochSeries s({"size"});
  s.Append({64});
  std::string table = s.ToTable();
  EXPECT_NE(table.find("epoch"), std::string::npos);
  EXPECT_NE(table.find("size"), std::string::npos);
  EXPECT_NE(table.find("64"), std::string::npos);
}

TEST(EpochSeriesTest, TableElidesMiddleRows) {
  EpochSeries s({"v"});
  for (int i = 0; i < 100; ++i) s.Append({static_cast<double>(i)});
  std::string table = s.ToTable(10);
  EXPECT_NE(table.find("..."), std::string::npos);
  // First and last rows survive.
  EXPECT_NE(table.find("    0"), std::string::npos);
  EXPECT_NE(table.find("   99"), std::string::npos);
}

}  // namespace
}  // namespace cot::metrics
