#include "metrics/imbalance.h"

#include <gtest/gtest.h>

namespace cot::metrics {
namespace {

TEST(LoadImbalanceTest, EmptyIsBalanced) {
  EXPECT_DOUBLE_EQ(LoadImbalance({}), 1.0);
}

TEST(LoadImbalanceTest, AllZeroIsBalanced) {
  EXPECT_DOUBLE_EQ(LoadImbalance({0, 0, 0}), 1.0);
}

TEST(LoadImbalanceTest, UniformLoadIsOne) {
  EXPECT_DOUBLE_EQ(LoadImbalance({100, 100, 100, 100}), 1.0);
}

TEST(LoadImbalanceTest, MaxOverMin) {
  EXPECT_DOUBLE_EQ(LoadImbalance({100, 500}), 5.0);
  EXPECT_DOUBLE_EQ(LoadImbalance({50, 100, 200}), 4.0);
}

TEST(LoadImbalanceTest, ZeroMinClampedToOne) {
  EXPECT_DOUBLE_EQ(LoadImbalance({0, 250}), 250.0);
}

TEST(LoadImbalanceTest, SingleServer) {
  EXPECT_DOUBLE_EQ(LoadImbalance({42}), 1.0);
}

TEST(LoadImbalanceTest, PaperExampleFromNotationSection) {
  // "a maximum of 5K key lookups ... a minimum of 1K ... then I_c = 5".
  EXPECT_DOUBLE_EQ(LoadImbalance({5000, 1000, 3000}), 5.0);
}

TEST(LoadCoefficientOfVariationTest, UniformIsZero) {
  EXPECT_DOUBLE_EQ(LoadCoefficientOfVariation({7, 7, 7}), 0.0);
  EXPECT_DOUBLE_EQ(LoadCoefficientOfVariation({}), 0.0);
  EXPECT_DOUBLE_EQ(LoadCoefficientOfVariation({0, 0}), 0.0);
}

TEST(LoadCoefficientOfVariationTest, KnownValue) {
  // loads {1, 3}: mean 2, population stddev 1 -> cv 0.5.
  EXPECT_DOUBLE_EQ(LoadCoefficientOfVariation({1, 3}), 0.5);
}

TEST(TotalLoadTest, Sums) {
  EXPECT_EQ(TotalLoad({1, 2, 3}), 6u);
  EXPECT_EQ(TotalLoad({}), 0u);
}

TEST(RelativeServerLoadTest, RatioOfTotals) {
  EXPECT_DOUBLE_EQ(RelativeServerLoad({50, 50}, {100, 100}), 0.5);
  EXPECT_DOUBLE_EQ(RelativeServerLoad({100}, {0}), 1.0);
}

TEST(JainFairnessIndexTest, PerfectBalanceIsOne) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({10, 10, 10, 10}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0, 0}), 1.0);
}

TEST(JainFairnessIndexTest, SingleHotServerIsOneOverN) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({100, 0, 0, 0}), 0.25);
}

TEST(JainFairnessIndexTest, KnownIntermediateValue) {
  // x = {1, 3}: (4)^2 / (2 * 10) = 0.8.
  EXPECT_DOUBLE_EQ(JainFairnessIndex({1, 3}), 0.8);
}

TEST(JainFairnessIndexTest, ScaleInvariant) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({1, 2, 3}),
                   JainFairnessIndex({100, 200, 300}));
}

}  // namespace
}  // namespace cot::metrics
