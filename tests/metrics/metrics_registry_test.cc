#include "metrics/metrics_registry.h"

#include <gtest/gtest.h>

#include <string>

namespace cot::metrics {
namespace {

TEST(MetricsRegistryTest, CountersIncrementAndSet) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("missing"), 0u);

  reg.IncrementCounter("ops");
  reg.IncrementCounter("ops", 4);
  EXPECT_EQ(reg.counter("ops"), 5u);

  reg.SetCounter("ops", 2);
  EXPECT_EQ(reg.counter("ops"), 2u);
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistryTest, GaugesLastWriteWins) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.gauge("missing"), 0.0);
  reg.SetGauge("imbalance", 1.5);
  reg.SetGauge("imbalance", 1.2);
  EXPECT_EQ(reg.gauge("imbalance"), 1.2);
}

TEST(MetricsRegistryTest, HistogramCreatedOnFirstUse) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindHistogram("lat"), nullptr);
  reg.histogram("lat").Add(10);
  reg.histogram("lat").Add(20);
  const Histogram* h = reg.FindHistogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
}

TEST(MetricsRegistryTest, MergeAddsCountersOverwritesGaugesMergesHistograms) {
  MetricsRegistry a;
  a.SetCounter("ops", 10);
  a.SetCounter("only_a", 1);
  a.SetGauge("g", 1.0);
  a.histogram("lat").Add(5);

  MetricsRegistry b;
  b.SetCounter("ops", 7);
  b.SetCounter("only_b", 2);
  b.SetGauge("g", 3.0);
  b.histogram("lat").Add(50);
  b.histogram("extra").Add(1);

  a.Merge(b);
  EXPECT_EQ(a.counter("ops"), 17u);
  EXPECT_EQ(a.counter("only_a"), 1u);
  EXPECT_EQ(a.counter("only_b"), 2u);
  EXPECT_EQ(a.gauge("g"), 3.0);
  EXPECT_EQ(a.FindHistogram("lat")->count(), 2u);
  EXPECT_EQ(a.FindHistogram("extra")->count(), 1u);
}

TEST(MetricsRegistryTest, ClearResets) {
  MetricsRegistry reg;
  reg.SetCounter("c", 1);
  reg.SetGauge("g", 1.0);
  reg.histogram("h").Add(1);
  reg.Clear();
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("c"), 0u);
}

TEST(MetricsRegistryTest, JsonIsDeterministicAndSorted) {
  MetricsRegistry a;
  // Insert in reverse-sorted order; the map re-sorts.
  a.SetCounter("z", 26);
  a.SetCounter("a", 1);
  a.SetGauge("ratio", 0.25);
  a.histogram("lat").Add(10);

  MetricsRegistry b;
  b.histogram("lat").Add(10);
  b.SetGauge("ratio", 0.25);
  b.SetCounter("a", 1);
  b.SetCounter("z", 26);

  std::string ja = a.ToJson();
  EXPECT_EQ(ja, b.ToJson());
  EXPECT_LT(ja.find("\"a\""), ja.find("\"z\""));
  EXPECT_NE(ja.find("\"counters\""), std::string::npos);
  EXPECT_NE(ja.find("\"gauges\""), std::string::npos);
  EXPECT_NE(ja.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, JsonHistogramCarriesSummaryAndBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  std::string json = reg.ToJson();
  for (const char* needle : {"\"count\": 100", "\"min\": 1", "\"max\": 100",
                             "\"p50\":", "\"p95\":", "\"p99\":",
                             "\"buckets\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
}

TEST(MetricsRegistryTest, EmptyRegistryStillValidJsonShape) {
  MetricsRegistry reg;
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

}  // namespace
}  // namespace cot::metrics
