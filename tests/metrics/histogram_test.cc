#include "metrics/histogram.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace cot::metrics {
namespace {

TEST(HistogramTest, EmptyDefaults) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 100.0);
}

TEST(HistogramTest, MeanMinMaxExact) {
  Histogram h;
  for (uint64_t v : {10ULL, 20ULL, 30ULL, 40ULL}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) h.Add(rng.NextBelow(100000));
  double prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(h.Percentile(100), static_cast<double>(h.max()));
}

TEST(HistogramTest, MedianOfUniformRoughlyCentred) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 100000; ++i) h.Add(rng.NextBelow(1000));
  // Log buckets give coarse resolution at this magnitude; allow 25%.
  EXPECT_NEAR(h.Median(), 500.0, 125.0);
}

TEST(HistogramTest, ZeroValues) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Add(0);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, VeryLargeValues) {
  Histogram h;
  h.Add(1ULL << 60);
  h.Add((1ULL << 60) + 12345);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.Percentile(100), static_cast<double>(1ULL << 60) * 0.99);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Add(10);
  for (int i = 0; i < 100; ++i) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_DOUBLE_EQ(a.mean(), 505.0);
}

TEST(HistogramTest, MergeWithEmptyIsNoop) {
  Histogram a, b;
  a.Add(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.min(), 5u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=2"), std::string::npos);
}

}  // namespace
}  // namespace cot::metrics
