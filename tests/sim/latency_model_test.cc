#include "sim/latency_model.h"

#include <gtest/gtest.h>

namespace cot::sim {
namespace {

TEST(LatencyModelTest, BaseServiceWithNoPressure) {
  LatencyModel model;
  // Fair share, empty queue: exactly the base service time.
  EXPECT_DOUBLE_EQ(model.ServiceTime(/*backlog=*/0.0, /*share=*/0.125,
                                     /*num_servers=*/8.0),
                   model.base_service_us);
}

TEST(LatencyModelTest, BacklogBelowKneeIsFree) {
  LatencyModel model;
  EXPECT_DOUBLE_EQ(model.ServiceTime(model.thrash_knee, 0.125, 8.0),
                   model.base_service_us);
}

TEST(LatencyModelTest, ThrashGrowsLinearlyBeyondKnee) {
  LatencyModel model;
  double at_knee = model.ServiceTime(model.thrash_knee, 0.125, 8.0);
  double plus2 = model.ServiceTime(model.thrash_knee + 2.0, 0.125, 8.0);
  double plus4 = model.ServiceTime(model.thrash_knee + 4.0, 0.125, 8.0);
  EXPECT_GT(plus2, at_knee);
  EXPECT_NEAR(plus4 - plus2, plus2 - at_knee, 1e-9);  // linear
}

TEST(LatencyModelTest, FairShareCarriesNoPenalty) {
  LatencyModel model;
  // Anything at or below 1/n is penalty-free.
  EXPECT_DOUBLE_EQ(model.ServiceTime(0.0, 0.05, 8.0),
                   model.base_service_us);
}

TEST(LatencyModelTest, ExcessShareInflatesService) {
  LatencyModel model;
  double fair = model.ServiceTime(0.0, 0.125, 8.0);
  double hot = model.ServiceTime(0.0, 0.375, 8.0);  // 3x fair share
  EXPECT_DOUBLE_EQ(hot,
                   fair * (1.0 + model.load_share_penalty * 2.0));
}

TEST(LatencyModelTest, EffectsCompose) {
  LatencyModel model;
  double both = model.ServiceTime(model.thrash_knee + 10.0, 0.375, 8.0);
  double thrash_only = model.ServiceTime(model.thrash_knee + 10.0, 0.125, 8.0);
  double share_only = model.ServiceTime(0.0, 0.375, 8.0);
  EXPECT_NEAR(both * model.base_service_us, thrash_only * share_only, 1e-6);
}

TEST(LatencyModelTest, DisablingKnobsRestoresBase) {
  LatencyModel model;
  model.thrash_coeff = 0.0;
  model.load_share_penalty = 0.0;
  EXPECT_DOUBLE_EQ(model.ServiceTime(100.0, 1.0, 8.0),
                   model.base_service_us);
}

}  // namespace
}  // namespace cot::sim
