#include "sim/open_loop_sim.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "cache/lru_cache.h"
#include "workload/op_stream.h"

namespace cot::sim {
namespace {

/// Writes a small deterministic zipfian trace to a temp file and opens it
/// as an mmap view, exactly like the cot_trace_gen --binary / cot_run
/// --open-loop pipeline.
class OpenLoopSimTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kOps = 40000;
  static constexpr uint64_t kKeys = 5000;

  void SetUp() override {
    // Unique per test process: ctest -j runs fixture instances concurrently,
    // and sharing one path means one process truncates the file another has
    // mmapped (SIGBUS).
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + "/open_loop_sim_" +
            std::to_string(::getpid()) + "_" + info->name() + ".bin";
    workload::PhaseSpec phase;
    phase.distribution = workload::Distribution::kZipfian;
    phase.skew = 0.99;
    phase.read_fraction = 0.99;
    phase.num_ops = kOps;
    auto stream = workload::OpStream::Create(kKeys, {phase}, 7);
    ASSERT_TRUE(stream.ok());
    workload::BinaryTraceWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    while (!stream->Done()) ASSERT_TRUE(writer.Append(stream->Next()).ok());
    ASSERT_TRUE(writer.Finish().ok());
    auto view = workload::BinaryTraceView::Open(path_);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    trace_ = std::make_unique<workload::BinaryTraceView>(
        std::move(view).value());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  static cluster::CacheFactory LruFactory() {
    return [](uint32_t) { return std::make_unique<cache::LruCache>(256); };
  }

  static OpenLoopConfig BaseConfig(double rate) {
    OpenLoopConfig config;
    config.num_servers = 4;
    config.logical_clients = 64;
    config.arrival_rate_per_sec = rate;
    config.seed = 11;
    return config;
  }

  static OpenLoopConfig Defended(double rate) {
    OpenLoopConfig config = BaseConfig(rate);
    config.overload.max_queue_depth = 64;
    config.overload.deadline_us = 2000;
    config.retry_budget_ratio = 0.1;
    return config;
  }

  static void CheckIdentity(const OpenLoopResult& r) {
    EXPECT_EQ(r.offered, r.completed + r.shed + r.failed);
    // Decomposition: every op finally counted shed was first shed at a
    // shard (queue_full or deadline) and then *not* rescued by a storage
    // failover. shed_storage and budget denials are subsets of shed.
    EXPECT_EQ(r.shed,
              r.shed_queue_full + r.shed_deadline - r.degraded_failovers);
    EXPECT_EQ(r.failed, 0u);  // no fault injection in open loop
  }

  std::string path_;
  std::unique_ptr<workload::BinaryTraceView> trace_;
};

TEST_F(OpenLoopSimTest, RejectsInvalidConfig) {
  OpenLoopConfig config = BaseConfig(1000.0);
  config.num_servers = 0;
  EXPECT_FALSE(RunOpenLoop(config, *trace_, LruFactory(), LatencyModel{}).ok());
  config = BaseConfig(0.0);
  EXPECT_FALSE(RunOpenLoop(config, *trace_, LruFactory(), LatencyModel{}).ok());
  config = BaseConfig(1000.0);
  config.num_threads = 0;
  EXPECT_FALSE(RunOpenLoop(config, *trace_, LruFactory(), LatencyModel{}).ok());
}

TEST_F(OpenLoopSimTest, BelowKneeEverythingCompletesWithinDeadline) {
  // 4 shards at ~6.7k/s each; 5k/s offered is far below the knee even
  // with every read missing locally at the start.
  auto result =
      RunOpenLoop(BaseConfig(5000.0), *trace_, LruFactory(), LatencyModel{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  CheckIdentity(*result);
  EXPECT_EQ(result->offered, kOps);
  EXPECT_EQ(result->completed, kOps);
  EXPECT_EQ(result->shed, 0u);
  // Virtually everything meets a 5 ms SLO this far below saturation.
  EXPECT_GT(result->goodput, kOps * 99 / 100);
  EXPECT_GT(result->local_hits, 0u);
  EXPECT_GT(result->metrics.histogram("latency_us/backend").count(), 0u);
}

TEST_F(OpenLoopSimTest, IdentityHoldsAtEveryThreadCountOnOneTraceFile) {
  // The acceptance-criteria check: byte-identical trace, 1/2/4 threads,
  // offered = completed + shed + failed exactly — and offered totals match
  // across thread counts (partitioning loses nothing).
  for (double rate : {5000.0, 60000.0}) {
    uint64_t offered_at_one = 0;
    for (uint32_t threads : {1u, 2u, 4u}) {
      OpenLoopConfig config = Defended(rate);
      config.num_threads = threads;
      auto result = RunOpenLoop(config, *trace_, LruFactory(), LatencyModel{});
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      CheckIdentity(*result);
      EXPECT_EQ(result->offered, kOps)
          << "rate " << rate << " threads " << threads;
      if (threads == 1) {
        offered_at_one = result->offered;
      } else {
        EXPECT_EQ(result->offered, offered_at_one);
      }
    }
  }
}

TEST_F(OpenLoopSimTest, SingleThreadReplayIsDeterministic) {
  OpenLoopConfig config = Defended(60000.0);
  auto a = RunOpenLoop(config, *trace_, LruFactory(), LatencyModel{});
  auto b = RunOpenLoop(config, *trace_, LruFactory(), LatencyModel{});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->completed, b->completed);
  EXPECT_EQ(a->shed, b->shed);
  EXPECT_EQ(a->goodput, b->goodput);
  EXPECT_EQ(a->shed_queue_full, b->shed_queue_full);
  EXPECT_EQ(a->shed_deadline, b->shed_deadline);
  EXPECT_EQ(a->degraded_failovers, b->degraded_failovers);
  EXPECT_EQ(a->invalidation_bypass, b->invalidation_bypass);
  EXPECT_DOUBLE_EQ(a->makespan_us, b->makespan_us);
}

TEST_F(OpenLoopSimTest, NoDefenseLatencyExplodesPastTheKnee) {
  // Unbounded queues at 3x capacity: queueing delay grows without bound,
  // completions blow the SLO, goodput collapses to the local-hit floor.
  auto result =
      RunOpenLoop(BaseConfig(60000.0), *trace_, LruFactory(), LatencyModel{});
  ASSERT_TRUE(result.ok());
  CheckIdentity(*result);
  EXPECT_EQ(result->completed, kOps);  // nothing shed...
  EXPECT_EQ(result->shed, 0u);
  // ...but almost nothing that touched a shard met its deadline.
  EXPECT_LT(result->goodput, result->local_hits + kOps / 10);
  EXPECT_GT(result->mean_latency_us, 10000.0);
}

TEST_F(OpenLoopSimTest, DefensesKeepGoodputNearCapacityPastTheKnee) {
  // Cacheless clients so the knee is pure queueing: 4 shards sustain
  // ~26.7k/s, offered 60k/s. Without defenses the backlog grows ~33k
  // ops/s and queueing delay passes the 5 ms SLO within milliseconds —
  // goodput collapses to the first handful of arrivals. With bounded
  // queues + deadline admission the survivors stay inside the SLO and
  // goodput tracks capacity.
  cluster::CacheFactory cacheless =
      [](uint32_t) -> std::unique_ptr<cache::Cache> { return nullptr; };
  auto defended =
      RunOpenLoop(Defended(60000.0), *trace_, cacheless, LatencyModel{});
  auto undefended =
      RunOpenLoop(BaseConfig(60000.0), *trace_, cacheless, LatencyModel{});
  ASSERT_TRUE(defended.ok() && undefended.ok());
  CheckIdentity(*defended);
  CheckIdentity(*undefended);
  EXPECT_GT(defended->shed, 0u);  // admission control is actually working
  // Bounded queues keep survivors inside the SLO: defended goodput beats
  // the no-defense collapse by a wide margin.
  EXPECT_GT(defended->goodput, undefended->goodput * 2);
  // Near capacity: goodput rate within 35% of the 4-shard service rate
  // (makespans differ, so compare rates not counts).
  EXPECT_GT(defended->goodput_rate_per_sec, 26667.0 * 0.65);
  // And survivors' latency is bounded by queue depth, not arrival rate.
  EXPECT_LT(defended->metrics.histogram("latency_us/backend").P99(), 5000.0);
}

TEST_F(OpenLoopSimTest, RetryBudgetFundsStorageFailovers) {
  OpenLoopConfig with_budget = Defended(60000.0);
  OpenLoopConfig without = Defended(60000.0);
  without.retry_budget_ratio = 0.0;
  auto a = RunOpenLoop(with_budget, *trace_, LruFactory(), LatencyModel{});
  auto b = RunOpenLoop(without, *trace_, LruFactory(), LatencyModel{});
  ASSERT_TRUE(a.ok() && b.ok());
  CheckIdentity(*a);
  CheckIdentity(*b);
  EXPECT_GT(a->degraded_failovers, 0u);
  EXPECT_EQ(b->degraded_failovers, 0u);  // no budget, no tier-2 rescue
  EXPECT_EQ(b->retries_suppressed, 0u);
  // The budget caps failovers at ~ratio * fresh + burst.
  EXPECT_LE(a->degraded_failovers + a->shed_storage,
            static_cast<uint64_t>(0.1 * static_cast<double>(a->offered)) +
                17);
  // Rescued reads strictly improve completions.
  EXPECT_GT(a->completed, b->completed);
}

TEST_F(OpenLoopSimTest, InvalidationsBypassButAreNeverDropped) {
  OpenLoopConfig config = Defended(60000.0);
  config.trace_capacity = 4096;
  auto result = RunOpenLoop(config, *trace_, LruFactory(), LatencyModel{});
  ASSERT_TRUE(result.ok());
  CheckIdentity(*result);
  // Under 3x overload the shard queues are pressured, so some
  // invalidations must have taken the bypass...
  EXPECT_GT(result->invalidation_bypass, 0u);
  // ...and every update in the trace completed regardless: an update is
  // never shed (shedding one would trade overload for stale reads).
  uint64_t updates = 0;
  for (uint64_t i = 0; i < trace_->size(); ++i) {
    if ((*trace_)[i].type == workload::OpType::kUpdate) ++updates;
  }
  EXPECT_EQ(result->aggregate.updates, updates);
  // Bypass events are traced for forensics.
  bool saw_bypass_event = false;
  for (const auto& e : result->trace) {
    if (e.type != metrics::TraceEventType::kLoadShed) continue;
    const auto& p = std::get<metrics::LoadShedPayload>(e.payload);
    if (p.reason == "invalidation_bypass") saw_bypass_event = true;
  }
  EXPECT_TRUE(saw_bypass_event);
}

TEST_F(OpenLoopSimTest, FrontEndCachingMovesTheKnee) {
  // The paper's core claim transposed to overload: CoT-style front-end
  // caching absorbs the skewed head, so the same cluster sustains a rate
  // that floors a cacheless deployment.
  const double rate = 20000.0;
  OpenLoopConfig config = Defended(rate);
  auto cached = RunOpenLoop(config, *trace_, LruFactory(), LatencyModel{});
  auto cacheless = RunOpenLoop(
      config, *trace_, [](uint32_t) -> std::unique_ptr<cache::Cache> {
        return nullptr;
      },
      LatencyModel{});
  ASSERT_TRUE(cached.ok() && cacheless.ok());
  CheckIdentity(*cached);
  CheckIdentity(*cacheless);
  // 20k/s offered vs ~26.7k/s raw shard capacity: fine without caching
  // only if nothing else is wrong, but the skewed head concentrates load
  // on one shard and sheds hard; the cached run stays clean.
  EXPECT_LT(cached->shed, cacheless->shed / 4 + 1);
  EXPECT_GT(cached->goodput, cacheless->goodput);
}

TEST_F(OpenLoopSimTest, MetricsExportCarriesTheIdentityCounters) {
  auto result =
      RunOpenLoop(Defended(60000.0), *trace_, LruFactory(), LatencyModel{});
  ASSERT_TRUE(result.ok());
  const std::string json = result->metrics.ToJson();
  EXPECT_NE(json.find("openloop/offered"), std::string::npos);
  EXPECT_NE(json.find("openloop/goodput"), std::string::npos);
  EXPECT_NE(json.find("queue_wait_us/backend"), std::string::npos);
}

}  // namespace
}  // namespace cot::sim
