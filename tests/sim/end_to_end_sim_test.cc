#include "sim/end_to_end_sim.h"

#include <gtest/gtest.h>

#include "cache/lru_cache.h"
#include "core/cot_cache.h"

namespace cot::sim {
namespace {

cluster::ExperimentConfig Config(workload::Distribution dist, double skew,
                                 uint32_t clients, uint64_t ops) {
  cluster::ExperimentConfig config;
  config.num_servers = 8;
  config.key_space = 20000;
  config.num_clients = clients;
  config.total_ops = ops;
  workload::PhaseSpec phase;
  phase.distribution = dist;
  phase.skew = skew;
  phase.read_fraction = 0.998;
  config.phases = {phase};
  return config;
}

TEST(EndToEndSimTest, RejectsInvalidConfig) {
  cluster::ExperimentConfig config;
  config.num_clients = 0;
  EXPECT_FALSE(RunEndToEnd(config, nullptr, LatencyModel{}).ok());
}

TEST(EndToEndSimTest, MakespanPositiveAndLatenciesRecorded) {
  auto result = RunEndToEnd(
      Config(workload::Distribution::kUniform, 0, 4, 20000), nullptr,
      LatencyModel{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->makespan_us, 0.0);
  EXPECT_EQ(result->latency_us.count(), 20000u);
  EXPECT_GE(result->mean_latency_us, LatencyModel{}.rtt_us);
}

TEST(EndToEndSimTest, LogicalCountsMatchPlainExperiment) {
  auto config = Config(workload::Distribution::kZipfian, 0.99, 4, 20000);
  auto factory = [](uint32_t) { return std::make_unique<cache::LruCache>(64); };
  auto timed = RunEndToEnd(config, factory, LatencyModel{});
  auto plain = cluster::RunExperiment(config, factory);
  ASSERT_TRUE(timed.ok() && plain.ok());
  // Same state machine underneath: hit counts agree exactly.
  EXPECT_EQ(timed->logical.aggregate.local_hits,
            plain->aggregate.local_hits);
  EXPECT_EQ(timed->logical.per_server_lookups, plain->per_server_lookups);
}

TEST(EndToEndSimTest, SkewInflatesRuntimeUnderThrashing) {
  // The Figure 5 effect: with 20 concurrent clients and no front-end cache,
  // a skewed workload takes multiples of the uniform runtime because the
  // hottest shard queues and thrashes.
  LatencyModel model;
  auto uniform = RunEndToEnd(
      Config(workload::Distribution::kUniform, 0, 20, 40000), nullptr, model);
  auto zipf = RunEndToEnd(
      Config(workload::Distribution::kZipfian, 1.2, 20, 40000), nullptr,
      model);
  ASSERT_TRUE(uniform.ok() && zipf.ok());
  EXPECT_GT(zipf->makespan_us, 1.5 * uniform->makespan_us);
  EXPECT_GT(zipf->max_backlog, uniform->max_backlog);
}

TEST(EndToEndSimTest, FrontendCacheCutsSkewedRuntime) {
  LatencyModel model;
  auto config = Config(workload::Distribution::kZipfian, 1.2, 20, 40000);
  auto no_cache = RunEndToEnd(config, nullptr, model);
  auto cot = RunEndToEnd(
      config,
      [](uint32_t) { return std::make_unique<core::CotCache>(512, 2048); },
      model);
  ASSERT_TRUE(no_cache.ok() && cot.ok());
  EXPECT_LT(cot->makespan_us, 0.6 * no_cache->makespan_us);
}

TEST(EndToEndSimTest, SingleClientSeesNoThrashing) {
  // Figure 6's setting: one client cannot queue against itself beyond one
  // request, so the backlog stays ~0.
  LatencyModel model;
  auto result = RunEndToEnd(
      Config(workload::Distribution::kZipfian, 1.2, 1, 5000), nullptr, model);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->max_backlog, 1.0);
}

TEST(EndToEndSimTest, UniformCacheOverheadIsNegligible) {
  // Figure 5's uniform columns: with or without a front-end cache the
  // runtime is statistically the same (the cache just never hits).
  LatencyModel model;
  auto config = Config(workload::Distribution::kUniform, 0, 20, 40000);
  auto no_cache = RunEndToEnd(config, nullptr, model);
  auto lru = RunEndToEnd(
      config,
      [](uint32_t) { return std::make_unique<cache::LruCache>(512); },
      model);
  ASSERT_TRUE(no_cache.ok() && lru.ok());
  EXPECT_NEAR(lru->makespan_us / no_cache->makespan_us, 1.0, 0.1);
}

TEST(EndToEndSimTest, DeterministicForFixedSeed) {
  auto config = Config(workload::Distribution::kZipfian, 0.99, 8, 20000);
  auto r1 = RunEndToEnd(config, nullptr, LatencyModel{});
  auto r2 = RunEndToEnd(config, nullptr, LatencyModel{});
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1->makespan_us, r2->makespan_us);
}

}  // namespace
}  // namespace cot::sim
