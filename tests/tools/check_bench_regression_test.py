#!/usr/bin/env python3
"""Unit tests for tools/check_bench_regression.py.

Runs the script as a subprocess (the way CI and run_all_benches.sh invoke
it) against synthetic google-benchmark JSON files and checks the exit
codes and warning output, in particular the warn-not-fail behavior for
benchmarks present in only one of the two files.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "tools",
    "check_bench_regression.py")


def bench_file(dirname, fname, entries):
    """Writes a single-run google-benchmark JSON file.

    entries: {name -> real_time ns}, recorded as plain iteration runs.
    """
    path = os.path.join(dirname, fname)
    run = {
        "benchmarks": [
            {"name": n, "run_type": "iteration", "real_time": t,
             "cpu_time": t, "time_unit": "ns"}
            for n, t in entries.items()
        ]
    }
    with open(path, "w") as f:
        json.dump(run, f)
    return path


def run_check(*argv):
    proc = subprocess.run(
        [sys.executable, SCRIPT, *argv],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.dir = self.tmp.name

    def test_no_regression_passes(self):
        base = bench_file(self.dir, "base.json", {"BM_A": 100.0, "BM_B": 50.0})
        fresh = bench_file(self.dir, "fresh.json", {"BM_A": 110.0, "BM_B": 40.0})
        code, out = run_check(base, fresh, "--threshold", "1.25")
        self.assertEqual(code, 0, out)
        self.assertIn("OK:", out)

    def test_regression_fails(self):
        base = bench_file(self.dir, "base.json", {"BM_A": 100.0})
        fresh = bench_file(self.dir, "fresh.json", {"BM_A": 200.0})
        code, out = run_check(base, fresh, "--threshold", "1.25")
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSED", out)

    def test_new_bench_only_in_fresh_warns_not_fails(self):
        # A brand-new bench (no baseline entry yet) must be able to land.
        base = bench_file(self.dir, "base.json", {"BM_A": 100.0})
        fresh = bench_file(self.dir, "fresh.json",
                           {"BM_A": 100.0, "BM_New": 77.0})
        code, out = run_check(base, fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("warning:", out)
        self.assertIn("BM_New", out)

    def test_retired_bench_only_in_baseline_warns_not_fails(self):
        base = bench_file(self.dir, "base.json",
                          {"BM_A": 100.0, "BM_Old": 12.0})
        fresh = bench_file(self.dir, "fresh.json", {"BM_A": 100.0})
        code, out = run_check(base, fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("warning:", out)
        self.assertIn("BM_Old", out)

    def test_disjoint_sets_warn_and_pass(self):
        # Entirely disjoint name sets: nothing to compare, exit 0 with a
        # warning instead of the old hard error.
        base = bench_file(self.dir, "base.json", {"BM_Old": 10.0})
        fresh = bench_file(self.dir, "fresh.json", {"BM_New": 20.0})
        code, out = run_check(base, fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("no common benchmarks", out)
        self.assertIn("warning:", out)

    def test_disjoint_plus_regression_still_fails_on_common(self):
        base = bench_file(self.dir, "base.json",
                          {"BM_A": 100.0, "BM_Old": 10.0})
        fresh = bench_file(self.dir, "fresh.json",
                           {"BM_A": 300.0, "BM_New": 20.0})
        code, out = run_check(base, fresh, "--threshold", "1.25")
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSED", out)
        self.assertIn("warning:", out)

    def test_malformed_input_still_errors(self):
        bad = os.path.join(self.dir, "bad.json")
        with open(bad, "w") as f:
            f.write("not json")
        base = bench_file(self.dir, "base.json", {"BM_A": 100.0})
        code, _ = run_check(base, bad)
        self.assertEqual(code, 2)

    def test_require_present_family_passes(self):
        base = bench_file(self.dir, "base.json", {"BM_A": 100.0})
        fresh = bench_file(self.dir, "fresh.json",
                           {"BM_A": 100.0, "BM_CotGetHit": 30.0})
        code, out = run_check(base, fresh, "--require", "BM_CotGetHit",
                              "--require", "BM_A")
        self.assertEqual(code, 0, out)
        self.assertIn("OK:", out)

    def test_require_absent_family_fails(self):
        # Unlike the only-in-baseline warning, a dropped *required* family
        # (silently unregistered bench, renamed family) must fail the gate
        # even though nothing regressed.
        base = bench_file(self.dir, "base.json", {"BM_A": 100.0})
        fresh = bench_file(self.dir, "fresh.json", {"BM_A": 100.0})
        code, out = run_check(base, fresh, "--require", "BM_CotGetHit")
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL", out)
        self.assertIn("BM_CotGetHit", out)

    def test_require_is_regex_over_family(self):
        # One pattern can gate an arg-parameterized family.
        base = bench_file(self.dir, "base.json", {"BM_A": 100.0})
        fresh = bench_file(self.dir, "fresh.json",
                           {"BM_A": 100.0, "BM_TrackerTrackAccess/512": 70.0})
        code, out = run_check(base, fresh, "--require", "BM_TrackerTrackAccess")
        self.assertEqual(code, 0, out)

    def test_require_bad_regex_is_usage_error(self):
        base = bench_file(self.dir, "base.json", {"BM_A": 100.0})
        fresh = bench_file(self.dir, "fresh.json", {"BM_A": 100.0})
        code, _ = run_check(base, fresh, "--require", "BM_[")
        self.assertEqual(code, 2)

    def test_median_aggregate_preferred(self):
        base = bench_file(self.dir, "base.json", {"BM_A": 100.0})
        path = os.path.join(self.dir, "fresh.json")
        run = {
            "benchmarks": [
                {"name": "BM_A", "run_type": "iteration",
                 "real_time": 500.0, "cpu_time": 500.0, "time_unit": "ns"},
                {"name": "BM_A_median", "run_type": "aggregate",
                 "aggregate_name": "median", "real_time": 100.0,
                 "cpu_time": 100.0, "time_unit": "ns"},
            ]
        }
        with open(path, "w") as f:
            json.dump(run, f)
        code, out = run_check(base, path, "--threshold", "1.25")
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
