// Tests for the server-side load-balancing comparators (SliceMap /
// HotKeyReplicator) and their integration with FrontendClient routing.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cluster/cache_cluster.h"
#include "cluster/frontend_client.h"
#include "cluster/hot_key_replicator.h"
#include "cluster/slice_map.h"
#include "metrics/imbalance.h"
#include "util/random.h"
#include "workload/zipfian_generator.h"

namespace cot::cluster {
namespace {

/// View over a bare ring for policies driven outside a client (epoch 1 =
/// a fresh cluster's routing epoch).
RouteView ViewOf(const ConsistentHashRing& ring) {
  return RouteView{1, &ring};
}

/// SliceMap ignores the ring view entirely (its placement table is its
/// own), so a null view exercises exactly that.
const RouteView kNoView{};

TEST(SliceMapTest, InitialAssignmentIsRoundRobin) {
  SliceMap map(4, 16);
  EXPECT_EQ(map.num_slices(), 16u);
  for (uint32_t s = 0; s < 16; ++s) {
    EXPECT_EQ(map.OwnerOf(s), s % 4);
  }
}

TEST(SliceMapTest, RouteIsStableAndInRange) {
  SliceMap map(8, 4096);
  for (uint64_t k = 0; k < 1000; ++k) {
    ServerId a = map.Route(k, kNoView);
    ServerId b = map.Route(k, kNoView);
    EXPECT_EQ(a, b);
    EXPECT_LT(a, 8u);
  }
}

TEST(SliceMapTest, SliceOfMatchesRoutedOwner) {
  SliceMap map(8, 1024);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(map.Route(k, kNoView), map.OwnerOf(map.SliceOf(k)));
  }
}

TEST(SliceMapTest, RebalanceEvensOutSkewedSliceLoad) {
  SliceMap map(4, 256);
  // Hammer the slices owned by server 0 (per the round-robin init).
  Rng rng(1);
  workload::ZipfianGenerator gen(100000, 1.2);
  std::vector<uint64_t> loads_before(4, 0);
  for (int i = 0; i < 200000; ++i) {
    uint64_t key = gen.Next(rng);
    ServerId s = map.Route(key, kNoView);
    map.OnLookup(key, s);
    ++loads_before[s];
  }
  double before = metrics::LoadImbalance(loads_before);
  double moved = map.Rebalance();
  EXPECT_GT(moved, 0.0);
  EXPECT_LE(moved, 1.0);
  EXPECT_EQ(map.rebalance_count(), 1u);
  // Replay the same traffic on the new assignment.
  Rng rng2(1);
  workload::ZipfianGenerator gen2(100000, 1.2);
  std::vector<uint64_t> loads_after(4, 0);
  for (int i = 0; i < 200000; ++i) {
    ++loads_after[map.Route(gen2.Next(rng2), kNoView)];
  }
  double after = metrics::LoadImbalance(loads_after);
  EXPECT_LT(after, before);
}

TEST(SliceMapTest, CannotSplitAViralKey) {
  // The paper's granularity argument: if one key dominates the workload,
  // its slice exceeds a fair share no matter how slices are assigned.
  SliceMap map(8, 256);
  // One viral key takes ~a third of all traffic — more than any server's
  // fair share (1/8), so no slice assignment can reach balance.
  for (int i = 0; i < 100000; ++i) {
    uint64_t key = (i % 3 == 0) ? 12345u : static_cast<uint64_t>(i);
    map.OnLookup(key, map.Route(key, kNoView));
  }
  map.Rebalance();
  // Replay: the viral key's owner still gets all of its traffic.
  std::vector<uint64_t> loads(8, 0);
  for (int i = 0; i < 100000; ++i) {
    uint64_t key = (i % 3 == 0) ? 12345u : static_cast<uint64_t>(i);
    ++loads[map.Route(key, kNoView)];
  }
  EXPECT_GT(metrics::LoadImbalance(loads), 2.0);
}

TEST(HotKeyReplicatorTest, ColdKeysRouteViaRing) {
  ConsistentHashRing ring(8);
  HotKeyReplicator replicator(8);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(replicator.Route(k, ViewOf(ring)), ring.ServerFor(k));
  }
  EXPECT_EQ(replicator.replicated_count(), 0u);
}

TEST(HotKeyReplicatorTest, HotKeyGetsReplicatedAndSpread) {
  ConsistentHashRing ring(8);
  HotKeyReplicator replicator(8, /*hot_share=*/0.2, /*gamma=*/4);
  uint64_t hot = 42;
  ServerId home = ring.ServerFor(hot);
  // The hot key takes 50% of its server's load this epoch.
  for (int i = 0; i < 1000; ++i) {
    replicator.OnLookup(hot, home);
    replicator.OnLookup(static_cast<uint64_t>(1000 + i), home);
  }
  auto broadcast = replicator.EndEpoch(ViewOf(ring));
  ASSERT_EQ(broadcast.size(), 1u);
  EXPECT_EQ(broadcast[0], hot);
  EXPECT_TRUE(replicator.IsReplicated(hot));
  // Lookups now spread over gamma servers.
  std::set<ServerId> seen;
  for (int i = 0; i < 100; ++i) seen.insert(replicator.Route(hot, ViewOf(ring)));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(replicator.AllReplicas(hot, ViewOf(ring)).size(), 4u);
}

TEST(HotKeyReplicatorTest, ColdKeysStayUnreplicated) {
  ConsistentHashRing ring(8);
  HotKeyReplicator replicator(8, 0.2, 4);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    uint64_t k = rng.NextBelow(10000);
    replicator.OnLookup(k, ring.ServerFor(k));
  }
  EXPECT_TRUE(replicator.EndEpoch(ViewOf(ring)).empty());
}

TEST(HotKeyReplicatorTest, EpochsAreIndependent) {
  ConsistentHashRing ring(4);
  HotKeyReplicator replicator(4, 0.5, 2);
  uint64_t hot = 7;
  ServerId home = ring.ServerFor(hot);
  for (int i = 0; i < 100; ++i) replicator.OnLookup(hot, home);
  ASSERT_EQ(replicator.EndEpoch(ViewOf(ring)).size(), 1u);
  // Already replicated: not re-broadcast.
  for (int i = 0; i < 100; ++i) replicator.OnLookup(hot, home);
  EXPECT_TRUE(replicator.EndEpoch(ViewOf(ring)).empty());
}

TEST(RoutingIntegrationTest, ClientHonoursRouterAndCollectsMetadata) {
  CacheCluster cluster(4, 1000);
  SliceMap map(4, 64);
  FrontendClient client(&cluster, nullptr);
  client.SetRouter(&map);
  EXPECT_EQ(client.router(), &map);
  client.Get(5);
  ServerId expected = map.Route(5, client.route_view());
  EXPECT_EQ(cluster.server(expected).lookup_count(), 1u);
}

TEST(RoutingIntegrationTest, InvalidationReachesAllReplicas) {
  CacheCluster cluster(8, 1000);
  HotKeyReplicator replicator(8, 0.2, 4);
  FrontendClient client(&cluster, nullptr);
  client.SetRouter(&replicator);

  uint64_t hot = 42;
  // Make it hot and replicated.
  ServerId home = cluster.ring().ServerFor(hot);
  for (int i = 0; i < 1000; ++i) replicator.OnLookup(hot, home);
  replicator.EndEpoch(client.route_view());
  ASSERT_TRUE(replicator.IsReplicated(hot));

  // Fill several replicas by reading repeatedly (rotation).
  for (int i = 0; i < 16; ++i) client.Get(hot);
  size_t resident = 0;
  for (ServerId s : replicator.AllReplicas(hot, client.route_view())) {
    if (cluster.server(s).size() > 0) ++resident;
  }
  ASSERT_GE(resident, 2u);

  // Update: every replica must drop its copy.
  client.Set(hot, 999);
  for (ServerId s : replicator.AllReplicas(hot, client.route_view())) {
    auto v = cluster.server(s).Get(hot);
    EXPECT_FALSE(v.has_value()) << "stale replica on server " << s;
  }
  // Read-your-writes through a replica.
  EXPECT_EQ(client.Get(hot), 999u);
}

TEST(RoutingIntegrationTest, ReplicationReducesImbalanceOnSkew) {
  workload::ZipfianGenerator gen(100000, 1.2);

  auto run = [&](RoutingPolicy* router) {
    CacheCluster fresh(8, 100000);
    FrontendClient client(&fresh, nullptr);
    client.SetRouter(router);
    Rng rng(5);
    for (int i = 0; i < 200000; ++i) {
      client.Get(gen.Next(rng));
      if (i % 10000 == 9999 && router != nullptr) {
        // epoch boundary for the replicator
        auto* rep = dynamic_cast<HotKeyReplicator*>(router);
        if (rep != nullptr) rep->EndEpoch(client.route_view());
      }
    }
    return metrics::LoadImbalance(fresh.PerServerLookups());
  };

  double baseline = run(nullptr);
  HotKeyReplicator replicator(8, /*hot_share=*/0.05, /*gamma=*/8);
  double replicated = run(&replicator);
  EXPECT_LT(replicated, baseline * 0.7);
}

}  // namespace
}  // namespace cot::cluster
