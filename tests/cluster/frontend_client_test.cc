#include "cluster/frontend_client.h"

#include <gtest/gtest.h>

#include <variant>
#include <vector>

#include "cache/lru_cache.h"
#include "cluster/cache_cluster.h"
#include "cluster/fault_injector.h"
#include "core/cot_cache.h"
#include "metrics/event_tracer.h"

namespace cot::cluster {
namespace {

TEST(FrontendClientTest, ReadThroughFillsBothCacheLevels) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster,
                        std::make_unique<cache::LruCache>(8));
  cache::Value v = client.Get(42);
  EXPECT_EQ(v, StorageLayer::InitialValue(42));
  // First read: local miss, shard miss, storage read, both levels filled.
  EXPECT_EQ(client.stats().storage_reads, 1u);
  EXPECT_EQ(client.stats().backend_lookups, 1u);
  EXPECT_TRUE(client.local_cache()->Contains(42));
  ServerId sid = cluster.ring().ServerFor(42);
  EXPECT_EQ(cluster.server(sid).size(), 1u);

  // Second read: local hit, no backend traffic.
  client.Get(42);
  EXPECT_EQ(client.stats().local_hits, 1u);
  EXPECT_EQ(client.stats().backend_lookups, 1u);
}

TEST(FrontendClientTest, SecondClientHitsShardNotStorage) {
  CacheCluster cluster(4, 1000);
  FrontendClient a(&cluster, std::make_unique<cache::LruCache>(8));
  FrontendClient b(&cluster, std::make_unique<cache::LruCache>(8));
  a.Get(7);
  b.Get(7);
  EXPECT_EQ(b.stats().storage_reads, 0u);  // shard already filled by a
  EXPECT_EQ(b.stats().backend_hits, 1u);
}

TEST(FrontendClientTest, UpdateInvalidatesEveryLevel) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  client.Get(7);
  ASSERT_TRUE(client.local_cache()->Contains(7));
  client.Set(7, 777);
  EXPECT_FALSE(client.local_cache()->Contains(7));
  ServerId sid = cluster.ring().ServerFor(7);
  EXPECT_EQ(cluster.server(sid).size(), 0u);
  EXPECT_EQ(cluster.storage().Get(7), 777u);
}

TEST(FrontendClientTest, ReadYourWritesThroughTheWholeStack) {
  CacheCluster cluster(8, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  client.Get(5);          // warm both levels with the initial value
  client.Set(5, 555);     // invalidate + write storage
  EXPECT_EQ(client.Get(5), 555u);  // re-fetch sees the new value
  EXPECT_EQ(client.Get(5), 555u);  // now from the local cache
}

TEST(FrontendClientTest, CachelessClientAlwaysGoesToBackend) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, nullptr);
  for (int i = 0; i < 10; ++i) client.Get(3);
  EXPECT_EQ(client.stats().backend_lookups, 10u);
  EXPECT_EQ(client.stats().local_hits, 0u);
  EXPECT_EQ(client.stats().storage_reads, 1u);  // shard caches after first
}

TEST(FrontendClientTest, PerServerEpochCountersTrackLookups) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, nullptr);
  for (uint64_t k = 0; k < 100; ++k) client.Get(k);
  uint64_t total = 0;
  for (uint64_t c : client.epoch_lookups()) total += c;
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(client.epoch_lookups(), client.cumulative_lookups());
  EXPECT_GE(client.CurrentEpochImbalance(), 1.0);
}

TEST(FrontendClientTest, ApplyRoutesByOpType) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  client.Apply(workload::Op{1, workload::OpType::kRead});
  client.Apply(workload::Op{1, workload::OpType::kUpdate});
  EXPECT_EQ(client.stats().reads, 1u);
  EXPECT_EQ(client.stats().updates, 1u);
}

TEST(FrontendClientTest, ApplyDetailedReportsServicePath) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  auto miss = client.ApplyDetailed(workload::Op{9, workload::OpType::kRead});
  EXPECT_FALSE(miss.local_hit);
  EXPECT_TRUE(miss.backend_contacted);
  EXPECT_TRUE(miss.storage_accessed);
  EXPECT_EQ(miss.server, cluster.ring().ServerFor(9));

  auto hit = client.ApplyDetailed(workload::Op{9, workload::OpType::kRead});
  EXPECT_TRUE(hit.local_hit);
  EXPECT_FALSE(hit.backend_contacted);

  auto update =
      client.ApplyDetailed(workload::Op{9, workload::OpType::kUpdate});
  EXPECT_TRUE(update.backend_contacted);
  EXPECT_TRUE(update.storage_accessed);
}

TEST(FrontendClientTest, ElasticResizingRequiresCotCache) {
  CacheCluster cluster(4, 1000);
  FrontendClient lru_client(&cluster, std::make_unique<cache::LruCache>(8));
  core::ResizerConfig config;
  EXPECT_EQ(lru_client.EnableElasticResizing(config).code(),
            StatusCode::kFailedPrecondition);

  FrontendClient cot_client(&cluster,
                            std::make_unique<core::CotCache>(2, 8));
  EXPECT_TRUE(cot_client.EnableElasticResizing(config).ok());
  EXPECT_NE(cot_client.resizer(), nullptr);
}

TEST(FrontendClientTest, ResizerEpochsAdvanceWithTraffic) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<core::CotCache>(2, 8));
  core::ResizerConfig config;
  config.initial_epoch_size = 50;
  config.warmup_epochs = 0;
  config.min_epoch_backend_lookups = 0;
  ASSERT_TRUE(client.EnableElasticResizing(config).ok());
  for (uint64_t i = 0; i < 500; ++i) client.Get(i % 100);
  EXPECT_GE(client.resizer()->epochs_completed(), 5u);
  // Epoch counters were reset at each boundary.
  uint64_t epoch_total = 0;
  for (uint64_t c : client.epoch_lookups()) epoch_total += c;
  EXPECT_LT(epoch_total, 500u);
}

TEST(FrontendClientTest, WriteThroughRefreshesInsteadOfDeleting) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  client.SetWritePolicy(FrontendClient::WritePolicy::kWriteThrough);
  client.Get(7);  // warm both levels
  client.Set(7, 777);
  // Local and shard copies are refreshed, not deleted.
  EXPECT_TRUE(client.local_cache()->Contains(7));
  ServerId sid = cluster.ring().ServerFor(7);
  auto shard_copy = cluster.server(sid).Get(7);
  ASSERT_TRUE(shard_copy.has_value());
  EXPECT_EQ(*shard_copy, 777u);
  // Read-your-writes without re-fetching from storage.
  uint64_t storage_reads = client.stats().storage_reads;
  EXPECT_EQ(client.Get(7), 777u);
  EXPECT_EQ(client.stats().storage_reads, storage_reads);
}

TEST(FrontendClientTest, WriteThroughDoesNotPolluteLocalCache) {
  // A write-through of an uncached key must not force it into a plain
  // policy's cache (writes are not reads).
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  client.SetWritePolicy(FrontendClient::WritePolicy::kWriteThrough);
  client.Set(5, 55);
  EXPECT_FALSE(client.local_cache()->Contains(5));
  EXPECT_EQ(client.Get(5), 55u);
}

TEST(FrontendClientTest, WriteThroughKeepsCotHotnessAccounting) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<core::CotCache>(4, 16));
  client.SetWritePolicy(FrontendClient::WritePolicy::kWriteThrough);
  auto* cot = dynamic_cast<core::CotCache*>(client.local_cache());
  client.Get(3);
  client.Get(3);
  double before = cot->tracker().HotnessOf(3).value_or(0.0);
  client.Set(3, 33);
  // Update recorded in the dual-cost model.
  EXPECT_LT(cot->tracker().HotnessOf(3).value_or(0.0), before);
  // And the fresh value is served locally.
  EXPECT_EQ(client.Get(3), 33u);
}

std::vector<metrics::TraceEvent> EventsOfType(const metrics::EventTracer& t,
                                              metrics::TraceEventType type) {
  std::vector<metrics::TraceEvent> out;
  for (const metrics::TraceEvent& e : t.Events()) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

TEST(FrontendClientTraceTest, CrashWindowTracesFaultsRetriesAndBreaker) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, /*local_cache=*/nullptr);
  metrics::EventTracer tracer(4096, /*client=*/0);
  client.SetTracer(&tracer);

  const cache::Key key = 0;
  const ServerId sid = cluster.ring().ServerFor(key);
  FaultSchedule schedule;
  schedule.events.push_back(FaultEvent{sid, FaultType::kCrash,
                                       /*start_op=*/10, /*end_op=*/100});
  FaultInjector injector(schedule);
  FailurePolicy policy;
  policy.max_retries = 2;
  policy.breaker_failure_threshold = 3;
  policy.breaker_cooldown_ops = 20;
  client.SetFaultInjector(&injector, /*client_id=*/0, policy);

  for (int i = 0; i < 200; ++i) client.Get(key);

  // Every failed attempt inside the window was traced as a crash.
  auto faults =
      EventsOfType(tracer, metrics::TraceEventType::kFaultActivation);
  ASSERT_FALSE(faults.empty());
  for (const auto& e : faults) {
    const auto& p = std::get<metrics::FaultActivationPayload>(e.payload);
    EXPECT_EQ(p.server, static_cast<uint32_t>(sid));
    EXPECT_EQ(p.kind, "crash");
    EXPECT_EQ(p.attempt, 0u) << "crashes must not be retried";
    EXPECT_GE(e.op_clock, 10u);
    EXPECT_LT(e.op_clock, 100u);
  }

  // Every abandoned delivery produced a retry episode.
  auto episodes =
      EventsOfType(tracer, metrics::TraceEventType::kRetryEpisode);
  ASSERT_FALSE(episodes.empty());
  for (const auto& e : episodes) {
    const auto& p = std::get<metrics::RetryEpisodePayload>(e.payload);
    EXPECT_EQ(p.server, static_cast<uint32_t>(sid));
    EXPECT_FALSE(p.delivered);
    EXPECT_EQ(p.failed_attempts, 1u) << "one attempt per crashed delivery";
  }

  // Breaker lifecycle: closed->open at the threshold, failed half-open
  // probes inside the window, half_open->closed once the shard recovers.
  auto transitions =
      EventsOfType(tracer, metrics::TraceEventType::kBreakerTransition);
  ASSERT_GE(transitions.size(), 3u);
  const auto& first =
      std::get<metrics::BreakerTransitionPayload>(transitions[0].payload);
  EXPECT_EQ(first.from, "closed");
  EXPECT_EQ(first.to, "open");
  EXPECT_EQ(first.consecutive_failures, policy.breaker_failure_threshold);
  bool saw_failed_probe = false;
  bool saw_recovery = false;
  for (const auto& e : transitions) {
    const auto& p = std::get<metrics::BreakerTransitionPayload>(e.payload);
    if (p.from == "half_open" && p.to == "open") saw_failed_probe = true;
    if (p.from == "half_open" && p.to == "closed") saw_recovery = true;
  }
  EXPECT_TRUE(saw_failed_probe);
  EXPECT_TRUE(saw_recovery);
  EXPECT_EQ(client.stats().breaker_trips, 1u);

  // Event stream invariants: single client, strictly increasing seq,
  // monotone op_clock.
  uint64_t prev_seq = 0;
  uint64_t prev_clock = 0;
  bool first_event = true;
  for (const auto& e : tracer.Events()) {
    EXPECT_EQ(e.client, 0u);
    if (!first_event) {
      EXPECT_GT(e.seq, prev_seq);
      EXPECT_GE(e.op_clock, prev_clock);
    }
    first_event = false;
    prev_seq = e.seq;
    prev_clock = e.op_clock;
  }
}

TEST(FrontendClientTraceTest, TransientFaultsTraceRetriesThatDeliver) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, /*local_cache=*/nullptr);
  metrics::EventTracer tracer(8192, /*client=*/0);
  client.SetTracer(&tracer);

  const cache::Key key = 0;
  const ServerId sid = cluster.ring().ServerFor(key);
  FaultSchedule schedule;
  FaultEvent flaky;
  flaky.server = sid;
  flaky.type = FaultType::kTransient;
  flaky.start_op = 0;
  flaky.end_op = 400;
  flaky.probability = 0.5;
  schedule.events.push_back(flaky);
  FaultInjector injector(schedule);
  FailurePolicy policy;
  policy.max_retries = 3;
  policy.breaker_failure_threshold = 1000;  // keep the breaker out of it
  client.SetFaultInjector(&injector, /*client_id=*/0, policy);

  for (int i = 0; i < 400; ++i) client.Get(key);

  auto faults =
      EventsOfType(tracer, metrics::TraceEventType::kFaultActivation);
  ASSERT_FALSE(faults.empty());
  for (const auto& e : faults) {
    const auto& p = std::get<metrics::FaultActivationPayload>(e.payload);
    EXPECT_EQ(p.kind, "transient");
    EXPECT_LE(p.attempt, policy.max_retries);
  }

  // With p=0.5 and 3 retries over 400 ops, the deterministic draw stream
  // contains both delivered-after-retry and abandoned episodes.
  auto episodes =
      EventsOfType(tracer, metrics::TraceEventType::kRetryEpisode);
  ASSERT_FALSE(episodes.empty());
  bool saw_delivered_after_retry = false;
  for (const auto& e : episodes) {
    const auto& p = std::get<metrics::RetryEpisodePayload>(e.payload);
    if (p.delivered) {
      EXPECT_GE(p.failed_attempts, 1u)
          << "first-attempt successes are not episodes";
      saw_delivered_after_retry = true;
    } else {
      EXPECT_EQ(p.failed_attempts, 1u + policy.max_retries);
    }
  }
  EXPECT_TRUE(saw_delivered_after_retry);
  // Cross-check against the client's own counters: one fault event per
  // failed request.
  EXPECT_EQ(faults.size(), client.stats().failed_requests);
}

TEST(FrontendClientTraceTest, NoTracerMeansNoEventsAndIdenticalStats) {
  // The same faulty run with and without a tracer: stats must match
  // exactly (tracing is observation, never behaviour).
  FaultSchedule schedule;
  schedule.events.push_back(
      FaultEvent{0, FaultType::kCrash, /*start_op=*/5, /*end_op=*/50});
  FailurePolicy policy;

  auto run = [&](metrics::EventTracer* tracer) {
    CacheCluster cluster(4, 1000);
    FrontendClient client(&cluster, /*local_cache=*/nullptr);
    FaultInjector injector(schedule);
    if (tracer != nullptr) client.SetTracer(tracer);
    client.SetFaultInjector(&injector, 0, policy);
    // Cover every shard so shard 0's window is actually observed.
    for (int i = 0; i < 100; ++i) client.Get(static_cast<cache::Key>(i));
    return client.stats();
  };

  metrics::EventTracer tracer(1024, 0);
  FrontendStats with = run(&tracer);
  FrontendStats without = run(nullptr);
  EXPECT_GT(tracer.recorded(), 0u);
  EXPECT_EQ(with.failed_requests, without.failed_requests);
  EXPECT_EQ(with.degraded_ops, without.degraded_ops);
  EXPECT_EQ(with.backend_lookups, without.backend_lookups);
  EXPECT_EQ(with.storage_reads, without.storage_reads);
  EXPECT_EQ(with.breaker_trips, without.breaker_trips);
}

}  // namespace
}  // namespace cot::cluster
