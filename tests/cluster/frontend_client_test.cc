#include "cluster/frontend_client.h"

#include <gtest/gtest.h>

#include "cache/lru_cache.h"
#include "cluster/cache_cluster.h"
#include "core/cot_cache.h"

namespace cot::cluster {
namespace {

TEST(FrontendClientTest, ReadThroughFillsBothCacheLevels) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster,
                        std::make_unique<cache::LruCache>(8));
  cache::Value v = client.Get(42);
  EXPECT_EQ(v, StorageLayer::InitialValue(42));
  // First read: local miss, shard miss, storage read, both levels filled.
  EXPECT_EQ(client.stats().storage_reads, 1u);
  EXPECT_EQ(client.stats().backend_lookups, 1u);
  EXPECT_TRUE(client.local_cache()->Contains(42));
  ServerId sid = cluster.ring().ServerFor(42);
  EXPECT_EQ(cluster.server(sid).size(), 1u);

  // Second read: local hit, no backend traffic.
  client.Get(42);
  EXPECT_EQ(client.stats().local_hits, 1u);
  EXPECT_EQ(client.stats().backend_lookups, 1u);
}

TEST(FrontendClientTest, SecondClientHitsShardNotStorage) {
  CacheCluster cluster(4, 1000);
  FrontendClient a(&cluster, std::make_unique<cache::LruCache>(8));
  FrontendClient b(&cluster, std::make_unique<cache::LruCache>(8));
  a.Get(7);
  b.Get(7);
  EXPECT_EQ(b.stats().storage_reads, 0u);  // shard already filled by a
  EXPECT_EQ(b.stats().backend_hits, 1u);
}

TEST(FrontendClientTest, UpdateInvalidatesEveryLevel) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  client.Get(7);
  ASSERT_TRUE(client.local_cache()->Contains(7));
  client.Set(7, 777);
  EXPECT_FALSE(client.local_cache()->Contains(7));
  ServerId sid = cluster.ring().ServerFor(7);
  EXPECT_EQ(cluster.server(sid).size(), 0u);
  EXPECT_EQ(cluster.storage().Get(7), 777u);
}

TEST(FrontendClientTest, ReadYourWritesThroughTheWholeStack) {
  CacheCluster cluster(8, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  client.Get(5);          // warm both levels with the initial value
  client.Set(5, 555);     // invalidate + write storage
  EXPECT_EQ(client.Get(5), 555u);  // re-fetch sees the new value
  EXPECT_EQ(client.Get(5), 555u);  // now from the local cache
}

TEST(FrontendClientTest, CachelessClientAlwaysGoesToBackend) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, nullptr);
  for (int i = 0; i < 10; ++i) client.Get(3);
  EXPECT_EQ(client.stats().backend_lookups, 10u);
  EXPECT_EQ(client.stats().local_hits, 0u);
  EXPECT_EQ(client.stats().storage_reads, 1u);  // shard caches after first
}

TEST(FrontendClientTest, PerServerEpochCountersTrackLookups) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, nullptr);
  for (uint64_t k = 0; k < 100; ++k) client.Get(k);
  uint64_t total = 0;
  for (uint64_t c : client.epoch_lookups()) total += c;
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(client.epoch_lookups(), client.cumulative_lookups());
  EXPECT_GE(client.CurrentEpochImbalance(), 1.0);
}

TEST(FrontendClientTest, ApplyRoutesByOpType) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  client.Apply(workload::Op{1, workload::OpType::kRead});
  client.Apply(workload::Op{1, workload::OpType::kUpdate});
  EXPECT_EQ(client.stats().reads, 1u);
  EXPECT_EQ(client.stats().updates, 1u);
}

TEST(FrontendClientTest, ApplyDetailedReportsServicePath) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  auto miss = client.ApplyDetailed(workload::Op{9, workload::OpType::kRead});
  EXPECT_FALSE(miss.local_hit);
  EXPECT_TRUE(miss.backend_contacted);
  EXPECT_TRUE(miss.storage_accessed);
  EXPECT_EQ(miss.server, cluster.ring().ServerFor(9));

  auto hit = client.ApplyDetailed(workload::Op{9, workload::OpType::kRead});
  EXPECT_TRUE(hit.local_hit);
  EXPECT_FALSE(hit.backend_contacted);

  auto update =
      client.ApplyDetailed(workload::Op{9, workload::OpType::kUpdate});
  EXPECT_TRUE(update.backend_contacted);
  EXPECT_TRUE(update.storage_accessed);
}

TEST(FrontendClientTest, ElasticResizingRequiresCotCache) {
  CacheCluster cluster(4, 1000);
  FrontendClient lru_client(&cluster, std::make_unique<cache::LruCache>(8));
  core::ResizerConfig config;
  EXPECT_EQ(lru_client.EnableElasticResizing(config).code(),
            StatusCode::kFailedPrecondition);

  FrontendClient cot_client(&cluster,
                            std::make_unique<core::CotCache>(2, 8));
  EXPECT_TRUE(cot_client.EnableElasticResizing(config).ok());
  EXPECT_NE(cot_client.resizer(), nullptr);
}

TEST(FrontendClientTest, ResizerEpochsAdvanceWithTraffic) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<core::CotCache>(2, 8));
  core::ResizerConfig config;
  config.initial_epoch_size = 50;
  config.warmup_epochs = 0;
  config.min_epoch_backend_lookups = 0;
  ASSERT_TRUE(client.EnableElasticResizing(config).ok());
  for (uint64_t i = 0; i < 500; ++i) client.Get(i % 100);
  EXPECT_GE(client.resizer()->epochs_completed(), 5u);
  // Epoch counters were reset at each boundary.
  uint64_t epoch_total = 0;
  for (uint64_t c : client.epoch_lookups()) epoch_total += c;
  EXPECT_LT(epoch_total, 500u);
}

TEST(FrontendClientTest, WriteThroughRefreshesInsteadOfDeleting) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  client.SetWritePolicy(FrontendClient::WritePolicy::kWriteThrough);
  client.Get(7);  // warm both levels
  client.Set(7, 777);
  // Local and shard copies are refreshed, not deleted.
  EXPECT_TRUE(client.local_cache()->Contains(7));
  ServerId sid = cluster.ring().ServerFor(7);
  auto shard_copy = cluster.server(sid).Get(7);
  ASSERT_TRUE(shard_copy.has_value());
  EXPECT_EQ(*shard_copy, 777u);
  // Read-your-writes without re-fetching from storage.
  uint64_t storage_reads = client.stats().storage_reads;
  EXPECT_EQ(client.Get(7), 777u);
  EXPECT_EQ(client.stats().storage_reads, storage_reads);
}

TEST(FrontendClientTest, WriteThroughDoesNotPolluteLocalCache) {
  // A write-through of an uncached key must not force it into a plain
  // policy's cache (writes are not reads).
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<cache::LruCache>(8));
  client.SetWritePolicy(FrontendClient::WritePolicy::kWriteThrough);
  client.Set(5, 55);
  EXPECT_FALSE(client.local_cache()->Contains(5));
  EXPECT_EQ(client.Get(5), 55u);
}

TEST(FrontendClientTest, WriteThroughKeepsCotHotnessAccounting) {
  CacheCluster cluster(4, 1000);
  FrontendClient client(&cluster, std::make_unique<core::CotCache>(4, 16));
  client.SetWritePolicy(FrontendClient::WritePolicy::kWriteThrough);
  auto* cot = dynamic_cast<core::CotCache*>(client.local_cache());
  client.Get(3);
  client.Get(3);
  double before = cot->tracker().HotnessOf(3).value_or(0.0);
  client.Set(3, 33);
  // Update recorded in the dual-cost model.
  EXPECT_LT(cot->tracker().HotnessOf(3).value_or(0.0), before);
  // And the fresh value is served locally.
  EXPECT_EQ(client.Get(3), 33u);
}

}  // namespace
}  // namespace cot::cluster
